#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "sim/scheduler.h"

namespace kadop::sim {
namespace {

TEST(SchedulerTest, StartsAtZeroAndIdle) {
  Scheduler s;
  EXPECT_EQ(s.Now(), 0.0);
  EXPECT_TRUE(s.Idle());
  EXPECT_EQ(s.RunUntilIdle(), 0.0);
}

TEST(SchedulerTest, ExecutesInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.At(2.0, [&] { order.push_back(2); });
  s.At(1.0, [&] { order.push_back(1); });
  s.At(3.0, [&] { order.push_back(3); });
  s.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.Now(), 3.0);
}

TEST(SchedulerTest, TiesBreakByInsertionOrder) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    s.At(1.0, [&order, i] { order.push_back(i); });
  }
  s.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SchedulerTest, EventsMayScheduleMoreEvents) {
  Scheduler s;
  int fired = 0;
  s.At(1.0, [&] {
    fired++;
    s.After(1.0, [&] { fired++; });
  });
  s.RunUntilIdle();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(s.Now(), 2.0);
}

TEST(SchedulerTest, PastEventsClampToNow) {
  Scheduler s;
  double seen = -1;
  s.At(5.0, [&] {
    s.At(1.0, [&] { seen = s.Now(); });  // in the past
  });
  s.RunUntilIdle();
  EXPECT_EQ(seen, 5.0);
}

TEST(SchedulerTest, RunUntilStopsAtDeadline) {
  Scheduler s;
  int fired = 0;
  s.At(1.0, [&] { fired++; });
  s.At(10.0, [&] { fired++; });
  s.RunUntil(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.Now(), 5.0);
  s.RunUntilIdle();
  EXPECT_EQ(fired, 2);
}

TEST(SchedulerTest, CountsExecutedEvents) {
  Scheduler s;
  for (int i = 0; i < 7; ++i) s.After(0.1 * i, [] {});
  s.RunUntilIdle();
  EXPECT_EQ(s.executed_events(), 7u);
}

TEST(SchedulerTest, CancelledEventIsSkippedWithoutTrace) {
  Scheduler s;
  int fired = 0;
  const EventId timeout = s.At(5.0, [&] { fired += 100; });
  s.At(1.0, [&] { fired++; });
  EXPECT_TRUE(s.Cancel(timeout));
  s.RunUntilIdle();
  EXPECT_EQ(fired, 1);
  // A cancelled event leaves the run byte-identical to never arming it:
  // same final clock, same executed count.
  EXPECT_EQ(s.Now(), 1.0);
  EXPECT_EQ(s.executed_events(), 1u);
}

TEST(SchedulerTest, CancelMatchesNeverArmedRun) {
  auto run = [](bool arm_and_cancel) {
    Scheduler s;
    for (int i = 0; i < 5; ++i) s.At(0.5 * i, [] {});
    if (arm_and_cancel) {
      const EventId id = s.After(9.0, [] {});
      EXPECT_TRUE(s.Cancel(id));
    }
    s.RunUntilIdle();
    return std::pair{s.Now(), s.executed_events()};
  };
  EXPECT_EQ(run(true), run(false));
}

TEST(SchedulerTest, CancelInvalidOrSpentIdReturnsFalse) {
  Scheduler s;
  EXPECT_FALSE(s.Cancel(kInvalidEventId));
  EXPECT_FALSE(s.Cancel(12345));  // never issued
  const EventId id = s.At(1.0, [] {});
  s.RunUntilIdle();
  // Already fired: cancelling is a no-op (and, per the contract, callers
  // should have dropped the handle by now).
  s.Cancel(id);
  EXPECT_EQ(s.executed_events(), 1u);
}

TEST(SchedulerTest, NegativeDelayClampsToNow) {
  Scheduler s;
  double seen = -1;
  s.At(2.0, [&] {
    s.After(-5.0, [&] { seen = s.Now(); });
  });
  s.RunUntilIdle();
  EXPECT_EQ(seen, 2.0);
}

}  // namespace
}  // namespace kadop::sim
