#include <gtest/gtest.h>

#include <vector>

#include "sim/scheduler.h"

namespace kadop::sim {
namespace {

TEST(SchedulerTest, StartsAtZeroAndIdle) {
  Scheduler s;
  EXPECT_EQ(s.Now(), 0.0);
  EXPECT_TRUE(s.Idle());
  EXPECT_EQ(s.RunUntilIdle(), 0.0);
}

TEST(SchedulerTest, ExecutesInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.At(2.0, [&] { order.push_back(2); });
  s.At(1.0, [&] { order.push_back(1); });
  s.At(3.0, [&] { order.push_back(3); });
  s.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.Now(), 3.0);
}

TEST(SchedulerTest, TiesBreakByInsertionOrder) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    s.At(1.0, [&order, i] { order.push_back(i); });
  }
  s.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SchedulerTest, EventsMayScheduleMoreEvents) {
  Scheduler s;
  int fired = 0;
  s.At(1.0, [&] {
    fired++;
    s.After(1.0, [&] { fired++; });
  });
  s.RunUntilIdle();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(s.Now(), 2.0);
}

TEST(SchedulerTest, PastEventsClampToNow) {
  Scheduler s;
  double seen = -1;
  s.At(5.0, [&] {
    s.At(1.0, [&] { seen = s.Now(); });  // in the past
  });
  s.RunUntilIdle();
  EXPECT_EQ(seen, 5.0);
}

TEST(SchedulerTest, RunUntilStopsAtDeadline) {
  Scheduler s;
  int fired = 0;
  s.At(1.0, [&] { fired++; });
  s.At(10.0, [&] { fired++; });
  s.RunUntil(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.Now(), 5.0);
  s.RunUntilIdle();
  EXPECT_EQ(fired, 2);
}

TEST(SchedulerTest, CountsExecutedEvents) {
  Scheduler s;
  for (int i = 0; i < 7; ++i) s.After(0.1 * i, [] {});
  s.RunUntilIdle();
  EXPECT_EQ(s.executed_events(), 7u);
}

TEST(SchedulerTest, NegativeDelayClampsToNow) {
  Scheduler s;
  double seen = -1;
  s.At(2.0, [&] {
    s.After(-5.0, [&] { seen = s.Now(); });
  });
  s.RunUntilIdle();
  EXPECT_EQ(seen, 2.0);
}

}  // namespace
}  // namespace kadop::sim
