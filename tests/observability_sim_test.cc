// End-to-end determinism of the observability layer: two identical seeded
// simulation runs must produce byte-identical KadopStats dumps and span
// traces. Everything is stamped with the scheduler's virtual clock, so any
// wall-clock leakage or iteration-order instability shows up here.

#include <gtest/gtest.h>

#include <string>

#include "core/kadop.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "xml/corpus.h"

namespace kadop {
namespace {

struct RunDump {
  std::string stats_text;
  std::string stats_json;
  std::string trace_text;
  std::string trace_json;
};

/// One full publish + query + join cycle on a small seeded network,
/// starting from clean process-wide observability state.
RunDump RunScenario() {
  obs::MetricRegistry::Default().Reset();
  auto& tracer = obs::Tracer::Default();
  tracer.Clear();
  tracer.SetEnabled(true);

  RunDump dump;
  {
    xml::corpus::DblpOptions copt;
    copt.target_bytes = 64 << 10;
    auto docs = xml::corpus::GenerateDblp(copt);

    core::KadopOptions opt;
    opt.peers = 12;
    core::KadopNet net(opt);
    std::vector<const xml::Document*> ptrs;
    for (const auto& d : docs) ptrs.push_back(&d);
    net.PublishAndWait(0, ptrs);

    query::QueryOptions qopt;
    qopt.strategy = query::QueryStrategy::kDpp;
    auto result = net.QueryAndWait(1, "//article//author", qopt);
    EXPECT_TRUE(result.ok());

    (void)net.JoinPeerAndWait();

    core::KadopStats stats = net.Stats();
    dump.stats_text = stats.ToText();
    dump.stats_json = stats.ToJson();
    dump.trace_text = tracer.DumpText();
    dump.trace_json = tracer.DumpJson();
  }
  tracer.SetEnabled(false);
  tracer.Clear();
  return dump;
}

TEST(ObservabilitySimTest, SeededRunsProduceByteIdenticalDumps) {
  RunDump a = RunScenario();
  RunDump b = RunScenario();
  EXPECT_EQ(a.stats_text, b.stats_text);
  EXPECT_EQ(a.stats_json, b.stats_json);
  EXPECT_EQ(a.trace_text, b.trace_text);
  EXPECT_EQ(a.trace_json, b.trace_json);

  // The dumps actually carry signal: counters moved and spans recorded.
  EXPECT_NE(a.stats_json.find("\"dht\""), std::string::npos);
  EXPECT_NE(a.stats_json.find("\"metrics\""), std::string::npos);
  EXPECT_NE(a.trace_json.find("\"name\":\"publish\""), std::string::npos);
  EXPECT_NE(a.trace_json.find("\"name\":\"query\""), std::string::npos);
  EXPECT_NE(a.trace_json.find("\"name\":\"join_peer\""), std::string::npos);
}

TEST(ObservabilitySimTest, StatsAggregateMatchesRegistryCounters) {
  obs::MetricRegistry::Default().Reset();

  xml::corpus::DblpOptions copt;
  copt.target_bytes = 32 << 10;
  auto docs = xml::corpus::GenerateDblp(copt);

  core::KadopOptions opt;
  opt.peers = 8;
  core::KadopNet net(opt);
  std::vector<const xml::Document*> ptrs;
  for (const auto& d : docs) ptrs.push_back(&d);
  net.PublishAndWait(0, ptrs);

  core::KadopStats stats = net.Stats();
  // Per-instance aggregates and the registry's process-wide counters are
  // incremented at the same sites, so with one net and a fresh registry
  // they must agree.
  EXPECT_EQ(stats.metrics.counters.at("dht.appends_received"),
            stats.dht.appends_received);
  EXPECT_EQ(stats.metrics.counters.at("dht.postings_stored"),
            stats.dht.postings_stored);
  EXPECT_EQ(stats.metrics.counters.at("store.operations"),
            stats.io.operations);
  EXPECT_EQ(stats.metrics.counters.at("store.write_bytes"),
            stats.io.write_bytes);
  EXPECT_GT(stats.executed_events, 0u);
  EXPECT_GT(stats.now, 0.0);
}

}  // namespace
}  // namespace kadop
