// Direct unit tests for the batched publisher: batching behaviour, stats,
// ack accounting, Doc-relation entries and document-type propagation.

#include <gtest/gtest.h>

#include <optional>
#include <set>

#include "dht/dht.h"
#include "dht/ring.h"
#include "index/doc_store.h"
#include "index/publisher.h"
#include "xml/parser.h"

namespace kadop::index {
namespace {

struct PublisherNet {
  explicit PublisherNet(size_t peers)
      : network(&scheduler), dht(&scheduler, &network, {}) {
    dht.AddPeers(peers);
  }
  sim::Scheduler scheduler;
  sim::Network network;
  dht::Dht dht;
};

xml::Document MustParseDoc(const std::string& text, std::string uri = "") {
  auto result = xml::ParseDocument(text, std::move(uri));
  EXPECT_TRUE(result.ok());
  return result.take();
}

TEST(PublisherTest, StatsCountDocumentsPostingsBatches) {
  PublisherNet net(4);
  DocStore store;
  PublishOptions options;
  options.batch_postings = 4;
  Publisher publisher(net.dht.peer(0), &store, options);

  auto d1 = MustParseDoc("<a><b>one two</b></a>", "u1");
  auto d2 = MustParseDoc("<a><c>three</c></a>", "u2");
  bool done = false;
  publisher.Publish({&d1, &d2}, [&] { done = true; });
  net.scheduler.RunUntilIdle();
  ASSERT_TRUE(done);
  EXPECT_EQ(publisher.stats().documents, 2u);
  // d1: a, b, one, two; d2: a, c, three.
  EXPECT_EQ(publisher.stats().postings, 7u);
  EXPECT_GE(publisher.stats().batches, 5u);  // one per distinct term key
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.Get(0), &d1);
  EXPECT_EQ(store.Get(1), &d2);
}

TEST(PublisherTest, BatchBoundaryFlushesEagerly) {
  PublisherNet net(4);
  DocStore store;
  PublishOptions options;
  options.batch_postings = 2;
  Publisher publisher(net.dht.peer(1), &store, options);
  // Five 'x' elements across docs: the x key must flush in >= 2 batches.
  auto d = MustParseDoc("<r><x/><x/><x/><x/><x/></r>");
  bool done = false;
  publisher.Publish({&d}, [&] { done = true; });
  net.scheduler.RunUntilIdle();
  ASSERT_TRUE(done);
  std::optional<dht::GetResult> got;
  net.dht.peer(0)->Get("l:x", [&](dht::GetResult r) { got = std::move(r); });
  net.scheduler.RunUntilIdle();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->postings.size(), 5u);
}

TEST(PublisherTest, EmptyPublishCompletesImmediately) {
  PublisherNet net(2);
  DocStore store;
  Publisher publisher(net.dht.peer(0), &store, {});
  bool done = false;
  publisher.Publish({}, [&] { done = true; });
  EXPECT_TRUE(done);  // synchronous: nothing to ack
}

TEST(PublisherTest, DocRelationBlobRecorded) {
  PublisherNet net(4);
  DocStore store;
  Publisher publisher(net.dht.peer(2), &store, {});
  auto d = MustParseDoc("<a/>", "kadop://docs/alpha.xml");
  publisher.Publish({&d}, nullptr);
  net.scheduler.RunUntilIdle();
  std::optional<std::optional<std::string>> blob;
  net.dht.peer(0)->GetBlob("doc:2:0", [&](std::optional<std::string> b) {
    blob = std::move(b);
  });
  net.scheduler.RunUntilIdle();
  ASSERT_TRUE(blob.has_value());
  ASSERT_TRUE(blob->has_value());
  EXPECT_EQ(**blob, "kadop://docs/alpha.xml");
}

TEST(PublisherTest, SequentialPublishesAssignIncreasingSeqs) {
  PublisherNet net(2);
  DocStore store;
  Publisher publisher(net.dht.peer(0), &store, {});
  auto d1 = MustParseDoc("<a/>");
  auto d2 = MustParseDoc("<b/>");
  publisher.Publish({&d1}, nullptr);
  net.scheduler.RunUntilIdle();
  publisher.Publish({&d2}, nullptr);
  net.scheduler.RunUntilIdle();
  EXPECT_EQ(store.Get(0), &d1);
  EXPECT_EQ(store.Get(1), &d2);
  std::optional<dht::GetResult> got;
  net.dht.peer(1)->Get("l:b", [&](dht::GetResult r) { got = std::move(r); });
  net.scheduler.RunUntilIdle();
  ASSERT_EQ(got->postings.size(), 1u);
  EXPECT_EQ(got->postings[0].doc, 1u);
}

TEST(PublisherTest, UnpublishDeletesEveryTermOfTheDocument) {
  PublisherNet net(4);
  DocStore store;
  Publisher publisher(net.dht.peer(0), &store, {});
  auto d1 = MustParseDoc("<a><b>word</b></a>");
  auto d2 = MustParseDoc("<a><b>word</b></a>");
  publisher.Publish({&d1, &d2}, nullptr);
  net.scheduler.RunUntilIdle();

  ASSERT_TRUE(publisher.Unpublish(0));
  net.scheduler.RunUntilIdle();
  for (const char* key : {"l:a", "l:b", "w:word"}) {
    std::optional<dht::GetResult> got;
    net.dht.peer(1)->Get(key, [&](dht::GetResult r) { got = std::move(r); });
    net.scheduler.RunUntilIdle();
    ASSERT_TRUE(got.has_value()) << key;
    ASSERT_EQ(got->postings.size(), 1u) << key;
    EXPECT_EQ(got->postings[0].doc, 1u) << key;
  }
  EXPECT_EQ(store.Get(0), nullptr);
  EXPECT_FALSE(publisher.Unpublish(0));  // already gone
}

TEST(PublisherTest, AppendsCarryDocumentTypes) {
  PublisherNet net(4);
  DocStore store;
  Publisher publisher(net.dht.peer(0), &store, {});
  auto d1 = MustParseDoc("<dblp><title/></dblp>");
  auto d2 = MustParseDoc("<imdb><title/></imdb>");
  // Install a sniffing interceptor at the owner of l:title.
  const auto owner = net.dht.OwnerOf(dht::HashKey("l:title"));
  std::set<std::string> seen_types;
  net.dht.peer(owner)->SetAppendInterceptor(
      [&seen_types](const dht::AppendRequest& request) {
        if (request.key == "l:title") {
          seen_types.insert(request.doc_types.begin(),
                            request.doc_types.end());
        }
        return false;  // let the default path store it
      });
  publisher.Publish({&d1, &d2}, nullptr);
  net.scheduler.RunUntilIdle();
  EXPECT_EQ(seen_types, (std::set<std::string>{"dblp", "imdb"}));
}

}  // namespace
}  // namespace kadop::index
