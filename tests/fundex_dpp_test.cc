// Interplay of the Fundex with the DPP: when the intensional collection is
// big enough that its posting lists get range-partitioned, the Fundex
// query path (plain gets of term, anyword and Rev lists) must still see
// complete lists through the owner's DPP get proxy.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/kadop.h"
#include "xml/corpus.h"

namespace kadop::fundex {
namespace {

constexpr const char* kQuery =
    "//article[contains(.//title,'system') and "
    "contains(.//abstract,'interface')]";

class FundexDppTest : public ::testing::TestWithParam<IntensionalMode> {};

TEST_P(FundexDppTest, PartitionedListsKeepFundexRecall) {
  xml::corpus::InexOptions copt;
  copt.publications = 400;
  copt.planted_matches = 7;
  auto docs = xml::corpus::GenerateInex(copt);
  std::vector<const xml::Document*> mains;
  for (size_t i = 0; i < copt.publications; ++i) mains.push_back(&docs[i]);

  auto run = [&](bool dpp, size_t block) {
    core::KadopOptions opt;
    opt.peers = 8;
    opt.enable_dpp = dpp;
    opt.dpp.max_block_postings = block;
    core::KadopNet net(opt);
    net.RegisterDocuments(docs);
    net.FundexPublishAndWait(0, mains, GetParam());
    auto result = net.FundexQueryAndWait(1, kQuery, GetParam());
    EXPECT_TRUE(result.ok());
    std::set<uint32_t> found;
    for (const auto& d : result.value().matched_docs) found.insert(d.doc);
    return found;
  };

  // Tiny blocks force heavy partitioning of article/title/word lists.
  const auto partitioned = run(true, 64);
  const auto flat = run(false, 64);
  EXPECT_EQ(partitioned, flat)
      << "DPP partitioning changed Fundex results for "
      << IntensionalModeName(GetParam());
  if (GetParam() != IntensionalMode::kNaive) {
    EXPECT_FALSE(partitioned.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Modes, FundexDppTest,
    ::testing::Values(IntensionalMode::kNaive, IntensionalMode::kFundexSimple,
                      IntensionalMode::kFundexRepresentative,
                      IntensionalMode::kInline),
    [](const ::testing::TestParamInfo<IntensionalMode>& info) {
      std::string name(IntensionalModeName(info.param));
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

}  // namespace
}  // namespace kadop::fundex
