#include <gtest/gtest.h>

#include <algorithm>

#include "index/terms.h"
#include "query/local_eval.h"
#include "query/tree_pattern.h"
#include "query/twig_join.h"
#include "xml/corpus.h"
#include "xml/parser.h"

namespace kadop::query {
namespace {

using index::DocId;
using index::Posting;
using index::PostingList;

TreePattern MustParse(const char* expr) {
  auto result = ParsePattern(expr);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.take();
}

/// Extracts per-pattern-node candidate streams from documents via the
/// indexing pipeline (ExtractTerms), i.e. exactly what the distributed
/// engine would fetch.
std::vector<PostingList> StreamsFor(const TreePattern& pattern,
                                    const std::vector<xml::Document>& docs) {
  std::vector<PostingList> streams(pattern.size());
  for (size_t d = 0; d < docs.size(); ++d) {
    std::vector<index::TermPosting> postings;
    index::ExtractTerms(docs[d], 0, static_cast<uint32_t>(d), {}, postings);
    for (const auto& tp : postings) {
      for (size_t q = 0; q < pattern.size(); ++q) {
        if (tp.key == pattern.node(q).TermKey()) {
          streams[q].push_back(tp.posting);
        }
      }
    }
  }
  for (auto& s : streams) std::sort(s.begin(), s.end());
  return streams;
}

std::vector<Answer> GroundTruth(const TreePattern& pattern,
                                const std::vector<xml::Document>& docs) {
  std::vector<Answer> all;
  for (size_t d = 0; d < docs.size(); ++d) {
    auto answers = EvaluateOnDocument(pattern, docs[d],
                                      DocId{0, static_cast<uint32_t>(d)});
    all.insert(all.end(), answers.begin(), answers.end());
  }
  return all;
}

std::vector<xml::Document> ParseDocs(
    const std::vector<const char*>& xml_texts) {
  std::vector<xml::Document> docs;
  for (const char* text : xml_texts) {
    auto doc = xml::ParseDocument(text);
    EXPECT_TRUE(doc.ok());
    docs.push_back(doc.take());
  }
  return docs;
}

TEST(TwigJoinTest, SimplePathMatch) {
  auto docs = ParseDocs({"<a><b><c/></b></a>", "<a><c/></a>", "<b><c/></b>"});
  TreePattern pattern = MustParse("//a//b//c");
  auto streams = StreamsFor(pattern, docs);
  TwigJoin join(pattern);
  for (size_t q = 0; q < pattern.size(); ++q) {
    join.Append(q, streams[q]);
    join.Close(q);
  }
  join.Advance();
  ASSERT_EQ(join.answers().size(), 1u);
  EXPECT_EQ(join.answers()[0].doc, (DocId{0, 0}));
  EXPECT_EQ(join.matched_docs().size(), 1u);
  EXPECT_TRUE(join.Done());
}

TEST(TwigJoinTest, ChildAxisIsLevelExact) {
  auto docs = ParseDocs({"<a><b/></a>", "<a><x><b/></x></a>"});
  TreePattern pattern = MustParse("//a/b");
  auto streams = StreamsFor(pattern, docs);
  TwigJoin join(pattern);
  for (size_t q = 0; q < pattern.size(); ++q) {
    join.Append(q, streams[q]);
    join.Close(q);
  }
  join.Advance();
  ASSERT_EQ(join.answers().size(), 1u);
  EXPECT_EQ(join.answers()[0].doc, (DocId{0, 0}));
}

TEST(TwigJoinTest, BranchingTwig) {
  auto docs = ParseDocs({
      "<a><b/><c/></a>",      // match
      "<a><b/></a>",          // no c
      "<a><c/></a>",          // no b
      "<x><a><d><b/></d><e><c/></e></a></x>",  // match (descendant)
  });
  TreePattern pattern = MustParse("//a[//b]//c");
  auto streams = StreamsFor(pattern, docs);
  TwigJoin join(pattern);
  for (size_t q = 0; q < pattern.size(); ++q) {
    join.Append(q, streams[q]);
    join.Close(q);
  }
  join.Advance();
  ASSERT_EQ(join.matched_docs().size(), 2u);
  EXPECT_EQ(join.matched_docs()[0], (DocId{0, 0}));
  EXPECT_EQ(join.matched_docs()[1], (DocId{0, 3}));
}

TEST(TwigJoinTest, WordPredicate) {
  auto docs = ParseDocs({
      "<article><author>Jeff Ullman</author></article>",
      "<article><author>Someone Else</author></article>",
      "<article><note>Ullman elsewhere</note></article>",
  });
  TreePattern pattern = MustParse("//article//author[. contains 'Ullman']");
  auto streams = StreamsFor(pattern, docs);
  TwigJoin join(pattern);
  for (size_t q = 0; q < pattern.size(); ++q) {
    join.Append(q, streams[q]);
    join.Close(q);
  }
  join.Advance();
  ASSERT_EQ(join.answers().size(), 1u);
  EXPECT_EQ(join.answers()[0].doc, (DocId{0, 0}));
}

TEST(TwigJoinTest, MultipleMatchesEnumerateCrossProduct) {
  auto docs = ParseDocs({"<a><b/><b/><c/><c/></a>"});
  TreePattern pattern = MustParse("//a[//b]//c");
  auto streams = StreamsFor(pattern, docs);
  TwigJoin join(pattern);
  for (size_t q = 0; q < pattern.size(); ++q) {
    join.Append(q, streams[q]);
    join.Close(q);
  }
  join.Advance();
  // 1 a x 2 b x 2 c = 4 answer tuples.
  EXPECT_EQ(join.answers().size(), 4u);
  EXPECT_EQ(join.matched_docs().size(), 1u);
}

TEST(TwigJoinTest, AnswerCapStopsEnumeration) {
  auto docs = ParseDocs({"<a><b/><b/><b/><b/><b/></a>"});
  TreePattern pattern = MustParse("//a//b");
  auto streams = StreamsFor(pattern, docs);
  TwigJoin join(pattern, /*max_answers=*/3);
  for (size_t q = 0; q < pattern.size(); ++q) {
    join.Append(q, streams[q]);
    join.Close(q);
  }
  join.Advance();
  EXPECT_EQ(join.answers().size(), 3u);
}

TEST(TwigJoinTest, StreamingEmitsAnswersBeforeAllInput) {
  auto docs = ParseDocs({"<a><b/></a>", "<a><b/></a>", "<a><b/></a>"});
  TreePattern pattern = MustParse("//a//b");
  auto streams = StreamsFor(pattern, docs);

  TwigJoin join(pattern);
  // Feed only document 0 and the start of document 1.
  for (size_t q = 0; q < pattern.size(); ++q) {
    PostingList first_two;
    for (const Posting& p : streams[q]) {
      if (p.doc <= 1) first_two.push_back(p);
    }
    join.Append(q, first_two);
  }
  size_t produced = join.Advance();
  // Document 0 is provably complete (doc 1 postings buffered beyond it).
  EXPECT_EQ(produced, 1u);
  EXPECT_FALSE(join.Done());
  // Now the rest arrives.
  for (size_t q = 0; q < pattern.size(); ++q) {
    PostingList rest;
    for (const Posting& p : streams[q]) {
      if (p.doc > 1) rest.push_back(p);
    }
    join.Append(q, rest);
    join.Close(q);
  }
  produced = join.Advance();
  EXPECT_EQ(produced, 2u);
  EXPECT_TRUE(join.Done());
  EXPECT_EQ(join.postings_consumed(), 6u);
}

TEST(TwigJoinTest, IncompleteStreamsAfterCloseAllStillJoinSafely) {
  auto docs = ParseDocs({"<a><b/></a>"});
  TreePattern pattern = MustParse("//a//b");
  auto streams = StreamsFor(pattern, docs);
  TwigJoin join(pattern);
  join.Append(0, streams[0]);
  // Stream 1 never delivers (timeout); CloseAll yields no spurious answers.
  join.CloseAll();
  join.Advance();
  EXPECT_TRUE(join.answers().empty());
  EXPECT_TRUE(join.Done());
}

class TwigJoinCorpusTest : public ::testing::TestWithParam<const char*> {};

TEST_P(TwigJoinCorpusTest, MatchesLocalEvaluationOnDblpCorpus) {
  xml::corpus::DblpOptions opt;
  opt.target_bytes = 120 << 10;
  auto docs = xml::corpus::GenerateDblp(opt);
  TreePattern pattern = MustParse(GetParam());
  auto streams = StreamsFor(pattern, docs);
  TwigJoin join(pattern);
  for (size_t q = 0; q < pattern.size(); ++q) {
    join.Append(q, streams[q]);
    join.Close(q);
  }
  join.Advance();

  std::vector<Answer> expected = GroundTruth(pattern, docs);
  auto sorted = [](std::vector<Answer> v) {
    std::sort(v.begin(), v.end(), [](const Answer& a, const Answer& b) {
      if (a.doc != b.doc) return a.doc < b.doc;
      return a.elements < b.elements;
    });
    return v;
  };
  EXPECT_EQ(sorted(join.answers()), sorted(expected)) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Queries, TwigJoinCorpusTest,
    ::testing::Values("//article//author",
                      "//article//author[. contains 'Ullman']",
                      "//inproceedings[//booktitle]//title",
                      "//article[//journal]//year",
                      "//dblp//article/title",
                      "//article[contains(.//title,'system')]"));

}  // namespace
}  // namespace kadop::query
