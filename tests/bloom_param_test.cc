// Parameterized property sweeps for the structural Bloom filters: full
// recall must hold for every combination of dyadic depth, basic fp rate,
// trace constant and probe variant.

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "bloom/structural_filter.h"
#include "common/random.h"
#include "index/structural_join.h"

namespace kadop::bloom {
namespace {

using index::Posting;
using index::PostingList;

/// Builds properly nested random element lists over several documents.
void GenerateDoc(Rng& rng, uint32_t doc, PostingList& out) {
  uint32_t counter = 0;
  struct Frame {
    uint32_t start;
    uint16_t level;
  };
  std::vector<Frame> stack;
  const size_t ops = 30 + rng.Uniform(50);
  for (size_t i = 0; i < ops; ++i) {
    const bool open = stack.empty() || (stack.size() < 8 && rng.Bernoulli(0.55));
    if (open) {
      stack.push_back(Frame{++counter,
                            static_cast<uint16_t>(stack.size() + 1)});
    } else {
      Frame f = stack.back();
      stack.pop_back();
      out.push_back(Posting{0, doc, {f.start, ++counter, f.level}});
    }
  }
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    out.push_back(Posting{0, doc, {f.start, ++counter, f.level}});
  }
}

struct Workload {
  PostingList la;
  PostingList lb;
  int levels;
};

Workload MakeWorkload(uint64_t seed) {
  Rng rng(seed);
  PostingList all;
  for (uint32_t d = 0; d < 6; ++d) GenerateDoc(rng, d, all);
  std::sort(all.begin(), all.end());
  Workload w;
  uint32_t max_tag = 0;
  for (const Posting& p : all) {
    if (rng.Bernoulli(0.5)) w.la.push_back(p);
    if (rng.Bernoulli(0.5)) w.lb.push_back(p);
    max_tag = std::max(max_tag, p.sid.end);
  }
  w.levels = LevelsFor(max_tag);
  return w;
}

using ParamTuple = std::tuple<double /*fp*/, int /*trace_c*/,
                              bool /*point_probe*/, uint64_t /*seed*/>;

class StructuralFilterSweep : public ::testing::TestWithParam<ParamTuple> {};

TEST_P(StructuralFilterSweep, AbfNeverLosesTrueDescendants) {
  const auto [fp, trace_c, point_probe, seed] = GetParam();
  Workload w = MakeWorkload(seed);
  StructuralFilterParams params;
  params.levels = w.levels;
  params.target_fp = fp;
  params.trace_c = trace_c;
  params.point_probe = point_probe;
  auto abf = AncestorBloomFilter::Build(w.la, params);
  PostingList filtered = abf.Filter(w.lb);
  for (const Posting& p : index::DescendantSemiJoin(w.la, w.lb)) {
    EXPECT_TRUE(std::binary_search(filtered.begin(), filtered.end(), p))
        << "lost " << p.ToString() << " at fp=" << fp
        << " c=" << trace_c << " point=" << point_probe;
  }
}

TEST_P(StructuralFilterSweep, DbfNeverLosesTrueAncestors) {
  const auto [fp, trace_c, point_probe, seed] = GetParam();
  if (point_probe) GTEST_SKIP() << "point probe is an AB-only variant";
  Workload w = MakeWorkload(seed);
  StructuralFilterParams params;
  params.levels = w.levels;
  params.target_fp = fp;
  params.trace_c = trace_c;
  auto dbf = DescendantBloomFilter::Build(w.lb, params);
  PostingList filtered = dbf.Filter(w.la);
  for (const Posting& p : index::AncestorSemiJoin(w.la, w.lb)) {
    EXPECT_TRUE(std::binary_search(filtered.begin(), filtered.end(), p))
        << "lost " << p.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StructuralFilterSweep,
    ::testing::Combine(::testing::Values(0.01, 0.1, 0.3),
                       ::testing::Values(0, 4),
                       ::testing::Bool(),
                       ::testing::Values(11, 23)));

TEST(StructuralFilterEdgeTest, EmptyListsProduceWorkingFilters) {
  StructuralFilterParams params;
  params.levels = 8;
  auto abf = AncestorBloomFilter::Build({}, params);
  EXPECT_FALSE(abf.MaybeDescendant(Posting{0, 0, {2, 3, 2}}));
  auto dbf = DescendantBloomFilter::Build({}, params);
  EXPECT_FALSE(dbf.MaybeAncestor(Posting{0, 0, {1, 4, 1}}));
}

TEST(StructuralFilterEdgeTest, RootSpanningElement) {
  // An element covering the whole dyadic domain.
  const int l = 6;
  PostingList la{Posting{0, 0, {1, 1u << l, 1}}};
  StructuralFilterParams params;
  params.levels = l;
  auto abf = AncestorBloomFilter::Build(la, params);
  EXPECT_EQ(abf.dclev(), l);
  EXPECT_TRUE(abf.MaybeDescendant(Posting{0, 0, {5, 6, 2}}));
  EXPECT_FALSE(abf.MaybeDescendant(Posting{0, 1, {5, 6, 2}}));
}

TEST(StructuralFilterEdgeTest, DclevLimitsProbeDepth) {
  // All ancestors are narrow: dclev is small even with a deep domain.
  PostingList la;
  for (uint32_t i = 0; i < 50; ++i) {
    la.push_back(Posting{0, i, {3, 4, 2}});
  }
  StructuralFilterParams params;
  params.levels = 20;
  auto abf = AncestorBloomFilter::Build(la, params);
  EXPECT_LE(abf.dclev(), 2);
}

}  // namespace
}  // namespace kadop::bloom
