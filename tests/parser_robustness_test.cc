// Robustness property tests: the XML and pattern parsers must return a
// Status (never crash, never loop) on arbitrarily mutated inputs, and
// accepted documents must round-trip through the serializer.

#include <gtest/gtest.h>

#include "common/random.h"
#include "query/tree_pattern.h"
#include "xml/corpus.h"
#include "xml/parser.h"

namespace kadop {
namespace {

std::string Mutate(std::string input, Rng& rng, int mutations) {
  static const char kBytes[] = "<>&;\"'/[]()x 1.";
  for (int m = 0; m < mutations && !input.empty(); ++m) {
    const size_t pos = rng.Uniform(input.size());
    switch (rng.Uniform(3)) {
      case 0:  // flip
        input[pos] = kBytes[rng.Uniform(sizeof(kBytes) - 1)];
        break;
      case 1:  // delete
        input.erase(pos, 1);
        break;
      case 2:  // insert
        input.insert(pos, 1, kBytes[rng.Uniform(sizeof(kBytes) - 1)]);
        break;
    }
  }
  return input;
}

class XmlFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(XmlFuzzTest, MutatedDocumentsNeverCrashTheParser) {
  Rng rng(GetParam());
  xml::corpus::DblpOptions opt;
  opt.target_bytes = 4 << 10;
  opt.doc_bytes = 2 << 10;
  auto docs = xml::corpus::GenerateDblp(opt);
  const std::string base = xml::SerializeDocument(docs[0]);
  for (int trial = 0; trial < 300; ++trial) {
    const std::string mutated =
        Mutate(base, rng, 1 + static_cast<int>(rng.Uniform(8)));
    auto result = xml::ParseDocument(mutated);
    if (result.ok()) {
      // Whatever parses must re-serialize and re-parse consistently.
      const std::string round = xml::SerializeDocument(result.value());
      auto second = xml::ParseDocument(round);
      ASSERT_TRUE(second.ok()) << round;
      EXPECT_EQ(xml::SerializeDocument(second.value()), round);
    } else {
      EXPECT_FALSE(result.status().ok());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, XmlFuzzTest, ::testing::Range<uint64_t>(1, 7));

class PatternFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PatternFuzzTest, MutatedPatternsNeverCrashTheParser) {
  Rng rng(GetParam());
  const std::string base =
      "//article[//title]//author[. contains 'Ullman' and "
      "contains(.//x,'y')]/z";
  for (int trial = 0; trial < 500; ++trial) {
    const std::string mutated =
        Mutate(base, rng, 1 + static_cast<int>(rng.Uniform(6)));
    auto result = query::ParsePattern(mutated);
    if (result.ok()) {
      // Accepted patterns are well-formed trees.
      const query::TreePattern& p = result.value();
      ASSERT_GT(p.size(), 0u);
      for (size_t q = 0; q < p.size(); ++q) {
        if (p.node(q).parent >= 0) {
          ASSERT_LT(static_cast<size_t>(p.node(q).parent), q);
        }
        for (int child : p.node(q).children) {
          ASSERT_GT(static_cast<size_t>(child), q);
          ASSERT_EQ(p.node(child).parent, static_cast<int>(q));
        }
      }
      // And printable + reparsable.
      auto round = query::ParsePattern(p.ToString());
      EXPECT_TRUE(round.ok()) << p.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PatternFuzzTest,
                         ::testing::Range<uint64_t>(1, 7));

TEST(RoundTripTest, AllGeneratedCorporaRoundTrip) {
  xml::corpus::SimpleCorpusOptions opt;
  opt.target_elements = 1500;
  for (auto* gen :
       {&xml::corpus::GenerateImdb, &xml::corpus::GenerateXmark,
        &xml::corpus::GenerateSwissprot, &xml::corpus::GenerateNasa}) {
    auto docs = (*gen)(opt);
    for (const auto& doc : docs) {
      const std::string text = xml::SerializeDocument(doc);
      auto parsed = xml::ParseDocument(text, doc.uri);
      ASSERT_TRUE(parsed.ok()) << doc.uri;
      EXPECT_EQ(parsed.value().CountElements(), doc.CountElements());
      EXPECT_EQ(xml::SerializeDocument(parsed.value()), text);
    }
  }
}

TEST(RoundTripTest, InexEntitiesSurviveRoundTrip) {
  xml::corpus::InexOptions opt;
  opt.publications = 20;
  auto docs = xml::corpus::GenerateInex(opt);
  for (size_t i = 0; i < 20; ++i) {
    const std::string text = xml::SerializeDocument(docs[i]);
    auto parsed = xml::ParseDocument(text, docs[i].uri);
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value().entities, docs[i].entities);
  }
}

}  // namespace
}  // namespace kadop
