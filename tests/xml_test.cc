#include <gtest/gtest.h>

#include "xml/node.h"
#include "xml/parser.h"

namespace kadop::xml {
namespace {

TEST(SidTest, AncestorChecks) {
  StructuralId a{1, 10, 1};
  StructuralId b{2, 5, 2};
  StructuralId c{6, 9, 2};
  EXPECT_TRUE(a.IsAncestorOf(b));
  EXPECT_TRUE(a.IsAncestorOf(c));
  EXPECT_FALSE(b.IsAncestorOf(c));
  EXPECT_FALSE(b.IsAncestorOf(a));
  EXPECT_TRUE(a.IsParentOf(b));
  EXPECT_EQ(a.Width(), 10u);
}

TEST(SidTest, EnclosesHandlesWordPseudoNodes) {
  StructuralId elem{3, 8, 4};
  StructuralId word{3, 8, 5};  // word pseudo-node of the same element
  EXPECT_TRUE(elem.Encloses(word));
  EXPECT_FALSE(word.Encloses(elem));
  EXPECT_FALSE(elem.Encloses(elem));
  EXPECT_TRUE(elem.IsParentOf(word));
}

TEST(NodeTest, BuildTreeAndCount) {
  auto root = Node::Element("a");
  Node* b = root->AddElement("b");
  b->AddText("hello");
  root->AddElement("c");
  EXPECT_EQ(root->CountElements(), 3u);
  EXPECT_EQ(root->FindChild("b"), b);
  EXPECT_EQ(root->FindChild("zzz"), nullptr);
  EXPECT_EQ(b->parent(), root.get());
}

TEST(AnnotateTest, TagNumberingMatchesPaperScheme) {
  // <a><b/><c><d/></c></a>: tags a=1, b=2,3, c=4, d=5,6, /c=7, /a=8.
  Document doc;
  doc.root = Node::Element("a");
  doc.root->AddElement("b");
  Node* c = doc.root->AddElement("c");
  c->AddElement("d");
  const uint32_t last = AnnotateSids(doc);
  EXPECT_EQ(last, 8u);  // 2 * element count
  EXPECT_EQ(doc.root->sid(), (StructuralId{1, 8, 1}));
  EXPECT_EQ(doc.root->children()[0]->sid(), (StructuralId{2, 3, 2}));
  EXPECT_EQ(c->sid(), (StructuralId{4, 7, 2}));
  EXPECT_EQ(c->children()[0]->sid(), (StructuralId{5, 6, 3}));
}

TEST(AnnotateTest, TextNodesInheritParentIntervalOneLevelDeeper) {
  Document doc;
  doc.root = Node::Element("a");
  doc.root->AddText("hello world");
  AnnotateSids(doc);
  const Node* text = doc.root->children()[0].get();
  EXPECT_EQ(text->sid().start, doc.root->sid().start);
  EXPECT_EQ(text->sid().end, doc.root->sid().end);
  EXPECT_EQ(text->sid().level, doc.root->sid().level + 1);
}

TEST(ParserTest, SimpleElementTree) {
  auto result = ParseDocument("<a><b>text</b><c/></a>", "u");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const Document& doc = result.value();
  EXPECT_EQ(doc.uri, "u");
  ASSERT_NE(doc.root, nullptr);
  EXPECT_EQ(doc.root->label(), "a");
  ASSERT_EQ(doc.root->children().size(), 2u);
  EXPECT_EQ(doc.root->children()[0]->label(), "b");
  EXPECT_EQ(doc.root->children()[0]->children()[0]->text(), "text");
}

TEST(ParserTest, AttributesBecomeChildElements) {
  auto result = ParseDocument("<a x=\"1\" y='two'><b/></a>");
  ASSERT_TRUE(result.ok());
  const Node* root = result.value().root.get();
  ASSERT_EQ(root->children().size(), 3u);
  EXPECT_EQ(root->children()[0]->label(), "x");
  EXPECT_EQ(root->children()[0]->children()[0]->text(), "1");
  EXPECT_EQ(root->children()[1]->label(), "y");
  EXPECT_EQ(root->children()[2]->label(), "b");
}

TEST(ParserTest, PredefinedEscapes) {
  auto result = ParseDocument("<a>x &amp; y &lt;z&gt; &quot;q&quot;</a>");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().root->children()[0]->text(), "x & y <z> \"q\"");
}

TEST(ParserTest, EntityDeclarationsAndReferences) {
  const char* input =
      "<!DOCTYPE article [\n"
      "<!ENTITY abs SYSTEM \"abs1.xml\">\n"
      "<!ENTITY paper SYSTEM \"paper1.xml\">\n"
      "]>\n"
      "<article><abstract>&abs;</abstract>&paper;</article>";
  auto result = ParseDocument(input);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const Document& doc = result.value();
  EXPECT_EQ(doc.entities.at("abs"), "abs1.xml");
  EXPECT_EQ(doc.entities.at("paper"), "paper1.xml");
  const Node* abstract = doc.root->children()[0].get();
  ASSERT_EQ(abstract->children().size(), 1u);
  EXPECT_TRUE(abstract->children()[0]->IsEntityRef());
  EXPECT_EQ(abstract->children()[0]->label(), "abs");
  EXPECT_TRUE(doc.root->children()[1]->IsEntityRef());
}

TEST(ParserTest, CommentsAndPiAreSkipped) {
  auto result = ParseDocument(
      "<?xml version=\"1.0\"?><!-- hi --><a><!-- inner --><b/></a>");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().root->CountElements(), 2u);
}

TEST(ParserTest, Cdata) {
  auto result = ParseDocument("<a><![CDATA[x < y & z]]></a>");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().root->children()[0]->text(), "x < y & z");
}

TEST(ParserTest, WhitespaceOnlyTextIsDropped) {
  auto result = ParseDocument("<a>\n  <b/>\n  <c/>\n</a>");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().root->children().size(), 2u);
}

TEST(ParserTest, ErrorOnMismatchedTags) {
  EXPECT_FALSE(ParseDocument("<a><b></a></b>").ok());
  EXPECT_FALSE(ParseDocument("<a>").ok());
  EXPECT_FALSE(ParseDocument("<a/><b/>").ok());
  EXPECT_FALSE(ParseDocument("").ok());
  EXPECT_FALSE(ParseDocument("just text").ok());
}

TEST(ParserTest, SidsAreAnnotatedAfterParse) {
  auto result = ParseDocument("<a><b/></a>");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().root->sid(), (StructuralId{1, 4, 1}));
}

TEST(SerializerTest, RoundTrip) {
  const char* input =
      "<!DOCTYPE article [\n<!ENTITY abs SYSTEM \"a.xml\">\n]>\n"
      "<article><title>More on XML</title><abstract>&abs;</abstract>"
      "</article>";
  auto first = ParseDocument(input);
  ASSERT_TRUE(first.ok());
  std::string serialized = SerializeDocument(first.value());
  auto second = ParseDocument(serialized);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(SerializeDocument(second.value()), serialized);
  EXPECT_EQ(second.value().entities.at("abs"), "a.xml");
}

TEST(SerializerTest, EscapesSpecialCharacters) {
  Document doc;
  doc.root = Node::Element("a");
  doc.root->AddText("x < y & z");
  EXPECT_EQ(SerializeDocument(doc), "<a>x &lt; y &amp; z</a>");
}

TEST(SerializerTest, EmptyElementShortForm) {
  Document doc;
  doc.root = Node::Element("a");
  doc.root->AddElement("b");
  EXPECT_EQ(SerializeDocument(doc), "<a><b/></a>");
}

TEST(NodeTest, DetachLastChild) {
  auto root = Node::Element("a");
  root->AddElement("b");
  Node* c = root->AddElement("c");
  auto detached = root->DetachLastChild();
  EXPECT_EQ(detached.get(), c);
  EXPECT_EQ(detached->parent(), nullptr);
  EXPECT_EQ(root->children().size(), 1u);
}

}  // namespace
}  // namespace kadop::xml
