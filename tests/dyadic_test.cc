#include <gtest/gtest.h>

#include <set>

#include "bloom/dyadic.h"
#include "common/random.h"

namespace kadop::bloom {
namespace {

TEST(DyadicTest, LevelsFor) {
  EXPECT_EQ(LevelsFor(2), 1);
  EXPECT_EQ(LevelsFor(3), 2);
  EXPECT_EQ(LevelsFor(8), 3);
  EXPECT_EQ(LevelsFor(9), 4);
  EXPECT_EQ(LevelsFor(1000), 10);
}

TEST(DyadicTest, PaperExampleCover) {
  // D[1,7] for l=3 is {[1,4], [5,6], [7,7]} (Figure 4 example).
  auto cover = DyadicCover(1, 7, 3);
  ASSERT_EQ(cover.size(), 3u);
  EXPECT_EQ(cover[0], (DyadicInterval{1, 4, 2}));
  EXPECT_EQ(cover[1], (DyadicInterval{5, 6, 1}));
  EXPECT_EQ(cover[2], (DyadicInterval{7, 7, 0}));
}

TEST(DyadicTest, PaperExampleContainers) {
  // Dc[3,4] = {[3,4], [1,4], [1,8]}.
  auto chain = DyadicContainers(3, 4, 3);
  ASSERT_EQ(chain.size(), 3u);
  EXPECT_EQ(chain[0], (DyadicInterval{3, 4, 1}));
  EXPECT_EQ(chain[1], (DyadicInterval{1, 4, 2}));
  EXPECT_EQ(chain[2], (DyadicInterval{1, 8, 3}));
}

TEST(DyadicTest, FullDomainIsOneInterval) {
  auto cover = DyadicCover(1, 8, 3);
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0], (DyadicInterval{1, 8, 3}));
}

TEST(DyadicTest, SinglePoint) {
  auto cover = DyadicCover(5, 5, 3);
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0], (DyadicInterval{5, 5, 0}));
  auto chain = DyadicContainers(5, 5, 3);
  EXPECT_EQ(chain.size(), 4u);  // levels 0..3
}

TEST(DyadicTest, AncestorsChain) {
  DyadicInterval iv{5, 5, 0};
  auto chain = DyadicAncestors(iv, 3);
  ASSERT_EQ(chain.size(), 4u);
  EXPECT_EQ(chain[0], (DyadicInterval{5, 5, 0}));
  EXPECT_EQ(chain[1], (DyadicInterval{5, 6, 1}));
  EXPECT_EQ(chain[2], (DyadicInterval{5, 8, 2}));
  EXPECT_EQ(chain[3], (DyadicInterval{1, 8, 3}));
  for (const auto& anc : chain) {
    EXPECT_TRUE(anc.Contains(iv));
  }
}

TEST(DyadicTest, CodesAreUniquePerInterval) {
  std::set<uint64_t> codes;
  const int l = 5;
  for (int j = 0; j <= l; ++j) {
    const uint32_t len = 1u << j;
    for (uint32_t lo = 1; lo + len - 1 <= (1u << l); lo += len) {
      DyadicInterval iv{lo, lo + len - 1, static_cast<uint8_t>(j)};
      EXPECT_TRUE(codes.insert(iv.Code()).second) << iv.ToString();
    }
  }
  EXPECT_EQ(codes.size(), 63u);  // 32+16+8+4+2+1
}

class DyadicPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DyadicPropertyTest, CoverIsDisjointMinimalAndExact) {
  Rng rng(GetParam());
  const int l = 12;
  const uint32_t domain = 1u << l;
  for (int trial = 0; trial < 200; ++trial) {
    uint32_t x = static_cast<uint32_t>(rng.UniformRange(1, domain));
    uint32_t y = static_cast<uint32_t>(rng.UniformRange(x, domain));
    auto cover = DyadicCover(x, y, l);
    // Exact tiling: consecutive, starts at x, ends at y.
    EXPECT_EQ(cover.front().lo, x);
    EXPECT_EQ(cover.back().hi, y);
    for (size_t i = 1; i < cover.size(); ++i) {
      EXPECT_EQ(cover[i].lo, cover[i - 1].hi + 1);
    }
    // Dyadic alignment.
    for (const auto& iv : cover) {
      EXPECT_EQ((iv.lo - 1) % iv.Length(), 0u);
      EXPECT_EQ(iv.Length(), 1u << iv.level);
    }
    // Size bound 2l.
    EXPECT_LE(cover.size(), static_cast<size_t>(2 * l));
  }
}

TEST_P(DyadicPropertyTest, ContainersContainIntervalAndFormChain) {
  Rng rng(GetParam() ^ 0x55);
  const int l = 10;
  const uint32_t domain = 1u << l;
  for (int trial = 0; trial < 200; ++trial) {
    uint32_t x = static_cast<uint32_t>(rng.UniformRange(1, domain));
    uint32_t y = static_cast<uint32_t>(rng.UniformRange(x, domain));
    auto chain = DyadicContainers(x, y, l);
    ASSERT_FALSE(chain.empty());
    EXPECT_EQ(chain.back(), (DyadicInterval{1, domain,
                                            static_cast<uint8_t>(l)}));
    for (size_t i = 0; i < chain.size(); ++i) {
      EXPECT_LE(chain[i].lo, x);
      EXPECT_GE(chain[i].hi, y);
      if (i > 0) {
        EXPECT_TRUE(chain[i].Contains(chain[i - 1]));
      }
    }
  }
}

/// The containment lemma behind Theorem 2 (as implemented): for nested
/// intervals, every cover piece of the inner is contained in a cover piece
/// of the outer.
TEST_P(DyadicPropertyTest, NestedCoverPiecesAreContained) {
  Rng rng(GetParam() ^ 0x77);
  const int l = 10;
  const uint32_t domain = 1u << l;
  for (int trial = 0; trial < 200; ++trial) {
    uint32_t xa = static_cast<uint32_t>(rng.UniformRange(1, domain - 1));
    uint32_t ya = static_cast<uint32_t>(rng.UniformRange(xa + 1, domain));
    if (ya - xa < 2) continue;
    uint32_t xb = static_cast<uint32_t>(rng.UniformRange(xa, ya));
    uint32_t yb = static_cast<uint32_t>(rng.UniformRange(xb, ya));
    auto outer = DyadicCover(xa, ya, l);
    auto inner = DyadicCover(xb, yb, l);
    for (const auto& piece : inner) {
      bool contained = false;
      for (const auto& big : outer) {
        if (big.Contains(piece)) {
          contained = true;
          break;
        }
      }
      EXPECT_TRUE(contained)
          << "inner piece " << piece.ToString() << " of [" << xb << ","
          << yb << "] not inside any piece of [" << xa << "," << ya << "]";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DyadicPropertyTest,
                         ::testing::Range<uint64_t>(1, 9));

}  // namespace
}  // namespace kadop::bloom
