// PostingCache unit tests (LRU bound, version invalidation, admission
// cap) plus end-to-end checks through a simulated KadoP network: a
// repeated identical query with the cache on is served without a single
// additional Get message, and an append between the two runs invalidates
// the cached lists so the repeat query sees the new postings.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/kadop.h"
#include "index/codec.h"
#include "index/posting.h"
#include "query/posting_cache.h"
#include "xml/corpus.h"

namespace kadop::query {
namespace {

using index::Posting;
using index::PostingList;

PostingList MakeList(uint32_t doc, size_t n) {
  PostingList list;
  for (uint32_t i = 0; i < n; ++i) {
    list.push_back(Posting{0, doc, {i + 1, i + 2, 3}});
  }
  return list;
}

TEST(PostingCacheTest, HitRequiresMatchingVersion) {
  PostingCache cache;
  cache.Insert("k", index::kMinPosting, index::kMaxPosting, 7, MakeList(1, 4));
  auto hit = cache.Lookup("k", index::kMinPosting, index::kMaxPosting, 7);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, MakeList(1, 4));
  EXPECT_EQ(cache.hits(), 1u);

  // The store moved on: the stale entry must be dropped, not served.
  auto stale = cache.Lookup("k", index::kMinPosting, index::kMaxPosting, 8);
  EXPECT_EQ(stale, nullptr);
  EXPECT_EQ(cache.invalidations(), 1u);
  EXPECT_EQ(cache.entries(), 0u);
  // Even the old version misses now (the entry is gone).
  EXPECT_EQ(cache.Lookup("k", index::kMinPosting, index::kMaxPosting, 7),
            nullptr);
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(PostingCacheTest, RangeIsPartOfTheKey) {
  PostingCache cache;
  const Posting lo{0, 2, {0, 0, 0}};
  const Posting hi{0, 3, {0, 0, 0}};
  cache.Insert("k", lo, hi, 1, MakeList(2, 2));
  EXPECT_EQ(cache.Lookup("k", index::kMinPosting, index::kMaxPosting, 1),
            nullptr);
  EXPECT_NE(cache.Lookup("k", lo, hi, 1), nullptr);
}

TEST(PostingCacheTest, EvictsLeastRecentlyUsedToFit) {
  PostingCacheConfig config;
  config.max_bytes = index::codec::RawBytes(25);
  config.max_entry_bytes = config.max_bytes;
  PostingCache cache(config);
  cache.Insert("a", index::kMinPosting, index::kMaxPosting, 1, MakeList(1, 10));
  cache.Insert("b", index::kMinPosting, index::kMaxPosting, 1, MakeList(2, 10));
  // Touch "a" so "b" is the LRU victim.
  EXPECT_NE(cache.Lookup("a", index::kMinPosting, index::kMaxPosting, 1),
            nullptr);
  cache.Insert("c", index::kMinPosting, index::kMaxPosting, 1, MakeList(3, 10));
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_NE(cache.Lookup("a", index::kMinPosting, index::kMaxPosting, 1),
            nullptr);
  EXPECT_EQ(cache.Lookup("b", index::kMinPosting, index::kMaxPosting, 1),
            nullptr);
  EXPECT_NE(cache.Lookup("c", index::kMinPosting, index::kMaxPosting, 1),
            nullptr);
  EXPECT_LE(cache.bytes(), config.max_bytes);
}

TEST(PostingCacheTest, OversizedListsAreNeverAdmitted) {
  PostingCacheConfig config;
  config.max_bytes = index::codec::RawBytes(100);
  config.max_entry_bytes = index::codec::RawBytes(5);
  PostingCache cache(config);
  cache.Insert("big", index::kMinPosting, index::kMaxPosting, 1,
               MakeList(1, 6));
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
}

TEST(PostingCacheTest, ReinsertReplacesAndAccountsBytes) {
  PostingCache cache;
  cache.Insert("k", index::kMinPosting, index::kMaxPosting, 1, MakeList(1, 8));
  cache.Insert("k", index::kMinPosting, index::kMaxPosting, 2, MakeList(1, 3));
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.bytes(), index::codec::RawBytes(3));
  auto hit = cache.Lookup("k", index::kMinPosting, index::kMaxPosting, 2);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->size(), 3u);
}

TEST(PostingCacheTest, SharedInsertIsZeroCopyOnHit) {
  // The executor hands the cache the same shared_ptr it feeds the join:
  // a hit must return that exact list (pointer identity), not a copy.
  PostingCache cache;
  auto list = std::make_shared<const PostingList>(MakeList(1, 16));
  const PostingList* raw = list.get();
  cache.Insert("k", index::kMinPosting, index::kMaxPosting, 3, list);
  EXPECT_EQ(cache.bytes(), index::codec::RawBytes(16));

  auto hit = cache.Lookup("k", index::kMinPosting, index::kMaxPosting, 3);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit.get(), raw);  // zero-copy: the cached entry IS the list
  // Three owners now: the local handle, the cache entry, and the hit.
  EXPECT_EQ(hit.use_count(), 3);

  // Invalidation semantics are unchanged by the shared path: a version
  // bump drops the entry, but outstanding references stay valid.
  auto stale = cache.Lookup("k", index::kMinPosting, index::kMaxPosting, 4);
  EXPECT_EQ(stale, nullptr);
  EXPECT_EQ(cache.invalidations(), 1u);
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(hit.use_count(), 2);  // cache released its share
  EXPECT_EQ(*hit, MakeList(1, 16));

  // A null shared insert is ignored, never admitted as an empty entry.
  cache.Insert("n", index::kMinPosting, index::kMaxPosting, 1,
               std::shared_ptr<const PostingList>());
  EXPECT_EQ(cache.entries(), 0u);
}

// ---------------------------------------------------------------------------
// End-to-end: cache behavior through a simulated network.

struct CacheNet {
  core::KadopNet net;
  std::vector<xml::Document> docs;

  explicit CacheNet(bool dpp) : net(MakeOptions(dpp)) {
    xml::corpus::DblpOptions copt;
    copt.target_bytes = 60 << 10;
    docs = xml::corpus::GenerateDblp(copt);
    std::vector<const xml::Document*> ptrs;
    for (const auto& d : docs) ptrs.push_back(&d);
    net.RegisterDocuments(docs);
    net.PublishAndWait(1, ptrs);
  }

  static core::KadopOptions MakeOptions(bool dpp) {
    core::KadopOptions opt;
    opt.peers = 8;
    opt.enable_dpp = dpp;
    return opt;
  }

  query::QueryResult Run(QueryStrategy strategy, bool cached) {
    QueryOptions qopt;
    qopt.strategy = strategy;
    qopt.cache_postings = cached;
    auto result = net.QueryAndWait(4, "//article//author", qopt);
    EXPECT_TRUE(result.ok());
    return result.ok() ? result.take() : query::QueryResult{};
  }
};

TEST(PostingCacheE2eTest, RepeatBaselineQueryIssuesZeroGets) {
  CacheNet harness(/*dpp=*/false);
  const auto first = harness.Run(QueryStrategy::kBaseline, true);
  EXPECT_GT(first.answers.size(), 0u);
  EXPECT_EQ(first.metrics.cache_hits, 0u);
  EXPECT_GT(first.metrics.cache_misses, 0u);

  const uint64_t gets_before = harness.net.dht().AggregateStats().gets_served;
  const auto second = harness.Run(QueryStrategy::kBaseline, true);
  const uint64_t gets_after = harness.net.dht().AggregateStats().gets_served;

  // The acceptance bar: the repeat query is answered entirely from the
  // cache — zero Get messages — with identical answers.
  EXPECT_EQ(gets_after, gets_before);
  EXPECT_EQ(second.metrics.cache_misses, 0u);
  EXPECT_GT(second.metrics.cache_hits, 0u);
  EXPECT_EQ(second.metrics.posting_wire_bytes, 0u);
  EXPECT_EQ(second.answers.size(), first.answers.size());
  EXPECT_EQ(second.matched_docs.size(), first.matched_docs.size());
}

TEST(PostingCacheE2eTest, RepeatDppQueryIssuesZeroGets) {
  CacheNet harness(/*dpp=*/true);
  const auto first = harness.Run(QueryStrategy::kDpp, true);
  EXPECT_GT(first.answers.size(), 0u);

  const uint64_t gets_before = harness.net.dht().AggregateStats().gets_served;
  const auto second = harness.Run(QueryStrategy::kDpp, true);
  const uint64_t gets_after = harness.net.dht().AggregateStats().gets_served;

  EXPECT_EQ(gets_after, gets_before);
  EXPECT_GT(second.metrics.cache_hits, 0u);
  EXPECT_EQ(second.metrics.cache_misses, 0u);
  EXPECT_EQ(second.answers.size(), first.answers.size());
}

TEST(PostingCacheE2eTest, AppendInvalidatesCachedLists) {
  CacheNet harness(/*dpp=*/false);
  const auto before = harness.Run(QueryStrategy::kBaseline, true);
  EXPECT_GT(before.answers.size(), 0u);

  // Publish more documents: the term owners bump their posting versions.
  xml::corpus::DblpOptions copt;
  copt.target_bytes = 30 << 10;
  copt.seed = 99;
  auto extra = xml::corpus::GenerateDblp(copt);
  std::vector<const xml::Document*> ptrs;
  for (const auto& d : extra) ptrs.push_back(&d);
  harness.net.PublishAndWait(2, ptrs);

  // The repeat query must see the appended postings, not the cached
  // pre-append lists: it matches an uncached (ground-truth) run exactly.
  const auto cached = harness.Run(QueryStrategy::kBaseline, true);
  const auto fresh = harness.Run(QueryStrategy::kBaseline, false);
  EXPECT_GT(cached.metrics.cache_misses, 0u);  // stale entries invalidated
  EXPECT_EQ(cached.answers.size(), fresh.answers.size());
  EXPECT_EQ(cached.matched_docs.size(), fresh.matched_docs.size());
  EXPECT_GT(cached.answers.size(), before.answers.size());
}

}  // namespace
}  // namespace kadop::query
