// Seeded fault injection: each fault class (drop, duplication, jitter,
// slow peer) in isolation at the network layer, determinism of the fault
// schedule, and the client-side retry/timeout machinery built on top —
// including the regression that a Get aimed at a peer that dies before
// replying resolves with kDeadlineExceeded instead of hanging.

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <tuple>
#include <vector>

#include "dht/dht.h"
#include "dht/ring.h"
#include "sim/fault_plan.h"
#include "sim/network.h"
#include "sim/scheduler.h"

namespace kadop {
namespace {

using dht::GetResult;
using index::Posting;
using index::PostingList;

// ---------------------------------------------------------------------------
// Network-level isolation of each fault class.

struct BytesPayload final : sim::Payload {
  size_t bytes;
  explicit BytesPayload(size_t b) : bytes(b) {}
  size_t SizeBytes() const override { return bytes; }
  std::string_view TypeName() const override { return "BytesPayload"; }
};

class Recorder final : public sim::Actor {
 public:
  void HandleMessage(const sim::Message& msg) override {
    arrivals.push_back({msg.from, clock ? clock->Now() : 0.0});
  }
  sim::Scheduler* clock = nullptr;
  std::vector<std::pair<sim::NodeIndex, sim::SimTime>> arrivals;
};

sim::NetworkParams SimpleParams() {
  sim::NetworkParams p;
  p.hop_latency_s = 0.01;
  p.uplink_bytes_per_s = 1000.0;
  p.downlink_bytes_per_s = 4000.0;
  p.header_bytes = 0;
  return p;
}

class FaultNetworkTest : public ::testing::Test {
 protected:
  FaultNetworkTest() : net(&sched, SimpleParams()) {
    for (auto& r : actors) {
      r.clock = &sched;
      net.AddNode(&r);
    }
  }
  void Send(sim::NodeIndex from, sim::NodeIndex to, size_t bytes = 1000) {
    net.Send({from, to, sim::TrafficCategory::kControl,
              std::make_shared<BytesPayload>(bytes)});
  }
  sim::Scheduler sched;
  sim::Network net;
  Recorder actors[4];
};

TEST_F(FaultNetworkTest, DropLosesTheMessageButChargesTheSender) {
  sim::FaultOptions fo;
  fo.drop_p = 1.0;
  sim::FaultPlan plan(fo);
  net.SetFaultPlan(&plan);
  const uint64_t bytes_before = net.traffic().bytes;
  Send(0, 1);
  sched.RunUntilIdle();
  EXPECT_TRUE(actors[1].arrivals.empty());
  EXPECT_EQ(net.dropped_messages(), 1u);
  EXPECT_EQ(plan.stats().drops, 1u);
  // The sender transmitted: uplink bytes are still accounted.
  EXPECT_GT(net.traffic().bytes, bytes_before);
}

TEST_F(FaultNetworkTest, DuplicationDeliversTwiceInOrder) {
  sim::FaultOptions fo;
  fo.dup_p = 1.0;
  sim::FaultPlan plan(fo);
  net.SetFaultPlan(&plan);
  Send(0, 1);
  sched.RunUntilIdle();
  ASSERT_EQ(actors[1].arrivals.size(), 2u);
  EXPECT_EQ(plan.stats().dups, 1u);
  // The copy queues behind the original on the receiver downlink.
  EXPECT_LT(actors[1].arrivals[0].second, actors[1].arrivals[1].second);
}

TEST_F(FaultNetworkTest, JitterDelaysDeliveryDeterministically) {
  // Fault-free baseline first.
  Send(0, 1);
  sched.RunUntilIdle();
  ASSERT_EQ(actors[1].arrivals.size(), 1u);
  const sim::SimTime baseline = actors[1].arrivals[0].second;

  auto jittered_arrival = [&] {
    sim::Scheduler sched2;
    sim::Network net2(&sched2, SimpleParams());
    Recorder recv;
    Recorder send;
    send.clock = recv.clock = &sched2;
    net2.AddNode(&send);
    net2.AddNode(&recv);
    sim::FaultOptions fo;
    fo.jitter_mean_s = 0.05;
    sim::FaultPlan plan(fo);
    net2.SetFaultPlan(&plan);
    net2.Send({0, 1, sim::TrafficCategory::kControl,
               std::make_shared<BytesPayload>(1000)});
    sched2.RunUntilIdle();
    EXPECT_EQ(plan.stats().delayed, 1u);
    return recv.arrivals.at(0).second;
  };
  const sim::SimTime a = jittered_arrival();
  EXPECT_GT(a, baseline);
  EXPECT_EQ(a, jittered_arrival());  // same seed, bit-identical delay
}

TEST_F(FaultNetworkTest, SlowPeerPenalizesOnlyItsOwnSends) {
  sim::FaultOptions fo;
  fo.slow_extra_s = 0.5;
  fo.slow_peers = {2};
  sim::FaultPlan plan(fo);
  net.SetFaultPlan(&plan);
  Send(0, 1);  // fast sender
  Send(2, 3);  // slow sender
  sched.RunUntilIdle();
  ASSERT_EQ(actors[1].arrivals.size(), 1u);
  ASSERT_EQ(actors[3].arrivals.size(), 1u);
  EXPECT_NEAR(actors[3].arrivals[0].second - actors[1].arrivals[0].second,
              0.5, 1e-9);
}

TEST(FaultPlanTest, SameSeedReplaysIdenticalDecisions) {
  auto run = [](uint64_t seed) {
    sim::FaultOptions fo;
    fo.seed = seed;
    fo.drop_p = 0.2;
    fo.dup_p = 0.2;
    fo.jitter_mean_s = 0.01;
    sim::FaultPlan plan(fo);
    std::vector<std::tuple<bool, bool, double>> decisions;
    const sim::Message msg{0, 1, sim::TrafficCategory::kControl,
                           std::make_shared<BytesPayload>(100)};
    for (int i = 0; i < 300; ++i) {
      const sim::FaultDecision d = plan.OnSend(msg);
      decisions.emplace_back(d.drop, d.duplicate, d.extra_delay_s);
    }
    return decisions;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));
}

// ---------------------------------------------------------------------------
// DHT-level retry / timeout behaviour under faults.

struct TestNet {
  explicit TestNet(size_t peers, dht::DhtOptions options = {})
      : network(&scheduler), dht(&scheduler, &network, options) {
    dht.AddPeers(peers);
  }
  sim::Scheduler scheduler;
  sim::Network network;
  dht::Dht dht;
};

Posting MakePosting(uint32_t doc, uint32_t start) {
  return Posting{1, doc, {start, start + 1, 2}};
}

TEST(FaultInjectionTest, GetFromDeadPeerResolvesWithDeadlineExceeded) {
  dht::DhtOptions options;
  options.retry.timeout_s = 0.5;
  TestNet net(8, options);
  PostingList postings{MakePosting(1, 1)};
  net.dht.peer(0)->Append("l:a", postings, nullptr);
  net.scheduler.RunUntilIdle();

  // The owner dies before it can ever reply; no restabilization, so every
  // attempt keeps aiming at the corpse.
  const sim::NodeIndex owner = net.dht.OwnerOf(dht::HashKey("l:a"));
  net.dht.FailPeer(owner);
  const sim::NodeIndex requester = (owner + 1) % 8;

  std::optional<GetResult> got;
  net.dht.peer(requester)->Get("l:a",
                               [&](GetResult r) { got = std::move(r); });
  net.scheduler.RunUntilIdle();  // terminates: budget is bounded
  ASSERT_TRUE(got.has_value()) << "get hung past its retry budget";
  EXPECT_FALSE(got->complete);
  EXPECT_TRUE(got->status.IsDeadlineExceeded()) << got->status.ToString();
}

TEST(FaultInjectionTest, PlainTimeoutReportsTimeoutStatus) {
  TestNet net(8);  // retry disabled
  PostingList postings{MakePosting(1, 1)};
  net.dht.peer(0)->Append("l:a", postings, nullptr);
  net.scheduler.RunUntilIdle();
  const sim::NodeIndex owner = net.dht.OwnerOf(dht::HashKey("l:a"));
  net.dht.FailPeer(owner);
  std::optional<GetResult> got;
  net.dht.peer((owner + 1) % 8)
      ->Get("l:a", [&](GetResult r) { got = std::move(r); },
            /*timeout_s=*/1.0);
  net.scheduler.RunUntilIdle();
  ASSERT_TRUE(got.has_value());
  EXPECT_FALSE(got->complete);
  EXPECT_EQ(got->status.code(), StatusCode::kTimeout);
}

TEST(FaultInjectionTest, DuplicatedAppendsApplyOnce) {
  dht::DhtOptions options;
  options.retry.timeout_s = 5.0;  // enables dedup ids; never fires here
  TestNet net(8, options);
  sim::FaultOptions fo;
  fo.dup_p = 1.0;  // every message (request, forward, ack) arrives twice
  sim::FaultPlan plan(fo);
  net.network.SetFaultPlan(&plan);

  PostingList postings;
  for (uint32_t i = 0; i < 50; ++i) postings.push_back(MakePosting(i, 1));
  std::optional<Status> ack;
  net.dht.peer(0)->Append("l:dup", postings, [&](Status st) { ack = st; });
  net.scheduler.RunUntilIdle();
  ASSERT_TRUE(ack.has_value());
  EXPECT_TRUE(ack->ok());

  net.network.SetFaultPlan(nullptr);
  std::optional<GetResult> got;
  net.dht.peer(1)->Get("l:dup", [&](GetResult r) { got = std::move(r); });
  net.scheduler.RunUntilIdle();
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(got->complete);
  EXPECT_EQ(got->postings.size(), postings.size());
}

TEST(FaultInjectionTest, RetriesPushWritesAndReadsThroughLossyLinks) {
  dht::DhtOptions options;
  options.retry.timeout_s = 0.5;
  options.retry.max_retries = 8;
  TestNet net(8, options);
  sim::FaultOptions fo;
  fo.seed = 17;
  fo.drop_p = 0.1;
  fo.dup_p = 0.05;
  fo.jitter_mean_s = 0.002;
  sim::FaultPlan plan(fo);
  net.network.SetFaultPlan(&plan);

  // A workload wide enough that 10% loss is certain to hit it many times:
  // every key must still land and read back in full, via retries.
  PostingList postings;
  for (uint32_t i = 0; i < 100; ++i) postings.push_back(MakePosting(i, 1));
  for (int k = 0; k < 10; ++k) {
    const std::string key = "l:lossy" + std::to_string(k);
    std::optional<Status> ack;
    net.dht.peer(2)->Append(key, postings, [&](Status st) { ack = st; });
    net.scheduler.RunUntilIdle();
    ASSERT_TRUE(ack.has_value()) << key;
    ASSERT_TRUE(ack->ok()) << key << ": " << ack->ToString();
  }

  for (int k = 0; k < 10; ++k) {
    const std::string key = "l:lossy" + std::to_string(k);
    std::optional<GetResult> got;
    net.dht.peer(5)->Get(key, [&](GetResult r) { got = std::move(r); });
    net.scheduler.RunUntilIdle();
    ASSERT_TRUE(got.has_value()) << key;
    EXPECT_TRUE(got->complete) << key << ": " << got->status.ToString();
    EXPECT_EQ(got->postings.size(), postings.size()) << key;
  }
  EXPECT_GT(plan.stats().drops, 0u);
}

struct FaultyRunOutcome {
  double now = 0;
  uint64_t executed = 0;
  uint64_t traffic_messages = 0;
  uint64_t traffic_bytes = 0;
  uint64_t drops = 0;
  uint64_t dups = 0;
  uint64_t delayed = 0;
  size_t got_postings = 0;
  bool complete = false;

  friend bool operator==(const FaultyRunOutcome&,
                         const FaultyRunOutcome&) = default;
};

FaultyRunOutcome RunFaultyWorkload(uint64_t seed) {
  dht::DhtOptions options;
  options.retry.timeout_s = 0.5;
  options.retry.max_retries = 8;
  TestNet net(8, options);
  sim::FaultOptions fo;
  fo.seed = seed;
  fo.drop_p = 0.1;
  fo.dup_p = 0.1;
  fo.jitter_mean_s = 0.003;
  sim::FaultPlan plan(fo);
  net.network.SetFaultPlan(&plan);

  for (int batch = 0; batch < 4; ++batch) {
    PostingList postings;
    for (uint32_t i = 0; i < 60; ++i) {
      postings.push_back(MakePosting(batch * 60 + i, 1));
    }
    net.dht.peer(batch % 8)->Append("l:det", postings, [](Status) {});
  }
  net.scheduler.RunUntilIdle();

  FaultyRunOutcome out;
  std::optional<GetResult> got;
  net.dht.peer(6)->Get("l:det", [&](GetResult r) { got = std::move(r); });
  net.scheduler.RunUntilIdle();
  out.now = net.scheduler.Now();
  out.executed = net.scheduler.executed_events();
  out.traffic_messages = net.network.traffic().messages;
  out.traffic_bytes = net.network.traffic().bytes;
  out.drops = plan.stats().drops;
  out.dups = plan.stats().dups;
  out.delayed = plan.stats().delayed;
  if (got.has_value()) {
    out.got_postings = got->postings.size();
    out.complete = got->complete;
  }
  return out;
}

TEST(FaultInjectionTest, SameSeedWorkloadsAreByteIdentical) {
  const FaultyRunOutcome a = RunFaultyWorkload(23);
  const FaultyRunOutcome b = RunFaultyWorkload(23);
  EXPECT_EQ(a, b);
  EXPECT_GT(a.drops + a.dups + a.delayed, 0u);
}

}  // namespace
}  // namespace kadop
