#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/kadop.h"
#include "xml/corpus.h"

namespace kadop::fundex {
namespace {

using core::KadopNet;
using core::KadopOptions;
using index::DocId;

constexpr const char* kInexQuery =
    "//article[contains(.//title,'system') and "
    "contains(.//abstract,'interface')]";

/// Fixture: an INEX-like two-file collection published under a given
/// intensional mode.
class FundexTest : public ::testing::TestWithParam<IntensionalMode> {
 protected:
  void SetUp() override {
    xml::corpus::InexOptions copt;
    copt.publications = 120;
    copt.planted_matches = 6;
    docs_ = xml::corpus::GenerateInex(copt);

    KadopOptions opt;
    opt.peers = 10;
    net_ = std::make_unique<KadopNet>(opt);
    net_->RegisterDocuments(docs_);
    // Publish only the main documents; abstracts are intensional targets.
    std::vector<const xml::Document*> mains;
    for (size_t i = 0; i < 120; ++i) mains.push_back(&docs_[i]);
    net_->FundexPublishAndWait(1, mains, GetParam());
  }

  /// Oracle: documents whose title matches AND whose abstract (resolved)
  /// matches — what a user means by the query.
  std::set<uint32_t> TrueMatches() {
    std::set<uint32_t> out;
    auto title = query::ParsePattern(
        "//article[contains(.//title,'system')]");
    auto abs = query::ParsePattern("//abstractBody//\"interface\"");
    for (uint32_t i = 0; i < 120; ++i) {
      const bool title_hit =
          query::MatchesDocument(title.value(), docs_[i]);
      const bool abs_hit =
          query::MatchesDocument(abs.value(), docs_[120 + i]);
      if (title_hit && abs_hit) out.insert(i);
    }
    return out;
  }

  std::set<uint32_t> MatchedDocSeqs(const FundexQueryResult& result) {
    std::set<uint32_t> out;
    for (const DocId& d : result.matched_docs) out.insert(d.doc);
    return out;
  }

  std::vector<xml::Document> docs_;
  std::unique_ptr<KadopNet> net_;
};

TEST_P(FundexTest, RecallAndPrecisionPerMode) {
  auto result = net_->FundexQueryAndWait(0, kInexQuery, GetParam());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const std::set<uint32_t> found = MatchedDocSeqs(result.value());
  const std::set<uint32_t> truth = TrueMatches();
  ASSERT_FALSE(truth.empty());

  switch (GetParam()) {
    case IntensionalMode::kNaive:
      // Naive misses everything: the word 'interface' never occurs
      // extensionally in the main documents.
      EXPECT_TRUE(found.empty());
      break;
    case IntensionalMode::kFundexSimple:
    case IntensionalMode::kInline:
      // Complete AND precise.
      EXPECT_EQ(found, truth);
      break;
    case IntensionalMode::kFundexRepresentative:
      // Complete but imprecise: every true match is found, and extra
      // candidates may appear ("conditions underneath are ignored").
      for (uint32_t seq : truth) {
        EXPECT_TRUE(found.count(seq)) << "lost true match " << seq;
      }
      EXPECT_GE(found.size(), truth.size());
      break;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Modes, FundexTest,
    ::testing::Values(IntensionalMode::kNaive, IntensionalMode::kFundexSimple,
                      IntensionalMode::kFundexRepresentative,
                      IntensionalMode::kInline),
    [](const ::testing::TestParamInfo<IntensionalMode>& info) {
      std::string name(IntensionalModeName(info.param));
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

TEST(FundexUnitTest, KeysAndFids) {
  EXPECT_EQ(FunKey("a.xml"), "fun:a.xml");
  EXPECT_TRUE(FidSeq("a.xml") & 0x80000000u);
  EXPECT_EQ(FidSeq("a.xml"), FidSeq("a.xml"));
  EXPECT_NE(FidSeq("a.xml"), FidSeq("b.xml"));
  EXPECT_TRUE(IsFunctionalDoc(index::Posting{0, FidSeq("a.xml"), {1, 2, 1}}));
  EXPECT_FALSE(IsFunctionalDoc(index::Posting{0, 5, {1, 2, 1}}));
  EXPECT_EQ(RevKey(FidSeq("a.xml")),
            "rev:" + std::to_string(FidSeq("a.xml")));
}

TEST(FundexUnitTest, FunctionIndexingIsDeduplicated) {
  xml::corpus::InexOptions copt;
  copt.publications = 20;
  copt.planted_matches = 2;
  auto docs = xml::corpus::GenerateInex(copt);
  // Every main document includes the SAME abstract: rewrite entities.
  for (size_t i = 0; i < 20; ++i) {
    docs[i].entities["thisabstract"] = docs[20].uri;
  }
  KadopOptions opt;
  opt.peers = 6;
  KadopNet net(opt);
  net.RegisterDocuments(docs);
  std::vector<const xml::Document*> mains;
  for (size_t i = 0; i < 20; ++i) mains.push_back(&docs[i]);
  net.FundexPublishAndWait(0, mains, IntensionalMode::kFundexSimple);

  FundexStats stats;
  for (size_t i = 0; i < net.PeerCount(); ++i) {
    stats.Add(net.peer(static_cast<sim::NodeIndex>(i))->fundex().stats());
  }
  EXPECT_EQ(stats.functions_indexed, 1u);
  EXPECT_EQ(stats.duplicate_requests, 19u);
  EXPECT_EQ(stats.rev_entries, 20u);
}

TEST(FundexUnitTest, InliningCostsMoreIndexingForSharedContent) {
  xml::corpus::InexOptions copt;
  copt.publications = 30;
  auto docs = xml::corpus::GenerateInex(copt);
  for (size_t i = 0; i < 30; ++i) {
    docs[i].entities["thisabstract"] = docs[30].uri;  // all share one target
  }
  std::vector<const xml::Document*> mains;
  for (size_t i = 0; i < 30; ++i) mains.push_back(&docs[i]);

  auto run = [&](IntensionalMode mode) {
    KadopOptions opt;
    opt.peers = 6;
    KadopNet net(opt);
    net.RegisterDocuments(docs);
    net.FundexPublishAndWait(0, mains, mode);
    return net.dht().AggregateStats().postings_stored;
  };
  const uint64_t inline_postings = run(IntensionalMode::kInline);
  const uint64_t fundex_postings = run(IntensionalMode::kFundexSimple);
  // In-lining re-indexes the shared abstract 30 times; the Fundex once.
  EXPECT_GT(inline_postings, fundex_postings + 500);
}

TEST(FundexUnitTest, RepresentativePublishesLessThanInlining) {
  xml::corpus::InexOptions copt;
  copt.publications = 40;
  auto docs = xml::corpus::GenerateInex(copt);
  std::vector<const xml::Document*> mains;
  for (size_t i = 0; i < 40; ++i) mains.push_back(&docs[i]);
  auto run = [&](IntensionalMode mode) {
    KadopOptions opt;
    opt.peers = 6;
    KadopNet net(opt);
    net.RegisterDocuments(docs);
    net.FundexPublishAndWait(0, mains, mode);
    return net.dht().AggregateStats().postings_stored;
  };
  // The representative skeleton drops all words of the abstracts.
  EXPECT_LT(run(IntensionalMode::kFundexRepresentative),
            run(IntensionalMode::kInline));
}

}  // namespace
}  // namespace kadop::fundex
