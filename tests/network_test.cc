#include <gtest/gtest.h>

#include <vector>

#include "sim/network.h"
#include "sim/scheduler.h"

namespace kadop::sim {
namespace {

struct BytesPayload final : Payload {
  size_t bytes;
  explicit BytesPayload(size_t b) : bytes(b) {}
  size_t SizeBytes() const override { return bytes; }
  std::string_view TypeName() const override { return "BytesPayload"; }
};

class Recorder final : public Actor {
 public:
  void HandleMessage(const Message& msg) override {
    arrivals.push_back({msg.from, clock ? clock->Now() : 0.0});
  }
  Scheduler* clock = nullptr;
  std::vector<std::pair<NodeIndex, SimTime>> arrivals;
};

NetworkParams SimpleParams() {
  NetworkParams p;
  p.hop_latency_s = 0.01;
  p.uplink_bytes_per_s = 1000.0;
  p.downlink_bytes_per_s = 4000.0;
  p.header_bytes = 0;
  return p;
}

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : net(&sched, SimpleParams()) {
    for (auto& r : actors) {
      r.clock = &sched;
      net.AddNode(&r);
    }
  }
  Scheduler sched;
  Network net;
  Recorder actors[4];
};

TEST_F(NetworkTest, DeliveryTimeIsUplinkPlusLatencyPlusDownlink) {
  // 1000 bytes: uplink 1.0s, latency 0.01s, downlink 0.25s.
  net.Send({0, 1, TrafficCategory::kControl,
            std::make_shared<BytesPayload>(1000)});
  sched.RunUntilIdle();
  ASSERT_EQ(actors[1].arrivals.size(), 1u);
  EXPECT_NEAR(actors[1].arrivals[0].second, 1.26, 1e-9);
}

TEST_F(NetworkTest, SameSenderSerializesOnUplink) {
  net.Send({0, 1, TrafficCategory::kControl,
            std::make_shared<BytesPayload>(1000)});
  net.Send({0, 2, TrafficCategory::kControl,
            std::make_shared<BytesPayload>(1000)});
  sched.RunUntilIdle();
  ASSERT_EQ(actors[1].arrivals.size(), 1u);
  ASSERT_EQ(actors[2].arrivals.size(), 1u);
  // Second transfer leaves the uplink only after the first: 2.0 + .01 + .25.
  EXPECT_NEAR(actors[2].arrivals[0].second, 2.26, 1e-9);
}

TEST_F(NetworkTest, DistinctSendersProceedInParallel) {
  net.Send({0, 3, TrafficCategory::kControl,
            std::make_shared<BytesPayload>(1000)});
  net.Send({1, 3, TrafficCategory::kControl,
            std::make_shared<BytesPayload>(1000)});
  sched.RunUntilIdle();
  ASSERT_EQ(actors[3].arrivals.size(), 2u);
  // Both uplinks run concurrently; the receiver downlink serializes the two
  // 0.25s bursts: arrivals at 1.26 and 1.51.
  EXPECT_NEAR(actors[3].arrivals[0].second, 1.26, 1e-9);
  EXPECT_NEAR(actors[3].arrivals[1].second, 1.51, 1e-9);
}

TEST_F(NetworkTest, SelfSendIsFreeAndUncounted) {
  net.Send({2, 2, TrafficCategory::kControl,
            std::make_shared<BytesPayload>(5000)});
  sched.RunUntilIdle();
  ASSERT_EQ(actors[2].arrivals.size(), 1u);
  EXPECT_EQ(actors[2].arrivals[0].second, 0.0);
  EXPECT_EQ(net.traffic().messages, 0u);
  EXPECT_EQ(net.traffic().bytes, 0u);
}

TEST_F(NetworkTest, TrafficMeterCountsByCategory) {
  net.Send({0, 1, TrafficCategory::kPosting,
            std::make_shared<BytesPayload>(100)});
  net.Send({0, 1, TrafficCategory::kBloomFilter,
            std::make_shared<BytesPayload>(50)});
  sched.RunUntilIdle();
  EXPECT_EQ(net.traffic().messages, 2u);
  EXPECT_EQ(net.traffic().bytes, 150u);
  EXPECT_EQ(net.traffic().CategoryBytes(TrafficCategory::kPosting), 100u);
  EXPECT_EQ(net.traffic().CategoryBytes(TrafficCategory::kBloomFilter), 50u);
  net.ResetTraffic();
  EXPECT_EQ(net.traffic().bytes, 0u);
}

TEST_F(NetworkTest, HeaderBytesAreCharged) {
  NetworkParams p = SimpleParams();
  p.header_bytes = 64;
  Scheduler s2;
  Network net2(&s2, p);
  Recorder a, b;
  net2.AddNode(&a);
  net2.AddNode(&b);
  net2.Send({0, 1, TrafficCategory::kControl,
             std::make_shared<BytesPayload>(36)});
  s2.RunUntilIdle();
  EXPECT_EQ(net2.traffic().bytes, 100u);
}

TEST_F(NetworkTest, DownNodeDropsMessages) {
  net.SetNodeUp(1, false);
  net.Send({0, 1, TrafficCategory::kControl,
            std::make_shared<BytesPayload>(10)});
  sched.RunUntilIdle();
  EXPECT_TRUE(actors[1].arrivals.empty());
  EXPECT_EQ(net.dropped_messages(), 1u);
  net.SetNodeUp(1, true);
  net.Send({0, 1, TrafficCategory::kControl,
            std::make_shared<BytesPayload>(10)});
  sched.RunUntilIdle();
  EXPECT_EQ(actors[1].arrivals.size(), 1u);
}

TEST_F(NetworkTest, RunAfterModelsCpuTime) {
  bool ran = false;
  net.RunAfter(0.5, [&] { ran = true; });
  sched.RunUntilIdle();
  EXPECT_TRUE(ran);
  EXPECT_EQ(sched.Now(), 0.5);
}

TEST(TrafficCategoryTest, NamesAreStable) {
  EXPECT_EQ(TrafficCategoryName(TrafficCategory::kControl), "control");
  EXPECT_EQ(TrafficCategoryName(TrafficCategory::kPublish), "publish");
  EXPECT_EQ(TrafficCategoryName(TrafficCategory::kPosting), "posting");
  EXPECT_EQ(TrafficCategoryName(TrafficCategory::kBloomFilter), "bloom");
  EXPECT_EQ(TrafficCategoryName(TrafficCategory::kQuery), "query");
  EXPECT_EQ(TrafficCategoryName(TrafficCategory::kResult), "result");
}

}  // namespace
}  // namespace kadop::sim
