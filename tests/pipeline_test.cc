// Streaming-transfer edge cases on the DHT: pipelined block pacing,
// producer failure mid-stream, concurrent streams from one producer, the
// disk FIFO, and blob deletion.

#include <gtest/gtest.h>

#include <optional>

#include "dht/dht.h"
#include "dht/ring.h"

namespace kadop::dht {
namespace {

using index::Posting;
using index::PostingList;

Posting MakePosting(uint32_t doc) { return Posting{1, doc, {1, 2, 1}}; }

struct Net {
  explicit Net(size_t peers, DhtOptions options = {})
      : network(&scheduler), dht(&scheduler, &network, options) {
    dht.AddPeers(peers);
  }
  sim::Scheduler scheduler;
  sim::Network network;
  Dht dht;
};

PostingList BigList(size_t n) {
  PostingList out;
  for (uint32_t i = 0; i < n; ++i) out.push_back(MakePosting(i));
  return out;
}

TEST(PipelineTest, BlocksArriveSpacedInTime) {
  Net net(8);
  net.dht.peer(0)->Append("l:a", BigList(4000), nullptr);
  net.scheduler.RunUntilIdle();

  GetSpec spec;
  spec.key = "l:a";
  spec.pipelined = true;
  spec.block_postings = 1000;
  std::vector<double> arrivals;
  net.dht.peer(1)->GetBlocks(spec, [&](PostingList block, bool, bool) {
    if (!block.empty()) arrivals.push_back(net.scheduler.Now());
  });
  net.scheduler.RunUntilIdle();
  ASSERT_EQ(arrivals.size(), 4u);
  // Strictly increasing arrival times: blocks stream, they don't arrive
  // as one burst.
  for (size_t i = 1; i < arrivals.size(); ++i) {
    EXPECT_GT(arrivals[i], arrivals[i - 1]);
  }
  // The stream spans real time: ~three extra 18 KB transfers after the
  // first block (>= 3 x 1.8 ms at 10 MB/s).
  EXPECT_GT(arrivals.back() - arrivals.front(), 0.004);
}

TEST(PipelineTest, ProducerFailureMidStreamTimesOutIncomplete) {
  Net net(8);
  net.dht.peer(0)->Append("l:a", BigList(8000), nullptr);
  net.scheduler.RunUntilIdle();
  const sim::NodeIndex owner = net.dht.OwnerOf(HashKey("l:a"));
  const sim::NodeIndex requester = owner == 0 ? 1 : 0;

  GetSpec spec;
  spec.key = "l:a";
  spec.pipelined = true;
  spec.block_postings = 1000;
  spec.timeout_s = 5.0;
  size_t received = 0;
  bool ended = false;
  bool complete = true;
  net.dht.peer(requester)->GetBlocks(
      spec, [&](PostingList block, bool last, bool ok) {
        received += block.size();
        if (!block.empty() && !ended) {
          // Fail the producer right after the first block arrives.
          net.network.SetNodeUp(owner, false);
        }
        if (last) {
          ended = true;
          complete = ok;
        }
      });
  net.scheduler.RunUntilIdle();
  EXPECT_TRUE(ended);
  EXPECT_FALSE(complete);       // timeout, not a normal end
  EXPECT_GT(received, 0u);      // partial data did arrive
  EXPECT_LT(received, 8000u);   // ... but not everything
  EXPECT_GT(net.network.dropped_messages(), 0u);
}

TEST(PipelineTest, ConcurrentStreamsFromOneProducerSerializeOnUplink) {
  Net net(8);
  net.dht.peer(0)->Append("l:a", BigList(6000), nullptr);
  net.scheduler.RunUntilIdle();
  const sim::NodeIndex owner = net.dht.OwnerOf(HashKey("l:a"));

  // One consumer alone.
  auto run = [&](std::vector<sim::NodeIndex> consumers) {
    Net fresh(8);
    fresh.dht.peer(0)->Append("l:a", BigList(6000), nullptr);
    fresh.scheduler.RunUntilIdle();
    const double start = fresh.scheduler.Now();
    double last_done = start;
    for (sim::NodeIndex c : consumers) {
      GetSpec spec;
      spec.key = "l:a";
      spec.pipelined = true;
      fresh.dht.peer(c)->GetBlocks(spec,
                                   [&](PostingList, bool last, bool) {
                                     if (last) {
                                       last_done = fresh.scheduler.Now();
                                     }
                                   });
    }
    fresh.scheduler.RunUntilIdle();
    return last_done - start;
  };
  const sim::NodeIndex c1 = owner == 1 ? 2 : 1;
  const sim::NodeIndex c2 = owner == 3 ? 4 : 3;
  const double solo = run({c1});
  const double both = run({c1, c2});
  // Two full-list streams share the producer's uplink: the second 108 KB
  // transfer serializes behind the first (~11 ms at 10 MB/s), on top of
  // the fixed routing latency both runs share.
  EXPECT_GT(both, 1.25 * solo);
  EXPECT_GT(both - solo, 0.006);
}

TEST(PipelineTest, DiskFifoSerializesLocalWork) {
  Net net(2);
  DhtPeer* peer = net.dht.peer(0);
  std::vector<double> done;
  // Two 8 MB disk jobs queued back to back at t=0.
  const double mb8 = 8.0 * 1024 * 1024;
  peer->ScheduleAfterDisk(mb8, /*write=*/false,
                          [&] { done.push_back(net.scheduler.Now()); });
  peer->ScheduleAfterDisk(mb8, /*write=*/false,
                          [&] { done.push_back(net.scheduler.Now()); });
  net.scheduler.RunUntilIdle();
  ASSERT_EQ(done.size(), 2u);
  // Second job finishes roughly twice as late as the first (FIFO disk).
  EXPECT_NEAR(done[1], 2 * done[0], done[0] * 0.1);
}

TEST(PipelineTest, RangedPipelinedGetCombines) {
  Net net(8);
  net.dht.peer(0)->Append("l:a", BigList(5000), nullptr);
  net.scheduler.RunUntilIdle();
  GetSpec spec;
  spec.key = "l:a";
  spec.pipelined = true;
  spec.block_postings = 256;
  spec.lo = Posting{1, 1000, {0, 0, 0}};
  spec.hi = Posting{1, 1999, {UINT32_MAX, UINT32_MAX, UINT16_MAX}};
  PostingList received;
  net.dht.peer(2)->GetBlocks(spec, [&](PostingList block, bool, bool) {
    received.insert(received.end(), block.begin(), block.end());
  });
  net.scheduler.RunUntilIdle();
  ASSERT_EQ(received.size(), 1000u);
  EXPECT_EQ(received.front().doc, 1000u);
  EXPECT_EQ(received.back().doc, 1999u);
  EXPECT_TRUE(index::IsSortedPostingList(received));
}

TEST(PipelineTest, BlobDeleteRoundTrip) {
  Net net(6);
  net.dht.peer(0)->PutBlob("doc:0:0", "uri-a");
  net.scheduler.RunUntilIdle();
  net.dht.peer(3)->DeleteBlobKey("doc:0:0");
  net.scheduler.RunUntilIdle();
  std::optional<std::optional<std::string>> got;
  net.dht.peer(1)->GetBlob("doc:0:0", [&](std::optional<std::string> b) {
    got = std::move(b);
  });
  net.scheduler.RunUntilIdle();
  ASSERT_TRUE(got.has_value());
  EXPECT_FALSE(got->has_value());
}

}  // namespace
}  // namespace kadop::dht
