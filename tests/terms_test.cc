#include <gtest/gtest.h>

#include <algorithm>

#include "index/terms.h"
#include "xml/parser.h"

namespace kadop::index {
namespace {

std::vector<TermPosting> Extract(const char* xml,
                                 ExtractOptions options = {}) {
  auto doc = xml::ParseDocument(xml);
  EXPECT_TRUE(doc.ok()) << doc.status().ToString();
  std::vector<TermPosting> out;
  ExtractTerms(doc.value(), 7, 3, options, out);
  return out;
}

bool HasKey(const std::vector<TermPosting>& postings, const std::string& k) {
  return std::any_of(postings.begin(), postings.end(),
                     [&](const TermPosting& tp) { return tp.key == k; });
}

size_t CountKey(const std::vector<TermPosting>& postings,
                const std::string& k) {
  return std::count_if(postings.begin(), postings.end(),
                       [&](const TermPosting& tp) { return tp.key == k; });
}

TEST(TokenizeTest, LowercasesAndSplits) {
  std::vector<std::string> words;
  TokenizeWords("Hello, World! XML-2006 rocks", words);
  EXPECT_EQ(words, (std::vector<std::string>{"hello", "world", "xml", "2006",
                                             "rocks"}));
}

TEST(TokenizeTest, EmptyAndPunctuationOnly) {
  std::vector<std::string> words;
  TokenizeWords("", words);
  TokenizeWords("... !!! ---", words);
  EXPECT_TRUE(words.empty());
}

TEST(ExtractTest, LabelsAndWords) {
  auto postings = Extract("<article><title>More on XML</title></article>");
  EXPECT_TRUE(HasKey(postings, "l:article"));
  EXPECT_TRUE(HasKey(postings, "l:title"));
  EXPECT_TRUE(HasKey(postings, "w:more"));
  EXPECT_TRUE(HasKey(postings, "w:on"));
  EXPECT_TRUE(HasKey(postings, "w:xml"));
}

TEST(ExtractTest, PostingsCarryPeerAndDoc) {
  auto postings = Extract("<a/>");
  ASSERT_EQ(postings.size(), 1u);
  EXPECT_EQ(postings[0].posting.peer, 7u);
  EXPECT_EQ(postings[0].posting.doc, 3u);
  EXPECT_EQ(postings[0].posting.sid, (xml::StructuralId{1, 2, 1}));
}

TEST(ExtractTest, WordPostingIsOneLevelBelowItsElement) {
  auto postings = Extract("<a><b>hello</b></a>");
  xml::StructuralId b_sid;
  xml::StructuralId word_sid;
  for (const auto& tp : postings) {
    if (tp.key == "l:b") b_sid = tp.posting.sid;
    if (tp.key == "w:hello") word_sid = tp.posting.sid;
  }
  EXPECT_EQ(word_sid.start, b_sid.start);
  EXPECT_EQ(word_sid.end, b_sid.end);
  EXPECT_EQ(word_sid.level, b_sid.level + 1);
  EXPECT_TRUE(b_sid.IsParentOf(word_sid));
}

TEST(ExtractTest, DuplicateWordsInOneElementIndexedOnce) {
  auto postings = Extract("<a>spam spam spam</a>");
  EXPECT_EQ(CountKey(postings, "w:spam"), 1u);
}

TEST(ExtractTest, SameWordInDifferentElementsIndexedPerElement) {
  auto postings = Extract("<a><b>spam</b><c>spam</c></a>");
  EXPECT_EQ(CountKey(postings, "w:spam"), 2u);
}

TEST(ExtractTest, MinWordLengthFiltersShortTokens) {
  ExtractOptions options;
  options.min_word_length = 3;
  auto postings = Extract("<a>a of the xml</a>", options);
  EXPECT_FALSE(HasKey(postings, "w:a"));
  EXPECT_FALSE(HasKey(postings, "w:of"));
  EXPECT_TRUE(HasKey(postings, "w:the"));
  EXPECT_TRUE(HasKey(postings, "w:xml"));
}

TEST(ExtractTest, WordsCanBeDisabled) {
  ExtractOptions options;
  options.index_words = false;
  auto postings = Extract("<a>hello</a>", options);
  EXPECT_EQ(postings.size(), 1u);
  EXPECT_EQ(postings[0].key, "l:a");
}

TEST(ExtractTest, EntityRefsAreSkipped) {
  auto postings = Extract(
      "<!DOCTYPE a [<!ENTITY x SYSTEM \"x.xml\">]><a><b>&x;</b></a>");
  EXPECT_TRUE(HasKey(postings, "l:a"));
  EXPECT_TRUE(HasKey(postings, "l:b"));
  EXPECT_EQ(postings.size(), 2u);
}

TEST(ExtractTest, AttributesIndexedAsElements) {
  auto postings = Extract("<author name=\"Jones\"/>");
  EXPECT_TRUE(HasKey(postings, "l:author"));
  EXPECT_TRUE(HasKey(postings, "l:name"));
  EXPECT_TRUE(HasKey(postings, "w:jones"));
}

TEST(ExtractTest, OneTraversalCountsMatchTree) {
  // Element postings == element count.
  auto postings = Extract("<a><b><c/></b><d/></a>");
  size_t labels = 0;
  for (const auto& tp : postings) labels += tp.key[0] == 'l';
  EXPECT_EQ(labels, 4u);
}

TEST(KeyTest, LabelAndWordNamespacesAreDisjoint) {
  EXPECT_NE(LabelKey("title"), WordKey("title"));
  EXPECT_EQ(LabelKey("title"), "l:title");
  EXPECT_EQ(WordKey("title"), "w:title");
}

}  // namespace
}  // namespace kadop::index
