#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/random.h"
#include "store/bplus_tree.h"

namespace kadop::store {
namespace {

TEST(BPlusTreeTest, EmptyTree) {
  BPlusTree<int, int> tree;
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.Find(1), nullptr);
  EXPECT_FALSE(tree.Erase(1));
  EXPECT_FALSE(tree.Begin().Valid());
  EXPECT_FALSE(tree.Seek(0).Valid());
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(BPlusTreeTest, InsertAndFind) {
  BPlusTree<int, std::string> tree;
  EXPECT_TRUE(tree.InsertOrAssign(5, "five"));
  EXPECT_TRUE(tree.InsertOrAssign(3, "three"));
  EXPECT_TRUE(tree.InsertOrAssign(8, "eight"));
  EXPECT_EQ(tree.size(), 3u);
  ASSERT_NE(tree.Find(5), nullptr);
  EXPECT_EQ(*tree.Find(5), "five");
  EXPECT_EQ(tree.Find(4), nullptr);
}

TEST(BPlusTreeTest, InsertOrAssignOverwrites) {
  BPlusTree<int, int> tree;
  EXPECT_TRUE(tree.InsertOrAssign(1, 10));
  EXPECT_FALSE(tree.InsertOrAssign(1, 20));
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(*tree.Find(1), 20);
}

TEST(BPlusTreeTest, OrderedIterationAfterManyInserts) {
  BPlusTree<int, int> tree;
  for (int i = 999; i >= 0; --i) EXPECT_TRUE(tree.InsertOrAssign(i, i * 2));
  EXPECT_EQ(tree.size(), 1000u);
  EXPECT_GE(tree.height(), 2u);
  EXPECT_TRUE(tree.CheckInvariants());
  int expected = 0;
  for (auto it = tree.Begin(); it.Valid(); it.Next()) {
    EXPECT_EQ(it.key(), expected);
    EXPECT_EQ(it.value(), expected * 2);
    ++expected;
  }
  EXPECT_EQ(expected, 1000);
}

TEST(BPlusTreeTest, SeekFindsLowerBound) {
  BPlusTree<int, int> tree;
  for (int i = 0; i < 100; i += 2) EXPECT_TRUE(tree.InsertOrAssign(i, i));
  auto it = tree.Seek(31);
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), 32);
  it = tree.Seek(0);
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), 0);
  EXPECT_FALSE(tree.Seek(99).Valid());
}

TEST(BPlusTreeTest, EraseLeavesValidTree) {
  BPlusTree<int, int> tree;
  for (int i = 0; i < 500; ++i) EXPECT_TRUE(tree.InsertOrAssign(i, i));
  for (int i = 0; i < 500; i += 2) EXPECT_TRUE(tree.Erase(i));
  EXPECT_EQ(tree.size(), 250u);
  EXPECT_TRUE(tree.CheckInvariants());
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(tree.Find(i) != nullptr, i % 2 == 1) << i;
  }
}

TEST(BPlusTreeTest, EraseEverything) {
  BPlusTree<int, int> tree;
  for (int i = 0; i < 300; ++i) EXPECT_TRUE(tree.InsertOrAssign(i, i));
  for (int i = 299; i >= 0; --i) EXPECT_TRUE(tree.Erase(i));
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.height(), 0u);
  EXPECT_TRUE(tree.CheckInvariants());
  // Tree is reusable after being emptied.
  EXPECT_TRUE(tree.InsertOrAssign(42, 1));
  EXPECT_EQ(tree.size(), 1u);
}

TEST(BPlusTreeTest, EraseMissingKeyIsNoop) {
  BPlusTree<int, int> tree;
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(tree.InsertOrAssign(i * 3, i));
  EXPECT_FALSE(tree.Erase(1));
  EXPECT_FALSE(tree.Erase(500));
  EXPECT_EQ(tree.size(), 100u);
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(BPlusTreeTest, MutableValueThroughIterator) {
  BPlusTree<int, int> tree;
  ASSERT_TRUE(tree.InsertOrAssign(1, 10));
  auto it = tree.Begin();
  it.mutable_value() = 99;
  EXPECT_EQ(*tree.Find(1), 99);
}

TEST(BPlusTreeTest, LeafChainSurvivesMerges) {
  BPlusTree<int, int, std::less<int>, 4> tree;  // small order: many merges
  for (int i = 0; i < 200; ++i) EXPECT_TRUE(tree.InsertOrAssign(i, i));
  Rng rng(99);
  std::vector<int> keys;
  for (int i = 0; i < 200; ++i) keys.push_back(i);
  rng.Shuffle(keys);
  for (int i = 0; i < 150; ++i) EXPECT_TRUE(tree.Erase(keys[i]));
  EXPECT_TRUE(tree.CheckInvariants());
  // Remaining keys iterate in order.
  std::vector<int> remaining(keys.begin() + 150, keys.end());
  std::sort(remaining.begin(), remaining.end());
  std::vector<int> iterated;
  for (auto it = tree.Begin(); it.Valid(); it.Next()) {
    iterated.push_back(it.key());
  }
  EXPECT_EQ(iterated, remaining);
}

/// Randomized differential test against std::map across tree orders.
template <int Order>
void RandomizedAgainstStdMap(uint64_t seed, int operations) {
  BPlusTree<uint32_t, uint32_t, std::less<uint32_t>, Order> tree;
  std::map<uint32_t, uint32_t> reference;
  Rng rng(seed);
  for (int i = 0; i < operations; ++i) {
    const uint32_t key = static_cast<uint32_t>(rng.Uniform(500));
    const double action = rng.NextDouble();
    if (action < 0.55) {
      const uint32_t value = static_cast<uint32_t>(rng.Next());
      const bool inserted = tree.InsertOrAssign(key, value);
      EXPECT_EQ(inserted, reference.find(key) == reference.end());
      reference[key] = value;
    } else if (action < 0.9) {
      EXPECT_EQ(tree.Erase(key), reference.erase(key) > 0);
    } else {
      const uint32_t* found = tree.Find(key);
      auto it = reference.find(key);
      if (it == reference.end()) {
        EXPECT_EQ(found, nullptr);
      } else {
        ASSERT_NE(found, nullptr);
        EXPECT_EQ(*found, it->second);
      }
    }
    if (i % 500 == 0) {
      ASSERT_TRUE(tree.CheckInvariants()) << "op " << i;
      ASSERT_EQ(tree.size(), reference.size());
    }
  }
  ASSERT_TRUE(tree.CheckInvariants());
  ASSERT_EQ(tree.size(), reference.size());
  auto it = tree.Begin();
  for (const auto& [k, v] : reference) {
    ASSERT_TRUE(it.Valid());
    EXPECT_EQ(it.key(), k);
    EXPECT_EQ(it.value(), v);
    it.Next();
  }
  EXPECT_FALSE(it.Valid());
}

class BPlusTreeRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BPlusTreeRandomTest, Order4MatchesStdMap) {
  RandomizedAgainstStdMap<4>(GetParam(), 4000);
}

TEST_P(BPlusTreeRandomTest, Order8MatchesStdMap) {
  RandomizedAgainstStdMap<8>(GetParam(), 4000);
}

TEST_P(BPlusTreeRandomTest, Order64MatchesStdMap) {
  RandomizedAgainstStdMap<64>(GetParam(), 4000);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BPlusTreeRandomTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

TEST(BPlusTreeTest, NodeCountersTrackStructure) {
  BPlusTree<int, int, std::less<int>, 4> tree;
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(tree.InsertOrAssign(i, i));
  EXPECT_GT(tree.leaf_count(), 10u);
  EXPECT_GT(tree.internal_count(), 0u);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(tree.Erase(i));
  EXPECT_EQ(tree.leaf_count(), 0u);
  EXPECT_EQ(tree.internal_count(), 0u);
}

}  // namespace
}  // namespace kadop::store
