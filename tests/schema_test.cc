#include <gtest/gtest.h>

#include "xml/corpus.h"
#include "xml/parser.h"
#include "xml/schema.h"

namespace kadop::xml {
namespace {

Document MustParseDoc(const char* text) {
  auto result = ParseDocument(text);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.take();
}

TEST(SchemaTest, EmptySummary) {
  StructuralSummary summary;
  EXPECT_EQ(summary.DistinctPaths(), 0u);
  EXPECT_EQ(summary.ChildrenOf("a"), nullptr);
  EXPECT_FALSE(summary.HasText("a"));
  EXPECT_EQ(summary.RepresentativeInstance("a"), nullptr);
  EXPECT_TRUE(summary.ContainsPath({}));  // the empty prefix always exists
  EXPECT_FALSE(summary.ContainsPath({"a"}));
}

TEST(SchemaTest, PathsAndTypes) {
  StructuralSummary summary;
  summary.AddDocument(MustParseDoc("<a><b><c/></b><b><d/></b>text</a>"));
  EXPECT_TRUE(summary.ContainsPath({"a"}));
  EXPECT_TRUE(summary.ContainsPath({"a", "b"}));
  EXPECT_TRUE(summary.ContainsPath({"a", "b", "c"}));
  EXPECT_TRUE(summary.ContainsPath({"a", "b", "d"}));
  EXPECT_FALSE(summary.ContainsPath({"a", "c"}));
  EXPECT_FALSE(summary.ContainsPath({"b"}));
  // DataGuide size: a, a/b, a/b/c, a/b/d.
  EXPECT_EQ(summary.DistinctPaths(), 4u);
  ASSERT_NE(summary.ChildrenOf("b"), nullptr);
  EXPECT_EQ(*summary.ChildrenOf("b"),
            (std::set<std::string>{"c", "d"}));
  EXPECT_TRUE(summary.HasText("a"));
  EXPECT_FALSE(summary.HasText("b"));
}

TEST(SchemaTest, SummariesAccumulateAcrossDocuments) {
  StructuralSummary summary;
  summary.AddDocument(MustParseDoc("<a><b/></a>"));
  summary.AddDocument(MustParseDoc("<a><c/></a>"));
  EXPECT_EQ(*summary.ChildrenOf("a"), (std::set<std::string>{"b", "c"}));
  EXPECT_EQ(summary.DistinctPaths(), 3u);
}

TEST(SchemaTest, RepresentativeInstanceCoversTheType) {
  StructuralSummary summary;
  summary.AddDocument(
      MustParseDoc("<article><title>t</title><author>x</author></article>"));
  summary.AddDocument(MustParseDoc("<article><year>1999</year></article>"));
  auto instance = summary.RepresentativeInstance("article");
  ASSERT_NE(instance, nullptr);
  EXPECT_EQ(instance->label(), "article");
  EXPECT_NE(instance->FindChild("title"), nullptr);
  EXPECT_NE(instance->FindChild("author"), nullptr);
  EXPECT_NE(instance->FindChild("year"), nullptr);
}

TEST(SchemaTest, RecursiveTypesTerminate) {
  StructuralSummary summary;
  summary.AddDocument(
      MustParseDoc("<list><item><list><item/></list></item></list>"));
  auto instance = summary.RepresentativeInstance("list");
  ASSERT_NE(instance, nullptr);
  // list -> item, but the nested list is cut (it is on the path).
  ASSERT_NE(instance->FindChild("item"), nullptr);
  EXPECT_EQ(instance->FindChild("item")->FindChild("list"), nullptr);
  EXPECT_LT(instance->CountElements(), 10u);
}

TEST(SchemaTest, DepthCap) {
  // A linear chain deeper than the cap.
  std::string text;
  for (int i = 0; i < 30; ++i) text += "<n" + std::to_string(i) + ">";
  for (int i = 29; i >= 0; --i) text += "</n" + std::to_string(i) + ">";
  StructuralSummary summary;
  summary.AddDocument(MustParseDoc(text.c_str()));
  auto instance = summary.RepresentativeInstance("n0", /*max_depth=*/4);
  ASSERT_NE(instance, nullptr);
  EXPECT_LE(instance->CountElements(), 5u);
}

TEST(SchemaTest, MergeCombinesSummaries) {
  StructuralSummary a, b;
  a.AddDocument(MustParseDoc("<r><x/></r>"));
  b.AddDocument(MustParseDoc("<r><y>t</y></r>"));
  a.Merge(b);
  EXPECT_EQ(*a.ChildrenOf("r"), (std::set<std::string>{"x", "y"}));
  EXPECT_TRUE(a.HasText("y"));
  EXPECT_EQ(a.DistinctPaths(), 3u);
}

TEST(SchemaTest, CorpusSummaryIsCompactDespiteManyDocuments) {
  xml::corpus::DblpOptions opt;
  opt.target_bytes = 100 << 10;
  auto docs = xml::corpus::GenerateDblp(opt);
  StructuralSummary summary;
  for (const auto& doc : docs) summary.AddDocument(doc);
  // Thousands of elements, a handful of distinct label paths.
  EXPECT_LT(summary.DistinctPaths(), 30u);
  EXPECT_GE(summary.Labels().size(), 5u);
  auto instance = summary.RepresentativeInstance("article");
  ASSERT_NE(instance, nullptr);
  EXPECT_NE(instance->FindChild("author"), nullptr);
}

}  // namespace
}  // namespace kadop::xml
