// End-to-end distributed tracing: a fig3-style twig query traced across a
// live network must yield ONE connected span tree whose remote spans (DHT
// get serving, holder-side block joins, directory lookups) causally parent
// to the originating query's root span via the wire-propagated
// TraceContext — and the derived analyses (critical path, phase breakdown,
// Chrome export) must be consistent with the query's reported metrics.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "core/kadop.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_analysis.h"
#include "xml/corpus.h"

namespace kadop {
namespace {

struct TracedQuery {
  query::QueryResult result;
  obs::SpanId root = 0;
};

/// Publishes a small dblp corpus on `peers` peers, then runs one traced
/// dpp_join twig query from peer 1. Publish spans are cleared first so the
/// query root is the only root in the buffer.
TracedQuery RunTracedTwigQuery(size_t peers) {
  auto& tracer = obs::Tracer::Default();
  tracer.Clear();
  tracer.SetEnabled(true);

  xml::corpus::DblpOptions copt;
  copt.target_bytes = 256 << 10;
  auto docs = xml::corpus::GenerateDblp(copt);

  core::KadopOptions opt;
  opt.peers = peers;
  core::KadopNet net(opt);
  std::vector<const xml::Document*> ptrs;
  for (const auto& d : docs) ptrs.push_back(&d);
  net.PublishAndWait(0, ptrs);
  tracer.Clear();  // drop publish spans; keep tracing on for the query

  query::QueryOptions qopt;
  qopt.strategy = query::QueryStrategy::kDppJoin;
  qopt.dpp_join_available = true;
  auto result = net.QueryAndWait(1, "//article[//author]//title", qopt);
  EXPECT_TRUE(result.ok());

  TracedQuery out;
  out.result = std::move(result).value();
  const std::vector<obs::SpanId> roots = obs::TraceRoots(tracer);
  EXPECT_EQ(roots.size(), 1u);
  out.root = roots.empty() ? 0 : roots.front();
  tracer.SetEnabled(false);
  return out;
}

TEST(DistributedTraceTest, TwigQueryYieldsOneConnectedTreeAcrossPeers) {
  const TracedQuery q = RunTracedTwigQuery(16);
  auto& tracer = obs::Tracer::Default();
  ASSERT_NE(q.root, 0u);

  const obs::TraceTree tree = obs::BuildTraceTree(tracer, q.root);
  ASSERT_NE(tree.root, nullptr);
  EXPECT_EQ(tree.root->name, "query");

  // Single connected tree: every span of this trace reaches the root.
  EXPECT_EQ(tree.disconnected, 0u);
  EXPECT_GE(tree.spans.size(), 4u);

  // Spans executed on >= 3 distinct peers: the query peer plus remote
  // holders/servers reached only via wire-propagated context.
  EXPECT_GE(tree.PeerCount(), 3u);
  std::set<std::string> names;
  bool remote_span = false;
  for (const obs::SpanRecord* s : tree.spans) {
    names.insert(s->name);
    if (!s->is_event && s->node != tree.root->node) remote_span = true;
  }
  EXPECT_TRUE(remote_span) << "no span executed on a remote peer";
  EXPECT_TRUE(names.count("query.route.directory"));
  EXPECT_TRUE(names.count("join.holder.task"));
  EXPECT_TRUE(names.count("dht.get.serve"));

  tracer.Clear();
}

TEST(DistributedTraceTest, CriticalPathAndPhasesMatchResponseTime) {
  const TracedQuery q = RunTracedTwigQuery(16);
  auto& tracer = obs::Tracer::Default();
  ASSERT_NE(q.root, 0u);
  const obs::TraceTree tree = obs::BuildTraceTree(tracer, q.root);

  // The root span's duration is the query's reported response time.
  const double response = q.result.metrics.ResponseTime();
  ASSERT_NE(tree.root, nullptr);
  EXPECT_NEAR(tree.root->end - tree.root->start, response, 1e-9);

  // Critical path: starts at the root, steps are causally nested, and each
  // step is a span of the tree.
  const auto path = obs::CriticalPath(tree);
  ASSERT_GE(path.size(), 2u);
  EXPECT_EQ(path.front().id, q.root);
  for (size_t i = 1; i < path.size(); ++i) {
    EXPECT_GE(path[i].start, path[i - 1].start - 1e-12);
  }

  // Phase totals partition the root duration exactly.
  const obs::PhaseBreakdown pb = obs::ComputePhaseBreakdown(tree);
  double sum = 0;
  for (const auto& [phase, seconds] : pb.phases) {
    EXPECT_GE(seconds, 0.0) << phase;
    sum += seconds;
  }
  EXPECT_DOUBLE_EQ(sum, pb.total);
  EXPECT_NEAR(pb.total, response, 1e-9);

  // The report renders without dying and mentions the phases.
  const std::string report = obs::PhaseReportText(tracer, q.root);
  EXPECT_NE(report.find("critical path"), std::string::npos);
  EXPECT_NE(report.find("route"), std::string::npos);

  tracer.Clear();
}

TEST(DistributedTraceTest, ChromeExportCarriesTheDistributedTree) {
  const TracedQuery q = RunTracedTwigQuery(16);
  auto& tracer = obs::Tracer::Default();
  ASSERT_NE(q.root, 0u);

  const std::string json = obs::ChromeTraceJson(tracer);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"query\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"join.holder.task\""), std::string::npos);
  // Two exports of the same buffer are byte-identical.
  EXPECT_EQ(json, obs::ChromeTraceJson(tracer));

  tracer.Clear();
}

TEST(DistributedTraceTest, WireContextSurvivesMultiHopRouting) {
  // Even on a larger ring where appends/gets route through intermediate
  // peers, every recorded span of the query's trace must still reach the
  // root — forwarding re-stamps the context instead of dropping it.
  const TracedQuery q = RunTracedTwigQuery(32);
  auto& tracer = obs::Tracer::Default();
  ASSERT_NE(q.root, 0u);
  const obs::TraceTree tree = obs::BuildTraceTree(tracer, q.root);
  EXPECT_EQ(tree.disconnected, 0u);
  EXPECT_GE(tree.PeerCount(), 3u);
  tracer.Clear();
}

}  // namespace
}  // namespace kadop
