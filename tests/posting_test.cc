// Direct unit tests for the foundational index types: Posting ordering,
// posting-list helpers, Condition algebra corners, and the DocStore.

#include <gtest/gtest.h>

#include "index/condition.h"
#include "index/doc_store.h"
#include "index/posting.h"
#include "xml/parser.h"

namespace kadop::index {
namespace {

TEST(PostingTest, LexicographicOrderMatchesPaper) {
  // (p, d, sid) order, sid by (start, end, level).
  const Posting a{1, 1, {5, 6, 2}};
  EXPECT_LT(a, (Posting{2, 0, {1, 2, 1}}));  // peer dominates
  EXPECT_LT(a, (Posting{1, 2, {1, 2, 1}}));  // then doc
  EXPECT_LT(a, (Posting{1, 1, {6, 7, 2}}));  // then start
  EXPECT_LT((Posting{1, 1, {5, 6, 2}}), (Posting{1, 1, {5, 8, 2}}));
  EXPECT_LT((Posting{1, 1, {5, 6, 2}}), (Posting{1, 1, {5, 6, 3}}));
  EXPECT_EQ(a, (Posting{1, 1, {5, 6, 2}}));
}

TEST(PostingTest, SentinelsBracketEverything) {
  const Posting p{123, 456, {7, 8, 3}};
  EXPECT_LT(kMinPosting, p);
  EXPECT_LT(p, kMaxPosting);
}

TEST(PostingTest, ListHelpers) {
  PostingList sorted{{0, 0, {1, 2, 1}}, {0, 1, {1, 2, 1}}};
  EXPECT_TRUE(IsSortedPostingList(sorted));
  EXPECT_TRUE(IsSortedPostingList({}));
  PostingList unsorted{{0, 1, {1, 2, 1}}, {0, 0, {1, 2, 1}}};
  EXPECT_FALSE(IsSortedPostingList(unsorted));
  EXPECT_EQ(PostingListBytes(sorted), 2 * Posting::kWireBytes);
  EXPECT_EQ(sorted[0].doc_id(), (DocId{0, 0}));
  EXPECT_FALSE(sorted[0].ToString().empty());
}

TEST(ConditionTest, EmptyConditionAlgebra) {
  const Condition empty;
  const Condition some{Posting{0, 0, {1, 2, 1}}, Posting{0, 5, {1, 2, 1}}};
  EXPECT_TRUE(empty.Empty());
  EXPECT_FALSE(empty.Intersects(some));
  EXPECT_FALSE(some.Intersects(empty));
  EXPECT_TRUE(empty.SubsetOf(some));   // vacuous
  EXPECT_FALSE(some.SubsetOf(empty));
  EXPECT_TRUE(empty.Before(some));     // vacuous
  EXPECT_FALSE(empty.Contains(Posting{0, 0, {1, 2, 1}}));
}

TEST(ConditionTest, SinglePointCondition) {
  Condition c;
  const Posting p{3, 7, {9, 10, 2}};
  c.Extend(p);
  EXPECT_EQ(c.lo, p);
  EXPECT_EQ(c.hi, p);
  EXPECT_TRUE(c.Contains(p));
  EXPECT_TRUE(c.Intersects(c));
  EXPECT_TRUE(c.SubsetOf(c));
  EXPECT_FALSE(c.Before(c));
  EXPECT_EQ(c.MinDoc(), c.MaxDoc());
}

TEST(ConditionTest, AdjacentConditionsTouchButDontOverlap) {
  const Condition a{Posting{0, 0, {1, 2, 1}}, Posting{0, 4, {1, 2, 1}}};
  const Condition b{Posting{0, 4, {1, 2, 2}}, Posting{0, 9, {1, 2, 1}}};
  EXPECT_FALSE(a.Intersects(b));  // a.hi < b.lo (level breaks the tie)
  EXPECT_TRUE(a.Before(b));
  const Condition touching{Posting{0, 4, {1, 2, 1}},
                           Posting{0, 9, {1, 2, 1}}};
  EXPECT_TRUE(a.Intersects(touching));
  EXPECT_FALSE(a.Before(touching));
}

TEST(ConditionTest, FullConditionContainsEverything) {
  const Condition full = FullCondition();
  EXPECT_TRUE(full.Contains(kMinPosting));
  EXPECT_TRUE(full.Contains(kMaxPosting));
  EXPECT_TRUE(full.Contains(Posting{42, 42, {1, 2, 1}}));
  EXPECT_FALSE(full.Empty());
  EXPECT_FALSE(full.ToString().empty());
}

TEST(DocStoreTest, RegisterGetUnregister) {
  auto d1 = xml::ParseDocument("<a/>", "u1").take();
  auto d2 = xml::ParseDocument("<b/>", "u2").take();
  DocStore store;
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.Get(0), nullptr);
  const DocSeq s1 = store.Register(&d1);
  const DocSeq s2 = store.Register(&d2);
  EXPECT_EQ(s1, 0u);
  EXPECT_EQ(s2, 1u);
  EXPECT_EQ(store.Get(s1), &d1);
  EXPECT_EQ(store.Get(s2), &d2);

  EXPECT_EQ(store.Unregister(s1), &d1);
  EXPECT_EQ(store.Get(s1), nullptr);
  EXPECT_EQ(store.Unregister(s1), nullptr);  // already gone
  EXPECT_EQ(store.Unregister(99), nullptr);  // never existed
  // Sequence ids are never reused.
  const DocSeq s3 = store.Register(&d1);
  EXPECT_EQ(s3, 2u);
  EXPECT_EQ(store.size(), 3u);
}

}  // namespace
}  // namespace kadop::index
