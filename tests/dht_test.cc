#include <gtest/gtest.h>

#include <optional>
#include <set>

#include "dht/dht.h"
#include "dht/ring.h"

namespace kadop::dht {
namespace {

using index::Posting;
using index::PostingList;

Posting MakePosting(uint32_t peer, uint32_t doc, uint32_t start) {
  return Posting{peer, doc, {start, start + 1, 1}};
}

struct TestNet {
  explicit TestNet(size_t peers, DhtOptions options = {})
      : network(&scheduler), dht(&scheduler, &network, options) {
    dht.AddPeers(peers);
  }
  sim::Scheduler scheduler;
  sim::Network network;
  Dht dht;
};

TEST(RingTest, HalfOpenIntervalWithWraparound) {
  EXPECT_TRUE(InHalfOpen(5, 3, 7));
  EXPECT_TRUE(InHalfOpen(7, 3, 7));
  EXPECT_FALSE(InHalfOpen(3, 3, 7));
  EXPECT_FALSE(InHalfOpen(8, 3, 7));
  // Wrapped interval (7, 3].
  EXPECT_TRUE(InHalfOpen(9, 7, 3));
  EXPECT_TRUE(InHalfOpen(1, 7, 3));
  EXPECT_TRUE(InHalfOpen(3, 7, 3));
  EXPECT_FALSE(InHalfOpen(5, 7, 3));
  // Degenerate interval covers everything.
  EXPECT_TRUE(InHalfOpen(42, 9, 9));
}

TEST(RingTest, OpenInterval) {
  EXPECT_TRUE(InOpen(5, 3, 7));
  EXPECT_FALSE(InOpen(7, 3, 7));
  EXPECT_FALSE(InOpen(3, 3, 7));
  EXPECT_TRUE(InOpen(1, 7, 3));
  EXPECT_FALSE(InOpen(7, 7, 3));
}

TEST(DhtTest, OwnershipPartitionsTheRing) {
  TestNet net(20);
  // Every key has exactly one owner, and it is stable.
  for (int i = 0; i < 200; ++i) {
    const KeyId key = HashKey("key" + std::to_string(i));
    const sim::NodeIndex owner = net.dht.OwnerOf(key);
    EXPECT_EQ(owner, net.dht.OwnerOf(key));
    EXPECT_LT(owner, net.dht.PeerCount());
  }
}

TEST(DhtTest, LocateResolvesToTrueOwnerViaRouting) {
  TestNet net(32);
  for (int i = 0; i < 20; ++i) {
    const std::string key = "term" + std::to_string(i);
    std::optional<sim::NodeIndex> located;
    net.dht.peer(0)->Locate(key, [&](sim::NodeIndex owner) {
      located = owner;
    });
    net.scheduler.RunUntilIdle();
    ASSERT_TRUE(located.has_value());
    EXPECT_EQ(*located, net.dht.OwnerOf(HashKey(key)));
  }
}

TEST(DhtTest, RoutingUsesLogarithmicHops) {
  TestNet net(256);
  for (int i = 0; i < 50; ++i) {
    net.dht.peer(i % 256)->Locate("key" + std::to_string(i),
                                  [](sim::NodeIndex) {});
  }
  net.scheduler.RunUntilIdle();
  DhtStats stats = net.dht.AggregateStats();
  // Chord bound: ~log2(256) = 8 hops per lookup on average, certainly far
  // below the linear bound.
  EXPECT_LT(stats.route_hops, 50 * 16u);
  EXPECT_GT(stats.route_hops, 0u);
}

TEST(DhtTest, AppendThenGetRoundTrips) {
  TestNet net(8);
  PostingList postings{MakePosting(1, 1, 1), MakePosting(1, 2, 5)};
  bool acked = false;
  net.dht.peer(3)->Append("l:author", postings, [&](Status) { acked = true; });
  net.scheduler.RunUntilIdle();
  EXPECT_TRUE(acked);

  std::optional<GetResult> got;
  net.dht.peer(5)->Get("l:author", [&](GetResult r) { got = std::move(r); });
  net.scheduler.RunUntilIdle();
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(got->complete);
  EXPECT_EQ(got->postings, postings);
}

TEST(DhtTest, GetOfMissingKeyReturnsEmpty) {
  TestNet net(4);
  std::optional<GetResult> got;
  net.dht.peer(0)->Get("l:nothing", [&](GetResult r) { got = std::move(r); });
  net.scheduler.RunUntilIdle();
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(got->complete);
  EXPECT_TRUE(got->postings.empty());
}

TEST(DhtTest, PipelinedGetStreamsBlocksInOrder) {
  TestNet net(8);
  PostingList postings;
  for (uint32_t i = 0; i < 1000; ++i) postings.push_back(MakePosting(1, i, 1));
  net.dht.peer(0)->Append("l:big", postings, nullptr);
  net.scheduler.RunUntilIdle();

  GetSpec spec;
  spec.key = "l:big";
  spec.pipelined = true;
  spec.block_postings = 100;
  PostingList received;
  int blocks = 0;
  bool saw_last = false;
  net.dht.peer(1)->GetBlocks(spec, [&](PostingList block, bool last,
                                       bool complete) {
    EXPECT_TRUE(complete);
    EXPECT_FALSE(saw_last);
    received.insert(received.end(), block.begin(), block.end());
    ++blocks;
    saw_last = last;
  });
  net.scheduler.RunUntilIdle();
  EXPECT_TRUE(saw_last);
  EXPECT_EQ(blocks, 10);
  EXPECT_EQ(received, postings);
}

TEST(DhtTest, RangeGetHonorsBounds) {
  TestNet net(8);
  PostingList postings;
  for (uint32_t i = 0; i < 100; ++i) postings.push_back(MakePosting(1, i, 1));
  net.dht.peer(0)->Append("l:x", postings, nullptr);
  net.scheduler.RunUntilIdle();

  GetSpec spec;
  spec.key = "l:x";
  spec.lo = Posting{1, 10, {0, 0, 0}};
  spec.hi = Posting{1, 19, {UINT32_MAX, UINT32_MAX, UINT16_MAX}};
  PostingList received;
  net.dht.peer(1)->GetBlocks(spec, [&](PostingList block, bool, bool) {
    received.insert(received.end(), block.begin(), block.end());
  });
  net.scheduler.RunUntilIdle();
  ASSERT_EQ(received.size(), 10u);
  EXPECT_EQ(received.front().doc, 10u);
  EXPECT_EQ(received.back().doc, 19u);
}

TEST(DhtTest, DeleteRemovesPosting) {
  TestNet net(4);
  const Posting p = MakePosting(1, 1, 1);
  net.dht.peer(0)->Append("l:a", {p, MakePosting(1, 2, 1)}, nullptr);
  net.scheduler.RunUntilIdle();
  net.dht.peer(0)->Delete("l:a", p);
  net.scheduler.RunUntilIdle();
  std::optional<GetResult> got;
  net.dht.peer(0)->Get("l:a", [&](GetResult r) { got = std::move(r); });
  net.scheduler.RunUntilIdle();
  ASSERT_EQ(got->postings.size(), 1u);
  EXPECT_EQ(got->postings[0].doc, 2u);
}

TEST(DhtTest, DeleteDocAsDeletePlusInsert) {
  TestNet net(4);
  net.dht.peer(0)->Append(
      "l:a", {MakePosting(7, 1, 1), MakePosting(7, 1, 5), MakePosting(7, 2, 1)},
      nullptr);
  net.scheduler.RunUntilIdle();
  net.dht.peer(0)->DeleteDoc("l:a", index::DocId{7, 1});
  net.scheduler.RunUntilIdle();
  std::optional<GetResult> got;
  net.dht.peer(1)->Get("l:a", [&](GetResult r) { got = std::move(r); });
  net.scheduler.RunUntilIdle();
  ASSERT_EQ(got->postings.size(), 1u);
  EXPECT_EQ(got->postings[0].doc, 2u);
}

TEST(DhtTest, BlobRoundTrip) {
  TestNet net(8);
  net.dht.peer(2)->PutBlob("doc:2:0", "uri://doc0");
  net.scheduler.RunUntilIdle();
  std::optional<std::optional<std::string>> got;
  net.dht.peer(5)->GetBlob("doc:2:0", [&](std::optional<std::string> blob) {
    got = std::move(blob);
  });
  net.scheduler.RunUntilIdle();
  ASSERT_TRUE(got.has_value());
  ASSERT_TRUE(got->has_value());
  EXPECT_EQ(**got, "uri://doc0");

  got.reset();
  net.dht.peer(5)->GetBlob("doc:9:9", [&](std::optional<std::string> blob) {
    got = std::move(blob);
  });
  net.scheduler.RunUntilIdle();
  ASSERT_TRUE(got.has_value());
  EXPECT_FALSE(got->has_value());
}

TEST(DhtTest, GetTimeoutYieldsIncompleteResult) {
  TestNet net(8);
  PostingList postings{MakePosting(1, 1, 1)};
  net.dht.peer(0)->Append("l:a", postings, nullptr);
  net.scheduler.RunUntilIdle();
  const sim::NodeIndex owner = net.dht.OwnerOf(HashKey("l:a"));
  // Fail the owner; a get against it must time out incomplete.
  sim::NodeIndex requester = (owner + 1) % 8;
  net.network.SetNodeUp(owner, false);
  std::optional<GetResult> got;
  net.dht.peer(requester)->Get("l:a",
                               [&](GetResult r) { got = std::move(r); }, 1.0);
  net.scheduler.RunUntilIdle();
  ASSERT_TRUE(got.has_value());
  EXPECT_FALSE(got->complete);
}

TEST(DhtTest, ReplicationServesDataAfterOwnerFailure) {
  DhtOptions options;
  options.replication = 3;
  TestNet net(10, options);
  PostingList postings{MakePosting(1, 1, 1), MakePosting(1, 2, 1)};
  bool acked = false;
  net.dht.peer(0)->Append("l:a", postings, [&](Status) { acked = true; });
  net.scheduler.RunUntilIdle();
  ASSERT_TRUE(acked);

  const sim::NodeIndex owner = net.dht.OwnerOf(HashKey("l:a"));
  net.dht.FailPeer(owner);
  net.dht.Stabilize();

  const sim::NodeIndex requester =
      owner == 0 ? 1 : 0;
  std::optional<GetResult> got;
  net.dht.peer(requester)->Get("l:a", [&](GetResult r) {
    got = std::move(r);
  });
  net.scheduler.RunUntilIdle();
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(got->complete);
  EXPECT_EQ(got->postings, postings);
}

TEST(DhtTest, AppRequestResponse) {
  TestNet net(8);
  // Echo handler on every peer.
  struct EchoPayload final : sim::Payload {
    int value = 0;
    size_t SizeBytes() const override { return 4; }
    std::string_view TypeName() const override { return "EchoPayload"; }
  };
  for (size_t i = 0; i < 8; ++i) {
    DhtPeer* p = net.dht.peer(static_cast<sim::NodeIndex>(i));
    p->SetAppHandler([p](const AppRequest& req, sim::NodeIndex) {
      auto* echo = dynamic_cast<const EchoPayload*>(req.inner.get());
      ASSERT_NE(echo, nullptr);
      auto resp = std::make_shared<EchoPayload>();
      resp->value = echo->value + 1;
      p->Reply(req.origin, req.req_id, std::move(resp),
               sim::TrafficCategory::kControl);
    });
  }
  auto req = std::make_shared<EchoPayload>();
  req->value = 41;
  std::optional<int> answer;
  net.dht.peer(0)->RouteApp("some-key", req, sim::TrafficCategory::kControl,
                            [&](sim::PayloadPtr inner) {
                              answer =
                                  dynamic_cast<EchoPayload*>(inner.get())
                                      ->value;
                            });
  net.scheduler.RunUntilIdle();
  ASSERT_TRUE(answer.has_value());
  EXPECT_EQ(*answer, 42);
}

TEST(DhtTest, SinglePeerNetworkWorks) {
  TestNet net(1);
  PostingList postings{MakePosting(0, 0, 1)};
  bool acked = false;
  net.dht.peer(0)->Append("l:a", postings, [&](Status) { acked = true; });
  net.scheduler.RunUntilIdle();
  EXPECT_TRUE(acked);
  std::optional<GetResult> got;
  net.dht.peer(0)->Get("l:a", [&](GetResult r) { got = std::move(r); });
  net.scheduler.RunUntilIdle();
  EXPECT_EQ(got->postings, postings);
}

TEST(DhtTest, StoreKindSelectsImplementation) {
  DhtOptions naive;
  naive.store_kind = StoreKind::kNaive;
  TestNet a(4, naive);
  TestNet b(4);  // default btree
  PostingList postings;
  for (uint32_t i = 0; i < 200; ++i) postings.push_back(MakePosting(1, i, 1));
  for (const auto& p : postings) {
    a.dht.peer(0)->Append("l:a", {p}, nullptr);
    b.dht.peer(0)->Append("l:a", {p}, nullptr);
  }
  a.scheduler.RunUntilIdle();
  b.scheduler.RunUntilIdle();
  // Same contents, wildly different I/O cost.
  EXPECT_GT(a.dht.AggregateIo().read_bytes,
            10 * b.dht.AggregateIo().read_bytes + 1);
}

}  // namespace
}  // namespace kadop::dht
