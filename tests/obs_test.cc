// Unit tests for the observability layer: metrics registry semantics
// (bucket boundaries, snapshot/diff/reset, deterministic dumps) and the
// virtual-time span tracer.

#include <gtest/gtest.h>

#include <limits>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_analysis.h"

namespace kadop::obs {
namespace {

TEST(JsonWriterTest, EscapesAndNesting) {
  JsonWriter w;
  w.BeginObject();
  w.Key("s");
  w.Value(std::string_view("a\"b\\c\nd"));
  w.Key("arr");
  w.BeginArray();
  w.Value(static_cast<uint64_t>(1));
  w.Value(true);
  w.Null();
  w.EndArray();
  w.EndObject();
  EXPECT_EQ(w.str(), "{\"s\":\"a\\\"b\\\\c\\nd\",\"arr\":[1,true,null]}");
}

TEST(JsonWriterTest, DoubleFormattingIsStable) {
  EXPECT_EQ(JsonWriter::FormatDouble(0.0), "0");
  EXPECT_EQ(JsonWriter::FormatDouble(3.0), "3");
  EXPECT_EQ(JsonWriter::FormatDouble(-17.0), "-17");
  EXPECT_EQ(JsonWriter::FormatDouble(0.5), "0.5");
  // Non-finite values have no JSON representation.
  EXPECT_EQ(JsonWriter::FormatDouble(std::numeric_limits<double>::quiet_NaN()),
            "null");
  EXPECT_EQ(JsonWriter::FormatDouble(std::numeric_limits<double>::infinity()),
            "null");
}

TEST(JsonWriterTest, Utf8PassesThroughAndControlCharsEscape) {
  // Multi-byte UTF-8 sequences are valid JSON string bytes and must pass
  // through untouched; C0 control characters must become \u00xx escapes.
  JsonWriter w;
  w.BeginObject();
  w.Key("s");
  w.Value(std::string_view("caf\xc3\xa9 \x01\x1f \xe6\x97\xa5"));
  w.EndObject();
  EXPECT_EQ(w.str(), "{\"s\":\"caf\xc3\xa9 \\u0001\\u001f \xe6\x97\xa5\"}");
}

TEST(JsonWriterTest, NonFiniteNumbersSerializeAsNull) {
  JsonWriter w;
  w.BeginArray();
  w.Value(std::numeric_limits<double>::infinity());
  w.Value(-std::numeric_limits<double>::infinity());
  w.Value(std::numeric_limits<double>::quiet_NaN());
  w.Value(1.5);
  w.EndArray();
  EXPECT_EQ(w.str(), "[null,null,null,1.5]");
}

TEST(MetricsTest, CounterIsAPlainAdd) {
  // Hot-path sanity: the handle is stable and Increment is just `+= n` —
  // no lookup on the increment path. (The structural guarantee is that
  // Counter has no indirection; here we pin the observable semantics.)
  MetricRegistry reg;
  Counter* c = reg.GetCounter("x");
  ASSERT_EQ(reg.GetCounter("x"), c);  // same handle, no re-registration
  c->Increment();
  c->Increment(41);
  EXPECT_EQ(c->value(), 42u);
}

TEST(MetricsTest, HistogramBucketBoundariesAreInclusiveUpper) {
  MetricRegistry reg;
  Histogram* h = reg.GetHistogram("h", {1.0, 2.0, 4.0});
  h->Observe(0.5);   // <= 1      -> bucket 0
  h->Observe(1.0);   // == bound  -> bucket 0 (inclusive upper)
  h->Observe(1.001); // > 1, <= 2 -> bucket 1
  h->Observe(4.0);   // == last   -> bucket 2
  h->Observe(100.0); // overflow  -> bucket 3
  ASSERT_EQ(h->counts().size(), 4u);
  EXPECT_EQ(h->counts()[0], 2u);
  EXPECT_EQ(h->counts()[1], 1u);
  EXPECT_EQ(h->counts()[2], 1u);
  EXPECT_EQ(h->counts()[3], 1u);
  EXPECT_EQ(h->count(), 5u);
  EXPECT_DOUBLE_EQ(h->sum(), 0.5 + 1.0 + 1.001 + 4.0 + 100.0);
}

TEST(MetricsTest, SnapshotDiffReset) {
  MetricRegistry reg;
  Counter* c = reg.GetCounter("c");
  Gauge* g = reg.GetGauge("g");
  Histogram* h = reg.GetHistogram("h", {1.0});
  c->Increment(10);
  g->Set(2.5);
  h->Observe(0.5);

  MetricsSnapshot base = reg.Snapshot();
  c->Increment(5);
  g->Set(7.0);
  h->Observe(10.0);

  MetricsSnapshot now = reg.Snapshot();
  MetricsSnapshot diff = now.DiffSince(base);
  EXPECT_EQ(diff.counters.at("c"), 5u);
  // Gauges are levels, not rates: the diff keeps the current value.
  EXPECT_DOUBLE_EQ(diff.gauges.at("g"), 7.0);
  const HistogramSnapshot& hs = diff.histograms.at("h");
  EXPECT_EQ(hs.count, 1u);
  EXPECT_EQ(hs.counts[0], 0u);  // the 0.5 observation was in `base`
  EXPECT_EQ(hs.counts[1], 1u);  // overflow bucket got the 10.0

  // Reset zeroes in place; handles stay valid and start counting again.
  reg.Reset();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_DOUBLE_EQ(g->value(), 0.0);
  EXPECT_EQ(h->count(), 0u);
  c->Increment();
  EXPECT_EQ(reg.Snapshot().counters.at("c"), 1u);
}

TEST(MetricsTest, DumpsAreDeterministicallyOrdered) {
  MetricRegistry reg;
  // Register in non-lexicographic order; dumps must sort by name.
  reg.GetCounter("zzz")->Increment(1);
  reg.GetCounter("aaa")->Increment(2);
  reg.GetGauge("mmm")->Set(3);
  MetricsSnapshot s1 = reg.Snapshot();
  MetricsSnapshot s2 = reg.Snapshot();
  EXPECT_EQ(s1, s2);
  EXPECT_EQ(s1.ToJson(), s2.ToJson());
  EXPECT_EQ(s1.ToText(), s2.ToText());
  const std::string json = s1.ToJson();
  EXPECT_LT(json.find("\"aaa\""), json.find("\"zzz\""));
}

TEST(MetricsTest, PercentileIsExactRank) {
  Histogram h(std::vector<double>{1.0, 2.0, 4.0, 8.0});
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 0.0);  // empty histogram
  h.Observe(0.5);                            // bucket [.., 1]
  h.Observe(1.5);                            // bucket (1, 2]
  h.Observe(1.6);                            // bucket (1, 2]
  h.Observe(3.0);                            // bucket (2, 4]
  // rank = ceil(q * 4): q=0.25 -> rank 1 -> first bucket's upper bound.
  EXPECT_DOUBLE_EQ(h.Percentile(0.25), 1.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(h.Percentile(1.0), 4.0);
  // Overflow observations report the last finite bound, never +inf.
  h.Observe(100.0);
  EXPECT_DOUBLE_EQ(h.Percentile(1.0), 8.0);
}

TEST(MetricsTest, PercentilesAreMonotoneOnAdversarialLayouts) {
  // Monotonicity (p50 <= p99 <= p999) must hold for any bucket layout and
  // mass distribution, including all-overflow and single-observation cases.
  const std::vector<std::vector<double>> layouts = {
      {1.0}, {1.0, 2.0, 4.0}, LogLatencyBuckets()};
  const std::vector<std::vector<double>> workloads = {
      {0.5}, {1e9, 2e9, 3e9},                     // all overflow
      {0.1, 0.1, 0.1, 5.0},                       // skewed head
      {1.0, 2.0, 4.0, 8.0, 16.0, 1e6, 1e7, 1e8},  // spread + overflow
  };
  for (const auto& bounds : layouts) {
    for (const auto& work : workloads) {
      Histogram h(bounds);
      for (double v : work) h.Observe(v);
      double prev = 0;
      for (double q : {0.001, 0.01, 0.1, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0}) {
        const double p = h.Percentile(q);
        EXPECT_GE(p, prev) << "q=" << q;
        prev = p;
      }
    }
  }
}

TEST(MetricsTest, LogLatencyBucketsAreStrictlyAscending) {
  const std::vector<double> b = LogLatencyBuckets();
  ASSERT_GE(b.size(), 16u);
  for (size_t i = 1; i < b.size(); ++i) EXPECT_LT(b[i - 1], b[i]);
  EXPECT_DOUBLE_EQ(b.front(), 1e-4);
}

TEST(MetricsTest, WindowedSnapshotsRecordDeltas) {
  MetricRegistry reg;
  Counter* c = reg.GetCounter("c");
  c->Increment(7);  // before the window series starts: not in any delta
  WindowedSnapshots windows(reg);
  c->Increment(3);
  const WindowedSnapshots::Window& w1 = windows.Advance(1.0);
  EXPECT_DOUBLE_EQ(w1.end_time, 1.0);
  EXPECT_EQ(w1.delta.counters.at("c"), 3u);
  c->Increment(2);
  const WindowedSnapshots::Window& w2 = windows.Advance(2.5);
  EXPECT_EQ(w2.delta.counters.at("c"), 2u);
  ASSERT_EQ(windows.windows().size(), 2u);
  EXPECT_EQ(windows.windows()[0].delta.counters.at("c"), 3u);
}

TEST(MetricsTest, DefaultRegistryHasInstrumentationNamespaces) {
  // The process-wide registry picks up subsystem counters lazily; touching
  // it here must not crash and must stay the same object.
  EXPECT_EQ(&MetricRegistry::Default(), &MetricRegistry::Default());
}

TEST(TracerTest, DisabledTracingIsANoOp) {
  Tracer t;
  EXPECT_EQ(t.Begin("x"), 0u);
  t.End(0);
  t.Annotate(0, "k", "v");
  t.Event("e");
  EXPECT_TRUE(t.spans().empty());
}

TEST(TracerTest, SpansRecordVirtualTime) {
  Tracer t;
  double now = 1.5;
  t.SetClock([&now] { return now; }, &now);
  t.SetEnabled(true);
  SpanId s = t.Begin("publish");
  t.Annotate(s, "documents", "3");
  now = 4.0;
  t.Event("dpp.split", s);
  now = 9.25;
  t.End(s);
  ASSERT_EQ(t.spans().size(), 2u);
  const SpanRecord& span = t.spans()[0];
  EXPECT_EQ(span.name, "publish");
  EXPECT_DOUBLE_EQ(span.start, 1.5);
  EXPECT_DOUBLE_EQ(span.end, 9.25);
  const SpanRecord& ev = t.spans()[1];
  EXPECT_TRUE(ev.is_event);
  EXPECT_EQ(ev.parent, s);
  EXPECT_DOUBLE_EQ(ev.start, 4.0);

  // Ids restart from 1 after Clear, so dumps are run-relative.
  t.Clear();
  EXPECT_TRUE(t.spans().empty());
  EXPECT_EQ(t.Begin("again"), s);
  t.ClearClock(&now);
}

TEST(TracerTest, ClockOwnershipPreventsStaleClear) {
  Tracer t;
  int owner_a = 0, owner_b = 0;
  t.SetClock([] { return 1.0; }, &owner_a);
  t.SetClock([] { return 2.0; }, &owner_b);  // b takes over
  t.ClearClock(&owner_a);                    // stale owner: no-op
  t.SetEnabled(true);
  SpanId s = t.Begin("x");
  EXPECT_DOUBLE_EQ(t.spans()[0].start, 2.0);
  t.End(s);
  t.ClearClock(&owner_b);
  t.Clear();
  EXPECT_EQ(t.spans().size(), 0u);
}

TEST(TracerTest, CapacityBoundsMemory) {
  Tracer t;
  t.SetEnabled(true);
  t.SetCapacity(2);
  (void)t.Begin("a");
  t.Event("b");
  EXPECT_EQ(t.Begin("c"), 0u);  // dropped
  t.Event("d");                 // dropped
  EXPECT_EQ(t.spans().size(), 2u);
  EXPECT_EQ(t.dropped(), 2u);
  const std::string text = t.DumpText();
  EXPECT_NE(text.find("dropped 2"), std::string::npos);
}

TEST(TracerTest, OverflowCountsIntoRegistryAndDropped) {
  Counter* dropped =
      MetricRegistry::Default().GetCounter("trace.dropped_spans");
  const uint64_t before = dropped->value();
  Tracer t;
  t.SetEnabled(true);
  t.SetCapacity(1);
  (void)t.Begin("kept");
  EXPECT_EQ(t.Begin("lost"), 0u);
  t.Event("also_lost");
  EXPECT_EQ(t.dropped(), 2u);
  EXPECT_EQ(dropped->value(), before + 2);
}

TEST(TracerTest, OpenSpansTracksUnclosedSpans) {
  Tracer t;
  t.SetEnabled(true);
  EXPECT_EQ(t.OpenSpans(), 0u);
  const SpanId a = t.Begin("a");
  const SpanId b = t.Begin("b");
  t.Event("e");  // events are instantaneous, never "open"
  EXPECT_EQ(t.OpenSpans(), 2u);
  t.End(b);
  EXPECT_EQ(t.OpenSpans(), 1u);
  t.End(a);
  EXPECT_EQ(t.OpenSpans(), 0u);
}

TEST(TracerTest, ScopedContextParentsAndStampsSpans) {
  Tracer t;
  t.SetEnabled(true);
  const SpanId root = t.BeginRoot("query", /*node=*/3);
  const uint64_t trace = t.spans()[0].trace;
  EXPECT_NE(trace, 0u);
  EXPECT_EQ(t.spans()[0].node, 3u);
  {
    ScopedTraceContext scope(t.ContextFor(root));
    EXPECT_TRUE(CurrentTraceContext().active());
    const SpanId child = t.Begin("query.fetch");  // parent from the context
    const SpanRecord& rec = t.spans()[1];
    EXPECT_EQ(rec.parent, root);
    EXPECT_EQ(rec.trace, trace);
    EXPECT_EQ(rec.node, 3u);
    t.End(child);
  }
  EXPECT_FALSE(CurrentTraceContext().active());
  t.End(root);
  // A second root gets a distinct trace id from the deterministic sequence.
  const SpanId root2 = t.BeginRoot("query", 5);
  EXPECT_NE(t.spans()[2].trace, trace);
  t.End(root2);
}

TEST(TraceAnalysisTest, PhaseBreakdownSumsToRootDuration) {
  Tracer t;
  double now = 0.0;
  t.SetClock([&now] { return now; }, &now);
  t.SetEnabled(true);
  const SpanId root = t.BeginRoot("query", 0);
  ScopedTraceContext scope(t.ContextFor(root));
  now = 0.1;
  const SpanId route = t.Begin("query.route.directory");
  now = 0.3;
  t.End(route);
  const SpanId fetch = t.Begin("query.fetch");
  now = 0.7;
  t.End(fetch);
  now = 1.0;
  t.End(root);

  const TraceTree tree = BuildTraceTree(t, root);
  EXPECT_EQ(tree.disconnected, 0u);
  ASSERT_EQ(tree.spans.size(), 3u);

  const PhaseBreakdown pb = ComputePhaseBreakdown(tree);
  double sum = 0;
  double route_s = 0, fetch_s = 0, other_s = 0;
  for (const auto& [phase, seconds] : pb.phases) {
    sum += seconds;
    if (phase == "route") route_s = seconds;
    if (phase == "fetch") fetch_s = seconds;
    if (phase == "other") other_s = seconds;
  }
  EXPECT_DOUBLE_EQ(pb.total, 1.0);
  EXPECT_DOUBLE_EQ(sum, pb.total);  // exact partition, no residual loss
  EXPECT_DOUBLE_EQ(route_s, 0.2);
  EXPECT_DOUBLE_EQ(fetch_s, 0.4);
  EXPECT_DOUBLE_EQ(other_s, 0.4);  // root-only intervals

  const auto path = CriticalPath(tree);
  ASSERT_GE(path.size(), 2u);
  EXPECT_EQ(path[0].id, root);
  EXPECT_EQ(path[1].name, "query.fetch");  // the child ending last

  t.ClearClock(&now);
}

TEST(TraceAnalysisTest, ChromeTraceJsonShapesEvents) {
  Tracer t;
  double now = 0.5;
  t.SetClock([&now] { return now; }, &now);
  t.SetEnabled(true);
  const SpanId root = t.BeginRoot("query", 2);
  {
    ScopedTraceContext scope(t.ContextFor(root));
    t.Event("dpp.dir.serve");
  }
  now = 0.75;
  t.End(root);
  const std::string json = ChromeTraceJson(t);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\":2"), std::string::npos);
  // ts in microseconds of virtual time.
  EXPECT_NE(json.find("\"ts\":500000"), std::string::npos);
  EXPECT_EQ(json, ChromeTraceJson(t));  // byte-reproducible
  t.ClearClock(&now);
}

TEST(TracerTest, DumpsAreReproducible) {
  Tracer t;
  double now = 0.125;
  t.SetClock([&now] { return now; }, &now);
  t.SetEnabled(true);
  SpanId s = t.Begin("query");
  t.Annotate(s, "strategy", "dpp");
  now = 0.5;
  t.End(s);
  const std::string json = t.DumpJson();
  const std::string text = t.DumpText();
  EXPECT_EQ(json, t.DumpJson());
  EXPECT_EQ(text, t.DumpText());
  EXPECT_NE(json.find("\"name\":\"query\""), std::string::npos);
  t.ClearClock(&now);
}

}  // namespace
}  // namespace kadop::obs
