// Unit tests for the observability layer: metrics registry semantics
// (bucket boundaries, snapshot/diff/reset, deterministic dumps) and the
// virtual-time span tracer.

#include <gtest/gtest.h>

#include <limits>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace kadop::obs {
namespace {

TEST(JsonWriterTest, EscapesAndNesting) {
  JsonWriter w;
  w.BeginObject();
  w.Key("s");
  w.Value(std::string_view("a\"b\\c\nd"));
  w.Key("arr");
  w.BeginArray();
  w.Value(static_cast<uint64_t>(1));
  w.Value(true);
  w.Null();
  w.EndArray();
  w.EndObject();
  EXPECT_EQ(w.str(), "{\"s\":\"a\\\"b\\\\c\\nd\",\"arr\":[1,true,null]}");
}

TEST(JsonWriterTest, DoubleFormattingIsStable) {
  EXPECT_EQ(JsonWriter::FormatDouble(0.0), "0");
  EXPECT_EQ(JsonWriter::FormatDouble(3.0), "3");
  EXPECT_EQ(JsonWriter::FormatDouble(-17.0), "-17");
  EXPECT_EQ(JsonWriter::FormatDouble(0.5), "0.5");
  // Non-finite values have no JSON representation.
  EXPECT_EQ(JsonWriter::FormatDouble(std::numeric_limits<double>::quiet_NaN()),
            "null");
  EXPECT_EQ(JsonWriter::FormatDouble(std::numeric_limits<double>::infinity()),
            "null");
}

TEST(MetricsTest, CounterIsAPlainAdd) {
  // Hot-path sanity: the handle is stable and Increment is just `+= n` —
  // no lookup on the increment path. (The structural guarantee is that
  // Counter has no indirection; here we pin the observable semantics.)
  MetricRegistry reg;
  Counter* c = reg.GetCounter("x");
  ASSERT_EQ(reg.GetCounter("x"), c);  // same handle, no re-registration
  c->Increment();
  c->Increment(41);
  EXPECT_EQ(c->value(), 42u);
}

TEST(MetricsTest, HistogramBucketBoundariesAreInclusiveUpper) {
  MetricRegistry reg;
  Histogram* h = reg.GetHistogram("h", {1.0, 2.0, 4.0});
  h->Observe(0.5);   // <= 1      -> bucket 0
  h->Observe(1.0);   // == bound  -> bucket 0 (inclusive upper)
  h->Observe(1.001); // > 1, <= 2 -> bucket 1
  h->Observe(4.0);   // == last   -> bucket 2
  h->Observe(100.0); // overflow  -> bucket 3
  ASSERT_EQ(h->counts().size(), 4u);
  EXPECT_EQ(h->counts()[0], 2u);
  EXPECT_EQ(h->counts()[1], 1u);
  EXPECT_EQ(h->counts()[2], 1u);
  EXPECT_EQ(h->counts()[3], 1u);
  EXPECT_EQ(h->count(), 5u);
  EXPECT_DOUBLE_EQ(h->sum(), 0.5 + 1.0 + 1.001 + 4.0 + 100.0);
}

TEST(MetricsTest, SnapshotDiffReset) {
  MetricRegistry reg;
  Counter* c = reg.GetCounter("c");
  Gauge* g = reg.GetGauge("g");
  Histogram* h = reg.GetHistogram("h", {1.0});
  c->Increment(10);
  g->Set(2.5);
  h->Observe(0.5);

  MetricsSnapshot base = reg.Snapshot();
  c->Increment(5);
  g->Set(7.0);
  h->Observe(10.0);

  MetricsSnapshot now = reg.Snapshot();
  MetricsSnapshot diff = now.DiffSince(base);
  EXPECT_EQ(diff.counters.at("c"), 5u);
  // Gauges are levels, not rates: the diff keeps the current value.
  EXPECT_DOUBLE_EQ(diff.gauges.at("g"), 7.0);
  const HistogramSnapshot& hs = diff.histograms.at("h");
  EXPECT_EQ(hs.count, 1u);
  EXPECT_EQ(hs.counts[0], 0u);  // the 0.5 observation was in `base`
  EXPECT_EQ(hs.counts[1], 1u);  // overflow bucket got the 10.0

  // Reset zeroes in place; handles stay valid and start counting again.
  reg.Reset();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_DOUBLE_EQ(g->value(), 0.0);
  EXPECT_EQ(h->count(), 0u);
  c->Increment();
  EXPECT_EQ(reg.Snapshot().counters.at("c"), 1u);
}

TEST(MetricsTest, DumpsAreDeterministicallyOrdered) {
  MetricRegistry reg;
  // Register in non-lexicographic order; dumps must sort by name.
  reg.GetCounter("zzz")->Increment(1);
  reg.GetCounter("aaa")->Increment(2);
  reg.GetGauge("mmm")->Set(3);
  MetricsSnapshot s1 = reg.Snapshot();
  MetricsSnapshot s2 = reg.Snapshot();
  EXPECT_EQ(s1, s2);
  EXPECT_EQ(s1.ToJson(), s2.ToJson());
  EXPECT_EQ(s1.ToText(), s2.ToText());
  const std::string json = s1.ToJson();
  EXPECT_LT(json.find("\"aaa\""), json.find("\"zzz\""));
}

TEST(MetricsTest, DefaultRegistryHasInstrumentationNamespaces) {
  // The process-wide registry picks up subsystem counters lazily; touching
  // it here must not crash and must stay the same object.
  EXPECT_EQ(&MetricRegistry::Default(), &MetricRegistry::Default());
}

TEST(TracerTest, DisabledTracingIsANoOp) {
  Tracer t;
  EXPECT_EQ(t.Begin("x"), 0u);
  t.End(0);
  t.Annotate(0, "k", "v");
  t.Event("e");
  EXPECT_TRUE(t.spans().empty());
}

TEST(TracerTest, SpansRecordVirtualTime) {
  Tracer t;
  double now = 1.5;
  t.SetClock([&now] { return now; }, &now);
  t.SetEnabled(true);
  SpanId s = t.Begin("publish");
  t.Annotate(s, "documents", "3");
  now = 4.0;
  t.Event("dpp.split", s);
  now = 9.25;
  t.End(s);
  ASSERT_EQ(t.spans().size(), 2u);
  const SpanRecord& span = t.spans()[0];
  EXPECT_EQ(span.name, "publish");
  EXPECT_DOUBLE_EQ(span.start, 1.5);
  EXPECT_DOUBLE_EQ(span.end, 9.25);
  const SpanRecord& ev = t.spans()[1];
  EXPECT_TRUE(ev.is_event);
  EXPECT_EQ(ev.parent, s);
  EXPECT_DOUBLE_EQ(ev.start, 4.0);

  // Ids restart from 1 after Clear, so dumps are run-relative.
  t.Clear();
  EXPECT_TRUE(t.spans().empty());
  EXPECT_EQ(t.Begin("again"), s);
  t.ClearClock(&now);
}

TEST(TracerTest, ClockOwnershipPreventsStaleClear) {
  Tracer t;
  int owner_a = 0, owner_b = 0;
  t.SetClock([] { return 1.0; }, &owner_a);
  t.SetClock([] { return 2.0; }, &owner_b);  // b takes over
  t.ClearClock(&owner_a);                    // stale owner: no-op
  t.SetEnabled(true);
  SpanId s = t.Begin("x");
  EXPECT_DOUBLE_EQ(t.spans()[0].start, 2.0);
  t.End(s);
  t.ClearClock(&owner_b);
  t.Clear();
  EXPECT_EQ(t.spans().size(), 0u);
}

TEST(TracerTest, CapacityBoundsMemory) {
  Tracer t;
  t.SetEnabled(true);
  t.SetCapacity(2);
  (void)t.Begin("a");
  t.Event("b");
  EXPECT_EQ(t.Begin("c"), 0u);  // dropped
  t.Event("d");                 // dropped
  EXPECT_EQ(t.spans().size(), 2u);
  EXPECT_EQ(t.dropped(), 2u);
  const std::string text = t.DumpText();
  EXPECT_NE(text.find("dropped 2"), std::string::npos);
}

TEST(TracerTest, DumpsAreReproducible) {
  Tracer t;
  double now = 0.125;
  t.SetClock([&now] { return now; }, &now);
  t.SetEnabled(true);
  SpanId s = t.Begin("query");
  t.Annotate(s, "strategy", "dpp");
  now = 0.5;
  t.End(s);
  const std::string json = t.DumpJson();
  const std::string text = t.DumpText();
  EXPECT_EQ(json, t.DumpJson());
  EXPECT_EQ(text, t.DumpText());
  EXPECT_NE(json.find("\"name\":\"query\""), std::string::npos);
  t.ClearClock(&now);
}

}  // namespace
}  // namespace kadop::obs
