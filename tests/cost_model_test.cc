// Unit tests for the kAuto strategy cost model (the optimizer the paper
// describes as current work: "select the best execution plan that
// minimizes query response time or traffic consumption").

#include <gtest/gtest.h>

#include "core/kadop.h"
#include "query/executor.h"
#include "query/iterator.h"
#include "xml/corpus.h"

namespace kadop::query {
namespace {

TreePattern MustParse(const char* expr) {
  auto result = ParsePattern(expr);
  EXPECT_TRUE(result.ok());
  return result.take();
}

const StrategyCostEstimate* Find(
    const std::vector<StrategyCostEstimate>& costs, QueryStrategy s) {
  for (const auto& c : costs) {
    if (c.strategy == s) return &c;
  }
  return nullptr;
}

TEST(CostModelTest, UniformCountsOfferNoReducer) {
  TreePattern pattern = MustParse("//a//b");
  QueryOptions options;
  auto costs = EstimateStrategyCosts(pattern, {1000, 900}, options);
  EXPECT_NE(Find(costs, QueryStrategy::kBaseline), nullptr);
  EXPECT_NE(Find(costs, QueryStrategy::kDpp), nullptr);
  EXPECT_EQ(Find(costs, QueryStrategy::kSubQueryReducer), nullptr);
}

TEST(CostModelTest, SelectiveTermEnablesSubQueryReducer) {
  TreePattern pattern = MustParse("//a//b[. contains 'rare']");
  QueryOptions options;
  auto costs = EstimateStrategyCosts(pattern, {50000, 40000, 20}, options);
  const auto* sub = Find(costs, QueryStrategy::kSubQueryReducer);
  ASSERT_NE(sub, nullptr);
  const auto* baseline = Find(costs, QueryStrategy::kBaseline);
  ASSERT_NE(baseline, nullptr);
  // The reducer ships far less: the whole path collapses to ~20 postings.
  EXPECT_LT(sub->bytes, baseline->bytes / 10);
}

TEST(CostModelTest, DppHasLowerBottleneckThanBaseline) {
  TreePattern pattern = MustParse("//a//b");
  QueryOptions options;
  auto costs = EstimateStrategyCosts(pattern, {100000, 100000}, options);
  const auto* baseline = Find(costs, QueryStrategy::kBaseline);
  const auto* dpp = Find(costs, QueryStrategy::kDpp);
  ASSERT_NE(baseline, nullptr);
  ASSERT_NE(dpp, nullptr);
  EXPECT_EQ(baseline->bytes, dpp->bytes);  // same bytes move
  EXPECT_LT(dpp->bottleneck_bytes, baseline->bottleneck_bytes);
}

TEST(CostModelTest, DppExcludedWhenUnavailable) {
  TreePattern pattern = MustParse("//a//b");
  QueryOptions options;
  options.dpp_available = false;
  auto costs = EstimateStrategyCosts(pattern, {100, 100}, options);
  EXPECT_EQ(Find(costs, QueryStrategy::kDpp), nullptr);
}

TEST(CostModelTest, OffPathLongListsKeepBottleneckHigh) {
  // //a[//b]//c with rare c: the b branch is off the reduced path and
  // still ships entire, keeping the sub-query bottleneck near b's size.
  TreePattern pattern = MustParse("//a[//b]//c");
  QueryOptions options;
  auto costs = EstimateStrategyCosts(pattern, {50000, 60000, 10}, options);
  const auto* sub = Find(costs, QueryStrategy::kSubQueryReducer);
  ASSERT_NE(sub, nullptr);
  EXPECT_GE(sub->bottleneck_bytes,
            60000.0 * index::Posting::kWireBytes * 0.9);
}

TEST(CostModelTest, IteratorEstimateFlipsDppJoinDecision) {
  // The kDppJoin egress term is cardinality-driven: each answer tuple
  // ships ~8B of doc id plus ~10B per pattern node. The intersect
  // estimate (min term count) decides whether shipping answers beats
  // shipping inputs — so shrinking the *larger* list, which leaves the
  // estimate untouched, flips the traffic ranking.
  TreePattern pattern = MustParse("//a//b");
  QueryOptions options;
  options.dpp_join_available = true;

  // Wide gap: inputs dwarf answers, kDppJoin ships less than kDpp.
  const std::vector<uint64_t> skewed{1000, 5000};
  auto costs = EstimateStrategyCosts(pattern, skewed, options);
  const auto* djoin = Find(costs, QueryStrategy::kDppJoin);
  const auto* dpp = Find(costs, QueryStrategy::kDpp);
  ASSERT_NE(djoin, nullptr);
  ASSERT_NE(dpp, nullptr);
  EXPECT_LT(djoin->bytes, dpp->bytes);

  // Near-equal lists: the estimate (still 1000) now prices the answer
  // egress above the input shipping, and the ranking flips.
  const std::vector<uint64_t> balanced{1000, 1200};
  costs = EstimateStrategyCosts(pattern, balanced, options);
  djoin = Find(costs, QueryStrategy::kDppJoin);
  dpp = Find(costs, QueryStrategy::kDpp);
  ASSERT_NE(djoin, nullptr);
  ASSERT_NE(dpp, nullptr);
  EXPECT_GT(djoin->bytes, dpp->bytes);
}

TEST(CostModelTest, DppJoinBytesTrackEstimateTwigResults) {
  // The model consumes the iterator tree's EstimateResultsAmount, not a
  // fixed bytes-per-posting constant: the djoin byte cost reproduces the
  // closed form built from EstimateTwigResults exactly.
  TreePattern pattern = MustParse("//a//b//c");
  QueryOptions options;
  options.dpp_join_available = true;
  const std::vector<uint64_t> counts{40, 9000, 700};
  auto costs = EstimateStrategyCosts(pattern, counts, options);
  const auto* djoin = Find(costs, QueryStrategy::kDppJoin);
  ASSERT_NE(djoin, nullptr);
  const double kWire = static_cast<double>(index::Posting::kWireBytes);
  const double est =
      static_cast<double>(EstimateTwigResults(pattern, counts));
  EXPECT_EQ(est, 40.0);
  const double expected =
      (40.0 + 700.0) * kWire +
      est * (8.0 + 10.0 * static_cast<double>(pattern.size()));
  EXPECT_DOUBLE_EQ(djoin->bytes, expected);
}

// Mirrors StartAuto's selection loop exactly (strict improvement, primary
// key by objective, secondary key as tie-break).
QueryStrategy Pick(const std::vector<StrategyCostEstimate>& costs,
                   QueryOptions::Objective objective) {
  const StrategyCostEstimate* best = &costs[0];
  for (const StrategyCostEstimate& c : costs) {
    const bool better =
        objective == QueryOptions::Objective::kTraffic
            ? (c.bytes < best->bytes ||
               (c.bytes == best->bytes &&
                c.bottleneck_bytes < best->bottleneck_bytes))
            : (c.bottleneck_bytes < best->bottleneck_bytes ||
               (c.bottleneck_bytes == best->bottleneck_bytes &&
                c.bytes < best->bytes));
    if (better) best = &c;
  }
  return best->strategy;
}

TEST(CostModelTest, TinyExtentFlipsAutoToView) {
  // A selective view collapses both inputs and egress to its tiny extent:
  // kView must beat kDppJoin (and everything else) under both objectives.
  TreePattern pattern = MustParse("//a//b");
  QueryOptions options;
  options.dpp_join_available = true;
  options.view_available = true;
  options.view_extent_postings = 10;
  options.view_residual_postings = 0;
  auto costs = EstimateStrategyCosts(pattern, {1000, 5000}, options);
  const auto* view = Find(costs, QueryStrategy::kView);
  const auto* djoin = Find(costs, QueryStrategy::kDppJoin);
  ASSERT_NE(view, nullptr);
  ASSERT_NE(djoin, nullptr);
  EXPECT_LT(view->bytes, djoin->bytes);
  EXPECT_LT(view->bottleneck_bytes, djoin->bottleneck_bytes);
  EXPECT_EQ(Pick(costs, QueryOptions::Objective::kTraffic),
            QueryStrategy::kView);
  EXPECT_EQ(Pick(costs, QueryOptions::Objective::kTime),
            QueryStrategy::kView);
}

TEST(CostModelTest, HugeExtentKeepsAutoOnDppJoin) {
  // An unselective view whose extent nearly reprints the base lists loses
  // to kDppJoin's answer-tuple shipping even with a cheap residual term.
  TreePattern pattern = MustParse("//a//b");
  QueryOptions options;
  options.dpp_join_available = true;
  options.view_available = true;
  options.view_extent_postings = 5200;
  options.view_residual_postings = 300;
  auto costs = EstimateStrategyCosts(pattern, {1000, 5000}, options);
  const auto* view = Find(costs, QueryStrategy::kView);
  const auto* djoin = Find(costs, QueryStrategy::kDppJoin);
  ASSERT_NE(view, nullptr);
  ASSERT_NE(djoin, nullptr);
  EXPECT_GT(view->bytes, djoin->bytes);
  EXPECT_EQ(Pick(costs, QueryOptions::Objective::kTraffic),
            QueryStrategy::kDppJoin);
  EXPECT_EQ(Pick(costs, QueryOptions::Objective::kTime),
            QueryStrategy::kDppJoin);
}

TEST(CostModelTest, NoViewCandidateWithoutRewrite) {
  TreePattern pattern = MustParse("//a//b");
  QueryOptions options;
  options.dpp_join_available = true;
  auto costs = EstimateStrategyCosts(pattern, {1000, 5000}, options);
  EXPECT_EQ(Find(costs, QueryStrategy::kView), nullptr);
}

class ObjectiveTest : public ::testing::Test {
 protected:
  void SetUp() override {
    xml::corpus::DblpOptions copt;
    copt.target_bytes = 100 << 10;
    docs_ = xml::corpus::GenerateDblp(copt);
    core::KadopOptions opt;
    opt.peers = 10;
    opt.dpp.max_block_postings = 256;
    net_ = std::make_unique<core::KadopNet>(opt);
    std::vector<const xml::Document*> ptrs;
    for (const auto& d : docs_) ptrs.push_back(&d);
    net_->PublishAndWait(0, ptrs);
  }
  std::vector<xml::Document> docs_;
  std::unique_ptr<core::KadopNet> net_;
};

TEST_F(ObjectiveTest, TrafficObjectivePrefersReducerOnSelectiveQuery) {
  QueryOptions qopt;
  qopt.strategy = QueryStrategy::kAuto;
  qopt.objective = QueryOptions::Objective::kTraffic;
  auto result =
      net_->QueryAndWait(1, "//article//author[. contains 'Ullman']", qopt);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().metrics.effective_strategy,
            QueryStrategy::kSubQueryReducer);
}

TEST_F(ObjectiveTest, BothObjectivesPickDppWhenNothingIsSelective) {
  for (QueryOptions::Objective objective :
       {QueryOptions::Objective::kTime, QueryOptions::Objective::kTraffic}) {
    QueryOptions qopt;
    qopt.strategy = QueryStrategy::kAuto;
    qopt.objective = objective;
    auto result = net_->QueryAndWait(1, "//article//author", qopt);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.value().metrics.effective_strategy,
              QueryStrategy::kDpp);
  }
}

TEST_F(ObjectiveTest, AutoAnswersMatchExplicitStrategy) {
  for (const char* expr :
       {"//article//author", "//article//author[. contains 'Ullman']"}) {
    QueryOptions auto_opt;
    auto_opt.strategy = QueryStrategy::kAuto;
    auto auto_result = net_->QueryAndWait(1, expr, auto_opt);
    ASSERT_TRUE(auto_result.ok());
    QueryOptions dpp_opt;
    dpp_opt.strategy = QueryStrategy::kDpp;
    auto dpp_result = net_->QueryAndWait(1, expr, dpp_opt);
    ASSERT_TRUE(dpp_result.ok());
    EXPECT_EQ(auto_result.value().answers.size(),
              dpp_result.value().answers.size())
        << expr;
  }
}

}  // namespace
}  // namespace kadop::query
