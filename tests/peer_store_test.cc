#include <gtest/gtest.h>

#include <memory>

#include "store/peer_store.h"

namespace kadop::store {
namespace {

using index::DocId;
using index::Posting;
using index::PostingList;

Posting MakePosting(uint32_t peer, uint32_t doc, uint32_t start,
                    uint32_t end, uint16_t level) {
  return Posting{peer, doc, {start, end, level}};
}

/// Behavioural tests shared by both store implementations.
class PeerStoreTest
    : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    if (std::string(GetParam()) == "btree") {
      store_ = std::make_unique<BTreePeerStore>();
    } else {
      store_ = std::make_unique<NaivePeerStore>();
    }
  }
  std::unique_ptr<PeerStore> store_;
};

TEST_P(PeerStoreTest, EmptyKeyBehaviour) {
  EXPECT_TRUE(store_->GetPostings("l:missing").empty());
  EXPECT_EQ(store_->PostingCount("l:missing"), 0u);
  EXPECT_FALSE(
      store_->DeletePosting("l:missing", MakePosting(0, 0, 1, 2, 1)));
  EXPECT_EQ(store_->TotalPostings(), 0u);
  EXPECT_TRUE(store_->PostingKeys().empty());
}

TEST_P(PeerStoreTest, AppendKeepsClusteredOrder) {
  store_->AppendPosting("l:a", MakePosting(2, 1, 1, 4, 1));
  store_->AppendPosting("l:a", MakePosting(1, 1, 1, 4, 1));
  store_->AppendPosting("l:a", MakePosting(1, 0, 5, 6, 2));
  store_->AppendPosting("l:a", MakePosting(1, 0, 1, 2, 2));
  PostingList list = store_->GetPostings("l:a");
  ASSERT_EQ(list.size(), 4u);
  EXPECT_TRUE(index::IsSortedPostingList(list));
  EXPECT_EQ(list.front(), MakePosting(1, 0, 1, 2, 2));
  EXPECT_EQ(list.back(), MakePosting(2, 1, 1, 4, 1));
}

TEST_P(PeerStoreTest, BatchAppendMatchesSingleAppends) {
  PostingList batch;
  for (uint32_t i = 0; i < 50; ++i) {
    batch.push_back(MakePosting(1, i % 5, i * 2 + 1, i * 2 + 2, 1));
  }
  store_->AppendPostings("w:x", batch);
  EXPECT_EQ(store_->PostingCount("w:x"), 50u);
  PostingList list = store_->GetPostings("w:x");
  EXPECT_TRUE(index::IsSortedPostingList(list));
  EXPECT_EQ(list.size(), 50u);
}

TEST_P(PeerStoreTest, DuplicateAppendIsIdempotent) {
  const Posting p = MakePosting(1, 1, 1, 2, 1);
  store_->AppendPosting("l:a", p);
  store_->AppendPosting("l:a", p);
  EXPECT_EQ(store_->GetPostings("l:a").size(), 1u);
}

TEST_P(PeerStoreTest, KeysAreIsolated) {
  store_->AppendPosting("l:a", MakePosting(1, 1, 1, 2, 1));
  store_->AppendPosting("l:b", MakePosting(1, 1, 3, 4, 1));
  EXPECT_EQ(store_->GetPostings("l:a").size(), 1u);
  EXPECT_EQ(store_->GetPostings("l:b").size(), 1u);
  EXPECT_EQ(store_->TotalPostings(), 2u);
  auto keys = store_->PostingKeys();
  EXPECT_EQ(keys.size(), 2u);
}

TEST_P(PeerStoreTest, RangeReads) {
  for (uint32_t doc = 0; doc < 10; ++doc) {
    store_->AppendPosting("l:a", MakePosting(1, doc, 1, 2, 1));
  }
  PostingList range = store_->GetPostingRange(
      "l:a", MakePosting(1, 3, 0, 0, 0),
      MakePosting(1, 6, UINT32_MAX, UINT32_MAX, UINT16_MAX), 0);
  ASSERT_EQ(range.size(), 4u);
  EXPECT_EQ(range.front().doc, 3u);
  EXPECT_EQ(range.back().doc, 6u);

  PostingList limited = store_->GetPostingRange(
      "l:a", index::kMinPosting, index::kMaxPosting, 3);
  EXPECT_EQ(limited.size(), 3u);
}

TEST_P(PeerStoreTest, DeletePosting) {
  const Posting p1 = MakePosting(1, 1, 1, 2, 1);
  const Posting p2 = MakePosting(1, 1, 3, 4, 1);
  store_->AppendPosting("l:a", p1);
  store_->AppendPosting("l:a", p2);
  EXPECT_TRUE(store_->DeletePosting("l:a", p1));
  EXPECT_FALSE(store_->DeletePosting("l:a", p1));
  PostingList list = store_->GetPostings("l:a");
  ASSERT_EQ(list.size(), 1u);
  EXPECT_EQ(list[0], p2);
  EXPECT_EQ(store_->PostingCount("l:a"), 1u);
}

TEST_P(PeerStoreTest, DeleteDocPostings) {
  for (uint32_t doc = 0; doc < 4; ++doc) {
    store_->AppendPosting("l:a", MakePosting(1, doc, 1, 2, 1));
    store_->AppendPosting("l:a", MakePosting(1, doc, 3, 4, 1));
  }
  EXPECT_EQ(store_->DeleteDocPostings("l:a", DocId{1, 2}), 2u);
  EXPECT_EQ(store_->PostingCount("l:a"), 6u);
  for (const Posting& p : store_->GetPostings("l:a")) {
    EXPECT_NE(p.doc, 2u);
  }
  EXPECT_EQ(store_->DeleteDocPostings("l:a", DocId{1, 2}), 0u);
}

TEST_P(PeerStoreTest, Blobs) {
  EXPECT_EQ(store_->GetBlob("doc:1:1"), nullptr);
  store_->PutBlob("doc:1:1", "http://example.org/a.xml");
  ASSERT_NE(store_->GetBlob("doc:1:1"), nullptr);
  EXPECT_EQ(*store_->GetBlob("doc:1:1"), "http://example.org/a.xml");
  store_->PutBlob("doc:1:1", "other");
  EXPECT_EQ(*store_->GetBlob("doc:1:1"), "other");
  EXPECT_TRUE(store_->DeleteBlob("doc:1:1"));
  EXPECT_FALSE(store_->DeleteBlob("doc:1:1"));
}

TEST_P(PeerStoreTest, IoCountersMoveOnActivity) {
  store_->ResetIo();
  store_->AppendPosting("l:a", MakePosting(1, 1, 1, 2, 1));
  EXPECT_GT(store_->io().write_bytes, 0u);
  const uint64_t writes = store_->io().write_bytes;
  store_->GetPostings("l:a");
  EXPECT_GT(store_->io().read_bytes, 0u);
  EXPECT_EQ(store_->io().write_bytes, writes);
}

INSTANTIATE_TEST_SUITE_P(Stores, PeerStoreTest,
                         ::testing::Values("btree", "naive"));

/// Section 3's core asymmetry: building a long list posting-by-posting is
/// quadratic in I/O on the naive store and linear on the B+-tree store.
TEST(StoreCostTest, NaivePerEntryAppendIsQuadratic) {
  NaivePeerStore naive;
  BTreePeerStore btree;
  const size_t n = 2000;
  for (uint32_t i = 0; i < n; ++i) {
    const Posting p = MakePosting(1, i, 1, 2, 1);
    naive.AppendPosting("l:a", p);
    btree.AppendPosting("l:a", p);
  }
  const uint64_t naive_io = naive.io().read_bytes + naive.io().write_bytes;
  const uint64_t btree_io = btree.io().read_bytes + btree.io().write_bytes;
  // Quadratic vs linear: the gap must be enormous (paper: 2-3 orders).
  EXPECT_GT(naive_io, 100 * btree_io);
}

TEST(StoreCostTest, BatchingHelpsTheNaiveStore) {
  NaivePeerStore per_entry;
  NaivePeerStore batched;
  PostingList batch;
  for (uint32_t i = 0; i < 1000; ++i) {
    const Posting p = MakePosting(1, i, 1, 2, 1);
    per_entry.AppendPosting("l:a", p);
    batch.push_back(p);
    if (batch.size() == 100) {
      batched.AppendPostings("l:a", batch);
      batch.clear();
    }
  }
  EXPECT_GT(per_entry.io().write_bytes, 5 * batched.io().write_bytes);
}

TEST(BTreeStoreTest, TreeHeightGrowsLogarithmically) {
  BTreePeerStore store;
  for (uint32_t i = 0; i < 20000; ++i) {
    store.AppendPosting("l:a", MakePosting(1, i, 1, 2, 1));
  }
  EXPECT_LE(store.TreeHeight(), 4u);
  EXPECT_GE(store.TreeHeight(), 2u);
}

}  // namespace
}  // namespace kadop::store
