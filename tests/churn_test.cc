// Overlay churn: sequences of joins and failures must keep routing
// consistent (every key resolves to exactly the ring's true owner) and,
// with replication and handoff, keep query results intact.

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "core/kadop.h"
#include "dht/ring.h"
#include "obs/metrics.h"
#include "xml/corpus.h"

namespace kadop::dht {
namespace {

struct ChurnNet {
  ChurnNet(size_t peers, DhtOptions options = {})
      : network(&scheduler), dht(&scheduler, &network, options) {
    dht.AddPeers(peers);
  }
  sim::Scheduler scheduler;
  sim::Network network;
  Dht dht;
};

sim::NodeIndex LocateSync(ChurnNet& net, sim::NodeIndex from,
                          const std::string& key) {
  std::optional<sim::NodeIndex> owner;
  net.dht.peer(from)->Locate(key, [&](sim::NodeIndex o) { owner = o; });
  net.scheduler.RunUntilIdle();
  EXPECT_TRUE(owner.has_value());
  return owner.value_or(0);
}

TEST(ChurnTest, RoutingStaysConsistentThroughJoins) {
  ChurnNet net(8);
  for (int round = 0; round < 10; ++round) {
    net.dht.AddPeer();
    net.dht.Stabilize();
    for (int k = 0; k < 10; ++k) {
      const std::string key = "key" + std::to_string(round * 10 + k);
      const sim::NodeIndex expected = net.dht.OwnerOf(HashKey(key));
      EXPECT_EQ(LocateSync(net, round % 8, key), expected) << key;
    }
  }
  EXPECT_EQ(net.dht.PeerCount(), 18u);
}

TEST(ChurnTest, RoutingStaysConsistentThroughFailures) {
  ChurnNet net(24);
  // Fail a third of the network one peer at a time.
  for (int round = 0; round < 8; ++round) {
    const sim::NodeIndex victim = static_cast<sim::NodeIndex>(3 * round + 1);
    net.dht.FailPeer(victim);
    net.dht.Stabilize();
    for (int k = 0; k < 8; ++k) {
      const std::string key = "k" + std::to_string(round * 8 + k);
      const sim::NodeIndex expected = net.dht.OwnerOf(HashKey(key));
      const sim::NodeIndex from = static_cast<sim::NodeIndex>(3 * round + 2);
      EXPECT_EQ(LocateSync(net, from, key), expected);
      EXPECT_NE(expected, victim);
    }
  }
  EXPECT_EQ(net.dht.LivePeerCount(), 16u);
}

TEST(ChurnTest, MixedChurnWithReplicatedDataKeepsQueriesComplete) {
  xml::corpus::DblpOptions copt;
  copt.target_bytes = 150 << 10;
  auto docs = xml::corpus::GenerateDblp(copt);

  core::KadopOptions opt;
  opt.peers = 12;
  opt.enable_dpp = false;  // replication covers the flat index
  opt.dht.replication = 3;
  core::KadopNet net(opt);
  std::vector<const xml::Document*> ptrs;
  for (const auto& d : docs) ptrs.push_back(&d);
  net.PublishAndWait(2, ptrs);

  query::QueryOptions qopt;
  qopt.strategy = query::QueryStrategy::kBaseline;
  const char* expr = "//article//author[. contains 'Ullman']";
  auto before = net.QueryAndWait(5, expr, qopt);
  ASSERT_TRUE(before.ok());
  const size_t expected = before.value().answers.size();
  ASSERT_GT(expected, 0u);

  // Interleave joins and failures (never failing the publisher or the
  // query peer); replication + restabilization must preserve answers.
  const sim::NodeIndex joined1 = net.JoinPeerAndWait();
  EXPECT_EQ(joined1, net.PeerCount() - 1);
  net.FailPeerAndStabilize(7);
  const sim::NodeIndex joined2 = net.JoinPeerAndWait();
  EXPECT_EQ(joined2, net.PeerCount() - 1);
  net.FailPeerAndStabilize(9);

  auto after = net.QueryAndWait(5, expr, qopt);
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after.value().metrics.complete);
  EXPECT_EQ(after.value().answers.size(), expected);
}

TEST(ChurnTest, CrashRestartCyclesKeepRoutingAndData) {
  ChurnNet net(16);
  // Seed data while everyone is up.
  std::vector<std::string> keys;
  for (int k = 0; k < 12; ++k) keys.push_back("crk" + std::to_string(k));
  for (const auto& key : keys) {
    bool acked = false;
    net.dht.peer(0)->Append(key, {index::Posting{1, 7, {1, 2, 2}}},
                            [&](Status) { acked = true; });
    net.scheduler.RunUntilIdle();
    EXPECT_TRUE(acked);
  }

  for (int round = 0; round < 4; ++round) {
    const sim::NodeIndex a = static_cast<sim::NodeIndex>(round * 3 + 1);
    const sim::NodeIndex b = static_cast<sim::NodeIndex>(round * 3 + 2);
    net.dht.FailPeer(a);
    net.dht.FailPeer(b);
    net.dht.Stabilize();
    for (const auto& key : keys) {
      const sim::NodeIndex expected = net.dht.OwnerOf(HashKey(key));
      EXPECT_NE(expected, a);
      EXPECT_NE(expected, b);
      EXPECT_EQ(LocateSync(net, 0, key), expected) << key;
    }
    net.dht.RestartPeer(a);
    net.dht.RestartPeer(b);
    net.dht.Stabilize();
    // Restarted peers route again, both as origin and as owner.
    for (const auto& key : keys) {
      EXPECT_EQ(LocateSync(net, a, key), net.dht.OwnerOf(HashKey(key))) << key;
    }
  }

  // Stores survive the crash/restart cycles: every key is still readable
  // with its original posting (no replication involved — the data came back
  // with its restarted owner).
  for (const auto& key : keys) {
    std::optional<GetResult> got;
    net.dht.peer(3)->Get(key, [&](GetResult r) { got = std::move(r); });
    net.scheduler.RunUntilIdle();
    ASSERT_TRUE(got.has_value()) << key;
    EXPECT_TRUE(got->complete) << key;
    EXPECT_EQ(got->postings.size(), 1u) << key;
  }
}

TEST(ChurnTest, ScheduledCrashRestartEventsPreserveQueryCompleteness) {
  xml::corpus::DblpOptions copt;
  copt.target_bytes = 120 << 10;
  auto docs = xml::corpus::GenerateDblp(copt);

  core::KadopOptions opt;
  opt.peers = 12;
  core::KadopNet net(opt);
  std::vector<const xml::Document*> ptrs;
  for (const auto& d : docs) ptrs.push_back(&d);
  net.PublishAndWait(2, ptrs);

  query::QueryOptions qopt;
  qopt.strategy = query::QueryStrategy::kDpp;
  const char* expr = "//article//author";
  auto before = net.QueryAndWait(5, expr, qopt);
  ASSERT_TRUE(before.ok());
  const size_t expected = before.value().answers.size();
  ASSERT_GT(expected, 0u);

  auto& registry = obs::MetricRegistry::Default();
  const uint64_t crashes0 = registry.GetCounter("fault.crashes")->value();
  const uint64_t restarts0 = registry.GetCounter("fault.restarts")->value();

  // A pure crash/restart schedule on the virtual clock (no message faults):
  // two peers die shortly after each other, then come back. Stores are
  // durable, so once the schedule has played out queries are complete again.
  const double t0 = net.scheduler().Now();
  net.EnableFaults(sim::FaultOptions{},
                   {sim::CrashEvent{t0 + 0.5, 7, /*up=*/false},
                    sim::CrashEvent{t0 + 0.7, 9, /*up=*/false},
                    sim::CrashEvent{t0 + 2.0, 7, /*up=*/true},
                    sim::CrashEvent{t0 + 2.5, 9, /*up=*/true}});
  net.RunToIdle();
  net.DisableFaults();
  EXPECT_EQ(registry.GetCounter("fault.crashes")->value(), crashes0 + 2);
  EXPECT_EQ(registry.GetCounter("fault.restarts")->value(), restarts0 + 2);

  auto after = net.QueryAndWait(5, expr, qopt);
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after.value().metrics.complete);
  EXPECT_EQ(after.value().answers.size(), expected);
}

TEST(ChurnTest, HopCountsStayLogarithmicAfterChurn) {
  ChurnNet net(64);
  for (int i = 0; i < 16; ++i) {
    net.dht.AddPeer();
  }
  net.dht.Stabilize();
  for (int i = 0; i < 8; ++i) {
    net.dht.FailPeer(static_cast<sim::NodeIndex>(i * 7 + 3));
  }
  net.dht.Stabilize();

  const DhtStats before = net.dht.AggregateStats();
  const int lookups = 40;
  for (int i = 0; i < lookups; ++i) {
    // Only issue lookups from live peers (a failed origin cannot receive
    // the response).
    sim::NodeIndex from = static_cast<sim::NodeIndex>((i * 11 + 1) % 64);
    while (!net.network.IsNodeUp(from)) from = (from + 1) % 64;
    LocateSync(net, from, "key" + std::to_string(i));
  }
  const DhtStats after = net.dht.AggregateStats();
  const double hops_per_lookup =
      static_cast<double>(after.route_hops - before.route_hops) / lookups;
  EXPECT_LT(hops_per_lookup, 10.0);  // ~log2(72)
}

}  // namespace
}  // namespace kadop::dht
