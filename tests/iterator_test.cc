// Seeded property tests for the iterator-tree query engine
// (src/query/iterator.h): every combinator must agree with a naive
// decode-everything oracle on skewed and adversarial posting lists, lazy
// block decode must actually skip out-of-range encoded blocks (pinned
// through the blocks_decoded / blocks_skipped_undecoded counters), and
// the structural join must produce byte-identical answers regardless of
// whether its inputs arrive decoded, shared, or encoded.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <random>
#include <vector>

#include "index/codec.h"
#include "index/posting.h"
#include "query/iterator.h"
#include "query/tree_pattern.h"
#include "query/twig_join.h"

namespace kadop::query {
namespace {

using index::Condition;
using index::DocId;
using index::Posting;
using index::PostingList;

TreePattern MustParse(const char* expr) {
  auto result = ParsePattern(expr);
  EXPECT_TRUE(result.ok());
  return result.take();
}

/// Clustered sorted list: few peers, docs in [0, doc_span), valid SIDs,
/// occasional exact duplicates — the shape real term lists have.
PostingList RandomSortedList(std::mt19937_64& rng, size_t n,
                             uint32_t doc_span = 500) {
  PostingList list;
  list.reserve(n);
  std::uniform_int_distribution<uint32_t> peer_d(0, 3);
  std::uniform_int_distribution<uint32_t> doc_d(0, doc_span - 1);
  std::uniform_int_distribution<uint32_t> start_d(1, 1 << 16);
  std::uniform_int_distribution<uint32_t> width_d(0, 1 << 8);
  std::uniform_int_distribution<uint16_t> level_d(1, 20);
  std::uniform_int_distribution<int> dup_d(0, 9);
  while (list.size() < n) {
    const uint32_t start = start_d(rng);
    Posting p{peer_d(rng), doc_d(rng),
              {start, start + width_d(rng), level_d(rng)}};
    list.push_back(p);
    if (dup_d(rng) == 0 && list.size() < n) list.push_back(p);
  }
  std::sort(list.begin(), list.end());
  return list;
}

/// Splits `list` into random contiguous chunks (possibly empty at the
/// tail) — any split of a sorted list is a valid block stream.
std::vector<PostingList> RandomChunks(std::mt19937_64& rng,
                                      const PostingList& list) {
  std::vector<PostingList> chunks;
  std::uniform_int_distribution<size_t> len_d(1, 64);
  size_t i = 0;
  while (i < list.size()) {
    const size_t len = std::min(len_d(rng), list.size() - i);
    chunks.emplace_back(list.begin() + static_cast<long>(i),
                        list.begin() + static_cast<long>(i + len));
    i += len;
  }
  return chunks;
}

enum class Storage { kOwned, kShared, kEncoded };

PostingBlock MakeBlock(PostingList chunk, Storage storage) {
  switch (storage) {
    case Storage::kOwned:
      return PostingBlock::FromList(std::move(chunk));
    case Storage::kShared:
      return PostingBlock::FromShared(
          std::make_shared<const PostingList>(std::move(chunk)));
    case Storage::kEncoded: {
      const Condition bounds =
          chunk.empty() ? Condition{} : Condition{chunk.front(), chunk.back()};
      const uint64_t count = chunk.size();
      return PostingBlock::FromEncoded(
          std::make_shared<const std::vector<uint8_t>>(
              index::codec::EncodePostings(chunk)),
          bounds, count);
    }
  }
  return PostingBlock::FromList({});  // unreachable
}

PostingListIterator MakeIterator(std::mt19937_64& rng, const PostingList& list,
                                 Storage storage, Arena* arena = nullptr) {
  PostingListIterator it(arena);
  for (PostingList& chunk : RandomChunks(rng, list)) {
    it.Push(MakeBlock(std::move(chunk), storage));
  }
  it.Close();
  return it;
}

PostingList Drain(IndexIterator& it) {
  PostingList out;
  Posting p;
  while (it.Read(&p)) out.push_back(p);
  return out;
}

/// sort + unique oracle for MergeDistinct / UnionIterator.
PostingList DistinctOracle(const std::vector<PostingList>& lists) {
  PostingList merged;
  for (const PostingList& l : lists) {
    merged.insert(merged.end(), l.begin(), l.end());
  }
  std::sort(merged.begin(), merged.end());
  merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
  return merged;
}

/// Intersect oracle: postings of lists[0] whose document id appears in
/// every other list.
PostingList IntersectOracle(const std::vector<PostingList>& lists) {
  PostingList out;
  for (const Posting& p : lists[0]) {
    bool everywhere = true;
    for (size_t i = 1; i < lists.size() && everywhere; ++i) {
      everywhere = std::any_of(
          lists[i].begin(), lists[i].end(),
          [&](const Posting& q) { return q.doc_id() == p.doc_id(); });
    }
    if (everywhere) out.push_back(p);
  }
  return out;
}

// --- Arena -----------------------------------------------------------------

TEST(ArenaTest, AllocationsAreAlignedAndDisjoint) {
  Arena arena(256);
  auto* a = arena.AllocateArray<Posting>(10);
  auto* b = arena.AllocateArray<uint64_t>(4);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(a) % alignof(Posting), 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b) % alignof(uint64_t), 0u);
  for (size_t i = 0; i < 10; ++i) a[i] = Posting{1, 2, {3, 4, 5}};
  for (size_t i = 0; i < 4; ++i) b[i] = i;
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(a[i], (Posting{1, 2, {3, 4, 5}}));
  }
  EXPECT_GE(arena.allocated_bytes(), 10 * sizeof(Posting) + 4 * sizeof(uint64_t));
}

TEST(ArenaTest, OversizedRequestGetsItsOwnChunk) {
  Arena arena(64);
  auto* big = arena.AllocateArray<Posting>(100);  // far beyond one chunk
  ASSERT_NE(big, nullptr);
  big[99] = Posting{9, 9, {9, 9, 9}};
  EXPECT_EQ(big[99], (Posting{9, 9, {9, 9, 9}}));
}

TEST(ArenaTest, ResetRecyclesChunksInsteadOfGrowing) {
  Arena arena(1 << 12);
  for (int round = 0; round < 3; ++round) {
    arena.Reset();
    for (int i = 0; i < 8; ++i) (void)arena.AllocateArray<Posting>(16);
  }
  const size_t chunks_after_warmup = arena.chunk_count();
  for (int round = 0; round < 10; ++round) {
    arena.Reset();
    for (int i = 0; i < 8; ++i) (void)arena.AllocateArray<Posting>(16);
  }
  // The hot loop is allocation-free once capacities have warmed up.
  EXPECT_EQ(arena.chunk_count(), chunks_after_warmup);
}

// --- PostingListIterator ---------------------------------------------------

TEST(PostingListIteratorTest, DrainMatchesListInEveryStorageForm) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    for (Storage storage :
         {Storage::kOwned, Storage::kShared, Storage::kEncoded}) {
      std::mt19937_64 rng(seed);
      const PostingList list = RandomSortedList(rng, 300);
      Arena arena;
      PostingListIterator it = MakeIterator(rng, list, storage, &arena);
      EXPECT_EQ(it.EstimateResultsAmount(), list.size());
      EXPECT_EQ(Drain(it), list);
      EXPECT_FALSE(it.HasBuffered());
      EXPECT_TRUE(it.Exhausted());
    }
  }
}

TEST(PostingListIteratorTest, SkipToMatchesLowerBoundOracle) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    for (Storage storage :
         {Storage::kOwned, Storage::kShared, Storage::kEncoded}) {
      std::mt19937_64 rng(seed);
      const PostingList list = RandomSortedList(rng, 400);
      Arena arena;
      PostingListIterator it = MakeIterator(rng, list, storage, &arena);
      // Random non-decreasing targets; the oracle walks the flat list.
      size_t oracle = 0;  // index of the next unconsumed oracle posting
      std::uniform_int_distribution<size_t> jump_d(0, 12);
      std::uniform_int_distribution<int> coin(0, 1);
      while (oracle < list.size()) {
        if (coin(rng) == 0) {
          // Interleave plain reads to exercise mixed access.
          Posting got;
          ASSERT_TRUE(it.Read(&got));
          EXPECT_EQ(got, list[oracle]);
          ++oracle;
          continue;
        }
        const size_t probe =
            std::min(list.size() - 1, oracle + jump_d(rng));
        const Posting target = list[probe];
        const size_t expect = static_cast<size_t>(
            std::lower_bound(list.begin() + static_cast<long>(oracle),
                             list.end(), target) -
            list.begin());
        Posting got;
        ASSERT_TRUE(it.SkipTo(target, &got));
        EXPECT_EQ(got, list[expect]);
        oracle = expect + 1;  // SkipTo consumes the returned posting
      }
      Posting end;
      EXPECT_FALSE(it.Read(&end));
    }
  }
}

TEST(PostingListIteratorTest, SkipToPastEverythingReturnsFalse) {
  std::mt19937_64 rng(3);
  const PostingList list = RandomSortedList(rng, 100);
  PostingListIterator it = MakeIterator(rng, list, Storage::kEncoded);
  Posting got;
  EXPECT_FALSE(it.SkipTo(index::kMaxPosting, &got));
  EXPECT_FALSE(it.HasBuffered());
  // Every block was dropped from its bounds alone.
  EXPECT_EQ(it.blocks_decoded(), 0u);
  EXPECT_GT(it.blocks_skipped_undecoded(), 0u);
}

TEST(PostingListIteratorTest, OutOfRangeEncodedBlocksAreNeverDecoded) {
  // Ten encoded blocks over docs [0, 1000), then one block at doc 5000.
  // A SkipTo straight to doc 5000 must decode exactly one block: the
  // [min_doc, max_doc] header interval of the other ten misses the target.
  PostingListIterator it;
  for (uint32_t b = 0; b < 10; ++b) {
    PostingList chunk;
    for (uint32_t d = 0; d < 100; ++d) {
      chunk.push_back(Posting{0, b * 100 + d, {1, 2, 1}});
    }
    it.Push(MakeBlock(std::move(chunk), Storage::kEncoded));
  }
  it.Push(MakeBlock({Posting{0, 5000, {1, 2, 1}}}, Storage::kEncoded));
  it.Close();

  Posting got;
  ASSERT_TRUE(it.SkipTo(Posting{0, 5000, {0, 0, 0}}, &got));
  EXPECT_EQ(got, (Posting{0, 5000, {1, 2, 1}}));
  EXPECT_EQ(it.blocks_skipped_undecoded(), 10u);
  EXPECT_EQ(it.blocks_decoded(), 1u);
}

TEST(PostingListIteratorTest, EstimateIsAvailableBeforeAnyDecode) {
  std::mt19937_64 rng(5);
  const PostingList list = RandomSortedList(rng, 200);
  PostingListIterator it = MakeIterator(rng, list, Storage::kEncoded);
  EXPECT_EQ(it.EstimateResultsAmount(), list.size());
  EXPECT_EQ(it.blocks_decoded(), 0u);  // the estimate came from headers
}

TEST(PostingListIteratorTest, AdversarialShapes) {
  // Empty blocks are dropped on Push; single-posting runs and a long run
  // of exact duplicates stream through unchanged.
  PostingListIterator it;
  it.Push(PostingBlock::FromList({}));
  const Posting dup{1, 1, {5, 9, 2}};
  it.Push(PostingBlock::FromList(PostingList(32, dup)));
  it.Push(PostingBlock::FromList({Posting{1, 2, {1, 1, 1}}}));
  it.Push(PostingBlock::FromList({}));
  it.Push(MakeBlock({Posting{2, 0, {1, 4, 1}}}, Storage::kEncoded));
  it.Close();
  PostingList expect(32, dup);
  expect.push_back(Posting{1, 2, {1, 1, 1}});
  expect.push_back(Posting{2, 0, {1, 4, 1}});
  EXPECT_EQ(Drain(it), expect);
}

TEST(PostingListIteratorTest, AbortDropsEverything) {
  std::mt19937_64 rng(6);
  PostingListIterator it =
      MakeIterator(rng, RandomSortedList(rng, 50), Storage::kOwned);
  it.Abort();
  EXPECT_TRUE(it.Exhausted());
  EXPECT_EQ(it.EstimateResultsAmount(), 0u);
  Posting p;
  EXPECT_FALSE(it.Read(&p));
}

TEST(PostingListIteratorTest, ForEstimateCarriesCardinality) {
  PostingListIterator it = PostingListIterator::ForEstimate(1234);
  EXPECT_EQ(it.EstimateResultsAmount(), 1234u);
}

// --- UnionIterator ---------------------------------------------------------

TEST(UnionIteratorTest, MatchesSortUniqueOracle) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    std::mt19937_64 rng(seed);
    std::uniform_int_distribution<size_t> n_d(0, 200);
    std::vector<PostingList> lists;
    std::vector<std::unique_ptr<IndexIterator>> children;
    for (int i = 0; i < 4; ++i) {
      lists.push_back(RandomSortedList(rng, n_d(rng)));
      const Storage storage =
          static_cast<Storage>(i % 3);  // mix storage forms
      children.push_back(std::make_unique<PostingListIterator>(
          MakeIterator(rng, lists.back(), storage)));
    }
    UnionIterator u(std::move(children));
    EXPECT_EQ(Drain(u), DistinctOracle(lists));
  }
}

TEST(UnionIteratorTest, SkipToMatchesOracle) {
  std::mt19937_64 rng(11);
  std::vector<PostingList> lists;
  std::vector<std::unique_ptr<IndexIterator>> children;
  for (int i = 0; i < 3; ++i) {
    lists.push_back(RandomSortedList(rng, 150));
    children.push_back(std::make_unique<PostingListIterator>(
        MakeIterator(rng, lists.back(), Storage::kOwned)));
  }
  const PostingList oracle = DistinctOracle(lists);
  UnionIterator u(std::move(children));
  size_t at = 0;
  std::uniform_int_distribution<size_t> jump_d(0, 9);
  while (at < oracle.size()) {
    const size_t probe = std::min(oracle.size() - 1, at + jump_d(rng));
    Posting got;
    ASSERT_TRUE(u.SkipTo(oracle[probe], &got));
    EXPECT_EQ(got, oracle[probe]);
    at = probe + 1;
  }
  Posting end;
  EXPECT_FALSE(u.Read(&end));
}

// --- IntersectIterator -----------------------------------------------------

TEST(IntersectIteratorTest, MatchesOracleOnSkewedLists) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    std::mt19937_64 rng(seed);
    // Skew: one tiny selective child against larger ones, tight doc span
    // so intersections actually happen.
    std::vector<PostingList> lists;
    lists.push_back(RandomSortedList(rng, 250, 120));
    lists.push_back(RandomSortedList(rng, 20, 120));
    lists.push_back(RandomSortedList(rng, 400, 120));
    std::vector<std::unique_ptr<IndexIterator>> children;
    for (size_t i = 0; i < lists.size(); ++i) {
      children.push_back(std::make_unique<PostingListIterator>(
          MakeIterator(rng, lists[i], static_cast<Storage>(i % 3))));
    }
    IntersectIterator x(std::move(children));
    EXPECT_EQ(Drain(x), IntersectOracle(lists));
  }
}

TEST(IntersectIteratorTest, DisjointChildrenProduceNothing) {
  std::vector<std::unique_ptr<IndexIterator>> children;
  for (uint32_t base : {0u, 1000u}) {
    PostingList list;
    for (uint32_t d = 0; d < 50; ++d) {
      list.push_back(Posting{0, base + d, {1, 2, 1}});
    }
    auto it = std::make_unique<PostingListIterator>();
    it->Push(PostingBlock::FromList(std::move(list)));
    it->Close();
    children.push_back(std::move(it));
  }
  IntersectIterator x(std::move(children));
  Posting p;
  EXPECT_FALSE(x.Read(&p));
}

TEST(IntersectIteratorTest, GallopingWorstCaseSkipsLargeChildUndecoded) {
  // The galloping worst case: a single-posting child forces one giant
  // leap through a large encoded child. Every out-of-range block of the
  // large child must be dropped from its header bounds alone.
  auto large = std::make_unique<PostingListIterator>();
  for (uint32_t b = 0; b < 20; ++b) {
    PostingList chunk;
    for (uint32_t d = 0; d < 50; ++d) {
      chunk.push_back(Posting{0, b * 50 + d, {1, 2, 1}});
    }
    large->Push(MakeBlock(std::move(chunk), Storage::kEncoded));
  }
  large->Push(MakeBlock({Posting{0, 99999, {1, 2, 1}}}, Storage::kEncoded));
  large->Close();
  PostingListIterator* large_raw = large.get();

  auto tiny = std::make_unique<PostingListIterator>();
  tiny->Push(PostingBlock::FromList({Posting{0, 99999, {3, 4, 2}}}));
  tiny->Close();

  std::vector<std::unique_ptr<IndexIterator>> children;
  children.push_back(std::move(tiny));
  children.push_back(std::move(large));
  IntersectIterator x(std::move(children));
  const PostingList expect{Posting{0, 99999, {3, 4, 2}}};
  EXPECT_EQ(Drain(x), expect);
  EXPECT_EQ(large_raw->blocks_skipped_undecoded(), 20u);
  EXPECT_EQ(large_raw->blocks_decoded(), 1u);
}

TEST(IntersectIteratorTest, EstimateIsMinOverChildren) {
  std::vector<std::unique_ptr<IndexIterator>> children;
  for (uint64_t c : {500u, 7u, 90u}) {
    children.push_back(std::make_unique<PostingListIterator>(
        PostingListIterator::ForEstimate(c)));
  }
  IntersectIterator x(std::move(children));
  EXPECT_EQ(x.EstimateResultsAmount(), 7u);
}

// --- MergeDistinct ---------------------------------------------------------

TEST(MergeDistinctTest, MatchesSortUniqueOracle) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    std::mt19937_64 rng(seed);
    std::uniform_int_distribution<size_t> n_d(0, 120);
    std::vector<PostingList> lists;
    for (int i = 0; i < 5; ++i) lists.push_back(RandomSortedList(rng, n_d(rng)));
    const PostingList oracle = DistinctOracle(lists);
    EXPECT_EQ(MergeDistinct(lists), oracle);

    std::vector<PostingBlock> blocks;
    for (size_t i = 0; i < lists.size(); ++i) {
      blocks.push_back(MakeBlock(lists[i], static_cast<Storage>(i % 3)));
    }
    EXPECT_EQ(MergeDistinct(std::move(blocks)), oracle);
  }
}

TEST(MergeDistinctTest, UnsortedInputFallsBackToCanonicalResult) {
  PostingList backwards{Posting{0, 9, {1, 2, 1}}, Posting{0, 1, {1, 2, 1}}};
  PostingList sorted{Posting{0, 5, {1, 2, 1}}};
  const PostingList out = MergeDistinct(
      std::vector<PostingList>{backwards, sorted});
  PostingList expect{Posting{0, 1, {1, 2, 1}}, Posting{0, 5, {1, 2, 1}},
                     Posting{0, 9, {1, 2, 1}}};
  EXPECT_EQ(out, expect);
}

// --- StructuralJoinIterator ------------------------------------------------

/// Builds matching //a//b candidate lists over `docs` documents with
/// `per_doc` elements each plus decoy-only documents that cannot join.
struct TwigFixture {
  PostingList ancestors;
  PostingList descendants;

  explicit TwigFixture(std::mt19937_64& rng, uint32_t docs,
                       uint32_t per_doc) {
    std::uniform_int_distribution<int> decoy_d(0, 2);
    for (uint32_t d = 0; d < docs; ++d) {
      const int decoy = decoy_d(rng);
      if (decoy == 1) {  // ancestor without descendants
        ancestors.push_back(Posting{0, d, {1, 1000, 1}});
        continue;
      }
      if (decoy == 2) {  // descendants without an ancestor
        for (uint32_t i = 0; i < per_doc; ++i) {
          descendants.push_back(Posting{0, d, {10 + i, 10 + i, 3}});
        }
        continue;
      }
      ancestors.push_back(Posting{0, d, {1, 1000, 1}});
      for (uint32_t i = 0; i < per_doc; ++i) {
        descendants.push_back(Posting{0, d, {10 + i, 10 + i, 3}});
      }
    }
  }
};

std::vector<Answer> RunJoin(const TreePattern& pattern,
                            const PostingList& ancestors,
                            const PostingList& descendants, Storage storage,
                            std::mt19937_64& rng,
                            uint64_t* skipped = nullptr) {
  StructuralJoinIterator join(pattern);
  for (PostingList& chunk : RandomChunks(rng, ancestors)) {
    join.AddInput(0, MakeBlock(std::move(chunk), storage));
  }
  for (PostingList& chunk : RandomChunks(rng, descendants)) {
    join.AddInput(1, MakeBlock(std::move(chunk), storage));
  }
  join.Run();
  if (skipped != nullptr) *skipped = join.blocks_skipped_undecoded();
  return join.TakeAnswers();
}

bool AnswersEqual(const std::vector<Answer>& a, const std::vector<Answer>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].doc != b[i].doc || a[i].elements != b[i].elements) return false;
  }
  return true;
}

TEST(StructuralJoinIteratorTest, EncodedInputsMatchDecodedByteForByte) {
  const TreePattern pattern = MustParse("//a//b");
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    std::mt19937_64 rng(seed);
    TwigFixture fx(rng, 120, 3);
    std::mt19937_64 rng_a(seed * 101);
    std::mt19937_64 rng_b(seed * 101 + 1);
    std::mt19937_64 rng_c(seed * 101 + 2);
    const auto decoded =
        RunJoin(pattern, fx.ancestors, fx.descendants, Storage::kOwned, rng_a);
    const auto shared =
        RunJoin(pattern, fx.ancestors, fx.descendants, Storage::kShared, rng_b);
    const auto encoded = RunJoin(pattern, fx.ancestors, fx.descendants,
                                 Storage::kEncoded, rng_c);
    EXPECT_GT(decoded.size(), 0u);
    EXPECT_TRUE(AnswersEqual(decoded, shared));
    EXPECT_TRUE(AnswersEqual(decoded, encoded));
  }
}

TEST(StructuralJoinIteratorTest, LeapfrogSkipsOutOfRangeBlocksUndecoded) {
  // The selective stream has one document; the other stream's blocks
  // below it must be dropped by the document leapfrog without a decode.
  const TreePattern pattern = MustParse("//a//b");
  StructuralJoinIterator join(pattern);
  join.AddInput(0, PostingBlock::FromList({Posting{0, 950, {1, 1000, 1}}}));
  for (uint32_t b = 0; b < 9; ++b) {
    PostingList chunk;
    for (uint32_t d = 0; d < 100; ++d) {
      chunk.push_back(Posting{0, b * 100 + d, {10, 10, 3}});
    }
    join.AddInput(1, MakeBlock(std::move(chunk), Storage::kEncoded));
  }
  join.AddInput(1, MakeBlock({Posting{0, 950, {10, 10, 3}}},
                             Storage::kEncoded));
  join.Run();
  ASSERT_EQ(join.answers().size(), 1u);
  EXPECT_EQ(join.answers()[0].doc, (DocId{0, 950}));
  EXPECT_EQ(join.blocks_skipped_undecoded(), 9u);
}

TEST(StructuralJoinIteratorTest, EstimateIsMinInputCount) {
  const TreePattern pattern = MustParse("//a//b");
  StructuralJoinIterator join(pattern);
  std::mt19937_64 rng(2);
  join.AddInput(0, PostingBlock::FromList(RandomSortedList(rng, 40)));
  join.AddInput(1, PostingBlock::FromList(RandomSortedList(rng, 7)));
  EXPECT_EQ(join.EstimateResultsAmount(), 7u);
}

// --- EstimateTwigResults ---------------------------------------------------

TEST(EstimateTwigResultsTest, IsMinOverNodeCounts) {
  const TreePattern pattern = MustParse("//a//b[//c]");
  const std::vector<uint64_t> counts{1000, 40, 220};
  EXPECT_EQ(EstimateTwigResults(pattern, counts), 40u);
  const std::vector<uint64_t> with_zero{0, 40, 220};
  EXPECT_EQ(EstimateTwigResults(pattern, with_zero), 0u);
}

}  // namespace
}  // namespace kadop::query
