// Seeded property tests for the posting codec (src/index/codec.h): the
// group-delta + varint encoding must round-trip every sorted posting list
// byte-exactly, EncodedBytes must predict the buffer size without
// allocating, encoded size must be monotone in list length, the block
// encoder must emit independently decodable posting-aligned blocks, and
// malformed input must fail with a Corruption status instead of crashing.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <random>
#include <vector>

#include "index/codec.h"
#include "index/posting.h"

namespace kadop::index {
namespace {

/// Clustered random list in canonical order: few peers, ascending docs,
/// random (but valid, end >= start) SIDs, occasional exact duplicates.
PostingList RandomSortedList(std::mt19937_64& rng, size_t n) {
  PostingList list;
  list.reserve(n);
  std::uniform_int_distribution<uint32_t> peer_d(0, 7);
  std::uniform_int_distribution<uint32_t> doc_d(0, 500);
  std::uniform_int_distribution<uint32_t> start_d(1, 1 << 20);
  std::uniform_int_distribution<uint32_t> width_d(0, 1 << 10);
  std::uniform_int_distribution<uint16_t> level_d(0, 24);
  std::uniform_int_distribution<int> dup_d(0, 9);
  while (list.size() < n) {
    const uint32_t start = start_d(rng);
    Posting p{peer_d(rng), doc_d(rng), {start, start + width_d(rng),
                                        level_d(rng)}};
    list.push_back(p);
    if (dup_d(rng) == 0 && list.size() < n) list.push_back(p);  // duplicate
  }
  std::sort(list.begin(), list.end());
  return list;
}

void ExpectRoundtrip(const PostingList& list) {
  const std::vector<uint8_t> buf = codec::EncodePostings(list);
  EXPECT_EQ(buf.size(), codec::EncodedBytes(list));
  PostingList decoded;
  const Status st = codec::DecodePostings(buf, &decoded);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(decoded, list);
}

TEST(CodecTest, RoundtripRandomSortedLists) {
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    std::mt19937_64 rng(seed);
    for (size_t n : {0u, 1u, 2u, 17u, 256u, 1000u}) {
      ExpectRoundtrip(RandomSortedList(rng, n));
    }
  }
}

TEST(CodecTest, RoundtripAdversarialLists) {
  ExpectRoundtrip({});
  ExpectRoundtrip({Posting{0, 0, {0, 0, 0}}});
  const uint32_t u32 = std::numeric_limits<uint32_t>::max();
  const uint16_t u16 = std::numeric_limits<uint16_t>::max();
  ExpectRoundtrip({Posting{u32, u32, {u32, u32, u16}}});
  // A full run of exact duplicates (publish retries can store these).
  ExpectRoundtrip(PostingList(64, Posting{3, 9, {100, 200, 5}}));
  // Same (peer, doc) group with many SIDs, including start == end.
  PostingList group;
  for (uint32_t s = 1; s <= 50; ++s) group.push_back({1, 1, {s, s, 7}});
  ExpectRoundtrip(group);
  // Peer changes with doc resetting to a *smaller* absolute value: the
  // doc field must be encoded absolute, not as an unsigned delta.
  ExpectRoundtrip({Posting{0, 400, {5, 6, 1}}, Posting{1, 2, {5, 6, 1}}});
}

TEST(CodecTest, EncodedSizeIsMonotoneInLength) {
  std::mt19937_64 rng(42);
  const PostingList list = RandomSortedList(rng, 500);
  size_t prev = codec::EncodedBytes({});
  for (size_t n = 1; n <= list.size(); ++n) {
    PostingList prefix(list.begin(), list.begin() + static_cast<long>(n));
    const size_t bytes = codec::EncodedBytes(prefix);
    EXPECT_GT(bytes, prev - 1) << "shrank at length " << n;
    EXPECT_GE(bytes, prev) << "not monotone at length " << n;
    prev = bytes;
  }
}

TEST(CodecTest, CompressionBeatsRawOnClusteredLists) {
  std::mt19937_64 rng(7);
  const PostingList list = RandomSortedList(rng, 2000);
  EXPECT_LT(codec::EncodedBytes(list), codec::RawBytes(list));
  // The fig3 acceptance bar: at least 2x on clustered data.
  EXPECT_LE(2 * codec::EncodedBytes(list), codec::RawBytes(list));
}

TEST(CodecTest, SingleBytesMatchesOneElementStream) {
  std::mt19937_64 rng(9);
  const PostingList list = RandomSortedList(rng, 50);
  for (const Posting& p : list) {
    EXPECT_EQ(codec::EncodedSingleBytes(p), codec::EncodedBytes({p}));
  }
}

TEST(CodecTest, TruncatedInputFailsWithCorruption) {
  std::mt19937_64 rng(3);
  const PostingList list = RandomSortedList(rng, 40);
  const std::vector<uint8_t> buf = codec::EncodePostings(list);
  for (size_t len = 0; len < buf.size(); ++len) {
    PostingList out;
    const Status st = codec::DecodePostings(buf.data(), len, &out);
    EXPECT_FALSE(st.ok()) << "prefix of length " << len << " decoded";
    EXPECT_EQ(st.code(), StatusCode::kCorruption);
  }
}

TEST(CodecTest, TrailingBytesFailWithCorruption) {
  std::vector<uint8_t> buf =
      codec::EncodePostings({Posting{1, 2, {3, 4, 1}}});
  buf.push_back(0);
  PostingList out;
  const Status st = codec::DecodePostings(buf, &out);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kCorruption);
}

TEST(CodecTest, AbsurdCountFailsInsteadOfAllocating) {
  // varint(2^60): a malicious count must be rejected by the plausibility
  // check, not turned into a giant reserve.
  const std::vector<uint8_t> buf{0x80, 0x80, 0x80, 0x80, 0x80,
                                 0x80, 0x80, 0x80, 0x10};
  PostingList out;
  EXPECT_EQ(codec::DecodePostings(buf, &out).code(),
            StatusCode::kCorruption);
}

TEST(CodecTest, BlockEncoderEmitsAlignedStandaloneBlocks) {
  std::mt19937_64 rng(5);
  const PostingList list = RandomSortedList(rng, 1000);
  codec::BlockEncoder enc(128);
  PostingList reassembled;
  size_t blocks = 0;
  auto drain = [&](codec::BlockEncoder::Block block) {
    ++blocks;
    EXPECT_LE(block.postings.size(), 128u);
    EXPECT_EQ(block.bytes.size(), codec::EncodedBytes(block.postings));
    // Posting-aligned: every block decodes standalone.
    PostingList decoded;
    ASSERT_TRUE(codec::DecodePostings(block.bytes, &decoded).ok());
    EXPECT_EQ(decoded, block.postings);
    reassembled.insert(reassembled.end(), decoded.begin(), decoded.end());
  };
  for (const Posting& p : list) {
    enc.Add(p);
    if (enc.BlockFull()) drain(enc.Flush());
  }
  if (enc.pending() > 0) drain(enc.Flush());
  EXPECT_EQ(reassembled, list);
  EXPECT_EQ(blocks, (list.size() + 127) / 128);
}

TEST(CodecTest, DecodePostingsIntoMatchesHeapPath) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    std::mt19937_64 rng(seed);
    for (size_t n : {0u, 1u, 40u, 500u}) {
      const PostingList list = RandomSortedList(rng, n);
      const std::vector<uint8_t> buf = codec::EncodePostings(list);
      std::vector<Posting> span(list.size() + 3);  // slack capacity is fine
      size_t decoded = 0;
      ASSERT_TRUE(codec::DecodePostingsInto(buf.data(), buf.size(),
                                            span.data(), span.size(),
                                            &decoded)
                      .ok());
      ASSERT_EQ(decoded, list.size());
      EXPECT_TRUE(std::equal(list.begin(), list.end(), span.begin()));
    }
  }
}

TEST(CodecTest, DecodePostingsIntoRejectsEveryTruncation) {
  std::mt19937_64 rng(13);
  const PostingList list = RandomSortedList(rng, 40);
  const std::vector<uint8_t> buf = codec::EncodePostings(list);
  std::vector<Posting> span(list.size());
  for (size_t len = 0; len < buf.size(); ++len) {
    size_t decoded = 0;
    const Status st = codec::DecodePostingsInto(buf.data(), len, span.data(),
                                                span.size(), &decoded);
    EXPECT_FALSE(st.ok()) << "prefix of length " << len << " decoded";
    EXPECT_EQ(st.code(), StatusCode::kCorruption);
  }
}

TEST(CodecTest, DecodePostingsIntoRejectsInsufficientCapacity) {
  std::mt19937_64 rng(17);
  const PostingList list = RandomSortedList(rng, 20);
  const std::vector<uint8_t> buf = codec::EncodePostings(list);
  std::vector<Posting> span(list.size() - 1);
  size_t decoded = 0;
  EXPECT_EQ(codec::DecodePostingsInto(buf.data(), buf.size(), span.data(),
                                      span.size(), &decoded)
                .code(),
            StatusCode::kCorruption);
}

// ---------------------------------------------------------------------------
// Block-header framing.

/// RAII flip of the block-header switch (default off for wire compat).
struct ScopedHeaders {
  explicit ScopedHeaders(bool on) { codec::SetBlockHeadersEnabled(on); }
  ~ScopedHeaders() { codec::SetBlockHeadersEnabled(false); }
};

std::vector<codec::BlockEncoder::Block> EncodeBlocks(const PostingList& list,
                                                     size_t per_block) {
  codec::BlockEncoder enc(per_block);
  std::vector<codec::BlockEncoder::Block> blocks;
  for (const Posting& p : list) {
    enc.Add(p);
    if (enc.BlockFull()) blocks.push_back(enc.Flush());
  }
  if (enc.pending() > 0) blocks.push_back(enc.Flush());
  return blocks;
}

TEST(CodecTest, BlockHeaderRoundtripsExactBoundsAndCount) {
  ScopedHeaders on(true);
  std::mt19937_64 rng(21);
  const PostingList list = RandomSortedList(rng, 700);
  PostingList reassembled;
  for (const auto& block : EncodeBlocks(list, 128)) {
    // The in-memory block mirror carries the exact first/last posting.
    ASSERT_FALSE(block.postings.empty());
    EXPECT_EQ(block.bounds.lo, block.postings.front());
    EXPECT_EQ(block.bounds.hi, block.postings.back());
    EXPECT_EQ(block.count, block.postings.size());

    // The wire framing round-trips header and payload, cross-checked.
    codec::BlockHeader header;
    PostingList decoded;
    ASSERT_TRUE(codec::DecodeBlockWithHeader(block.bytes.data(),
                                             block.bytes.size(), &header,
                                             &decoded)
                    .ok());
    EXPECT_EQ(header.count, block.count);
    EXPECT_EQ(header.bounds.lo, block.bounds.lo);
    EXPECT_EQ(header.bounds.hi, block.bounds.hi);
    EXPECT_EQ(decoded, block.postings);

    // Header-only parse never touches the payload.
    size_t payload = 0;
    ASSERT_TRUE(codec::ParseBlockHeader(block.bytes.data(),
                                        block.bytes.size(), &header, &payload)
                    .ok());
    EXPECT_EQ(payload, codec::BlockHeaderBytes(header));
    reassembled.insert(reassembled.end(), decoded.begin(), decoded.end());
  }
  EXPECT_EQ(reassembled, list);
}

TEST(CodecTest, BlockHeaderDisabledKeepsBytesIdenticalToSeed) {
  // The wire-compatibility flag: with headers off (the default), Flush()
  // emits exactly the bare EncodePostings stream of the seeded baselines.
  std::mt19937_64 rng(23);
  const PostingList list = RandomSortedList(rng, 300);
  for (const auto& block : EncodeBlocks(list, 64)) {
    EXPECT_EQ(block.bytes, codec::EncodePostings(block.postings));
    // Bounds/count are still filled for in-process consumers.
    EXPECT_EQ(block.count, block.postings.size());
    EXPECT_EQ(block.bounds.lo, block.postings.front());
  }
}

TEST(CodecTest, BlockHeaderCorruptionIsRejected) {
  ScopedHeaders on(true);
  std::mt19937_64 rng(29);
  const PostingList list = RandomSortedList(rng, 100);
  const auto blocks = EncodeBlocks(list, 100);
  ASSERT_EQ(blocks.size(), 1u);
  const std::vector<uint8_t>& good = blocks[0].bytes;

  codec::BlockHeader header;
  PostingList out;
  size_t payload = 0;

  // Bad magic byte.
  std::vector<uint8_t> bad_magic = good;
  bad_magic[0] ^= 0xFF;
  EXPECT_EQ(codec::ParseBlockHeader(bad_magic.data(), bad_magic.size(),
                                    &header, &payload)
                .code(),
            StatusCode::kCorruption);

  // Truncation at every header prefix. The loop uses scratch outputs:
  // ParseBlockHeader resets them on entry, and `payload` is needed intact
  // for the tamper below.
  ASSERT_TRUE(
      codec::ParseBlockHeader(good.data(), good.size(), &header, &payload)
          .ok());
  for (size_t len = 0; len < payload; ++len) {
    codec::BlockHeader scratch_header;
    size_t scratch_payload = 0;
    EXPECT_EQ(codec::ParseBlockHeader(good.data(), len, &scratch_header,
                                      &scratch_payload)
                  .code(),
              StatusCode::kCorruption)
        << "header prefix of length " << len << " parsed";
  }

  // A tampered header over an intact payload: ParseBlockHeader cannot
  // tell, but the decode cross-check must refuse to mis-skip. Flip a low
  // bit of the hi-posting's level varint (the last header byte).
  std::vector<uint8_t> tampered = good;
  tampered[payload - 1] ^= 0x01;
  EXPECT_EQ(codec::DecodeBlockWithHeader(tampered.data(), tampered.size(),
                                         &header, &out)
                .code(),
            StatusCode::kCorruption);

  // A header spliced onto a truncated payload.
  std::vector<uint8_t> cut(good.begin(), good.end() - 3);
  EXPECT_EQ(
      codec::DecodeBlockWithHeader(cut.data(), cut.size(), &header, &out)
          .code(),
      StatusCode::kCorruption);
}

TEST(CodecTest, WireBytesHonorsCompressionFlag) {
  std::mt19937_64 rng(11);
  const PostingList list = RandomSortedList(rng, 300);
  EXPECT_EQ(codec::WireBytes(list, false), codec::RawBytes(list));
  EXPECT_EQ(codec::WireBytes(list, true), codec::EncodedBytes(list));
  codec::WireSizeMemo memo;
  const size_t first = codec::MemoizedWireBytes(list, true, &memo);
  EXPECT_EQ(first, codec::EncodedBytes(list));
  EXPECT_EQ(memo.bytes, first);
  EXPECT_EQ(codec::MemoizedWireBytes(list, true, &memo), first);
  // The memo revalidates on length change: growing the payload after a
  // first sizing (messages_test's handoff case) must re-size, not serve
  // the stale bytes.
  PostingList grown = list;
  grown.push_back(grown.back());
  EXPECT_EQ(codec::MemoizedWireBytes(grown, true, &memo),
            codec::EncodedBytes(grown));
}

}  // namespace
}  // namespace kadop::index
