// Seeded property tests for the posting codec (src/index/codec.h): the
// group-delta + varint encoding must round-trip every sorted posting list
// byte-exactly, EncodedBytes must predict the buffer size without
// allocating, encoded size must be monotone in list length, the block
// encoder must emit independently decodable posting-aligned blocks, and
// malformed input must fail with a Corruption status instead of crashing.

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <random>
#include <vector>

#include "index/codec.h"
#include "index/posting.h"

namespace kadop::index {
namespace {

/// Clustered random list in canonical order: few peers, ascending docs,
/// random (but valid, end >= start) SIDs, occasional exact duplicates.
PostingList RandomSortedList(std::mt19937_64& rng, size_t n) {
  PostingList list;
  list.reserve(n);
  std::uniform_int_distribution<uint32_t> peer_d(0, 7);
  std::uniform_int_distribution<uint32_t> doc_d(0, 500);
  std::uniform_int_distribution<uint32_t> start_d(1, 1 << 20);
  std::uniform_int_distribution<uint32_t> width_d(0, 1 << 10);
  std::uniform_int_distribution<uint16_t> level_d(0, 24);
  std::uniform_int_distribution<int> dup_d(0, 9);
  while (list.size() < n) {
    const uint32_t start = start_d(rng);
    Posting p{peer_d(rng), doc_d(rng), {start, start + width_d(rng),
                                        level_d(rng)}};
    list.push_back(p);
    if (dup_d(rng) == 0 && list.size() < n) list.push_back(p);  // duplicate
  }
  std::sort(list.begin(), list.end());
  return list;
}

void ExpectRoundtrip(const PostingList& list) {
  const std::vector<uint8_t> buf = codec::EncodePostings(list);
  EXPECT_EQ(buf.size(), codec::EncodedBytes(list));
  PostingList decoded;
  const Status st = codec::DecodePostings(buf, &decoded);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(decoded, list);
}

TEST(CodecTest, RoundtripRandomSortedLists) {
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    std::mt19937_64 rng(seed);
    for (size_t n : {0u, 1u, 2u, 17u, 256u, 1000u}) {
      ExpectRoundtrip(RandomSortedList(rng, n));
    }
  }
}

TEST(CodecTest, RoundtripAdversarialLists) {
  ExpectRoundtrip({});
  ExpectRoundtrip({Posting{0, 0, {0, 0, 0}}});
  const uint32_t u32 = std::numeric_limits<uint32_t>::max();
  const uint16_t u16 = std::numeric_limits<uint16_t>::max();
  ExpectRoundtrip({Posting{u32, u32, {u32, u32, u16}}});
  // A full run of exact duplicates (publish retries can store these).
  ExpectRoundtrip(PostingList(64, Posting{3, 9, {100, 200, 5}}));
  // Same (peer, doc) group with many SIDs, including start == end.
  PostingList group;
  for (uint32_t s = 1; s <= 50; ++s) group.push_back({1, 1, {s, s, 7}});
  ExpectRoundtrip(group);
  // Peer changes with doc resetting to a *smaller* absolute value: the
  // doc field must be encoded absolute, not as an unsigned delta.
  ExpectRoundtrip({Posting{0, 400, {5, 6, 1}}, Posting{1, 2, {5, 6, 1}}});
}

TEST(CodecTest, EncodedSizeIsMonotoneInLength) {
  std::mt19937_64 rng(42);
  const PostingList list = RandomSortedList(rng, 500);
  size_t prev = codec::EncodedBytes({});
  for (size_t n = 1; n <= list.size(); ++n) {
    PostingList prefix(list.begin(), list.begin() + static_cast<long>(n));
    const size_t bytes = codec::EncodedBytes(prefix);
    EXPECT_GT(bytes, prev - 1) << "shrank at length " << n;
    EXPECT_GE(bytes, prev) << "not monotone at length " << n;
    prev = bytes;
  }
}

TEST(CodecTest, CompressionBeatsRawOnClusteredLists) {
  std::mt19937_64 rng(7);
  const PostingList list = RandomSortedList(rng, 2000);
  EXPECT_LT(codec::EncodedBytes(list), codec::RawBytes(list));
  // The fig3 acceptance bar: at least 2x on clustered data.
  EXPECT_LE(2 * codec::EncodedBytes(list), codec::RawBytes(list));
}

TEST(CodecTest, SingleBytesMatchesOneElementStream) {
  std::mt19937_64 rng(9);
  const PostingList list = RandomSortedList(rng, 50);
  for (const Posting& p : list) {
    EXPECT_EQ(codec::EncodedSingleBytes(p), codec::EncodedBytes({p}));
  }
}

TEST(CodecTest, TruncatedInputFailsWithCorruption) {
  std::mt19937_64 rng(3);
  const PostingList list = RandomSortedList(rng, 40);
  const std::vector<uint8_t> buf = codec::EncodePostings(list);
  for (size_t len = 0; len < buf.size(); ++len) {
    PostingList out;
    const Status st = codec::DecodePostings(buf.data(), len, &out);
    EXPECT_FALSE(st.ok()) << "prefix of length " << len << " decoded";
    EXPECT_EQ(st.code(), StatusCode::kCorruption);
  }
}

TEST(CodecTest, TrailingBytesFailWithCorruption) {
  std::vector<uint8_t> buf =
      codec::EncodePostings({Posting{1, 2, {3, 4, 1}}});
  buf.push_back(0);
  PostingList out;
  const Status st = codec::DecodePostings(buf, &out);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kCorruption);
}

TEST(CodecTest, AbsurdCountFailsInsteadOfAllocating) {
  // varint(2^60): a malicious count must be rejected by the plausibility
  // check, not turned into a giant reserve.
  const std::vector<uint8_t> buf{0x80, 0x80, 0x80, 0x80, 0x80,
                                 0x80, 0x80, 0x80, 0x10};
  PostingList out;
  EXPECT_EQ(codec::DecodePostings(buf, &out).code(),
            StatusCode::kCorruption);
}

TEST(CodecTest, BlockEncoderEmitsAlignedStandaloneBlocks) {
  std::mt19937_64 rng(5);
  const PostingList list = RandomSortedList(rng, 1000);
  codec::BlockEncoder enc(128);
  PostingList reassembled;
  size_t blocks = 0;
  auto drain = [&](codec::BlockEncoder::Block block) {
    ++blocks;
    EXPECT_LE(block.postings.size(), 128u);
    EXPECT_EQ(block.bytes.size(), codec::EncodedBytes(block.postings));
    // Posting-aligned: every block decodes standalone.
    PostingList decoded;
    ASSERT_TRUE(codec::DecodePostings(block.bytes, &decoded).ok());
    EXPECT_EQ(decoded, block.postings);
    reassembled.insert(reassembled.end(), decoded.begin(), decoded.end());
  };
  for (const Posting& p : list) {
    enc.Add(p);
    if (enc.BlockFull()) drain(enc.Flush());
  }
  if (enc.pending() > 0) drain(enc.Flush());
  EXPECT_EQ(reassembled, list);
  EXPECT_EQ(blocks, (list.size() + 127) / 128);
}

TEST(CodecTest, WireBytesHonorsCompressionFlag) {
  std::mt19937_64 rng(11);
  const PostingList list = RandomSortedList(rng, 300);
  EXPECT_EQ(codec::WireBytes(list, false), codec::RawBytes(list));
  EXPECT_EQ(codec::WireBytes(list, true), codec::EncodedBytes(list));
  codec::WireSizeMemo memo;
  const size_t first = codec::MemoizedWireBytes(list, true, &memo);
  EXPECT_EQ(first, codec::EncodedBytes(list));
  EXPECT_EQ(memo.bytes, first);
  EXPECT_EQ(codec::MemoizedWireBytes(list, true, &memo), first);
  // The memo revalidates on length change: growing the payload after a
  // first sizing (messages_test's handoff case) must re-size, not serve
  // the stale bytes.
  PostingList grown = list;
  grown.push_back(grown.back());
  EXPECT_EQ(codec::MemoizedWireBytes(grown, true, &memo),
            codec::EncodedBytes(grown));
}

}  // namespace
}  // namespace kadop::index
