#include <gtest/gtest.h>

#include "query/local_eval.h"
#include "xml/parser.h"

namespace kadop::query {
namespace {

using index::DocId;

xml::Document MustParseDoc(const char* text) {
  auto result = xml::ParseDocument(text);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.take();
}

TreePattern MustParse(const char* expr) {
  auto result = ParsePattern(expr);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.take();
}

TEST(LocalEvalTest, SimpleMatchAndMiss) {
  xml::Document doc = MustParseDoc("<a><b><c/></b></a>");
  EXPECT_TRUE(MatchesDocument(MustParse("//a//c"), doc));
  EXPECT_TRUE(MatchesDocument(MustParse("//b/c"), doc));
  EXPECT_FALSE(MatchesDocument(MustParse("//a/c"), doc));
  EXPECT_FALSE(MatchesDocument(MustParse("//c//a"), doc));
}

TEST(LocalEvalTest, AnswerTuplesCarrySids) {
  xml::Document doc = MustParseDoc("<a><b/><b/></a>");
  auto answers = EvaluateOnDocument(MustParse("//a//b"), doc, DocId{3, 9});
  ASSERT_EQ(answers.size(), 2u);
  EXPECT_EQ(answers[0].doc, (DocId{3, 9}));
  ASSERT_EQ(answers[0].elements.size(), 2u);
  EXPECT_EQ(answers[0].elements[0], doc.root->sid());
  EXPECT_EQ(answers[0].elements[1], doc.root->children()[0]->sid());
  EXPECT_EQ(answers[1].elements[1], doc.root->children()[1]->sid());
}

TEST(LocalEvalTest, WildcardMatchesAnyElement) {
  xml::Document doc = MustParseDoc("<a><b>xml here</b><c/></a>");
  // //*[contains(.,'xml')] : wildcard with a word predicate. Subtree
  // semantics: both <a> (via its subtree) and <b> (directly) contain it.
  auto pattern = MustParse("//*[contains(.,'xml')]");
  auto answers = EvaluateOnDocument(pattern, doc, DocId{0, 0});
  ASSERT_EQ(answers.size(), 2u);
  EXPECT_EQ(answers[0].elements[0], doc.root->sid());
  EXPECT_EQ(answers[1].elements[0], doc.root->children()[0]->sid());
}

TEST(LocalEvalTest, PaperExampleQuery) {
  xml::Document doc = MustParseDoc(
      "<doc><sec>about xml databases<title>ignored</title></sec>"
      "<other><title>also</title></other></doc>");
  // //*[contains(.,'xml')]//title — title under an xml-containing element.
  // Subtree semantics: both <sec> and the root <doc> contain 'xml', so the
  // match pairs are (sec, title1), (doc, title1), (doc, title2).
  auto pattern = MustParse("//*[contains(.,'xml')]//title");
  auto answers = EvaluateOnDocument(pattern, doc, DocId{0, 0});
  ASSERT_EQ(answers.size(), 3u);
}

TEST(LocalEvalTest, ContainsHasSubtreeSemantics) {
  xml::Document doc = MustParseDoc("<a><b>deep word</b></a>");
  EXPECT_TRUE(MatchesDocument(MustParse("//b[. contains 'word']"), doc));
  // XPath string-value semantics: 'a' contains the word via its subtree.
  EXPECT_TRUE(MatchesDocument(MustParse("//a[. contains 'word']"), doc));
  EXPECT_TRUE(MatchesDocument(MustParse("//a//\"word\""), doc));
  // Direct-text containment is the explicit child-axis word step.
  EXPECT_TRUE(MatchesDocument(MustParse("//b/\"word\""), doc));
  EXPECT_FALSE(MatchesDocument(MustParse("//a/\"word\""), doc));
}

TEST(LocalEvalTest, CaseInsensitiveWordMatch) {
  xml::Document doc = MustParseDoc("<a>Ullman</a>");
  EXPECT_TRUE(MatchesDocument(MustParse("//a[. contains 'ullman']"), doc));
  EXPECT_TRUE(MatchesDocument(MustParse("//a[. contains 'ULLMAN']"), doc));
}

TEST(LocalEvalTest, RootChildAxisRequiresDocumentRoot) {
  xml::Document doc = MustParseDoc("<a><a><b/></a></a>");
  auto answers = EvaluateOnDocument(MustParse("/a"), doc, DocId{0, 0});
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(answers[0].elements[0].level, 1);
}

TEST(LocalEvalTest, EmptyDocument) {
  xml::Document doc;
  EXPECT_TRUE(EvaluateOnDocument(MustParse("//a"), doc, DocId{0, 0}).empty());
}

TEST(LocalEvalTest, BranchingWithMultiplePredicates) {
  xml::Document doc = MustParseDoc(
      "<article><title>a system story</title>"
      "<abstract>nice interface</abstract></article>");
  auto pattern = MustParse(
      "//article[contains(.//title,'system') and "
      "contains(.//abstract,'interface')]");
  EXPECT_TRUE(MatchesDocument(pattern, doc));
  xml::Document miss = MustParseDoc(
      "<article><title>a system story</title>"
      "<abstract>no match here</abstract></article>");
  EXPECT_FALSE(MatchesDocument(pattern, miss));
}

}  // namespace
}  // namespace kadop::query
