#include <gtest/gtest.h>

#include <algorithm>

#include "core/kadop.h"
#include "xml/corpus.h"

namespace kadop::core {
namespace {

TEST(KadopNetTest, ConstructionWiresAllPeers) {
  KadopOptions opt;
  opt.peers = 5;
  KadopNet net(opt);
  EXPECT_EQ(net.PeerCount(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_NE(net.peer(static_cast<sim::NodeIndex>(i)), nullptr);
  }
}

TEST(KadopNetTest, PublishStoresDocsLocallyAndIndexesGlobally) {
  xml::corpus::DblpOptions copt;
  copt.target_bytes = 40 << 10;
  auto docs = xml::corpus::GenerateDblp(copt);
  KadopOptions opt;
  opt.peers = 6;
  KadopNet net(opt);
  std::vector<const xml::Document*> ptrs;
  for (const auto& d : docs) ptrs.push_back(&d);
  const double elapsed = net.PublishAndWait(3, ptrs);
  EXPECT_GT(elapsed, 0.0);
  EXPECT_EQ(net.peer(3)->doc_store().size(), docs.size());
  // All postings landed somewhere.
  store::IoStats io = net.dht().AggregateIo();
  EXPECT_GT(io.write_bytes, 0u);
  EXPECT_GT(net.dht().AggregateStats().postings_stored, docs.size());
}

TEST(KadopNetTest, ParallelPublishFasterThanSerial) {
  xml::corpus::DblpOptions copt;
  copt.target_bytes = 160 << 10;
  copt.doc_bytes = 8 << 10;
  auto docs = xml::corpus::GenerateDblp(copt);
  std::vector<const xml::Document*> ptrs;
  for (const auto& d : docs) ptrs.push_back(&d);

  double serial, parallel;
  {
    KadopOptions opt;
    opt.peers = 10;
    KadopNet net(opt);
    serial = net.PublishAndWait(0, ptrs);
  }
  {
    KadopOptions opt;
    opt.peers = 10;
    KadopNet net(opt);
    std::vector<std::pair<sim::NodeIndex,
                          std::vector<const xml::Document*>>> batches(4);
    for (size_t i = 0; i < ptrs.size(); ++i) {
      batches[i % 4].first = static_cast<sim::NodeIndex>(i % 4);
      batches[i % 4].second.push_back(ptrs[i]);
    }
    parallel = net.ParallelPublishAndWait(batches);
  }
  EXPECT_LT(parallel, serial);
}

TEST(KadopNetTest, FullTwoPhaseQueryProducesFinalAnswers) {
  xml::corpus::DblpOptions copt;
  copt.target_bytes = 60 << 10;
  auto docs = xml::corpus::GenerateDblp(copt);
  KadopOptions opt;
  opt.peers = 8;
  KadopNet net(opt);
  std::vector<const xml::Document*> ptrs;
  for (const auto& d : docs) ptrs.push_back(&d);
  net.PublishAndWait(2, ptrs);

  query::QueryOptions qopt;
  qopt.strategy = query::QueryStrategy::kDpp;
  auto full = net.QueryDocumentsAndWait(
      5, "//article//author[. contains 'Ullman']", qopt);
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  // Phase 2 recomputes the same answers at the document peers.
  auto sorted = [](std::vector<query::Answer> v) {
    std::sort(v.begin(), v.end(),
              [](const query::Answer& a, const query::Answer& b) {
                if (a.doc != b.doc) return a.doc < b.doc;
                return a.elements < b.elements;
              });
    return v;
  };
  EXPECT_EQ(sorted(full.value().final_answers),
            sorted(full.value().index.answers));
  EXPECT_GT(full.value().total_time, 0.0);
}

TEST(KadopNetTest, DppDisabledNetworkStillAnswersQueries) {
  xml::corpus::DblpOptions copt;
  copt.target_bytes = 30 << 10;
  auto docs = xml::corpus::GenerateDblp(copt);
  KadopOptions opt;
  opt.peers = 6;
  opt.enable_dpp = false;
  KadopNet net(opt);
  std::vector<const xml::Document*> ptrs;
  for (const auto& d : docs) ptrs.push_back(&d);
  net.PublishAndWait(0, ptrs);
  query::QueryOptions qopt;
  qopt.strategy = query::QueryStrategy::kBaseline;
  auto result = net.QueryAndWait(1, "//article//author", qopt);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result.value().answers.empty());
}

TEST(KadopNetTest, TrafficMeterSeesPublishAndQueryTraffic) {
  xml::corpus::DblpOptions copt;
  copt.target_bytes = 30 << 10;
  auto docs = xml::corpus::GenerateDblp(copt);
  KadopOptions opt;
  opt.peers = 6;
  KadopNet net(opt);
  std::vector<const xml::Document*> ptrs;
  for (const auto& d : docs) ptrs.push_back(&d);
  net.PublishAndWait(0, ptrs);
  const uint64_t publish_bytes = net.network().traffic().CategoryBytes(
      sim::TrafficCategory::kPublish);
  EXPECT_GT(publish_bytes, 0u);

  net.network().ResetTraffic();
  query::QueryOptions qopt;
  ASSERT_TRUE(net.QueryAndWait(1, "//article//title", qopt).ok());
  EXPECT_GT(net.network().traffic().CategoryBytes(
                sim::TrafficCategory::kPosting),
            0u);
  EXPECT_EQ(net.network().traffic().CategoryBytes(
                sim::TrafficCategory::kPublish),
            0u);
}

TEST(KadopNetTest, MultiplePublishersQueriedFromAnywhere) {
  xml::corpus::DblpOptions copt;
  copt.target_bytes = 60 << 10;
  copt.doc_bytes = 6 << 10;
  auto docs = xml::corpus::GenerateDblp(copt);
  KadopOptions opt;
  opt.peers = 9;
  KadopNet net(opt);
  std::vector<std::pair<sim::NodeIndex, std::vector<const xml::Document*>>>
      batches(3);
  for (size_t i = 0; i < docs.size(); ++i) {
    batches[i % 3].first = static_cast<sim::NodeIndex>(2 * (i % 3));
    batches[i % 3].second.push_back(&docs[i]);
  }
  net.ParallelPublishAndWait(batches);

  query::QueryOptions qopt;
  qopt.strategy = query::QueryStrategy::kDpp;
  auto result = net.QueryAndWait(8, "//article//author", qopt);
  ASSERT_TRUE(result.ok());
  // Answers reference documents from all three publishing peers.
  std::set<uint32_t> peers;
  for (const auto& d : result.value().matched_docs) peers.insert(d.peer);
  EXPECT_EQ(peers.size(), 3u);
}

}  // namespace
}  // namespace kadop::core
