// Direct unit tests for the ReducerService state machine, including the
// degenerate deployments that stress it: a single peer owning every term
// (all roles on one node) and filters racing ahead of ReduceStart.

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>

#include "core/kadop.h"
#include "xml/corpus.h"

namespace kadop::query {
namespace {

std::vector<Answer> Sorted(std::vector<Answer> v) {
  std::sort(v.begin(), v.end(), [](const Answer& a, const Answer& b) {
    if (a.doc != b.doc) return a.doc < b.doc;
    return a.elements < b.elements;
  });
  return v;
}

class ReducerServiceTest : public ::testing::TestWithParam<size_t> {
 protected:
  void SetUp() override {
    xml::corpus::DblpOptions copt;
    copt.target_bytes = 60 << 10;
    docs_ = xml::corpus::GenerateDblp(copt);
    core::KadopOptions opt;
    opt.peers = GetParam();
    net_ = std::make_unique<core::KadopNet>(opt);
    std::vector<const xml::Document*> ptrs;
    for (const auto& d : docs_) ptrs.push_back(&d);
    net_->PublishAndWait(0, ptrs);
  }

  std::vector<Answer> Run(const char* expr, QueryStrategy strategy) {
    QueryOptions qopt;
    qopt.strategy = strategy;
    auto result = net_->QueryAndWait(0, expr, qopt);
    EXPECT_TRUE(result.ok());
    EXPECT_TRUE(result.value().metrics.complete);
    return result.value().answers;
  }

  std::vector<xml::Document> docs_;
  std::unique_ptr<core::KadopNet> net_;
};

TEST_P(ReducerServiceTest, AllStrategiesAgreeOnEveryNetworkSize) {
  const char* exprs[] = {
      "//article//author[. contains 'Ullman']",
      "//article[//journal]//year",
      "//article[//title][//pages]//author",
  };
  for (const char* expr : exprs) {
    auto baseline = Sorted(Run(expr, QueryStrategy::kBaseline));
    for (QueryStrategy strategy :
         {QueryStrategy::kAbReducer, QueryStrategy::kDbReducer,
          QueryStrategy::kBloomReducer, QueryStrategy::kSubQueryReducer}) {
      EXPECT_EQ(Sorted(Run(expr, strategy)), baseline)
          << expr << " with " << QueryStrategyName(strategy)
          << " on " << GetParam() << " peers";
    }
  }
}

// A single peer hosts every role (every term owner, the query peer, every
// filter hop); two peers force self/other mixes; larger sizes spread roles.
INSTANTIATE_TEST_SUITE_P(NetworkSizes, ReducerServiceTest,
                         ::testing::Values(1, 2, 3, 8));

TEST(ReducerStatsTest, ServiceCountsRolesAndFilters) {
  xml::corpus::DblpOptions copt;
  copt.target_bytes = 40 << 10;
  auto docs = xml::corpus::GenerateDblp(copt);
  core::KadopOptions opt;
  opt.peers = 6;
  core::KadopNet net(opt);
  std::vector<const xml::Document*> ptrs;
  for (const auto& d : docs) ptrs.push_back(&d);
  net.PublishAndWait(0, ptrs);

  QueryOptions qopt;
  qopt.strategy = QueryStrategy::kBloomReducer;
  auto result =
      net.QueryAndWait(1, "//article//author[. contains 'Ullman']", qopt);
  ASSERT_TRUE(result.ok());

  ReducerStats stats;
  for (size_t i = 0; i < net.PeerCount(); ++i) {
    stats.Add(net.peer(static_cast<sim::NodeIndex>(i))->reducer().stats());
  }
  EXPECT_EQ(stats.roles_started, 3u);  // one per pattern node
  EXPECT_GE(stats.abf_built, 1u);
  EXPECT_GE(stats.dbf_built, 1u);
  EXPECT_GT(stats.postings_filtered_out, 0u);
}

TEST(ReducerRepeatTest, SameQueryTwiceUsesFreshState) {
  xml::corpus::DblpOptions copt;
  copt.target_bytes = 40 << 10;
  auto docs = xml::corpus::GenerateDblp(copt);
  core::KadopOptions opt;
  opt.peers = 5;
  core::KadopNet net(opt);
  std::vector<const xml::Document*> ptrs;
  for (const auto& d : docs) ptrs.push_back(&d);
  net.PublishAndWait(0, ptrs);

  QueryOptions qopt;
  qopt.strategy = QueryStrategy::kDbReducer;
  const char* expr = "//article//author[. contains 'Ullman']";
  auto first = net.QueryAndWait(1, expr, qopt);
  auto second = net.QueryAndWait(2, expr, qopt);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(Sorted(first.value().answers), Sorted(second.value().answers));
}

TEST(ReducerRepeatTest, SameTermTwiceInOnePattern) {
  // //author//author: both pattern nodes resolve to the same owner, which
  // must keep two independent per-node states for the same query.
  xml::corpus::DblpOptions copt;
  copt.target_bytes = 30 << 10;
  auto docs = xml::corpus::GenerateDblp(copt);
  core::KadopOptions opt;
  opt.peers = 4;
  core::KadopNet net(opt);
  std::vector<const xml::Document*> ptrs;
  for (const auto& d : docs) ptrs.push_back(&d);
  net.PublishAndWait(0, ptrs);

  QueryOptions db;
  db.strategy = QueryStrategy::kDbReducer;
  auto reduced = net.QueryAndWait(1, "//dblp//article//author", db);
  QueryOptions base;
  auto baseline = net.QueryAndWait(1, "//dblp//article//author", base);
  ASSERT_TRUE(reduced.ok());
  ASSERT_TRUE(baseline.ok());
  EXPECT_EQ(Sorted(reduced.value().answers),
            Sorted(baseline.value().answers));
}

}  // namespace
}  // namespace kadop::query
