// Materialized tree-pattern views (docs/views.md): view-served answers must
// be byte-identical to kDpp / kDppJoin ground truth — after the initial
// materialization, after incremental maintenance under appends and
// unpublishes, and after any fallback — while a view hit ships strictly
// fewer posting bytes to the query peer. The freshness guard must
// disqualify an extent the moment a base list changes behind its back.

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/kadop.h"
#include "index/publisher.h"
#include "obs/metrics.h"
#include "query/view.h"
#include "query/view_manager.h"
#include "xml/corpus.h"

namespace kadop::query {
namespace {

using core::KadopNet;
using core::KadopOptions;

uint64_t Counter(const char* name) {
  const auto snap = obs::MetricRegistry::Default().Snapshot();
  const auto it = snap.counters.find(name);
  return it == snap.counters.end() ? 0 : it->second;
}

class ViewTest : public ::testing::Test {
 protected:
  void SetUp() override {
    xml::corpus::DblpOptions copt;
    copt.target_bytes = 120 << 10;
    copt.doc_bytes = 8 << 10;
    docs_ = xml::corpus::GenerateDblp(copt);

    KadopOptions opt;
    opt.peers = 12;
    opt.views.enabled = true;
    net_ = std::make_unique<KadopNet>(opt);
    net_->RegisterDocuments(docs_);
    std::vector<const xml::Document*> ptrs;
    for (const auto& d : docs_) ptrs.push_back(&d);
    net_->PublishAndWait(2, ptrs);
  }

  QueryResult RunQuery(const char* expr, QueryStrategy strategy) {
    QueryOptions options;
    options.strategy = strategy;
    options.dpp_join_available = true;
    auto result = net_->QueryAndWait(1, expr, options);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.take();
  }

  /// Publishes a second same-shape batch through the network's (hooked)
  /// publish path, so view deltas ride along.
  void PublishMore(uint64_t seed) {
    xml::corpus::DblpOptions copt;
    copt.seed = seed;
    copt.target_bytes = 40 << 10;
    copt.doc_bytes = 8 << 10;
    more_.push_back(xml::corpus::GenerateDblp(copt));
    std::vector<const xml::Document*> ptrs;
    for (const auto& d : more_.back()) ptrs.push_back(&d);
    net_->PublishAndWait(3, ptrs);
  }

  std::vector<xml::Document> docs_;
  std::vector<std::vector<xml::Document>> more_;
  std::unique_ptr<KadopNet> net_;
};

TEST_F(ViewTest, ExactRewriteServesByteIdenticalAnswers) {
  auto name = net_->CreateViewAndWait("//article//author");
  ASSERT_TRUE(name.ok()) << name.status().ToString();

  const QueryResult dpp = RunQuery("//article//author", QueryStrategy::kDpp);
  const QueryResult djoin =
      RunQuery("//article//author", QueryStrategy::kDppJoin);
  const QueryResult view = RunQuery("//article//author", QueryStrategy::kView);

  ASSERT_FALSE(dpp.answers.empty());
  EXPECT_TRUE(view.metrics.view_hit);
  EXPECT_TRUE(view.metrics.view_exact);
  EXPECT_FALSE(view.metrics.view_fallback);
  EXPECT_TRUE(view.metrics.complete);
  EXPECT_FALSE(view.metrics.degraded);
  EXPECT_EQ(view.metrics.effective_strategy, QueryStrategy::kView);
  // Not just set equality: document-order output, element for element.
  EXPECT_EQ(view.answers, dpp.answers);
  EXPECT_EQ(view.matched_docs, dpp.matched_docs);
  EXPECT_EQ(view.answers, djoin.answers);
}

TEST_F(ViewTest, ViewHitShipsFewerPostingBytes) {
  ASSERT_TRUE(net_->CreateViewAndWait("//article//author").ok());
  const QueryResult dpp = RunQuery("//article//author", QueryStrategy::kDpp);
  const QueryResult view = RunQuery("//article//author", QueryStrategy::kView);
  ASSERT_TRUE(view.metrics.view_hit);

  // The extent's deduplicated columns are strict subsets of the base term
  // lists (inproceedings authors never enter the view), so a hit moves
  // strictly fewer posting bytes to the query peer than a kDpp fetch.
  EXPECT_GT(view.metrics.posting_wire_bytes, 0u);
  EXPECT_LT(view.metrics.posting_wire_bytes, dpp.metrics.posting_wire_bytes);
  EXPECT_GT(Counter("view.hits"), 0u);
  EXPECT_GT(Counter("view.bytes_served"), 0u);
}

TEST_F(ViewTest, ContainmentRewriteFiltersResidualPredicates) {
  ASSERT_TRUE(net_->CreateViewAndWait("//article//author").ok());

  // //article[//journal]//author strictly contains the view pattern; the
  // journal branch stays residual and filters through the iterator tree.
  const char* expr = "//article[//journal]//author";
  const QueryResult dpp = RunQuery(expr, QueryStrategy::kDpp);
  const QueryResult view = RunQuery(expr, QueryStrategy::kView);

  ASSERT_FALSE(dpp.answers.empty());
  EXPECT_TRUE(view.metrics.view_hit);
  EXPECT_FALSE(view.metrics.view_exact);
  EXPECT_EQ(view.answers, dpp.answers);
  EXPECT_EQ(view.matched_docs, dpp.matched_docs);
  // The residual (journal) list was fetched alongside the extent columns.
  EXPECT_GT(view.metrics.posting_wire_bytes, 0u);
}

TEST_F(ViewTest, IncrementalMaintenanceTracksAppends) {
  ASSERT_TRUE(net_->CreateViewAndWait("//article//author").ok());
  const uint64_t tuples_before = Counter("view.maintenance_tuples");
  const uint64_t answers_before =
      net_->views().Find("v1") ? net_->views().Find("v1")->answers : 0;

  PublishMore(/*seed=*/77);

  // Delta maintenance ran inside the publish (no re-materialization).
  EXPECT_GT(Counter("view.maintenance_tuples"), tuples_before);
  const ViewCatalog::Entry* entry = net_->views().Find("v1");
  ASSERT_NE(entry, nullptr);
  EXPECT_GT(entry->answers, answers_before);

  // Before any resync the extent must never serve pre-append answers:
  // either it already caught up (acks resynced it) and serves fresh, or
  // the guard trips and the query falls back — both byte-identical to
  // fresh ground truth.
  const QueryResult early = RunQuery("//article//author", QueryStrategy::kView);
  const QueryResult truth = RunQuery("//article//author", QueryStrategy::kDpp);
  EXPECT_EQ(early.answers, truth.answers);

  net_->SyncViews();
  const QueryResult view = RunQuery("//article//author", QueryStrategy::kView);
  EXPECT_TRUE(view.metrics.view_hit);
  EXPECT_EQ(view.answers, truth.answers);
  EXPECT_EQ(view.matched_docs, truth.matched_docs);
}

TEST_F(ViewTest, IncrementalMaintenanceTracksUnpublish) {
  ASSERT_TRUE(net_->CreateViewAndWait("//article//author").ok());
  ASSERT_TRUE(net_->UnpublishAndWait(2, /*seq=*/0));
  net_->SyncViews();

  const QueryResult truth = RunQuery("//article//author", QueryStrategy::kDpp);
  const QueryResult view = RunQuery("//article//author", QueryStrategy::kView);
  EXPECT_TRUE(view.metrics.view_hit) << "extent should be in sync again";
  EXPECT_EQ(view.answers, truth.answers);
  EXPECT_EQ(view.matched_docs, truth.matched_docs);
  for (const auto& doc : view.matched_docs) {
    EXPECT_FALSE(doc.peer == 2 && doc.doc == 0)
        << "withdrawn document still served from the extent";
  }
}

TEST_F(ViewTest, UnhookedAppendDisqualifiesExtent) {
  ASSERT_TRUE(net_->CreateViewAndWait("//article//author").ok());
  ASSERT_TRUE(RunQuery("//article//author", QueryStrategy::kView)
                  .metrics.view_hit);

  // An append that bypasses delta maintenance (a raw Publisher without the
  // derive hook — modeling an unhooked or version-skewed publisher).
  xml::corpus::DblpOptions copt;
  copt.seed = 99;
  copt.target_bytes = 16 << 10;
  copt.doc_bytes = 8 << 10;
  const std::vector<xml::Document> extra = xml::corpus::GenerateDblp(copt);
  index::Publisher raw(net_->peer(4)->dht_peer(), &net_->peer(4)->doc_store(),
                       index::PublishOptions{});
  std::vector<const xml::Document*> ptrs;
  for (const auto& d : extra) ptrs.push_back(&d);
  raw.Publish(ptrs, [] {});
  net_->RunToIdle();

  // The base-term version oracle trips: kAuto plans past the view...
  QueryOptions auto_options;
  auto_options.strategy = QueryStrategy::kAuto;
  auto_options.dpp_join_available = true;
  auto auto_result = net_->QueryAndWait(1, "//article//author", auto_options);
  ASSERT_TRUE(auto_result.ok());
  EXPECT_NE(auto_result.value().metrics.effective_strategy,
            QueryStrategy::kView);
  EXPECT_FALSE(auto_result.value().metrics.degraded);

  // ...and an explicit kView falls back with degraded accounting, still
  // byte-identical to fresh ground truth.
  const QueryResult view = RunQuery("//article//author", QueryStrategy::kView);
  const QueryResult truth = RunQuery("//article//author", QueryStrategy::kDpp);
  EXPECT_FALSE(view.metrics.view_hit);
  EXPECT_TRUE(view.metrics.view_fallback);
  EXPECT_TRUE(view.metrics.degraded);
  EXPECT_EQ(view.answers, truth.answers);
  EXPECT_GT(Counter("view.fallbacks"), 0u);

  // A resync against the (now quiescent) network makes it servable again.
  net_->SyncViews();
  EXPECT_TRUE(RunQuery("//article//author", QueryStrategy::kView)
                  .metrics.view_hit);
}

TEST_F(ViewTest, CatalogPublishedUnderWellKnownKey) {
  auto name = net_->CreateViewAndWait("//article//author", "hot_authors");
  ASSERT_TRUE(name.ok());
  EXPECT_EQ(name.value(), "hot_authors");

  std::optional<std::string> blob;
  net_->peer(5)->dht_peer()->GetBlob(
      "view:catalog",
      [&blob](std::optional<std::string> b) { blob = std::move(b); });
  net_->RunToIdle();
  ASSERT_TRUE(blob.has_value());
  EXPECT_NE(blob->find("hot_authors"), std::string::npos);
  EXPECT_NE(blob->find("ready=1"), std::string::npos);
}

TEST_F(ViewTest, RegistrationRejectsDuplicatesAndWildcards) {
  ASSERT_TRUE(net_->CreateViewAndWait("//article//author", "a").ok());
  // Same pattern under a different name: one extent per pattern.
  EXPECT_FALSE(net_->CreateViewAndWait("//article//author", "b").ok());
  // Name collision.
  EXPECT_FALSE(net_->CreateViewAndWait("//article//title", "a").ok());
  // Views never cover wildcard patterns.
  EXPECT_FALSE(net_->CreateViewAndWait("//article//*", "w").ok());
  // Dropping frees both the name and the pattern for re-creation under a
  // fresh extent generation.
  EXPECT_TRUE(net_->DropView("a"));
  EXPECT_FALSE(net_->DropView("a"));
  auto again = net_->CreateViewAndWait("//article//author", "a");
  ASSERT_TRUE(again.ok());
  const QueryResult view = RunQuery("//article//author", QueryStrategy::kView);
  EXPECT_TRUE(view.metrics.view_hit);
  EXPECT_EQ(view.answers, RunQuery("//article//author",
                                   QueryStrategy::kDpp).answers);
}

TEST_F(ViewTest, DisabledCatalogNeverRewrites) {
  ASSERT_TRUE(net_->CreateViewAndWait("//article//author").ok());
  net_->views().SetEnabled(false);
  const QueryResult view = RunQuery("//article//author", QueryStrategy::kView);
  // Explicit kView finds no servable rewrite and falls back.
  EXPECT_FALSE(view.metrics.view_hit);
  EXPECT_TRUE(view.metrics.view_fallback);
  EXPECT_EQ(view.answers, RunQuery("//article//author",
                                   QueryStrategy::kDpp).answers);
}

// -- Advisor ----------------------------------------------------------------

class ViewAdvisorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    xml::corpus::DblpOptions copt;
    copt.target_bytes = 60 << 10;
    copt.doc_bytes = 8 << 10;
    docs_ = xml::corpus::GenerateDblp(copt);

    KadopOptions opt;
    opt.peers = 8;
    opt.views.enabled = true;
    opt.views.advisor = true;
    opt.views.window_s = 1.0;
    opt.views.hot_queries_per_window = 2;
    opt.views.hot_windows = 2;
    opt.views.cool_queries_per_window = 0;
    opt.views.cool_windows = 2;
    opt.views.cooldown_windows = 2;
    net_ = std::make_unique<KadopNet>(opt);
    std::vector<const xml::Document*> ptrs;
    for (const auto& d : docs_) ptrs.push_back(&d);
    net_->PublishAndWait(1, ptrs);
  }

  void QueryBatch(const char* expr, int n) {
    QueryOptions options;
    options.strategy = QueryStrategy::kAuto;
    options.dpp_join_available = true;
    for (int i = 0; i < n; ++i) {
      auto r = net_->QueryAndWait(0, expr, options);
      ASSERT_TRUE(r.ok());
    }
  }

  void AdvanceWindow() {
    net_->scheduler().After(1.0, [] {});
    net_->RunToIdle();
  }

  std::vector<xml::Document> docs_;
  std::unique_ptr<KadopNet> net_;
};

TEST_F(ViewAdvisorTest, PromotesHotPatternThenDemotesWhenCold) {
  const char* hot = "//article//author";
  const uint64_t promotions_before = Counter("view.promotions");

  // Two consecutive hot windows promote; the third batch's first query
  // closes the second window and fires the materialization.
  for (int w = 0; w < 3; ++w) {
    QueryBatch(hot, 3);
    AdvanceWindow();
  }
  EXPECT_GT(Counter("view.promotions"), promotions_before);
  ASSERT_EQ(net_->views().entries().size(), 1u);
  const auto& [name, entry] = *net_->views().entries().begin();
  EXPECT_TRUE(entry.auto_created);
  EXPECT_EQ(entry.def.PatternKey(), hot);
  EXPECT_TRUE(entry.ready);

  // Once synced, the hot pattern is served from its auto-view. (Without
  // the block-join service; for an unselective pattern like this one
  // kDppJoin's result-tuple shipping can legitimately price below the
  // whole extent — the planner choosing it then is correct, not a miss.)
  net_->SyncViews();
  QueryOptions options;
  options.strategy = QueryStrategy::kAuto;
  auto hit = net_->QueryAndWait(0, hot, options);
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit.value().metrics.view_hit)
      << "effective="
      << QueryStrategyName(hit.value().metrics.effective_strategy);
  QueryOptions dpp;
  dpp.strategy = QueryStrategy::kDpp;
  auto truth = net_->QueryAndWait(0, hot, dpp);
  ASSERT_TRUE(truth.ok());
  EXPECT_EQ(hit.value().answers, truth.value().answers);

  // Cold windows demote it again (other traffic keeps the clock ticking).
  const uint64_t demotions_before = Counter("view.demotions");
  for (int w = 0; w < 5; ++w) {
    QueryBatch("//inproceedings//booktitle", 1);
    AdvanceWindow();
  }
  EXPECT_GT(Counter("view.demotions"), demotions_before);
  EXPECT_TRUE(net_->views().entries().empty());
}

TEST_F(ViewAdvisorTest, ColdTrafficNeverPromotes) {
  // Below the per-window threshold: no streak, no views.
  for (int w = 0; w < 4; ++w) {
    QueryBatch("//article//title", 1);
    AdvanceWindow();
  }
  EXPECT_TRUE(net_->views().entries().empty());
}

}  // namespace
}  // namespace kadop::query
