#include <gtest/gtest.h>

#include <set>

#include "index/terms.h"
#include "xml/corpus.h"
#include "xml/parser.h"

namespace kadop::xml::corpus {
namespace {

TEST(WordBagTest, PlantedWordsAppear) {
  Rng rng(1);
  WordBag bag(100, 1.0, {{"system", 3}, {"xml", 10}});
  std::set<std::string> seen;
  for (int i = 0; i < 5000; ++i) seen.insert(bag.Sample(rng));
  EXPECT_TRUE(seen.count("system"));
  EXPECT_TRUE(seen.count("xml"));
}

TEST(WordBagTest, SentenceHasRequestedLength) {
  Rng rng(2);
  WordBag bag(50, 1.0);
  std::string out;
  bag.SampleSentence(rng, 5, out);
  int spaces = 0;
  for (char c : out) spaces += (c == ' ');
  EXPECT_EQ(spaces, 4);
}

TEST(DblpTest, GeneratesRequestedVolumeInSmallDocs) {
  DblpOptions opt;
  opt.target_bytes = 200 << 10;
  opt.doc_bytes = 20 << 10;
  auto docs = GenerateDblp(opt);
  CorpusStats stats = ComputeStats(docs);
  EXPECT_GE(stats.serialized_bytes, opt.target_bytes);
  EXPECT_GE(stats.documents, 8u);
  // Each doc is roughly 20 KB.
  for (const auto& doc : docs) {
    const size_t bytes = SerializeDocument(doc).size();
    EXPECT_GT(bytes, 10u << 10);
    EXPECT_LT(bytes, 40u << 10);
  }
}

TEST(DblpTest, DeterministicForSeed) {
  DblpOptions opt;
  opt.target_bytes = 50 << 10;
  auto a = GenerateDblp(opt);
  auto b = GenerateDblp(opt);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(SerializeDocument(a[0]), SerializeDocument(b[0]));
}

TEST(DblpTest, HasSkewedAuthorPostingsAndUllman) {
  DblpOptions opt;
  opt.target_bytes = 300 << 10;
  auto docs = GenerateDblp(opt);
  size_t authors = 0, titles = 0, ullman = 0, entries = 0;
  for (size_t d = 0; d < docs.size(); ++d) {
    std::vector<index::TermPosting> postings;
    index::ExtractTerms(docs[d], 0, static_cast<uint32_t>(d), {}, postings);
    for (const auto& tp : postings) {
      if (tp.key == "l:author") ++authors;
      if (tp.key == "l:title") ++titles;
      if (tp.key == "w:ullman") ++ullman;
      if (tp.key == "l:article" || tp.key == "l:inproceedings" ||
          tp.key == "l:incollection") {
        ++entries;
      }
    }
  }
  EXPECT_GT(authors, titles);           // author dominates
  EXPECT_EQ(titles, entries);           // one title per entry
  EXPECT_GT(ullman, 0u);                // planted author occurs
  EXPECT_LT(ullman * 20, authors);      // ... but is not dominant
}

TEST(DblpTest, DocumentsParseBackCleanly) {
  DblpOptions opt;
  opt.target_bytes = 60 << 10;
  auto docs = GenerateDblp(opt);
  for (const auto& doc : docs) {
    auto parsed = ParseDocument(SerializeDocument(doc), doc.uri);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_EQ(parsed.value().CountElements(), doc.CountElements());
  }
}

class ShapeCorpusTest
    : public ::testing::TestWithParam<
          std::vector<Document> (*)(const SimpleCorpusOptions&)> {};

TEST_P(ShapeCorpusTest, HitsElementTargetAndAnnotates) {
  SimpleCorpusOptions opt;
  opt.target_elements = 5000;
  auto docs = GetParam()(opt);
  CorpusStats stats = ComputeStats(docs);
  EXPECT_GE(stats.elements, opt.target_elements);
  EXPECT_LT(stats.elements, opt.target_elements * 2);
  EXPECT_GT(stats.avg_depth, 1.5);
  EXPECT_GT(stats.max_tag_number, 0u);
  for (const auto& doc : docs) {
    ASSERT_NE(doc.root, nullptr);
    EXPECT_EQ(doc.root->sid().start, 1u);
    EXPECT_EQ(doc.root->sid().end, 2 * doc.CountElements());
  }
}

INSTANTIATE_TEST_SUITE_P(Generators, ShapeCorpusTest,
                         ::testing::Values(&GenerateImdb, &GenerateXmark,
                                           &GenerateSwissprot,
                                           &GenerateNasa));

TEST(InexTest, TwoDocumentsPerPublicationWithIncludes) {
  InexOptions opt;
  opt.publications = 50;
  opt.planted_matches = 5;
  auto docs = GenerateInex(opt);
  ASSERT_EQ(docs.size(), 100u);
  // First half: main documents with one entity include each.
  for (size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(docs[i].root->label(), "article");
    ASSERT_EQ(docs[i].entities.size(), 1u);
    const std::string& target = docs[i].entities.begin()->second;
    EXPECT_EQ(target, "inex/abs" + std::to_string(i) + ".xml");
    EXPECT_EQ(docs[50 + i].uri, target);
    EXPECT_EQ(docs[50 + i].root->label(), "abstractBody");
  }
}

TEST(InexTest, PlantedMatchesAreExact) {
  InexOptions opt;
  opt.publications = 200;
  opt.planted_matches = 10;
  auto docs = GenerateInex(opt);
  size_t matches = 0;
  for (size_t i = 0; i < opt.publications; ++i) {
    std::string title_text = SerializeDocument(docs[i]);
    std::string abs_text = SerializeDocument(docs[opt.publications + i]);
    const bool title_hit = title_text.find("system") != std::string::npos;
    const bool abs_hit = abs_text.find("interface") != std::string::npos;
    if (title_hit && abs_hit) ++matches;
  }
  // All planted pairs match; random co-occurrence may add a few.
  EXPECT_GE(matches, opt.planted_matches);
  EXPECT_LE(matches, opt.planted_matches + 20);
}

}  // namespace
}  // namespace kadop::xml::corpus
