// The whole system is deterministic given its seeds: two identical runs
// produce bit-identical virtual times, traffic counters and answers. This
// is what makes the experiment harnesses reproducible.

#include <gtest/gtest.h>

#include "core/kadop.h"
#include "xml/corpus.h"
#include "xml/parser.h"

namespace kadop {
namespace {

struct RunOutcome {
  double publish_time = 0;
  double query_time = 0;
  uint64_t traffic_bytes = 0;
  uint64_t traffic_messages = 0;
  size_t answers = 0;
  uint64_t postings_stored = 0;

  friend bool operator==(const RunOutcome&, const RunOutcome&) = default;
};

RunOutcome RunScenario() {
  xml::corpus::DblpOptions copt;
  copt.target_bytes = 80 << 10;
  auto docs = xml::corpus::GenerateDblp(copt);

  core::KadopOptions opt;
  opt.peers = 16;
  opt.dpp.max_block_postings = 256;
  core::KadopNet net(opt);
  std::vector<const xml::Document*> ptrs;
  for (const auto& d : docs) ptrs.push_back(&d);

  RunOutcome out;
  out.publish_time = net.PublishAndWait(3, ptrs);
  query::QueryOptions qopt;
  qopt.strategy = query::QueryStrategy::kDpp;
  auto result =
      net.QueryAndWait(7, "//article//author[. contains 'Ullman']", qopt);
  EXPECT_TRUE(result.ok());
  out.query_time = result.value().metrics.ResponseTime();
  out.answers = result.value().answers.size();
  out.traffic_bytes = net.network().traffic().bytes;
  out.traffic_messages = net.network().traffic().messages;
  out.postings_stored = net.dht().AggregateStats().postings_stored;
  return out;
}

TEST(DeterminismTest, IdenticalRunsProduceIdenticalOutcomes) {
  const RunOutcome a = RunScenario();
  const RunOutcome b = RunScenario();
  EXPECT_EQ(a, b);
  EXPECT_GT(a.publish_time, 0.0);
  EXPECT_GT(a.traffic_bytes, 0u);
}

TEST(DeterminismTest, CorporaAreDeterministic) {
  for (int round = 0; round < 2; ++round) {
    xml::corpus::SimpleCorpusOptions opt;
    opt.target_elements = 2000;
    auto a = xml::corpus::GenerateXmark(opt);
    auto b = xml::corpus::GenerateXmark(opt);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(xml::SerializeDocument(a[i]), xml::SerializeDocument(b[i]));
    }
  }
}

TEST(DeterminismTest, SeedChangesTheCorpusButNotItsShape) {
  xml::corpus::DblpOptions a_opt;
  a_opt.target_bytes = 40 << 10;
  xml::corpus::DblpOptions b_opt = a_opt;
  b_opt.seed = 777;
  auto a = xml::corpus::GenerateDblp(a_opt);
  auto b = xml::corpus::GenerateDblp(b_opt);
  EXPECT_NE(xml::SerializeDocument(a[0]), xml::SerializeDocument(b[0]));
  auto sa = xml::corpus::ComputeStats(a);
  auto sb = xml::corpus::ComputeStats(b);
  EXPECT_NEAR(static_cast<double>(sa.elements),
              static_cast<double>(sb.elements), sa.elements * 0.2);
}

}  // namespace
}  // namespace kadop
