// The whole system is deterministic given its seeds: two identical runs
// produce bit-identical virtual times, traffic counters and answers. This
// is what makes the experiment harnesses reproducible.

#include <gtest/gtest.h>

#include "core/kadop.h"
#include "index/codec.h"
#include "obs/metrics.h"
#include "sim/fault_plan.h"
#include "xml/corpus.h"
#include "xml/parser.h"

namespace kadop {
namespace {

struct RunOutcome {
  double publish_time = 0;
  double query_time = 0;
  uint64_t traffic_bytes = 0;
  uint64_t traffic_messages = 0;
  size_t answers = 0;
  uint64_t postings_stored = 0;

  friend bool operator==(const RunOutcome&, const RunOutcome&) = default;
};

RunOutcome RunScenario() {
  xml::corpus::DblpOptions copt;
  copt.target_bytes = 80 << 10;
  auto docs = xml::corpus::GenerateDblp(copt);

  core::KadopOptions opt;
  opt.peers = 16;
  opt.dpp.max_block_postings = 256;
  core::KadopNet net(opt);
  std::vector<const xml::Document*> ptrs;
  for (const auto& d : docs) ptrs.push_back(&d);

  RunOutcome out;
  out.publish_time = net.PublishAndWait(3, ptrs);
  query::QueryOptions qopt;
  qopt.strategy = query::QueryStrategy::kDpp;
  auto result =
      net.QueryAndWait(7, "//article//author[. contains 'Ullman']", qopt);
  EXPECT_TRUE(result.ok());
  out.query_time = result.value().metrics.ResponseTime();
  out.answers = result.value().answers.size();
  out.traffic_bytes = net.network().traffic().bytes;
  out.traffic_messages = net.network().traffic().messages;
  out.postings_stored = net.dht().AggregateStats().postings_stored;
  return out;
}

TEST(DeterminismTest, IdenticalRunsProduceIdenticalOutcomes) {
  const RunOutcome a = RunScenario();
  const RunOutcome b = RunScenario();
  EXPECT_EQ(a, b);
  EXPECT_GT(a.publish_time, 0.0);
  EXPECT_GT(a.traffic_bytes, 0u);
}

// The strongest observable we have: the FULL metric registry. Two
// same-seed runs with compression, the posting cache and seeded faults
// all enabled must leave every counter, gauge and histogram bucket
// byte-identical — any wall-clock, RNG or hash-order escape anywhere in
// the stack shows up here as a diff.
obs::MetricsSnapshot RunScenarioFullSnapshot() {
  obs::MetricRegistry::Default().Reset();

  xml::corpus::DblpOptions copt;
  copt.target_bytes = 60 << 10;
  auto docs = xml::corpus::GenerateDblp(copt);

  core::KadopOptions opt;
  opt.peers = 12;
  opt.dpp.max_block_postings = 128;
  core::KadopNet net(opt);

  std::vector<const xml::Document*> ptrs;
  for (const auto& d : docs) ptrs.push_back(&d);
  (void)net.PublishAndWait(2, ptrs);

  // Faults go live after publish (like the chaos suite): queries retry
  // through drops, and the retry/timeout schedule is itself seeded.
  sim::FaultOptions faults;
  faults.seed = 4242;
  faults.drop_p = 0.02;
  faults.dup_p = 0.01;
  faults.jitter_mean_s = 0.005;
  net.EnableFaults(faults);

  query::QueryOptions qopt;
  qopt.strategy = query::QueryStrategy::kDpp;
  qopt.cache_postings = true;
  qopt.fetch_retry.timeout_s = 0.5;
  qopt.fetch_retry.max_retries = 3;
  // Same query twice: the second pass exercises the cache hit path.
  for (int pass = 0; pass < 2; ++pass) {
    auto result =
        net.QueryAndWait(5, "//article//author[. contains 'Ullman']", qopt);
    EXPECT_TRUE(result.ok());
  }
  return obs::MetricRegistry::Default().Snapshot();
}

TEST(DeterminismTest, FullMetricSnapshotIsSeedDeterministic) {
  const bool compression_was = index::codec::CompressionEnabled();
  index::codec::SetCompressionEnabled(true);

  const obs::MetricsSnapshot a = RunScenarioFullSnapshot();
  const obs::MetricsSnapshot b = RunScenarioFullSnapshot();

  index::codec::SetCompressionEnabled(compression_was);
  obs::MetricRegistry::Default().Reset();

  EXPECT_EQ(a, b);
  // Byte-level check on the serialized form too: ToJson is itself part of
  // the deterministic surface (ordering, formatting).
  EXPECT_EQ(a.ToJson(), b.ToJson());
  EXPECT_FALSE(a.counters.empty());
}

TEST(DeterminismTest, CorporaAreDeterministic) {
  for (int round = 0; round < 2; ++round) {
    xml::corpus::SimpleCorpusOptions opt;
    opt.target_elements = 2000;
    auto a = xml::corpus::GenerateXmark(opt);
    auto b = xml::corpus::GenerateXmark(opt);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(xml::SerializeDocument(a[i]), xml::SerializeDocument(b[i]));
    }
  }
}

TEST(DeterminismTest, SeedChangesTheCorpusButNotItsShape) {
  xml::corpus::DblpOptions a_opt;
  a_opt.target_bytes = 40 << 10;
  xml::corpus::DblpOptions b_opt = a_opt;
  b_opt.seed = 777;
  auto a = xml::corpus::GenerateDblp(a_opt);
  auto b = xml::corpus::GenerateDblp(b_opt);
  EXPECT_NE(xml::SerializeDocument(a[0]), xml::SerializeDocument(b[0]));
  auto sa = xml::corpus::ComputeStats(a);
  auto sb = xml::corpus::ComputeStats(b);
  EXPECT_NEAR(static_cast<double>(sa.elements),
              static_cast<double>(sb.elements), sa.elements * 0.2);
}

}  // namespace
}  // namespace kadop
