// The whole system is deterministic given its seeds: two identical runs
// produce bit-identical virtual times, traffic counters and answers. This
// is what makes the experiment harnesses reproducible.

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/kadop.h"
#include "index/codec.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_analysis.h"
#include "sim/fault_plan.h"
#include "xml/corpus.h"
#include "xml/parser.h"

namespace kadop {
namespace {

struct RunOutcome {
  double publish_time = 0;
  double query_time = 0;
  uint64_t traffic_bytes = 0;
  uint64_t traffic_messages = 0;
  size_t answers = 0;
  uint64_t postings_stored = 0;

  friend bool operator==(const RunOutcome&, const RunOutcome&) = default;
};

RunOutcome RunScenario() {
  xml::corpus::DblpOptions copt;
  copt.target_bytes = 80 << 10;
  auto docs = xml::corpus::GenerateDblp(copt);

  core::KadopOptions opt;
  opt.peers = 16;
  opt.dpp.max_block_postings = 256;
  core::KadopNet net(opt);
  std::vector<const xml::Document*> ptrs;
  for (const auto& d : docs) ptrs.push_back(&d);

  RunOutcome out;
  out.publish_time = net.PublishAndWait(3, ptrs);
  query::QueryOptions qopt;
  qopt.strategy = query::QueryStrategy::kDpp;
  auto result =
      net.QueryAndWait(7, "//article//author[. contains 'Ullman']", qopt);
  EXPECT_TRUE(result.ok());
  out.query_time = result.value().metrics.ResponseTime();
  out.answers = result.value().answers.size();
  out.traffic_bytes = net.network().traffic().bytes;
  out.traffic_messages = net.network().traffic().messages;
  out.postings_stored = net.dht().AggregateStats().postings_stored;
  return out;
}

TEST(DeterminismTest, IdenticalRunsProduceIdenticalOutcomes) {
  const RunOutcome a = RunScenario();
  const RunOutcome b = RunScenario();
  EXPECT_EQ(a, b);
  EXPECT_GT(a.publish_time, 0.0);
  EXPECT_GT(a.traffic_bytes, 0u);
}

// The strongest observable we have: the FULL metric registry. Two
// same-seed runs with compression, the posting cache and seeded faults
// all enabled must leave every counter, gauge and histogram bucket
// byte-identical — any wall-clock, RNG or hash-order escape anywhere in
// the stack shows up here as a diff.
obs::MetricsSnapshot RunScenarioFullSnapshot() {
  obs::MetricRegistry::Default().Reset();

  xml::corpus::DblpOptions copt;
  copt.target_bytes = 60 << 10;
  auto docs = xml::corpus::GenerateDblp(copt);

  core::KadopOptions opt;
  opt.peers = 12;
  opt.dpp.max_block_postings = 128;
  // Views and the advisor are part of the deterministic surface: the
  // query log, window closings, materialization appends and the view.*
  // counters must all replay byte-identically.
  opt.views.enabled = true;
  opt.views.advisor = true;
  opt.views.hot_queries_per_window = 2;
  opt.views.hot_windows = 1;
  core::KadopNet net(opt);

  std::vector<const xml::Document*> ptrs;
  for (const auto& d : docs) ptrs.push_back(&d);
  (void)net.PublishAndWait(2, ptrs);
  EXPECT_TRUE(net.CreateViewAndWait("//article//title").ok());

  // Faults go live after publish (like the chaos suite): queries retry
  // through drops, and the retry/timeout schedule is itself seeded.
  sim::FaultOptions faults;
  faults.seed = 4242;
  faults.drop_p = 0.02;
  faults.dup_p = 0.01;
  faults.jitter_mean_s = 0.005;
  net.EnableFaults(faults);

  query::QueryOptions qopt;
  qopt.strategy = query::QueryStrategy::kDpp;
  qopt.cache_postings = true;
  qopt.fetch_retry.timeout_s = 0.5;
  qopt.fetch_retry.max_retries = 3;
  // Same query twice: the second pass exercises the cache hit path.
  for (int pass = 0; pass < 2; ++pass) {
    auto result =
        net.QueryAndWait(5, "//article//author[. contains 'Ullman']", qopt);
    EXPECT_TRUE(result.ok());
  }
  // View serving (hit or guarded fallback — both deterministic under the
  // seeded fault plan) plus advisor-log traffic.
  query::QueryOptions vopt;
  vopt.strategy = query::QueryStrategy::kView;
  vopt.fetch_retry = qopt.fetch_retry;
  for (int pass = 0; pass < 3; ++pass) {
    auto result = net.QueryAndWait(3, "//article//title", vopt);
    EXPECT_TRUE(result.ok());
  }
  return obs::MetricRegistry::Default().Snapshot();
}

TEST(DeterminismTest, FullMetricSnapshotIsSeedDeterministic) {
  const bool compression_was = index::codec::CompressionEnabled();
  index::codec::SetCompressionEnabled(true);

  const obs::MetricsSnapshot a = RunScenarioFullSnapshot();
  const obs::MetricsSnapshot b = RunScenarioFullSnapshot();

  index::codec::SetCompressionEnabled(compression_was);
  obs::MetricRegistry::Default().Reset();

  EXPECT_EQ(a, b);
  // Byte-level check on the serialized form too: ToJson is itself part of
  // the deterministic surface (ordering, formatting).
  EXPECT_EQ(a.ToJson(), b.ToJson());
  EXPECT_FALSE(a.counters.empty());
}

// With wire-propagated trace contexts, the trace buffer (span ids, trace
// ids, parents, nodes, virtual timestamps) and its derived Chrome export
// are part of the deterministic surface too.
struct TraceDumps {
  std::string text;
  std::string json;
  std::string chrome;
};

TraceDumps RunScenarioTraced() {
  auto& tracer = obs::Tracer::Default();
  tracer.Clear();
  tracer.SetEnabled(true);

  TraceDumps dump;
  {
    xml::corpus::DblpOptions copt;
    copt.target_bytes = 60 << 10;
    auto docs = xml::corpus::GenerateDblp(copt);

    core::KadopOptions opt;
    opt.peers = 12;
    core::KadopNet net(opt);
    std::vector<const xml::Document*> ptrs;
    for (const auto& d : docs) ptrs.push_back(&d);
    (void)net.PublishAndWait(2, ptrs);

    query::QueryOptions qopt;
    qopt.strategy = query::QueryStrategy::kDppJoin;
    qopt.dpp_join_available = true;
    auto result = net.QueryAndWait(5, "//article[//author]//title", qopt);
    EXPECT_TRUE(result.ok());

    dump.text = tracer.DumpText();
    dump.json = tracer.DumpJson();
    dump.chrome = obs::ChromeTraceJson(tracer);
  }
  tracer.SetEnabled(false);
  tracer.Clear();
  return dump;
}

TEST(DeterminismTest, TraceDumpsAreSeedDeterministic) {
  const TraceDumps a = RunScenarioTraced();
  const TraceDumps b = RunScenarioTraced();
  EXPECT_EQ(a.text, b.text);
  EXPECT_EQ(a.json, b.json);
  EXPECT_EQ(a.chrome, b.chrome);
  EXPECT_NE(a.json.find("\"trace\""), std::string::npos);
  EXPECT_NE(a.chrome.find("\"ph\":\"X\""), std::string::npos);
}

// Serving-style load: an open-loop burst of Zipf-mixed queries measured
// through a latency histogram plus the registry delta, the exact shape the
// serving bench emits. Both the histogram buckets and the delta must be
// identical across same-seed runs.
std::pair<std::string, obs::MetricsSnapshot> RunServingSlice() {
  obs::MetricRegistry::Default().Reset();

  xml::corpus::DblpOptions copt;
  copt.target_bytes = 60 << 10;
  auto docs = xml::corpus::GenerateDblp(copt);

  core::KadopOptions opt;
  opt.peers = 12;
  core::KadopNet net(opt);
  std::vector<const xml::Document*> ptrs;
  for (const auto& d : docs) ptrs.push_back(&d);
  (void)net.PublishAndWait(0, ptrs);

  const char* mix[] = {"//article[//author]//title", "//article//author",
                       "//inproceedings//title"};
  Rng rng(99);
  const ZipfSampler zipf(3, 1.0);
  obs::Histogram latencies(obs::LogLatencyBuckets());
  obs::WindowedSnapshots windows(obs::MetricRegistry::Default());
  const double start = net.scheduler().Now();
  for (double t = start + rng.Exponential(0.1); t < start + 4.0;
       t += rng.Exponential(0.1)) {
    const size_t pick = zipf.Sample(rng);
    net.scheduler().At(t, [&net, &rng, &latencies, mix, pick]() {
      query::QueryOptions qopt;
      qopt.strategy = query::QueryStrategy::kAuto;
      qopt.dpp_join_available = true;
      const auto at = static_cast<sim::NodeIndex>(
          rng.Uniform(static_cast<uint64_t>(net.PeerCount())));
      const double submitted = net.scheduler().Now();
      (void)net.SubmitQuery(at, mix[pick], qopt,
                            [&net, &latencies, submitted](query::QueryResult) {
                              latencies.Observe(net.scheduler().Now() -
                                                submitted);
                            });
    });
  }
  net.RunToIdle();

  obs::JsonWriter w;
  w.BeginObject();
  w.Key("count");
  w.Value(latencies.count());
  w.Key("p50");
  w.Value(latencies.Percentile(0.5));
  w.Key("p99");
  w.Value(latencies.Percentile(0.99));
  w.Key("p999");
  w.Value(latencies.Percentile(0.999));
  w.EndObject();
  return {w.str(), windows.Advance(start + 4.0).delta};
}

TEST(DeterminismTest, ServingMetricsDeltaIsSeedDeterministic) {
  const auto a = RunServingSlice();
  const auto b = RunServingSlice();
  obs::MetricRegistry::Default().Reset();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
  EXPECT_EQ(a.second.ToJson(), b.second.ToJson());
  EXPECT_NE(a.first.find("\"count\""), std::string::npos);
  // Per-holder load accounting moved during the slice.
  bool holder_load = false;
  for (const auto& [name, value] : a.second.counters) {
    if (name.rfind("load.holder.", 0) == 0 && value > 0) holder_load = true;
  }
  EXPECT_TRUE(holder_load);
}

TEST(DeterminismTest, CorporaAreDeterministic) {
  for (int round = 0; round < 2; ++round) {
    xml::corpus::SimpleCorpusOptions opt;
    opt.target_elements = 2000;
    auto a = xml::corpus::GenerateXmark(opt);
    auto b = xml::corpus::GenerateXmark(opt);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(xml::SerializeDocument(a[i]), xml::SerializeDocument(b[i]));
    }
  }
}

TEST(DeterminismTest, SeedChangesTheCorpusButNotItsShape) {
  xml::corpus::DblpOptions a_opt;
  a_opt.target_bytes = 40 << 10;
  xml::corpus::DblpOptions b_opt = a_opt;
  b_opt.seed = 777;
  auto a = xml::corpus::GenerateDblp(a_opt);
  auto b = xml::corpus::GenerateDblp(b_opt);
  EXPECT_NE(xml::SerializeDocument(a[0]), xml::SerializeDocument(b[0]));
  auto sa = xml::corpus::ComputeStats(a);
  auto sb = xml::corpus::ComputeStats(b);
  EXPECT_NEAR(static_cast<double>(sa.elements),
              static_cast<double>(sb.elements), sa.elements * 0.2);
}

}  // namespace
}  // namespace kadop
