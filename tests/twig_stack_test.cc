#include <gtest/gtest.h>

#include <algorithm>

#include "index/terms.h"
#include "query/twig_join.h"
#include "query/twig_stack.h"
#include "xml/corpus.h"
#include "xml/parser.h"

namespace kadop::query {
namespace {

using index::Posting;
using index::PostingList;

TreePattern MustParse(const char* expr) {
  auto result = ParsePattern(expr);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.take();
}

std::vector<PostingList> StreamsFor(const TreePattern& pattern,
                                    const std::vector<xml::Document>& docs) {
  std::vector<PostingList> streams(pattern.size());
  for (size_t d = 0; d < docs.size(); ++d) {
    std::vector<index::TermPosting> postings;
    index::ExtractTerms(docs[d], 0, static_cast<uint32_t>(d), {}, postings);
    for (const auto& tp : postings) {
      for (size_t q = 0; q < pattern.size(); ++q) {
        if (tp.key == pattern.node(q).TermKey()) {
          streams[q].push_back(tp.posting);
        }
      }
    }
  }
  for (auto& s : streams) std::sort(s.begin(), s.end());
  return streams;
}

std::vector<Answer> Sorted(std::vector<Answer> v) {
  std::sort(v.begin(), v.end(), [](const Answer& a, const Answer& b) {
    if (a.doc != b.doc) return a.doc < b.doc;
    return a.elements < b.elements;
  });
  return v;
}

std::vector<Answer> RunReference(const TreePattern& pattern,
                                 const std::vector<PostingList>& streams) {
  TwigJoin join(pattern);
  for (size_t q = 0; q < pattern.size(); ++q) {
    join.Append(q, streams[q]);
    join.Close(q);
  }
  join.Advance();
  return join.answers();
}

std::vector<xml::Document> ParseDocs(
    const std::vector<const char*>& xml_texts) {
  std::vector<xml::Document> docs;
  for (const char* text : xml_texts) {
    auto doc = xml::ParseDocument(text);
    EXPECT_TRUE(doc.ok());
    docs.push_back(doc.take());
  }
  return docs;
}

TEST(TwigStackTest, SimplePath) {
  auto docs = ParseDocs({"<a><b><c/></b></a>", "<a><c/></a>"});
  TreePattern pattern = MustParse("//a//b//c");
  auto streams = StreamsFor(pattern, docs);
  TwigStackJoin stack(pattern);
  auto answers = stack.Run(streams);
  EXPECT_EQ(Sorted(answers), Sorted(RunReference(pattern, streams)));
  EXPECT_EQ(answers.size(), 1u);
}

TEST(TwigStackTest, SkipsUselessElements) {
  // Many 'b's without 'c' below them must be skipped, not stacked.
  auto docs = ParseDocs({
      "<a><b/><b/><b/><b/><b/><b><c/></b></a>",
  });
  TreePattern pattern = MustParse("//a//b//c");
  auto streams = StreamsFor(pattern, docs);
  TwigStackJoin stack(pattern);
  auto answers = stack.Run(streams);
  ASSERT_EQ(answers.size(), 1u);
  // Only one of the six b's participates; the rest are skipped by getNext.
  EXPECT_GE(stack.stats().skipped, 5u);
  EXPECT_LE(stack.stats().pushed, 3u);
}

TEST(TwigStackTest, BranchingTwig) {
  auto docs = ParseDocs({
      "<a><b/><c/></a>",
      "<a><b/></a>",
      "<a><c/></a>",
      "<r><a><x><b/></x><y><c/></y></a></r>",
  });
  TreePattern pattern = MustParse("//a[//b]//c");
  auto streams = StreamsFor(pattern, docs);
  TwigStackJoin stack(pattern);
  EXPECT_EQ(Sorted(stack.Run(streams)),
            Sorted(RunReference(pattern, streams)));
}

TEST(TwigStackTest, ExhaustedBranchDrainsParent) {
  // 'd' never occurs after doc 0; the a-stream must drain without
  // looping, and earlier matches must survive.
  auto docs = ParseDocs({
      "<a><b/><d/></a>",
      "<a><b/></a>",
      "<a><b/></a>",
  });
  TreePattern pattern = MustParse("//a[//b]//d");
  auto streams = StreamsFor(pattern, docs);
  TwigStackJoin stack(pattern);
  auto answers = stack.Run(streams);
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(answers[0].doc, (index::DocId{0, 0}));
}

TEST(TwigStackTest, WordPseudoNodesWithEqualIntervals) {
  auto docs = ParseDocs({
      "<article><author>Jeff Ullman</author></article>",
      "<article><author>Someone Else</author></article>",
  });
  TreePattern pattern = MustParse("//article//author[. contains 'Ullman']");
  auto streams = StreamsFor(pattern, docs);
  TwigStackJoin stack(pattern);
  auto answers = stack.Run(streams);
  EXPECT_EQ(Sorted(answers), Sorted(RunReference(pattern, streams)));
  ASSERT_EQ(answers.size(), 1u);
}

TEST(TwigStackTest, ChildAxisEnforcedAtMerge) {
  auto docs = ParseDocs({"<a><b/></a>", "<a><x><b/></x></a>"});
  TreePattern pattern = MustParse("//a/b");
  auto streams = StreamsFor(pattern, docs);
  TwigStackJoin stack(pattern);
  auto answers = stack.Run(streams);
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(answers[0].doc, (index::DocId{0, 0}));
}

TEST(TwigStackTest, AnswerCap) {
  auto docs = ParseDocs({"<a><b/><b/><b/><b/></a>"});
  TreePattern pattern = MustParse("//a//b");
  auto streams = StreamsFor(pattern, docs);
  TwigStackJoin stack(pattern);
  EXPECT_EQ(stack.Run(streams, 2).size(), 2u);
}

TEST(TwigStackTest, EmptyStreams) {
  TreePattern pattern = MustParse("//a//b");
  TwigStackJoin stack(pattern);
  EXPECT_TRUE(stack.Run({{}, {}}).empty());
}

class TwigStackCorpusTest : public ::testing::TestWithParam<const char*> {};

TEST_P(TwigStackCorpusTest, MatchesDocumentAtATimeKernel) {
  xml::corpus::DblpOptions opt;
  opt.target_bytes = 150 << 10;
  auto docs = xml::corpus::GenerateDblp(opt);
  TreePattern pattern = MustParse(GetParam());
  auto streams = StreamsFor(pattern, docs);
  TwigStackJoin stack(pattern);
  EXPECT_EQ(Sorted(stack.Run(streams)),
            Sorted(RunReference(pattern, streams)))
      << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Queries, TwigStackCorpusTest,
    ::testing::Values("//article//author",
                      "//article//author[. contains 'Ullman']",
                      "//article[//journal]//year",
                      "//dblp//article/title",
                      "//inproceedings[//booktitle][//year]//title",
                      "//article[contains(.//title,'system')]//author"));

TEST(TwigStackCorpusStats, SkipsDominateOnSelectiveQueries) {
  xml::corpus::DblpOptions opt;
  opt.target_bytes = 150 << 10;
  auto docs = xml::corpus::GenerateDblp(opt);
  // 'ullman' is rare: most author elements cannot extend to a match and
  // must be skipped without stacking (the TwigStack optimality property
  // for //-only twigs).
  TreePattern pattern = MustParse("//article//author//\"ullman\"");
  auto streams = StreamsFor(pattern, docs);
  TwigStackJoin stack(pattern);
  auto answers = stack.Run(streams);
  EXPECT_FALSE(answers.empty());
  EXPECT_GT(stack.stats().skipped, 5 * stack.stats().pushed);
}

}  // namespace
}  // namespace kadop::query
