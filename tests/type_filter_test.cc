// Tests for the type-aware DPP block conditions (Section 4.1): terms are
// associated with their documents' types, and queries skip posting blocks
// whose types cannot match the other query terms.

#include <gtest/gtest.h>

#include "core/kadop.h"
#include "xml/corpus.h"

namespace kadop::query {
namespace {

class TypeFilterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    xml::corpus::DblpOptions dopt;
    dopt.target_bytes = 60 << 10;
    dblp_ = xml::corpus::GenerateDblp(dopt);
    xml::corpus::SimpleCorpusOptions iopt;
    iopt.target_elements = 3000;
    imdb_ = xml::corpus::GenerateImdb(iopt);

    core::KadopOptions opt;
    opt.peers = 12;
    opt.dpp.max_block_postings = 256;
    net_ = std::make_unique<core::KadopNet>(opt);
    std::vector<const xml::Document*> dblp_ptrs, imdb_ptrs;
    for (const auto& d : dblp_) dblp_ptrs.push_back(&d);
    for (const auto& d : imdb_) imdb_ptrs.push_back(&d);
    net_->PublishAndWait(0, dblp_ptrs);
    net_->PublishAndWait(6, imdb_ptrs);
  }

  QueryResult Run(const char* expr) {
    QueryOptions qopt;
    qopt.strategy = QueryStrategy::kDpp;
    auto result = net_->QueryAndWait(3, expr, qopt);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.take();
  }

  std::vector<xml::Document> dblp_;
  std::vector<xml::Document> imdb_;
  std::unique_ptr<core::KadopNet> net_;
};

TEST_F(TypeFilterTest, CrossTypeQueryFetchesNothing) {
  // `movie` only occurs in imdb-type documents, `author` only in dblp-type
  // ones: the viable type intersection is empty, so every block is skipped
  // and no posting bytes move.
  QueryResult r = Run("//movie//author");
  EXPECT_TRUE(r.answers.empty());
  EXPECT_EQ(r.metrics.posting_bytes, 0u);
  EXPECT_EQ(r.metrics.blocks_fetched, 0u);
  EXPECT_GT(r.metrics.blocks_skipped, 0u);
}

TEST_F(TypeFilterTest, SharedTermFetchesOnlyMatchingTypeBlocks) {
  // `title` occurs in both corpora; paired with `movie` only the imdb
  // side is viable. Compare with pairing it to `article`.
  QueryResult movie_side = Run("//movie//title");
  QueryResult article_side = Run("//article//title");
  EXPECT_FALSE(movie_side.answers.empty());
  EXPECT_FALSE(article_side.answers.empty());
  // Answers never cross types.
  for (const auto& a : movie_side.answers) {
    EXPECT_EQ(a.doc.peer, 6u);
  }
  for (const auto& a : article_side.answers) {
    EXPECT_EQ(a.doc.peer, 0u);
  }
}

TEST_F(TypeFilterTest, SameTypeQueriesUnaffected) {
  QueryResult r = Run("//article//author");
  EXPECT_FALSE(r.answers.empty());
  EXPECT_TRUE(r.metrics.complete);
}

TEST_F(TypeFilterTest, TypeFilterPreservesRecallAgainstBaseline) {
  for (const char* expr :
       {"//movie//actor", "//article//year", "//dblp//article"}) {
    QueryOptions base;
    base.strategy = QueryStrategy::kBaseline;
    auto baseline = net_->QueryAndWait(3, expr, base);
    ASSERT_TRUE(baseline.ok());
    QueryResult dpp = Run(expr);
    EXPECT_EQ(dpp.answers.size(), baseline.value().answers.size()) << expr;
  }
}

}  // namespace
}  // namespace kadop::query
