// Hot-data replication + load-aware routing (dht/replication.h): the
// promotion/demotion state machine, the power-of-two-choices routing draw,
// the version guard that keeps replicas from ever serving stale postings,
// and the crash contracts — owner death answered from a live replica with
// degraded=false, replica death mid-pull falling back to the owner. Every
// replica-served answer must be byte-identical to the unreplicated ground
// truth, and same-seed runs with replication on must replay byte for byte.

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/kadop.h"
#include "dht/replication.h"
#include "dht/ring.h"
#include "index/terms.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "xml/corpus.h"

namespace kadop {
namespace {

using core::KadopNet;
using core::KadopOptions;
using dht::KeyLoadTracker;
using dht::PowerOfTwoChoice;
using dht::ReplicationManager;

uint64_t FaultSeed() {
  const char* env = std::getenv("KADOP_FAULT_SEED");
  return env != nullptr ? std::strtoull(env, nullptr, 10) : 11;
}

uint64_t CounterValue(const char* name) {
  const auto snap = obs::MetricRegistry::Default().Snapshot();
  const auto it = snap.counters.find(name);
  return it == snap.counters.end() ? 0 : it->second;
}

// ---------------------------------------------------------------------------
// KeyLoadTracker: the bounded replacement for the old per-key registry
// counters, whose cardinality grew with every distinct key ever served.

TEST(KeyLoadTrackerTest, StaysBoundedUnderHundredThousandDistinctKeys) {
  KeyLoadTracker tracker(64);
  const std::string hot = "hot-key";
  for (int i = 0; i < 100000; ++i) {
    tracker.RecordGet("key-" + std::to_string(i));
    if (i % 10 == 0) tracker.RecordGet(hot);
  }
  EXPECT_LE(tracker.tracked(), 64u);
  EXPECT_GT(tracker.evictions(), 0u);
  // Space-saving guarantee: the genuinely hot key is still tracked — the
  // stream of one-off keys cannot push it out.
  const auto window = tracker.DrainWindow();
  ASSERT_TRUE(window.count(hot) > 0);
  EXPECT_GE(window.at(hot), 10000u - 64u);
}

TEST(KeyLoadTrackerTest, RegistryCardinalityStaysFixed) {
  // The tracker registers exactly two metrics (an eviction counter and a
  // tracked-keys gauge) — never one counter per key.
  const auto before = obs::MetricRegistry::Default().Snapshot();
  KeyLoadTracker tracker(8);
  for (int i = 0; i < 1000; ++i) {
    tracker.RecordGet("cardinality-" + std::to_string(i));
  }
  const auto after = obs::MetricRegistry::Default().Snapshot();
  for (const auto& [name, value] : after.counters) {
    if (before.counters.count(name) > 0) continue;
    EXPECT_EQ(name, "load.key.evictions") << "unexpected new counter";
  }
  EXPECT_LE(tracker.tracked(), 8u);
}

TEST(KeyLoadTrackerTest, DecayForgetsColdKeys) {
  KeyLoadTracker tracker(16);
  tracker.RecordGet("a");
  tracker.RecordGet("a");
  tracker.RecordGet("b");
  EXPECT_EQ(tracker.tracked(), 2u);
  // "b" (count 1) decays to zero after one window, "a" (count 2) after two.
  tracker.DrainWindow();
  EXPECT_EQ(tracker.tracked(), 1u);
  tracker.DrainWindow();
  EXPECT_EQ(tracker.tracked(), 0u);
}

// ---------------------------------------------------------------------------
// Power-of-two-choices: deterministic for a fixed seed, always a member of
// the candidate set, and biased toward the less-loaded holder.

TEST(PowerOfTwoChoiceTest, DeterministicForFixedSeed) {
  const std::vector<sim::NodeIndex> candidates{3, 7, 11, 19};
  std::map<sim::NodeIndex, uint64_t> load{{3, 40}, {7, 10}, {11, 25}, {19, 5}};
  auto load_fn = [&load](sim::NodeIndex n) { return load.at(n); };
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    const sim::NodeIndex pa = PowerOfTwoChoice(candidates, load_fn, a);
    const sim::NodeIndex pb = PowerOfTwoChoice(candidates, load_fn, b);
    EXPECT_EQ(pa, pb);
    EXPECT_TRUE(load.count(pa) > 0) << "picked a non-candidate";
  }
}

TEST(PowerOfTwoChoiceTest, FavorsTheLessLoadedReplicaOverManyDraws) {
  // Three candidates, one far lighter than the rest. The light one wins
  // whenever either draw includes it: P = 1 - (2/3 * 1/2) = 2/3 over 10k
  // draws, so its count concentrates tightly around 6667.
  const std::vector<sim::NodeIndex> candidates{0, 1, 2};
  auto load_fn = [](sim::NodeIndex n) -> uint64_t {
    return n == 2 ? 10 : 100;
  };
  Rng rng(FaultSeed());
  int light_picks = 0;
  for (int i = 0; i < 10000; ++i) {
    if (PowerOfTwoChoice(candidates, load_fn, rng) == 2) light_picks++;
  }
  EXPECT_GT(light_picks, 5500);
  EXPECT_LT(light_picks, 7800);
}

TEST(PowerOfTwoChoiceTest, LoadTieBreaksOnSmallerNodeIndex) {
  const std::vector<sim::NodeIndex> candidates{9, 4};
  auto load_fn = [](sim::NodeIndex) -> uint64_t { return 7; };
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(PowerOfTwoChoice(candidates, load_fn, rng), 4u);
  }
}

// ---------------------------------------------------------------------------
// Promotion / demotion state machine, driven deterministically through the
// manager's lazy windows on a small published network.

class ReplicationStateMachineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    xml::corpus::DblpOptions copt;
    copt.target_bytes = 100 << 10;
    docs_ = xml::corpus::GenerateDblp(copt);

    KadopOptions opt;
    opt.peers = 10;
    opt.dht.repl.enabled = true;
    opt.dht.repl.replicas = 2;
    opt.dht.repl.window_s = 1.0;
    opt.dht.repl.hot_gets_per_window = 4;
    opt.dht.repl.hot_windows = 2;
    opt.dht.repl.cool_gets_per_window = 1;
    opt.dht.repl.cool_windows = 2;
    net_ = std::make_unique<KadopNet>(opt);
    net_->RegisterDocuments(docs_);
    std::vector<const xml::Document*> ptrs;
    for (const auto& d : docs_) ptrs.push_back(&d);
    net_->PublishAndWait(2, ptrs);
    key_ = index::LabelKey("author");
  }

  ReplicationManager& repl() { return net_->dht().replication(); }

  /// Closes one load window after recording `gets` on the hot key. The
  /// window clock only needs to move past the boundary; it is driven with
  /// synthetic times exactly like the Get/Append serve paths drive it.
  void Window(uint64_t gets) {
    for (uint64_t i = 0; i < gets; ++i) repl().RecordKeyGet(key_);
    now_ += 1.5;  // > window_s
    repl().MaybeTick(now_);
  }

  std::vector<xml::Document> docs_;
  std::unique_ptr<KadopNet> net_;
  std::string key_;
  double now_ = 0.0;
};

TEST_F(ReplicationStateMachineTest, PromotesAfterHotWindowsAndNotBefore) {
  repl().MaybeTick(now_);  // opens the first window
  Window(10);              // hot_streak = 1
  EXPECT_FALSE(repl().IsReplicated(key_));
  Window(10);  // hot_streak = 2 -> promote
  EXPECT_TRUE(repl().IsReplicated(key_));
  const auto replicas = repl().ReplicaNodes(key_);
  ASSERT_EQ(replicas.size(), 2u);
  // Replicas are the owner's first successors, never the owner itself.
  const auto succ = net_->dht().SuccessorsOf(dht::HashKey(key_), 3);
  ASSERT_EQ(succ.size(), 3u);
  EXPECT_EQ(replicas[0], succ[1]);
  EXPECT_EQ(replicas[1], succ[2]);

  // The copies travel as real messages; once installed and acked, the
  // replicas are ready and version-fresh.
  net_->RunToIdle();
  const uint64_t version =
      net_->peer(0)->dht_peer()->AuthoritativeVersion(key_);
  EXPECT_TRUE(repl().CanServeReplica(key_, replicas[0], version));
  EXPECT_TRUE(repl().CanServeReplica(key_, replicas[1], version));
}

TEST_F(ReplicationStateMachineTest, ColdStreakBelowThresholdNeverPromotes) {
  repl().MaybeTick(now_);
  for (int i = 0; i < 5; ++i) Window(3);  // below hot_gets_per_window
  EXPECT_FALSE(repl().IsReplicated(key_));
  EXPECT_EQ(repl().ReplicatedKeyCount(), 0u);
}

TEST_F(ReplicationStateMachineTest, InterruptedStreakStartsOver) {
  repl().MaybeTick(now_);
  Window(10);  // hot_streak = 1
  Window(0);   // streak broken
  Window(10);  // hot_streak = 1 again
  EXPECT_FALSE(repl().IsReplicated(key_));
  Window(10);  // hot_streak = 2 -> promote
  EXPECT_TRUE(repl().IsReplicated(key_));
}

TEST_F(ReplicationStateMachineTest, DemotesAfterCoolWindowsAndDropsCopies) {
  repl().MaybeTick(now_);
  Window(10);
  Window(10);
  net_->RunToIdle();
  ASSERT_TRUE(repl().IsReplicated(key_));
  const auto replicas = repl().ReplicaNodes(key_);

  Window(0);  // cool_streak = 1
  EXPECT_TRUE(repl().IsReplicated(key_));
  Window(0);  // cool_streak = 2 -> demote
  EXPECT_FALSE(repl().IsReplicated(key_));
  net_->RunToIdle();  // the drop messages land
  for (const sim::NodeIndex r : replicas) {
    EXPECT_TRUE(net_->peer(r)->dht_peer()->store()->GetPostings(key_).empty())
        << "replica " << r << " kept its copy after demotion";
  }
}

TEST_F(ReplicationStateMachineTest, AppendBumpsVersionAndGuardsTheReplica) {
  repl().MaybeTick(now_);
  Window(10);
  Window(10);
  net_->RunToIdle();
  ASSERT_TRUE(repl().IsReplicated(key_));
  const auto replicas = repl().ReplicaNodes(key_);
  const sim::NodeIndex owner = net_->dht().OwnerOf(dht::HashKey(key_));
  const uint64_t before =
      net_->peer(0)->dht_peer()->AuthoritativeVersion(key_);
  ASSERT_TRUE(repl().CanServeReplica(key_, replicas[0], before));

  // An append at the owner bumps the authoritative version: every replica
  // is instantly stale — the guard fails and routing collapses to the
  // owner (kNoReplica = use the normal routed path).
  net_->dht().peer(owner)->store()->BumpPostingVersion(key_);
  const uint64_t after =
      net_->peer(0)->dht_peer()->AuthoritativeVersion(key_);
  ASSERT_NE(before, after);
  EXPECT_FALSE(repl().CanServeReplica(key_, replicas[0], after));
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(repl().RouteGet(key_), ReplicationManager::kNoReplica);
  }

  // The next hot window refreshes the copy; the replica serves again.
  Window(10);
  net_->RunToIdle();
  EXPECT_TRUE(repl().CanServeReplica(key_, replicas[0], after));
}

TEST_F(ReplicationStateMachineTest, RouteGetNeverPicksACrashedReplica) {
  repl().MaybeTick(now_);
  Window(10);
  Window(10);
  net_->RunToIdle();
  const auto replicas = repl().ReplicaNodes(key_);
  ASSERT_EQ(replicas.size(), 2u);
  net_->FailPeerAndStabilize(replicas[1]);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_NE(repl().RouteGet(key_), replicas[1]);
  }
}

TEST_F(ReplicationStateMachineTest, DisablingDemotesEverything) {
  repl().MaybeTick(now_);
  Window(10);
  Window(10);
  net_->RunToIdle();
  ASSERT_TRUE(repl().IsReplicated(key_));
  const uint64_t demotions_before = CounterValue("repl.demotions");
  repl().SetEnabled(false);
  net_->RunToIdle();
  EXPECT_FALSE(repl().IsReplicated(key_));
  EXPECT_EQ(repl().ReplicatedKeyCount(), 0u);
  EXPECT_GT(CounterValue("repl.demotions"), demotions_before);
  EXPECT_EQ(repl().RouteGet(key_), ReplicationManager::kNoReplica);
}

// ---------------------------------------------------------------------------
// End-to-end: replica-served query answers must be byte-identical to the
// unreplicated ground truth, across kDpp and the distributed block join.

constexpr const char* kQueries[] = {
    "//article//author",
    "//inproceedings//booktitle",
    "//author",
};

struct GroundTruth {
  std::map<std::string, std::vector<query::Answer>> base;
  std::map<std::string, std::vector<query::Answer>> extended;
};

std::vector<xml::Document> BaseCorpus() {
  xml::corpus::DblpOptions copt;
  copt.target_bytes = 100 << 10;
  return xml::corpus::GenerateDblp(copt);
}

std::vector<xml::Document> ExtraCorpus() {
  xml::corpus::DblpOptions copt;
  copt.seed = 77;
  copt.target_bytes = 50 << 10;
  return xml::corpus::GenerateDblp(copt);
}

KadopOptions ReplNetOptions(bool enabled) {
  KadopOptions opt;
  opt.peers = 10;
  opt.dht.repl.enabled = enabled;
  opt.dht.repl.replicas = 2;
  // Aggressive thresholds so real query load promotes within a few runs
  // (a query takes ~0.1s virtual, so the window must be shorter than that
  // for the lazy tick to close windows between queries); cooling only on
  // fully idle windows so copies stay sticky.
  opt.dht.repl.window_s = 0.05;
  opt.dht.repl.hot_gets_per_window = 1;
  opt.dht.repl.hot_windows = 1;
  opt.dht.repl.cool_gets_per_window = 0;
  opt.dht.repl.cool_windows = 100;
  return opt;
}

TEST(ReplicationQueryTest, ReplicaServedAnswersByteIdenticalToGroundTruth) {
  const auto docs = BaseCorpus();
  const auto extra = ExtraCorpus();
  std::vector<const xml::Document*> ptrs;
  for (const auto& d : docs) ptrs.push_back(&d);
  std::vector<const xml::Document*> extra_ptrs;
  for (const auto& d : extra) extra_ptrs.push_back(&d);

  query::QueryOptions qopt;
  qopt.strategy = query::QueryStrategy::kDpp;

  // Unreplicated ground truth, before and after the append batch.
  GroundTruth truth;
  {
    KadopNet net(ReplNetOptions(false));
    net.RegisterDocuments(docs);
    net.RegisterDocuments(extra);
    net.PublishAndWait(2, ptrs);
    for (const char* expr : kQueries) {
      auto r = net.QueryAndWait(5, expr, qopt);
      ASSERT_TRUE(r.ok()) << expr;
      truth.base[expr] = r.take().answers;
    }
    net.PublishAndWait(2, extra_ptrs);
    for (const char* expr : kQueries) {
      auto r = net.QueryAndWait(5, expr, qopt);
      ASSERT_TRUE(r.ok()) << expr;
      truth.extended[expr] = r.take().answers;
    }
  }

  // The replicated twin: identical corpus and query sequence, replication
  // promoting under the real query load.
  KadopNet net(ReplNetOptions(true));
  net.RegisterDocuments(docs);
  net.RegisterDocuments(extra);
  net.PublishAndWait(2, ptrs);

  const uint64_t replica_gets_before = CounterValue("repl.replica_gets");
  for (int round = 0; round < 8; ++round) {
    for (const char* expr : kQueries) {
      auto r = net.QueryAndWait(5, expr, qopt);
      ASSERT_TRUE(r.ok()) << expr;
      const auto got = r.take();
      EXPECT_TRUE(got.metrics.complete) << expr;
      EXPECT_FALSE(got.metrics.degraded) << expr;
      // Not just set equality: document-order answers, element for element.
      EXPECT_EQ(got.answers, truth.base.at(expr)) << expr << " round "
                                                  << round;
    }
  }
  // The load was heavy enough to promote, and replicas actually served.
  EXPECT_GT(net.dht().replication().ReplicatedKeyCount(), 0u)
      << "windows=" << CounterValue("repl.windows")
      << " tracked=" << net.dht().replication().tracker().tracked()
      << " promotions=" << CounterValue("repl.promotions")
      << " now=" << net.scheduler().Now();
  EXPECT_GT(CounterValue("repl.replica_gets"), replica_gets_before);

  // Append during replication: versions bump, every replica is stale until
  // re-copied, and no query may ever see the pre-append answer set (the
  // version-guard sibling of CacheNeverServesPreAppendResultsUnderFaults).
  net.PublishAndWait(2, extra_ptrs);
  for (int round = 0; round < 4; ++round) {
    for (const char* expr : kQueries) {
      auto r = net.QueryAndWait(5, expr, qopt);
      ASSERT_TRUE(r.ok()) << expr;
      const auto got = r.take();
      EXPECT_TRUE(got.metrics.complete) << expr;
      EXPECT_EQ(got.answers, truth.extended.at(expr))
          << expr << " served stale post-append answers, round " << round;
    }
  }

  // The replaced per-key registry counters must not have come back: the
  // only load.key.* metrics are the tracker's own bounded pair.
  const auto snap = obs::MetricRegistry::Default().Snapshot();
  for (const auto& [name, value] : snap.counters) {
    if (name.rfind("load.key.", 0) != 0) continue;
    EXPECT_EQ(name, "load.key.evictions") << "unbounded per-key counter";
  }
  EXPECT_LE(net.dht().replication().tracker().tracked(),
            net.options().dht.repl.max_tracked_keys);
}

TEST(ReplicationQueryTest, BlockJoinAnswersUnchangedWithReplicationOn) {
  const auto docs = BaseCorpus();
  std::vector<const xml::Document*> ptrs;
  for (const auto& d : docs) ptrs.push_back(&d);

  query::QueryOptions qopt;
  qopt.strategy = query::QueryStrategy::kDppJoin;
  qopt.dpp_join_available = true;

  std::map<std::string, std::vector<query::Answer>> truth;
  {
    KadopOptions opt = ReplNetOptions(false);
    opt.dpp.max_block_postings = 256;  // force splits -> many holders
    KadopNet net(opt);
    net.RegisterDocuments(docs);
    net.PublishAndWait(2, ptrs);
    for (const char* expr : kQueries) {
      auto r = net.QueryAndWait(5, expr, qopt);
      ASSERT_TRUE(r.ok()) << expr;
      truth[expr] = r.take().answers;
    }
  }

  KadopOptions opt = ReplNetOptions(true);
  opt.dpp.max_block_postings = 256;
  KadopNet net(opt);
  net.RegisterDocuments(docs);
  net.PublishAndWait(2, ptrs);
  for (int round = 0; round < 8; ++round) {
    for (const char* expr : kQueries) {
      auto r = net.QueryAndWait(5, expr, qopt);
      ASSERT_TRUE(r.ok()) << expr;
      const auto got = r.take();
      EXPECT_TRUE(got.metrics.complete) << expr;
      EXPECT_FALSE(got.metrics.degraded) << expr;
      EXPECT_EQ(got.answers, truth.at(expr)) << expr;
    }
  }
}

// ---------------------------------------------------------------------------
// Crash contracts.

class ReplicationCrashTest : public ::testing::Test {
 protected:
  void SetUp() override {
    docs_ = BaseCorpus();
    KadopOptions opt;
    opt.peers = 10;
    opt.dht.repl.enabled = true;
    opt.dht.repl.replicas = 2;
    opt.dht.repl.window_s = 1.0;
    opt.dht.repl.hot_gets_per_window = 4;
    opt.dht.repl.hot_windows = 2;
    opt.dht.repl.cool_gets_per_window = 0;
    opt.dht.repl.cool_windows = 100;
    net_ = std::make_unique<KadopNet>(opt);
    net_->RegisterDocuments(docs_);
    std::vector<const xml::Document*> ptrs;
    for (const auto& d : docs_) ptrs.push_back(&d);
    net_->PublishAndWait(2, ptrs);
    key_ = index::LabelKey("author");

    // Deterministic promotion of the query's term key.
    auto& repl = net_->dht().replication();
    double now = 0.0;
    repl.MaybeTick(now);
    for (int w = 0; w < 2; ++w) {
      for (int i = 0; i < 10; ++i) repl.RecordKeyGet(key_);
      now += 1.5;
      repl.MaybeTick(now);
    }
    net_->RunToIdle();
    ASSERT_TRUE(repl.IsReplicated(key_));
  }

  std::vector<xml::Document> docs_;
  std::unique_ptr<KadopNet> net_;
  std::string key_;
};

TEST_F(ReplicationCrashTest, OwnerCrashAnswersFromReplicaNotDegraded) {
  query::QueryOptions qopt;
  qopt.strategy = query::QueryStrategy::kDpp;

  const sim::NodeIndex owner = net_->dht().OwnerOf(dht::HashKey(key_));
  const auto replicas = net_->dht().replication().ReplicaNodes(key_);
  ASSERT_EQ(replicas.size(), 2u);
  const sim::NodeIndex querier =
      owner == 5 ? static_cast<sim::NodeIndex>(6) : 5;

  auto baseline = net_->QueryAndWait(querier, "//author", qopt);
  ASSERT_TRUE(baseline.ok());
  const auto expected = baseline.take().answers;
  ASSERT_FALSE(expected.empty());

  // Kill the owner. The ring re-stabilizes: the key's new owner is its
  // first successor — exactly the first replica, which holds the installed
  // copy. The query must complete from it with the full answer set and
  // degraded=false: replication turned a data-loss crash into a handoff.
  net_->FailPeerAndStabilize(owner);
  EXPECT_EQ(net_->dht().OwnerOf(dht::HashKey(key_)), replicas[0]);

  auto after = net_->QueryAndWait(querier, "//author", qopt);
  ASSERT_TRUE(after.ok());
  const auto got = after.take();
  EXPECT_TRUE(got.metrics.complete);
  EXPECT_FALSE(got.metrics.degraded);
  EXPECT_EQ(got.answers, expected);
}

TEST_F(ReplicationCrashTest, ReplicaCrashMidPullFallsBackToOwner) {
  query::QueryOptions qopt;
  qopt.strategy = query::QueryStrategy::kDpp;
  qopt.fetch_retry.timeout_s = 0.5;
  qopt.fetch_retry.max_retries = 3;

  const sim::NodeIndex owner = net_->dht().OwnerOf(dht::HashKey(key_));
  const auto replicas = net_->dht().replication().ReplicaNodes(key_);
  ASSERT_EQ(replicas.size(), 2u);
  const sim::NodeIndex querier =
      owner == 5 ? static_cast<sim::NodeIndex>(6) : 5;

  auto baseline = net_->QueryAndWait(querier, "//author", qopt);
  ASSERT_TRUE(baseline.ok());
  const auto expected = baseline.take().answers;

  // Crash the first replica an instant after the query starts: any pull
  // routed to it is lost in flight, NACKed by the client's per-attempt
  // timeout, and re-rolled — the crashed node is filtered out, so the
  // retry lands at the owner (or the surviving replica).
  const double t0 = net_->scheduler().Now();
  sim::FaultOptions fopts;
  fopts.seed = FaultSeed();
  net_->EnableFaults(fopts,
                     {sim::CrashEvent{t0 + 0.005, replicas[0], /*up=*/false}});

  std::optional<query::QueryResult> result;
  ASSERT_TRUE(net_->SubmitQuery(querier, "//author", qopt,
                                [&](query::QueryResult r) {
                                  result = std::move(r);
                                })
                  .ok());
  // Virtual-time watchdog: the retry budget bounds every path.
  net_->scheduler().RunUntil(t0 + 60.0);
  ASSERT_TRUE(result.has_value()) << "query hung after replica crash";
  EXPECT_TRUE(result->metrics.complete);
  EXPECT_FALSE(result->metrics.degraded);
  EXPECT_EQ(result->answers, expected);
  net_->RunToIdle();

  // Routing never offers the dead node again.
  for (int i = 0; i < 1000; ++i) {
    EXPECT_NE(net_->dht().replication().RouteGet(key_), replicas[0]);
  }
}

// ---------------------------------------------------------------------------
// Same-seed determinism with replication enabled: the full transcript
// (trace spans with virtual timestamps, every counter movement) replays
// byte for byte.

struct ReplDeterminismOutcome {
  size_t answers = 0;
  size_t replicated_keys = 0;
  std::string trace;
  std::string metrics_delta;

  friend bool operator==(const ReplDeterminismOutcome&,
                         const ReplDeterminismOutcome&) = default;
};

ReplDeterminismOutcome RunReplDeterminismScenario(uint64_t seed) {
  auto& tracer = obs::Tracer::Default();
  tracer.SetEnabled(true);
  tracer.Clear();
  obs::MetricRegistry::Default().Reset();
  const obs::MetricsSnapshot base = obs::MetricRegistry::Default().Snapshot();

  const auto docs = BaseCorpus();
  std::vector<const xml::Document*> ptrs;
  for (const auto& d : docs) ptrs.push_back(&d);

  KadopNet net(ReplNetOptions(true));
  net.RegisterDocuments(docs);
  net.PublishAndWait(2, ptrs);

  sim::FaultOptions fopts;
  fopts.seed = seed;
  fopts.drop_p = 0.03;
  fopts.dup_p = 0.02;
  fopts.jitter_mean_s = 0.002;
  net.EnableFaults(fopts);

  query::QueryOptions qopt;
  qopt.strategy = query::QueryStrategy::kDpp;
  qopt.fetch_retry.timeout_s = 0.5;
  qopt.fetch_retry.max_retries = 3;

  ReplDeterminismOutcome out;
  for (int round = 0; round < 6; ++round) {
    auto r = net.QueryAndWait(5, "//article//author", qopt);
    EXPECT_TRUE(r.ok());
    if (r.ok()) out.answers = r.take().answers.size();
  }
  out.replicated_keys = net.dht().replication().ReplicatedKeyCount();
  net.RunToIdle();

  out.trace = tracer.DumpText();
  out.metrics_delta =
      obs::MetricRegistry::Default().Snapshot().DiffSince(base).ToText();
  return out;
}

TEST(ReplicationDeterminismTest, SameSeedRunsAreByteIdentical) {
  const ReplDeterminismOutcome a = RunReplDeterminismScenario(FaultSeed());
  const ReplDeterminismOutcome b = RunReplDeterminismScenario(FaultSeed());
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.metrics_delta, b.metrics_delta);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.trace.empty());
  EXPECT_GT(a.answers, 0u);
}

}  // namespace
}  // namespace kadop
