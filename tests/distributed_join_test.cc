// Distributed block-level twig join (kDppJoin): answers must be
// byte-identical to kDpp while the query peer's posting ingress collapses
// to result tuples, task formation stays within the sum of surviving
// per-term block counts, and a crashed holder mid-BlockJoinRequest
// degrades into a per-task local fallback instead of a hang.

#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/kadop.h"
#include "dht/ring.h"
#include "index/terms.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "xml/corpus.h"

namespace kadop::query {
namespace {

using core::KadopNet;
using core::KadopOptions;

uint64_t FaultSeed() {
  const char* env = std::getenv("KADOP_FAULT_SEED");
  return env != nullptr ? std::strtoull(env, nullptr, 10) : 11;
}

class DistributedJoinTest : public ::testing::Test {
 protected:
  void SetUp() override {
    xml::corpus::DblpOptions copt;
    copt.target_bytes = 150 << 10;
    copt.doc_bytes = 8 << 10;
    docs_ = xml::corpus::GenerateDblp(copt);

    KadopOptions opt;
    opt.peers = 12;
    opt.dpp.max_block_postings = 256;  // force splits -> many block holders
    net_ = std::make_unique<KadopNet>(opt);
    net_->RegisterDocuments(docs_);
    std::vector<const xml::Document*> ptrs;
    for (const auto& d : docs_) ptrs.push_back(&d);
    net_->PublishAndWait(2, ptrs);
  }

  QueryResult RunQuery(const char* expr, QueryStrategy strategy) {
    QueryOptions options;
    options.strategy = strategy;
    options.dpp_join_available = true;
    auto result = net_->QueryAndWait(1, expr, options);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.take();
  }

  std::vector<xml::Document> docs_;
  std::unique_ptr<KadopNet> net_;
};

constexpr const char* kQueries[] = {
    "//article//author",
    "//article//author[. contains 'Ullman']",
    "//article[//journal]//year",
    "//inproceedings//booktitle",
    "//author",
};

TEST_F(DistributedJoinTest, AnswersByteIdenticalToDpp) {
  // Not just set equality: tasks partition the document window into
  // disjoint ascending intervals, so the merged answer stream must
  // reproduce kDpp's document-order output element for element.
  for (const char* expr : kQueries) {
    QueryResult dpp = RunQuery(expr, QueryStrategy::kDpp);
    QueryResult djoin = RunQuery(expr, QueryStrategy::kDppJoin);
    EXPECT_TRUE(djoin.metrics.complete) << expr;
    EXPECT_FALSE(djoin.metrics.degraded) << expr;
    EXPECT_EQ(djoin.answers, dpp.answers) << expr;
    EXPECT_EQ(djoin.matched_docs, dpp.matched_docs) << expr;
  }
}

TEST_F(DistributedJoinTest, QueryPeerIngressReducedAndTasksBounded) {
  const char* expr = "//article//author";
  QueryResult dpp = RunQuery(expr, QueryStrategy::kDpp);
  QueryResult djoin = RunQuery(expr, QueryStrategy::kDppJoin);
  ASSERT_FALSE(djoin.answers.empty());

  // The query peer receives answer tuples, never posting lists: its
  // posting ingress must drop by at least 2x vs kDpp (here: to zero,
  // since no task fell back to a local join).
  EXPECT_GT(dpp.metrics.posting_wire_bytes, 0u);
  EXPECT_LE(djoin.metrics.posting_wire_bytes * 2,
            dpp.metrics.posting_wire_bytes);
  EXPECT_EQ(djoin.metrics.posting_wire_bytes, 0u);
  EXPECT_EQ(djoin.metrics.postings_received, 0u);

  // Task bound of Section 4.3: at most one task per surviving block
  // (kDpp's blocks_fetched counts exactly the surviving blocks).
  EXPECT_GT(djoin.metrics.join_tasks, 0u);
  EXPECT_LE(djoin.metrics.join_tasks, dpp.metrics.blocks_fetched);

  // All tasks ran remotely and shipped result tuples back.
  EXPECT_EQ(djoin.metrics.join_remote, djoin.metrics.join_tasks);
  EXPECT_EQ(djoin.metrics.join_local_fallback, 0u);
  EXPECT_GT(djoin.metrics.join_result_postings, 0u);
  EXPECT_EQ(djoin.metrics.effective_strategy, QueryStrategy::kDppJoin);
}

TEST_F(DistributedJoinTest, HolderAccountingFoldsIntoQueryMetrics) {
  QueryResult djoin = RunQuery("//article//author", QueryStrategy::kDppJoin);
  // Holders fetched every surviving input block on the query's behalf.
  EXPECT_GT(djoin.metrics.blocks_fetched, 0u);
  const auto snap = obs::MetricRegistry::Default().Snapshot();
  auto counter = [&snap](const char* name) -> uint64_t {
    auto it = snap.counters.find(name);
    return it == snap.counters.end() ? 0 : it->second;
  };
  EXPECT_GT(counter("query.join.holder.tasks"), 0u);
  EXPECT_GT(counter("query.join.holder.ingress_postings"), 0u);
  EXPECT_GT(counter("query.join.holder.egress_result_bytes"), 0u);
}

TEST_F(DistributedJoinTest, EmptyAndProvablyEmptyQueries) {
  QueryResult r = RunQuery("//article//nonexistenttag",
                           QueryStrategy::kDppJoin);
  EXPECT_TRUE(r.answers.empty());
  EXPECT_TRUE(r.matched_docs.empty());
  EXPECT_TRUE(r.metrics.complete);
}

TEST_F(DistributedJoinTest, AutoPicksDppJoinOnlyWhenAvailable) {
  QueryOptions options;
  options.strategy = QueryStrategy::kAuto;
  options.dpp_join_available = true;
  auto with_flag = net_->QueryAndWait(1, "//article//author", options);
  ASSERT_TRUE(with_flag.ok());
  // Uniform lists: the distributed join dominates kDpp on both objectives
  // (the largest list never moves), so kAuto picks it when peers run the
  // BlockJoinService...
  EXPECT_EQ(with_flag.value().metrics.effective_strategy,
            QueryStrategy::kDppJoin);

  // ...and plans exactly as before when they do not.
  options.dpp_join_available = false;
  auto without_flag = net_->QueryAndWait(1, "//article//author", options);
  ASSERT_TRUE(without_flag.ok());
  EXPECT_EQ(without_flag.value().metrics.effective_strategy,
            QueryStrategy::kDpp);
  EXPECT_EQ(with_flag.value().answers, without_flag.value().answers);
}

TEST_F(DistributedJoinTest, CostModelOffersDppJoinOnlyWhenAvailable) {
  TreePattern pattern = ParsePattern("//article//author").take();
  QueryOptions options;
  const std::vector<uint64_t> counts{1000, 5000};
  auto has_join = [&](const std::vector<StrategyCostEstimate>& costs) {
    for (const auto& c : costs) {
      if (c.strategy == QueryStrategy::kDppJoin) return true;
    }
    return false;
  };
  EXPECT_FALSE(has_join(EstimateStrategyCosts(pattern, counts, options)));
  options.dpp_join_available = true;
  const auto costs = EstimateStrategyCosts(pattern, counts, options);
  ASSERT_TRUE(has_join(costs));
  for (const auto& c : costs) {
    if (c.strategy != QueryStrategy::kDppJoin) continue;
    // The largest list never moves: only the smaller lists' bytes remain.
    for (const auto& other : costs) {
      if (other.strategy == QueryStrategy::kDpp) {
        EXPECT_LT(c.bytes, other.bytes);
        EXPECT_LT(c.bottleneck_bytes, other.bottleneck_bytes);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Chaos: crash a home-block holder mid-BlockJoinRequest.

struct JoinChaosOutcome {
  bool finished_in_time = false;
  bool complete = false;
  bool degraded = false;
  bool answers_match_ground_truth = false;
  uint64_t tasks = 0;
  uint64_t remote = 0;
  uint64_t local_fallback = 0;
  std::string trace;
  std::string metrics_delta;

  friend bool operator==(const JoinChaosOutcome&,
                         const JoinChaosOutcome&) = default;
};

/// The single-term pattern makes every join task have exactly one input
/// block — its home — so the crashed holder's blocks are touched only by
/// the tasks homed there: those tasks (and only those) must fall back to
/// a query-side join, and with the holder revived inside the fallback's
/// retry window the final answers equal the fault-free ground truth.
JoinChaosOutcome RunJoinChaosScenario(uint64_t seed) {
  auto& tracer = obs::Tracer::Default();
  tracer.SetEnabled(true);
  tracer.Clear();
  obs::MetricRegistry::Default().Reset();
  const obs::MetricsSnapshot base = obs::MetricRegistry::Default().Snapshot();

  xml::corpus::DblpOptions copt;
  copt.target_bytes = 150 << 10;
  auto docs = xml::corpus::GenerateDblp(copt);

  KadopOptions opt;
  opt.peers = 12;
  opt.dpp.max_block_postings = 256;
  KadopNet net(opt);
  std::vector<const xml::Document*> ptrs;
  for (const auto& d : docs) ptrs.push_back(&d);
  net.PublishAndWait(2, ptrs);

  constexpr sim::NodeIndex kQuerier = 5;
  constexpr const char* kQuery = "//author";

  query::QueryOptions qopt;
  qopt.strategy = query::QueryStrategy::kDppJoin;
  qopt.dpp_join_available = true;

  // Fault-free ground truth.
  std::vector<Answer> expected;
  {
    auto baseline = net.QueryAndWait(kQuerier, kQuery, qopt);
    EXPECT_TRUE(baseline.ok());
    if (baseline.ok()) expected = baseline.take().answers;
  }
  EXPECT_FALSE(expected.empty());

  // Victim: the holder of an interior 'author' block — the home of the
  // join tasks covering that document interval.
  const std::string term = index::LabelKey("author");
  std::set<sim::NodeIndex> protected_nodes{2, kQuerier,
                                           net.dht().OwnerOf(
                                               dht::HashKey(term))};
  std::optional<sim::NodeIndex> victim;
  std::vector<index::DppBlockInfo> dir;
  index::DppManager::FetchDirectory(
      net.peer(0)->dht_peer(), term,
      [&](Status st, std::vector<index::DppBlockInfo> blocks) {
        EXPECT_TRUE(st.ok());
        dir = std::move(blocks);
      });
  net.RunToIdle();
  for (size_t i = 1; i + 1 < dir.size() && !victim.has_value(); ++i) {
    const sim::NodeIndex holder = net.dht().OwnerOf(dht::HashKey(dir[i].key));
    if (protected_nodes.count(holder) > 0) continue;
    victim = holder;
  }
  EXPECT_TRUE(victim.has_value()) << "corpus too small to pick a victim";
  JoinChaosOutcome out;
  if (!victim.has_value()) return out;

  // Crash mid-request. The ring re-stabilizes around the crash, so the
  // victim's key range is inherited by a data-less successor that answers
  // pulls with empty-but-"complete" lists: the holder's directory check
  // catches that and NACKs (complete=false), which forces the affected
  // tasks onto the query-side fallback. The fallback's own verified
  // re-pulls out-wait the outage: the victim revives at t0+1.0, rejoins
  // the ring with its store intact, and the second fallback attempt
  // (~t0+1.1) recovers the full data.
  sim::FaultOptions fopts;
  fopts.seed = seed;
  fopts.drop_p = 0.05;
  fopts.dup_p = 0.02;
  fopts.jitter_mean_s = 0.002;
  const double t0 = net.scheduler().Now();
  net.EnableFaults(fopts,
                   {sim::CrashEvent{t0 + 0.02, *victim, /*up=*/false},
                    sim::CrashEvent{t0 + 1.0, *victim, /*up=*/true}});

  qopt.fetch_retry.timeout_s = 0.5;
  qopt.fetch_retry.max_retries = 3;
  std::optional<query::QueryResult> result;
  EXPECT_TRUE(net.SubmitQuery(kQuerier, kQuery, qopt,
                              [&](query::QueryResult r) {
                                result = std::move(r);
                              })
                  .ok());
  // Virtual-time watchdog: every path is bounded by the retry budget, so
  // the query must resolve far earlier than this — crash or no crash.
  net.scheduler().RunUntil(t0 + 60.0);
  out.finished_in_time = result.has_value();
  EXPECT_TRUE(out.finished_in_time) << "kDppJoin hung under faults";
  if (result.has_value()) {
    out.complete = result->metrics.complete;
    out.degraded = result->metrics.degraded;
    out.tasks = result->metrics.join_tasks;
    out.remote = result->metrics.join_remote;
    out.local_fallback = result->metrics.join_local_fallback;
    out.answers_match_ground_truth = result->answers == expected;
    // Exact contract: the crash forced at least one per-task fallback,
    // the run says so (degraded), and the answers are still the complete
    // fault-free set (complete).
    EXPECT_GE(out.local_fallback, 1u);
    EXPECT_EQ(out.remote + out.local_fallback, out.tasks);
    EXPECT_TRUE(out.degraded);
    EXPECT_TRUE(out.complete);
    EXPECT_TRUE(out.answers_match_ground_truth);
  }
  net.RunToIdle();

  out.trace = tracer.DumpText();
  out.metrics_delta =
      obs::MetricRegistry::Default().Snapshot().DiffSince(base).ToText();
  return out;
}

TEST(DistributedJoinChaosTest, HolderCrashFallsBackPerTask) {
  const JoinChaosOutcome out = RunJoinChaosScenario(FaultSeed());
  EXPECT_TRUE(out.finished_in_time);
  EXPECT_TRUE(out.answers_match_ground_truth);
}

TEST(DistributedJoinChaosTest, SameSeedRunsAreByteIdentical) {
  const JoinChaosOutcome a = RunJoinChaosScenario(FaultSeed());
  const JoinChaosOutcome b = RunJoinChaosScenario(FaultSeed());
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.metrics_delta, b.metrics_delta);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.trace.empty());
}

}  // namespace
}  // namespace kadop::query
