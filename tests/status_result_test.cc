// Edge-case coverage for Status / Result<T> — the error-handling spine every
// DHT, store, and query path leans on.

#include "common/status.h"

#include <memory>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace kadop {
namespace {

// ---------------------------------------------------------------------------
// The [[nodiscard]] contract. There is no type trait for [[nodiscard]], so
// the enforcement test is the build itself: the library compiles with
// -Wall -Wextra -Werror, and a discarded Status/Result anywhere is a build
// break. The commented line below is the canonical "expected warning":
//
//   Status Fallible();
//   Fallible();   // error: ignoring return value of function declared
//                 // with 'nodiscard' attribute [-Werror=unused-result]
//
// What we can assert statically: the types stay cheap to move and Result
// rejects Status payloads (see static_assert in status.h).
static_assert(std::is_nothrow_move_constructible_v<Status>);
static_assert(std::is_nothrow_move_assignable_v<Status>);
static_assert(std::is_copy_constructible_v<Result<int>>);
static_assert(std::is_move_constructible_v<Result<std::unique_ptr<int>>>);
// A move-only payload makes the whole Result move-only — copying must not
// silently compile.
static_assert(!std::is_copy_constructible_v<Result<std::unique_ptr<int>>>);

TEST(StatusEdgeTest, DefaultIsOkAndEmpty) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_TRUE(st.message().empty());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusEdgeTest, EqualityIsCodeAndMessage) {
  EXPECT_EQ(Status::Timeout("rpc 12"), Status::Timeout("rpc 12"));
  EXPECT_NE(Status::Timeout("rpc 12"), Status::Timeout("rpc 13"));
  EXPECT_NE(Status::Timeout("x"), Status::Unavailable("x"));
  // operator!= is the negation of operator== (satellite: it used to be
  // missing entirely, so `a != b` fell back to rewritten != in C++20 only).
  EXPECT_TRUE(Status::OK() != Status::Internal(""));
  EXPECT_FALSE(Status::OK() != Status::OK());
}

TEST(StatusEdgeTest, DeadlineExceededFactoryAndPredicate) {
  const Status st = Status::DeadlineExceeded("get key=k retries=3");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(st.IsDeadlineExceeded());
  EXPECT_FALSE(Status::Timeout("x").IsDeadlineExceeded());
  EXPECT_STREQ(StatusCodeToString(StatusCode::kDeadlineExceeded),
               "DeadlineExceeded");
  EXPECT_EQ(st.ToString(), "DeadlineExceeded: get key=k retries=3");
}

TEST(StatusEdgeTest, MovedFromStatusIsReusable) {
  Status a = Status::Corruption("page 7");
  Status b = std::move(a);
  EXPECT_EQ(b, Status::Corruption("page 7"));
  a = Status::OK();  // reassignment after move must be safe
  EXPECT_TRUE(a.ok());
}

// ---------------------------------------------------------------------------
// Result<T> edges.

TEST(ResultEdgeTest, MoveOnlyPayloadViaTake) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(41));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> owned = r.take();
  ASSERT_NE(owned, nullptr);
  EXPECT_EQ(*owned, 41);
}

TEST(ResultEdgeTest, TakeMovesOutOfVectorPayload) {
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  ASSERT_TRUE(r.ok());
  std::vector<int> v = r.take();
  EXPECT_EQ(v.size(), 3u);
}

TEST(ResultEdgeTest, ValueOrOnError) {
  Result<int> err(Status::NotFound("no such key"));
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.value_or(-7), -7);
  EXPECT_EQ(err.status().code(), StatusCode::kNotFound);
}

TEST(ResultEdgeTest, ValueOrOnSuccessIgnoresFallback) {
  Result<std::string> okr(std::string("hit"));
  ASSERT_TRUE(okr.ok());
  EXPECT_EQ(okr.value_or("fallback"), "hit");
}

TEST(ResultEdgeTest, ErrorCarriesFullStatus) {
  Result<int> err(Status::Timeout("append to k"));
  EXPECT_EQ(err.status(), Status::Timeout("append to k"));
}

// Result<Status> is a contract violation caught at compile time by the
// static_assert in status.h; the "test" is that this line does not compile:
//
//   Result<Status> bad(Status::OK());   // error: Result<Status> is always
//                                       // a bug ...

// ---------------------------------------------------------------------------
// Propagation macros.

Result<int> ParsePositive(int raw) {
  if (raw <= 0) return Status::InvalidArgument("not positive");
  return raw;
}

Status UseAssignOrReturn(int raw, int* out) {
  KADOP_ASSIGN_OR_RETURN(int parsed, ParsePositive(raw));
  *out = parsed * 2;
  return Status::OK();
}

TEST(MacroTest, AssignOrReturnPropagatesError) {
  int out = 0;
  Status st = UseAssignOrReturn(-3, &out);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(out, 0);
}

TEST(MacroTest, AssignOrReturnAssignsOnSuccess) {
  int out = 0;
  Status st = UseAssignOrReturn(21, &out);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(out, 42);
}

Status UseAssignOrReturnMoveOnly(std::unique_ptr<int>* out) {
  auto make = []() -> Result<std::unique_ptr<int>> {
    return std::make_unique<int>(9);
  };
  KADOP_ASSIGN_OR_RETURN(*out, make());
  return Status::OK();
}

TEST(MacroTest, AssignOrReturnHandlesMoveOnly) {
  std::unique_ptr<int> out;
  ASSERT_TRUE(UseAssignOrReturnMoveOnly(&out).ok());
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 9);
}

TEST(MacroTest, ReturnIfErrorStillPropagates) {
  auto fn = []() -> Status {
    KADOP_RETURN_IF_ERROR(Status::Unavailable("peer down"));
    return Status::OK();
  };
  EXPECT_EQ(fn(), Status::Unavailable("peer down"));
}

}  // namespace
}  // namespace kadop
