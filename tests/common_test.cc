#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/hash.h"
#include "common/random.h"
#include "common/status.h"

namespace kadop {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
  EXPECT_EQ(st.code(), StatusCode::kOk);
}

TEST(StatusTest, ErrorFactoriesCarryCodeAndMessage) {
  Status st = Status::NotFound("missing key");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsNotFound());
  EXPECT_EQ(st.message(), "missing key");
  EXPECT_EQ(st.ToString(), "NotFound: missing key");

  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::Timeout("x").IsTimeout());
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_NE(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
  EXPECT_TRUE(Status::OK() == Status::OK());
  EXPECT_NE(Status::OK(), Status::NotFound(""));
}

Status Fails() { return Status::Corruption("bad"); }
Status Propagates() {
  KADOP_RETURN_IF_ERROR(Fails());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_EQ(Propagates().code(), StatusCode::kCorruption);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, TakeMovesValue) {
  Result<std::string> r(std::string("hello"));
  std::string s = r.take();
  EXPECT_EQ(s, "hello");
}

TEST(HashTest, Fnv1aIsDeterministicAndSpreads) {
  EXPECT_EQ(Fnv1a64("author"), Fnv1a64("author"));
  EXPECT_NE(Fnv1a64("author"), Fnv1a64("title"));
  EXPECT_NE(Fnv1a64(""), Fnv1a64("a"));
}

TEST(HashTest, Mix64AvoidsFixedPointsOnSmallInputs) {
  std::set<uint64_t> outputs;
  for (uint64_t i = 0; i < 1000; ++i) outputs.insert(Mix64(i));
  EXPECT_EQ(outputs.size(), 1000u);
}

TEST(HashTest, BloomHashFamilyDiffersByIndex) {
  const uint64_t base = 0x1234abcd;
  EXPECT_NE(BloomHash(base, 0), BloomHash(base, 1));
  EXPECT_NE(BloomHash(base, 1), BloomHash(base, 2));
  EXPECT_EQ(BloomHash(base, 3), BloomHash(base, 3));
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(42), b(42), c(43);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(10), 10u);
  }
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(5);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += rng.Bernoulli(0.3);
  EXPECT_NEAR(heads / 10000.0, 0.3, 0.03);
}

TEST(RngTest, ExponentialHasRoughlyRightMean) {
  Rng rng(13);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / n, 2.0, 0.1);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(3);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(ZipfTest, SkewsTowardLowRanks) {
  Rng rng(17);
  ZipfSampler zipf(100, 1.0);
  std::map<size_t, int> counts;
  for (int i = 0; i < 20000; ++i) counts[zipf.Sample(rng)]++;
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], 20000 / 100);  // far above uniform share
}

TEST(ZipfTest, ZeroExponentIsRoughlyUniform) {
  Rng rng(19);
  ZipfSampler zipf(10, 0.0);
  std::map<size_t, int> counts;
  for (int i = 0; i < 20000; ++i) counts[zipf.Sample(rng)]++;
  for (const auto& [rank, count] : counts) {
    EXPECT_NEAR(count, 2000, 300) << "rank " << rank;
  }
}

class ZipfSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfSweepTest, SamplesStayInRange) {
  Rng rng(23);
  ZipfSampler zipf(50, GetParam());
  for (int i = 0; i < 5000; ++i) {
    EXPECT_LT(zipf.Sample(rng), 50u);
  }
}

INSTANTIATE_TEST_SUITE_P(Exponents, ZipfSweepTest,
                         ::testing::Values(0.0, 0.5, 0.9, 1.0, 1.2, 2.0));

}  // namespace
}  // namespace kadop
