// Seeded chaos harness: publish a corpus fault-free, then crash DPP block
// holders mid-query while the network drops and duplicates messages. Every
// query must terminate inside a virtual-time watchdog window with either
// the full answer set or an explicit incomplete/degraded result — never a
// hang. Restarting the crashed peers (stores intact) must restore full
// answers. The whole scenario is byte-identical across same-seed runs.
//
// The fault seed comes from KADOP_FAULT_SEED when set (the CI chaos job
// sweeps several), defaulting to 11.

#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/kadop.h"
#include "dht/ring.h"
#include "index/terms.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "xml/corpus.h"

namespace kadop {
namespace {

uint64_t FaultSeed() {
  const char* env = std::getenv("KADOP_FAULT_SEED");
  return env != nullptr ? std::strtoull(env, nullptr, 10) : 11;
}

constexpr sim::NodeIndex kPublisher = 2;
constexpr sim::NodeIndex kQuerier = 5;
constexpr const char* kQuery = "//article//author";

struct ChaosOutcome {
  bool finished_in_time = false;
  bool complete = false;
  bool degraded = false;
  size_t answers = 0;
  size_t expected_answers = 0;
  bool recovered_complete = false;
  size_t recovered_answers = 0;
  std::string trace;
  std::string metrics_delta;

  friend bool operator==(const ChaosOutcome&, const ChaosOutcome&) = default;
};

/// One full crash-and-recover scenario. Self-contained and deterministic:
/// everything observable (virtual times, traces, metric deltas) depends
/// only on `seed`.
ChaosOutcome RunChaosScenario(uint64_t seed) {
  auto& tracer = obs::Tracer::Default();
  tracer.SetEnabled(true);
  tracer.Clear();
  // Zero the registry (not just snapshot-and-diff): histogram sums are
  // running double accumulations, and subtracting two different bases can
  // differ in the last ulp. From zero, both runs add the same values in
  // the same order and the dumps match byte for byte.
  obs::MetricRegistry::Default().Reset();
  const obs::MetricsSnapshot base = obs::MetricRegistry::Default().Snapshot();

  xml::corpus::DblpOptions copt;
  copt.target_bytes = 150 << 10;
  auto docs = xml::corpus::GenerateDblp(copt);

  core::KadopOptions opt;
  opt.peers = 12;
  opt.dpp.max_block_postings = 256;  // force splits -> many block holders
  core::KadopNet net(opt);
  std::vector<const xml::Document*> ptrs;
  for (const auto& d : docs) ptrs.push_back(&d);
  net.PublishAndWait(kPublisher, ptrs);

  query::QueryOptions qopt;
  qopt.strategy = query::QueryStrategy::kDpp;

  // Fault-free baseline: the answer set the index must reproduce.
  ChaosOutcome out;
  {
    auto baseline = net.QueryAndWait(kQuerier, kQuery, qopt);
    EXPECT_TRUE(baseline.ok());
    if (baseline.ok()) out.expected_answers = baseline.value().answers.size();
  }

  // Pick crash victims among the holders of interior DPP blocks of the
  // query's terms (interior blocks sit inside the [min, max] window, so a
  // holder that dies is *detectably* missing data).
  std::set<sim::NodeIndex> protected_nodes{kPublisher, kQuerier};
  std::vector<sim::NodeIndex> victims;
  for (const std::string& term :
       {index::LabelKey("article"), index::LabelKey("author")}) {
    protected_nodes.insert(net.dht().OwnerOf(dht::HashKey(term)));
  }
  for (const std::string& term :
       {index::LabelKey("article"), index::LabelKey("author")}) {
    std::vector<index::DppBlockInfo> dir;
    index::DppManager::FetchDirectory(
        net.peer(0)->dht_peer(), term,
        [&](Status st, std::vector<index::DppBlockInfo> blocks) {
          EXPECT_TRUE(st.ok());
          dir = std::move(blocks);
        });
    net.RunToIdle();
    for (size_t i = 1; i + 1 < dir.size() && victims.size() < 2; ++i) {
      const sim::NodeIndex holder =
          net.dht().OwnerOf(dht::HashKey(dir[i].key));
      if (protected_nodes.count(holder) > 0) continue;
      protected_nodes.insert(holder);
      victims.push_back(holder);
    }
  }
  EXPECT_EQ(victims.size(), 2u) << "corpus too small to pick crash victims";

  // Faults on: lossy links plus two crashes mid-query.
  sim::FaultOptions fopts;
  fopts.seed = seed;
  fopts.drop_p = 0.08;
  fopts.dup_p = 0.02;
  const double t0 = net.scheduler().Now();
  std::vector<sim::CrashEvent> schedule;
  for (size_t i = 0; i < victims.size(); ++i) {
    schedule.push_back(
        sim::CrashEvent{t0 + 0.02 + 0.02 * static_cast<double>(i),
                        victims[i], /*up=*/false});
  }
  net.EnableFaults(fopts, schedule);

  qopt.fetch_retry.timeout_s = 0.5;
  qopt.fetch_retry.max_retries = 3;
  std::optional<query::QueryResult> result;
  EXPECT_TRUE(net.SubmitQuery(kQuerier, kQuery, qopt,
                              [&](query::QueryResult r) {
                                result = std::move(r);
                              })
                  .ok());
  // Virtual-time watchdog: the retry budget bounds every code path, so the
  // query must resolve well before this deadline even with both crashes.
  net.scheduler().RunUntil(t0 + 60.0);
  out.finished_in_time = result.has_value();
  EXPECT_TRUE(out.finished_in_time) << "query hung under faults";
  if (result.has_value()) {
    out.complete = result->metrics.complete;
    out.degraded = result->metrics.degraded;
    out.answers = result->answers.size();
    if (out.complete) {
      // Full termination: the exact fault-free answer set.
      EXPECT_EQ(out.answers, out.expected_answers);
    } else {
      // Explicit partial answers: a sound subset, flagged as such.
      EXPECT_TRUE(out.degraded);
      EXPECT_LE(out.answers, out.expected_answers);
    }
  }

  // Recovery: restart the crashed peers (stores intact), lift the faults,
  // and the full answer set comes back.
  net.RunToIdle();
  net.DisableFaults();
  for (const sim::NodeIndex v : victims) net.RestartPeerAndStabilize(v);
  auto after = net.QueryAndWait(kQuerier, kQuery, qopt);
  EXPECT_TRUE(after.ok());
  if (after.ok()) {
    out.recovered_complete = after.value().metrics.complete;
    out.recovered_answers = after.value().answers.size();
    EXPECT_TRUE(out.recovered_complete);
    EXPECT_EQ(out.recovered_answers, out.expected_answers);
  }

  out.trace = tracer.DumpText();
  out.metrics_delta =
      obs::MetricRegistry::Default().Snapshot().DiffSince(base).ToText();
  return out;
}

TEST(ChaosRecoveryTest, CrashedHoldersDegradeGracefullyAndRecover) {
  const ChaosOutcome out = RunChaosScenario(FaultSeed());
  EXPECT_TRUE(out.finished_in_time);
  EXPECT_TRUE(out.recovered_complete);
  EXPECT_GT(out.expected_answers, 0u);
}

// Regression for the posting-cache staleness contract: with faults
// duplicating and jittering messages (so appends arrive as retried /
// duplicated AppendRequests), a query peer whose cache is warm must never
// serve pre-append results after new documents are published — the store
// version bump (which ignores byte-identical duplicate appends) has to
// invalidate exactly the entries whose data actually changed.
TEST(ChaosRecoveryTest, CacheNeverServesPreAppendResultsUnderFaults) {
  obs::MetricRegistry::Default().Reset();
  xml::corpus::DblpOptions copt;
  copt.target_bytes = 80 << 10;
  auto docs = xml::corpus::GenerateDblp(copt);
  copt.seed = 77;
  copt.target_bytes = 40 << 10;
  auto extra = xml::corpus::GenerateDblp(copt);

  core::KadopOptions opt;
  opt.peers = 10;
  // Retry-capable publishes: batches carry dedup ids, so the duplicated
  // AppendRequests below apply at most once (the at-most-once contract
  // from docs/fault_injection.md).
  opt.publish.append_retry.timeout_s = 0.5;
  opt.publish.append_retry.max_retries = 3;
  core::KadopNet net(opt);
  std::vector<const xml::Document*> ptrs;
  for (const auto& d : docs) ptrs.push_back(&d);
  net.PublishAndWait(kPublisher, ptrs);

  // Duplication + jitter only (no drops): every message eventually
  // arrives, some twice — the dup-append path the version bump must not
  // misread as a data change, and retried fetches the cache must survive.
  sim::FaultOptions fopts;
  fopts.seed = FaultSeed();
  fopts.dup_p = 0.2;
  fopts.jitter_mean_s = 0.002;
  net.EnableFaults(fopts);

  query::QueryOptions cached;
  cached.strategy = query::QueryStrategy::kDpp;
  cached.cache_postings = true;
  cached.fetch_retry.timeout_s = 0.5;
  cached.fetch_retry.max_retries = 3;
  query::QueryOptions uncached = cached;
  uncached.cache_postings = false;

  auto warm = net.QueryAndWait(kQuerier, kQuery, cached);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm.value().metrics.complete);
  const size_t pre_append_answers = warm.value().answers.size();
  EXPECT_GT(pre_append_answers, 0u);

  // Append under active faults: the new postings flow through duplicated
  // and delayed AppendRequests.
  std::vector<const xml::Document*> extra_ptrs;
  for (const auto& d : extra) extra_ptrs.push_back(&d);
  net.PublishAndWait(kPublisher, extra_ptrs);

  auto after_cached = net.QueryAndWait(kQuerier, kQuery, cached);
  auto after_fresh = net.QueryAndWait(kQuerier, kQuery, uncached);
  ASSERT_TRUE(after_cached.ok());
  ASSERT_TRUE(after_fresh.ok());
  EXPECT_TRUE(after_cached.value().metrics.complete);
  // The cached run must match ground truth exactly — never the pre-append
  // answer set.
  EXPECT_EQ(after_cached.value().answers.size(),
            after_fresh.value().answers.size());
  EXPECT_EQ(after_cached.value().matched_docs.size(),
            after_fresh.value().matched_docs.size());
  EXPECT_GT(after_cached.value().answers.size(), pre_append_answers);
}

// Views under chaos: appends ride dropped, duplicated and jittered links
// while a materialized view is registered. A view-served re-query must
// equal fresh ground truth — never the pre-append extent. When the delta
// stream loses an ack the freshness guard trips and the query falls back;
// serving a stale extent is the one outcome that must never happen.
TEST(ChaosRecoveryTest, ViewsNeverServePreAppendExtentsUnderFaults) {
  obs::MetricRegistry::Default().Reset();
  xml::corpus::DblpOptions copt;
  copt.target_bytes = 80 << 10;
  auto docs = xml::corpus::GenerateDblp(copt);
  copt.seed = 77;
  copt.target_bytes = 40 << 10;
  auto extra = xml::corpus::GenerateDblp(copt);

  core::KadopOptions opt;
  opt.peers = 10;
  opt.views.enabled = true;
  // Retry-capable publishes: base batches and view deltas carry dedup ids,
  // so duplicated AppendRequests apply at most once and dropped ones are
  // retried until the ack lands.
  opt.publish.append_retry.timeout_s = 0.5;
  opt.publish.append_retry.max_retries = 5;
  core::KadopNet net(opt);
  std::vector<const xml::Document*> ptrs;
  for (const auto& d : docs) ptrs.push_back(&d);
  net.PublishAndWait(kPublisher, ptrs);
  ASSERT_TRUE(net.CreateViewAndWait(kQuery, "chaos").ok());

  sim::FaultOptions fopts;
  fopts.seed = FaultSeed();
  fopts.drop_p = 0.02;
  fopts.dup_p = 0.2;
  fopts.jitter_mean_s = 0.002;
  net.EnableFaults(fopts);

  query::QueryOptions vopt;
  vopt.strategy = query::QueryStrategy::kView;
  vopt.fetch_retry.timeout_s = 0.5;
  vopt.fetch_retry.max_retries = 5;
  query::QueryOptions fresh = vopt;
  fresh.strategy = query::QueryStrategy::kDpp;

  auto warm = net.QueryAndWait(kQuerier, kQuery, vopt);
  ASSERT_TRUE(warm.ok());
  const size_t pre_append_answers = warm.value().answers.size();
  EXPECT_GT(pre_append_answers, 0u);

  // Append under active faults: base postings and view deltas both flow
  // through the lossy links.
  std::vector<const xml::Document*> extra_ptrs;
  for (const auto& d : extra) extra_ptrs.push_back(&d);
  net.PublishAndWait(kPublisher, extra_ptrs);
  net.SyncViews();

  auto after_view = net.QueryAndWait(kQuerier, kQuery, vopt);
  auto after_fresh = net.QueryAndWait(kQuerier, kQuery, fresh);
  ASSERT_TRUE(after_view.ok());
  ASSERT_TRUE(after_fresh.ok());
  EXPECT_TRUE(after_fresh.value().metrics.complete);
  // Hit or guarded fallback — either way, fresh ground truth, not the
  // pre-append extent.
  EXPECT_EQ(after_view.value().answers, after_fresh.value().answers);
  EXPECT_EQ(after_view.value().matched_docs,
            after_fresh.value().matched_docs);
  EXPECT_GT(after_view.value().answers.size(), pre_append_answers);
}

// A crashed extent-column holder must never serve a short column: the
// count verification (or the version oracle) trips and the query falls
// back to kDppJoin with degraded accounting — same answers as running
// kDppJoin directly against the surviving index, and never a hang.
// Restarting the holder (store intact) restores view serving.
TEST(ChaosRecoveryTest, ViewColumnHolderCrashFallsBackToDppJoin) {
  obs::MetricRegistry::Default().Reset();
  xml::corpus::DblpOptions copt;
  copt.target_bytes = 80 << 10;
  auto docs = xml::corpus::GenerateDblp(copt);

  core::KadopOptions opt;
  opt.peers = 12;
  opt.views.enabled = true;
  core::KadopNet net(opt);
  std::vector<const xml::Document*> ptrs;
  for (const auto& d : docs) ptrs.push_back(&d);
  net.PublishAndWait(kPublisher, ptrs);
  ASSERT_TRUE(net.CreateViewAndWait(kQuery, "crashme").ok());

  query::QueryOptions vopt;
  vopt.strategy = query::QueryStrategy::kView;
  vopt.dpp_join_available = true;
  vopt.fetch_retry.timeout_s = 0.5;
  vopt.fetch_retry.max_retries = 3;
  ASSERT_TRUE(net.QueryAndWait(kQuerier, kQuery, vopt).value().metrics
                  .view_hit);

  // Crash the owner of the view's first extent column (avoiding the
  // querier so the query-side state survives).
  const query::ViewCatalog::Entry* entry = net.views().Find("crashme");
  ASSERT_NE(entry, nullptr);
  const sim::NodeIndex victim =
      net.dht().OwnerOf(dht::HashKey(entry->def.ColumnKey(0)));
  ASSERT_NE(victim, kQuerier);
  net.FailPeerAndStabilize(victim);

  auto fallen = net.QueryAndWait(kQuerier, kQuery, vopt);
  ASSERT_TRUE(fallen.ok());
  EXPECT_FALSE(fallen.value().metrics.view_hit);
  EXPECT_TRUE(fallen.value().metrics.view_fallback);
  EXPECT_TRUE(fallen.value().metrics.degraded);
  EXPECT_EQ(fallen.value().metrics.effective_strategy,
            query::QueryStrategy::kDppJoin);

  query::QueryOptions jopt = vopt;
  jopt.strategy = query::QueryStrategy::kDppJoin;
  auto direct = net.QueryAndWait(kQuerier, kQuery, jopt);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(fallen.value().answers, direct.value().answers);

  // Crash-stop with durable storage: the restarted holder brings the
  // column back, and a resync re-arms the extent.
  net.RestartPeerAndStabilize(victim);
  net.SyncViews();
  auto healed = net.QueryAndWait(kQuerier, kQuery, vopt);
  ASSERT_TRUE(healed.ok());
  EXPECT_TRUE(healed.value().metrics.view_hit);
  EXPECT_TRUE(healed.value().metrics.complete);
  EXPECT_FALSE(healed.value().metrics.degraded);
}

// Flash crowd with hot-data replication on, under lossy links: a burst of
// concurrent queries slams one term while messages drop, duplicate and
// jitter. Every query must resolve inside the virtual-time watchdog with
// either the full answer set or an explicitly incomplete (degraded) one —
// replication must never turn the overload into a hang or a silent wrong
// answer.
TEST(ChaosRecoveryTest, FlashCrowdWithReplicationUnderFaults) {
  obs::MetricRegistry::Default().Reset();
  xml::corpus::DblpOptions copt;
  copt.target_bytes = 100 << 10;
  auto docs = xml::corpus::GenerateDblp(copt);

  core::KadopOptions opt;
  opt.peers = 12;
  opt.dht.repl.enabled = true;
  opt.dht.repl.replicas = 2;
  opt.dht.repl.window_s = 0.5;
  opt.dht.repl.hot_gets_per_window = 4;
  opt.dht.repl.hot_windows = 2;
  opt.dht.repl.cool_gets_per_window = 0;
  opt.dht.repl.cool_windows = 100;
  core::KadopNet net(opt);
  std::vector<const xml::Document*> ptrs;
  for (const auto& d : docs) ptrs.push_back(&d);
  net.PublishAndWait(kPublisher, ptrs);

  query::QueryOptions qopt;
  qopt.strategy = query::QueryStrategy::kDpp;
  qopt.fetch_retry.timeout_s = 0.5;
  qopt.fetch_retry.max_retries = 3;

  // Fault-free ground truth, then deterministic promotion of the hot term
  // so the crowd actually hits replica-served paths.
  size_t expected_answers = 0;
  {
    auto baseline = net.QueryAndWait(kQuerier, "//author", qopt);
    ASSERT_TRUE(baseline.ok());
    expected_answers = baseline.value().answers.size();
    ASSERT_GT(expected_answers, 0u);
  }
  auto& repl = net.dht().replication();
  const std::string hot_key = index::LabelKey("author");
  double now = 0.0;
  repl.MaybeTick(now);
  for (int w = 0; w < 2; ++w) {
    for (int i = 0; i < 10; ++i) repl.RecordKeyGet(hot_key);
    now += 1.0;
    repl.MaybeTick(now);
  }
  net.RunToIdle();
  ASSERT_TRUE(repl.IsReplicated(hot_key));

  sim::FaultOptions fopts;
  fopts.seed = FaultSeed();
  fopts.drop_p = 0.05;
  fopts.dup_p = 0.02;
  fopts.jitter_mean_s = 0.002;
  net.EnableFaults(fopts);

  constexpr int kCrowd = 20;
  const double t0 = net.scheduler().Now();
  std::vector<std::optional<query::QueryResult>> results(kCrowd);
  for (int i = 0; i < kCrowd; ++i) {
    const auto at = static_cast<sim::NodeIndex>(i % opt.peers);
    ASSERT_TRUE(net.SubmitQuery(at, "//author", qopt,
                                [&results, i](query::QueryResult r) {
                                  results[i] = std::move(r);
                                })
                    .ok());
  }
  // Virtual-time watchdog: the per-fetch retry budget bounds every path,
  // crowd or no crowd — nothing may still be pending at the deadline.
  net.scheduler().RunUntil(t0 + 120.0);
  for (int i = 0; i < kCrowd; ++i) {
    ASSERT_TRUE(results[i].has_value()) << "query " << i << " hung";
    const query::QueryResult& r = *results[i];
    if (r.metrics.complete) {
      // Full termination: the exact fault-free answer set.
      EXPECT_EQ(r.answers.size(), expected_answers) << "query " << i;
    } else {
      // Explicitly incomplete: flagged degraded, sound subset.
      EXPECT_TRUE(r.metrics.degraded) << "query " << i;
      EXPECT_LE(r.answers.size(), expected_answers) << "query " << i;
    }
  }
  net.RunToIdle();
  net.DisableFaults();

  // Fault-free again: the crowd left no residue; answers are whole.
  auto after = net.QueryAndWait(kQuerier, "//author", qopt);
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after.value().metrics.complete);
  EXPECT_EQ(after.value().answers.size(), expected_answers);
}

TEST(ChaosRecoveryTest, SameSeedRunsAreByteIdentical) {
  const ChaosOutcome a = RunChaosScenario(FaultSeed());
  const ChaosOutcome b = RunChaosScenario(FaultSeed());
  // Trace dumps and metric deltas are full transcripts of the run (every
  // span with virtual timestamps, every counter movement): equality here is
  // the byte-identical replay guarantee.
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.metrics_delta, b.metrics_delta);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.trace.empty());
}

}  // namespace
}  // namespace kadop
