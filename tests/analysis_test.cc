// Tests for pattern analysis (index-query completeness/precision,
// Section 2), the brutal broadcast fallback, and Doc-relation lookups.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/kadop.h"
#include "xml/corpus.h"

namespace kadop::query {
namespace {

TreePattern MustParse(const char* expr) {
  auto result = ParsePattern(expr);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.take();
}

TEST(PatternAnalysisTest, PlainPatternsAreCompleteAndPrecise) {
  for (const char* expr :
       {"//article//author", "//a[//b]//c[. contains 'word']"}) {
    PatternAnalysis a = AnalyzePattern(MustParse(expr));
    EXPECT_TRUE(a.complete) << expr;
    EXPECT_TRUE(a.precise) << expr;
    EXPECT_TRUE(a.notes.empty());
  }
}

TEST(PatternAnalysisTest, WildcardsLosePrecision) {
  PatternAnalysis a = AnalyzePattern(MustParse("//*[contains(.,'xml')]//title"));
  EXPECT_TRUE(a.complete);
  EXPECT_FALSE(a.precise);
  EXPECT_NE(a.notes.find("wildcard"), std::string::npos);
}

TEST(PatternAnalysisTest, StopWordsLoseCompleteness) {
  // Single-character words fall under the default indexing cutoff (2).
  PatternAnalysis a = AnalyzePattern(MustParse("//p[. contains 'a']"));
  EXPECT_FALSE(a.complete);
  EXPECT_TRUE(a.precise);
  EXPECT_NE(a.notes.find("stop-word"), std::string::npos);
  // With a cutoff of 1 the same pattern is fine.
  EXPECT_TRUE(AnalyzePattern(MustParse("//p[. contains 'a']"), 1).complete);
}

class BroadcastTest : public ::testing::Test {
 protected:
  void SetUp() override {
    xml::corpus::DblpOptions copt;
    copt.target_bytes = 50 << 10;
    docs_ = xml::corpus::GenerateDblp(copt);
    core::KadopOptions opt;
    opt.peers = 8;
    net_ = std::make_unique<core::KadopNet>(opt);
    std::vector<const xml::Document*> ptrs;
    for (const auto& d : docs_) ptrs.push_back(&d);
    net_->PublishAndWait(2, ptrs);
  }
  std::vector<xml::Document> docs_;
  std::unique_ptr<core::KadopNet> net_;
};

TEST_F(BroadcastTest, BroadcastMatchesIndexedTwoPhaseQuery) {
  const char* expr = "//article//author[. contains 'Ullman']";
  QueryOptions qopt;
  auto indexed = net_->QueryDocumentsAndWait(1, expr, qopt);
  ASSERT_TRUE(indexed.ok());
  auto broadcast = net_->BroadcastQueryAndWait(1, expr);
  ASSERT_TRUE(broadcast.ok());
  auto sorted = [](std::vector<Answer> v) {
    std::sort(v.begin(), v.end(), [](const Answer& a, const Answer& b) {
      if (a.doc != b.doc) return a.doc < b.doc;
      return a.elements < b.elements;
    });
    return v;
  };
  EXPECT_EQ(sorted(broadcast.value().final_answers),
            sorted(indexed.value().final_answers));
}

TEST_F(BroadcastTest, BroadcastHandlesWildcardQueries) {
  // The distributed index rejects this; broadcast answers it.
  auto broadcast =
      net_->BroadcastQueryAndWait(0, "//*[contains(.,'ullman')]//year");
  ASSERT_TRUE(broadcast.ok());
  EXPECT_FALSE(broadcast.value().final_answers.empty());
}

TEST_F(BroadcastTest, BroadcastCostsMoreQueryTraffic) {
  net_->network().ResetTraffic();
  QueryOptions qopt;
  ASSERT_TRUE(
      net_->QueryAndWait(1, "//article//author[. contains 'Ullman']", qopt)
          .ok());
  const uint64_t indexed_query_bytes = net_->network().traffic().
      CategoryBytes(sim::TrafficCategory::kQuery);
  net_->network().ResetTraffic();
  ASSERT_TRUE(
      net_->BroadcastQueryAndWait(1, "//article//author[. contains 'Ullman']")
          .ok());
  const uint64_t broadcast_query_bytes = net_->network().traffic().
      CategoryBytes(sim::TrafficCategory::kQuery);
  EXPECT_GT(broadcast_query_bytes, indexed_query_bytes);
}

TEST_F(BroadcastTest, ExplainReportsCountsAndPick) {
  query::QueryOptions options;
  auto explained = net_->ExplainQueryAndWait(
      1, "//article//author[. contains 'Ullman']", options);
  ASSERT_TRUE(explained.ok()) << explained.status().ToString();
  const std::string& text = explained.value();
  EXPECT_NE(text.find("l:article"), std::string::npos);
  EXPECT_NE(text.find("l:author"), std::string::npos);
  EXPECT_NE(text.find("w:ullman"), std::string::npos);
  EXPECT_NE(text.find("complete, precise"), std::string::npos);
  EXPECT_NE(text.find("auto would run: subquery-reducer"),
            std::string::npos)
      << text;
  // Parse errors surface as Status.
  EXPECT_FALSE(net_->ExplainQueryAndWait(1, "//a[", options).ok());
}

TEST_F(BroadcastTest, DocUriLookup) {
  auto uri = net_->LookupDocUriAndWait(5, index::DocId{2, 0});
  ASSERT_TRUE(uri.ok()) << uri.status().ToString();
  EXPECT_EQ(uri.value(), docs_[0].uri);
  auto missing = net_->LookupDocUriAndWait(5, index::DocId{7, 123});
  EXPECT_FALSE(missing.ok());
  EXPECT_TRUE(missing.status().IsNotFound());
}

}  // namespace
}  // namespace kadop::query
