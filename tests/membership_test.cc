// Tests for index maintenance and membership changes: document unpublish
// (delete + reinsert update model), DPP-aware deletes, peer join with
// key-range handoff, and the auto strategy.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/kadop.h"
#include "dht/ring.h"
#include "xml/corpus.h"

namespace kadop::core {
namespace {

using query::Answer;
using query::QueryOptions;
using query::QueryStrategy;

std::vector<Answer> Sorted(std::vector<Answer> v) {
  std::sort(v.begin(), v.end(), [](const Answer& a, const Answer& b) {
    if (a.doc != b.doc) return a.doc < b.doc;
    return a.elements < b.elements;
  });
  return v;
}

class MembershipTest : public ::testing::Test {
 protected:
  void SetUp() override {
    xml::corpus::DblpOptions copt;
    copt.target_bytes = 120 << 10;
    copt.doc_bytes = 6 << 10;
    docs_ = xml::corpus::GenerateDblp(copt);

    KadopOptions opt;
    opt.peers = 10;
    opt.dpp.max_block_postings = 256;  // force partitioning
    net_ = std::make_unique<KadopNet>(opt);
    std::vector<const xml::Document*> ptrs;
    for (const auto& d : docs_) ptrs.push_back(&d);
    net_->PublishAndWait(2, ptrs);
  }

  std::vector<Answer> Query(const char* expr,
                            QueryStrategy strategy = QueryStrategy::kDpp) {
    QueryOptions qopt;
    qopt.strategy = strategy;
    auto result = net_->QueryAndWait(1, expr, qopt);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_TRUE(result.value().metrics.complete);
    return result.value().answers;
  }

  std::vector<xml::Document> docs_;
  std::unique_ptr<KadopNet> net_;
};

TEST_F(MembershipTest, UnpublishRemovesDocumentFromAllStrategies) {
  const char* expr = "//article//author";
  auto before = Query(expr);
  ASSERT_FALSE(before.empty());

  // Withdraw document 0 of the publisher (peer 2).
  ASSERT_TRUE(net_->UnpublishAndWait(2, 0));

  for (QueryStrategy strategy :
       {QueryStrategy::kDpp, QueryStrategy::kBaseline,
        QueryStrategy::kDbReducer}) {
    auto after = Query(expr, strategy);
    EXPECT_LT(after.size(), before.size());
    for (const Answer& a : after) {
      EXPECT_FALSE(a.doc == (index::DocId{2, 0}))
          << "answer from the unpublished document survived ("
          << query::QueryStrategyName(strategy) << ")";
    }
    // Everything else is untouched.
    std::vector<Answer> expected;
    for (const Answer& a : before) {
      if (!(a.doc == index::DocId{2, 0})) expected.push_back(a);
    }
    EXPECT_EQ(Sorted(after), Sorted(expected));
  }
}

TEST_F(MembershipTest, UnpublishUnknownSeqFails) {
  EXPECT_FALSE(net_->UnpublishAndWait(2, 999999));
  EXPECT_FALSE(net_->UnpublishAndWait(3, 0));  // peer 3 published nothing
}

TEST_F(MembershipTest, UnpublishThenRepublishIsModification) {
  const char* expr = "//article//author";
  auto before = Query(expr);
  ASSERT_TRUE(net_->UnpublishAndWait(2, 0));
  // Re-publish the same document (gets a fresh sequence id).
  net_->PublishAndWait(2, {&docs_[0]});
  auto after = Query(expr);
  EXPECT_EQ(after.size(), before.size());
}

TEST_F(MembershipTest, JoinedPeerTakesOverKeysWithoutLosingAnswers) {
  const char* expr = "//article//author[. contains 'Ullman']";
  auto before = Query(expr);
  ASSERT_FALSE(before.empty());

  // Grow the network; every join hands off the keys that change owner.
  std::vector<sim::NodeIndex> joined;
  for (int i = 0; i < 6; ++i) joined.push_back(net_->JoinPeerAndWait());
  EXPECT_EQ(net_->PeerCount(), 16u);

  for (QueryStrategy strategy :
       {QueryStrategy::kDpp, QueryStrategy::kBaseline,
        QueryStrategy::kDbReducer}) {
    EXPECT_EQ(Sorted(Query(expr, strategy)), Sorted(before))
        << query::QueryStrategyName(strategy);
  }

  // At least one joined peer actually received keys (6 joins over a
  // 10-peer ring shift ~1/3 of the key space).
  size_t moved = 0;
  for (sim::NodeIndex node : joined) {
    moved += net_->peer(node)->dht_peer()->store()->TotalPostings();
  }
  EXPECT_GT(moved, 0u);
}

TEST_F(MembershipTest, QueriesFromJoinedPeerWork) {
  const sim::NodeIndex node = net_->JoinPeerAndWait();
  QueryOptions qopt;
  qopt.strategy = QueryStrategy::kDpp;
  auto result = net_->QueryAndWait(node, "//article//title", qopt);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result.value().answers.empty());
}

TEST_F(MembershipTest, AutoPicksSubQueryReducerForSelectiveQueries) {
  QueryOptions qopt;
  qopt.strategy = QueryStrategy::kAuto;
  auto result =
      net_->QueryAndWait(1, "//article//author[. contains 'Ullman']", qopt);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().metrics.effective_strategy,
            QueryStrategy::kSubQueryReducer);
  EXPECT_GT(result.value().metrics.db_filter_bytes, 0u);
  EXPECT_EQ(Sorted(result.value().answers),
            Sorted(Query("//article//author[. contains 'Ullman']")));
}

TEST_F(MembershipTest, AutoPicksDppForUniformQueries) {
  QueryOptions qopt;
  qopt.strategy = QueryStrategy::kAuto;
  auto result = net_->QueryAndWait(1, "//article//author", qopt);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().metrics.effective_strategy,
            QueryStrategy::kDpp);
  EXPECT_EQ(Sorted(result.value().answers),
            Sorted(Query("//article//author")));
}

TEST_F(MembershipTest, AutoFallsBackToBaselineWithoutDpp) {
  KadopOptions opt;
  opt.peers = 8;
  opt.enable_dpp = false;
  KadopNet flat(opt);
  std::vector<const xml::Document*> ptrs;
  for (const auto& d : docs_) ptrs.push_back(&d);
  flat.PublishAndWait(0, ptrs);

  QueryOptions qopt;
  qopt.strategy = QueryStrategy::kAuto;
  qopt.dpp_available = false;
  auto result = flat.QueryAndWait(1, "//article//author", qopt);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().metrics.effective_strategy,
            QueryStrategy::kBaseline);
  EXPECT_FALSE(result.value().answers.empty());
}

TEST_F(MembershipTest, DppDeleteKeepsDirectoryCountsConsistent) {
  // Unpublish several documents, then verify the directory count of the
  // partitioned author list matches the data.
  for (index::DocSeq seq = 0; seq < 5; ++seq) {
    ASSERT_TRUE(net_->UnpublishAndWait(2, seq));
  }
  const auto owner = net_->dht().OwnerOf(dht::HashKey("l:author"));
  auto* dpp = net_->peer(owner)->dpp();
  ASSERT_NE(dpp, nullptr);
  auto count = dpp->OwnedTermCount("l:author");
  ASSERT_TRUE(count.has_value());

  std::optional<dht::GetResult> got;
  net_->peer(owner)->dht_peer()->Get(
      "l:author", [&](dht::GetResult r) { got = std::move(r); });
  net_->RunToIdle();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*count, got->postings.size());
  for (const auto& p : got->postings) {
    EXPECT_GE(p.doc, 5u);
  }
}

}  // namespace
}  // namespace kadop::core
