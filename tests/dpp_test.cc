#include <gtest/gtest.h>

#include <algorithm>
#include <optional>

#include "dht/dht.h"
#include "dht/ring.h"
#include "index/dpp.h"

namespace kadop::index {
namespace {

using dht::Dht;
using dht::DhtOptions;
using dht::GetResult;

Posting MakePosting(uint32_t doc, uint32_t start) {
  return Posting{1, doc, {start, start + 1, 2}};
}

/// A small cluster with a DppManager per peer, wired as the core facade
/// would wire it.
struct DppNet {
  explicit DppNet(size_t peers, DppOptions dpp_options = {})
      : network(&scheduler), dht(&scheduler, &network, DhtOptions{}) {
    dht.AddPeers(peers);
    for (size_t i = 0; i < peers; ++i) {
      dht::DhtPeer* peer = dht.peer(static_cast<sim::NodeIndex>(i));
      managers.push_back(
          std::make_unique<DppManager>(peer, dpp_options));
      DppManager* manager = managers.back().get();
      peer->SetAppendInterceptor(
          [manager](const dht::AppendRequest& request) {
            return manager->OnAppend(request);
          });
      peer->SetAppHandler(
          [manager](const dht::AppRequest& request, sim::NodeIndex from) {
            // Handled-ness is irrelevant here: DPP is the only service.
            (void)manager->HandleApp(request, from);
          });
    }
  }

  PostingList FetchAllBlocks(const std::string& term) {
    std::vector<DppBlockInfo> dir;
    DppManager::FetchDirectory(dht.peer(0), term,
                               [&](Status, std::vector<DppBlockInfo> blocks) {
                                 dir = std::move(blocks);
                               });
    scheduler.RunUntilIdle();
    PostingList all;
    for (const auto& block : dir) {
      std::optional<GetResult> got;
      dht.peer(0)->Get(block.key, [&](GetResult r) { got = std::move(r); });
      scheduler.RunUntilIdle();
      EXPECT_TRUE(got.has_value() && got->complete);
      all.insert(all.end(), got->postings.begin(), got->postings.end());
    }
    std::sort(all.begin(), all.end());
    return all;
  }

  sim::Scheduler scheduler;
  sim::Network network;
  Dht dht;
  std::vector<std::unique_ptr<DppManager>> managers;
};

TEST(ConditionTest, Basics) {
  Condition c;
  EXPECT_TRUE(c.Empty());
  c.Extend(MakePosting(5, 1));
  EXPECT_FALSE(c.Empty());
  EXPECT_TRUE(c.Contains(MakePosting(5, 1)));
  c.Extend(MakePosting(9, 1));
  EXPECT_TRUE(c.Contains(MakePosting(7, 3)));
  EXPECT_FALSE(c.Contains(MakePosting(10, 1)));
  EXPECT_EQ(c.MinDoc(), (DocId{1, 5}));
  EXPECT_EQ(c.MaxDoc(), (DocId{1, 9}));
}

TEST(ConditionTest, IntersectsSubsetBefore) {
  Condition a{MakePosting(1, 1), MakePosting(5, 1)};
  Condition b{MakePosting(4, 1), MakePosting(9, 1)};
  Condition c{MakePosting(6, 1), MakePosting(9, 1)};
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_TRUE(a.Before(c));
  EXPECT_FALSE(a.Before(b));
  Condition inner{MakePosting(2, 1), MakePosting(4, 1)};
  EXPECT_TRUE(inner.SubsetOf(a));
  EXPECT_FALSE(a.SubsetOf(inner));
  EXPECT_FALSE(a.Intersects(Condition{}));
}

TEST(DppTest, SmallListStaysLocal) {
  DppNet net(8);
  PostingList postings;
  for (uint32_t i = 0; i < 100; ++i) postings.push_back(MakePosting(i, 1));
  bool acked = false;
  net.dht.peer(2)->Append("l:title", postings, [&](Status) { acked = true; });
  net.scheduler.RunUntilIdle();
  EXPECT_TRUE(acked);

  std::vector<DppBlockInfo> dir;
  DppManager::FetchDirectory(net.dht.peer(0), "l:title",
                             [&](Status, std::vector<DppBlockInfo> blocks) {
                               dir = std::move(blocks);
                             });
  net.scheduler.RunUntilIdle();
  ASSERT_EQ(dir.size(), 1u);
  EXPECT_EQ(dir[0].key, "l:title");
  EXPECT_EQ(dir[0].count, 100u);
  EXPECT_EQ(net.FetchAllBlocks("l:title"), postings);
}

TEST(DppTest, LongListSplitsAcrossPeersWithOrderedConditions) {
  DppOptions options;
  options.max_block_postings = 256;
  DppNet net(12, options);
  PostingList postings;
  for (uint32_t i = 0; i < 2000; ++i) postings.push_back(MakePosting(i, 1));
  size_t acks = 0;
  // Publish in several batches (more realistic, exercises re-partitioning).
  for (size_t off = 0; off < postings.size(); off += 400) {
    PostingList batch(postings.begin() + off,
                      postings.begin() + std::min(off + 400, postings.size()));
    net.dht.peer(3)->Append("l:author", batch, [&](Status) { acks++; });
  }
  net.scheduler.RunUntilIdle();
  EXPECT_EQ(acks, 5u);

  std::vector<DppBlockInfo> dir;
  DppManager::FetchDirectory(net.dht.peer(0), "l:author",
                             [&](Status, std::vector<DppBlockInfo> blocks) {
                               dir = std::move(blocks);
                             });
  net.scheduler.RunUntilIdle();
  EXPECT_GE(dir.size(), 4u);
  // Conditions are ordered and non-overlapping; counts bounded.
  uint64_t total = 0;
  for (size_t i = 0; i < dir.size(); ++i) {
    total += dir[i].count;
    EXPECT_LE(dir[i].count, options.max_block_postings);
    if (i > 0) {
      EXPECT_TRUE(dir[i - 1].cond.Before(dir[i].cond))
          << dir[i - 1].cond.ToString() << " vs " << dir[i].cond.ToString();
    }
  }
  EXPECT_EQ(total, 2000u);
  // No postings lost or duplicated across the split blocks.
  EXPECT_EQ(net.FetchAllBlocks("l:author"), postings);
  // Splits actually migrated data to other peers.
  DppStats stats;
  for (const auto& m : net.managers) stats.Add(m->stats());
  EXPECT_GT(stats.splits, 0u);
  EXPECT_GT(stats.migrated_postings, 0u);
}

TEST(DppTest, OutOfOrderInsertsLandInMatchingBlocks) {
  DppOptions options;
  options.max_block_postings = 128;
  DppNet net(8, options);
  // First wave: even docs; second wave: odd docs interleaved into the
  // already-split range.
  PostingList evens, odds;
  for (uint32_t i = 0; i < 1000; ++i) {
    (i % 2 == 0 ? evens : odds).push_back(MakePosting(i, 1));
  }
  net.dht.peer(0)->Append("l:a", evens, nullptr);
  net.scheduler.RunUntilIdle();
  net.dht.peer(0)->Append("l:a", odds, nullptr);
  net.scheduler.RunUntilIdle();

  PostingList all = net.FetchAllBlocks("l:a");
  PostingList expected = evens;
  expected.insert(expected.end(), odds.begin(), odds.end());
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(all, expected);
}

TEST(DppTest, RandomSplitModeKeepsAllData) {
  DppOptions options;
  options.max_block_postings = 200;
  options.ordered_splits = false;
  DppNet net(8, options);
  PostingList postings;
  for (uint32_t i = 0; i < 1500; ++i) postings.push_back(MakePosting(i, 1));
  net.dht.peer(0)->Append("l:a", postings, nullptr);
  net.scheduler.RunUntilIdle();
  EXPECT_EQ(net.FetchAllBlocks("l:a"), postings);

  std::vector<DppBlockInfo> dir;
  DppManager::FetchDirectory(net.dht.peer(0), "l:a",
                             [&](Status, std::vector<DppBlockInfo> blocks) {
                               dir = std::move(blocks);
                             });
  net.scheduler.RunUntilIdle();
  ASSERT_GE(dir.size(), 2u);
  // Random splits leave overlapping conditions (no search pruning).
  bool overlapping = false;
  for (size_t i = 1; i < dir.size(); ++i) {
    overlapping |= dir[i - 1].cond.Intersects(dir[i].cond);
  }
  EXPECT_TRUE(overlapping);
}

TEST(DppTest, DirectoryOfUnknownTermIsEmpty) {
  DppNet net(4);
  std::optional<std::vector<DppBlockInfo>> dir;
  DppManager::FetchDirectory(net.dht.peer(0), "l:never",
                             [&](Status, std::vector<DppBlockInfo> blocks) {
                               dir = std::move(blocks);
                             });
  net.scheduler.RunUntilIdle();
  ASSERT_TRUE(dir.has_value());
  EXPECT_TRUE(dir->empty());
}

TEST(DppTest, PartitionedTermCount) {
  DppOptions options;
  options.max_block_postings = 64;
  DppNet net(6, options);
  PostingList big;
  for (uint32_t i = 0; i < 500; ++i) big.push_back(MakePosting(i, 1));
  net.dht.peer(0)->Append("l:big", big, nullptr);
  net.dht.peer(0)->Append("l:small", {MakePosting(1, 1)}, nullptr);
  net.scheduler.RunUntilIdle();
  size_t partitioned = 0;
  for (const auto& m : net.managers) partitioned += m->PartitionedTermCount();
  EXPECT_EQ(partitioned, 1u);
}

}  // namespace
}  // namespace kadop::index
