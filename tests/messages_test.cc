// Wire-size accounting tests: every payload must report a plausible
// SizeBytes that scales with its content — the traffic meter and all
// bandwidth charging depend on it.

#include <gtest/gtest.h>

#include "core/kadop.h"
#include "dht/messages.h"
#include "index/dpp_messages.h"
#include "query/messages.h"

namespace kadop {
namespace {

index::PostingList MakePostings(size_t n) {
  index::PostingList out;
  for (uint32_t i = 0; i < n; ++i) {
    out.push_back(index::Posting{0, i, {1, 2, 1}});
  }
  return out;
}

TEST(MessagesTest, PostingBearingPayloadsScaleWithContent) {
  dht::AppendRequest small;
  small.key = "l:a";
  small.postings = MakePostings(10);
  dht::AppendRequest big = small;
  big.postings = MakePostings(1000);
  EXPECT_GT(big.SizeBytes(), small.SizeBytes());
  EXPECT_GE(big.SizeBytes(), 1000 * index::Posting::kWireBytes);

  dht::GetBlock block;
  block.postings = MakePostings(100);
  EXPECT_GE(block.SizeBytes(), 100 * index::Posting::kWireBytes);

  index::DppStoreBlock store_block;
  store_block.block_key = "ovf:1:l:a";
  store_block.postings = MakePostings(50);
  EXPECT_GE(store_block.SizeBytes(), 50 * index::Posting::kWireBytes);

  query::ReducedListMessage reduced;
  reduced.postings = MakePostings(7);
  EXPECT_GE(reduced.SizeBytes(), 7 * index::Posting::kWireBytes);
}

TEST(MessagesTest, DocTypesAreCharged) {
  dht::AppendRequest req;
  req.key = "l:a";
  const size_t before = req.SizeBytes();
  req.doc_types = {"dblp", "imdb", "site"};
  EXPECT_GT(req.SizeBytes(), before + 10);
}

TEST(MessagesTest, RouteEnvelopeWrapsInnerSize) {
  auto inner = std::make_shared<dht::AppendRequest>();
  inner->key = "l:a";
  inner->postings = MakePostings(20);
  dht::RouteEnvelope env;
  env.inner = inner;
  EXPECT_GT(env.SizeBytes(), inner->SizeBytes());
  dht::RouteEnvelope empty;
  EXPECT_GT(empty.SizeBytes(), 0u);
}

TEST(MessagesTest, ControlPayloadsAreSmall) {
  EXPECT_LT(dht::LocateRequest().SizeBytes(), 64u);
  EXPECT_LT(dht::LocateResponse().SizeBytes(), 64u);
  EXPECT_LT(dht::AppendAck().SizeBytes(), 64u);
  EXPECT_LT(index::DppAppendDone().SizeBytes(), 64u);
  EXPECT_LT(index::DppDeleteDone().SizeBytes(), 64u);
  EXPECT_LT(query::TermCountResponse().SizeBytes(), 64u);
}

TEST(MessagesTest, FilterMessagesChargeTheBloomVector) {
  bloom::StructuralFilterParams params;
  params.levels = 12;
  auto abf = std::make_shared<bloom::AncestorBloomFilter>(
      bloom::AncestorBloomFilter::Build(MakePostings(5000), params));
  query::AbfMessage msg;
  msg.filter = abf;
  EXPECT_GE(msg.SizeBytes(), abf->SizeBytes());
  EXPECT_GT(abf->SizeBytes(), 500u);

  query::AbfMessage empty;
  EXPECT_LT(empty.SizeBytes(), 64u);
}

TEST(MessagesTest, ReducePlanScalesWithNodes) {
  query::ReducePlan plan;
  for (int i = 0; i < 5; ++i) {
    query::ReducePlanNode node;
    node.node = i;
    node.term_key = "l:term" + std::to_string(i);
    plan.nodes.push_back(node);
  }
  query::ReduceStart start;
  start.plan = plan;
  EXPECT_GT(start.SizeBytes(), 5 * 8u);
}

TEST(MessagesTest, DirResponseChargesConditionsAndTypes) {
  index::DppDirResponse resp;
  index::DppBlockInfo info;
  info.key = "ovf:1:l:author";
  info.types = {"dblp"};
  resp.blocks.assign(10, info);
  EXPECT_GE(resp.SizeBytes(), 10 * (info.key.size() + 36));
}

TEST(MessagesTest, HandoffMessageChargesAllParts) {
  core::HandoffMessage msg;
  msg.key = "l:a";
  const size_t base = msg.SizeBytes();
  msg.postings = MakePostings(100);
  const size_t with_postings = msg.SizeBytes();
  EXPECT_GE(with_postings, base + 100 * index::Posting::kWireBytes);
  msg.blob = std::string(500, 'x');
  EXPECT_GE(msg.SizeBytes(), with_postings + 500);
}

TEST(MessagesTest, TypeNamesAreStable) {
  EXPECT_EQ(dht::AppendRequest().TypeName(), "AppendRequest");
  EXPECT_EQ(dht::GetRequest().TypeName(), "GetRequest");
  EXPECT_EQ(index::DppDirRequest().TypeName(), "DppDirRequest");
  EXPECT_EQ(query::ReduceStart().TypeName(), "ReduceStart");
  EXPECT_EQ(core::DocQueryRequest().TypeName(), "DocQueryRequest");
}

}  // namespace
}  // namespace kadop
