#include <gtest/gtest.h>

#include <algorithm>

#include "bloom/bloom_filter.h"
#include "bloom/structural_filter.h"
#include "common/random.h"
#include "index/structural_join.h"
#include "index/terms.h"
#include "xml/corpus.h"

namespace kadop::bloom {
namespace {

using index::Posting;
using index::PostingList;

TEST(BloomFilterTest, NoFalseNegatives) {
  BloomFilter filter(1000, 0.01);
  for (uint64_t i = 0; i < 1000; ++i) filter.Insert(i * 7919);
  for (uint64_t i = 0; i < 1000; ++i) {
    EXPECT_TRUE(filter.MaybeContains(i * 7919));
  }
}

TEST(BloomFilterTest, FalsePositiveRateNearTarget) {
  const double target = 0.02;
  BloomFilter filter(5000, target);
  for (uint64_t i = 0; i < 5000; ++i) filter.Insert(i);
  size_t fp = 0;
  const size_t probes = 20000;
  for (uint64_t i = 0; i < probes; ++i) {
    if (filter.MaybeContains(1000000 + i)) ++fp;
  }
  const double rate = static_cast<double>(fp) / probes;
  EXPECT_LT(rate, target * 2.5);
  EXPECT_NEAR(filter.EstimatedFpRate(), target, target);
}

TEST(BloomFilterTest, SizeScalesWithAccuracy) {
  BloomFilter loose(1000, 0.2);
  BloomFilter tight(1000, 0.001);
  EXPECT_LT(loose.SizeBytes(), tight.SizeBytes());
  EXPECT_GE(loose.hash_count(), 1u);
  EXPECT_GT(tight.hash_count(), loose.hash_count());
}

TEST(BloomFilterTest, FillRatioReasonable) {
  BloomFilter filter(1000, 0.05);
  for (uint64_t i = 0; i < 1000; ++i) filter.Insert(i);
  // Optimal fill is ~50%.
  EXPECT_GT(filter.FillRatio(), 0.3);
  EXPECT_LT(filter.FillRatio(), 0.7);
}

TEST(PsiTest, TraceCounts) {
  // psi(j) = ceil(1 + j/c), c = 4: psi(0)=1, psi(1..4)=2, psi(5..8)=3.
  EXPECT_EQ(PsiTraces(0, 4), 1u);
  EXPECT_EQ(PsiTraces(1, 4), 2u);
  EXPECT_EQ(PsiTraces(4, 4), 2u);
  EXPECT_EQ(PsiTraces(5, 4), 3u);
  EXPECT_EQ(PsiTraces(8, 4), 3u);
  // Disabled traces.
  EXPECT_EQ(PsiTraces(10, 0), 1u);
}

TEST(PsiTest, FalsePositiveBoundIsMonotone) {
  EXPECT_LT(AbFalsePositiveBound(0.01, 20, 4),
            AbFalsePositiveBound(0.05, 20, 4));
  EXPECT_LT(AbFalsePositiveBound(0.05, 10, 4),
            AbFalsePositiveBound(0.05, 20, 4));
  EXPECT_GT(AbFalsePositiveBound(0.2, 20, 4), 0.0);
  EXPECT_LT(AbFalsePositiveBound(0.2, 20, 4), 1.0);
}

/// Builds element postings for a generated corpus fragment.
struct FilterFixtureData {
  PostingList la;  // e.g. all "Entry"-like ancestors
  PostingList lb;  // e.g. nested elements
  int levels = 0;
};

FilterFixtureData MakeData(const char* ancestor_label,
                           const char* descendant_label) {
  xml::corpus::SimpleCorpusOptions opt;
  opt.target_elements = 4000;
  auto docs = xml::corpus::GenerateSwissprot(opt);
  FilterFixtureData data;
  uint32_t max_tag = 0;
  for (size_t d = 0; d < docs.size(); ++d) {
    std::vector<index::TermPosting> postings;
    index::ExtractOptions eopt;
    eopt.index_words = false;
    index::ExtractTerms(docs[d], 0, static_cast<uint32_t>(d), eopt, postings);
    for (const auto& tp : postings) {
      if (tp.key == index::LabelKey(ancestor_label)) {
        data.la.push_back(tp.posting);
      }
      if (tp.key == index::LabelKey(descendant_label)) {
        data.lb.push_back(tp.posting);
      }
      max_tag = std::max(max_tag, tp.posting.sid.end);
    }
  }
  std::sort(data.la.begin(), data.la.end());
  std::sort(data.lb.begin(), data.lb.end());
  data.levels = LevelsFor(max_tag);
  return data;
}

TEST(AncestorBloomFilterTest, NoFalseNegatives) {
  FilterFixtureData data = MakeData("Ref", "Author");
  ASSERT_FALSE(data.la.empty());
  ASSERT_FALSE(data.lb.empty());
  StructuralFilterParams params;
  params.levels = data.levels;
  params.target_fp = 0.1;
  auto abf = AncestorBloomFilter::Build(data.la, params);
  PostingList filtered = abf.Filter(data.lb);
  PostingList exact = index::DescendantSemiJoin(data.la, data.lb);
  // Every true descendant survives the filter.
  for (const Posting& p : exact) {
    EXPECT_TRUE(std::binary_search(filtered.begin(), filtered.end(), p));
  }
  EXPECT_GE(filtered.size(), exact.size());
}

TEST(AncestorBloomFilterTest, FiltersOutMostNonDescendants) {
  FilterFixtureData data = MakeData("Ref", "Keyword");
  // Keywords are siblings of Ref, never descendants.
  StructuralFilterParams params;
  params.levels = data.levels;
  params.target_fp = 0.1;
  auto abf = AncestorBloomFilter::Build(data.la, params);
  PostingList filtered = abf.Filter(data.lb);
  PostingList exact = index::DescendantSemiJoin(data.la, data.lb);
  EXPECT_TRUE(exact.empty());
  // Empirical AB false-positive rate stays moderate even at fp = 0.1.
  const double fp_rate =
      static_cast<double>(filtered.size()) / data.lb.size();
  EXPECT_LT(fp_rate, 0.2);
}

TEST(AncestorBloomFilterTest, PointProbeEquivalentForRecall) {
  FilterFixtureData data = MakeData("Entry", "Author");
  StructuralFilterParams params;
  params.levels = data.levels;
  params.target_fp = 0.1;
  params.point_probe = true;
  auto abf = AncestorBloomFilter::Build(data.la, params);
  PostingList filtered = abf.Filter(data.lb);
  PostingList exact = index::DescendantSemiJoin(data.la, data.lb);
  for (const Posting& p : exact) {
    EXPECT_TRUE(std::binary_search(filtered.begin(), filtered.end(), p));
  }
}

TEST(DescendantBloomFilterTest, NoFalseNegatives) {
  FilterFixtureData data = MakeData("Entry", "Author");
  StructuralFilterParams params;
  params.levels = data.levels;
  params.target_fp = 0.01;
  auto dbf = DescendantBloomFilter::Build(data.lb, params);
  PostingList filtered = dbf.Filter(data.la);
  PostingList exact = index::AncestorSemiJoin(data.la, data.lb);
  for (const Posting& p : exact) {
    EXPECT_TRUE(std::binary_search(filtered.begin(), filtered.end(), p));
  }
}

TEST(DescendantBloomFilterTest, HandlesUnalignedNesting) {
  // Regression for the literal Theorem 2 reading: b = [2,5] inside
  // a = [1,6] (covers {[1,4],[5,6]} vs whole-interval containers {[1,8]}).
  PostingList la{Posting{0, 0, {1, 6, 1}}};
  PostingList lb{Posting{0, 0, {2, 5, 2}}};
  StructuralFilterParams params;
  params.levels = 3;
  params.target_fp = 0.01;
  auto dbf = DescendantBloomFilter::Build(lb, params);
  EXPECT_TRUE(dbf.MaybeAncestor(la[0]));
}

TEST(AncestorBloomFilterTest, HandlesUnalignedNesting) {
  PostingList la{Posting{0, 0, {1, 6, 1}}};
  PostingList lb{Posting{0, 0, {2, 5, 2}}};
  StructuralFilterParams params;
  params.levels = 3;
  params.target_fp = 0.01;
  auto abf = AncestorBloomFilter::Build(la, params);
  EXPECT_TRUE(abf.MaybeDescendant(lb[0]));
}

TEST(StructuralFilterTest, DifferentDocumentsDoNotMatch) {
  PostingList la{Posting{0, 1, {1, 8, 1}}};
  StructuralFilterParams params;
  params.levels = 3;
  params.target_fp = 0.001;
  auto abf = AncestorBloomFilter::Build(la, params);
  // Same interval, different document.
  EXPECT_FALSE(abf.MaybeDescendant(Posting{0, 2, {2, 3, 2}}));
  // Different peer.
  EXPECT_FALSE(abf.MaybeDescendant(Posting{1, 1, {2, 3, 2}}));
}

TEST(StructuralFilterTest, SizeBytesTracksBloomSize) {
  PostingList la;
  for (uint32_t i = 0; i < 500; ++i) {
    la.push_back(Posting{0, i, {1, 4, 1}});
  }
  StructuralFilterParams params;
  params.levels = 10;
  auto abf = AncestorBloomFilter::Build(la, params);
  EXPECT_GT(abf.SizeBytes(), 100u);
  EXPECT_LT(abf.SizeBytes(), index::PostingListBytes(la));
}

/// Section 5.4 sensitivity shape: the AB filter degrades gracefully with
/// the basic fp rate; the DB filter needs a much more accurate basic
/// filter for the same empirical error.
TEST(StructuralFilterTest, AbMoreRobustThanDbAtEqualBasicFp) {
  FilterFixtureData data = MakeData("Entry", "Cite");
  StructuralFilterParams params;
  params.levels = data.levels;
  params.target_fp = 0.2;

  auto abf = AncestorBloomFilter::Build(data.la, params);
  PostingList ab_filtered = abf.Filter(data.lb);
  PostingList ab_exact = index::DescendantSemiJoin(data.la, data.lb);
  const double ab_fp =
      data.lb.size() == ab_exact.size()
          ? 0.0
          : static_cast<double>(ab_filtered.size() - ab_exact.size()) /
                static_cast<double>(data.lb.size() - ab_exact.size());

  auto dbf = DescendantBloomFilter::Build(data.lb, params);
  PostingList db_filtered = dbf.Filter(data.la);
  PostingList db_exact = index::AncestorSemiJoin(data.la, data.lb);
  const double db_fp =
      data.la.size() == db_exact.size()
          ? 0.0
          : static_cast<double>(db_filtered.size() - db_exact.size()) /
                static_cast<double>(data.la.size() - db_exact.size());

  EXPECT_LE(ab_fp, db_fp + 0.05);
  EXPECT_LT(ab_fp, 0.25);  // paper: AB error < 10% even at fp[psi] = 20%
}

}  // namespace
}  // namespace kadop::bloom
