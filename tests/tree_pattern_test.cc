#include <gtest/gtest.h>

#include "query/tree_pattern.h"

namespace kadop::query {
namespace {

TreePattern MustParse(const char* expr) {
  auto result = ParsePattern(expr);
  EXPECT_TRUE(result.ok()) << expr << ": " << result.status().ToString();
  return result.ok() ? result.take() : TreePattern{};
}

TEST(PatternParseTest, SimpleDescendantChain) {
  TreePattern p = MustParse("//a//b//c");
  ASSERT_EQ(p.size(), 3u);
  EXPECT_EQ(p.node(0).term, "a");
  EXPECT_EQ(p.node(1).term, "b");
  EXPECT_EQ(p.node(2).term, "c");
  EXPECT_EQ(p.node(1).parent, 0);
  EXPECT_EQ(p.node(2).parent, 1);
  EXPECT_EQ(p.node(2).axis, Axis::kDescendant);
  EXPECT_EQ(p.node(0).kind, NodeKind::kLabel);
}

TEST(PatternParseTest, ChildAxis) {
  TreePattern p = MustParse("//a/b");
  ASSERT_EQ(p.size(), 2u);
  EXPECT_EQ(p.node(1).axis, Axis::kChild);
}

TEST(PatternParseTest, StructuralPredicate) {
  TreePattern p = MustParse("//article[//title]//author");
  ASSERT_EQ(p.size(), 3u);
  EXPECT_EQ(p.node(0).term, "article");
  EXPECT_EQ(p.node(1).term, "title");
  EXPECT_EQ(p.node(1).parent, 0);
  EXPECT_EQ(p.node(2).term, "author");
  EXPECT_EQ(p.node(2).parent, 0);
}

TEST(PatternParseTest, DotContainsForm) {
  TreePattern p = MustParse("//article[. contains \"Ullman\"]");
  ASSERT_EQ(p.size(), 2u);
  EXPECT_EQ(p.node(1).kind, NodeKind::kWord);
  EXPECT_EQ(p.node(1).term, "ullman");  // lowercased
  EXPECT_EQ(p.node(1).axis, Axis::kDescendant);
  EXPECT_EQ(p.node(1).parent, 0);
}

TEST(PatternParseTest, ContainsFunctionForm) {
  TreePattern p = MustParse(
      "//article[contains(.//title,'system') and "
      "contains(.//abstract,'interface')]");
  ASSERT_EQ(p.size(), 5u);
  EXPECT_EQ(p.node(1).term, "title");
  EXPECT_EQ(p.node(2).kind, NodeKind::kWord);
  EXPECT_EQ(p.node(2).term, "system");
  EXPECT_EQ(p.node(2).parent, 1);
  EXPECT_EQ(p.node(3).term, "abstract");
  EXPECT_EQ(p.node(4).term, "interface");
  EXPECT_EQ(p.node(4).parent, 3);
}

TEST(PatternParseTest, ContainsDotForm) {
  TreePattern p = MustParse("//*[contains(.,'xml')]//title");
  ASSERT_EQ(p.size(), 3u);
  EXPECT_EQ(p.node(0).kind, NodeKind::kWildcard);
  EXPECT_EQ(p.node(1).kind, NodeKind::kWord);
  EXPECT_EQ(p.node(1).term, "xml");
  EXPECT_EQ(p.node(1).parent, 0);
  EXPECT_EQ(p.node(2).term, "title");
  EXPECT_EQ(p.node(2).parent, 0);
  EXPECT_TRUE(p.HasWildcard());
}

TEST(PatternParseTest, QuotedWordStep) {
  TreePattern p = MustParse("//article//author//\"Ullman\"");
  ASSERT_EQ(p.size(), 3u);
  EXPECT_EQ(p.node(2).kind, NodeKind::kWord);
  EXPECT_EQ(p.node(2).term, "ullman");
  EXPECT_EQ(p.node(2).axis, Axis::kDescendant);
}

TEST(PatternParseTest, MixedPredicatesAndContinuation) {
  TreePattern p = MustParse("//a[//b]//c[. contains 'x']//d");
  ASSERT_EQ(p.size(), 5u);
  // a(0) -> b(1), c(2); c -> word x(3), d(4).
  EXPECT_EQ(p.node(1).parent, 0);
  EXPECT_EQ(p.node(2).parent, 0);
  EXPECT_EQ(p.node(3).parent, 2);
  EXPECT_EQ(p.node(4).parent, 2);
}

TEST(PatternParseTest, TermKeys) {
  TreePattern p = MustParse("//a[. contains 'w']");
  EXPECT_EQ(p.node(0).TermKey(), "l:a");
  EXPECT_EQ(p.node(1).TermKey(), "w:w");
}

TEST(PatternParseTest, BottomUpOrderVisitsChildrenFirst) {
  TreePattern p = MustParse("//a[//b//c]//d");
  auto order = p.BottomUpOrder();
  std::vector<int> position(p.size());
  for (size_t i = 0; i < order.size(); ++i) position[order[i]] = i;
  for (size_t q = 0; q < p.size(); ++q) {
    const int parent = p.node(q).parent;
    if (parent >= 0) {
      EXPECT_LT(position[q], position[parent]);
    }
  }
}

TEST(PatternParseTest, Errors) {
  EXPECT_FALSE(ParsePattern("").ok());
  EXPECT_FALSE(ParsePattern("//").ok());
  EXPECT_FALSE(ParsePattern("//a[").ok());
  EXPECT_FALSE(ParsePattern("//a[//b").ok());
  EXPECT_FALSE(ParsePattern("//a trailing").ok());
  EXPECT_FALSE(ParsePattern("//a[contains(.//b 'x')]").ok());
}

TEST(PatternParseTest, ToStringRoundTripsStructure) {
  const char* exprs[] = {
      "//a//b//c",
      "//article[. contains \"Ullman\"]",
      "//article[//title]//author",
  };
  for (const char* expr : exprs) {
    TreePattern p = MustParse(expr);
    // Reparse the printed form; structure must be identical.
    TreePattern q = MustParse(p.ToString().c_str());
    ASSERT_EQ(p.size(), q.size()) << p.ToString();
    for (size_t i = 0; i < p.size(); ++i) {
      EXPECT_EQ(p.node(i).term, q.node(i).term);
      EXPECT_EQ(p.node(i).kind, q.node(i).kind);
      EXPECT_EQ(p.node(i).parent, q.node(i).parent);
      EXPECT_EQ(p.node(i).axis, q.node(i).axis);
    }
  }
}

}  // namespace
}  // namespace kadop::query
