#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "index/structural_join.h"

namespace kadop::index {
namespace {

Posting P(uint32_t peer, uint32_t doc, uint32_t start, uint32_t end,
          uint16_t level) {
  return Posting{peer, doc, {start, end, level}};
}

// Brute-force oracles.
PostingList OracleAncestors(const PostingList& la, const PostingList& lb,
                            bool parent_only) {
  PostingList out;
  for (const Posting& a : la) {
    for (const Posting& b : lb) {
      if (a.doc_id() != b.doc_id()) continue;
      const bool hit = parent_only ? a.sid.IsParentOf(b.sid)
                                   : a.sid.Encloses(b.sid);
      if (hit) {
        out.push_back(a);
        break;
      }
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

PostingList OracleDescendants(const PostingList& la, const PostingList& lb,
                              bool parent_only) {
  PostingList out;
  for (const Posting& b : lb) {
    for (const Posting& a : la) {
      if (a.doc_id() != b.doc_id()) continue;
      const bool hit = parent_only ? a.sid.IsParentOf(b.sid)
                                   : a.sid.Encloses(b.sid);
      if (hit) {
        out.push_back(b);
        break;
      }
    }
  }
  return out;
}

TEST(StructuralJoinTest, SimpleNesting) {
  // a=[1,8], children b=[2,5], c=[6,7]; b child d=[3,4].
  PostingList la{P(0, 0, 1, 8, 1)};
  PostingList lb{P(0, 0, 2, 5, 2), P(0, 0, 6, 7, 2), P(0, 0, 3, 4, 3)};
  EXPECT_EQ(DescendantSemiJoin(la, lb).size(), 3u);
  EXPECT_EQ(AncestorSemiJoin(la, lb).size(), 1u);
  EXPECT_EQ(ChildSemiJoin(la, lb).size(), 2u);  // level-2 children only
}

TEST(StructuralJoinTest, NoMatchesAcrossDocuments) {
  PostingList la{P(0, 0, 1, 8, 1)};
  PostingList lb{P(0, 1, 2, 5, 2)};
  EXPECT_TRUE(DescendantSemiJoin(la, lb).empty());
  EXPECT_TRUE(AncestorSemiJoin(la, lb).empty());
}

TEST(StructuralJoinTest, WordPseudoNodesJoinAsChildren) {
  // Element [2,5] level 2 with word pseudo-node [2,5] level 3.
  PostingList la{P(0, 0, 2, 5, 2)};
  PostingList lb{P(0, 0, 2, 5, 3)};
  EXPECT_EQ(DescendantSemiJoin(la, lb).size(), 1u);
  EXPECT_EQ(ChildSemiJoin(la, lb).size(), 1u);
  EXPECT_EQ(AncestorSemiJoin(la, lb).size(), 1u);
  // Reverse direction must not match.
  EXPECT_TRUE(DescendantSemiJoin(lb, la).empty());
}

TEST(StructuralJoinTest, EmptyInputs) {
  PostingList la{P(0, 0, 1, 4, 1)};
  EXPECT_TRUE(DescendantSemiJoin(la, {}).empty());
  EXPECT_TRUE(DescendantSemiJoin({}, la).empty());
  EXPECT_TRUE(AncestorSemiJoin({}, {}).empty());
}

/// Generates a random forest of nested postings within several documents,
/// mimicking real sid structure (properly nested intervals).
void GenerateNested(Rng& rng, uint32_t doc, uint32_t& counter,
                    uint16_t level, size_t budget, PostingList& out) {
  while (budget > 0) {
    const uint32_t start = ++counter;
    size_t children = rng.Uniform(std::min<size_t>(budget, 4));
    if (level > 6) children = 0;
    budget -= 1;
    PostingList subtree;
    if (children > 0 && budget > 0) {
      const size_t sub_budget = std::min(budget, children * 2);
      GenerateNested(rng, doc, counter, level + 1, sub_budget, out);
      budget -= std::min(budget, sub_budget);
    }
    out.push_back(P(0, doc, start, ++counter, level));
  }
}

PostingList RandomCorpus(uint64_t seed, size_t per_doc, int docs) {
  Rng rng(seed);
  PostingList all;
  for (int d = 0; d < docs; ++d) {
    uint32_t counter = 0;
    GenerateNested(rng, static_cast<uint32_t>(d), counter, 1, per_doc, all);
  }
  std::sort(all.begin(), all.end());
  return all;
}

class StructuralJoinPropertyTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StructuralJoinPropertyTest, MatchesOracleOnRandomTrees) {
  PostingList corpus = RandomCorpus(GetParam(), 40, 3);
  // Split the corpus into two random sub-lists (sorted).
  Rng rng(GetParam() ^ 0xabc);
  PostingList la, lb;
  for (const Posting& p : corpus) {
    if (rng.Bernoulli(0.5)) la.push_back(p);
    if (rng.Bernoulli(0.5)) lb.push_back(p);
  }
  EXPECT_EQ(AncestorSemiJoin(la, lb), OracleAncestors(la, lb, false));
  EXPECT_EQ(DescendantSemiJoin(la, lb), OracleDescendants(la, lb, false));
  EXPECT_EQ(ParentSemiJoin(la, lb), OracleAncestors(la, lb, true));
  EXPECT_EQ(ChildSemiJoin(la, lb), OracleDescendants(la, lb, true));
}

INSTANTIATE_TEST_SUITE_P(Seeds, StructuralJoinPropertyTest,
                         ::testing::Range<uint64_t>(1, 13));

/// Skewed inputs drive the galloping (exponential-search) skip: one side
/// is a few documents, the other spans thousands, so whole absent
/// documents must be jumped without changing any output.
class StructuralJoinSkewTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StructuralJoinSkewTest, GallopingMatchesOracleOnSkewedDocs) {
  Rng rng(GetParam() * 7919 + 1);
  // A huge list over many documents...
  PostingList big;
  for (uint32_t d = 0; d < 400; ++d) {
    uint32_t counter = 0;
    GenerateNested(rng, d, counter, 1, 8, big);
  }
  std::sort(big.begin(), big.end());
  // ...against a tiny list confined to a handful of scattered documents.
  PostingList small;
  for (int i = 0; i < 5; ++i) {
    const uint32_t d = static_cast<uint32_t>(rng.Uniform(400));
    uint32_t counter = 1;
    small.push_back(P(0, d, counter, counter + 50, 1));
    small.push_back(P(0, d, counter + 1, counter + 10, 2));
  }
  std::sort(small.begin(), small.end());
  small.erase(std::unique(small.begin(), small.end()), small.end());

  // Both skew directions, all four semi-join flavors.
  EXPECT_EQ(AncestorSemiJoin(small, big), OracleAncestors(small, big, false));
  EXPECT_EQ(AncestorSemiJoin(big, small), OracleAncestors(big, small, false));
  EXPECT_EQ(DescendantSemiJoin(small, big),
            OracleDescendants(small, big, false));
  EXPECT_EQ(DescendantSemiJoin(big, small),
            OracleDescendants(big, small, false));
  EXPECT_EQ(ParentSemiJoin(small, big), OracleAncestors(small, big, true));
  EXPECT_EQ(ChildSemiJoin(big, small), OracleDescendants(big, small, true));
}

INSTANTIATE_TEST_SUITE_P(Seeds, StructuralJoinSkewTest,
                         ::testing::Range<uint64_t>(1, 9));

TEST(StructuralJoinTest, GallopingHandlesDisjointDocRanges) {
  // Entirely disjoint document ranges: the sweep must terminate early and
  // produce nothing, in either order.
  PostingList lo, hi;
  for (uint32_t d = 0; d < 200; ++d) lo.push_back(P(0, d, 1, 2, 1));
  for (uint32_t d = 1000; d < 1200; ++d) hi.push_back(P(0, d, 1, 2, 1));
  EXPECT_TRUE(DescendantSemiJoin(lo, hi).empty());
  EXPECT_TRUE(DescendantSemiJoin(hi, lo).empty());
  EXPECT_TRUE(AncestorSemiJoin(lo, hi).empty());
  EXPECT_TRUE(ChildSemiJoin(hi, lo).empty());
}

TEST(StructuralJoinTest, SelfJoinYieldsProperAncestorsOnly) {
  PostingList list = RandomCorpus(99, 30, 2);
  PostingList ancestors = AncestorSemiJoin(list, list);
  // No element is its own ancestor; only elements with proper descendants
  // qualify.
  EXPECT_EQ(ancestors, OracleAncestors(list, list, false));
  EXPECT_LT(ancestors.size(), list.size());
}

TEST(StructuralJoinTest, OutputsPreserveCanonicalOrder) {
  PostingList corpus = RandomCorpus(7, 50, 3);
  PostingList desc = DescendantSemiJoin(corpus, corpus);
  EXPECT_TRUE(IsSortedPostingList(desc));
  PostingList anc = AncestorSemiJoin(corpus, corpus);
  EXPECT_TRUE(IsSortedPostingList(anc));
}

}  // namespace
}  // namespace kadop::index
