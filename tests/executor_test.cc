#include <gtest/gtest.h>

#include <algorithm>

#include "core/kadop.h"
#include "xml/corpus.h"

namespace kadop::query {
namespace {

using core::KadopNet;
using core::KadopOptions;

std::vector<Answer> Sorted(std::vector<Answer> v) {
  std::sort(v.begin(), v.end(), [](const Answer& a, const Answer& b) {
    if (a.doc != b.doc) return a.doc < b.doc;
    return a.elements < b.elements;
  });
  return v;
}

/// Shared fixture: a network with a published DBLP-like corpus and a
/// ground-truth oracle via local evaluation.
class ExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    xml::corpus::DblpOptions copt;
    copt.target_bytes = 150 << 10;
    copt.doc_bytes = 8 << 10;
    docs_ = xml::corpus::GenerateDblp(copt);

    KadopOptions opt;
    opt.peers = 12;
    opt.dpp.max_block_postings = 256;
    net_ = std::make_unique<KadopNet>(opt);
    net_->RegisterDocuments(docs_);
    std::vector<const xml::Document*> ptrs;
    for (const auto& d : docs_) ptrs.push_back(&d);
    net_->PublishAndWait(2, ptrs);
  }

  std::vector<Answer> GroundTruth(const char* expr) {
    TreePattern pattern = ParsePattern(expr).take();
    std::vector<Answer> all;
    for (size_t d = 0; d < docs_.size(); ++d) {
      auto answers = EvaluateOnDocument(
          pattern, docs_[d], index::DocId{2, static_cast<uint32_t>(d)});
      all.insert(all.end(), answers.begin(), answers.end());
    }
    return all;
  }

  QueryResult RunQuery(const char* expr, QueryStrategy strategy) {
    QueryOptions options;
    options.strategy = strategy;
    auto result = net_->QueryAndWait(1, expr, options);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.take();
  }

  std::vector<xml::Document> docs_;
  std::unique_ptr<KadopNet> net_;
};

constexpr const char* kQueries[] = {
    "//article//author",
    "//article//author[. contains 'Ullman']",
    "//article[//journal]//year",
    "//inproceedings//booktitle",
};

TEST_F(ExecutorTest, BaselineMatchesGroundTruth) {
  for (const char* expr : kQueries) {
    QueryResult result = RunQuery(expr, QueryStrategy::kBaseline);
    EXPECT_TRUE(result.metrics.complete);
    EXPECT_EQ(Sorted(result.answers), Sorted(GroundTruth(expr))) << expr;
  }
}

TEST_F(ExecutorTest, DppMatchesGroundTruth) {
  for (const char* expr : kQueries) {
    QueryResult result = RunQuery(expr, QueryStrategy::kDpp);
    EXPECT_TRUE(result.metrics.complete);
    EXPECT_EQ(Sorted(result.answers), Sorted(GroundTruth(expr))) << expr;
  }
}

TEST_F(ExecutorTest, ReducersKeepFullRecall) {
  // Bloom-filtered strategies may let extra postings through (one-sided
  // error) but can never lose answers — and since the final twig join is
  // exact, the answers are in fact identical.
  for (QueryStrategy strategy :
       {QueryStrategy::kAbReducer, QueryStrategy::kDbReducer,
        QueryStrategy::kBloomReducer, QueryStrategy::kSubQueryReducer}) {
    for (const char* expr : kQueries) {
      QueryResult result = RunQuery(expr, strategy);
      EXPECT_TRUE(result.metrics.complete);
      EXPECT_EQ(Sorted(result.answers), Sorted(GroundTruth(expr)))
          << expr << " with " << QueryStrategyName(strategy);
    }
  }
}

TEST_F(ExecutorTest, EmptyResultQueries) {
  for (QueryStrategy strategy :
       {QueryStrategy::kBaseline, QueryStrategy::kDpp,
        QueryStrategy::kDbReducer}) {
    QueryResult result = RunQuery("//article//nonexistenttag", strategy);
    EXPECT_TRUE(result.answers.empty());
    EXPECT_TRUE(result.matched_docs.empty());
  }
}

TEST_F(ExecutorTest, SelectiveQueryReducesDataVolume) {
  const char* expr = "//article//author[. contains 'Ullman']";
  QueryResult base = RunQuery(expr, QueryStrategy::kBaseline);
  QueryResult db = RunQuery(expr, QueryStrategy::kDbReducer);
  // The DB reducer ships far fewer posting bytes than the baseline.
  EXPECT_LT(db.metrics.posting_bytes, base.metrics.posting_bytes);
  EXPECT_LT(db.metrics.NormalizedDataVolume(), 1.0);
  EXPECT_GT(db.metrics.db_filter_bytes, 0u);
  EXPECT_EQ(db.metrics.ab_filter_bytes, 0u);
}

TEST_F(ExecutorTest, AbReducerSendsAbFilters) {
  QueryResult ab = RunQuery("//article//author", QueryStrategy::kAbReducer);
  EXPECT_GT(ab.metrics.ab_filter_bytes, 0u);
  EXPECT_EQ(ab.metrics.db_filter_bytes, 0u);
}

TEST_F(ExecutorTest, BloomReducerSendsBothFilterKinds) {
  QueryResult r =
      RunQuery("//article//author[. contains 'Ullman']",
               QueryStrategy::kBloomReducer);
  EXPECT_GT(r.metrics.ab_filter_bytes, 0u);
  EXPECT_GT(r.metrics.db_filter_bytes, 0u);
}

TEST_F(ExecutorTest, MetricsTimingsAreSane) {
  QueryResult r = RunQuery("//article//author", QueryStrategy::kBaseline);
  EXPECT_GT(r.metrics.ResponseTime(), 0.0);
  EXPECT_GE(r.metrics.TimeToFirstAnswer(), 0.0);
  EXPECT_LE(r.metrics.TimeToFirstAnswer(), r.metrics.ResponseTime());
  EXPECT_GT(r.metrics.postings_received, 0u);
  EXPECT_GT(r.metrics.posting_bytes, 0u);
}

TEST_F(ExecutorTest, DppSkipsBlocksViaDocumentInterval) {
  // 'Ullman' postings span a narrow document range relative to 'author';
  // with partitioned author lists some blocks must be skipped or at least
  // none lost.
  QueryResult r = RunQuery("//article//author[. contains 'Ullman']",
                           QueryStrategy::kDpp);
  EXPECT_TRUE(r.metrics.complete);
  EXPECT_GT(r.metrics.blocks_fetched, 0u);
}

TEST_F(ExecutorTest, WildcardQueryRejected) {
  QueryOptions options;
  options.strategy = QueryStrategy::kBaseline;
  auto result = net_->QueryAndWait(0, "//*[contains(.,'xml')]//title",
                                   options);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result.value().metrics.complete);
  EXPECT_TRUE(result.value().answers.empty());
}

TEST_F(ExecutorTest, NonPipelinedGetAlsoCorrect) {
  QueryOptions options;
  options.strategy = QueryStrategy::kBaseline;
  options.pipelined = false;
  auto result = net_->QueryAndWait(0, "//article//author", options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(Sorted(result.value().answers),
            Sorted(GroundTruth("//article//author")));
}

TEST_F(ExecutorTest, IncompleteQueryMetricsStaySane) {
  // Regression: a timed-out query used to report first_answer_time = -1
  // relative to a positive submit_time, making TimeToFirstAnswer() a large
  // negative "latency". Both accessors must report -1 ("no such event")
  // for events that never happened, and a real duration otherwise.
  QueryOptions options;
  options.strategy = QueryStrategy::kBaseline;
  options.timeout_s = 1e-9;  // expires before any posting can arrive
  auto result = net_->QueryAndWait(1, "//article//author", options);
  ASSERT_TRUE(result.ok());
  const QueryMetrics& m = result.value().metrics;
  EXPECT_FALSE(m.complete);
  EXPECT_TRUE(result.value().answers.empty());
  EXPECT_DOUBLE_EQ(m.TimeToFirstAnswer(), -1.0);
  // The timeout still *finished* the query, so the response time is the
  // (tiny) timeout window, never negative.
  EXPECT_GE(m.ResponseTime(), 0.0);

  // A default-constructed metrics object reports "never happened" too.
  QueryMetrics fresh;
  fresh.submit_time = 5.0;
  EXPECT_DOUBLE_EQ(fresh.ResponseTime(), -1.0);
  EXPECT_DOUBLE_EQ(fresh.TimeToFirstAnswer(), -1.0);
}

TEST_F(ExecutorTest, ParseErrorSurfaces) {
  QueryOptions options;
  auto result = net_->QueryAndWait(0, "//a[", options);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

}  // namespace
}  // namespace kadop::query
