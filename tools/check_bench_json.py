#!/usr/bin/env python3
"""Validates BENCH_<name>.json files emitted by the bench binaries.

Hand-rolled schema check (no third-party deps): every emitted file must be
a JSON object with

  bench          non-empty string, matching the BENCH_<name>.json filename
  description    non-empty string
  schema_version the integer 1
  rows           non-empty array of flat objects (numbers / strings)
  metrics        object with "counters", "gauges" and "histograms" maps;
                 each histogram has bounds/counts/count/sum and
                 len(counts) == len(bounds) + 1

The serving harness (bench == "serving") additionally promises:

  - at least 4 rows of kind "qps_step", each with numeric offered_qps,
    p50, p99 and p999 where p50 <= p99 <= p999
  - exactly one "knee" row with numeric offered_qps and a "reason"
  - at least one "capacity" row with numeric peers and sustainable_qps
  - a replication A/B: one "qps_step_repl" row per "qps_step" row (same
    ascending offered_qps ladder), p99_on <= p99_off at the knee step
    (or the last step when no knee was hit), and one "flash_crowd_repl"
    row whose max_holder_gets is strictly below the "flash_crowd" row's
  - a views A/B: one "qps_step_views" row per "qps_step" row (same
    ascending offered_qps ladder, numeric view_hits/view_hit_rate with
    view hits somewhere in the ladder), exact p99 strictly improved at
    the knee step, and exactly one "view_probe" row with answers_match
    == 1 and kDppJoin total posting movement >= 5x the view-hit wire
    bytes (djoin_wire_bytes / view_wire_bytes >= 5)

The twig and codec benches additionally promise the iterator-engine A/B
(docs/query_engine.md): rows of kind "iterator_ab" — ops "skipto" and
"intersect" for twig, "batch_decode" for codec — each with a numeric
speedup "ratio" >= 2.0 over the decode-everything baseline and
"answers_match" == 1 (the two paths produced identical postings)

Usage: check_bench_json.py FILE [FILE...]
Exits non-zero listing every violation, so CI fails loudly when a bench
stops emitting what the figure scripts consume.
"""

import json
import os
import sys


def _err(errors, path, message):
    errors.append(f"{path}: {message}")


def check_metrics(metrics, path, errors):
    if not isinstance(metrics, dict):
        _err(errors, path, "'metrics' must be an object")
        return
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(metrics.get(section), dict):
            _err(errors, path, f"'metrics.{section}' must be an object")
    for name, value in metrics.get("counters", {}).items():
        if not isinstance(value, int) or value < 0:
            _err(errors, path,
                 f"counter '{name}' must be a non-negative integer")
    for name, value in metrics.get("gauges", {}).items():
        if not isinstance(value, (int, float)):
            _err(errors, path, f"gauge '{name}' must be a number")
    for name, hist in metrics.get("histograms", {}).items():
        if not isinstance(hist, dict):
            _err(errors, path, f"histogram '{name}' must be an object")
            continue
        bounds = hist.get("bounds")
        counts = hist.get("counts")
        if not isinstance(bounds, list) or not isinstance(counts, list):
            _err(errors, path,
                 f"histogram '{name}' needs 'bounds' and 'counts' arrays")
            continue
        if len(counts) != len(bounds) + 1:
            _err(errors, path,
                 f"histogram '{name}': len(counts) == len(bounds) + 1 "
                 f"violated ({len(counts)} vs {len(bounds)})")
        if not isinstance(hist.get("count"), int):
            _err(errors, path, f"histogram '{name}' needs integer 'count'")
        if not isinstance(hist.get("sum"), (int, float)):
            _err(errors, path, f"histogram '{name}' needs numeric 'sum'")


def check_file(path, errors):
    try:
        with open(path, "r", encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        _err(errors, path, f"unreadable or invalid JSON: {e}")
        return

    if not isinstance(data, dict):
        _err(errors, path, "top level must be a JSON object")
        return

    bench = data.get("bench")
    if not isinstance(bench, str) or not bench:
        _err(errors, path, "'bench' must be a non-empty string")
    else:
        expected = f"BENCH_{bench}.json"
        if os.path.basename(path) != expected:
            _err(errors, path, f"filename should be {expected}")

    if not isinstance(data.get("description"), str) or not data["description"]:
        _err(errors, path, "'description' must be a non-empty string")

    if data.get("schema_version") != 1:
        _err(errors, path, "'schema_version' must be 1")

    # Optional build provenance line (sanitizers / profiling timers),
    # emitted by BenchReport since the kadop_analyze PR.
    if "buildinfo" in data and (
            not isinstance(data["buildinfo"], str) or not data["buildinfo"]):
        _err(errors, path, "'buildinfo' must be a non-empty string if present")

    rows = data.get("rows")
    if not isinstance(rows, list) or not rows:
        _err(errors, path, "'rows' must be a non-empty array")
    else:
        for i, row in enumerate(rows):
            if not isinstance(row, dict) or not row:
                _err(errors, path, f"rows[{i}] must be a non-empty object")
                continue
            for key, value in row.items():
                if not isinstance(value, (int, float, str)):
                    _err(errors, path,
                         f"rows[{i}].{key} must be a number or string")

    if "metrics" not in data:
        _err(errors, path, "'metrics' snapshot missing")
    else:
        check_metrics(data["metrics"], path, errors)

    if bench == "serving" and isinstance(rows, list):
        check_serving_rows(rows, path, errors)
    if bench in ("twig", "codec") and isinstance(rows, list):
        check_iterator_ab_rows(rows, bench, path, errors)


def check_iterator_ab_rows(rows, bench, path, errors):
    """The iterator-engine speedup A/B promised by the twig/codec benches."""
    required_ops = {"twig": ("skipto", "intersect"),
                    "codec": ("batch_decode",)}[bench]
    ab = [r for r in rows if isinstance(r, dict)
          and r.get("kind") == "iterator_ab"]
    present = {r.get("op") for r in ab}
    for op in required_ops:
        if op not in present:
            _err(errors, path,
                 f"{bench}: missing 'iterator_ab' row with op '{op}'")
    for r in ab:
        op = r.get("op", "?")
        ratio = r.get("ratio")
        if not isinstance(ratio, (int, float)):
            _err(errors, path,
                 f"{bench}: iterator_ab '{op}' needs a numeric 'ratio'")
        elif ratio < 2.0:
            _err(errors, path,
                 f"{bench}: iterator_ab '{op}' speedup ratio {ratio:.2f} "
                 f"is below the promised 2.0x")
        if r.get("answers_match") != 1:
            _err(errors, path,
                 f"{bench}: iterator_ab '{op}' answers_match != 1 — the "
                 f"iterator path diverged from the baseline")


def check_serving_rows(rows, path, errors):
    """Schema for the open-loop serving SLO harness."""

    def num(row, key):
        return isinstance(row.get(key), (int, float))

    qps_steps = [r for r in rows if isinstance(r, dict)
                 and r.get("kind") == "qps_step"]
    knees = [r for r in rows if isinstance(r, dict) and r.get("kind") == "knee"]
    capacity = [r for r in rows if isinstance(r, dict)
                and r.get("kind") == "capacity"]

    if len(qps_steps) < 4:
        _err(errors, path,
             f"serving: need >= 4 'qps_step' rows, got {len(qps_steps)}")
    for i, row in enumerate(qps_steps):
        missing = [k for k in ("offered_qps", "p50", "p99", "p999")
                   if not num(row, k)]
        if missing:
            _err(errors, path,
                 f"serving: qps_step[{i}] missing numeric {missing}")
            continue
        if not row["p50"] <= row["p99"] <= row["p999"]:
            _err(errors, path,
                 f"serving: qps_step[{i}] percentiles not monotone "
                 f"(p50={row['p50']} p99={row['p99']} p999={row['p999']})")
    offered = [r["offered_qps"] for r in qps_steps if num(r, "offered_qps")]
    if offered != sorted(offered):
        _err(errors, path, "serving: qps_step offered_qps must be ascending")

    if len(knees) != 1:
        _err(errors, path, f"serving: need exactly one 'knee' row, "
                           f"got {len(knees)}")
    elif not num(knees[0], "offered_qps") or \
            not isinstance(knees[0].get("reason"), str):
        _err(errors, path,
             "serving: knee row needs numeric offered_qps and string reason")

    if not capacity:
        _err(errors, path, "serving: need at least one 'capacity' row")
    for i, row in enumerate(capacity):
        if not num(row, "peers") or not num(row, "sustainable_qps"):
            _err(errors, path,
                 f"serving: capacity[{i}] needs numeric peers and "
                 f"sustainable_qps")

    check_replication_ab(rows, qps_steps, knees, path, errors)
    check_views_ab(rows, qps_steps, knees, path, errors)


def _knee_index(qps_steps, knees):
    """Index of the ladder step the knee row names (last step if none)."""
    knee_qps = knees[0].get("offered_qps", 0) if len(knees) == 1 else 0
    for i, row in enumerate(qps_steps):
        if isinstance(row.get("offered_qps"), (int, float)) and \
                row["offered_qps"] == knee_qps:
            return i
    return len(qps_steps) - 1


def check_views_ab(rows, qps_steps, knees, path, errors):
    """The materialized-view A/B promised by the serving harness."""

    def num(row, key):
        return isinstance(row.get(key), (int, float))

    view_steps = [r for r in rows if isinstance(r, dict)
                  and r.get("kind") == "qps_step_views"]
    probes = [r for r in rows if isinstance(r, dict)
              and r.get("kind") == "view_probe"]

    if len(view_steps) != len(qps_steps):
        _err(errors, path,
             f"serving: need one 'qps_step_views' row per 'qps_step' row "
             f"({len(view_steps)} vs {len(qps_steps)})")
        return
    for i, (off, on) in enumerate(zip(qps_steps, view_steps)):
        missing = [k for k in ("offered_qps", "p99_exact", "view_hits",
                               "view_hit_rate") if not num(on, k)]
        if missing:
            _err(errors, path,
                 f"serving: qps_step_views[{i}] missing numeric {missing}")
            return
        if num(off, "offered_qps") and \
                on["offered_qps"] != off["offered_qps"]:
            _err(errors, path,
                 f"serving: qps_step_views[{i}] offered_qps "
                 f"{on['offered_qps']} != qps_step's {off['offered_qps']}")
    if sum(r["view_hits"] for r in view_steps) <= 0:
        _err(errors, path,
             "serving: the views ladder never served a query from a view "
             "(sum of view_hits is 0)")

    # Exact p99 must strictly improve at the knee step: rewritten queries
    # free enough capacity to shave the tail where queueing dominates.
    knee_idx = _knee_index(qps_steps, knees)
    if num(qps_steps[knee_idx], "p99_exact") and \
            view_steps[knee_idx]["p99_exact"] >= \
            qps_steps[knee_idx]["p99_exact"]:
        _err(errors, path,
             f"serving: exact p99 with views "
             f"({view_steps[knee_idx]['p99_exact']}) does not improve on "
             f"the viewless exact p99 "
             f"({qps_steps[knee_idx]['p99_exact']}) at the knee step "
             f"(offered_qps={qps_steps[knee_idx].get('offered_qps')})")

    if len(probes) != 1:
        _err(errors, path,
             f"serving: need exactly one 'view_probe' row, got {len(probes)}")
        return
    probe = probes[0]
    if not num(probe, "djoin_wire_bytes") or \
            not num(probe, "view_wire_bytes") or \
            not num(probe, "view_hit"):
        _err(errors, path,
             "serving: view_probe needs numeric djoin_wire_bytes, "
             "view_wire_bytes and view_hit")
        return
    if probe.get("answers_match") != 1:
        _err(errors, path,
             "serving: view_probe answers_match != 1 — the view served "
             "different answers than the kDppJoin ground truth")
    if probe["view_hit"] != 1:
        _err(errors, path,
             "serving: view_probe did not serve from the view extent")
    if probe["view_wire_bytes"] <= 0 or \
            probe["djoin_wire_bytes"] < 5.0 * probe["view_wire_bytes"]:
        _err(errors, path,
             f"serving: view-hit wire bytes ({probe['view_wire_bytes']}) "
             f"must be >= 5x below the kDppJoin posting movement "
             f"({probe['djoin_wire_bytes']})")


def check_replication_ab(rows, qps_steps, knees, path, errors):
    """The hot-data replication A/B promised by the serving harness."""

    def num(row, key):
        return isinstance(row.get(key), (int, float))

    repl_steps = [r for r in rows if isinstance(r, dict)
                  and r.get("kind") == "qps_step_repl"]
    flash = [r for r in rows if isinstance(r, dict)
             and r.get("kind") == "flash_crowd"]
    flash_repl = [r for r in rows if isinstance(r, dict)
                  and r.get("kind") == "flash_crowd_repl"]

    if len(repl_steps) != len(qps_steps):
        _err(errors, path,
             f"serving: need one 'qps_step_repl' row per 'qps_step' row "
             f"({len(repl_steps)} vs {len(qps_steps)})")
        return
    for i, (off, on) in enumerate(zip(qps_steps, repl_steps)):
        if not num(on, "offered_qps") or not num(on, "p99") or \
                not num(on, "max_holder_gets"):
            _err(errors, path,
                 f"serving: qps_step_repl[{i}] missing numeric "
                 f"offered_qps/p99/max_holder_gets")
            return
        if num(off, "offered_qps") and \
                on["offered_qps"] != off["offered_qps"]:
            _err(errors, path,
                 f"serving: qps_step_repl[{i}] offered_qps "
                 f"{on['offered_qps']} != qps_step's {off['offered_qps']}")

    # p99 must be no worse with replication at the knee step (the step the
    # knee row names, or the last ladder step when no knee was hit).
    knee_qps = knees[0].get("offered_qps", 0) if len(knees) == 1 else 0
    knee_idx = len(qps_steps) - 1
    for i, row in enumerate(qps_steps):
        if num(row, "offered_qps") and row["offered_qps"] == knee_qps:
            knee_idx = i
            break
    if num(qps_steps[knee_idx], "p99") and \
            repl_steps[knee_idx]["p99"] > qps_steps[knee_idx]["p99"]:
        _err(errors, path,
             f"serving: p99 with replication "
             f"({repl_steps[knee_idx]['p99']}) exceeds the unreplicated "
             f"p99 ({qps_steps[knee_idx]['p99']}) at the knee step "
             f"(offered_qps={qps_steps[knee_idx].get('offered_qps')})")

    if len(flash_repl) != 1 or len(flash) != 1:
        _err(errors, path,
             "serving: need exactly one 'flash_crowd' and one "
             "'flash_crowd_repl' row")
        return
    if not num(flash[0], "max_holder_gets") or \
            not num(flash_repl[0], "max_holder_gets"):
        _err(errors, path,
             "serving: flash_crowd rows need numeric max_holder_gets")
        return
    if flash_repl[0]["max_holder_gets"] >= flash[0]["max_holder_gets"]:
        _err(errors, path,
             f"serving: replication must strictly reduce max-holder "
             f"ingress on the flash crowd "
             f"({flash_repl[0]['max_holder_gets']} vs "
             f"{flash[0]['max_holder_gets']})")


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    errors = []
    for path in argv[1:]:
        check_file(path, errors)
    if errors:
        for e in errors:
            print(f"check_bench_json: {e}", file=sys.stderr)
        return 1
    print(f"check_bench_json: {len(argv) - 1} file(s) OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
