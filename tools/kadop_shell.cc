// kadop_shell — an interactive / scriptable driver for a simulated KadoP
// network. Useful for exploring the system without writing code:
//
//   $ ./build/tools/kadop_shell
//   kadop> net 32
//   kadop> load dblp 2
//   kadop> publish 0
//   kadop> query 5 dpp //article//author[. contains 'Ullman']
//   kadop> stats
//
// Commands also stream from stdin, so the shell can be scripted:
//   printf 'net 8\nload dblp 1\npublish 0\n' | ./build/tools/kadop_shell

#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/kadop.h"
#include "dht/ring.h"
#include "index/codec.h"
#include "obs/buildinfo.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_analysis.h"
#include "xml/corpus.h"

namespace kadop::tools {
namespace {

class Shell {
 public:
  int Run() {
    std::string line;
    const bool interactive = isatty(fileno(stdin));
    while (true) {
      if (interactive) {
        std::printf("kadop> ");
        std::fflush(stdout);
      }
      if (!std::getline(std::cin, line)) break;
      if (!Execute(line)) break;
    }
    return 0;
  }

  /// Executes one command line; returns false on `quit`.
  bool Execute(const std::string& line) {
    std::istringstream in(line);
    std::string cmd;
    if (!(in >> cmd) || cmd[0] == '#') return true;
    if (cmd == "quit" || cmd == "exit") return false;
    if (cmd == "help") {
      Help();
    } else if (cmd == "version" || cmd == "buildinfo") {
      CmdBuildInfo();
    } else if (cmd == "net") {
      CmdNet(in);
    } else if (cmd == "load") {
      CmdLoad(in);
    } else if (cmd == "publish") {
      CmdPublish(in);
    } else if (cmd == "query") {
      CmdQuery(in);
    } else if (cmd == "analyze") {
      CmdAnalyze(in);
    } else if (cmd == "explain") {
      CmdExplain(in);
    } else if (cmd == "stats") {
      CmdStats(in);
    } else if (cmd == "metrics") {
      CmdMetrics();
    } else if (cmd == "trace") {
      CmdTrace(in);
    } else if (cmd == "codec") {
      CmdCodec(in);
    } else if (cmd == "cache") {
      CmdCache(in);
    } else if (cmd == "repl") {
      CmdRepl(in);
    } else if (cmd == "views") {
      CmdViews(in);
    } else if (cmd == "traffic") {
      CmdTraffic();
    } else if (cmd == "join") {
      CmdJoin();
    } else if (cmd == "fail") {
      CmdFail(in);
    } else if (cmd == "restart") {
      CmdRestart(in);
    } else if (cmd == "faults") {
      CmdFaults(in);
    } else if (cmd == "unpublish") {
      CmdUnpublish(in);
    } else if (cmd == "uri") {
      CmdUri(in);
    } else if (cmd == "owner") {
      CmdOwner(in);
    } else {
      std::printf("unknown command '%s' (try 'help')\n", cmd.c_str());
    }
    WarnOnDroppedSpans();
    return true;
  }

 private:
  void Help() {
    std::printf(
        "commands:\n"
        "  net <peers> [nodpp] [repl <n>]   create a network\n"
        "  load dblp <MB> | imdb <#elems> | xmark <#elems> | inex <#pubs>\n"
        "  publish <peer> [<publishers>]    index the loaded corpus\n"
        "  query <peer> <strategy> <xpath>  strategy: baseline dpp dpp_join\n"
        "                                   ab db bloom subquery view auto\n"
        "                                   broadcast\n"
        "  analyze <xpath>                  completeness/precision report\n"
        "  explain <xpath>                  optimizer cost estimates\n"
        "  unpublish <peer> <seq>           withdraw a document\n"
        "  join                             add a peer (with handoff)\n"
        "  fail <peer>                      fail a peer and stabilize\n"
        "  restart <peer>                   bring a failed peer back\n"
        "  faults on [seed=N] [drop=p] [dup=p] [jitter=s] [slow=s]\n"
        "            [slowpeers=a,b,...]    seeded fault injection\n"
        "  faults off | faults              disable / show fault stats\n"
        "  owner <key>                      show the peer owning a DHT key\n"
        "  uri <peer> <doc>                 Doc-relation lookup\n"
        "  stats [json]                     full KadopStats dump\n"
        "  stats peer <N>                   per-peer DHT + load breakdown\n"
        "  metrics                          process-wide metrics registry\n"
        "  trace on|off|dump [json]|clear   virtual-time span tracing\n"
        "  trace report                     per-query phase breakdown\n"
        "  trace export [file]              Chrome trace_event JSON\n"
        "  codec on|off | codec             delta+varint posting transfers\n"
        "  cache on|off|stats|clear         query-side posting cache\n"
        "  repl on|off|stats                hot-data replication + routing\n"
        "  views on|off|stats|list          materialized tree-pattern views\n"
        "  views create <xpath> [name]      materialize a view\n"
        "  views drop <name>                drop a view\n"
        "  version | buildinfo              sanitizer/profiling build line\n"
        "  traffic | help | quit\n");
  }

  void CmdBuildInfo() {
    // The same line BenchReport embeds as "buildinfo" in BENCH_*.json, so
    // shell transcripts and bench artifacts carry identical provenance.
    std::printf("kadop_shell %s\n", obs::BuildInfoString().c_str());
  }

  bool RequireNet() {
    if (!net_) std::printf("no network — run 'net <peers>' first\n");
    return net_ != nullptr;
  }

  void CmdNet(std::istringstream& in) {
    size_t peers = 16;
    in >> peers;
    core::KadopOptions options;
    options.peers = peers;
    std::string flag;
    while (in >> flag) {
      if (flag == "nodpp") options.enable_dpp = false;
      if (flag == "repl") in >> options.dht.replication;
    }
    net_ = std::make_unique<core::KadopNet>(options);
    std::printf("network up: %zu peers, DPP %s, replication %u\n",
                net_->PeerCount(), options.enable_dpp ? "on" : "off",
                options.dht.replication);
  }

  void CmdLoad(std::istringstream& in) {
    std::string kind;
    size_t amount = 1;
    in >> kind >> amount;
    docs_.clear();
    if (kind == "dblp") {
      xml::corpus::DblpOptions opt;
      opt.target_bytes = amount << 20;
      docs_ = xml::corpus::GenerateDblp(opt);
    } else if (kind == "imdb" || kind == "xmark") {
      xml::corpus::SimpleCorpusOptions opt;
      opt.target_elements = amount;
      docs_ = kind == "imdb" ? xml::corpus::GenerateImdb(opt)
                             : xml::corpus::GenerateXmark(opt);
    } else if (kind == "inex") {
      xml::corpus::InexOptions opt;
      opt.publications = amount;
      docs_ = xml::corpus::GenerateInex(opt);
    } else {
      std::printf("unknown corpus '%s'\n", kind.c_str());
      return;
    }
    auto stats = xml::corpus::ComputeStats(docs_);
    std::printf("loaded %zu documents, %zu elements, %.2f MB serialized\n",
                stats.documents, stats.elements,
                static_cast<double>(stats.serialized_bytes) / (1 << 20));
  }

  void CmdPublish(std::istringstream& in) {
    if (!RequireNet()) return;
    if (docs_.empty()) {
      std::printf("no corpus loaded — run 'load' first\n");
      return;
    }
    size_t peer = 0, publishers = 1;
    in >> peer >> publishers;
    net_->RegisterDocuments(docs_);
    double elapsed;
    if (publishers <= 1) {
      std::vector<const xml::Document*> ptrs;
      for (const auto& d : docs_) ptrs.push_back(&d);
      elapsed = net_->PublishAndWait(static_cast<sim::NodeIndex>(peer), ptrs);
    } else {
      std::vector<std::pair<sim::NodeIndex,
                            std::vector<const xml::Document*>>>
          batches(publishers);
      for (size_t i = 0; i < docs_.size(); ++i) {
        batches[i % publishers].first = static_cast<sim::NodeIndex>(
            (peer + i % publishers) % net_->PeerCount());
        batches[i % publishers].second.push_back(&docs_[i]);
      }
      elapsed = net_->ParallelPublishAndWait(batches);
    }
    std::printf("published in %.4f virtual s (%llu postings stored)\n",
                elapsed,
                static_cast<unsigned long long>(
                    net_->dht().AggregateStats().postings_stored));
  }

  void CmdQuery(std::istringstream& in) {
    if (!RequireNet()) return;
    size_t peer = 0;
    std::string strategy;
    in >> peer >> strategy;
    std::string xpath;
    std::getline(in, xpath);
    while (!xpath.empty() && xpath.front() == ' ') xpath.erase(0, 1);
    if (xpath.empty()) {
      std::printf("usage: query <peer> <strategy> <xpath>\n");
      return;
    }
    if (strategy == "broadcast") {
      auto result = net_->BroadcastQueryAndWait(
          static_cast<sim::NodeIndex>(peer), xpath);
      if (!result.ok()) {
        std::printf("error: %s\n", result.status().ToString().c_str());
        return;
      }
      std::printf("broadcast: %zu answers in %.4f s\n",
                  result.value().final_answers.size(),
                  result.value().total_time);
      return;
    }
    query::QueryOptions options;
    if (strategy == "baseline") {
      options.strategy = query::QueryStrategy::kBaseline;
    } else if (strategy == "dpp") {
      options.strategy = query::QueryStrategy::kDpp;
    } else if (strategy == "dpp_join") {
      options.strategy = query::QueryStrategy::kDppJoin;
      options.dpp_join_available = true;
    } else if (strategy == "ab") {
      options.strategy = query::QueryStrategy::kAbReducer;
    } else if (strategy == "db") {
      options.strategy = query::QueryStrategy::kDbReducer;
    } else if (strategy == "bloom") {
      options.strategy = query::QueryStrategy::kBloomReducer;
    } else if (strategy == "subquery") {
      options.strategy = query::QueryStrategy::kSubQueryReducer;
    } else if (strategy == "view") {
      options.strategy = query::QueryStrategy::kView;
      options.dpp_join_available = true;  // best fallback on a view miss
    } else if (strategy == "auto") {
      options.strategy = query::QueryStrategy::kAuto;
    } else {
      std::printf("unknown strategy '%s'\n", strategy.c_str());
      return;
    }
    if (net_->fault_plan() != nullptr) {
      // With faults on, ride out message loss instead of failing the
      // query: bounded retries, and losses surface as a degraded result.
      options.fetch_retry.timeout_s = 0.5;
    }
    options.cache_postings = cache_postings_;
    auto result =
        net_->QueryAndWait(static_cast<sim::NodeIndex>(peer), xpath, options);
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      return;
    }
    const query::QueryMetrics& m = result.value().metrics;
    std::printf(
        "%zu answers in %zu documents | response %.4f s, first answer "
        "%.4f s%s\n",
        result.value().answers.size(), result.value().matched_docs.size(),
        m.ResponseTime(), m.TimeToFirstAnswer(),
        m.degraded ? " | DEGRADED (partial: faults ate data)"
                   : (m.complete ? "" : " | incomplete"));
    std::printf(
        "ran %s | postings %.1f KB, AB filters %.1f KB, DB filters %.1f KB"
        " | normalized volume %.3f\n",
        std::string(query::QueryStrategyName(m.effective_strategy)).c_str(),
        m.posting_bytes / 1024.0, m.ab_filter_bytes / 1024.0,
        m.db_filter_bytes / 1024.0, m.NormalizedDataVolume());
    if (m.posting_wire_bytes != m.posting_bytes) {
      std::printf("codec: %.1f KB on the wire (%.2fx vs raw)\n",
                  m.posting_wire_bytes / 1024.0,
                  m.posting_wire_bytes > 0
                      ? static_cast<double>(m.posting_bytes) /
                            static_cast<double>(m.posting_wire_bytes)
                      : 0.0);
    }
    if (m.view_hit) {
      std::printf("view: hit (%s rewrite)\n",
                  m.view_exact ? "exact" : "containment");
    } else if (m.view_fallback) {
      std::printf("view: fallback — extent unavailable or stale, reran as "
                  "%s\n",
                  std::string(query::QueryStrategyName(m.effective_strategy))
                      .c_str());
    }
    if (m.join_input_wire_bytes > 0) {
      std::printf("join input: %.1f KB pulled at the holder\n",
                  m.join_input_wire_bytes / 1024.0);
    }
    if (m.cache_hits + m.cache_misses > 0) {
      std::printf("posting cache: %llu hits, %llu misses\n",
                  static_cast<unsigned long long>(m.cache_hits),
                  static_cast<unsigned long long>(m.cache_misses));
    }
    if (m.blocks_fetched + m.blocks_skipped > 0) {
      std::printf("DPP blocks: %llu fetched, %llu skipped\n",
                  static_cast<unsigned long long>(m.blocks_fetched),
                  static_cast<unsigned long long>(m.blocks_skipped));
    }
  }

  void CmdAnalyze(std::istringstream& in) {
    std::string xpath;
    std::getline(in, xpath);
    auto pattern = query::ParsePattern(xpath);
    if (!pattern.ok()) {
      std::printf("parse error: %s\n", pattern.status().ToString().c_str());
      return;
    }
    std::printf("pattern: %s (%zu nodes)\n",
                pattern.value().ToString().c_str(), pattern.value().size());
    auto analysis = query::AnalyzePattern(pattern.value());
    std::printf("index query: %s, %s%s%s\n",
                analysis.complete ? "complete" : "INCOMPLETE",
                analysis.precise ? "precise" : "IMPRECISE",
                analysis.notes.empty() ? "" : " — ",
                analysis.notes.c_str());
  }

  void CmdExplain(std::istringstream& in) {
    if (!RequireNet()) return;
    std::string xpath;
    std::getline(in, xpath);
    query::QueryOptions options;
    auto result = net_->ExplainQueryAndWait(0, xpath, options);
    if (result.ok()) {
      std::printf("%s", result.value().c_str());
    } else {
      std::printf("error: %s\n", result.status().ToString().c_str());
    }
  }

  void CmdStats(std::istringstream& in) {
    if (!RequireNet()) return;
    std::string mode;
    in >> mode;
    if (mode == "peer") {
      CmdStatsPeer(in);
      return;
    }
    const core::KadopStats stats = net_->Stats();
    if (mode == "json") {
      std::printf("%s\n", stats.ToJson().c_str());
    } else {
      std::printf("%s", stats.ToText().c_str());
    }
  }

  /// Per-peer breakdown: that peer's DhtStats plus every registry metric
  /// filed under its load prefix (`load.holder.<N>.*`), so hot holders can
  /// be singled out without grepping the full metrics dump.
  void CmdStatsPeer(std::istringstream& in) {
    size_t peer = 0;
    if (!(in >> peer) || peer >= net_->PeerCount()) {
      std::printf("usage: stats peer <N>  (0 <= N < %zu)\n",
                  net_->PeerCount());
      return;
    }
    const auto node = static_cast<sim::NodeIndex>(peer);
    const dht::DhtStats& s = net_->dht().peer(node)->stats();
    std::printf(
        "peer %zu:\n"
        "  routed_messages   %llu\n"
        "  route_hops        %llu\n"
        "  locates           %llu\n"
        "  appends_received  %llu\n"
        "  postings_stored   %llu\n"
        "  gets_served       %llu\n"
        "  blocks_sent       %llu\n"
        "  app_requests      %llu\n",
        peer, static_cast<unsigned long long>(s.routed_messages),
        static_cast<unsigned long long>(s.route_hops),
        static_cast<unsigned long long>(s.locates),
        static_cast<unsigned long long>(s.appends_received),
        static_cast<unsigned long long>(s.postings_stored),
        static_cast<unsigned long long>(s.gets_served),
        static_cast<unsigned long long>(s.blocks_sent),
        static_cast<unsigned long long>(s.app_requests));
    const std::string prefix = "load.holder." + std::to_string(peer) + ".";
    const obs::MetricsSnapshot snap =
        obs::MetricRegistry::Default().Snapshot();
    bool any = false;
    for (const auto& [name, value] : snap.counters) {
      if (name.rfind(prefix, 0) != 0) continue;
      if (!any) std::printf("  load counters:\n");
      any = true;
      std::printf("    %-24s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(value));
    }
    if (!any) std::printf("  load counters: none recorded\n");
  }

  void CmdMetrics() {
    std::printf("%s",
                obs::MetricRegistry::Default().Snapshot().ToText().c_str());
  }

  void CmdTrace(std::istringstream& in) {
    std::string sub;
    in >> sub;
    auto& tracer = obs::Tracer::Default();
    if (sub == "on") {
      tracer.SetEnabled(true);
      std::printf("tracing on\n");
    } else if (sub == "off") {
      tracer.SetEnabled(false);
      std::printf("tracing off\n");
    } else if (sub == "dump") {
      std::string mode;
      in >> mode;
      if (mode == "json") {
        std::printf("%s\n", tracer.DumpJson().c_str());
      } else {
        std::printf("%s", tracer.DumpText().c_str());
      }
    } else if (sub == "clear") {
      tracer.Clear();
      std::printf("trace buffer cleared\n");
    } else if (sub == "report") {
      const std::vector<obs::SpanId> roots = obs::TraceRoots(tracer);
      if (roots.empty()) {
        std::printf("no traced queries (run 'trace on' before querying)\n");
        return;
      }
      for (const obs::SpanId root : roots) {
        std::printf("%s", obs::PhaseReportText(tracer, root).c_str());
      }
    } else if (sub == "export") {
      std::string file;
      in >> file;
      if (file.empty()) file = "trace.json";
      std::ofstream out(file, std::ios::binary | std::ios::trunc);
      if (!out) {
        std::printf("cannot open '%s' for writing\n", file.c_str());
        return;
      }
      const std::string json = obs::ChromeTraceJson(tracer);
      out << json;
      out.close();
      std::printf("wrote %zu bytes to %s (open in chrome://tracing or "
                  "Perfetto)\n",
                  json.size(), file.c_str());
    } else {
      std::printf("usage: trace on|off|dump [json]|report|export [file]|"
                  "clear\n");
    }
  }

  /// Satellite of the span-capacity work: surface silent trace loss exactly
  /// once per shell session so interactive users learn the buffer clipped.
  void WarnOnDroppedSpans() {
    if (warned_dropped_) return;
    const uint64_t dropped = obs::Tracer::Default().dropped();
    if (dropped == 0) return;
    warned_dropped_ = true;
    std::printf("warning: trace buffer full — %llu span(s) dropped; raise "
                "Tracer capacity or 'trace clear' between runs\n",
                static_cast<unsigned long long>(dropped));
  }

  void CmdCodec(std::istringstream& in) {
    std::string sub;
    in >> sub;
    if (sub == "on" || sub == "off") {
      index::codec::SetCompressionEnabled(sub == "on");
    } else if (!sub.empty()) {
      std::printf("usage: codec [on|off]\n");
      return;
    }
    std::printf("codec %s (delta+varint posting transfers; per-query "
                "override via QueryOptions::compress)\n",
                index::codec::CompressionEnabled() ? "on" : "off");
  }

  void CmdCache(std::istringstream& in) {
    std::string sub;
    in >> sub;
    if (sub == "on" || sub == "off") {
      cache_postings_ = sub == "on";
      std::printf("posting cache %s for subsequent queries\n", sub.c_str());
      return;
    }
    if (!RequireNet()) return;
    if (sub == "clear") {
      for (size_t p = 0; p < net_->PeerCount(); ++p) {
        net_->peer(static_cast<sim::NodeIndex>(p))
            ->query_client()
            .posting_cache()
            .Clear();
      }
      std::printf("posting caches cleared on all peers\n");
      return;
    }
    if (!sub.empty() && sub != "stats") {
      std::printf("usage: cache on|off|stats|clear\n");
      return;
    }
    size_t entries = 0, bytes = 0;
    uint64_t hits = 0, misses = 0, evictions = 0, invalidations = 0;
    for (size_t p = 0; p < net_->PeerCount(); ++p) {
      const auto& cache = net_->peer(static_cast<sim::NodeIndex>(p))
                              ->query_client()
                              .posting_cache();
      entries += cache.entries();
      bytes += cache.bytes();
      hits += cache.hits();
      misses += cache.misses();
      evictions += cache.evictions();
      invalidations += cache.invalidations();
    }
    std::printf(
        "posting cache %s | %zu entries, %.1f KB across %zu peers\n"
        "  hits %llu, misses %llu, evictions %llu, invalidations %llu\n",
        cache_postings_ ? "on" : "off", entries, bytes / 1024.0,
        net_->PeerCount(), static_cast<unsigned long long>(hits),
        static_cast<unsigned long long>(misses),
        static_cast<unsigned long long>(evictions),
        static_cast<unsigned long long>(invalidations));
  }

  void CmdRepl(std::istringstream& in) {
    std::string sub;
    in >> sub;
    if (!RequireNet()) return;
    dht::ReplicationManager& repl = net_->dht().replication();
    if (sub == "on" || sub == "off") {
      repl.SetEnabled(sub == "on");
      // Turning off sends replica drops; let them land before prompting.
      net_->RunToIdle();
      std::printf("hot-data replication %s\n", sub.c_str());
      return;
    }
    if (!sub.empty() && sub != "stats") {
      std::printf("usage: repl on|off|stats\n");
      return;
    }
    auto& r = obs::MetricRegistry::Default();
    std::printf(
        "hot-data replication %s | %zu keys under management, "
        "%zu tracked by load\n"
        "  promotions %llu, demotions %llu, replica gets %llu, "
        "stale rejects %llu\n"
        "  bytes copied %llu, tracker evictions %llu\n",
        repl.enabled() ? "on" : "off", repl.ReplicatedKeyCount(),
        repl.tracker().tracked(),
        static_cast<unsigned long long>(
            r.GetCounter("repl.promotions")->value()),
        static_cast<unsigned long long>(
            r.GetCounter("repl.demotions")->value()),
        static_cast<unsigned long long>(
            r.GetCounter("repl.replica_gets")->value()),
        static_cast<unsigned long long>(
            r.GetCounter("repl.stale_rejects")->value()),
        static_cast<unsigned long long>(
            r.GetCounter("repl.bytes_copied")->value()),
        static_cast<unsigned long long>(repl.tracker().evictions()));
  }

  void CmdViews(std::istringstream& in) {
    std::string sub;
    in >> sub;
    if (!RequireNet()) return;
    query::ViewCatalog& views = net_->views();
    if (sub == "on" || sub == "off") {
      views.SetEnabled(sub == "on");
      std::printf("materialized views %s\n", sub.c_str());
      return;
    }
    if (sub == "list") {
      const std::string listing = views.Describe();
      std::printf("%s", listing.empty() ? "no views registered\n"
                                        : listing.c_str());
      return;
    }
    if (sub == "create") {
      std::string xpath, name;
      in >> xpath >> name;
      if (xpath.empty()) {
        std::printf("usage: views create <xpath> [name]\n");
        return;
      }
      auto result = net_->CreateViewAndWait(xpath, name);
      if (!result.ok()) {
        std::printf("error: %s\n", result.status().ToString().c_str());
        return;
      }
      const query::ViewCatalog::Entry* entry = views.Find(result.value());
      std::printf("view '%s' materialized: %zu answers\n",
                  result.value().c_str(),
                  entry != nullptr ? entry->answers : 0);
      return;
    }
    if (sub == "drop") {
      std::string name;
      in >> name;
      if (name.empty() || !net_->DropView(name)) {
        std::printf("no such view '%s'\n", name.c_str());
        return;
      }
      std::printf("view '%s' dropped\n", name.c_str());
      return;
    }
    if (!sub.empty() && sub != "stats") {
      std::printf("usage: views on|off|stats|list|create <xpath>|drop <n>\n");
      return;
    }
    auto& r = obs::MetricRegistry::Default();
    std::printf(
        "materialized views %s | %zu registered\n"
        "  hits %llu (%llu exact), misses %llu, rewrites %llu, "
        "fallbacks %llu\n"
        "  maintenance tuples %llu, bytes served %llu\n"
        "  advisor promotions %llu, demotions %llu\n",
        views.enabled() ? "on" : "off", views.entries().size(),
        static_cast<unsigned long long>(r.GetCounter("view.hits")->value()),
        static_cast<unsigned long long>(
            r.GetCounter("view.exact_hits")->value()),
        static_cast<unsigned long long>(r.GetCounter("view.misses")->value()),
        static_cast<unsigned long long>(
            r.GetCounter("view.rewrites")->value()),
        static_cast<unsigned long long>(
            r.GetCounter("view.fallbacks")->value()),
        static_cast<unsigned long long>(
            r.GetCounter("view.maintenance_tuples")->value()),
        static_cast<unsigned long long>(
            r.GetCounter("view.bytes_served")->value()),
        static_cast<unsigned long long>(
            r.GetCounter("view.promotions")->value()),
        static_cast<unsigned long long>(
            r.GetCounter("view.demotions")->value()));
  }

  void CmdTraffic() {
    if (!RequireNet()) return;
    const sim::TrafficStats& t = net_->network().traffic();
    std::printf("messages %llu, bytes %.2f MB\n",
                static_cast<unsigned long long>(t.messages),
                t.bytes / (1024.0 * 1024.0));
    for (size_t c = 0;
         c < static_cast<size_t>(sim::TrafficCategory::kCategoryCount);
         ++c) {
      std::printf("  %-8s %10.2f KB\n",
                  std::string(sim::TrafficCategoryName(
                                  static_cast<sim::TrafficCategory>(c)))
                      .c_str(),
                  t.bytes_by_category[c] / 1024.0);
    }
  }

  void CmdJoin() {
    if (!RequireNet()) return;
    const sim::NodeIndex node = net_->JoinPeerAndWait();
    std::printf("peer %u joined (keys handed off); network now has %zu "
                "peers\n",
                node, net_->PeerCount());
  }

  void CmdFail(std::istringstream& in) {
    if (!RequireNet()) return;
    size_t peer = 0;
    in >> peer;
    net_->FailPeerAndStabilize(static_cast<sim::NodeIndex>(peer));
    std::printf("peer %zu failed; overlay restabilized\n", peer);
  }

  void CmdRestart(std::istringstream& in) {
    if (!RequireNet()) return;
    size_t peer = 0;
    in >> peer;
    net_->RestartPeerAndStabilize(static_cast<sim::NodeIndex>(peer));
    std::printf("peer %zu restarted; overlay restabilized\n", peer);
  }

  void CmdFaults(std::istringstream& in) {
    if (!RequireNet()) return;
    std::string token;
    if (!(in >> token)) {
      const sim::FaultPlan* plan = net_->fault_plan();
      if (plan == nullptr) {
        std::printf("faults off\n");
        return;
      }
      const sim::FaultStats& s = plan->stats();
      std::printf(
          "faults on: seed=%llu drop=%.3f dup=%.3f jitter=%.4f slow=%.4f | "
          "dropped %llu, duplicated %llu, delayed %llu\n",
          static_cast<unsigned long long>(plan->options().seed),
          plan->options().drop_p, plan->options().dup_p,
          plan->options().jitter_mean_s, plan->options().slow_extra_s,
          static_cast<unsigned long long>(s.drops),
          static_cast<unsigned long long>(s.dups),
          static_cast<unsigned long long>(s.delayed));
      return;
    }
    if (token == "off") {
      net_->DisableFaults();
      std::printf("faults off\n");
      return;
    }
    if (token != "on") {
      std::printf("usage: faults [on [key=value ...] | off]\n");
      return;
    }
    sim::FaultOptions options;
    while (in >> token) {
      const size_t eq = token.find('=');
      if (eq == std::string::npos) {
        std::printf("ignoring malformed knob '%s' (want key=value)\n",
                    token.c_str());
        continue;
      }
      const std::string key = token.substr(0, eq);
      const std::string value = token.substr(eq + 1);
      if (key == "seed") {
        options.seed = std::stoull(value);
      } else if (key == "drop") {
        options.drop_p = std::stod(value);
      } else if (key == "dup") {
        options.dup_p = std::stod(value);
      } else if (key == "jitter") {
        options.jitter_mean_s = std::stod(value);
      } else if (key == "slow") {
        options.slow_extra_s = std::stod(value);
      } else if (key == "slowpeers") {
        std::istringstream list(value);
        std::string item;
        while (std::getline(list, item, ',')) {
          if (!item.empty()) {
            options.slow_peers.push_back(
                static_cast<sim::NodeIndex>(std::stoul(item)));
          }
        }
      } else {
        std::printf("unknown fault knob '%s'\n", key.c_str());
      }
    }
    net_->EnableFaults(options);
    std::printf(
        "faults on: seed=%llu drop=%.3f dup=%.3f jitter=%.4f slow=%.4f "
        "(%zu slow peers)\n",
        static_cast<unsigned long long>(options.seed), options.drop_p,
        options.dup_p, options.jitter_mean_s, options.slow_extra_s,
        options.slow_peers.size());
  }

  void CmdUnpublish(std::istringstream& in) {
    if (!RequireNet()) return;
    size_t peer = 0, seq = 0;
    in >> peer >> seq;
    const bool ok = net_->UnpublishAndWait(static_cast<sim::NodeIndex>(peer),
                                           static_cast<index::DocSeq>(seq));
    std::printf(ok ? "document (%zu,%zu) withdrawn\n"
                   : "no such document (%zu,%zu)\n",
                peer, seq);
  }

  void CmdUri(std::istringstream& in) {
    if (!RequireNet()) return;
    size_t peer = 0, doc = 0;
    in >> peer >> doc;
    auto uri = net_->LookupDocUriAndWait(
        0, index::DocId{static_cast<index::PeerId>(peer),
                        static_cast<index::DocSeq>(doc)});
    if (uri.ok()) {
      std::printf("%s\n", uri.value().c_str());
    } else {
      std::printf("error: %s\n", uri.status().ToString().c_str());
    }
  }

  void CmdOwner(std::istringstream& in) {
    if (!RequireNet()) return;
    std::string key;
    in >> key;
    std::printf("key '%s' -> peer %u\n", key.c_str(),
                net_->dht().OwnerOf(dht::HashKey(key)));
  }

  std::unique_ptr<core::KadopNet> net_;
  std::vector<xml::Document> docs_;
  bool cache_postings_ = false;
  bool warned_dropped_ = false;
};

}  // namespace
}  // namespace kadop::tools

int main() {
  kadop::tools::Shell shell;
  return shell.Run();
}
