"""Shared infrastructure for the KadoP static-analysis tools.

Both `kadop_lint.py` (token-level invariants, KDP001-KDP010) and
`kadop_analyze.py` (AST-level determinism/protocol rules, KDP011+) build on
this module:

  * comment/string stripping that keeps offsets stable,
  * the `KDP-ALLOW` suppression syntax shared by every rule,
  * the Finding model and the merged machine-readable findings JSON
    (validated by tools/check_findings_json.py, the same way
    check_bench_json.py validates BENCH_*.json).

Suppression syntax
------------------

    // KDP-ALLOW(KDP012): iteration only sums counts; order cannot escape
    for (const auto& [k, v] : index_) total += v;

One comment suppresses the named rule(s) on its own line and — when the
comment stands alone on its line — on the first following code line
(intervening pure-comment lines are skipped, so multi-line justifications
work). Multiple rules separate with commas: `KDP-ALLOW(KDP011,KDP013)`.
The reason after the colon is MANDATORY; a reasonless KDP-ALLOW is itself
reported as rule KDP000 and fails the run. Every accepted suppression is
printed in an inventory so reviewers see the full exception surface.
"""

from __future__ import annotations

import json
import re
import sys
from pathlib import Path

# ---------------------------------------------------------------------------
# Source preprocessing
# ---------------------------------------------------------------------------


def strip_comments_and_strings(text: str) -> str:
    """Replace comment and string-literal contents with spaces.

    Keeps offsets and line numbers stable so violation positions map back
    to the original file. Handles //, /* */, "..." (with escapes) and
    '...'.
    """
    out = list(text)
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            for k in range(i, j):
                out[k] = " "
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j == -1 else j
            for k in range(i, j + 2):
                if out[k] != "\n":
                    out[k] = " "
            i = j + 2
        elif c == '"' or c == "'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                if text[j] == "\\":
                    j += 1
                j += 1
            for k in range(i + 1, min(j, n)):
                if out[k] != "\n":
                    out[k] = " "
            i = j + 1
        else:
            i += 1
    return "".join(out)


def line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


# ---------------------------------------------------------------------------
# Findings
# ---------------------------------------------------------------------------


class Finding:
    """One rule violation at a source location.

    `suppressed` / `suppression_reason` are filled in by
    `apply_suppressions`; an unsuppressed finding fails the run.
    """

    def __init__(self, tool: str, rule: str, path: str, line: int,
                 message: str):
        self.tool = tool
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message
        self.suppressed = False
        self.suppression_reason: str | None = None

    def __str__(self) -> str:
        tag = " (suppressed)" if self.suppressed else ""
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}{tag}"

    def to_json(self) -> dict:
        return {
            "tool": self.tool,
            "rule": self.rule,
            "file": self.path,
            "line": self.line,
            "message": self.message,
            "suppressed": self.suppressed,
            "suppression_reason": self.suppression_reason,
        }


# ---------------------------------------------------------------------------
# KDP-ALLOW suppressions
# ---------------------------------------------------------------------------

RE_KDP_ALLOW = re.compile(
    r"//\s*KDP-ALLOW\s*\(\s*([A-Za-z0-9_,\s]*)\s*\)\s*(?::\s*(.*))?")


class Suppression:
    def __init__(self, rules: list[str], path: str, comment_line: int,
                 covered_lines: set[int], reason: str):
        self.rules = rules
        self.path = path
        self.comment_line = comment_line
        self.covered_lines = covered_lines
        self.reason = reason
        self.used = False

    def to_json(self) -> dict:
        return {
            "rules": self.rules,
            "file": self.path,
            "line": self.comment_line,
            "reason": self.reason,
            "used": self.used,
        }


def parse_suppressions(tool: str, rel: str,
                       text: str) -> tuple[list[Suppression], list[Finding]]:
    """Extracts KDP-ALLOW comments from raw (un-stripped) file text.

    Returns (suppressions, malformed-findings). A KDP-ALLOW without a
    non-empty reason or without any rule id is malformed and reported as
    rule KDP000.
    """
    suppressions: list[Suppression] = []
    malformed: list[Finding] = []
    lines = text.split("\n")
    for idx, raw_line in enumerate(lines):
        m = RE_KDP_ALLOW.search(raw_line)
        if not m:
            continue
        lineno = idx + 1
        rules = [r.strip().upper() for r in m.group(1).split(",") if r.strip()]
        reason = (m.group(2) or "").strip()
        if not rules or not reason:
            malformed.append(Finding(
                tool, "KDP000", rel, lineno,
                "malformed KDP-ALLOW: a rule list and a non-empty reason "
                "after ':' are mandatory (KDP-ALLOW(KDPxxx): <why>)"))
            continue
        covered = {lineno}
        # A standalone comment also covers the next code line, skipping
        # pure-comment continuation lines.
        if raw_line.lstrip().startswith("//"):
            j = idx + 1
            while j < len(lines) and lines[j].lstrip().startswith("//"):
                j += 1
            if j < len(lines):
                covered.add(j + 1)
        suppressions.append(Suppression(rules, rel, lineno, covered, reason))
    return suppressions, malformed


def apply_suppressions(findings: list[Finding],
                       suppressions: list[Suppression]) -> None:
    """Marks findings covered by a matching KDP-ALLOW as suppressed."""
    by_file: dict[str, list[Suppression]] = {}
    for s in suppressions:
        by_file.setdefault(s.path, []).append(s)
    for f in findings:
        if f.rule == "KDP000":
            continue  # malformed suppressions are never suppressible
        for s in by_file.get(f.path, []):
            if f.rule in s.rules and f.line in s.covered_lines:
                f.suppressed = True
                f.suppression_reason = s.reason
                s.used = True
                break


def print_suppression_inventory(suppressions: list[Suppression],
                                own_rules: set[str],
                                stream=sys.stdout) -> None:
    """Prints every suppression plus a staleness note for unused ones.

    `own_rules` limits the unused-check to rules this tool evaluates, so
    e.g. the analyzer does not call a KDP002 allow (a kadop_lint rule)
    stale.
    """
    if not suppressions:
        return
    print("KDP-ALLOW inventory:", file=stream)
    for s in sorted(suppressions, key=lambda s: (s.path, s.comment_line)):
        print(f"  {s.path}:{s.comment_line}: "
              f"[{','.join(s.rules)}] {s.reason}", file=stream)
        if not s.used and all(r in own_rules for r in s.rules):
            print("    note: no finding matched this allow here "
                  "(stale? consider removing)", file=stream)


# ---------------------------------------------------------------------------
# Machine-readable findings JSON (merged schema, schema_version 1)
# ---------------------------------------------------------------------------


def findings_json(tools: list[str], root: Path, findings: list[Finding],
                  suppressions: list[Suppression],
                  files_scanned: int) -> dict:
    unsuppressed = [f for f in findings if not f.suppressed]
    return {
        "schema_version": 1,
        "tools": tools,
        "root": str(root),
        "findings": [f.to_json() for f in
                     sorted(findings, key=lambda f: (f.path, f.line, f.rule))],
        "suppressions": [s.to_json() for s in
                         sorted(suppressions,
                                key=lambda s: (s.path, s.comment_line))],
        "summary": {
            "files_scanned": files_scanned,
            "findings": len(findings),
            "suppressed": len(findings) - len(unsuppressed),
            "unsuppressed": len(unsuppressed),
        },
    }


def write_findings_json(path: Path, payload: dict) -> None:
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
