#!/usr/bin/env python3
"""Validates Chrome trace_event JSON exported by `kadop_shell trace export`
(obs::ChromeTraceJson).

Hand-rolled schema check (no third-party deps). The file must be a JSON
object with

  traceEvents     non-empty array of event objects
  displayTimeUnit "ms" (optional but, when present, must be "ms")

and every event must satisfy

  name   non-empty string
  ph     one of "X" (complete span), "i" (instant), "M" (metadata)
  pid    integer (the simulated peer)
  tid    integer (the trace id)
  X, i   numeric ts >= 0 (microseconds of virtual time)
  X      numeric dur >= 0
  i      scope "s" == "t" (thread-scoped instant)
  M      args object (e.g. process_name labels)

At least one "X" event must be present — a trace with no spans means the
exporter or the tracer is broken. Exits non-zero listing every violation.

Usage: check_trace_json.py FILE [FILE...]
"""

import json
import sys

VALID_PH = {"X", "i", "M"}


def _err(errors, path, message):
    errors.append(f"{path}: {message}")


def check_event(ev, where, path, errors):
    if not isinstance(ev, dict):
        _err(errors, path, f"{where} must be an object")
        return
    name = ev.get("name")
    if not isinstance(name, str) or not name:
        _err(errors, path, f"{where}: 'name' must be a non-empty string")
    ph = ev.get("ph")
    if ph not in VALID_PH:
        _err(errors, path, f"{where}: 'ph' must be one of {sorted(VALID_PH)}, "
                           f"got {ph!r}")
        return
    for key in ("pid", "tid"):
        if not isinstance(ev.get(key), int):
            _err(errors, path, f"{where}: '{key}' must be an integer")
    if ph in ("X", "i"):
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            _err(errors, path, f"{where}: 'ts' must be a number >= 0")
    if ph == "X":
        dur = ev.get("dur")
        if not isinstance(dur, (int, float)) or dur < 0:
            _err(errors, path, f"{where}: 'dur' must be a number >= 0")
    if ph == "i" and ev.get("s") != "t":
        _err(errors, path, f"{where}: instant events must have scope 's':'t'")
    if ph == "M" and not isinstance(ev.get("args"), dict):
        _err(errors, path, f"{where}: metadata events need an 'args' object")


def check_file(path, errors):
    try:
        with open(path, "r", encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        _err(errors, path, f"unreadable or invalid JSON: {e}")
        return

    if not isinstance(data, dict):
        _err(errors, path, "top level must be a JSON object")
        return
    if "displayTimeUnit" in data and data["displayTimeUnit"] != "ms":
        _err(errors, path, "'displayTimeUnit' must be 'ms' when present")

    events = data.get("traceEvents")
    if not isinstance(events, list) or not events:
        _err(errors, path, "'traceEvents' must be a non-empty array")
        return
    for i, ev in enumerate(events):
        check_event(ev, f"traceEvents[{i}]", path, errors)
    if not any(isinstance(ev, dict) and ev.get("ph") == "X" for ev in events):
        _err(errors, path, "no 'X' (complete span) events — empty trace")


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    errors = []
    for path in argv[1:]:
        check_file(path, errors)
    if errors:
        for e in errors:
            print(f"check_trace_json: {e}", file=sys.stderr)
        return 1
    print(f"check_trace_json: {len(argv) - 1} file(s) OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
