#!/usr/bin/env python3
"""kadop_analyze: AST-level determinism & protocol analyzer for KadoP.

Every claim this reproduction makes — fig2/fig3 traffic numbers, the chaos
suite, the PR 4/5 byte-identity guarantees — rests on *seeded determinism*:
two runs with the same seeds must be byte-identical in every observable
(virtual times, traffic counters, metric snapshots, trace dumps).
`kadop_lint.py` is token-level and cannot see the constructs that break
that property. This tool closes the gap with the KDP011+ rule family:

  KDP011  wall-clock-escape   std::chrono::{system,steady,high_resolution}_
                              clock, time(), gettimeofday, clock_gettime or
                              an #include <chrono> outside the sanctioned
                              timing shim (src/obs/profile_clock.*).
                              Virtual time must come from the sim clock;
                              wall time only via obs::ProfileNowNs().
  KDP012  unordered-iteration std::unordered_{map,set,...} iterated by a
                              range-for whose body reaches a
                              nondeterminism-sensitive sink (wire message
                              construction/Send, Tracer, JsonWriter/ToJson,
                              bench report rows) without an intervening
                              sort. Hash-bucket order is a stdlib
                              implementation detail; letting it pick the
                              send order changes the whole event schedule.
  KDP013  rng-escape          std::random_device, rand()/srand(), raw
                              std::mt19937 / default_random_engine or an
                              #include <random> outside the seeded RNG
                              (src/common/random.*) and src/sim. All
                              randomness must flow from kadop::Rng(seed).
  KDP014  pointer-keyed-order std::map/std::set keyed by a pointer type
                              (or std::less/greater over pointers):
                              iteration order is the allocation order of
                              addresses and varies run-to-run under ASLR.
  KDP015  status-discard      (void)-cast, std::ignore =, or comma-operator
                              discard of a call returning [[nodiscard]]
                              Status/Result. The cast defeats the PR 1
                              annotation silently; deliberate discards need
                              a KDP-ALLOW with a reason instead.
  KDP016  span-leak           a local SpanId assigned from Tracer::Begin/
                              BeginRoot with no End(var) anywhere after it,
                              or with a `return` between the Begin and the
                              first End(var). A leaked span never closes:
                              it poisons OpenSpans() leak checks, the
                              critical-path walk, and the phase breakdown.
                              Member spans (trailing `_`) own their
                              lifecycle across methods and are exempt.

Backends
--------
The analyzer is compile_commands.json-driven and resolves symbol facts
(which names are unordered containers, which functions return
Status/Result) through the best available backend:

  1. libclang Python bindings (clang.cindex) — full AST type resolution,
  2. `clang++ -Xclang -ast-dump=json` parsing when only the binary exists,
  3. a built-in C++ lexer/def-scanner (always available, zero deps).

Backends 1 and 2 *augment* the built-in facts; the structural rule engine
(scope tracking, range-for bodies, sink reachability, suppressions) is
shared, so results are reproducible on machines without LLVM — the
fixtures and ctest cases pin the built-in backend explicitly.

Suppressions use the shared `// KDP-ALLOW(KDPxxx): <reason>` syntax
(kdp_common.py); reasons are mandatory and the accepted inventory is
printed on every run.

Usage:
  kadop_analyze.py --root <repo>                      scan src/ tools/ bench/
  kadop_analyze.py --root <repo> --json findings.json [--with-lint]
  kadop_analyze.py --root <repo> --self-test          fixture pairs fire/stay clean
  kadop_analyze.py --root <repo> --meta-test          rule removed => fixture fails
  kadop_analyze.py --root <repo> --audit-unordered    list every unordered range-for

Exit status: 0 clean, 1 unsuppressed findings (or self/meta-test failure),
2 usage.
"""

from __future__ import annotations

import argparse
import json
import re
import shutil
import subprocess
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from kdp_common import (Finding, apply_suppressions, findings_json, line_of,
                        parse_suppressions, print_suppression_inventory,
                        strip_comments_and_strings, write_findings_json)

TOOL = "kadop_analyze"
ALL_RULES = ("KDP011", "KDP012", "KDP013", "KDP014", "KDP015", "KDP016")

# Path policy (rel paths are posix, repo-root-relative):
#   scanned tree      src/**, tools/*.cc|.h (fixtures excluded), bench/**
#   KDP011 scope      src/ + tools/ — bench/ is exempt by design: benches
#                     exist to measure wall throughput; their numbers are
#                     never part of a determinism diff.
#   KDP011 exempt     src/obs/profile_clock.* (the sanctioned shim)
#   KDP013 exempt     src/common/random.* (the seeded RNG itself), src/sim/
#                     (jitter/fault draws own a seeded Rng by contract)
# No path is exempt from KDP011 inside src/ — even the profiling shim
# (src/obs/profile_clock.cc) carries explicit KDP-ALLOW comments, so its
# gated wall-clock reads stay visible in the suppression inventory.
KDP011_EXEMPT_PREFIXES = ()
KDP013_EXEMPT_PREFIXES = ("src/common/random.", "src/sim/")


# ---------------------------------------------------------------------------
# Symbol facts (what the backends produce)
# ---------------------------------------------------------------------------


class Facts:
    """Repo-wide symbol knowledge the structural rules consume."""

    def __init__(self) -> None:
        # Variable / member / accessor names with unordered container type.
        self.unordered_names: set[str] = set()
        # Type alias names that resolve to unordered containers.
        self.unordered_aliases: set[str] = set()
        # Function names returning Status / Result<T>.
        self.status_fns: set[str] = set()
        self.backend = "internal"

    def merge(self, other: "Facts") -> None:
        self.unordered_names |= other.unordered_names
        self.unordered_aliases |= other.unordered_aliases
        self.status_fns |= other.status_fns


RE_UNORDERED_DECL = re.compile(r"\bstd\s*::\s*unordered_(?:multi)?(?:map|set)\s*<")
RE_UNORDERED_ALIAS = re.compile(
    r"\busing\s+(\w+)\s*=\s*std\s*::\s*unordered_(?:multi)?(?:map|set)\s*<")
RE_STATUS_FN = re.compile(
    r"(?:^|[;{}\n]\s*|\bvirtual\s+|\]\]\s*|\bstatic\s+)"
    r"(?:Status|Result\s*<[^;{}=]{1,120}?>)\s+"
    r"(?:[A-Za-z_]\w*\s*::\s*)*([A-Za-z_]\w*)\s*\(")


def match_angle_brackets(clean: str, open_pos: int) -> int:
    """Offset just past the '>' matching the '<' at open_pos (or -1)."""
    depth = 0
    i = open_pos
    n = len(clean)
    while i < n:
        c = clean[i]
        if c == "<":
            depth += 1
        elif c == ">":
            depth -= 1
            if depth == 0:
                return i + 1
        elif c in ";{}":
            return -1  # statement ended before the template closed
        i += 1
    return -1


def gather_internal_facts(files: dict[str, str]) -> Facts:
    """Backend 3: regex/def-scanner facts over cleaned sources."""
    facts = Facts()
    for rel, clean in files.items():
        for m in RE_UNORDERED_ALIAS.finditer(clean):
            facts.unordered_aliases.add(m.group(1))
        for m in RE_UNORDERED_DECL.finditer(clean):
            open_pos = clean.index("<", m.start())
            end = match_angle_brackets(clean, open_pos)
            if end == -1:
                continue
            dm = re.match(r"\s*(?:const\s+)?[&*]?\s*([A-Za-z_]\w*)\s*[;={(,)]",
                          clean[end:end + 160])
            if dm:
                facts.unordered_names.add(dm.group(1))
        for m in RE_STATUS_FN.finditer(clean):
            facts.status_fns.add(m.group(1))
    # Second pass: variables declared through an unordered alias.
    if facts.unordered_aliases:
        alias_re = re.compile(
            r"\b(" + "|".join(sorted(facts.unordered_aliases)) +
            r")\s*[&]?\s+[&]?\s*([A-Za-z_]\w*)\s*[;={(,)]")
        for clean in files.values():
            for m in alias_re.finditer(clean):
                facts.unordered_names.add(m.group(2))
    return facts


def load_compile_commands(path: Path) -> list[dict]:
    try:
        entries = json.loads(path.read_text(encoding="utf-8"))
        return entries if isinstance(entries, list) else []
    except (OSError, json.JSONDecodeError):
        return []


def gather_libclang_facts(root: Path, compile_commands: Path) -> Facts | None:
    """Backend 1: full AST walk via the libclang Python bindings."""
    try:
        from clang import cindex  # type: ignore
    except ImportError:
        return None
    try:
        index = cindex.Index.create()
    except Exception:  # library not loadable
        return None
    facts = Facts()
    facts.backend = "libclang"
    entries = load_compile_commands(compile_commands)
    if not entries:
        return None
    for entry in entries:
        src = Path(entry.get("file", ""))
        try:
            if not src.resolve().is_relative_to(root.resolve()):
                continue
        except (OSError, ValueError):
            continue
        args = [a for a in entry.get("command", "").split()[1:]
                if a != str(src)]
        try:
            tu = index.parse(str(src), args=args)
        except Exception:
            continue
        for cur in tu.cursor.walk_preorder():
            try:
                kind = cur.kind
                if kind in (cindex.CursorKind.VAR_DECL,
                            cindex.CursorKind.FIELD_DECL,
                            cindex.CursorKind.PARM_DECL):
                    if "unordered_" in cur.type.get_canonical().spelling:
                        facts.unordered_names.add(cur.spelling)
                elif kind in (cindex.CursorKind.FUNCTION_DECL,
                              cindex.CursorKind.CXX_METHOD):
                    ret = cur.result_type.spelling
                    if ret.startswith(("Status", "kadop::Status", "Result<",
                                       "kadop::Result<")):
                        facts.status_fns.add(cur.spelling)
                    if "unordered_" in cur.result_type.get_canonical().spelling:
                        facts.unordered_names.add(cur.spelling)
            except Exception:
                continue
    return facts


def gather_astdump_facts(root: Path, compile_commands: Path) -> Facts | None:
    """Backend 2: parse `clang++ -Xclang -ast-dump=json` output."""
    clangxx = shutil.which("clang++")
    if clangxx is None:
        return None
    entries = load_compile_commands(compile_commands)
    if not entries:
        return None
    facts = Facts()
    facts.backend = "ast-dump"

    def walk(node: dict) -> None:
        kind = node.get("kind", "")
        qual = (node.get("type") or {}).get("qualType", "")
        name = node.get("name", "")
        if name:
            if kind in ("VarDecl", "FieldDecl", "ParmVarDecl"):
                if "unordered_" in qual:
                    facts.unordered_names.add(name)
            elif kind in ("FunctionDecl", "CXXMethodDecl"):
                ret = qual.split("(")[0].strip()
                if ret.startswith(("Status", "kadop::Status", "Result<",
                                   "kadop::Result<")):
                    facts.status_fns.add(name)
                if "unordered_" in ret:
                    facts.unordered_names.add(name)
        for child in node.get("inner", []) or []:
            if isinstance(child, dict):
                walk(child)

    parsed_any = False
    for entry in entries:
        src = entry.get("file", "")
        args = [a for a in entry.get("command", "").split()[1:]
                if a != src and not a.startswith("-o")]
        cmd = ([clangxx, "-fsyntax-only", "-Xclang", "-ast-dump=json"]
               + args + [src])
        try:
            out = subprocess.run(cmd, capture_output=True, text=True,
                                 timeout=120, cwd=entry.get("directory", "."))
            walk(json.loads(out.stdout))
            parsed_any = True
        except (OSError, subprocess.SubprocessError, json.JSONDecodeError):
            continue
    return facts if parsed_any else None


def resolve_facts(backend: str, root: Path, compile_commands: Path,
                  files: dict[str, str]) -> Facts:
    """Internal facts always; libclang/ast-dump facts merged on top."""
    facts = gather_internal_facts(files)
    augmented: Facts | None = None
    if backend in ("auto", "libclang"):
        augmented = gather_libclang_facts(root, compile_commands)
    if augmented is None and backend in ("auto", "ast-dump"):
        augmented = gather_astdump_facts(root, compile_commands)
    if augmented is not None:
        backend_name = augmented.backend
        facts.merge(augmented)
        facts.backend = backend_name
    elif backend in ("libclang", "ast-dump"):
        print(f"kadop_analyze: backend '{backend}' unavailable; "
              "using internal facts", file=sys.stderr)
    return facts


# ---------------------------------------------------------------------------
# Structural helpers (shared rule engine)
# ---------------------------------------------------------------------------


def match_parens(clean: str, open_pos: int) -> int:
    """Offset of the ')' matching the '(' at open_pos (or -1)."""
    depth = 0
    for i in range(open_pos, len(clean)):
        c = clean[i]
        if c == "(":
            depth += 1
        elif c == ")":
            depth -= 1
            if depth == 0:
                return i
    return -1


def match_braces(clean: str, open_pos: int) -> int:
    """Offset of the '}' matching the '{' at open_pos (or -1)."""
    depth = 0
    for i in range(open_pos, len(clean)):
        c = clean[i]
        if c == "{":
            depth += 1
        elif c == "}":
            depth -= 1
            if depth == 0:
                return i
    return -1


RE_RANGE_FOR = re.compile(r"\bfor\s*\(")


class RangeFor:
    def __init__(self, offset: int, container_expr: str, body: str):
        self.offset = offset
        self.container_expr = container_expr
        self.body = body


def find_range_fors(clean: str) -> list[RangeFor]:
    """Every range-based for: its container expression and body text."""
    out: list[RangeFor] = []
    for m in RE_RANGE_FOR.finditer(clean):
        open_pos = clean.index("(", m.start())
        close = match_parens(clean, open_pos)
        if close == -1:
            continue
        header = clean[open_pos + 1:close]
        # Top-level ':' that is not part of '::' marks a range-for.
        colon = -1
        depth = 0
        i = 0
        while i < len(header):
            c = header[i]
            if c in "([{<":
                depth += 1
            elif c in ")]}>":
                depth = max(0, depth - 1)
            elif c == ":" and depth == 0:
                if (i + 1 < len(header) and header[i + 1] == ":") or \
                        (i > 0 and header[i - 1] == ":"):
                    i += 2
                    continue
                colon = i
                break
            i += 1
        if colon == -1:
            continue
        container = header[colon + 1:].strip()
        # Body: braced block or single statement.
        j = close + 1
        while j < len(clean) and clean[j].isspace():
            j += 1
        if j < len(clean) and clean[j] == "{":
            end = match_braces(clean, j)
            body = clean[j:end + 1] if end != -1 else clean[j:]
        else:
            end = clean.find(";", j)
            body = clean[j:end + 1] if end != -1 else clean[j:]
        out.append(RangeFor(m.start(), container, body))
    return out


def trailing_identifier(expr: str) -> str:
    """The name the iterated expression resolves to.

    `buckets` -> buckets; `peer_->pending_get_` -> pending_get_;
    `store()->Lists()` -> Lists (an accessor — backends record accessors
    returning unordered refs in unordered_names too).
    """
    expr = expr.strip()
    while expr.endswith(")"):
        open_pos = expr.rfind("(")
        if open_pos == -1:
            break
        expr = expr[:open_pos].rstrip()
    m = re.search(r"([A-Za-z_]\w*)\s*$", expr)
    return m.group(1) if m else ""


# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------

RE_KDP011 = re.compile(
    r"std\s*::\s*chrono\s*::\s*(?:system_clock|steady_clock|"
    r"high_resolution_clock)\b"
    r"|\bgettimeofday\s*\("
    r"|\bclock_gettime\s*\("
    r"|(?<![\w:])(?:std\s*::\s*)?time\s*\(\s*(?:nullptr|NULL|0\s*\)|&)"
    r"|#\s*include\s*<chrono>")

RE_KDP013 = re.compile(
    r"\bstd\s*::\s*random_device\b"
    r"|\bstd\s*::\s*mt19937(?:_64)?\b"
    r"|\bstd\s*::\s*default_random_engine\b"
    r"|(?<![\w:])s?rand\s*\("
    r"|#\s*include\s*<random>")

RE_KDP014_LESS_PTR = re.compile(
    r"\bstd\s*::\s*(?:less|greater)\s*<[^<>;]*\*\s*>")
RE_KDP014_ORDERED = re.compile(r"\bstd\s*::\s*(?:multi)?(?:map|set)\s*<")

# Nondeterminism-sensitive sinks for KDP012: anything that freezes
# iteration order into an externally observable sequence.
RE_SINK = re.compile(
    r"\bSend[A-Z]\w*\s*\(|->\s*Send\s*\(|\bRoute\w*\s*\(|\bBroadcast\w*\s*\("
    r"|\bTracer\b|\btracer_?\b|\bAnnotate\s*\(|\bTraceEvent\s*\("
    r"|\bToJson\b|\bAppendJson\b|\bJsonWriter\b"
    r"|\bAddRow\s*\(|\.\s*Num\s*\(|\.\s*Str\s*\(")

RE_SORT_CALL = re.compile(r"\bstd\s*::\s*(?:stable_)?sort\s*\(|\bSorted\w*\s*\(")

RE_VOID_CAST = re.compile(
    r"\(\s*void\s*\)\s*((?:[A-Za-z_]\w*(?:\s*(?:::|\.|->)\s*)?)+)\s*\(")
RE_STD_IGNORE = re.compile(
    r"\bstd\s*::\s*ignore\s*=\s*((?:[A-Za-z_]\w*(?:\s*(?:::|\.|->)\s*)?)+)\s*\(")


def rule_scope_ok(rule: str, rel: str) -> bool:
    if rule == "KDP011":
        if rel.startswith(KDP011_EXEMPT_PREFIXES):
            return False
        return rel.startswith(("src/", "tools/"))
    if rule == "KDP013":
        if rel.startswith(KDP013_EXEMPT_PREFIXES):
            return False
        return True
    return True


def check_kdp011(rel: str, clean: str, add) -> None:
    for m in RE_KDP011.finditer(clean):
        add("KDP011", m.start(),
            "wall-clock read outside the timing shim; virtual time comes "
            "from the sim clock, wall time only via obs::ProfileNowNs() "
            "(src/obs/profile_clock.h)")


def check_kdp012(rel: str, clean: str, facts: Facts, add,
                 audit: list | None = None) -> None:
    for rf in find_range_fors(clean):
        name = trailing_identifier(rf.container_expr)
        if name not in facts.unordered_names:
            continue
        if audit is not None:
            audit.append((rel, line_of(clean, rf.offset), rf.container_expr))
        sink = RE_SINK.search(rf.body)
        if not sink:
            continue
        # An intervening sort before the sink launders the order.
        if RE_SORT_CALL.search(rf.body[:sink.start()]):
            continue
        add("KDP012", rf.offset,
            f"iterating unordered container `{name}` with the loop body "
            "reaching a nondeterminism-sensitive sink "
            f"(`{rf.body[sink.start():sink.end()].strip()}…`); hash-bucket "
            "order would become externally observable — iterate a sorted "
            "key vector instead")


def check_kdp013(rel: str, clean: str, add) -> None:
    for m in RE_KDP013.finditer(clean):
        add("KDP013", m.start(),
            "RNG construction/seeding outside the seeded RNG; all "
            "randomness must flow from kadop::Rng(seed) "
            "(src/common/random.h) so runs replay from their seeds")


def check_kdp014(rel: str, clean: str, add) -> None:
    for m in RE_KDP014_ORDERED.finditer(clean):
        open_pos = clean.index("<", m.start())
        end = match_angle_brackets(clean, open_pos)
        if end == -1:
            continue
        inner = clean[open_pos + 1:end - 1]
        # First top-level template argument.
        depth = 0
        first_arg = inner
        for i, c in enumerate(inner):
            if c in "<([":
                depth += 1
            elif c in ">)]":
                depth -= 1
            elif c == "," and depth == 0:
                first_arg = inner[:i]
                break
        if first_arg.strip().endswith("*"):
            add("KDP014", m.start(),
                f"ordered container keyed by a pointer "
                f"(`{first_arg.strip()}`): iteration order is address "
                "order and varies run-to-run under ASLR; key by a stable "
                "id instead")
    for m in RE_KDP014_LESS_PTR.finditer(clean):
        add("KDP014", m.start(),
            "address-based comparator (std::less/greater over a pointer "
            "type): ordering varies run-to-run under ASLR")


def check_kdp015(rel: str, clean: str, facts: Facts, add) -> None:
    for regex, what in ((RE_VOID_CAST, "(void)-cast"),
                        (RE_STD_IGNORE, "std::ignore")):
        for m in regex.finditer(clean):
            callee = re.split(r"::|\.|->", m.group(1).replace(" ", ""))[-1]
            if callee in facts.status_fns:
                add("KDP015", m.start(),
                    f"{what} discard of `{callee}(…)` which returns "
                    "[[nodiscard]] Status/Result; handle the error or "
                    "suppress with KDP-ALLOW and a written reason")
    # Comma-operator discard: a statement that *starts* with a
    # Status-returning call whose value is then thrown away by `,`.
    for m in re.finditer(r"\b([A-Za-z_]\w*)\s*\(", clean):
        if m.group(1) not in facts.status_fns:
            continue
        k = m.start() - 1
        while k >= 0 and clean[k] in " \t\n":
            k -= 1
        if k >= 0 and clean[k] not in ";{}":
            continue  # not at statement start (e.g. an argument)
        close = match_parens(clean, clean.index("(", m.start()))
        if close == -1:
            continue
        j = close + 1
        while j < len(clean) and clean[j] in " \t\n":
            j += 1
        if j < len(clean) and clean[j] == ",":
            add("KDP015", m.start(),
                f"comma-operator discard of `{m.group(1)}(…)` which "
                "returns [[nodiscard]] Status/Result")


RE_KDP016_BEGIN = re.compile(
    r"\b(?:const\s+)?(?:obs\s*::\s*)?SpanId\s+([A-Za-z_]\w*)\s*=\s*"
    r"(?:[A-Za-z_]\w*(?:\(\s*\))?\s*(?:\.|->|::)\s*)*Begin(?:Root)?\s*\(")


def check_kdp016(rel: str, clean: str, add) -> None:
    """Span-leak: a local span must reach its End() on every path.

    Textual approximation of the CFG check: the first `End(var)` after the
    Begin is the close; any `return` strictly between them is a path that
    leaks the span. Code that closes spans inside completion lambdas stays
    clean by defining the lambda (and its End) before the early returns —
    which is also the order that makes the dataflow readable.
    """
    for m in RE_KDP016_BEGIN.finditer(clean):
        var = m.group(1)
        if var.endswith("_"):
            continue  # member-style name: lifecycle spans methods
        rest = clean[m.end():]
        end_m = re.search(r"\bEnd\s*\(\s*" + re.escape(var) + r"\s*\)", rest)
        if end_m is None:
            add("KDP016", m.start(),
                f"span `{var}` from Tracer::Begin() is never passed to "
                f"End({var}); the span stays open forever and breaks "
                "OpenSpans() leak checks and the phase breakdown")
            continue
        if re.search(r"\breturn\b", rest[:end_m.start()]):
            add("KDP016", m.start(),
                f"`return` between Tracer::Begin() and the first "
                f"End({var}): the early-return path leaks the span; "
                "close it before returning (or End inside a completion "
                "lambda defined before the return)")


def analyze_file(rel: str, text: str, facts: Facts,
                 disabled: set[str],
                 audit: list | None = None) -> tuple[list[Finding], list, int]:
    """Returns (findings incl. malformed-suppression ones, suppressions,
    n_rules_run) for one file."""
    clean = strip_comments_and_strings(text)
    findings: list[Finding] = []

    def add_for(rule):
        def add(rule_id: str, offset: int, message: str) -> None:
            findings.append(Finding(TOOL, rule_id, rel,
                                    line_of(text, offset), message))
        return add

    rules_run = 0
    if "KDP011" not in disabled and rule_scope_ok("KDP011", rel):
        check_kdp011(rel, clean, add_for("KDP011"))
        rules_run += 1
    if "KDP012" not in disabled and rule_scope_ok("KDP012", rel):
        check_kdp012(rel, clean, facts, add_for("KDP012"), audit)
        rules_run += 1
    if "KDP013" not in disabled and rule_scope_ok("KDP013", rel):
        check_kdp013(rel, clean, add_for("KDP013"))
        rules_run += 1
    if "KDP014" not in disabled and rule_scope_ok("KDP014", rel):
        check_kdp014(rel, clean, add_for("KDP014"))
        rules_run += 1
    if "KDP015" not in disabled and rule_scope_ok("KDP015", rel):
        check_kdp015(rel, clean, facts, add_for("KDP015"))
        rules_run += 1
    if "KDP016" not in disabled and rule_scope_ok("KDP016", rel):
        check_kdp016(rel, clean, add_for("KDP016"))
        rules_run += 1

    suppressions, malformed = parse_suppressions(TOOL, rel, text)
    findings.extend(malformed)
    apply_suppressions(findings, suppressions)
    return findings, suppressions, rules_run


# ---------------------------------------------------------------------------
# Tree scan
# ---------------------------------------------------------------------------

SCAN_SUFFIXES = (".h", ".cc")


def collect_files(root: Path, compile_commands: Path) -> dict[str, str]:
    """rel path -> raw text for every file in scope.

    compile_commands.json (when present) contributes its in-repo TUs; the
    tree walk guarantees headers and files not yet wired into the build
    are scanned too.
    """
    rels: set[str] = set()
    for entry in load_compile_commands(compile_commands):
        try:
            p = Path(entry.get("file", "")).resolve()
            rel = p.relative_to(root.resolve()).as_posix()
        except (OSError, ValueError):
            continue
        if rel.startswith(("src/", "tools/", "bench/")):
            rels.add(rel)
    for d in ("src", "bench"):
        base = root / d
        if base.is_dir():
            for p in sorted(base.rglob("*")):
                if p.suffix in SCAN_SUFFIXES and p.is_file():
                    rels.add(p.relative_to(root).as_posix())
    tools_dir = root / "tools"
    if tools_dir.is_dir():
        for p in sorted(tools_dir.iterdir()):  # not lint_fixtures/
            if p.suffix in SCAN_SUFFIXES and p.is_file():
                rels.add(p.relative_to(root).as_posix())
    out: dict[str, str] = {}
    for rel in sorted(rels):
        p = root / rel
        if p.is_file():
            out[rel] = p.read_text(encoding="utf-8")
    return out


def scan_tree(root: Path, compile_commands: Path, backend: str,
              disabled: set[str], audit: list | None = None):
    texts = collect_files(root, compile_commands)
    cleaned = {rel: strip_comments_and_strings(t) for rel, t in texts.items()}
    facts = resolve_facts(backend, root, compile_commands, cleaned)
    findings: list[Finding] = []
    suppressions: list = []
    for rel, text in texts.items():
        f, s, _ = analyze_file(rel, text, facts, disabled, audit)
        findings.extend(f)
        suppressions.extend(s)
    return findings, suppressions, facts, len(texts)


# ---------------------------------------------------------------------------
# Self-test / meta-test
# ---------------------------------------------------------------------------

FIXTURES = {
    "kdp011_bad.cc.txt": {"KDP011"},
    "kdp011_good.cc.txt": set(),
    "kdp012_bad.cc.txt": {"KDP012"},
    "kdp012_good.cc.txt": set(),
    "kdp013_bad.cc.txt": {"KDP013"},
    "kdp013_good.cc.txt": set(),
    "kdp014_bad.cc.txt": {"KDP014"},
    "kdp014_good.cc.txt": set(),
    "kdp015_bad.cc.txt": {"KDP015"},
    "kdp015_good.cc.txt": set(),
    "kdp016_bad.cc.txt": {"KDP016"},
    "kdp016_good.cc.txt": set(),
}
SUPPRESSION_FIXTURE = "kdp_allow.cc.txt"


def check_fixture(root: Path, name: str, disabled: set[str]):
    """Analyzes one fixture as if it lived at src/<name>; facts come from
    the fixture file alone (fixtures are self-contained)."""
    path = root / "tools" / "lint_fixtures" / name
    text = path.read_text(encoding="utf-8")
    rel = "src/" + name.replace(".txt", "")
    facts = gather_internal_facts({rel: strip_comments_and_strings(text)})
    return analyze_file(rel, text, facts, disabled)


def self_test(root: Path, disabled: set[str], quiet: bool = False) -> int:
    say = (lambda *a, **k: None) if quiet else print
    failures = 0
    for name, expected in sorted(FIXTURES.items()):
        path = root / "tools" / "lint_fixtures" / name
        if not path.is_file():
            say(f"self-test FAILED: fixture missing: {path}", file=sys.stderr)
            failures += 1
            continue
        findings, _, _ = check_fixture(root, name, disabled)
        fired = {f.rule for f in findings if not f.suppressed}
        for f in findings:
            say(f"  (fixture) {f}")
        if expected and not (expected & fired):
            say(f"self-test FAILED: {name}: expected {sorted(expected)} "
                f"to fire, got {sorted(fired)}", file=sys.stderr)
            failures += 1
        if not expected and fired:
            say(f"self-test FAILED: {name}: clean fixture fired "
                f"{sorted(fired)} (false positive)", file=sys.stderr)
            failures += 1
        unexpected = fired - expected - {"KDP000"}
        if expected and unexpected:
            say(f"self-test FAILED: {name}: unrelated rules fired: "
                f"{sorted(unexpected)}", file=sys.stderr)
            failures += 1

    # Suppression parsing: every seeded violation in the allow-fixture is
    # suppressed with a reason, and the one malformed KDP-ALLOW is KDP000.
    findings, suppressions, _ = check_fixture(root, SUPPRESSION_FIXTURE,
                                              disabled)
    rule_findings = [f for f in findings if f.rule != "KDP000"]
    kdp000 = [f for f in findings if f.rule == "KDP000"]
    if not rule_findings:
        say("self-test FAILED: suppression fixture seeded no violations",
            file=sys.stderr)
        failures += 1
    for f in rule_findings:
        if not f.suppressed or not f.suppression_reason:
            say(f"self-test FAILED: expected suppressed-with-reason: {f}",
                file=sys.stderr)
            failures += 1
    if len(kdp000) != 1:
        say(f"self-test FAILED: expected exactly 1 malformed KDP-ALLOW "
            f"(KDP000), got {len(kdp000)}", file=sys.stderr)
        failures += 1
    if not suppressions:
        say("self-test FAILED: no suppressions parsed from "
            f"{SUPPRESSION_FIXTURE}", file=sys.stderr)
        failures += 1

    # False-positive guard on real, clean tree files.
    for rel in ("src/xml/sid.h", "src/obs/metrics.h"):
        p = root / rel
        if not p.is_file():
            continue
        text = p.read_text(encoding="utf-8")
        facts = gather_internal_facts(
            {rel: strip_comments_and_strings(text)})
        fp, _, _ = analyze_file(rel, text, facts, disabled)
        fp = [f for f in fp if not f.suppressed]
        if fp:
            say(f"self-test FAILED: false positives on {rel}:",
                file=sys.stderr)
            for f in fp:
                say(f"  {f}", file=sys.stderr)
            failures += 1

    if failures:
        return 1
    say(f"self-test OK: {len(FIXTURES) // 2} rule fixture pairs + "
        "suppression parsing")
    return 0


def meta_test(root: Path) -> int:
    """Disabling any single rule must make the self-test fail — proof that
    every fixture is actually guarded by its rule."""
    bad = []
    for rule in ALL_RULES:
        if self_test(root, disabled={rule}, quiet=True) == 0:
            bad.append(rule)
    if self_test(root, disabled=set(), quiet=True) != 0:
        print("meta-test FAILED: baseline self-test does not pass",
              file=sys.stderr)
        return 1
    if bad:
        print(f"meta-test FAILED: self-test still passes with "
              f"{bad} disabled — fixtures are not guarding these rules",
              file=sys.stderr)
        return 1
    print(f"meta-test OK: removing any of {len(ALL_RULES)} rules breaks "
          "the self-test")
    return 0


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--root", type=Path, default=Path.cwd())
    parser.add_argument("--compile-commands", type=Path, default=None,
                        help="compile_commands.json (default: "
                             "<root>/build/compile_commands.json)")
    parser.add_argument("--backend",
                        choices=("auto", "libclang", "ast-dump", "internal"),
                        default="auto")
    parser.add_argument("--json", type=Path, default=None,
                        help="write machine-readable findings JSON here")
    parser.add_argument("--with-lint", action="store_true",
                        help="merge kadop_lint (KDP001-010) findings into "
                             "the scan and the JSON")
    parser.add_argument("--disable", action="append", default=[],
                        metavar="KDPxxx", help="disable a rule (repeatable)")
    parser.add_argument("--self-test", action="store_true")
    parser.add_argument("--meta-test", action="store_true")
    parser.add_argument("--audit-unordered", action="store_true",
                        help="list every range-for over an unordered "
                             "container, sink or not (audit aid)")
    args = parser.parse_args(argv)

    root = args.root.resolve()
    if not (root / "src").is_dir():
        print(f"error: {root} does not look like the repo root",
              file=sys.stderr)
        return 2
    disabled = {r.upper() for r in args.disable}
    unknown = disabled - set(ALL_RULES)
    if unknown:
        print(f"error: unknown rule(s) in --disable: {sorted(unknown)}",
              file=sys.stderr)
        return 2
    compile_commands = args.compile_commands or (
        root / "build" / "compile_commands.json")

    if args.self_test:
        return self_test(root, disabled)
    if args.meta_test:
        return meta_test(root)

    audit: list | None = [] if args.audit_unordered else None
    findings, suppressions, facts, n_files = scan_tree(
        root, compile_commands, args.backend, disabled, audit)

    tools = [TOOL]
    if args.with_lint:
        import kadop_lint
        lint_findings, lint_suppressions = \
            kadop_lint.lint_tree_with_suppressions(root)
        # Both tools parse KDP-ALLOW comments under src/; keep one copy of
        # each suppression / malformed-suppression finding in the merge.
        seen_s = {(s.path, s.comment_line) for s in suppressions}
        for s in lint_suppressions:
            if (s.path, s.comment_line) not in seen_s:
                suppressions.append(s)
        seen_f = {(f.rule, f.path, f.line) for f in findings
                  if f.rule == "KDP000"}
        for f in lint_findings:
            if f.rule == "KDP000" and (f.rule, f.path, f.line) in seen_f:
                continue
            findings.append(f)
        tools.append("kadop_lint")

    if audit is not None:
        print("unordered-container range-for audit "
              "(sorted-or-justified is the contract):")
        for rel, line, expr in audit:
            print(f"  {rel}:{line}: for (... : {expr})")

    for f in findings:
        print(f)
    own_rules = set(ALL_RULES) | {"KDP000"}
    if args.with_lint:
        own_rules |= {f"KDP{i:03d}" for i in range(1, 11)}
    print_suppression_inventory(suppressions, own_rules)

    if args.json is not None:
        write_findings_json(args.json, findings_json(
            tools, root, findings, suppressions, n_files))
        print(f"wrote {args.json}")

    unsuppressed = [f for f in findings if not f.suppressed]
    if unsuppressed:
        print(f"kadop_analyze: {len(unsuppressed)} unsuppressed finding(s) "
              f"[backend: {facts.backend}]", file=sys.stderr)
        return 1
    print(f"kadop_analyze: clean ({n_files} files, backend "
          f"{facts.backend}, {len(suppressions)} suppression(s), "
          f"compile_commands "
          f"{'found' if load_compile_commands(compile_commands) else 'absent'})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
