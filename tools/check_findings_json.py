#!/usr/bin/env python3
"""Validates the merged findings JSON emitted by kadop_analyze/kadop_lint.

Hand-rolled schema check in the check_bench_json.py mold (no third-party
deps): each file must be a JSON object with

  schema_version  the integer 1
  tools           non-empty array of strings from
                  {"kadop_analyze", "kadop_lint"}
  root            non-empty string
  findings        array of objects with tool/rule/file/line/message/
                  suppressed (+ suppression_reason, a non-empty string
                  whenever suppressed is true)
  suppressions    array of objects with rules/file/line/reason/used;
                  reasons must be non-empty (reasonless allows are the
                  KDP000 failure mode, never valid data)
  summary         files_scanned/findings/suppressed/unsuppressed integers,
                  internally consistent with the findings array

Usage: check_findings_json.py FILE [FILE...]
Exits non-zero listing every violation, so CI fails loudly when the tools
stop emitting what the analyze job consumes.
"""

import json
import re
import sys

KNOWN_TOOLS = {"kadop_analyze", "kadop_lint"}
RULE_RE = re.compile(r"^KDP\d{3}$")


def _err(errors, path, message):
    errors.append(f"{path}: {message}")


def check_finding(f, i, path, errors):
    if not isinstance(f, dict):
        _err(errors, path, f"findings[{i}] must be an object")
        return
    if f.get("tool") not in KNOWN_TOOLS:
        _err(errors, path, f"findings[{i}].tool must be one of "
             f"{sorted(KNOWN_TOOLS)}")
    rule = f.get("rule")
    if not isinstance(rule, str) or not RULE_RE.match(rule):
        _err(errors, path, f"findings[{i}].rule must match KDPnnn")
    if not isinstance(f.get("file"), str) or not f["file"]:
        _err(errors, path, f"findings[{i}].file must be a non-empty string")
    if not isinstance(f.get("line"), int) or f.get("line", 0) < 1:
        _err(errors, path, f"findings[{i}].line must be a positive integer")
    if not isinstance(f.get("message"), str) or not f["message"]:
        _err(errors, path, f"findings[{i}].message must be a non-empty string")
    suppressed = f.get("suppressed")
    if not isinstance(suppressed, bool):
        _err(errors, path, f"findings[{i}].suppressed must be a boolean")
    elif suppressed:
        reason = f.get("suppression_reason")
        if not isinstance(reason, str) or not reason:
            _err(errors, path,
                 f"findings[{i}] is suppressed but carries no reason")


def check_suppression(s, i, path, errors):
    if not isinstance(s, dict):
        _err(errors, path, f"suppressions[{i}] must be an object")
        return
    rules = s.get("rules")
    if (not isinstance(rules, list) or not rules
            or not all(isinstance(r, str) and RULE_RE.match(r)
                       for r in rules)):
        _err(errors, path,
             f"suppressions[{i}].rules must be a non-empty KDPnnn array")
    if not isinstance(s.get("file"), str) or not s["file"]:
        _err(errors, path, f"suppressions[{i}].file must be a non-empty string")
    if not isinstance(s.get("line"), int) or s.get("line", 0) < 1:
        _err(errors, path, f"suppressions[{i}].line must be a positive integer")
    if not isinstance(s.get("reason"), str) or not s["reason"]:
        _err(errors, path,
             f"suppressions[{i}].reason must be a non-empty string "
             "(reasons are mandatory)")
    if not isinstance(s.get("used"), bool):
        _err(errors, path, f"suppressions[{i}].used must be a boolean")


def check_file(path, errors):
    try:
        with open(path, "r", encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        _err(errors, path, f"unreadable or invalid JSON: {e}")
        return

    if not isinstance(data, dict):
        _err(errors, path, "top level must be a JSON object")
        return

    if data.get("schema_version") != 1:
        _err(errors, path, "'schema_version' must be 1")

    tools = data.get("tools")
    if (not isinstance(tools, list) or not tools
            or not all(t in KNOWN_TOOLS for t in tools)):
        _err(errors, path, "'tools' must be a non-empty array from "
             f"{sorted(KNOWN_TOOLS)}")

    if not isinstance(data.get("root"), str) or not data["root"]:
        _err(errors, path, "'root' must be a non-empty string")

    findings = data.get("findings")
    if not isinstance(findings, list):
        _err(errors, path, "'findings' must be an array")
        findings = []
    for i, f in enumerate(findings):
        check_finding(f, i, path, errors)

    suppressions = data.get("suppressions")
    if not isinstance(suppressions, list):
        _err(errors, path, "'suppressions' must be an array")
        suppressions = []
    for i, s in enumerate(suppressions):
        check_suppression(s, i, path, errors)

    summary = data.get("summary")
    if not isinstance(summary, dict):
        _err(errors, path, "'summary' must be an object")
        return
    for key in ("files_scanned", "findings", "suppressed", "unsuppressed"):
        if not isinstance(summary.get(key), int) or summary[key] < 0:
            _err(errors, path,
                 f"'summary.{key}' must be a non-negative integer")
            return
    n_suppressed = sum(1 for f in findings
                       if isinstance(f, dict) and f.get("suppressed") is True)
    if summary["findings"] != len(findings):
        _err(errors, path, "'summary.findings' disagrees with the array "
             f"({summary['findings']} vs {len(findings)})")
    if summary["suppressed"] != n_suppressed:
        _err(errors, path, "'summary.suppressed' disagrees with the array "
             f"({summary['suppressed']} vs {n_suppressed})")
    if summary["unsuppressed"] != len(findings) - n_suppressed:
        _err(errors, path, "'summary.unsuppressed' disagrees with the array")


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    errors = []
    for path in argv[1:]:
        check_file(path, errors)
    if errors:
        for e in errors:
            print(f"check_findings_json: {e}", file=sys.stderr)
        return 1
    print(f"check_findings_json: {len(argv) - 1} file(s) OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
