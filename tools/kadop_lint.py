#!/usr/bin/env python3
"""kadop_lint: repo-specific static checks for the KadoP codebase.

Enforces invariants no off-the-shelf tool knows about:

  KDP001  no-exceptions      `throw` / `try` / `catch` anywhere under src/.
                             The library is exception-free by contract;
                             fallible operations return Status/Result.
  KDP002  naked-value        `x.value()` / `x.take()` on a Result without a
                             prior `x.ok()` / `x.status()` / `x.has_value()`
                             check in the same function body.
  KDP003  include-guard      Headers under src/ must guard with
                             KADOP_<RELATIVE_PATH>_H_ (e.g. src/xml/sid.h
                             -> KADOP_XML_SID_H_).
  KDP004  bare-assert        `assert(...)` in non-header code under src/.
                             Use KADOP_CHECK (always on, prints location)
                             instead; `assert` compiles out in NDEBUG builds
                             and silently stops guarding the index.
  KDP005  dyadic-construct   Brace-construction of DyadicInterval outside
                             src/bloom/. Intervals must come from
                             DyadicCover / DyadicContainers / DyadicAncestors
                             so the level/alignment invariants hold.
  KDP006  manual-sid-test    Hand-rolled ancestor test (`a.start < b.start &&
                             b.end < a.end`-style conjunction) outside
                             src/xml/sid.h. Use IsAncestorOf / Encloses —
                             inline copies drift from the level-aware rules.
  KDP007  dyadic-zero        DyadicCover / DyadicContainers called with a
                             literal 0 position. The dyadic domain is
                             [1, 2^l]; position 0 is not representable.
  KDP008  posting-sort       `std::sort` with a custom comparator in the
                             posting-carrying layers (src/index, src/store).
                             Posting lists are kept in the canonical
                             (peer, doc, sid) order; sorting with an ad-hoc
                             comparator silently breaks merge joins and
                             range scans.
  KDP009  adhoc-counter      New integer member/variable declarations named
                             `*_count` / `*_counter` under src/ outside
                             src/obs/. Observable event tallies belong in
                             the metrics registry (obs::MetricRegistry) so
                             they show up in KadopStats / bench JSON;
                             existing wire-format and structural-size
                             fields are grandfathered per file.
  KDP010  raw-posting-math   `... * Posting::kWireBytes` (or `kWireBytes *
                             ...`) arithmetic outside src/index/posting.h
                             and src/index/codec.{h,cc}. Posting transfer
                             and storage sizes must route through the codec
                             size functions (codec::RawBytes / WireBytes /
                             StoredBytes) so compression is charged
                             consistently everywhere; a bare non-multiplied
                             `kWireBytes` term (fixed-format field) is fine.

Deliberate exceptions use the shared `// KDP-ALLOW(KDPxxx): <reason>`
suppression syntax (kdp_common.py — same mechanism as kadop_analyze.py);
the reason is mandatory and every accepted allow is printed in an
inventory. `--json` emits the machine-readable findings document that
tools/check_findings_json.py validates; kadop_analyze.py --with-lint
merges both tools into one such document.

Usage:
  kadop_lint.py --root <repo-root>            lint the tree (src/ + tools/)
  kadop_lint.py --root <repo-root> --json findings.json
  kadop_lint.py --root <repo-root> --self-test
      run the linter against tools/lint_fixtures/violations.cc.txt and fail
      unless every seeded violation is reported (guards against the linter
      rotting into a no-op).

Exit status: 0 clean, 1 violations found (or self-test mismatch), 2 usage.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from kdp_common import (Finding, apply_suppressions, findings_json, line_of,
                        parse_suppressions, print_suppression_inventory,
                        strip_comments_and_strings, write_findings_json)

TOOL = "kadop_lint"
OWN_RULES = {f"KDP{i:03d}" for i in range(1, 11)} | {"KDP000"}


class Violation:
    def __init__(self, rule: str, path: Path, line: int, message: str):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------

RE_EXCEPTION = re.compile(r"\b(throw\b|try\s*\{|catch\s*\()")
RE_VALUE_USE = re.compile(r"\b([A-Za-z_]\w*)\s*\.\s*(value|take)\s*\(\s*\)")
RE_ASSERT = re.compile(r"(?<!_)\bassert\s*\(")
RE_DYADIC_BRACE = re.compile(r"\bDyadicInterval\s*\{")
RE_SID_MANUAL = re.compile(
    r"\.\s*start\s*<=?\s*[\w.]*\.\s*start\s*&&[^;\n]*\.\s*end\s*<=?"
    r"|\.\s*end\s*<=?\s*[\w.]*\.\s*end\s*&&[^;\n]*\.\s*start\s*<=?"
)
RE_DYADIC_ZERO = re.compile(r"\bDyadic(?:Cover|Containers)\s*\(\s*0\s*[,u]")
RE_SORT_CMP = re.compile(r"\bstd::(?:stable_)?sort\s*\(")
RE_GUARD = re.compile(r"^\s*#\s*ifndef\s+(\w+)", re.MULTILINE)
RE_ADHOC_COUNTER = re.compile(
    r"\b(?:uint(?:8|16|32|64)_t|int(?:8|16|32|64)_t|size_t|unsigned|int|"
    r"long)\s+(\w*_(?:count|counts|counter|counters)_?)\s*(?:=|;|\{)"
)
RE_RAW_POSTING_MATH = re.compile(
    r"\*\s*(?:\w+\s*::\s*)*kWireBytes\b|\bkWireBytes\s*\*"
)

# KDP010 exempt list: the raw record size's definition site and the codec
# library, which is the sanctioned home of raw-size arithmetic
# (codec::RawBytes and friends).
KDP010_EXEMPT_FILES = {
    "src/index/posting.h",
    "src/index/codec.h",
    "src/index/codec.cc",
}

# KDP009 grandfather list: files whose *_count declarations predate the
# metrics registry and are not event tallies — wire-format fields
# (messages.h, dpp_messages.h, reducer.h) and structural size bookkeeping
# (bplus_tree.h). New counters anywhere else must go through obs/.
KDP009_EXEMPT_FILES = {
    "src/query/messages.h",
    "src/query/reducer.h",
    "src/index/dpp_messages.h",
    "src/store/bplus_tree.h",
}


def function_scope_start(clean: str, offset: int) -> int:
    """Offset of the opening brace of the outermost scope enclosing `offset`.

    Tracks brace depth from the start of the file; namespace/class braces are
    included, which only widens the window the KDP002 check searches — a
    prior ok() check is still required to appear before the use.
    """
    stack: list[int] = []
    for i in range(offset):
        c = clean[i]
        if c == "{":
            stack.append(i)
        elif c == "}" and stack:
            stack.pop()
    return stack[0] if stack else 0


def check_file(path: Path, rel: str, text: str) -> list[Violation]:
    clean = strip_comments_and_strings(text)
    violations: list[Violation] = []
    is_header = rel.endswith(".h")
    in_src = rel.startswith("src/")

    def add(rule: str, offset: int, message: str) -> None:
        violations.append(Violation(rule, Path(rel), line_of(text, offset), message))

    # KDP001: exception-free contract.
    if in_src:
        for m in RE_EXCEPTION.finditer(clean):
            add("KDP001", m.start(),
                "exceptions are banned in src/ (return Status/Result instead)")

    # KDP002: naked value()/take() without a prior check in the same scope.
    # status.h implements Result itself and is exempt.
    if in_src and rel != "src/common/status.h":
        for m in RE_VALUE_USE.finditer(clean):
            var = m.group(1)
            scope = function_scope_start(clean, m.start())
            window = clean[scope:m.start()]
            checked = re.search(
                rf"\b{re.escape(var)}\s*\.\s*(ok|status|has_value)\s*\(", window)
            if not checked:
                add("KDP002", m.start(),
                    f"`{var}.{m.group(2)}()` without a prior `{var}.ok()` "
                    "check in the enclosing scope")

    # KDP003: include-guard naming.
    if in_src and is_header:
        expected = (
            "KADOP_" + rel[len("src/"):-len(".h")]
            .replace("/", "_").replace(".", "_").replace("-", "_").upper()
            + "_H_"
        )
        m = RE_GUARD.search(clean)
        if not m:
            add("KDP003", 0, f"missing include guard (expected {expected})")
        elif m.group(1) != expected:
            add("KDP003", m.start(),
                f"include guard `{m.group(1)}` should be `{expected}`")

    # KDP004: bare assert in non-header src code.
    if in_src and not is_header:
        for m in RE_ASSERT.finditer(clean):
            add("KDP004", m.start(),
                "bare assert() in .cc code; use KADOP_CHECK (assert "
                "compiles out under NDEBUG)")

    # KDP005: DyadicInterval brace-construction outside the bloom layer.
    if in_src and not rel.startswith("src/bloom/"):
        for m in RE_DYADIC_BRACE.finditer(clean):
            add("KDP005", m.start(),
                "construct DyadicInterval via DyadicCover/DyadicContainers/"
                "DyadicAncestors, not by hand (alignment invariant)")

    # KDP006: hand-rolled SID ancestor test.
    if in_src and rel != "src/xml/sid.h":
        for m in RE_SID_MANUAL.finditer(clean):
            add("KDP006", m.start(),
                "hand-rolled start/end containment test; use "
                "StructuralId::IsAncestorOf or Encloses")

    # KDP007: dyadic helpers called with position 0.
    if in_src:
        for m in RE_DYADIC_ZERO.finditer(clean):
            add("KDP007", m.start(),
                "dyadic domain is [1, 2^l]; position 0 is invalid")

    # KDP008: custom comparator sorts in posting-carrying layers.
    if rel.startswith(("src/index/", "src/store/")):
        for m in RE_SORT_CMP.finditer(clean):
            # A third top-level argument means a custom comparator.
            depth, args, i = 0, 1, m.end()
            while i < len(clean):
                c = clean[i]
                if c in "([{":
                    depth += 1
                elif c in ")]}":
                    if depth == 0:
                        break
                    depth -= 1
                elif c == "," and depth == 0:
                    args += 1
                i += 1
            if args >= 3:
                add("KDP008", m.start(),
                    "std::sort with a custom comparator in a posting layer; "
                    "posting lists must keep the canonical (peer, doc, sid) "
                    "order (default operator<=>)")

    # KDP009: ad-hoc integer counters outside the metrics registry.
    if (in_src and not rel.startswith("src/obs/")
            and rel not in KDP009_EXEMPT_FILES):
        for m in RE_ADHOC_COUNTER.finditer(clean):
            add("KDP009", m.start(),
                f"ad-hoc counter `{m.group(1)}`; register a Counter in "
                "obs::MetricRegistry instead so it reaches KadopStats and "
                "the bench JSON")

    # KDP010: raw posting-size multiplication outside the codec library.
    if in_src and rel not in KDP010_EXEMPT_FILES:
        for m in RE_RAW_POSTING_MATH.finditer(clean):
            add("KDP010", m.start(),
                "raw `* Posting::kWireBytes` size math; use the codec size "
                "functions (index::codec::RawBytes/WireBytes/StoredBytes) "
                "so compression is charged consistently")

    return violations


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

LINT_DIRS = ("src",)
LINT_SUFFIXES = (".h", ".cc")


def collect_files(root: Path) -> list[Path]:
    files: list[Path] = []
    for d in LINT_DIRS:
        base = root / d
        if not base.is_dir():
            continue
        for p in sorted(base.rglob("*")):
            if p.suffix in LINT_SUFFIXES and p.is_file():
                files.append(p)
    return files


def lint_tree(root: Path) -> list[Violation]:
    violations: list[Violation] = []
    for p in collect_files(root):
        rel = p.relative_to(root).as_posix()
        violations.extend(check_file(p, rel, p.read_text(encoding="utf-8")))
    return violations


def lint_tree_with_suppressions(root: Path):
    """Lints the tree and applies KDP-ALLOW suppressions.

    Returns (findings, suppressions) in the shared kdp_common model; the
    merge entry point kadop_analyze.py --with-lint calls this.
    """
    findings: list[Finding] = []
    suppressions: list = []
    for p in collect_files(root):
        rel = p.relative_to(root).as_posix()
        text = p.read_text(encoding="utf-8")
        file_findings = [Finding(TOOL, v.rule, rel, v.line, v.message)
                         for v in check_file(p, rel, text)]
        file_suppressions, malformed = parse_suppressions(TOOL, rel, text)
        file_findings.extend(malformed)
        apply_suppressions(file_findings, file_suppressions)
        findings.extend(file_findings)
        suppressions.extend(file_suppressions)
    return findings, suppressions


def self_test(root: Path) -> int:
    """Lint the seeded-violation fixture and check every rule fires."""
    fixture = root / "tools" / "lint_fixtures" / "violations.cc.txt"
    header_fixture = root / "tools" / "lint_fixtures" / "bad_guard.h.txt"
    if not fixture.is_file() or not header_fixture.is_file():
        print(f"self-test: fixture missing under {fixture.parent}", file=sys.stderr)
        return 1
    # The fixtures are linted as if they lived inside src/.
    got = check_file(fixture, "src/index/violations.cc",
                     fixture.read_text(encoding="utf-8"))
    got += check_file(header_fixture, "src/index/bad_guard.h",
                      header_fixture.read_text(encoding="utf-8"))
    fired = {v.rule for v in got}
    expected = {f"KDP{i:03d}" for i in range(1, 11)}
    missing = expected - fired
    unexpected = fired - expected
    for v in got:
        print(f"  (fixture) {v}")
    if missing:
        print(f"self-test FAILED: rules never fired: {sorted(missing)}",
              file=sys.stderr)
        return 1
    if unexpected:
        print(f"self-test FAILED: unknown rules fired: {sorted(unexpected)}",
              file=sys.stderr)
        return 1
    # A clean file must stay clean (false-positive guard).
    clean_src = (root / "src" / "xml" / "sid.h")
    if clean_src.is_file():
        fp = check_file(clean_src, "src/xml/sid.h",
                        clean_src.read_text(encoding="utf-8"))
        if fp:
            print("self-test FAILED: false positives on src/xml/sid.h:",
                  file=sys.stderr)
            for v in fp:
                print(f"  {v}", file=sys.stderr)
            return 1
    # The shared KDP-ALLOW mechanism must suppress a seeded KDP002
    # violation (and demand a reason).
    allow_fixture = root / "tools" / "lint_fixtures" / "kdp002_allow.cc.txt"
    if not allow_fixture.is_file():
        print(f"self-test: fixture missing: {allow_fixture}", file=sys.stderr)
        return 1
    text = allow_fixture.read_text(encoding="utf-8")
    rel = "src/index/kdp002_allow.cc"
    findings = [Finding(TOOL, v.rule, rel, v.line, v.message)
                for v in check_file(allow_fixture, rel, text)]
    suppressions, malformed = parse_suppressions(TOOL, rel, text)
    findings.extend(malformed)
    apply_suppressions(findings, suppressions)
    kdp002 = [f for f in findings if f.rule == "KDP002"]
    if not kdp002 or not all(f.suppressed and f.suppression_reason
                             for f in kdp002):
        print("self-test FAILED: KDP-ALLOW(KDP002) did not suppress the "
              "seeded violation with a reason", file=sys.stderr)
        return 1
    if len(malformed) != 1:
        print("self-test FAILED: expected exactly 1 malformed KDP-ALLOW "
              f"(KDP000) in {allow_fixture.name}, got {len(malformed)}",
              file=sys.stderr)
        return 1
    print(f"self-test OK: all {len(expected)} rules fire on the fixture; "
          "KDP-ALLOW suppression verified")
    return 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--root", type=Path, default=Path.cwd(),
                        help="repository root (default: cwd)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the linter catches the seeded fixture")
    parser.add_argument("--json", type=Path, default=None,
                        help="write machine-readable findings JSON here")
    args = parser.parse_args(argv)

    root = args.root.resolve()
    if not (root / "src").is_dir():
        print(f"error: {root} does not look like the repo root", file=sys.stderr)
        return 2

    if args.self_test:
        return self_test(root)

    findings, suppressions = lint_tree_with_suppressions(root)
    for f in findings:
        print(f)
    print_suppression_inventory(suppressions, OWN_RULES)
    if args.json is not None:
        write_findings_json(args.json, findings_json(
            [TOOL], root, findings, suppressions, len(collect_files(root))))
        print(f"wrote {args.json}")
    unsuppressed = [f for f in findings if not f.suppressed]
    if unsuppressed:
        print(f"kadop_lint: {len(unsuppressed)} violation(s)",
              file=sys.stderr)
        return 1
    print(f"kadop_lint: clean ({len(collect_files(root))} files, "
          f"{len(suppressions)} suppression(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
