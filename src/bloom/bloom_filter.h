#ifndef KADOP_BLOOM_BLOOM_FILTER_H_
#define KADOP_BLOOM_BLOOM_FILTER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace kadop::bloom {

/// A classic Bloom filter over 64-bit element codes, with the hash family
/// derived by double hashing. Sized from an expected insertion count and a
/// target false-positive rate (k chosen optimally so the bit vector — the
/// bytes that travel over the network — is minimal).
class BloomFilter {
 public:
  /// `expected_items` > 0, 0 < `target_fp` < 1.
  BloomFilter(size_t expected_items, double target_fp);

  void Insert(uint64_t code);

  /// True if `code` may have been inserted (no false negatives).
  [[nodiscard]] bool MaybeContains(uint64_t code) const;

  /// Size of the bit vector in bytes (what a transfer of this filter
  /// costs on the wire).
  size_t SizeBytes() const { return bits_.size() * sizeof(uint64_t); }

  size_t bit_count() const { return n_bits_; }
  uint32_t hash_count() const { return k_; }
  size_t inserted() const { return inserted_; }

  /// Expected false-positive rate given the actual number of insertions:
  /// (1 - e^(-k*n/m))^k.
  [[nodiscard]] double EstimatedFpRate() const;

  /// Fraction of bits set (diagnostic).
  [[nodiscard]] double FillRatio() const;

 private:
  size_t n_bits_;
  uint32_t k_;
  size_t inserted_ = 0;
  std::vector<uint64_t> bits_;
};

}  // namespace kadop::bloom

#endif  // KADOP_BLOOM_BLOOM_FILTER_H_
