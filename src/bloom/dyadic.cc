#include "bloom/dyadic.h"

#include "common/logging.h"

namespace kadop::bloom {

int LevelsFor(uint32_t max_position) {
  int l = 1;
  while ((uint64_t{1} << l) < max_position) ++l;
  return l;
}

std::vector<DyadicInterval> DyadicCover(uint32_t x, uint32_t y, int l) {
  KADOP_CHECK(x >= 1 && x <= y, "bad interval");
  KADOP_CHECK(y <= (uint64_t{1} << l), "interval exceeds domain");
  std::vector<DyadicInterval> cover;
  uint64_t pos = x;
  while (pos <= y) {
    // Largest level j such that `pos` is aligned at level j and the
    // interval fits within [pos, y].
    int j = 0;
    while (j < l) {
      const uint64_t len = uint64_t{1} << (j + 1);
      if ((pos - 1) % len != 0) break;         // not aligned one level up
      if (pos + len - 1 > y) break;            // would overshoot
      ++j;
    }
    const uint64_t len = uint64_t{1} << j;
    cover.push_back(DyadicInterval{static_cast<uint32_t>(pos),
                                   static_cast<uint32_t>(pos + len - 1),
                                   static_cast<uint8_t>(j)});
    pos += len;
  }
  return cover;
}

std::vector<DyadicInterval> DyadicContainers(uint32_t x, uint32_t y, int l) {
  KADOP_CHECK(x >= 1 && x <= y, "bad interval");
  KADOP_CHECK(y <= (uint64_t{1} << l), "interval exceeds domain");
  // Smallest dyadic container: lowest level whose aligned interval holding
  // x also holds y.
  std::vector<DyadicInterval> chain;
  for (int j = 0; j <= l; ++j) {
    const uint64_t len = uint64_t{1} << j;
    const uint64_t lo = ((x - 1) / len) * len + 1;
    const uint64_t hi = lo + len - 1;
    if (y <= hi) {
      chain.push_back(DyadicInterval{static_cast<uint32_t>(lo),
                                     static_cast<uint32_t>(hi),
                                     static_cast<uint8_t>(j)});
    }
  }
  return chain;
}

std::vector<DyadicInterval> DyadicAncestors(const DyadicInterval& iv,
                                            int to_level) {
  std::vector<DyadicInterval> chain;
  for (int j = iv.level; j <= to_level; ++j) {
    const uint64_t len = uint64_t{1} << j;
    const uint64_t lo = ((iv.lo - 1) / len) * len + 1;
    chain.push_back(DyadicInterval{static_cast<uint32_t>(lo),
                                   static_cast<uint32_t>(lo + len - 1),
                                   static_cast<uint8_t>(j)});
  }
  return chain;
}

}  // namespace kadop::bloom
