#ifndef KADOP_BLOOM_DYADIC_H_
#define KADOP_BLOOM_DYADIC_H_

#include <cstdint>
#include <string>
#include <vector>

namespace kadop::bloom {

/// A dyadic interval within the domain [1, 2^l]: at level j the domain is
/// partitioned into 2^(l-j) disjoint intervals of length 2^j. The i-th
/// (1-based) interval at level j is [(i-1)*2^j + 1, i*2^j].
struct DyadicInterval {
  uint32_t lo = 0;
  uint32_t hi = 0;
  uint8_t level = 0;

  [[nodiscard]] uint32_t Length() const { return hi - lo + 1; }

  /// Dense 64-bit code (level, index) — the hashing identity of the
  /// interval.
  [[nodiscard]] uint64_t Code() const {
    const uint64_t idx = (lo - 1) >> level;
    return (static_cast<uint64_t>(level) << 56) | idx;
  }

  [[nodiscard]] bool Contains(const DyadicInterval& other) const {
    return lo <= other.lo && other.hi <= hi;
  }

  friend bool operator==(const DyadicInterval&, const DyadicInterval&) =
      default;

  std::string ToString() const {
    return "[" + std::to_string(lo) + "," + std::to_string(hi) + "]@" +
           std::to_string(level);
  }
};

/// Number of levels needed so that [1, 2^l] covers positions up to
/// `max_position` (l >= 1).
[[nodiscard]] int LevelsFor(uint32_t max_position);

/// The dyadic cover D[x, y]: the unique minimal set of disjoint dyadic
/// intervals whose union is [x, y]. At most 2*l intervals. Requires
/// 1 <= x <= y <= 2^l.
[[nodiscard]] std::vector<DyadicInterval> DyadicCover(uint32_t x, uint32_t y, int l);

/// The dyadic containers Dc[x, y]: every dyadic interval that contains
/// [x, y]. They form a chain from the smallest container up to [1, 2^l]
/// (l + 1 - j* entries).
[[nodiscard]] std::vector<DyadicInterval> DyadicContainers(uint32_t x, uint32_t y, int l);

/// The ancestors of a dyadic interval `iv` from `from_level` (>= iv.level,
/// exclusive of levels below) up to level `to_level` inclusive — i.e. the
/// containers of `iv` restricted to levels [iv.level, to_level].
[[nodiscard]] std::vector<DyadicInterval> DyadicAncestors(const DyadicInterval& iv,
                                            int to_level);

}  // namespace kadop::bloom

#endif  // KADOP_BLOOM_DYADIC_H_
