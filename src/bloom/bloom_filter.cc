#include "bloom/bloom_filter.h"

#include <cmath>

#include "common/hash.h"
#include "common/logging.h"
#include "obs/metrics.h"

namespace kadop::bloom {

namespace {

struct BloomCounters {
  obs::Counter* inserts;
  obs::Counter* probes;
  obs::Counter* probe_hits;

  BloomCounters() {
    auto& r = obs::MetricRegistry::Default();
    inserts = r.GetCounter("bloom.inserts");
    probes = r.GetCounter("bloom.probes");
    probe_hits = r.GetCounter("bloom.probe_hits");
  }
};

BloomCounters& C() {
  static BloomCounters counters;
  return counters;
}

}  // namespace

BloomFilter::BloomFilter(size_t expected_items, double target_fp) {
  KADOP_CHECK(target_fp > 0.0 && target_fp < 1.0, "bad target fp");
  if (expected_items == 0) expected_items = 1;
  const double ln2 = 0.6931471805599453;
  const double m = -static_cast<double>(expected_items) *
                   std::log(target_fp) / (ln2 * ln2);
  n_bits_ = static_cast<size_t>(m) + 1;
  if (n_bits_ < 64) n_bits_ = 64;
  const double k = m / static_cast<double>(expected_items) * ln2;
  k_ = static_cast<uint32_t>(k + 0.5);
  if (k_ < 1) k_ = 1;
  if (k_ > 32) k_ = 32;
  bits_.assign((n_bits_ + 63) / 64, 0);
}

void BloomFilter::Insert(uint64_t code) {
  ++inserted_;
  C().inserts->Increment();
  for (uint32_t i = 0; i < k_; ++i) {
    const uint64_t bit = BloomHash(code, i) % n_bits_;
    bits_[bit >> 6] |= uint64_t{1} << (bit & 63);
  }
}

bool BloomFilter::MaybeContains(uint64_t code) const {
  C().probes->Increment();
  for (uint32_t i = 0; i < k_; ++i) {
    const uint64_t bit = BloomHash(code, i) % n_bits_;
    if ((bits_[bit >> 6] & (uint64_t{1} << (bit & 63))) == 0) return false;
  }
  C().probe_hits->Increment();
  return true;
}

double BloomFilter::EstimatedFpRate() const {
  const double exponent = -static_cast<double>(k_) *
                          static_cast<double>(inserted_) /
                          static_cast<double>(n_bits_);
  return std::pow(1.0 - std::exp(exponent), static_cast<double>(k_));
}

double BloomFilter::FillRatio() const {
  size_t set = 0;
  for (uint64_t word : bits_) set += static_cast<size_t>(__builtin_popcountll(word));
  return static_cast<double>(set) / static_cast<double>(n_bits_);
}

}  // namespace kadop::bloom
