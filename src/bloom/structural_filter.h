#ifndef KADOP_BLOOM_STRUCTURAL_FILTER_H_
#define KADOP_BLOOM_STRUCTURAL_FILTER_H_

#include <memory>

#include "bloom/bloom_filter.h"
#include "bloom/dyadic.h"
#include "index/posting.h"

namespace kadop::bloom {

/// Shared parameters of the structural filters (Section 5).
struct StructuralFilterParams {
  /// Number of dyadic levels l: the tag-number domain is [1, 2^l]. Both
  /// sides of an exchange must agree on it (the system derives it from the
  /// maximum document size it admits).
  int levels = 20;
  /// Target false-positive rate of the underlying basic Bloom filter.
  double target_fp = 0.2;
  /// Trace replication: psi(j) = ceil(1 + j/c) copies are inserted (and
  /// probed) per interval at level j, damping the damage of collisions on
  /// wide intervals. 0 disables traces (psi == 1 everywhere).
  int trace_c = 4;
  /// AB-filter probe variant using only the start tag number
  /// ([start, start] instead of the full dyadic cover). Equivalent when
  /// |D(eb)| == 1; weaker error bound otherwise (Section 5.1).
  bool point_probe = false;
};

/// Number of traces psi(j) at level j for replication constant c.
[[nodiscard]] inline uint32_t PsiTraces(int level, int trace_c) {
  if (trace_c <= 0) return 1;
  return static_cast<uint32_t>(1 + (level + trace_c - 1) / trace_c);
}

/// Ancestor Bloom Filter ABF(a): a Bloom-filter encoding of
/// D(La) = { (p, d, I) | I in the dyadic cover of an `a` posting }.
/// Probing a posting e_b answers (one-sided): may e_b have an `a` ancestor?
/// The probe is a conjunction of containment checks — one per interval of
/// D(e_b), each satisfied if some dyadic ancestor of the interval is in the
/// filter (Theorem 1).
class AncestorBloomFilter {
 public:
  /// Encodes posting list `la`.
  static AncestorBloomFilter Build(const index::PostingList& la,
                                   const StructuralFilterParams& params);

  /// True if `eb` may be a descendant of some posting of `la` in the same
  /// document. No false negatives.
  [[nodiscard]] bool MaybeDescendant(const index::Posting& eb) const;

  /// Keeps the postings of `lb` that pass the probe — a superset of
  /// b[\\a].
  index::PostingList Filter(const index::PostingList& lb) const;

  /// Wire size of the filter.
  size_t SizeBytes() const { return filter_->SizeBytes() + 16; }

  /// Highest level occupied in D(La) — probes skip levels above it.
  int dclev() const { return dclev_; }
  const BloomFilter& filter() const { return *filter_; }
  const StructuralFilterParams& params() const { return params_; }

 private:
  AncestorBloomFilter(StructuralFilterParams params,
                      std::shared_ptr<BloomFilter> filter, int dclev)
      : params_(params), filter_(std::move(filter)), dclev_(dclev) {}

  [[nodiscard]] bool CoveredWithTraces(index::PeerId peer, index::DocSeq doc,
                         const DyadicInterval& iv) const;

  StructuralFilterParams params_;
  std::shared_ptr<BloomFilter> filter_;
  int dclev_ = 0;
};

/// Descendant Bloom Filter DBF(b): encodes Dc(Lb) — all dyadic *containers*
/// of `b` postings. Probing a posting e_a answers: may e_a have a `b`
/// descendant? True iff some interval of D(e_a) is in the filter
/// (Theorem 2, a disjunction of probes).
class DescendantBloomFilter {
 public:
  static DescendantBloomFilter Build(const index::PostingList& lb,
                                     const StructuralFilterParams& params);

  /// True if `ea` may have a descendant among the encoded postings.
  [[nodiscard]] bool MaybeAncestor(const index::Posting& ea) const;

  /// Keeps the postings of `la` that pass the probe — a superset of
  /// a[//b].
  index::PostingList Filter(const index::PostingList& la) const;

  size_t SizeBytes() const { return filter_->SizeBytes() + 16; }
  const BloomFilter& filter() const { return *filter_; }
  const StructuralFilterParams& params() const { return params_; }

 private:
  DescendantBloomFilter(StructuralFilterParams params,
                        std::shared_ptr<BloomFilter> filter)
      : params_(params), filter_(std::move(filter)) {}

  [[nodiscard]] bool ContainsWithTraces(index::PeerId peer, index::DocSeq doc,
                          const DyadicInterval& iv) const;

  StructuralFilterParams params_;
  std::shared_ptr<BloomFilter> filter_;
};

/// Worst-case bound on the AB false-positive rate for a basic rate fp and
/// trace constant c (Section 5.1): 1 - prod_j (1 - fp)^psi(j).
[[nodiscard]] double AbFalsePositiveBound(double basic_fp, int levels, int trace_c);

}  // namespace kadop::bloom

#endif  // KADOP_BLOOM_STRUCTURAL_FILTER_H_
