#include "bloom/structural_filter.h"

#include <algorithm>
#include <cmath>

#include "common/hash.h"
#include "common/logging.h"
#include "obs/metrics.h"

namespace kadop::bloom {

using index::Posting;
using index::PostingList;

namespace {

// Filter-level counters: postings_in/postings_kept give the measured pass
// rate, and bloom.last_predicted_fp records the most recent built filter's
// estimate, so tests can compare measured vs. predicted FP rates.
struct FilterCounters {
  obs::Counter* filters_built;
  obs::Counter* postings_in;
  obs::Counter* postings_kept;
  obs::Gauge* last_predicted_fp;

  FilterCounters() {
    auto& r = obs::MetricRegistry::Default();
    filters_built = r.GetCounter("bloom.filters_built");
    postings_in = r.GetCounter("bloom.filter.postings_in");
    postings_kept = r.GetCounter("bloom.filter.postings_kept");
    last_predicted_fp = r.GetGauge("bloom.last_predicted_fp");
  }
};

FilterCounters& FC() {
  static FilterCounters counters;
  return counters;
}

}  // namespace

namespace {

uint64_t ElementCode(index::PeerId peer, index::DocSeq doc,
                     const DyadicInterval& iv, uint32_t trace) {
  uint64_t h = HashCombine(peer, doc);
  h = HashCombine(h, iv.Code());
  return HashCombine(h, trace);
}

/// Clamps a posting interval into the dyadic domain [1, 2^l]. Postings are
/// produced by the annotator with start >= 1; documents larger than the
/// domain are rejected by KADOP_CHECK in debug, clamped in release.
void ClampToDomain(uint32_t& start, uint32_t& end, int l) {
  const uint32_t max_pos = static_cast<uint32_t>(
      std::min<uint64_t>(uint64_t{1} << l, UINT32_MAX));
  if (start < 1) start = 1;
  if (end > max_pos) end = max_pos;
  if (start > end) start = end;
}

}  // namespace

// ---------------------------------------------------------------------------
// Ancestor Bloom Filter

AncestorBloomFilter AncestorBloomFilter::Build(
    const PostingList& la, const StructuralFilterParams& params) {
  // First pass: count insertions so the bit vector can be sized for the
  // target basic false-positive rate.
  size_t items = 0;
  int dclev = 0;
  for (const Posting& ea : la) {
    uint32_t start = ea.sid.start;
    uint32_t end = ea.sid.end;
    ClampToDomain(start, end, params.levels);
    for (const DyadicInterval& iv : DyadicCover(start, end, params.levels)) {
      items += PsiTraces(iv.level, params.trace_c);
      dclev = std::max(dclev, static_cast<int>(iv.level));
    }
  }
  auto filter = std::make_shared<BloomFilter>(std::max<size_t>(items, 1),
                                              params.target_fp);
  for (const Posting& ea : la) {
    uint32_t start = ea.sid.start;
    uint32_t end = ea.sid.end;
    ClampToDomain(start, end, params.levels);
    for (const DyadicInterval& iv : DyadicCover(start, end, params.levels)) {
      const uint32_t traces = PsiTraces(iv.level, params.trace_c);
      for (uint32_t r = 0; r < traces; ++r) {
        filter->Insert(ElementCode(ea.peer, ea.doc, iv, r));
      }
    }
  }
  FC().filters_built->Increment();
  FC().last_predicted_fp->Set(filter->EstimatedFpRate());
  return AncestorBloomFilter(params, std::move(filter), dclev);
}

bool AncestorBloomFilter::CoveredWithTraces(index::PeerId peer,
                                            index::DocSeq doc,
                                            const DyadicInterval& iv) const {
  const uint32_t traces = PsiTraces(iv.level, params_.trace_c);
  for (uint32_t r = 0; r < traces; ++r) {
    if (!filter_->MaybeContains(ElementCode(peer, doc, iv, r))) return false;
  }
  return true;
}

bool AncestorBloomFilter::MaybeDescendant(const Posting& eb) const {
  uint32_t start = eb.sid.start;
  uint32_t end = eb.sid.end;
  ClampToDomain(start, end, params_.levels);
  if (params_.point_probe) end = start;

  for (const DyadicInterval& iv :
       DyadicCover(start, end, params_.levels)) {
    bool covered = false;
    // Probe the dyadic ancestors of iv, up to dclev (no interval above it
    // was ever inserted).
    for (const DyadicInterval& anc : DyadicAncestors(iv, dclev_)) {
      if (CoveredWithTraces(eb.peer, eb.doc, anc)) {
        covered = true;
        break;
      }
    }
    if (!covered) return false;  // Theorem 1: conjunction fails
  }
  return true;
}

PostingList AncestorBloomFilter::Filter(const PostingList& lb) const {
  PostingList out;
  out.reserve(lb.size() / 4);
  for (const Posting& eb : lb) {
    if (MaybeDescendant(eb)) out.push_back(eb);
  }
  FC().postings_in->Increment(lb.size());
  FC().postings_kept->Increment(out.size());
  return out;
}

// ---------------------------------------------------------------------------
// Descendant Bloom Filter

namespace {

/// Dc(eb) with full recall: the dyadic ancestors of every piece of the
/// cover D(eb), deduplicated.
///
/// Note: the paper defines Dc[x, y] as the containers of the whole interval
/// [x, y] (a single chain). Taken literally that loses recall for
/// descendants whose interval is not dyadically aligned inside the
/// ancestor: e.g. b = [2, 5] inside a = [1, 6] has D(a) = {[1,4], [5,6]}
/// and whole-interval containers of b = {[1,8]} — empty intersection
/// although b IS a descendant. Using ancestors of each cover piece makes
/// Theorem 2 hold with one-sided error only: if [sb,eb] ⊆ [sa,ea], every
/// greedy cover piece of the inner interval is contained in a cover piece
/// of the outer one, so the intersection is non-empty.
std::vector<DyadicInterval> ContainerSet(uint32_t start, uint32_t end,
                                         int levels) {
  std::vector<DyadicInterval> out;
  for (const DyadicInterval& piece : DyadicCover(start, end, levels)) {
    for (const DyadicInterval& anc : DyadicAncestors(piece, levels)) {
      if (std::find(out.begin(), out.end(), anc) == out.end()) {
        out.push_back(anc);
      }
    }
  }
  return out;
}

}  // namespace

DescendantBloomFilter DescendantBloomFilter::Build(
    const PostingList& lb, const StructuralFilterParams& params) {
  size_t items = 0;
  for (const Posting& eb : lb) {
    uint32_t start = eb.sid.start;
    uint32_t end = eb.sid.end;
    ClampToDomain(start, end, params.levels);
    for (const DyadicInterval& iv : ContainerSet(start, end, params.levels)) {
      items += PsiTraces(iv.level, params.trace_c);
    }
  }
  auto filter = std::make_shared<BloomFilter>(std::max<size_t>(items, 1),
                                              params.target_fp);
  for (const Posting& eb : lb) {
    uint32_t start = eb.sid.start;
    uint32_t end = eb.sid.end;
    ClampToDomain(start, end, params.levels);
    for (const DyadicInterval& iv : ContainerSet(start, end, params.levels)) {
      const uint32_t traces = PsiTraces(iv.level, params.trace_c);
      for (uint32_t r = 0; r < traces; ++r) {
        filter->Insert(ElementCode(eb.peer, eb.doc, iv, r));
      }
    }
  }
  FC().filters_built->Increment();
  FC().last_predicted_fp->Set(filter->EstimatedFpRate());
  return DescendantBloomFilter(params, std::move(filter));
}

bool DescendantBloomFilter::ContainsWithTraces(
    index::PeerId peer, index::DocSeq doc, const DyadicInterval& iv) const {
  const uint32_t traces = PsiTraces(iv.level, params_.trace_c);
  for (uint32_t r = 0; r < traces; ++r) {
    if (!filter_->MaybeContains(ElementCode(peer, doc, iv, r))) return false;
  }
  return true;
}

bool DescendantBloomFilter::MaybeAncestor(const Posting& ea) const {
  uint32_t start = ea.sid.start;
  uint32_t end = ea.sid.end;
  ClampToDomain(start, end, params_.levels);
  for (const DyadicInterval& iv :
       DyadicCover(start, end, params_.levels)) {
    if (ContainsWithTraces(ea.peer, ea.doc, iv)) return true;  // Theorem 2
  }
  return false;
}

PostingList DescendantBloomFilter::Filter(const PostingList& la) const {
  PostingList out;
  out.reserve(la.size() / 4);
  for (const Posting& ea : la) {
    if (MaybeAncestor(ea)) out.push_back(ea);
  }
  FC().postings_in->Increment(la.size());
  FC().postings_kept->Increment(out.size());
  return out;
}

double AbFalsePositiveBound(double basic_fp, int levels, int trace_c) {
  double prod = 1.0;
  for (int j = 0; j <= levels; ++j) {
    prod *= std::pow(1.0 - basic_fp,
                     static_cast<double>(PsiTraces(j, trace_c)));
  }
  return 1.0 - prod;
}

}  // namespace kadop::bloom
