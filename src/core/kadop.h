#ifndef KADOP_CORE_KADOP_H_
#define KADOP_CORE_KADOP_H_

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "dht/dht.h"
#include "fundex/fundex.h"
#include "index/codec.h"
#include "index/doc_store.h"
#include "index/dpp.h"
#include "index/publisher.h"
#include "obs/metrics.h"
#include "query/block_join.h"
#include "query/executor.h"
#include "query/local_eval.h"
#include "query/reducer.h"
#include "query/view_manager.h"
#include "sim/fault_plan.h"
#include "sim/network.h"
#include "sim/scheduler.h"

namespace kadop::core {

/// Phase-2 message: evaluate a pattern against locally stored documents
/// (the listed ones, or every local document when `all_docs` is set — the
/// broadcast fallback).
struct DocQueryRequest final : sim::Payload {
  std::string pattern;
  std::vector<index::DocSeq> docs;
  bool all_docs = false;

  size_t SizeBytes() const override {
    return pattern.size() + docs.size() * 4 + 9;
  }
  std::string_view TypeName() const override { return "DocQueryRequest"; }
};

struct DocQueryResponse final : sim::Payload {
  std::vector<query::Answer> answers;

  size_t SizeBytes() const override {
    size_t total = 8;
    for (const auto& a : answers) total += 8 + a.elements.size() * 10;
    return total;
  }
  std::string_view TypeName() const override { return "DocQueryResponse"; }
};

/// Key-range handoff when a peer joins: the previous owner ships each key
/// it no longer owns — its postings, or a blob, plus the DPP root block if
/// the key had one.
struct HandoffMessage final : sim::Payload {
  std::string key;
  index::PostingList postings;
  std::optional<std::string> blob;
  std::optional<index::DppManager::TermExport> dpp_root;

  /// Captured from the process-wide codec switch at construction time.
  bool compressed = index::codec::CompressionEnabled();

  size_t SizeBytes() const override {
    size_t total = key.size() + 16 +
                   index::codec::MemoizedWireBytes(postings, compressed,
                                                   &wire_bytes_memo_);
    if (blob) total += blob->size();
    if (dpp_root) total += dpp_root->WireBytes();
    return total;
  }
  std::string_view TypeName() const override { return "HandoffMessage"; }

 private:
  mutable index::codec::WireSizeMemo wire_bytes_memo_;
};

/// Hot-data replication: a versioned copy of one key's postings — plus its
/// DPP root block when the key is a partitioned term — shipped from the
/// owner to a successor (a planned handoff with a version stamp; see
/// docs/replication.md). `flat` marks keys the replica may serve directly
/// from its store; non-flat state is staged for crash takeover only.
struct ReplicaInstallMessage final : sim::Payload {
  std::string key;
  index::PostingList postings;
  std::optional<index::DppManager::TermExport> dpp_root;
  uint64_t version = 0;
  bool flat = true;

  /// Captured from the process-wide codec switch at construction time.
  bool compressed = index::codec::CompressionEnabled();

  size_t SizeBytes() const override {
    size_t total = key.size() + 25 +
                   index::codec::MemoizedWireBytes(postings, compressed,
                                                   &wire_bytes_memo_);
    if (dpp_root) total += dpp_root->WireBytes();
    return total;
  }
  std::string_view TypeName() const override {
    return "ReplicaInstallMessage";
  }

 private:
  mutable index::codec::WireSizeMemo wire_bytes_memo_;
};

/// Demotion: the target discards its replica of `key`.
struct ReplicaDropMessage final : sim::Payload {
  std::string key;

  size_t SizeBytes() const override { return key.size() + 8; }
  std::string_view TypeName() const override { return "ReplicaDropMessage"; }
};

/// Top-level configuration of a KadoP network.
struct KadopOptions {
  size_t peers = 16;
  sim::NetworkParams net;
  dht::DhtOptions dht;
  /// Enable the DPP layer (Section 4). When off, posting lists are flat.
  bool enable_dpp = true;
  index::DppOptions dpp;
  index::PublishOptions publish;
  /// Materialized tree-pattern views (docs/views.md). Off by default.
  query::ViewOptions views;
};

/// One KadoP peer: the DHT node plus every KadoP service — local document
/// repository, publisher, DPP manager, Bloom reducer service, query client,
/// Fundex service, and the phase-2 document query handler.
class KadopPeer {
 public:
  KadopPeer(dht::DhtPeer* dht_peer, const KadopOptions& options,
            fundex::Resolver resolver);

  KadopPeer(const KadopPeer&) = delete;
  KadopPeer& operator=(const KadopPeer&) = delete;

  dht::DhtPeer* dht_peer() { return dht_peer_; }
  index::DocStore& doc_store() { return doc_store_; }
  index::Publisher& publisher() { return *publisher_; }
  index::DppManager* dpp() { return dpp_.get(); }
  query::QueryClient& query_client() { return *query_client_; }
  query::BlockJoinService& block_join() { return *block_join_; }
  query::ReducerService& reducer() { return *reducer_; }
  fundex::FundexService& fundex() { return *fundex_; }

  /// DPP directory state staged by replication for crash takeover:
  /// term_key -> exported root block, installed into the local DPP manager
  /// when (and only when) ownership actually moves here.
  const std::map<std::string, index::DppManager::TermExport>& staged_terms()
      const {
    return staged_terms_;
  }
  /// Installs staged directory state for keys this peer now owns; called
  /// by KadopNet after every re-stabilization.
  void ActivateStagedTerms();

 private:
  /// App-message dispatcher: tries each service in turn.
  void HandleApp(const dht::AppRequest& request, sim::NodeIndex from);
  void HandleHandoff(const HandoffMessage& msg);
  void HandleReplicaInstall(const ReplicaInstallMessage& msg);

  dht::DhtPeer* dht_peer_;
  std::map<std::string, index::DppManager::TermExport> staged_terms_;
  index::DocStore doc_store_;
  std::unique_ptr<index::Publisher> publisher_;
  std::unique_ptr<index::DppManager> dpp_;
  std::unique_ptr<query::ReducerService> reducer_;
  std::unique_ptr<query::QueryClient> query_client_;
  std::unique_ptr<query::BlockJoinService> block_join_;
  std::unique_ptr<fundex::FundexService> fundex_;
};

/// An index query result extended with phase-2 answers computed at the
/// document peers.
struct FullQueryResult {
  query::QueryResult index;
  std::vector<query::Answer> final_answers;
  double total_time = 0.0;
};

/// A network-wide statistics snapshot: every per-subsystem stats struct the
/// paper's figures draw from, aggregated across peers, plus the process-wide
/// metrics-registry snapshot. Both dumps are deterministic: identical seeded
/// runs produce byte-identical output (all timestamps are virtual).
struct KadopStats {
  size_t peers = 0;
  /// Virtual clock at snapshot time.
  double now = 0.0;
  uint64_t executed_events = 0;
  dht::DhtStats dht;
  store::IoStats io;
  index::DppStats dpp;
  fundex::FundexStats fundex;
  sim::TrafficStats traffic;
  uint64_t dropped_messages = 0;
  obs::MetricsSnapshot metrics;

  /// Human-readable dump (one line per figure-relevant quantity, then the
  /// registry in `MetricsSnapshot::ToText` form).
  [[nodiscard]] std::string ToText() const;
  /// Machine-readable dump (stable key order, fixed float formatting).
  [[nodiscard]] std::string ToJson() const;
};

/// A complete simulated KadoP deployment: scheduler, network, DHT overlay,
/// and one KadopPeer per DHT peer, plus synchronous drivers that run the
/// event loop to completion — the entry point used by the examples, tests
/// and benchmark harnesses.
class KadopNet {
 public:
  explicit KadopNet(KadopOptions options);
  ~KadopNet();

  KadopNet(const KadopNet&) = delete;
  KadopNet& operator=(const KadopNet&) = delete;

  size_t PeerCount() const { return peers_.size(); }
  KadopPeer* peer(sim::NodeIndex node) { return peers_.at(node).get(); }
  sim::Scheduler& scheduler() { return scheduler_; }
  sim::Network& network() { return *network_; }
  dht::Dht& dht() { return *dht_; }
  const KadopOptions& options() const { return options_; }

  /// Registers corpus documents for uri resolution (Fundex) — the network
  /// borrows them; they must outlive it.
  void RegisterDocuments(const std::vector<xml::Document>& docs);

  /// Publishes documents from `publisher` and runs until all postings are
  /// durably indexed. Returns the virtual time the publication took.
  double PublishAndWait(sim::NodeIndex publisher,
                        const std::vector<const xml::Document*>& docs);

  /// Publishes several batches from distinct peers concurrently; returns
  /// the virtual time until the last publisher finished.
  double ParallelPublishAndWait(
      const std::vector<
          std::pair<sim::NodeIndex, std::vector<const xml::Document*>>>&
          batches);

  /// Fundex-mode publication (Section 6).
  double FundexPublishAndWait(sim::NodeIndex publisher,
                              const std::vector<const xml::Document*>& docs,
                              fundex::IntensionalMode mode);

  /// Withdraws a document published by `publisher` (document modification
  /// is unpublish + republish). Runs the deletions to completion.
  [[nodiscard]] bool UnpublishAndWait(sim::NodeIndex publisher, index::DocSeq seq);

  /// Adds a peer to the running network: the overlay stabilizes and the
  /// new peer's successor hands off the keys (postings, blobs, DPP root
  /// blocks) that now fall into the newcomer's range, so queries stay
  /// complete. Returns the new peer's node index.
  [[nodiscard]] sim::NodeIndex JoinPeerAndWait();

  /// Fails a peer and restabilizes (with replication, its successor takes
  /// over from the replicas).
  void FailPeerAndStabilize(sim::NodeIndex node);

  /// Brings a previously failed peer back: its network endpoint comes up
  /// and its id rejoins the ring with the store it had at crash time, and
  /// the overlay restabilizes (crash-stop with durable storage).
  void RestartPeerAndStabilize(sim::NodeIndex node);

  /// Installs a seeded fault plan on the network (message drops,
  /// duplications, delay jitter, slow peers) and schedules the given
  /// crash/restart events on the virtual clock. Identical options +
  /// schedule + workload reproduce the exact same run byte for byte.
  /// Replaces any previously installed plan (and its stats).
  void EnableFaults(const sim::FaultOptions& fault_options,
                    std::vector<sim::CrashEvent> schedule = {});

  /// Removes the fault plan; subsequent traffic is fault-free. Already
  /// scheduled crash/restart events still fire.
  void DisableFaults();

  /// The installed plan, or nullptr when faults are off.
  const sim::FaultPlan* fault_plan() const { return fault_plan_.get(); }

  /// Parses and runs an index query from `at`, driving the simulation
  /// until it completes.
  Result<query::QueryResult> QueryAndWait(sim::NodeIndex at,
                                          std::string_view xpath,
                                          const query::QueryOptions& options);

  /// Index query followed by phase 2: the query is forwarded to the peers
  /// holding matched documents and the answers are computed there.
  Result<FullQueryResult> QueryDocumentsAndWait(
      sim::NodeIndex at, std::string_view xpath,
      const query::QueryOptions& options);

  /// The paper's "brutal" fallback: the query is flooded to every peer,
  /// which evaluates it against all locally stored documents. Complete for
  /// any pattern (wildcards included) but contacts everyone — the index is
  /// exactly what makes this unnecessary for indexable patterns.
  Result<FullQueryResult> BroadcastQueryAndWait(sim::NodeIndex at,
                                                std::string_view xpath);

  /// Resolves a document id to the uri recorded in the Doc relation at
  /// publication time (DHT blob lookup).
  Result<std::string> LookupDocUriAndWait(sim::NodeIndex at,
                                          const index::DocId& doc);

  /// Explains how the optimizer sees a query: the parsed pattern, its
  /// completeness/precision analysis, the stored list size per term, the
  /// per-strategy cost estimates, and the strategy kAuto would pick.
  Result<std::string> ExplainQueryAndWait(sim::NodeIndex at,
                                          std::string_view xpath,
                                          const query::QueryOptions& options);

  /// Fundex-aware query (Section 6).
  Result<fundex::FundexQueryResult> FundexQueryAndWait(
      sim::NodeIndex at, std::string_view xpath,
      fundex::IntensionalMode mode);

  /// The network's view catalog (docs/views.md).
  query::ViewCatalog& views() { return *view_catalog_; }

  /// Registers a view over `xpath` (auto-named when `name` is empty),
  /// materializes its extent from a ground-truth index query, and drives
  /// the simulation until the extent is installed and in sync. Returns the
  /// view's name. Maintenance stays registered even while serving is
  /// disabled (`ViewOptions::enabled == false`).
  Result<std::string> CreateViewAndWait(std::string_view xpath,
                                        std::string name = "");

  /// Forgets a view; its extent columns become unreferenced garbage. The
  /// catalog blob is republished once the caller next drives the network.
  bool DropView(const std::string& name);

  /// Runs the network to idle, re-records every quiescent view's freshness
  /// oracles, and republishes the catalog under its well-known key
  /// ("view:catalog") for discovery.
  void SyncViews();

  /// Submits an index query without driving the scheduler (for workload
  /// benches that overlap many queries).
  Status SubmitQuery(sim::NodeIndex at, std::string_view xpath,
                     const query::QueryOptions& options,
                     query::QueryClient::Callback callback);

  /// Runs the event loop until idle; returns the final virtual time.
  double RunToIdle() { return scheduler_.RunUntilIdle(); }

  /// Aggregates every subsystem's stats across all live peers and snapshots
  /// the metrics registry (see docs/observability.md).
  [[nodiscard]] KadopStats Stats();

 private:
  fundex::Resolver MakeResolver();
  /// Installs staged replica directory state on peers that became owners
  /// after a membership change (see KadopPeer::ActivateStagedTerms).
  void ActivateStagedReplicas();
  /// Runs the registered view's ground-truth query and ships the projected
  /// extent columns as acked appends. Asynchronous: the entry serves once
  /// every chunk acked and the oracles resynced. An incomplete or degraded
  /// ground truth drops the view instead of installing a wrong extent.
  void MaterializeView(const std::string& name);
  /// The lowest-index live peer (origin for view maintenance and catalog
  /// publication after crashes).
  sim::NodeIndex FirstLivePeer() const;

  KadopOptions options_;
  sim::Scheduler scheduler_;
  std::unique_ptr<sim::Network> network_;
  std::unique_ptr<sim::FaultPlan> fault_plan_;
  std::unique_ptr<dht::Dht> dht_;
  std::unique_ptr<query::ViewCatalog> view_catalog_;
  std::vector<std::unique_ptr<KadopPeer>> peers_;
  std::map<std::string, const xml::Document*> uri_index_;
};

}  // namespace kadop::core

#endif  // KADOP_CORE_KADOP_H_
