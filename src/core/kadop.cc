#include "core/kadop.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "common/logging.h"
#include "dht/ring.h"
#include "obs/json.h"
#include "obs/trace.h"

namespace kadop::core {

using index::DocSeq;
using sim::NodeIndex;
using sim::TrafficCategory;

namespace {

struct FaultEventCounters {
  obs::Counter* crashes;
  obs::Counter* restarts;

  FaultEventCounters() {
    auto& r = obs::MetricRegistry::Default();
    crashes = r.GetCounter("fault.crashes");
    restarts = r.GetCounter("fault.restarts");
  }
};

FaultEventCounters& FaultEvents() {
  static FaultEventCounters counters;
  return counters;
}

}  // namespace

// ---------------------------------------------------------------------------
// KadopPeer

KadopPeer::KadopPeer(dht::DhtPeer* dht_peer, const KadopOptions& options,
                     fundex::Resolver resolver)
    : dht_peer_(dht_peer) {
  publisher_ = std::make_unique<index::Publisher>(dht_peer_, &doc_store_,
                                                  options.publish);
  if (options.enable_dpp) {
    dpp_ = std::make_unique<index::DppManager>(dht_peer_, options.dpp);
    dht_peer_->SetAppendInterceptor(
        [this](const dht::AppendRequest& request) {
          return dpp_->OnAppend(request);
        });
    dht_peer_->SetGetInterceptor([this](const dht::GetRequest& request) {
      return dpp_->OnGet(request);
    });
    dht_peer_->SetDeleteInterceptor(
        [this](const dht::DeleteRequest& request) {
          return dpp_->OnDelete(request);
        });
  }
  query::ReducerService::CountProvider count_provider = nullptr;
  if (options.enable_dpp) {
    count_provider = [this](const std::string& term_key) {
      return dpp_->OwnedTermCount(term_key);
    };
  }
  reducer_ = std::make_unique<query::ReducerService>(
      dht_peer_, std::move(count_provider));
  query_client_ = std::make_unique<query::QueryClient>(dht_peer_);
  block_join_ = std::make_unique<query::BlockJoinService>(dht_peer_);
  fundex_ = std::make_unique<fundex::FundexService>(dht_peer_, &doc_store_,
                                                    std::move(resolver));
  dht_peer_->SetAppHandler(
      [this](const dht::AppRequest& request, NodeIndex from) {
        HandleApp(request, from);
      });
}

void KadopPeer::HandleHandoff(const HandoffMessage& msg) {
  if (!msg.postings.empty()) {
    dht_peer_->store()->AppendPostings(msg.key, msg.postings);
  }
  if (msg.blob) {
    dht_peer_->store()->PutBlob(msg.key, *msg.blob);
  }
  if (msg.dpp_root && dpp_) {
    dpp_->ImportTerm(*msg.dpp_root);
  }
}

void KadopPeer::HandleReplicaInstall(const ReplicaInstallMessage& msg) {
  // Idempotent refresh: replace whatever copy is here (an older replica or
  // a chain-replication shadow) with the authoritative snapshot.
  store::PeerStore* store = dht_peer_->store();
  store->DeleteKey(msg.key);
  if (!msg.postings.empty()) store->AppendPostings(msg.key, msg.postings);
  if (msg.dpp_root) {
    staged_terms_[msg.key] = *msg.dpp_root;
  } else {
    staged_terms_.erase(msg.key);
  }
  const double bytes = static_cast<double>(msg.SizeBytes());
  const std::string key = msg.key;
  const uint64_t version = msg.version;
  const bool flat = msg.flat;
  // The install ack fires once the copy is durable; like the cache's
  // staleness oracle it is zero-cost control-plane introspection standing
  // in for a small ack message (docs/replication.md).
  dht_peer_->ScheduleAfterDisk(bytes, /*write=*/true,
                               [this, key, version, flat]() {
                                 dht_peer_->dht()->replication()
                                     .OnReplicaInstalled(key,
                                                         dht_peer_->node(),
                                                         version, flat);
                               });
}

void KadopPeer::ActivateStagedTerms() {
  if (dpp_ == nullptr) {
    staged_terms_.clear();
    return;
  }
  for (auto it = staged_terms_.begin(); it != staged_terms_.end();) {
    if (dht_peer_->IsResponsible(dht::HashKey(it->first))) {
      dpp_->ImportTerm(it->second);
      it = staged_terms_.erase(it);
    } else {
      ++it;
    }
  }
}

void KadopPeer::HandleApp(const dht::AppRequest& request, NodeIndex from) {
  if (dpp_ && dpp_->HandleApp(request, from)) return;
  if (reducer_->HandleApp(request, from)) return;
  if (query_client_->HandleApp(request, from)) return;
  if (block_join_->HandleApp(request, from)) return;
  if (fundex_->HandleApp(request, from)) return;

  if (const auto* handoff =
          dynamic_cast<const HandoffMessage*>(request.inner.get())) {
    HandleHandoff(*handoff);
    return;
  }

  if (const auto* install = dynamic_cast<const ReplicaInstallMessage*>(
          request.inner.get())) {
    HandleReplicaInstall(*install);
    return;
  }
  if (const auto* drop =
          dynamic_cast<const ReplicaDropMessage*>(request.inner.get())) {
    // Keep the stored copy when this node is part of the key's
    // chain-replication tail (that copy belongs to crash recovery, not to
    // hot-data replication); otherwise discard it.
    dht::Dht* d = dht_peer_->dht();
    const std::vector<NodeIndex> chain =
        d->SuccessorsOf(dht::HashKey(drop->key), d->options().replication);
    const bool chain_holder =
        std::find(chain.begin(), chain.end(), dht_peer_->node()) !=
        chain.end();
    if (!chain_holder) dht_peer_->store()->DeleteKey(drop->key);
    staged_terms_.erase(drop->key);
    return;
  }

  if (const auto* doc_query =
          dynamic_cast<const DocQueryRequest*>(request.inner.get())) {
    auto resp = std::make_shared<DocQueryResponse>();
    Result<query::TreePattern> pattern = query::ParsePattern(
        doc_query->pattern);
    if (pattern.ok()) {
      std::vector<DocSeq> seqs = doc_query->docs;
      if (doc_query->all_docs) {
        seqs.clear();
        for (DocSeq seq = 0; seq < doc_store_.size(); ++seq) {
          seqs.push_back(seq);
        }
      }
      for (DocSeq seq : seqs) {
        const xml::Document* doc = doc_store_.Get(seq);
        if (doc == nullptr) continue;
        auto answers = query::EvaluateOnDocument(
            pattern.value(), *doc,
            index::DocId{dht_peer_->node(), seq});
        resp->answers.insert(resp->answers.end(), answers.begin(),
                             answers.end());
      }
    }
    dht_peer_->Reply(request.origin, request.req_id, std::move(resp),
                     TrafficCategory::kResult);
    return;
  }
  KADOP_LOG_DEBUG("peer %u: unhandled app payload '%.*s'", dht_peer_->node(),
                  static_cast<int>(request.inner->TypeName().size()),
                  request.inner->TypeName().data());
}

// ---------------------------------------------------------------------------
// KadopNet

KadopNet::KadopNet(KadopOptions options) : options_(options) {
  network_ = std::make_unique<sim::Network>(&scheduler_, options_.net);
  dht_ = std::make_unique<dht::Dht>(&scheduler_, network_.get(),
                                    options_.dht);
  KADOP_CHECK(options_.peers > 0, "need at least one peer");
  dht_->AddPeers(options_.peers);

  // The view catalog and its publisher hooks must exist before any peer is
  // built: every Publisher — the per-peer member and each PublishAndWait
  // batch publisher — copies options_.publish at construction, so hooks
  // installed here reach all of them.
  view_catalog_ = std::make_unique<query::ViewCatalog>(options_.views);
  query::ViewCatalog* catalog = view_catalog_.get();
  options_.publish.derive =
      [catalog](dht::DhtPeer* p, const xml::Document& doc,
                index::PeerId peer_id, DocSeq seq,
                const std::vector<index::TermPosting>& postings) {
        return catalog->MakePublishDeltas(p, doc, peer_id, seq, postings);
      };
  options_.publish.on_unpublish =
      [catalog](dht::DhtPeer* p, const xml::Document& doc,
                index::PeerId peer_id, DocSeq seq,
                const std::vector<index::TermPosting>& postings) {
        catalog->HandleUnpublish(p, doc, peer_id, seq, postings);
      };
  // Once a hooked publish settles (base batches AND view deltas acked),
  // the catalog may absorb the base-term version bumps it just caused —
  // without this, every publish would trip the version oracle and park all
  // views on the fallback path until the next explicit SyncViews.
  options_.publish.on_complete = [catalog](dht::DhtPeer* p) {
    catalog->Resync(p);
  };

  for (size_t i = 0; i < options_.peers; ++i) {
    peers_.push_back(std::make_unique<KadopPeer>(
        dht_->peer(static_cast<NodeIndex>(i)), options_, MakeResolver()));
  }
  for (auto& kp : peers_) {
    kp->query_client().SetViewCatalog(view_catalog_.get());
  }

  // Advisor hooks. A promotion decision fires inside Submit (from the
  // query log), so materialization is deferred one virtual instant rather
  // than starting a nested query from within another query's submission.
  view_catalog_->SetMaterializeFn([this](const std::string& pattern_key) {
    scheduler_.After(0.0, [this, pattern_key] {
      Result<query::TreePattern> parsed = query::ParsePattern(pattern_key);
      if (!parsed.ok()) return;
      Result<std::string> name =
          view_catalog_->Register(parsed.value(), "", /*auto_created=*/true);
      if (!name.ok()) return;
      MaterializeView(name.value());
    });
  });
  view_catalog_->SetDropViewFn(
      [this](const std::string& name) { DropView(name); });

  // Hot-data replication data plane: the control plane (dht layer) decides
  // *what* to copy or drop; these hooks move the actual state as
  // application messages over real simulated links.
  obs::Counter* bytes_copied =
      obs::MetricRegistry::Default().GetCounter("repl.bytes_copied");
  dht_->replication().SetCopyFn(
      [this, bytes_copied](const std::string& key, NodeIndex owner,
                           NodeIndex target, uint64_t version) {
        KadopPeer* src = peer(owner);
        auto msg = std::make_shared<ReplicaInstallMessage>();
        msg->key = key;
        msg->postings = src->dht_peer()->store()->GetPostings(key);
        msg->version = version;
        if (src->dpp() != nullptr) {
          if (src->dpp()->SplitInProgress(key)) return;  // retry next window
          if (auto exported = src->dpp()->PeekTerm(key)) {
            // A single root block stored under the term key itself is a
            // plain store read at the owner — the replica may serve it
            // directly. Partitioned terms are staged for takeover only.
            const bool flat = exported->blocks.size() == 1 &&
                              exported->blocks[0].key == key;
            msg->flat = flat;
            if (!flat) msg->dpp_root = std::move(*exported);
          }
        }
        bytes_copied->Increment(msg->SizeBytes());
        src->dht_peer()->SendApp(target, std::move(msg),
                                 TrafficCategory::kPublish);
      });
  dht_->replication().SetDropFn(
      [this](const std::string& key, NodeIndex target) {
        auto msg = std::make_shared<ReplicaDropMessage>();
        msg->key = key;
        peer(dht_->OwnerOf(dht::HashKey(key)))
            ->dht_peer()
            ->SendApp(target, std::move(msg), TrafficCategory::kControl);
      });

  // Stamp traces with this network's virtual clock so span timestamps are
  // reproducible across identical seeded runs.
  obs::Tracer::Default().SetClock([this] { return scheduler_.Now(); }, this);
}

KadopNet::~KadopNet() {
#ifndef NDEBUG
  // Leak check: every span begun while this network drove the clock should
  // have closed by teardown. An open span means an instrumentation path
  // lost its End() (the KDP016 analyzer rule catches the textual cases;
  // this catches the dynamic ones).
  auto& tracer = obs::Tracer::Default();
  if (tracer.enabled() && tracer.OpenSpans() > 0) {
    std::fprintf(stderr,
                 "KadopNet: %zu trace span(s) still open at teardown — "
                 "a Tracer::Begin() is missing its End()\n",
                 tracer.OpenSpans());
  }
#endif
  obs::Tracer::Default().ClearClock(this);
}

fundex::Resolver KadopNet::MakeResolver() {
  return [this](const std::string& uri) -> const xml::Document* {
    auto it = uri_index_.find(uri);
    return it == uri_index_.end() ? nullptr : it->second;
  };
}

bool KadopNet::UnpublishAndWait(NodeIndex publisher, index::DocSeq seq) {
  const bool ok = peer(publisher)->publisher().Unpublish(seq);
  scheduler_.RunUntilIdle();
  return ok;
}

sim::NodeIndex KadopNet::JoinPeerAndWait() {
  auto& tracer = obs::Tracer::Default();
  const obs::SpanId span = tracer.Begin("join_peer");
  const NodeIndex node = dht_->AddPeer();
  tracer.Annotate(span, "node", std::to_string(node));
  peers_.push_back(std::make_unique<KadopPeer>(dht_->peer(node), options_,
                                               MakeResolver()));
  peers_.back()->query_client().SetViewCatalog(view_catalog_.get());
  dht_->Stabilize();

  // The newcomer's successor owned its key range until now; it hands off
  // every key that changed hands — postings, blobs, and DPP root blocks.
  dht::DhtPeer* new_peer = dht_->peer(node);
  const NodeIndex succ = new_peer->routing().successor_node;
  KadopPeer* old_owner = peer(succ);
  store::PeerStore* old_store = old_owner->dht_peer()->store();

  // With replication, the old owner is the newcomer's successor — exactly
  // where the first replica of the transferred keys belongs — so the copy
  // stays in place; without replication the key moves.
  const bool keep_replica = options_.dht.replication > 1;
  for (const std::string& key : old_store->PostingKeys()) {
    if (dht_->OwnerOf(dht::HashKey(key)) != node) continue;
    auto msg = std::make_shared<HandoffMessage>();
    msg->key = key;
    msg->postings = old_store->GetPostings(key);
    if (!keep_replica) old_store->DeleteKey(key);
    if (old_owner->dpp() != nullptr) {
      msg->dpp_root = old_owner->dpp()->ExportTerm(key);
    }
    old_owner->dht_peer()->SendApp(node, std::move(msg),
                                   sim::TrafficCategory::kPublish);
  }
  for (const std::string& key : old_store->BlobKeys()) {
    if (dht_->OwnerOf(dht::HashKey(key)) != node) continue;
    auto msg = std::make_shared<HandoffMessage>();
    msg->key = key;
    msg->blob = *old_store->GetBlob(key);
    if (!keep_replica) old_store->DeleteBlob(key);
    old_owner->dht_peer()->SendApp(node, std::move(msg),
                                   sim::TrafficCategory::kPublish);
  }
  ActivateStagedReplicas();
  scheduler_.RunUntilIdle();
  tracer.End(span);
  return node;
}

void KadopNet::FailPeerAndStabilize(NodeIndex node) {
  dht_->FailPeer(node);
  dht_->Stabilize();
  ActivateStagedReplicas();
}

void KadopNet::RestartPeerAndStabilize(NodeIndex node) {
  dht_->RestartPeer(node);
  dht_->Stabilize();
  ActivateStagedReplicas();
}

void KadopNet::ActivateStagedReplicas() {
  // After every re-stabilization a replica holder may have become the owner
  // of keys it staged directory state for; installing that state is what
  // turns the copy into an authoritative takeover.
  for (size_t i = 0; i < peers_.size(); ++i) {
    if (!network_->IsNodeUp(static_cast<NodeIndex>(i))) continue;
    peers_[i]->ActivateStagedTerms();
  }
}

void KadopNet::EnableFaults(const sim::FaultOptions& fault_options,
                            std::vector<sim::CrashEvent> schedule) {
  fault_plan_ = std::make_unique<sim::FaultPlan>(fault_options);
  network_->SetFaultPlan(fault_plan_.get());
  for (const sim::CrashEvent& ev : schedule) {
    KADOP_CHECK(ev.node < peers_.size(), "crash event for unknown peer");
    scheduler_.At(ev.at, [this, ev] {
      if (ev.up) {
        FaultEvents().restarts->Increment();
        RestartPeerAndStabilize(ev.node);
      } else {
        FaultEvents().crashes->Increment();
        FailPeerAndStabilize(ev.node);
      }
    });
  }
}

void KadopNet::DisableFaults() {
  network_->SetFaultPlan(nullptr);
  fault_plan_.reset();
}

void KadopNet::RegisterDocuments(const std::vector<xml::Document>& docs) {
  for (const auto& doc : docs) {
    if (!doc.uri.empty()) uri_index_[doc.uri] = &doc;
  }
}

double KadopNet::PublishAndWait(
    NodeIndex publisher, const std::vector<const xml::Document*>& docs) {
  const double start = scheduler_.Now();
  double done_at = start;
  auto& tracer = obs::Tracer::Default();
  const obs::SpanId span = tracer.Begin("publish");
  tracer.Annotate(span, "documents", std::to_string(docs.size()));
  // A fresh Publisher per batch (the member publisher serves examples that
  // publish once).
  auto batch_publisher = std::make_shared<index::Publisher>(
      peer(publisher)->dht_peer(), &peer(publisher)->doc_store(),
      options_.publish);
  batch_publisher->Publish(docs, [this, &done_at, span, batch_publisher]() {
    done_at = scheduler_.Now();
    obs::Tracer::Default().End(span);
  });
  scheduler_.RunUntilIdle();
  return done_at - start;
}

double KadopNet::ParallelPublishAndWait(
    const std::vector<std::pair<NodeIndex,
                                std::vector<const xml::Document*>>>&
        batches) {
  const double start = scheduler_.Now();
  double last_done = start;
  std::vector<std::shared_ptr<index::Publisher>> publishers;
  for (const auto& [node, docs] : batches) {
    auto pub = std::make_shared<index::Publisher>(
        peer(node)->dht_peer(), &peer(node)->doc_store(), options_.publish);
    publishers.push_back(pub);
    pub->Publish(docs, [this, &last_done]() {
      last_done = std::max(last_done, scheduler_.Now());
    });
  }
  scheduler_.RunUntilIdle();
  return last_done - start;
}

double KadopNet::FundexPublishAndWait(
    NodeIndex publisher, const std::vector<const xml::Document*>& docs,
    fundex::IntensionalMode mode) {
  const double start = scheduler_.Now();
  double done_at = start;
  peer(publisher)->fundex().Publish(docs, mode, options_.publish,
                                    [this, &done_at]() {
                                      done_at = scheduler_.Now();
                                    });
  // Run to idle: function indexing triggered in the background must also
  // settle before queries run.
  scheduler_.RunUntilIdle();
  return std::max(done_at, scheduler_.Now()) - start;
}

// ---------------------------------------------------------------------------
// Materialized views

sim::NodeIndex KadopNet::FirstLivePeer() const {
  for (size_t i = 0; i < peers_.size(); ++i) {
    if (network_->IsNodeUp(static_cast<NodeIndex>(i))) {
      return static_cast<NodeIndex>(i);
    }
  }
  return 0;
}

void KadopNet::MaterializeView(const std::string& name) {
  const query::ViewCatalog::Entry* entry = view_catalog_->Find(name);
  if (entry == nullptr) return;
  const query::TreePattern pattern = entry->def.pattern;
  const std::string extent_prefix = entry->def.extent_prefix;
  // Ground truth comes from the strongest always-available base strategy;
  // never from a view (no rewriting happens for an explicit strategy).
  query::QueryOptions ground;
  ground.strategy = options_.enable_dpp ? query::QueryStrategy::kDpp
                                        : query::QueryStrategy::kBaseline;
  const NodeIndex at = FirstLivePeer();
  peer(at)->query_client().Submit(
      pattern, ground,
      [this, name, extent_prefix, pattern, at](query::QueryResult result) {
        const query::ViewCatalog::Entry* e = view_catalog_->Find(name);
        // Dropped (or re-created under a new generation) mid-flight.
        if (e == nullptr || e->def.extent_prefix != extent_prefix) return;
        if (!result.metrics.complete || result.metrics.degraded) {
          // A partial ground truth would install a wrong extent that the
          // freshness guard could never detect; give up instead.
          view_catalog_->Drop(name);
          return;
        }
        view_catalog_->AddAnswerDelta(
            name, static_cast<int64_t>(result.answers.size()));
        std::vector<index::PostingList> columns =
            query::ProjectAnswers(result.answers, pattern.size());
        dht::DhtPeer* p = peer(at)->dht_peer();
        const size_t batch =
            std::max<size_t>(1, options_.publish.batch_postings);
        for (size_t v = 0; v < columns.size(); ++v) {
          const std::string key = e->def.ColumnKey(v);
          for (size_t off = 0; off < columns[v].size(); off += batch) {
            const size_t end = std::min(columns[v].size(), off + batch);
            index::PostingList chunk(columns[v].begin() + off,
                                     columns[v].begin() + end);
            const auto n = static_cast<int64_t>(chunk.size());
            view_catalog_->BeginMaintenance(name);
            p->Append(key, std::move(chunk),
                      [this, name, extent_prefix, v, n, p](Status st) {
                        // A lost chunk leaves the entry out of sync: safe
                        // (never served), recoverable only by re-creating.
                        if (!st.ok()) return;
                        view_catalog_->OnMaintenanceApplied(
                            name, extent_prefix, v, n, std::nullopt, p);
                      },
                      {}, options_.publish.append_retry);
          }
        }
        view_catalog_->MarkReady(name);
      });
}

Result<std::string> KadopNet::CreateViewAndWait(std::string_view xpath,
                                                std::string name) {
  Result<query::TreePattern> pattern = query::ParsePattern(xpath);
  if (!pattern.ok()) return pattern.status();
  Result<std::string> registered = view_catalog_->Register(
      pattern.value(), std::move(name), /*auto_created=*/false);
  if (!registered.ok()) return registered.status();
  MaterializeView(registered.value());
  SyncViews();
  if (view_catalog_->Find(registered.value()) == nullptr) {
    return Status::Internal("view materialization incomplete: " +
                            registered.value());
  }
  return registered;
}

bool KadopNet::DropView(const std::string& name) {
  if (!view_catalog_->Drop(name)) return false;
  peer(FirstLivePeer())
      ->dht_peer()
      ->PutBlob("view:catalog", view_catalog_->Describe());
  return true;
}

void KadopNet::SyncViews() {
  scheduler_.RunUntilIdle();
  dht::DhtPeer* p = peer(FirstLivePeer())->dht_peer();
  view_catalog_->Resync(p);
  p->PutBlob("view:catalog", view_catalog_->Describe());
  scheduler_.RunUntilIdle();
}

Status KadopNet::SubmitQuery(NodeIndex at, std::string_view xpath,
                             const query::QueryOptions& options,
                             query::QueryClient::Callback callback) {
  Result<query::TreePattern> pattern = query::ParsePattern(xpath);
  if (!pattern.ok()) return pattern.status();
  peer(at)->query_client().Submit(pattern.value(), options,
                                  std::move(callback));
  return Status::OK();
}

Result<query::QueryResult> KadopNet::QueryAndWait(
    NodeIndex at, std::string_view xpath,
    const query::QueryOptions& options) {
  std::optional<query::QueryResult> result;
  Status st = SubmitQuery(at, xpath, options,
                          [&result](query::QueryResult r) {
                            result = std::move(r);
                          });
  if (!st.ok()) return st;
  scheduler_.RunUntilIdle();
  if (!result.has_value()) {
    return Status::Internal("query did not complete");
  }
  return std::move(*result);
}

Result<FullQueryResult> KadopNet::QueryDocumentsAndWait(
    NodeIndex at, std::string_view xpath,
    const query::QueryOptions& options) {
  const double start = scheduler_.Now();
  Result<query::QueryResult> index_result = QueryAndWait(at, xpath, options);
  if (!index_result.ok()) return index_result.status();

  FullQueryResult full;
  full.index = index_result.take();

  // Phase 2: ask the peers holding matched documents for the answers.
  std::map<NodeIndex, std::vector<DocSeq>> by_peer;
  for (const index::DocId& doc : full.index.matched_docs) {
    by_peer[doc.peer].push_back(doc.doc);
  }
  size_t pending = by_peer.size();
  dht::DhtPeer* origin = peer(at)->dht_peer();
  for (auto& [node, docs] : by_peer) {
    auto req = std::make_shared<DocQueryRequest>();
    req->pattern = std::string(xpath);
    req->docs = docs;
    origin->CallApp(node, std::move(req), TrafficCategory::kQuery,
                    [&full, &pending](sim::PayloadPtr inner) {
                      auto* resp =
                          dynamic_cast<DocQueryResponse*>(inner.get());
                      if (resp != nullptr) {
                        full.final_answers.insert(full.final_answers.end(),
                                                  resp->answers.begin(),
                                                  resp->answers.end());
                      }
                      --pending;
                    });
  }
  scheduler_.RunUntilIdle();
  KADOP_CHECK(pending == 0, "phase-2 responses missing");
  full.total_time = scheduler_.Now() - start;
  return full;
}

Result<FullQueryResult> KadopNet::BroadcastQueryAndWait(
    NodeIndex at, std::string_view xpath) {
  Result<query::TreePattern> pattern = query::ParsePattern(xpath);
  if (!pattern.ok()) return pattern.status();
  const double start = scheduler_.Now();
  FullQueryResult full;
  dht::DhtPeer* origin = peer(at)->dht_peer();
  size_t pending = 0;
  for (size_t node = 0; node < peers_.size(); ++node) {
    if (!network_->IsNodeUp(static_cast<NodeIndex>(node))) continue;
    auto req = std::make_shared<DocQueryRequest>();
    req->pattern = std::string(xpath);
    req->all_docs = true;
    ++pending;
    origin->CallApp(static_cast<NodeIndex>(node), std::move(req),
                    TrafficCategory::kQuery,
                    [&full, &pending](sim::PayloadPtr inner) {
                      auto* resp =
                          dynamic_cast<DocQueryResponse*>(inner.get());
                      if (resp != nullptr) {
                        full.final_answers.insert(full.final_answers.end(),
                                                  resp->answers.begin(),
                                                  resp->answers.end());
                      }
                      --pending;
                    });
  }
  scheduler_.RunUntilIdle();
  KADOP_CHECK(pending == 0, "broadcast responses missing");
  full.total_time = scheduler_.Now() - start;
  return full;
}

Result<std::string> KadopNet::LookupDocUriAndWait(NodeIndex at,
                                                  const index::DocId& doc) {
  const std::string key = "doc:" + std::to_string(doc.peer) + ":" +
                          std::to_string(doc.doc);
  std::optional<std::optional<std::string>> got;
  peer(at)->dht_peer()->GetBlob(key, [&got](std::optional<std::string> blob) {
    got = std::move(blob);
  });
  scheduler_.RunUntilIdle();
  if (!got.has_value()) return Status::Internal("blob lookup did not run");
  if (!got->has_value()) {
    return Status::NotFound("no Doc-relation entry for " + doc.ToString());
  }
  return **got;
}

Result<std::string> KadopNet::ExplainQueryAndWait(
    NodeIndex at, std::string_view xpath,
    const query::QueryOptions& options) {
  Result<query::TreePattern> parsed = query::ParsePattern(xpath);
  if (!parsed.ok()) return parsed.status();
  const query::TreePattern pattern = parsed.take();

  // Gather stored list sizes (what the optimizer samples).
  std::vector<uint64_t> counts(pattern.size(), 0);
  size_t pending = pattern.size();
  dht::DhtPeer* origin = peer(at)->dht_peer();
  for (size_t node = 0; node < pattern.size(); ++node) {
    auto req = std::make_shared<query::TermCountRequest>();
    req->term_key = pattern.node(node).TermKey();
    origin->RouteApp(req->term_key, req, TrafficCategory::kControl,
                     [&counts, &pending, node](sim::PayloadPtr inner) {
                       auto* resp = dynamic_cast<query::TermCountResponse*>(
                           inner.get());
                       if (resp != nullptr) counts[node] = resp->count;
                       --pending;
                     });
  }
  scheduler_.RunUntilIdle();
  KADOP_CHECK(pending == 0, "count responses missing");

  std::string out = "pattern: " + pattern.ToString() + "\n";
  const query::PatternAnalysis analysis = query::AnalyzePattern(pattern);
  out += "index query: ";
  out += analysis.complete ? "complete" : "INCOMPLETE";
  out += ", ";
  out += analysis.precise ? "precise" : "IMPRECISE";
  if (!analysis.notes.empty()) out += " (" + analysis.notes + ")";
  out += "\nterms:\n";
  for (size_t node = 0; node < pattern.size(); ++node) {
    out += "  [" + std::to_string(node) + "] " +
           pattern.node(node).TermKey() + ": " +
           std::to_string(counts[node]) + " postings\n";
  }
  query::QueryOptions explain_options = options;
  if (view_catalog_->enabled()) {
    if (std::optional<query::ViewCatalog::Rewrite> rw =
            view_catalog_->FindRewrite(pattern, origin)) {
      explain_options.view_available = true;
      explain_options.view_extent_postings = rw->extent_postings;
      uint64_t residual = 0;
      for (size_t q = 0; q < pattern.size(); ++q) {
        if (!rw->match.Covers(static_cast<int>(q))) residual += counts[q];
      }
      explain_options.view_residual_postings = residual;
      out += "view rewrite: " + rw->name +
             (rw->match.exact ? " (exact" : " (containment") +
             ", extent=" + std::to_string(rw->extent_postings) +
             " postings, residual=" + std::to_string(residual) +
             " postings)\n";
    }
  }
  const auto costs =
      query::EstimateStrategyCosts(pattern, counts, explain_options);
  out += "strategy cost estimates:\n";
  const query::StrategyCostEstimate* best = costs.empty() ? nullptr
                                                          : &costs[0];
  for (const auto& c : costs) {
    char line[160];
    std::snprintf(line, sizeof(line),
                  "  %-18s bytes=%.0f bottleneck=%.0f\n",
                  std::string(query::QueryStrategyName(c.strategy)).c_str(),
                  c.bytes, c.bottleneck_bytes);
    out += line;
    const bool better =
        options.objective == query::QueryOptions::Objective::kTraffic
            ? c.bytes < best->bytes
            : c.bottleneck_bytes < best->bottleneck_bytes;
    if (better) best = &c;
  }
  if (best != nullptr) {
    out += "auto would run: ";
    out += query::QueryStrategyName(best->strategy);
    out += "\n";
  }
  return out;
}

Result<fundex::FundexQueryResult> KadopNet::FundexQueryAndWait(
    NodeIndex at, std::string_view xpath, fundex::IntensionalMode mode) {
  Result<query::TreePattern> pattern = query::ParsePattern(xpath);
  if (!pattern.ok()) return pattern.status();
  std::optional<fundex::FundexQueryResult> result;
  fundex::RunFundexQuery(peer(at)->dht_peer(), pattern.value(), mode,
                         [&result](fundex::FundexQueryResult r) {
                           result = std::move(r);
                         });
  scheduler_.RunUntilIdle();
  if (!result.has_value()) {
    return Status::Internal("fundex query did not complete");
  }
  return std::move(*result);
}

// ---------------------------------------------------------------------------
// KadopStats

KadopStats KadopNet::Stats() {
  KadopStats s;
  s.peers = peers_.size();
  s.now = scheduler_.Now();
  s.executed_events = scheduler_.executed_events();
  s.dht = dht_->AggregateStats();
  s.io = dht_->AggregateIo();
  for (const auto& peer : peers_) {
    if (peer->dpp() != nullptr) s.dpp.Add(peer->dpp()->stats());
    s.fundex.Add(peer->fundex().stats());
  }
  s.traffic = network_->traffic();
  s.dropped_messages = network_->dropped_messages();
  s.metrics = obs::MetricRegistry::Default().Snapshot();
  return s;
}

namespace {

void AppendLine(std::string& out, const char* key, uint64_t value) {
  out += key;
  out += '=';
  out += std::to_string(value);
  out += '\n';
}

}  // namespace

std::string KadopStats::ToText() const {
  std::string out;
  AppendLine(out, "peers", peers);
  out += "now=";
  out += obs::JsonWriter::FormatDouble(now);
  out += '\n';
  AppendLine(out, "executed_events", executed_events);
  AppendLine(out, "dht.locates", dht.locates);
  AppendLine(out, "dht.routed_messages", dht.routed_messages);
  AppendLine(out, "dht.route_hops", dht.route_hops);
  AppendLine(out, "dht.appends_received", dht.appends_received);
  AppendLine(out, "dht.postings_stored", dht.postings_stored);
  AppendLine(out, "dht.gets_served", dht.gets_served);
  AppendLine(out, "dht.blocks_sent", dht.blocks_sent);
  AppendLine(out, "dht.app_requests", dht.app_requests);
  AppendLine(out, "io.operations", io.operations);
  AppendLine(out, "io.read_bytes", io.read_bytes);
  AppendLine(out, "io.write_bytes", io.write_bytes);
  AppendLine(out, "dpp.splits", dpp.splits);
  AppendLine(out, "dpp.migrated_postings", dpp.migrated_postings);
  AppendLine(out, "dpp.blocks_stored", dpp.blocks_stored);
  AppendLine(out, "dpp.dir_requests", dpp.dir_requests);
  AppendLine(out, "fundex.functions_indexed", fundex.functions_indexed);
  AppendLine(out, "fundex.duplicate_requests", fundex.duplicate_requests);
  AppendLine(out, "fundex.rev_entries", fundex.rev_entries);
  AppendLine(out, "traffic.messages", traffic.messages);
  AppendLine(out, "traffic.bytes", traffic.bytes);
  for (size_t c = 0;
       c < static_cast<size_t>(sim::TrafficCategory::kCategoryCount); ++c) {
    const auto cat = static_cast<sim::TrafficCategory>(c);
    std::string key = "traffic.";
    key += sim::TrafficCategoryName(cat);
    AppendLine(out, (key + ".messages").c_str(),
               traffic.messages_by_category[c]);
    AppendLine(out, (key + ".bytes").c_str(), traffic.bytes_by_category[c]);
  }
  AppendLine(out, "dropped_messages", dropped_messages);
  out += "--- metrics ---\n";
  out += metrics.ToText();
  return out;
}

std::string KadopStats::ToJson() const {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("peers");
  w.Value(static_cast<uint64_t>(peers));
  w.Key("now");
  w.Value(now);
  w.Key("executed_events");
  w.Value(executed_events);
  w.Key("dht");
  w.BeginObject();
  w.Key("locates");
  w.Value(dht.locates);
  w.Key("routed_messages");
  w.Value(dht.routed_messages);
  w.Key("route_hops");
  w.Value(dht.route_hops);
  w.Key("appends_received");
  w.Value(dht.appends_received);
  w.Key("postings_stored");
  w.Value(dht.postings_stored);
  w.Key("gets_served");
  w.Value(dht.gets_served);
  w.Key("blocks_sent");
  w.Value(dht.blocks_sent);
  w.Key("app_requests");
  w.Value(dht.app_requests);
  w.EndObject();
  w.Key("io");
  w.BeginObject();
  w.Key("operations");
  w.Value(io.operations);
  w.Key("read_bytes");
  w.Value(io.read_bytes);
  w.Key("write_bytes");
  w.Value(io.write_bytes);
  w.EndObject();
  w.Key("dpp");
  w.BeginObject();
  w.Key("splits");
  w.Value(dpp.splits);
  w.Key("migrated_postings");
  w.Value(dpp.migrated_postings);
  w.Key("blocks_stored");
  w.Value(dpp.blocks_stored);
  w.Key("dir_requests");
  w.Value(dpp.dir_requests);
  w.EndObject();
  w.Key("fundex");
  w.BeginObject();
  w.Key("functions_indexed");
  w.Value(fundex.functions_indexed);
  w.Key("duplicate_requests");
  w.Value(fundex.duplicate_requests);
  w.Key("rev_entries");
  w.Value(fundex.rev_entries);
  w.EndObject();
  w.Key("traffic");
  w.BeginObject();
  w.Key("messages");
  w.Value(traffic.messages);
  w.Key("bytes");
  w.Value(traffic.bytes);
  w.Key("by_category");
  w.BeginObject();
  for (size_t c = 0;
       c < static_cast<size_t>(sim::TrafficCategory::kCategoryCount); ++c) {
    const auto cat = static_cast<sim::TrafficCategory>(c);
    w.Key(sim::TrafficCategoryName(cat));
    w.BeginObject();
    w.Key("messages");
    w.Value(traffic.messages_by_category[c]);
    w.Key("bytes");
    w.Value(traffic.bytes_by_category[c]);
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  w.Key("dropped_messages");
  w.Value(dropped_messages);
  w.Key("metrics");
  metrics.AppendJson(w);
  w.EndObject();
  return std::move(w).str();
}

}  // namespace kadop::core
