#include "store/peer_store.h"

#include <algorithm>

#include "common/logging.h"
#include "index/codec.h"
#include "obs/metrics.h"

namespace kadop::store {

using index::DocId;
using index::Posting;
using index::PostingList;

namespace {

struct StoreCounters {
  obs::Counter* operations;
  obs::Counter* read_bytes;
  obs::Counter* write_bytes;

  StoreCounters() {
    auto& r = obs::MetricRegistry::Default();
    operations = r.GetCounter("store.operations");
    read_bytes = r.GetCounter("store.read_bytes");
    write_bytes = r.GetCounter("store.write_bytes");
  }
};

StoreCounters& C() {
  static StoreCounters counters;
  return counters;
}

}  // namespace

namespace internal {

void CountBTreeSplit() {
  static obs::Counter* splits =
      obs::MetricRegistry::Default().GetCounter("store.btree.splits");
  splits->Increment();
}

}  // namespace internal

namespace {

/// Each store instance gets its own version epoch: versions from a store
/// that no longer owns a key (handoff, replica takeover) can never collide
/// with the new owner's.
uint64_t NextStoreEpoch() {
  static uint64_t epoch = 0;
  return ++epoch;
}

}  // namespace

PeerStore::PeerStore() : version_epoch_(NextStoreEpoch() << 32) {}

uint64_t PeerStore::PostingVersion(const std::string& key) const {
  auto it = posting_versions_.find(key);
  return it == posting_versions_.end() ? 0 : it->second;
}

void PeerStore::BumpPostingVersion(const std::string& key) {
  ++posting_versions_.try_emplace(key, version_epoch_).first->second;
}

void PeerStore::ChargeIo(uint64_t read, uint64_t write) {
  io_.operations++;
  C().operations->Increment();
  AddIoBytes(read, write);
}

void PeerStore::AddIoBytes(uint64_t read, uint64_t write) {
  io_.read_bytes += read;
  io_.write_bytes += write;
  if (read > 0) C().read_bytes->Increment(read);
  if (write > 0) C().write_bytes->Increment(write);
}

// ---------------------------------------------------------------------------
// BTreePeerStore

uint32_t BTreePeerStore::InternTerm(const std::string& key) {
  auto [it, inserted] =
      term_ids_.emplace(key, static_cast<uint32_t>(term_names_.size()));
  if (inserted) term_names_.push_back(key);
  return it->second;
}

bool BTreePeerStore::LookupTerm(const std::string& key, uint32_t& id) const {
  auto it = term_ids_.find(key);
  if (it == term_ids_.end()) return false;
  id = it->second;
  return true;
}

void BTreePeerStore::AppendPosting(const std::string& key,
                                   const Posting& posting) {
  const uint32_t tid = InternTerm(key);
  if (tree_.InsertOrAssign(TreeKey{tid, posting}, Empty{})) {
    ++counts_[tid];
    BumpPostingVersion(key);
  }
  // Append charge is amortized: only the appended record is (re-)encoded,
  // never the whole stored list.
  ChargeIo(0, index::codec::StoredPostingBytes(posting));
}

void BTreePeerStore::AppendPostings(const std::string& key,
                                    const PostingList& postings) {
  for (const Posting& p : postings) AppendPosting(key, p);
}

PostingList BTreePeerStore::GetPostings(const std::string& key) {
  return GetPostingRange(key, index::kMinPosting, index::kMaxPosting, 0);
}

PostingList BTreePeerStore::GetPostingRange(const std::string& key,
                                            const Posting& lo,
                                            const Posting& hi, size_t limit) {
  PostingList out;
  uint32_t tid;
  if (!LookupTerm(key, tid)) return out;
  auto it = tree_.Seek(TreeKey{tid, lo});
  while (it.Valid() && it.key().term_id == tid && !(hi < it.key().posting)) {
    out.push_back(it.key().posting);
    if (limit != 0 && out.size() >= limit) break;
    it.Next();
  }
  ChargeIo(index::codec::StoredBytes(out), 0);
  return out;
}

size_t BTreePeerStore::PostingCount(const std::string& key) const {
  uint32_t tid;
  if (!LookupTerm(key, tid)) return 0;
  auto it = counts_.find(tid);
  return it == counts_.end() ? 0 : it->second;
}

bool BTreePeerStore::DeletePosting(const std::string& key,
                                   const Posting& posting) {
  uint32_t tid;
  if (!LookupTerm(key, tid)) return false;
  ChargeIo(0, 0);
  if (tree_.Erase(TreeKey{tid, posting})) {
    AddIoBytes(0, index::codec::StoredPostingBytes(posting));
    --counts_[tid];
    BumpPostingVersion(key);
    return true;
  }
  return false;
}

size_t BTreePeerStore::DeleteDocPostings(const std::string& key,
                                         const DocId& doc) {
  uint32_t tid;
  if (!LookupTerm(key, tid)) return 0;
  // Collect, then erase (iterators are invalidated by Erase).
  PostingList victims = GetPostingRange(
      key, Posting{doc.peer, doc.doc, {0, 0, 0}},
      Posting{doc.peer, doc.doc, {UINT32_MAX, UINT32_MAX, UINT16_MAX}}, 0);
  for (const Posting& p : victims) {
    KADOP_CHECK(tree_.Erase(TreeKey{tid, p}),
                "posting listed by GetPostingRange must be erasable");
    AddIoBytes(0, index::codec::StoredPostingBytes(p));
  }
  counts_[tid] -= victims.size();
  if (!victims.empty()) BumpPostingVersion(key);
  return victims.size();
}

size_t BTreePeerStore::DeleteKey(const std::string& key) {
  uint32_t tid;
  if (!LookupTerm(key, tid)) return 0;
  PostingList victims =
      GetPostingRange(key, index::kMinPosting, index::kMaxPosting, 0);
  for (const Posting& p : victims) {
    KADOP_CHECK(tree_.Erase(TreeKey{tid, p}),
                "posting listed by GetPostingRange must be erasable");
    AddIoBytes(0, index::codec::StoredPostingBytes(p));
  }
  counts_[tid] = 0;
  if (!victims.empty()) BumpPostingVersion(key);
  return victims.size();
}

void BTreePeerStore::PutBlob(const std::string& key, std::string blob) {
  ChargeIo(0, blob.size());
  blobs_[key] = std::move(blob);
}

const std::string* BTreePeerStore::GetBlob(const std::string& key) {
  auto it = blobs_.find(key);
  if (it == blobs_.end()) return nullptr;
  ChargeIo(it->second.size(), 0);
  return &it->second;
}

bool BTreePeerStore::DeleteBlob(const std::string& key) {
  ChargeIo(0, 0);
  return blobs_.erase(key) > 0;
}

size_t BTreePeerStore::TotalPostings() const { return tree_.size(); }

std::vector<std::string> BTreePeerStore::PostingKeys() const {
  std::vector<std::string> keys;
  for (const auto& [tid, count] : counts_) {
    if (count > 0) keys.push_back(term_names_[tid]);
  }
  // counts_ is unordered; callers replay these keys as handoff /
  // restart message sequences, so the order must not depend on the
  // stdlib's hash-bucket layout (KDP012).
  std::sort(keys.begin(), keys.end());
  return keys;
}

std::vector<std::string> BTreePeerStore::BlobKeys() const {
  std::vector<std::string> keys;
  keys.reserve(blobs_.size());
  for (const auto& [key, blob] : blobs_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  return keys;
}

// ---------------------------------------------------------------------------
// NaivePeerStore

void NaivePeerStore::ChargeReconciliation(const PostingList& list,
                                          size_t extra) {
  const size_t old_bytes = index::codec::StoredBytes(list);
  ChargeIo(old_bytes, old_bytes + extra);
}

void NaivePeerStore::AppendPosting(const std::string& key,
                                   const Posting& posting) {
  PostingList& list = lists_[key];
  ChargeReconciliation(list, index::codec::StoredPostingBytes(posting));
  auto it = std::lower_bound(list.begin(), list.end(), posting);
  if (it == list.end() || *it != posting) {
    list.insert(it, posting);
    BumpPostingVersion(key);
  }
}

void NaivePeerStore::AppendPostings(const std::string& key,
                                    const PostingList& postings) {
  PostingList& list = lists_[key];
  // One reconciliation per batch: read old value once, write merged once.
  ChargeReconciliation(list, index::codec::StoredBytes(postings));
  bool changed = false;
  for (const Posting& p : postings) {
    auto it = std::lower_bound(list.begin(), list.end(), p);
    if (it == list.end() || *it != p) {
      list.insert(it, p);
      changed = true;
    }
  }
  if (changed) BumpPostingVersion(key);
}

PostingList NaivePeerStore::GetPostings(const std::string& key) {
  auto it = lists_.find(key);
  if (it == lists_.end()) return {};
  ChargeIo(index::codec::StoredBytes(it->second), 0);
  return it->second;
}

PostingList NaivePeerStore::GetPostingRange(const std::string& key,
                                            const Posting& lo,
                                            const Posting& hi, size_t limit) {
  auto it = lists_.find(key);
  if (it == lists_.end()) return {};
  // The naive store has no clustered index: it reads the whole value and
  // filters in memory.
  ChargeIo(index::codec::StoredBytes(it->second), 0);
  PostingList out;
  auto from = std::lower_bound(it->second.begin(), it->second.end(), lo);
  for (; from != it->second.end() && !(hi < *from); ++from) {
    out.push_back(*from);
    if (limit != 0 && out.size() >= limit) break;
  }
  return out;
}

size_t NaivePeerStore::PostingCount(const std::string& key) const {
  auto it = lists_.find(key);
  return it == lists_.end() ? 0 : it->second.size();
}

bool NaivePeerStore::DeletePosting(const std::string& key,
                                   const Posting& posting) {
  auto it = lists_.find(key);
  if (it == lists_.end()) return false;
  ChargeReconciliation(it->second, 0);
  auto pos = std::lower_bound(it->second.begin(), it->second.end(), posting);
  if (pos == it->second.end() || *pos != posting) return false;
  it->second.erase(pos);
  BumpPostingVersion(key);
  return true;
}

size_t NaivePeerStore::DeleteDocPostings(const std::string& key,
                                         const DocId& doc) {
  auto it = lists_.find(key);
  if (it == lists_.end()) return 0;
  ChargeReconciliation(it->second, 0);
  size_t before = it->second.size();
  std::erase_if(it->second,
                [&doc](const Posting& p) { return p.doc_id() == doc; });
  if (it->second.size() != before) BumpPostingVersion(key);
  return before - it->second.size();
}

size_t NaivePeerStore::DeleteKey(const std::string& key) {
  auto it = lists_.find(key);
  if (it == lists_.end()) return 0;
  const size_t removed = it->second.size();
  ChargeIo(0, index::codec::StoredBytes(it->second));
  lists_.erase(it);
  if (removed > 0) BumpPostingVersion(key);
  return removed;
}

void NaivePeerStore::PutBlob(const std::string& key, std::string blob) {
  ChargeIo(0, blob.size());
  blobs_[key] = std::move(blob);
}

const std::string* NaivePeerStore::GetBlob(const std::string& key) {
  auto it = blobs_.find(key);
  if (it == blobs_.end()) return nullptr;
  ChargeIo(it->second.size(), 0);
  return &it->second;
}

bool NaivePeerStore::DeleteBlob(const std::string& key) {
  ChargeIo(0, 0);
  return blobs_.erase(key) > 0;
}

size_t NaivePeerStore::TotalPostings() const {
  size_t n = 0;
  for (const auto& [key, list] : lists_) n += list.size();
  return n;
}

std::vector<std::string> NaivePeerStore::PostingKeys() const {
  std::vector<std::string> keys;
  for (const auto& [key, list] : lists_) {
    if (!list.empty()) keys.push_back(key);
  }
  // Same contract as BTreePeerStore: key enumeration order feeds handoff
  // message sequences and must be hash-layout independent (KDP012).
  std::sort(keys.begin(), keys.end());
  return keys;
}

std::vector<std::string> NaivePeerStore::BlobKeys() const {
  std::vector<std::string> keys;
  keys.reserve(blobs_.size());
  for (const auto& [key, blob] : blobs_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  return keys;
}

}  // namespace kadop::store
