#ifndef KADOP_STORE_PEER_STORE_H_
#define KADOP_STORE_PEER_STORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "index/posting.h"
#include "store/bplus_tree.h"

namespace kadop::store {

/// Disk-activity counters. The DHT peer converts these to virtual time via
/// its disk-bandwidth parameter, so the store choice (naive vs B+-tree)
/// shows up in indexing and query latency exactly as in Section 3.
struct IoStats {
  uint64_t read_bytes = 0;
  uint64_t write_bytes = 0;
  uint64_t operations = 0;
};

/// Abstract local store of one peer's slice of the Term relation (posting
/// lists clustered by term, ordered by (peer, doc, sid)) plus small named
/// blobs (Doc/Peer relations, DPP root-block metadata).
class PeerStore {
 public:
  virtual ~PeerStore() = default;

  /// Monotone modification version of `key`'s posting data at this store:
  /// 0 until first modified here, then strictly increasing on every
  /// mutation that changes the stored set. A fresh store instance (handoff
  /// target, replica takeover rebuild) starts a new epoch in the high
  /// bits, so a version observed before a rebuild can never reappear. The
  /// query-side posting cache uses this as its staleness oracle
  /// (docs/wire_format.md).
  [[nodiscard]] uint64_t PostingVersion(const std::string& key) const;

  /// Advances `key`'s version. Every mutating posting op calls this; the
  /// DPP owner also calls it when an append lands in a remote overflow
  /// block, so a term key's version covers the whole partitioned list.
  void BumpPostingVersion(const std::string& key);

  /// Appends one posting to `key`'s list, keeping the clustered order.
  virtual void AppendPosting(const std::string& key,
                             const index::Posting& posting) = 0;

  /// Appends a batch (already sorted or not; the store keeps order). The
  /// naive store performs a single whole-value reconciliation per call —
  /// this is what makes batching matter there.
  virtual void AppendPostings(const std::string& key,
                              const index::PostingList& postings) = 0;

  /// Reads the full posting list for `key` (empty if absent).
  [[nodiscard]] virtual index::PostingList GetPostings(const std::string& key) = 0;

  /// Reads postings for `key` within [lo, hi], up to `limit` (0 = all).
  [[nodiscard]] virtual index::PostingList GetPostingRange(const std::string& key,
                                             const index::Posting& lo,
                                             const index::Posting& hi,
                                             size_t limit) = 0;

  /// Number of postings stored under `key` (metadata, no I/O charged).
  [[nodiscard]] virtual size_t PostingCount(const std::string& key) const = 0;

  /// Deletes one posting. Returns true if present.
  [[nodiscard]] virtual bool DeletePosting(const std::string& key,
                             const index::Posting& posting) = 0;

  /// Deletes every posting of `key` belonging to document `doc` (document
  /// update = delete + re-insert). Returns the number removed.
  [[nodiscard]] virtual size_t DeleteDocPostings(const std::string& key,
                                   const index::DocId& doc) = 0;

  /// Removes every posting stored under `key` (used when a key range is
  /// handed off to a joining peer). Returns the number removed.
  [[nodiscard]] virtual size_t DeleteKey(const std::string& key) = 0;

  /// Whole-value named blob (replaces on rewrite).
  virtual void PutBlob(const std::string& key, std::string blob) = 0;
  [[nodiscard]] virtual const std::string* GetBlob(const std::string& key) = 0;
  [[nodiscard]] virtual bool DeleteBlob(const std::string& key) = 0;

  /// Total postings across all keys.
  [[nodiscard]] virtual size_t TotalPostings() const = 0;

  /// All keys having at least one posting, in unspecified order.
  [[nodiscard]] virtual std::vector<std::string> PostingKeys() const = 0;

  /// All blob keys, in unspecified order.
  [[nodiscard]] virtual std::vector<std::string> BlobKeys() const = 0;

  const IoStats& io() const { return io_; }
  void ResetIo() { io_ = IoStats(); }

 protected:
  PeerStore();

  /// Charges one store operation plus `read`/`write` bytes to this
  /// instance's IoStats and the process-wide metrics registry
  /// (store.operations, store.read_bytes, store.write_bytes).
  void ChargeIo(uint64_t read, uint64_t write);
  /// Charges bytes only — mid-operation accounting (e.g. per-posting
  /// erases inside an already-charged operation).
  void AddIoBytes(uint64_t read, uint64_t write);

  IoStats io_;

 private:
  uint64_t version_epoch_;
  std::unordered_map<std::string, uint64_t> posting_versions_;
};

/// B+-tree-backed store (the BerkeleyDB replacement of Section 3): terms are
/// interned, postings live in a clustered B+-tree keyed by
/// (term id, posting), appends cost O(log n) and charge only the appended
/// bytes.
class BTreePeerStore final : public PeerStore {
 public:
  BTreePeerStore() = default;

  void AppendPosting(const std::string& key,
                     const index::Posting& posting) override;
  void AppendPostings(const std::string& key,
                      const index::PostingList& postings) override;
  index::PostingList GetPostings(const std::string& key) override;
  index::PostingList GetPostingRange(const std::string& key,
                                     const index::Posting& lo,
                                     const index::Posting& hi,
                                     size_t limit) override;
  size_t PostingCount(const std::string& key) const override;
  bool DeletePosting(const std::string& key,
                     const index::Posting& posting) override;
  size_t DeleteDocPostings(const std::string& key,
                           const index::DocId& doc) override;
  size_t DeleteKey(const std::string& key) override;
  void PutBlob(const std::string& key, std::string blob) override;
  const std::string* GetBlob(const std::string& key) override;
  bool DeleteBlob(const std::string& key) override;
  size_t TotalPostings() const override;
  std::vector<std::string> PostingKeys() const override;
  std::vector<std::string> BlobKeys() const override;

  /// Underlying tree height (for tests / stats).
  [[nodiscard]] size_t TreeHeight() const { return tree_.height(); }

 private:
  struct TreeKey {
    uint32_t term_id;
    index::Posting posting;
    friend std::strong_ordering operator<=>(const TreeKey&, const TreeKey&) =
        default;
  };
  struct Empty {};

  /// Interns `key`; creates an id if absent.
  uint32_t InternTerm(const std::string& key);
  /// Looks up an existing id; returns false if the term was never stored.
  [[nodiscard]] bool LookupTerm(const std::string& key, uint32_t& id) const;

  BPlusTree<TreeKey, Empty> tree_;
  std::unordered_map<std::string, uint32_t> term_ids_;
  std::vector<std::string> term_names_;
  std::unordered_map<uint32_t, size_t> counts_;
  std::unordered_map<std::string, std::string> blobs_;
};

/// PAST-style store: each key maps to one opaque value; every append
/// re-reads and re-writes the whole value (the standard DHT `put`
/// reconciliation), so building a list of n postings with per-posting puts
/// costs O(n^2) bytes of I/O. This is the Section 3 baseline.
class NaivePeerStore final : public PeerStore {
 public:
  NaivePeerStore() = default;

  void AppendPosting(const std::string& key,
                     const index::Posting& posting) override;
  void AppendPostings(const std::string& key,
                      const index::PostingList& postings) override;
  index::PostingList GetPostings(const std::string& key) override;
  index::PostingList GetPostingRange(const std::string& key,
                                     const index::Posting& lo,
                                     const index::Posting& hi,
                                     size_t limit) override;
  size_t PostingCount(const std::string& key) const override;
  bool DeletePosting(const std::string& key,
                     const index::Posting& posting) override;
  size_t DeleteDocPostings(const std::string& key,
                           const index::DocId& doc) override;
  size_t DeleteKey(const std::string& key) override;
  void PutBlob(const std::string& key, std::string blob) override;
  const std::string* GetBlob(const std::string& key) override;
  bool DeleteBlob(const std::string& key) override;
  size_t TotalPostings() const override;
  std::vector<std::string> PostingKeys() const override;
  std::vector<std::string> BlobKeys() const override;

 private:
  /// One whole-value read + whole-value write of `key`'s current list plus
  /// `extra` appended bytes.
  void ChargeReconciliation(const index::PostingList& list, size_t extra);

  std::unordered_map<std::string, index::PostingList> lists_;
  std::unordered_map<std::string, std::string> blobs_;
};

}  // namespace kadop::store

#endif  // KADOP_STORE_PEER_STORE_H_
