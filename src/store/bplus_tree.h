#ifndef KADOP_STORE_BPLUS_TREE_H_
#define KADOP_STORE_BPLUS_TREE_H_

#include <algorithm>
#include <cassert>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

namespace kadop::store {

namespace internal {
/// Bumps the process-wide "store.btree.splits" counter (defined in
/// peer_store.cc so this header stays dependency-free).
void CountBTreeSplit();
}  // namespace internal

/// An in-memory B+-tree: the replacement for the PAST gzip-file store
/// (the paper swaps in a BerkeleyDB B+-tree; Section 3).
///
/// Properties:
///   - keys live in internal nodes as separators and in leaves with their
///     values (clustered);
///   - leaves are doubly linked, so ordered range scans (posting-list reads,
///     DPP block extraction) are sequential;
///   - `MaxKeys` keys per node, split at overflow, borrow/merge at
///     underflow (min occupancy MaxKeys/2, root exempt).
///
/// Not thread-safe; peers in the simulation are single-threaded actors.
template <typename Key, typename Value, typename Compare = std::less<Key>,
          int MaxKeys = 64>
class BPlusTree {
  static_assert(MaxKeys >= 4, "MaxKeys must be at least 4");
  static constexpr int kMinKeys = MaxKeys / 2;

  struct Node {
    bool leaf;
    std::vector<Key> keys;
    explicit Node(bool is_leaf) : leaf(is_leaf) {}
    virtual ~Node() = default;
  };

  struct LeafNode : Node {
    std::vector<Value> values;
    LeafNode* next = nullptr;
    LeafNode* prev = nullptr;
    LeafNode() : Node(true) {}
  };

  struct InternalNode : Node {
    // children.size() == keys.size() + 1; children[i] holds keys k with
    // keys[i-1] <= k < keys[i].
    std::vector<std::unique_ptr<Node>> children;
    InternalNode() : Node(false) {}
  };

 public:
  explicit BPlusTree(Compare comp = Compare()) : comp_(std::move(comp)) {}

  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;
  BPlusTree(BPlusTree&&) noexcept = default;
  BPlusTree& operator=(BPlusTree&&) noexcept = default;

  /// Forward iterator over (key, value) pairs in key order.
  class Iterator {
   public:
    Iterator() = default;
    [[nodiscard]] bool Valid() const { return leaf_ != nullptr; }
    const Key& key() const { return leaf_->keys[pos_]; }
    const Value& value() const { return leaf_->values[pos_]; }
    Value& mutable_value() { return leaf_->values[pos_]; }
    void Next() {
      if (++pos_ >= leaf_->keys.size()) {
        leaf_ = leaf_->next;
        pos_ = 0;
      }
    }

   private:
    friend class BPlusTree;
    Iterator(LeafNode* leaf, size_t pos) : leaf_(leaf), pos_(pos) {}
    LeafNode* leaf_ = nullptr;
    size_t pos_ = 0;
  };

  [[nodiscard]] size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] size_t height() const { return height_; }
  [[nodiscard]] size_t leaf_count() const { return leaf_count_; }
  [[nodiscard]] size_t internal_count() const { return internal_count_; }

  /// Inserts or overwrites. Returns true if a new key was inserted, false
  /// if an existing key's value was replaced.
  [[nodiscard]] bool InsertOrAssign(const Key& key, Value value) {
    if (!root_) {
      auto leaf = std::make_unique<LeafNode>();
      leaf->keys.push_back(key);
      leaf->values.push_back(std::move(value));
      root_ = std::move(leaf);
      size_ = 1;
      height_ = 1;
      leaf_count_ = 1;
      return true;
    }
    bool inserted = false;
    auto split = InsertRec(root_.get(), key, std::move(value), inserted);
    if (split) {
      auto new_root = std::make_unique<InternalNode>();
      new_root->keys.push_back(std::move(split->separator));
      new_root->children.push_back(std::move(root_));
      new_root->children.push_back(std::move(split->right));
      root_ = std::move(new_root);
      ++height_;
      ++internal_count_;
    }
    if (inserted) ++size_;
    return inserted;
  }

  /// Returns a pointer to the value for `key`, or nullptr.
  [[nodiscard]] const Value* Find(const Key& key) const {
    const Node* node = root_.get();
    while (node && !node->leaf) {
      const auto* internal = static_cast<const InternalNode*>(node);
      node = internal->children[ChildIndex(*node, key)].get();
    }
    if (!node) return nullptr;
    const auto* leaf = static_cast<const LeafNode*>(node);
    auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key,
                               comp_);
    if (it == leaf->keys.end() || comp_(key, *it)) return nullptr;
    return &leaf->values[static_cast<size_t>(it - leaf->keys.begin())];
  }

  [[nodiscard]] bool Contains(const Key& key) const { return Find(key) != nullptr; }

  /// Removes `key`. Returns true if it was present.
  [[nodiscard]] bool Erase(const Key& key) {
    if (!root_) return false;
    bool erased = false;
    EraseRec(root_.get(), key, erased);
    if (!erased) return false;
    --size_;
    // Shrink the root.
    if (!root_->leaf) {
      auto* internal = static_cast<InternalNode*>(root_.get());
      if (internal->keys.empty()) {
        root_ = std::move(internal->children.front());
        --height_;
        --internal_count_;
      }
    } else if (root_->keys.empty()) {
      root_.reset();
      height_ = 0;
      leaf_count_ = 0;
    }
    return true;
  }

  /// Iterator positioned at the first element with key >= `key`.
  Iterator Seek(const Key& key) const {
    Node* node = root_.get();
    while (node && !node->leaf) {
      auto* internal = static_cast<InternalNode*>(node);
      node = internal->children[ChildIndex(*node, key)].get();
    }
    if (!node) return Iterator();
    auto* leaf = static_cast<LeafNode*>(node);
    auto it =
        std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key, comp_);
    size_t pos = static_cast<size_t>(it - leaf->keys.begin());
    if (pos >= leaf->keys.size()) {
      return leaf->next ? Iterator(leaf->next, 0) : Iterator();
    }
    return Iterator(leaf, pos);
  }

  /// Iterator at the smallest key.
  Iterator Begin() const {
    Node* node = root_.get();
    while (node && !node->leaf) {
      node = static_cast<InternalNode*>(node)->children.front().get();
    }
    if (!node) return Iterator();
    return Iterator(static_cast<LeafNode*>(node), 0);
  }

  /// Verifies structural invariants (ordering, occupancy, leaf links,
  /// separator bounds). For tests. Returns false on any violation.
  [[nodiscard]] bool CheckInvariants() const {
    if (!root_) return size_ == 0;
    size_t counted = 0;
    const Key* prev = nullptr;
    if (!CheckRec(root_.get(), nullptr, nullptr, /*is_root=*/true, counted,
                  prev)) {
      return false;
    }
    return counted == size_;
  }

 private:
  struct SplitResult {
    Key separator;
    std::unique_ptr<Node> right;
  };

  /// Index of the child to descend into for `key`: first separator > key.
  size_t ChildIndex(const Node& node, const Key& key) const {
    auto it =
        std::upper_bound(node.keys.begin(), node.keys.end(), key, comp_);
    return static_cast<size_t>(it - node.keys.begin());
  }

  std::unique_ptr<SplitResult> InsertRec(Node* node, const Key& key,
                                         Value value, bool& inserted) {
    if (node->leaf) {
      auto* leaf = static_cast<LeafNode*>(node);
      auto it =
          std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key, comp_);
      size_t pos = static_cast<size_t>(it - leaf->keys.begin());
      if (it != leaf->keys.end() && !comp_(key, *it)) {
        leaf->values[pos] = std::move(value);
        inserted = false;
        return nullptr;
      }
      leaf->keys.insert(it, key);
      leaf->values.insert(leaf->values.begin() + pos, std::move(value));
      inserted = true;
      if (leaf->keys.size() <= MaxKeys) return nullptr;
      return SplitLeaf(leaf);
    }
    auto* internal = static_cast<InternalNode*>(node);
    size_t child_index = ChildIndex(*node, key);
    auto split = InsertRec(internal->children[child_index].get(), key,
                           std::move(value), inserted);
    if (!split) return nullptr;
    internal->keys.insert(internal->keys.begin() + child_index,
                          std::move(split->separator));
    internal->children.insert(internal->children.begin() + child_index + 1,
                              std::move(split->right));
    if (internal->keys.size() <= MaxKeys) return nullptr;
    return SplitInternal(internal);
  }

  std::unique_ptr<SplitResult> SplitLeaf(LeafNode* leaf) {
    auto right = std::make_unique<LeafNode>();
    const size_t mid = leaf->keys.size() / 2;
    right->keys.assign(std::make_move_iterator(leaf->keys.begin() + mid),
                       std::make_move_iterator(leaf->keys.end()));
    right->values.assign(std::make_move_iterator(leaf->values.begin() + mid),
                         std::make_move_iterator(leaf->values.end()));
    leaf->keys.resize(mid);
    leaf->values.resize(mid);
    right->next = leaf->next;
    right->prev = leaf;
    if (leaf->next) leaf->next->prev = right.get();
    leaf->next = right.get();
    ++leaf_count_;
    internal::CountBTreeSplit();
    auto result = std::make_unique<SplitResult>();
    result->separator = right->keys.front();
    result->right = std::move(right);
    return result;
  }

  std::unique_ptr<SplitResult> SplitInternal(InternalNode* node) {
    auto right = std::make_unique<InternalNode>();
    const size_t mid = node->keys.size() / 2;
    auto result = std::make_unique<SplitResult>();
    result->separator = std::move(node->keys[mid]);
    right->keys.assign(std::make_move_iterator(node->keys.begin() + mid + 1),
                       std::make_move_iterator(node->keys.end()));
    right->children.assign(
        std::make_move_iterator(node->children.begin() + mid + 1),
        std::make_move_iterator(node->children.end()));
    node->keys.resize(mid);
    node->children.resize(mid + 1);
    ++internal_count_;
    internal::CountBTreeSplit();
    result->right = std::move(right);
    return result;
  }

  /// Erases `key` below `node`; returns true if `node` underflowed.
  bool EraseRec(Node* node, const Key& key, bool& erased) {
    if (node->leaf) {
      auto* leaf = static_cast<LeafNode*>(node);
      auto it =
          std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key, comp_);
      if (it == leaf->keys.end() || comp_(key, *it)) {
        erased = false;
        return false;
      }
      size_t pos = static_cast<size_t>(it - leaf->keys.begin());
      leaf->keys.erase(it);
      leaf->values.erase(leaf->values.begin() + pos);
      erased = true;
      return leaf->keys.size() < static_cast<size_t>(kMinKeys);
    }
    auto* internal = static_cast<InternalNode*>(node);
    size_t child_index = ChildIndex(*node, key);
    bool child_underflow =
        EraseRec(internal->children[child_index].get(), key, erased);
    if (!child_underflow) return false;
    FixUnderflow(internal, child_index);
    return internal->keys.size() < static_cast<size_t>(kMinKeys);
  }

  void FixUnderflow(InternalNode* parent, size_t child_index) {
    Node* child = parent->children[child_index].get();
    Node* left_sibling =
        child_index > 0 ? parent->children[child_index - 1].get() : nullptr;
    Node* right_sibling = child_index + 1 < parent->children.size()
                              ? parent->children[child_index + 1].get()
                              : nullptr;

    if (left_sibling &&
        left_sibling->keys.size() > static_cast<size_t>(kMinKeys)) {
      BorrowFromLeft(parent, child_index, left_sibling, child);
      return;
    }
    if (right_sibling &&
        right_sibling->keys.size() > static_cast<size_t>(kMinKeys)) {
      BorrowFromRight(parent, child_index, child, right_sibling);
      return;
    }
    if (left_sibling) {
      MergeChildren(parent, child_index - 1);
    } else if (right_sibling) {
      MergeChildren(parent, child_index);
    }
  }

  void BorrowFromLeft(InternalNode* parent, size_t child_index, Node* left,
                      Node* child) {
    if (child->leaf) {
      auto* lleaf = static_cast<LeafNode*>(left);
      auto* cleaf = static_cast<LeafNode*>(child);
      cleaf->keys.insert(cleaf->keys.begin(), std::move(lleaf->keys.back()));
      cleaf->values.insert(cleaf->values.begin(),
                           std::move(lleaf->values.back()));
      lleaf->keys.pop_back();
      lleaf->values.pop_back();
      parent->keys[child_index - 1] = cleaf->keys.front();
    } else {
      auto* lint = static_cast<InternalNode*>(left);
      auto* cint = static_cast<InternalNode*>(child);
      // Rotate through the separator.
      cint->keys.insert(cint->keys.begin(),
                        std::move(parent->keys[child_index - 1]));
      parent->keys[child_index - 1] = std::move(lint->keys.back());
      lint->keys.pop_back();
      cint->children.insert(cint->children.begin(),
                            std::move(lint->children.back()));
      lint->children.pop_back();
    }
  }

  void BorrowFromRight(InternalNode* parent, size_t child_index, Node* child,
                       Node* right) {
    if (child->leaf) {
      auto* cleaf = static_cast<LeafNode*>(child);
      auto* rleaf = static_cast<LeafNode*>(right);
      cleaf->keys.push_back(std::move(rleaf->keys.front()));
      cleaf->values.push_back(std::move(rleaf->values.front()));
      rleaf->keys.erase(rleaf->keys.begin());
      rleaf->values.erase(rleaf->values.begin());
      parent->keys[child_index] = rleaf->keys.front();
    } else {
      auto* cint = static_cast<InternalNode*>(child);
      auto* rint = static_cast<InternalNode*>(right);
      cint->keys.push_back(std::move(parent->keys[child_index]));
      parent->keys[child_index] = std::move(rint->keys.front());
      rint->keys.erase(rint->keys.begin());
      cint->children.push_back(std::move(rint->children.front()));
      rint->children.erase(rint->children.begin());
    }
  }

  /// Merges children[i+1] into children[i] and removes separator i.
  void MergeChildren(InternalNode* parent, size_t i) {
    Node* left = parent->children[i].get();
    Node* right = parent->children[i + 1].get();
    if (left->leaf) {
      auto* lleaf = static_cast<LeafNode*>(left);
      auto* rleaf = static_cast<LeafNode*>(right);
      lleaf->keys.insert(lleaf->keys.end(),
                         std::make_move_iterator(rleaf->keys.begin()),
                         std::make_move_iterator(rleaf->keys.end()));
      lleaf->values.insert(lleaf->values.end(),
                           std::make_move_iterator(rleaf->values.begin()),
                           std::make_move_iterator(rleaf->values.end()));
      lleaf->next = rleaf->next;
      if (rleaf->next) rleaf->next->prev = lleaf;
      --leaf_count_;
    } else {
      auto* lint = static_cast<InternalNode*>(left);
      auto* rint = static_cast<InternalNode*>(right);
      lint->keys.push_back(std::move(parent->keys[i]));
      lint->keys.insert(lint->keys.end(),
                        std::make_move_iterator(rint->keys.begin()),
                        std::make_move_iterator(rint->keys.end()));
      lint->children.insert(lint->children.end(),
                            std::make_move_iterator(rint->children.begin()),
                            std::make_move_iterator(rint->children.end()));
      --internal_count_;
    }
    parent->keys.erase(parent->keys.begin() + i);
    parent->children.erase(parent->children.begin() + i + 1);
  }

  bool CheckRec(const Node* node, const Key* lo, const Key* hi, bool is_root,
                size_t& counted, const Key*& prev) const {
    // Keys sorted and within (lo, hi].
    for (size_t i = 0; i < node->keys.size(); ++i) {
      if (i > 0 && !comp_(node->keys[i - 1], node->keys[i])) return false;
      if (lo && comp_(node->keys[i], *lo)) return false;
      if (hi && !comp_(node->keys[i], *hi)) return false;
    }
    if (!is_root && node->keys.size() < static_cast<size_t>(kMinKeys)) {
      return false;
    }
    if (node->keys.size() > static_cast<size_t>(MaxKeys)) return false;
    if (node->leaf) {
      const auto* leaf = static_cast<const LeafNode*>(node);
      if (leaf->keys.size() != leaf->values.size()) return false;
      for (const Key& k : leaf->keys) {
        if (prev && !comp_(*prev, k)) return false;
        prev = &k;
        ++counted;
      }
      return true;
    }
    const auto* internal = static_cast<const InternalNode*>(node);
    if (internal->children.size() != internal->keys.size() + 1) return false;
    for (size_t i = 0; i < internal->children.size(); ++i) {
      const Key* child_lo = i == 0 ? lo : &internal->keys[i - 1];
      const Key* child_hi = i < internal->keys.size() ? &internal->keys[i]
                                                      : hi;
      if (!CheckRec(internal->children[i].get(), child_lo, child_hi,
                    /*is_root=*/false, counted, prev)) {
        return false;
      }
    }
    return true;
  }

  Compare comp_;
  std::unique_ptr<Node> root_;
  size_t size_ = 0;
  size_t height_ = 0;
  size_t leaf_count_ = 0;
  size_t internal_count_ = 0;
};

}  // namespace kadop::store

#endif  // KADOP_STORE_BPLUS_TREE_H_
