#include "common/hash.h"

namespace kadop {

uint64_t Fnv1a64(std::string_view data) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : data) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return seed ^ (Mix64(value) + 0x9e3779b97f4a7c15ULL + (seed << 12) +
                 (seed >> 4));
}

uint64_t BloomHash(uint64_t base, uint32_t i) {
  const uint64_t h1 = Mix64(base);
  const uint64_t h2 = Mix64(base ^ 0xdeadbeefcafef00dULL) | 1;  // odd
  return h1 + static_cast<uint64_t>(i) * h2;
}

}  // namespace kadop
