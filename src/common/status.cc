#include "common/status.h"

namespace kadop {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kTimeout:
      return "Timeout";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace kadop
