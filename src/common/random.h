#ifndef KADOP_COMMON_RANDOM_H_
#define KADOP_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace kadop {

/// Deterministic xoshiro256**-based PRNG. Every randomized component in the
/// library (corpus generators, workload drivers, simulated jitter) takes an
/// explicit `Rng` so that experiments are exactly reproducible from a seed.
class Rng {
 public:
  /// Seeds the four-word state from `seed` via SplitMix64 expansion.
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound) using Lemire's multiply-shift rejection.
  /// `bound` must be > 0.
  uint64_t Uniform(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability `p` (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Approximately exponentially distributed value with the given mean.
  double Exponential(double mean);

  /// Shuffles `items` in place (Fisher-Yates).
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(Uniform(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

 private:
  uint64_t s_[4];
};

/// Samples ranks from a Zipf(s) distribution over {0, ..., n-1}. Real XML
/// corpora have heavily skewed term frequencies (the paper: a few terms such
/// as `author` dominate posting-list sizes); the generators use this to
/// reproduce that skew. Uses precomputed cumulative weights, O(log n) per
/// sample.
class ZipfSampler {
 public:
  /// `n` ranks with exponent `s` (s = 0 is uniform; s ~ 1 is classic Zipf).
  ZipfSampler(size_t n, double s);

  /// Draws a rank in [0, n).
  size_t Sample(Rng& rng) const;

  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace kadop

#endif  // KADOP_COMMON_RANDOM_H_
