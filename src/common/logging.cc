#include "common/logging.h"

#include <cstdlib>

namespace kadop {

namespace {

// Initial level comes from the KADOP_LOG environment variable (0 = warnings
// only, 1 = info, 2 = debug); SetLogLevel overrides it for the rest of the
// process. Unparseable values fall back to 0.
int InitialLogLevel() {
  const char* env = std::getenv("KADOP_LOG");
  if (env == nullptr || *env == '\0') return 0;
  char* end = nullptr;
  long level = std::strtol(env, &end, 10);
  if (end == env || *end != '\0') return 0;
  if (level < 0) level = 0;
  if (level > 2) level = 2;
  return static_cast<int>(level);
}

int& LogLevelRef() {
  static int g_log_level = InitialLogLevel();
  return g_log_level;
}

}  // namespace

int GetLogLevel() { return LogLevelRef(); }
void SetLogLevel(int level) { LogLevelRef() = level; }

}  // namespace kadop
