#include "common/logging.h"

namespace kadop {

namespace {
int g_log_level = 0;
}  // namespace

int GetLogLevel() { return g_log_level; }
void SetLogLevel(int level) { g_log_level = level; }

}  // namespace kadop
