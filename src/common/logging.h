#ifndef KADOP_COMMON_LOGGING_H_
#define KADOP_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>

namespace kadop {

/// Global log verbosity. 0 = silent (default), 1 = info, 2 = debug.
/// Benches set this to narrate what they measure.
int GetLogLevel();
void SetLogLevel(int level);

}  // namespace kadop

/// printf-style logging macros. Kept deliberately tiny: the library is
/// deterministic and single-process, so structured logging buys little.
#define KADOP_LOG_INFO(...)                     \
  do {                                          \
    if (::kadop::GetLogLevel() >= 1) {          \
      std::fprintf(stderr, "[kadop] ");         \
      std::fprintf(stderr, __VA_ARGS__);        \
      std::fprintf(stderr, "\n");               \
    }                                           \
  } while (0)

#define KADOP_LOG_DEBUG(...)                    \
  do {                                          \
    if (::kadop::GetLogLevel() >= 2) {          \
      std::fprintf(stderr, "[kadop:dbg] ");     \
      std::fprintf(stderr, __VA_ARGS__);        \
      std::fprintf(stderr, "\n");               \
    }                                           \
  } while (0)

/// Fatal invariant violation: prints and aborts. Used for programmer errors
/// only; recoverable conditions return Status.
#define KADOP_CHECK(cond, msg)                                        \
  do {                                                                \
    if (!(cond)) {                                                    \
      std::fprintf(stderr, "KADOP_CHECK failed at %s:%d: %s\n",       \
                   __FILE__, __LINE__, msg);                          \
      std::abort();                                                   \
    }                                                                 \
  } while (0)

#endif  // KADOP_COMMON_LOGGING_H_
