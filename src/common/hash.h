#ifndef KADOP_COMMON_HASH_H_
#define KADOP_COMMON_HASH_H_

#include <cstdint>
#include <string_view>

namespace kadop {

/// 64-bit FNV-1a over an arbitrary byte string. Deterministic across runs
/// and platforms; used to map DHT keys (terms, pseudo-keys, function-call
/// strings) into the identifier space.
uint64_t Fnv1a64(std::string_view data);

/// SplitMix64 finalizer: a fast, high-quality 64-bit mixing function.
/// Used to derive secondary hashes and to seed PRNG streams.
uint64_t Mix64(uint64_t x);

/// Combines a running hash with a new 64-bit value (boost::hash_combine
/// style, 64-bit variant).
uint64_t HashCombine(uint64_t seed, uint64_t value);

/// Family of hash functions for Bloom filters: returns the i-th hash of
/// `base` using double hashing h_i(x) = h1 + i*h2 (Kirsch-Mitzenmacher).
uint64_t BloomHash(uint64_t base, uint32_t i);

}  // namespace kadop

#endif  // KADOP_COMMON_HASH_H_
