#ifndef KADOP_COMMON_STATUS_H_
#define KADOP_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace kadop {

/// Error codes used across the KadoP library. Fallible operations return a
/// `Status` (or a `Result<T>`) instead of throwing; exceptions are not used
/// anywhere in this codebase.
enum class StatusCode {
  kOk = 0,
  kNotFound = 1,
  kInvalidArgument = 2,
  kCorruption = 3,
  kAlreadyExists = 4,
  kUnavailable = 5,
  kTimeout = 6,
  kInternal = 7,
  kOutOfRange = 8,
  kUnimplemented = 9,
};

/// Returns a stable human-readable name for `code` ("OK", "NotFound", ...).
const char* StatusCodeToString(StatusCode code);

/// A lightweight success-or-error value in the RocksDB/Arrow idiom. A
/// default-constructed `Status` is OK and carries no allocation; error
/// statuses carry a code and a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// Factory helpers, one per error code.
  static Status OK() { return Status(); }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsTimeout() const { return code_ == StatusCode::kTimeout; }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// A value-or-error pair: holds `T` on success, a non-OK `Status` otherwise.
/// Access to `value()` on an error result aborts in debug builds.
template <typename T>
class Result {
 public:
  /// Implicit from a value: success.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from a non-OK status: failure.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() {
    assert(ok());
    return *value_;
  }
  const T& value() const {
    assert(ok());
    return *value_;
  }
  T&& take() {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the held value, or `fallback` on error.
  T value_or(T fallback) const { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace kadop

/// Propagates a non-OK status from an expression to the caller.
#define KADOP_RETURN_IF_ERROR(expr)          \
  do {                                       \
    ::kadop::Status _st = (expr);            \
    if (!_st.ok()) return _st;               \
  } while (0)

#endif  // KADOP_COMMON_STATUS_H_
