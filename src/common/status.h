#ifndef KADOP_COMMON_STATUS_H_
#define KADOP_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <type_traits>
#include <utility>

namespace kadop {

/// Error codes used across the KadoP library. Fallible operations return a
/// `Status` (or a `Result<T>`) instead of throwing; exceptions are not used
/// anywhere in this codebase.
enum class StatusCode {
  kOk = 0,
  kNotFound = 1,
  kInvalidArgument = 2,
  kCorruption = 3,
  kAlreadyExists = 4,
  kUnavailable = 5,
  kTimeout = 6,
  kInternal = 7,
  kOutOfRange = 8,
  kUnimplemented = 9,
  kDeadlineExceeded = 10,
};

/// Returns a stable human-readable name for `code` ("OK", "NotFound", ...).
const char* StatusCodeToString(StatusCode code);

/// A lightweight success-or-error value in the RocksDB/Arrow idiom. A
/// default-constructed `Status` is OK and carries no allocation; error
/// statuses carry a code and a message.
///
/// `[[nodiscard]]`: a dropped Status is a swallowed error — every RPC and
/// store path must either propagate (KADOP_RETURN_IF_ERROR), handle, or
/// explicitly discard with a cast-to-void and a comment.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// Factory helpers, one per error code.
  static Status OK() { return Status(); }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] bool IsNotFound() const {
    return code_ == StatusCode::kNotFound;
  }
  [[nodiscard]] bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  [[nodiscard]] bool IsTimeout() const {
    return code_ == StatusCode::kTimeout;
  }
  [[nodiscard]] bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }

  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  [[nodiscard]] std::string ToString() const;

  /// Two statuses are equal iff both code and message match. (Until PR 1
  /// equality ignored the message, which made distinct errors compare equal
  /// and hid message regressions from tests.)
  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }
  friend bool operator!=(const Status& a, const Status& b) {
    return !(a == b);
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// A value-or-error pair: holds `T` on success, a non-OK `Status` otherwise.
/// Access to `value()` on an error result aborts in debug builds.
///
/// `[[nodiscard]]` for the same reason as `Status`: a dropped Result drops
/// the error with it.
template <typename T>
class [[nodiscard]] Result {
 public:
  static_assert(!std::is_same_v<std::remove_cv_t<T>, Status>,
                "Result<Status> is always a bug: a Status already encodes "
                "success-or-error. Return plain Status instead.");

  /// Implicit from a value: success.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from a non-OK status: failure.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  [[nodiscard]] bool ok() const { return status_.ok(); }
  [[nodiscard]] const Status& status() const { return status_; }

  [[nodiscard]] T& value() {
    assert(ok());
    return *value_;
  }
  [[nodiscard]] const T& value() const {
    assert(ok());
    return *value_;
  }
  [[nodiscard]] T&& take() {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the held value, or `fallback` on error.
  [[nodiscard]] T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace kadop

/// Propagates a non-OK status from an expression to the caller.
#define KADOP_RETURN_IF_ERROR(expr)          \
  do {                                       \
    ::kadop::Status _st = (expr);            \
    if (!_st.ok()) return _st;               \
  } while (0)

#define KADOP_CONCAT_IMPL_(a, b) a##b
#define KADOP_CONCAT_(a, b) KADOP_CONCAT_IMPL_(a, b)

/// Evaluates `rexpr` (a Result<T>); on error returns its status to the
/// caller, otherwise moves the value into `lhs`:
///
///   KADOP_ASSIGN_OR_RETURN(auto pattern, query::ParsePattern(xpath));
#define KADOP_ASSIGN_OR_RETURN(lhs, rexpr)                            \
  KADOP_ASSIGN_OR_RETURN_IMPL_(                                       \
      KADOP_CONCAT_(_kadop_result_, __LINE__), lhs, rexpr)

#define KADOP_ASSIGN_OR_RETURN_IMPL_(result, lhs, rexpr) \
  auto result = (rexpr);                                 \
  if (!result.ok()) return result.status();              \
  lhs = result.take()

#endif  // KADOP_COMMON_STATUS_H_
