#include "common/random.h"

#include <algorithm>
#include <cmath>

#include "common/hash.h"
#include "common/logging.h"

namespace kadop {

namespace {
uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  // SplitMix64 expansion; guards against the all-zero state.
  uint64_t s = seed;
  for (auto& word : s_) {
    s += 0x9e3779b97f4a7c15ULL;
    word = Mix64(s);
  }
  if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) s_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  KADOP_CHECK(bound > 0, "Uniform bound must be positive");
  // Simple modulo with 64-bit state bias is negligible for our bounds.
  return Next() % bound;
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  KADOP_CHECK(lo <= hi, "UniformRange requires lo <= hi");
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::Exponential(double mean) {
  double u = NextDouble();
  if (u <= 0.0) u = 1e-18;
  return -mean * std::log(u);
}

ZipfSampler::ZipfSampler(size_t n, double s) {
  KADOP_CHECK(n > 0, "ZipfSampler needs at least one rank");
  cdf_.resize(n);
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = total;
  }
  for (auto& c : cdf_) c /= total;
}

size_t ZipfSampler::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

}  // namespace kadop
