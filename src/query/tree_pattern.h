#ifndef KADOP_QUERY_TREE_PATTERN_H_
#define KADOP_QUERY_TREE_PATTERN_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace kadop::query {

/// Edge axis from a pattern node's parent.
enum class Axis : uint8_t {
  kChild = 0,       // '/'
  kDescendant = 1,  // '//'
};

/// What a pattern node matches.
enum class NodeKind : uint8_t {
  kLabel = 0,     // an element with a given label
  kWord = 1,      // a word occurring in an element's direct text
  kWildcard = 2,  // any element ('*' with no predicate)
};

/// One node of a tree-pattern query.
///
/// Value conditions (`[. contains "w"]`, `contains(.//x,'w')`) are
/// normalized into child *word* nodes: a word posting carries the enclosing
/// element's interval one level deeper, so "element e directly contains
/// word w" is exactly "w-node is a child of e" under the level-aware
/// containment test.
struct PatternNode {
  NodeKind kind = NodeKind::kLabel;
  /// Element label, or the (lowercased) word for kWord.
  std::string term;
  Axis axis = Axis::kDescendant;
  int parent = -1;
  std::vector<int> children;

  [[nodiscard]] bool IsLeaf() const { return children.empty(); }

  /// DHT key of this node's posting list ("" for wildcards).
  [[nodiscard]] std::string TermKey() const;
};

/// A tree-pattern query (subset of XPath). Node 0 is the query root; its
/// axis is interpreted from the document root ('//' unless the expression
/// starts with a single '/').
struct TreePattern {
  std::vector<PatternNode> nodes;

  [[nodiscard]] size_t size() const { return nodes.size(); }
  const PatternNode& node(size_t i) const { return nodes[i]; }

  /// Nodes in a bottom-up order (children before parents).
  std::vector<int> BottomUpOrder() const;

  /// True if some node is a bare wildcard (makes index queries imprecise).
  [[nodiscard]] bool HasWildcard() const;

  [[nodiscard]] std::string ToString() const;
};

/// Classification of an index query per Section 2: KadoP index queries are
/// *complete* (no answer missed) and *precise* (only contributing peers
/// contacted) in the absence of stop words and wildcards.
struct PatternAnalysis {
  /// No answer can be missed by the index query.
  bool complete = true;
  /// The index query returns no false candidate documents.
  bool precise = true;
  /// Human-readable reasons for any loss.
  std::string notes;
};

/// Analyzes a pattern against the indexing configuration: bare wildcards
/// make the index query imprecise (`//a//*` cannot be checked from the
/// index); words below `min_indexed_word_length` (stop-word cutoff) are
/// not in the index, making it incomplete.
[[nodiscard]] PatternAnalysis AnalyzePattern(const TreePattern& pattern,
                               size_t min_indexed_word_length = 2);

/// Parses the XPath subset used throughout the paper:
///   //a//b/c
///   //article[. contains "Ullman"]
///   //article[//title]//author[. contains "Ullman"]
///   //article[contains(.//title,'system') and contains(.//abstract,'x')]
///   //*[contains(.,'xml')]//title
/// Steps are '/'- or '//'-separated labels or '*'; predicates may nest
/// relative paths, `. contains "w"`, `contains(path,'w')`, joined by `and`.
Result<TreePattern> ParsePattern(std::string_view expr);

}  // namespace kadop::query

#endif  // KADOP_QUERY_TREE_PATTERN_H_
