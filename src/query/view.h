#ifndef KADOP_QUERY_VIEW_H_
#define KADOP_QUERY_VIEW_H_

#include <optional>
#include <string>
#include <vector>

#include "index/posting.h"
#include "index/terms.h"
#include "query/tree_pattern.h"
#include "query/twig_join.h"

namespace kadop::query {

/// A materialized tree-pattern view (docs/views.md): a registered pattern
/// whose answer set is precomputed and kept fresh in the DHT. The extent is
/// stored *column-wise* — one ordinary posting list per pattern node under
/// `ColumnKey(node)`, holding the document-ordered projection of the answer
/// tuples onto that node — so extents ride the existing B+-tree store, the
/// group-delta codec, `GetBlocks` streaming and the iterator-tree join
/// without any view-specific storage or wire format.
struct ViewDefinition {
  std::string name;
  TreePattern pattern;
  /// Key prefix of this view's extent columns. Contains a catalog-assigned
  /// generation so a re-created view never appends onto a dropped
  /// predecessor's columns ("view:<name>.g<gen>").
  std::string extent_prefix;

  /// Canonical identity of the pattern (catalog lookup key).
  [[nodiscard]] std::string PatternKey() const { return pattern.ToString(); }

  /// DHT key of the extent column for pattern node `node`.
  [[nodiscard]] std::string ColumnKey(size_t node) const {
    return extent_prefix + ":" + std::to_string(node);
  }
};

/// A containment mapping of a view pattern into a query pattern: view node
/// v corresponds to query node `node_map[v]`. `exact` means the patterns
/// are identical (every query node is covered); otherwise the unmapped
/// query nodes are the rewrite's *residual* predicates, evaluated from
/// their base term lists through the iterator tree.
struct ViewMatch {
  bool exact = false;
  std::vector<int> node_map;

  /// True if query node `q` is the image of some view node.
  [[nodiscard]] bool Covers(int q) const {
    for (int m : node_map) {
      if (m == q) return true;
    }
    return false;
  }
};

/// Sub-pattern containment test (the rewrite soundness argument is in
/// docs/views.md): finds an injective map m from view nodes to query nodes
/// such that every query answer's projection onto the mapped nodes is a
/// view answer — i.e. the query's constraints *imply* the view's:
///   - m preserves node kind and term;
///   - a child-axis view edge maps onto a single child-axis query edge;
///   - a descendant-axis view edge maps onto a strict ancestor chain;
///   - a child-axis view *root* only maps onto a child-axis query root.
/// Returns the lexicographically first mapping (deterministic), preferring
/// the identity when the patterns are equal.
[[nodiscard]] std::optional<ViewMatch> MatchViewPattern(
    const TreePattern& view, const TreePattern& query);

/// Projects an answer set onto per-node extent columns: column v is the
/// sorted, distinct posting list {(doc.peer, doc.doc, elements[v])}. The
/// join of the columns under the view's own pattern re-derives exactly the
/// projected answer set, in document order.
[[nodiscard]] std::vector<index::PostingList> ProjectAnswers(
    const std::vector<Answer>& answers, size_t arity);

/// Evaluates a view pattern over one document's extracted term relation
/// (the `ExtractTerms` output the publisher already has in hand): per-node
/// candidates are the document's postings under the node's term key, joined
/// with the same structural iterator the index query uses — so the result
/// is exactly the document's slice of the global answer set.
[[nodiscard]] std::vector<Answer> ViewAnswersForDoc(
    const TreePattern& pattern,
    const std::vector<index::TermPosting>& postings);

}  // namespace kadop::query

#endif  // KADOP_QUERY_VIEW_H_
