#ifndef KADOP_QUERY_LOCAL_EVAL_H_
#define KADOP_QUERY_LOCAL_EVAL_H_

#include <vector>

#include "index/posting.h"
#include "query/tree_pattern.h"
#include "query/twig_join.h"
#include "xml/node.h"

namespace kadop::query {

/// Evaluates a tree pattern directly against a document tree (the second
/// query phase: peers holding candidate documents compute the actual
/// answers locally). Handles wildcards, both axes, and word predicates;
/// word matches report the enclosing element's interval one level deeper,
/// consistent with the index encoding.
[[nodiscard]] std::vector<Answer> EvaluateOnDocument(const TreePattern& pattern,
                                       const xml::Document& doc,
                                       const index::DocId& doc_id);

/// True if the document contains at least one match.
[[nodiscard]] bool MatchesDocument(const TreePattern& pattern, const xml::Document& doc);

}  // namespace kadop::query

#endif  // KADOP_QUERY_LOCAL_EVAL_H_
