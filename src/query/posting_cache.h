#ifndef KADOP_QUERY_POSTING_CACHE_H_
#define KADOP_QUERY_POSTING_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>

#include "index/posting.h"

namespace kadop::query {

struct PostingCacheConfig {
  /// Capacity bound, in raw (decoded) posting bytes across all entries.
  size_t max_bytes = 8 * 1024 * 1024;
  /// Admission cap: lists larger than this are never cached (one giant
  /// list would otherwise evict the whole working set).
  size_t max_entry_bytes = 2 * 1024 * 1024;
};

/// Per-peer query-side LRU cache of decoded term/DPP-block posting lists,
/// keyed by (key, fetched range) and guarded by the responsible store's
/// posting version (PeerStore::PostingVersion): entries are only served
/// while their version still matches the authoritative one, so appends —
/// including retried or fault-duplicated ones — can never result in a
/// repeat query seeing pre-append data (docs/wire_format.md).
///
/// Owned by the QueryClient; the executor consults it before issuing
/// Get/GetBlocks when `QueryOptions::cache_postings` is set. Reports
/// cache.{hits,misses,evictions,invalidations} to the metrics registry.
class PostingCache {
 public:
  explicit PostingCache(PostingCacheConfig config = {});

  PostingCache(const PostingCache&) = delete;
  PostingCache& operator=(const PostingCache&) = delete;

  /// Returns the cached list for (key, lo, hi) if present AND still at
  /// `current_version`; a version mismatch erases the entry (counted as an
  /// invalidation) and reports a miss. The returned pointer is shared:
  /// safe to hold across later cache operations.
  [[nodiscard]] std::shared_ptr<const index::PostingList> Lookup(
      const std::string& key, const index::Posting& lo,
      const index::Posting& hi, uint64_t current_version);

  /// Caches `postings` for (key, lo, hi) at `version`, evicting LRU
  /// entries to stay under the byte bound. Oversized lists are dropped.
  void Insert(const std::string& key, const index::Posting& lo,
              const index::Posting& hi, uint64_t version,
              index::PostingList postings);

  /// Zero-copy variant: adopts an already-shared immutable list (e.g. the
  /// fetch accumulator) so the cache and any in-flight consumers alias the
  /// same storage.
  void Insert(const std::string& key, const index::Posting& lo,
              const index::Posting& hi, uint64_t version,
              std::shared_ptr<const index::PostingList> postings);

  void Clear();

  [[nodiscard]] size_t entries() const { return map_.size(); }
  /// Raw posting bytes currently held.
  [[nodiscard]] size_t bytes() const { return bytes_; }

  // Lifetime tallies for this instance (`cache stats` in the shell); the
  // registry counters aggregate across all caches.
  [[nodiscard]] uint64_t hits() const { return hits_; }
  [[nodiscard]] uint64_t misses() const { return misses_; }
  [[nodiscard]] uint64_t evictions() const { return evictions_; }
  [[nodiscard]] uint64_t invalidations() const { return invalidations_; }

 private:
  struct Key {
    std::string key;
    index::Posting lo;
    index::Posting hi;

    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    size_t operator()(const Key& k) const;
  };
  struct Entry {
    Key key;
    uint64_t version = 0;
    std::shared_ptr<const index::PostingList> postings;
    size_t raw_bytes = 0;
  };

  void EraseEntry(std::list<Entry>::iterator it);
  void EvictToFit();

  PostingCacheConfig config_;
  /// MRU at the front.
  std::list<Entry> lru_;
  std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> map_;
  size_t bytes_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
  uint64_t invalidations_ = 0;
};

}  // namespace kadop::query

#endif  // KADOP_QUERY_POSTING_CACHE_H_
