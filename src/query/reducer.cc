#include "query/reducer.h"

#include <utility>

#include "common/logging.h"
#include "obs/trace.h"
#include "query/iterator.h"

namespace kadop::query {

using dht::AppRequest;
using index::PostingList;
using sim::NodeIndex;
using sim::TrafficCategory;

ReducerService::ReducerService(dht::DhtPeer* peer,
                               CountProvider count_provider)
    : peer_(peer), count_provider_(std::move(count_provider)) {
  KADOP_CHECK(peer_ != nullptr, "ReducerService requires a peer");
}

bool ReducerService::HandleApp(const AppRequest& request,
                               NodeIndex /*from*/) {
  const sim::Payload* inner = request.inner.get();
  if (const auto* start = dynamic_cast<const ReduceStart*>(inner)) {
    obs::Tracer::Default().Event("reducer.start");
    OnStart(*start);
    return true;
  }
  if (const auto* abf = dynamic_cast<const AbfMessage*>(inner)) {
    OnAbf(*abf);
    return true;
  }
  if (const auto* dbf = dynamic_cast<const DbfMessage*>(inner)) {
    OnDbf(*dbf);
    return true;
  }
  if (const auto* count = dynamic_cast<const TermCountRequest*>(inner)) {
    auto resp = std::make_shared<TermCountResponse>();
    std::optional<uint64_t> provided =
        count_provider_ ? count_provider_(count->term_key) : std::nullopt;
    resp->count = provided.has_value()
                      ? *provided
                      : peer_->store()->PostingCount(count->term_key);
    peer_->Reply(request.origin, request.req_id, std::move(resp),
                 TrafficCategory::kControl);
    return true;
  }
  return false;
}

void ReducerService::OnStart(const ReduceStart& start) {
  const StateKey key{start.plan.query_id, start.node};
  NodeState& st = states_[key];
  if (st.started) return;  // duplicate
  st.plan = start.plan;
  st.node = start.node;
  st.started = true;
  stats_.roles_started++;

  const ReducePlanNode* pn = st.plan.Find(st.node);
  KADOP_CHECK(pn != nullptr, "plan is missing this node");

  // Load this term's posting list through the DHT get: this peer owns the
  // term key, so the read is served locally (disk time modeled by the get
  // path) — and it stays complete when the list is DPP-partitioned, since
  // the owner's get path gathers the overflow blocks.
  peer_->Get(pn->term_key, [this, key](dht::GetResult got) {
    auto it = states_.find(key);
    if (it == states_.end()) return;
    NodeState& state = it->second;
    state.list = std::move(got.postings);
    state.full_count = state.list.size();
    state.loaded = true;
    // Apply any filters that raced ahead of the list load.
    std::vector<sim::PayloadPtr> pending = std::move(state.pending);
    state.pending.clear();
    for (const sim::PayloadPtr& payload : pending) {
      if (auto* abf = dynamic_cast<AbfMessage*>(payload.get())) OnAbf(*abf);
      if (auto* dbf = dynamic_cast<DbfMessage*>(payload.get())) OnDbf(*dbf);
    }
    Proceed(key);
  });
}

void ReducerService::OnAbf(const AbfMessage& msg) {
  const StateKey key{msg.query_id, msg.to_node};
  NodeState& st = states_[key];
  if (!st.started || !st.loaded) {
    st.pending.push_back(std::make_shared<AbfMessage>(msg));
    return;
  }
  KADOP_CHECK(msg.filter != nullptr, "ABF message without filter");
  const size_t before = st.list.size();
  st.list = msg.filter->Filter(st.list);
  stats_.postings_filtered_out += before - st.list.size();
  st.abf_in_applied = true;
  Proceed(key);
}

void ReducerService::OnDbf(const DbfMessage& msg) {
  const StateKey key{msg.query_id, msg.to_node};
  NodeState& st = states_[key];
  if (!st.started || !st.loaded) {
    st.pending.push_back(std::make_shared<DbfMessage>(msg));
    return;
  }
  KADOP_CHECK(msg.filter != nullptr, "DBF message without filter");
  st.dbfs.push_back(msg.filter);
  Proceed(key);
}

bool ReducerService::NeedsAbf(const NodeState& st) {
  if (st.plan.mode == ReduceMode::kDb) return false;
  const ReducePlanNode* pn = st.plan.Find(st.node);
  return pn->parent >= 0;  // non-root nodes are filtered by their parent
}

void ReducerService::Proceed(const StateKey& key) {
  NodeState& st = states_[key];
  if (!st.started || !st.loaded) return;
  const ReducePlanNode* pn = st.plan.Find(st.node);
  const bool is_leaf = pn->children.empty();
  const bool is_root = pn->parent < 0;

  if (NeedsAbf(st) && !st.abf_in_applied) return;  // wait for the ABF

  switch (st.plan.mode) {
    case ReduceMode::kAb:
      if (!is_leaf && !st.abf_out_sent) BuildAndSendAbf(st);
      if (!st.list_sent) SendListToQueryPeer(st);
      break;

    case ReduceMode::kDb:
      if (!is_leaf && st.dbfs.size() < pn->children.size()) return;
      if (!is_leaf) ApplyDbfs(st);
      // Build the outgoing filter first so its bytes are accounted in the
      // ReducedListMessage this node ships.
      if (!is_root && !st.dbf_out_sent) BuildAndSendDbf(st);
      if (!st.list_sent) SendListToQueryPeer(st);
      break;

    case ReduceMode::kBloom:
      // Top-down AB pass first (once), then the bottom-up DB pass on the
      // AB-reduced lists.
      if (!is_leaf && !st.abf_out_sent) BuildAndSendAbf(st);
      if (!is_leaf && st.dbfs.size() < pn->children.size()) return;
      if (!is_leaf) ApplyDbfs(st);
      if (!is_root && !st.dbf_out_sent) BuildAndSendDbf(st);
      if (!st.list_sent) SendListToQueryPeer(st);
      break;
  }
}

void ReducerService::SendListToQueryPeer(NodeState& st) {
  st.list_sent = true;
  auto msg = std::make_shared<ReducedListMessage>();
  msg->query_id = st.plan.query_id;
  msg->node = st.node;
  msg->postings = st.list;
  msg->full_count = st.full_count;
  msg->ab_filter_bytes = st.ab_filter_bytes;
  msg->db_filter_bytes = st.db_filter_bytes;
  peer_->SendApp(st.plan.query_peer, std::move(msg),
                 TrafficCategory::kPosting);
}

void ReducerService::BuildAndSendAbf(NodeState& st) {
  st.abf_out_sent = true;
  const ReducePlanNode* pn = st.plan.Find(st.node);
  auto filter = std::make_shared<bloom::AncestorBloomFilter>(
      bloom::AncestorBloomFilter::Build(st.list, st.plan.ab_params));
  stats_.abf_built++;
  for (int child : pn->children) {
    const ReducePlanNode* cn = st.plan.Find(child);
    auto msg = std::make_shared<AbfMessage>();
    msg->query_id = st.plan.query_id;
    msg->from_node = st.node;
    msg->to_node = child;
    msg->filter = filter;
    st.ab_filter_bytes += filter->SizeBytes();
    peer_->RouteApp(cn->term_key, std::move(msg),
                    TrafficCategory::kBloomFilter, nullptr);
  }
}

void ReducerService::BuildAndSendDbf(NodeState& st) {
  st.dbf_out_sent = true;
  const ReducePlanNode* pn = st.plan.Find(st.node);
  const ReducePlanNode* parent = st.plan.Find(pn->parent);
  auto filter = std::make_shared<bloom::DescendantBloomFilter>(
      bloom::DescendantBloomFilter::Build(st.list, st.plan.db_params));
  stats_.dbf_built++;
  auto msg = std::make_shared<DbfMessage>();
  msg->query_id = st.plan.query_id;
  msg->from_node = st.node;
  msg->to_node = pn->parent;
  msg->filter = filter;
  st.db_filter_bytes += filter->SizeBytes();
  peer_->RouteApp(parent->term_key, std::move(msg),
                  TrafficCategory::kBloomFilter, nullptr);
}

void ReducerService::ApplyDbfs(NodeState& st) {
  if (st.dbfs.empty()) return;
  // One iterator pass through all child filters at once: a posting
  // survives iff every DBF's may-have-descendant probe passes, which is
  // exactly the sequential `Filter` composition (same survivors, same
  // order) at the cost of one output list instead of k.
  const size_t before = st.list.size();
  PostingListIterator it;
  it.Push(PostingBlock::FromList(std::move(st.list)));
  it.Close();
  PostingList kept;
  kept.reserve(before / 4);
  index::Posting p;
  while (it.Read(&p)) {
    bool pass = true;
    for (const auto& filter : st.dbfs) {
      if (!filter->MaybeAncestor(p)) {
        pass = false;
        break;
      }
    }
    if (pass) kept.push_back(p);
  }
  st.list = std::move(kept);
  stats_.postings_filtered_out += before - st.list.size();
  st.dbfs.clear();
}

}  // namespace kadop::query
