#ifndef KADOP_QUERY_BLOCK_JOIN_H_
#define KADOP_QUERY_BLOCK_JOIN_H_

#include "dht/peer.h"
#include "index/dpp_messages.h"

namespace kadop::query {

/// Holder-side executor of distributed block-join tasks (Section 4.3,
/// docs/distributed_join.md). A query peer running `kDppJoin` routes a
/// `BlockJoinRequest` to the pseudo-key of a task's largest input block;
/// this service — one per peer — pulls the remaining input blocks
/// (trimmed to the task window, reusing GetBlocks, the retry policy and
/// the codec), runs the streaming twig join locally, and replies with a
/// `JoinResultMessage` carrying only the per-document answer tuples. The
/// home block is served by the local store, so the heaviest posting list
/// never crosses the wire.
class BlockJoinService {
 public:
  explicit BlockJoinService(dht::DhtPeer* peer);

  BlockJoinService(const BlockJoinService&) = delete;
  BlockJoinService& operator=(const BlockJoinService&) = delete;

  /// Handles BlockJoinRequest messages; false for any other payload.
  [[nodiscard]] bool HandleApp(const dht::AppRequest& request,
                               sim::NodeIndex from);

 private:
  void RunTask(const index::BlockJoinRequest& req, sim::NodeIndex origin,
               dht::RequestId req_id);

  dht::DhtPeer* peer_;
};

}  // namespace kadop::query

#endif  // KADOP_QUERY_BLOCK_JOIN_H_
