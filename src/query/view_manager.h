#ifndef KADOP_QUERY_VIEW_MANAGER_H_
#define KADOP_QUERY_VIEW_MANAGER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "dht/peer.h"
#include "dht/replication.h"
#include "index/publisher.h"
#include "query/view.h"

namespace kadop::query {

/// Knobs of the materialized-view layer (docs/views.md). Off by default:
/// with `enabled == false` nothing is recorded, rewritten or priced, so
/// every seeded baseline is byte-identical to the pre-view build.
struct ViewOptions {
  /// Master switch for view-based rewriting (and advisor bookkeeping).
  /// Registered views are still *maintained* while off — incremental
  /// deltas are cheap, and an extent that fell behind can never be made
  /// fresh again without re-materializing.
  bool enabled = false;
  /// Hot-pattern auto-selection (the ViewAdvisor). Requires `enabled`.
  bool advisor = false;
  /// Advisor window length (virtual seconds). Windows close lazily when
  /// the next recorded query crosses the boundary — an idle network
  /// schedules nothing and RunUntilIdle terminates.
  double window_s = 1.0;
  /// A pattern is hot when it is queried at least this many times per
  /// window for `hot_windows` consecutive windows (promotion hysteresis).
  uint64_t hot_queries_per_window = 8;
  uint32_t hot_windows = 2;
  /// An auto-materialized view cools when its pattern drops to at most
  /// this many queries per window for `cool_windows` consecutive windows.
  uint64_t cool_queries_per_window = 0;
  uint32_t cool_windows = 4;
  /// Windows a demoted pattern must wait before it can be promoted again.
  uint32_t cooldown_windows = 4;
  /// Bound on advisor-materialized views alive at once.
  size_t max_auto_views = 4;
  /// Bound on distinct patterns the query-log tracker follows
  /// (space-saving top-K, same structure as the replication layer's
  /// KeyLoadTracker).
  size_t max_tracked_patterns = 64;
};

/// The per-DHT view catalog: every registered view's definition plus the
/// maintenance bookkeeping that decides whether its extent may serve.
///
/// The catalog is a single in-process object shared by all peers of one
/// simulated network, standing in for a catalog blob published under the
/// well-known key "view:catalog" (which the core layer does keep up to
/// date for discovery). Like the posting cache's and replication layer's
/// staleness oracles, the in-process reads model control-plane metadata
/// that real deployments piggyback on existing traffic — the *data* plane
/// (extent columns, delta appends, probe round-trips) always moves over
/// simulated links.
///
/// Freshness guard (docs/views.md): an extent may serve only when
///   1. materialization finished (`ready`) and every maintenance operation
///      sent has been acked (`pending == applied`), and
///   2. every extent column's store version equals the version recorded at
///      the last resync, and
///   3. every *base term* posting-list version of the view pattern equals
///      the version recorded at the last resync — so an append that
///      bypassed delta maintenance (or data lost with a crashed holder)
///      silently disqualifies the extent instead of serving stale answers.
class ViewCatalog {
 public:
  explicit ViewCatalog(ViewOptions options);

  ViewCatalog(const ViewCatalog&) = delete;
  ViewCatalog& operator=(const ViewCatalog&) = delete;

  struct Entry {
    ViewDefinition def;
    bool auto_created = false;
    /// Materialization finished and the extent columns are installed.
    bool ready = false;
    /// Maintenance operations (materialization chunks, publish deltas,
    /// unpublish deletes) sent vs. acked.
    uint64_t pending = 0;
    uint64_t applied = 0;
    /// Extent cardinality in answer tuples (the rewriter's pricing input).
    uint64_t answers = 0;
    /// Stored postings per extent column (directory-count-style
    /// verification target for serves).
    std::vector<uint64_t> column_counts;
    /// Version oracles recorded at the last resync; see class comment.
    std::vector<uint64_t> column_versions;
    std::vector<uint64_t> term_versions;
    /// Per-view serve statistics (shell `views list`).
    uint64_t hits = 0;
    uint64_t fallbacks = 0;
  };

  /// A servable rewrite of a query pattern against one catalog entry.
  struct Rewrite {
    std::string name;
    ViewDefinition def;
    ViewMatch match;
    /// Snapshot of the matched columns' stored counts (verification) and
    /// their sum (pricing).
    std::vector<uint64_t> column_counts;
    uint64_t extent_postings = 0;
  };

  // -- Registration ---------------------------------------------------------

  /// Registers a view over `pattern`. `name` empty picks "v<N>". Fails on
  /// wildcard patterns and duplicate names/patterns. The new entry is not
  /// `ready` until a materialization completes (MarkReady).
  Result<std::string> Register(const TreePattern& pattern, std::string name,
                               bool auto_created);
  /// Forgets a view. Its extent columns become unreferenced garbage (each
  /// generation uses fresh column keys, so a later re-create never collides).
  bool Drop(const std::string& name);

  [[nodiscard]] const Entry* Find(const std::string& name) const;
  [[nodiscard]] const std::map<std::string, Entry>& entries() const {
    return entries_;
  }
  /// One line per view: name, pattern, readiness, cardinality, hits.
  [[nodiscard]] std::string Describe() const;

  void SetEnabled(bool enabled) { options_.enabled = enabled; }
  [[nodiscard]] bool enabled() const { return options_.enabled; }
  [[nodiscard]] const ViewOptions& options() const { return options_; }

  // -- Rewriting ------------------------------------------------------------

  /// Matches `pattern` against the catalog — exact pattern match first,
  /// then sub-pattern containment in name order — returning the first
  /// rewrite whose extent passes the freshness guard against `peer`'s
  /// version oracles. Counts view.rewrites / view.misses.
  [[nodiscard]] std::optional<Rewrite> FindRewrite(const TreePattern& pattern,
                                                   dht::DhtPeer* peer);

  /// The freshness guard alone (see class comment).
  [[nodiscard]] bool Servable(const Entry& entry, dht::DhtPeer* peer) const;

  // -- Maintenance ----------------------------------------------------------

  /// Begins one maintenance operation against `name` (pending++); the
  /// matching OnMaintenanceApplied must run from the operation's ack.
  void BeginMaintenance(const std::string& name);
  /// Acks one maintenance operation: adjusts column `node`'s stored count
  /// by `count_delta` and, once no operation is in flight, re-records the
  /// version oracles through `peer`. `extent_prefix` guards generations —
  /// an ack raced by drop + re-create targets dead columns and is ignored.
  /// `count_delta == 0` with `authoritative_count` set installs a probed
  /// count instead.
  void OnMaintenanceApplied(const std::string& name,
                            const std::string& extent_prefix, size_t node,
                            int64_t count_delta,
                            std::optional<uint64_t> authoritative_count,
                            dht::DhtPeer* peer);
  /// Adjusts the extent cardinality by one delta run's answer count.
  void AddAnswerDelta(const std::string& name, int64_t delta);
  /// Marks materialization complete; serves may start once in sync.
  void MarkReady(const std::string& name);
  /// Re-records every in-sync entry's version oracles through `peer` —
  /// call after the network went quiescent (e.g. KadopNet::SyncViews).
  void Resync(dht::DhtPeer* peer);

  /// Publisher `derive` hook body: per registered view, the publishing
  /// document's answer run projected onto extent columns, as acked derived
  /// appends (PR 3 dedup/retry applies — the publisher ships them like any
  /// posting batch). Begins the maintenance ops it returns.
  [[nodiscard]] std::vector<index::DerivedAppend> MakePublishDeltas(
      dht::DhtPeer* peer, const xml::Document& doc, index::PeerId peer_id,
      index::DocSeq seq, const std::vector<index::TermPosting>& postings);

  /// Publisher unpublish hook body: deletes the withdrawn document's
  /// projections from every affected extent column and follows each delete
  /// with a count-probe round-trip that doubles as the apply ack.
  void HandleUnpublish(dht::DhtPeer* peer, const xml::Document& doc,
                       index::PeerId peer_id, index::DocSeq seq,
                       const std::vector<index::TermPosting>& postings);

  // -- Advisor --------------------------------------------------------------

  using MaterializeFn = std::function<void(const std::string& pattern)>;
  using DropViewFn = std::function<void(const std::string& name)>;
  void SetMaterializeFn(MaterializeFn fn) { materialize_fn_ = std::move(fn); }
  void SetDropViewFn(DropViewFn fn) { drop_view_fn_ = std::move(fn); }

  /// Feeds one submitted query into the advisor's pattern-load tracker and
  /// lazily closes elapsed windows (promotion / demotion decisions fire
  /// from here; the advisor never self-schedules).
  void RecordQuery(const std::string& pattern_key, double now);

  // -- Executor accounting --------------------------------------------------

  void CountHit(const std::string& name, bool exact, uint64_t wire_bytes);
  void CountFallback(const std::string& name);

 private:
  Entry* FindMutable(const std::string& name);
  void ResyncEntry(Entry& entry, dht::DhtPeer* peer);
  void AdvisorTick(const std::map<std::string, uint64_t>& window);

  ViewOptions options_;
  std::map<std::string, Entry> entries_;
  /// pattern key -> view name (exact-match index).
  std::map<std::string, std::string> by_pattern_;
  uint64_t next_name_id_ = 0;
  uint64_t next_generation_ = 0;

  // Advisor state.
  dht::KeyLoadTracker pattern_load_;
  double window_end_ = 0.0;
  bool window_armed_ = false;
  struct Streaks {
    uint32_t hot = 0;
    uint32_t cool = 0;
  };
  std::map<std::string, Streaks> streaks_;
  /// pattern key -> windows left before it may be promoted again.
  std::map<std::string, uint32_t> cooldown_;
  size_t auto_views_ = 0;
  MaterializeFn materialize_fn_;
  DropViewFn drop_view_fn_;
};

}  // namespace kadop::query

#endif  // KADOP_QUERY_VIEW_MANAGER_H_
