#ifndef KADOP_QUERY_REDUCER_H_
#define KADOP_QUERY_REDUCER_H_

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dht/peer.h"
#include "query/messages.h"

namespace kadop::query {

struct ReducerStats {
  uint64_t roles_started = 0;
  uint64_t abf_built = 0;
  uint64_t dbf_built = 0;
  uint64_t postings_filtered_out = 0;

  void Add(const ReducerStats& other) {
    roles_started += other.roles_started;
    abf_built += other.abf_built;
    dbf_built += other.dbf_built;
    postings_filtered_out += other.postings_filtered_out;
  }
};

/// Per-peer service executing the owner-side roles of the Bloom-based
/// query strategies (Section 5.3).
///
/// For each query it participates in, the peer loads its term's posting
/// list, applies / builds Structural Bloom Filters according to the plan
/// mode, exchanges filters directly with the owners of neighbouring
/// pattern nodes, and finally ships its (reduced) list to the query peer.
class ReducerService {
 public:
  /// `count_provider` (optional) reports the true posting count of a term
  /// owned by this peer even when its list is partitioned (DPP); falls
  /// back to the local store count.
  using CountProvider = std::function<std::optional<uint64_t>(
      const std::string& term_key)>;

  explicit ReducerService(dht::DhtPeer* peer,
                          CountProvider count_provider = nullptr);

  ReducerService(const ReducerService&) = delete;
  ReducerService& operator=(const ReducerService&) = delete;

  /// Handles reducer messages; returns false if the payload is not one.
  [[nodiscard]] bool HandleApp(const dht::AppRequest& request, sim::NodeIndex from);

  const ReducerStats& stats() const { return stats_; }

 private:
  struct NodeState {
    ReducePlan plan;
    int node = -1;
    bool started = false;
    bool loaded = false;
    index::PostingList list;
    uint64_t full_count = 0;
    bool abf_in_applied = false;
    bool abf_out_sent = false;
    std::vector<std::shared_ptr<bloom::DescendantBloomFilter>> dbfs;
    bool list_sent = false;
    bool dbf_out_sent = false;
    uint64_t ab_filter_bytes = 0;
    uint64_t db_filter_bytes = 0;
    /// Filters that arrived before ReduceStart.
    std::vector<sim::PayloadPtr> pending;
  };
  using StateKey = std::pair<uint64_t, int>;

  void OnStart(const ReduceStart& start);
  void OnAbf(const AbfMessage& msg);
  void OnDbf(const DbfMessage& msg);
  /// Drives the per-node state machine as far as possible.
  void Proceed(const StateKey& key);
  void SendListToQueryPeer(NodeState& st);
  void BuildAndSendAbf(NodeState& st);
  void BuildAndSendDbf(NodeState& st);
  void ApplyDbfs(NodeState& st);
  /// Whether this node needs an incoming ABF before proceeding.
  [[nodiscard]] static bool NeedsAbf(const NodeState& st);

  dht::DhtPeer* peer_;
  CountProvider count_provider_;
  ReducerStats stats_;
  std::map<StateKey, NodeState> states_;
};

}  // namespace kadop::query

#endif  // KADOP_QUERY_REDUCER_H_
