#include "query/twig_stack.h"

#include <algorithm>

#include "common/logging.h"

namespace kadop::query {

using index::DocId;
using index::Posting;
using index::PostingList;
using xml::StructuralId;

namespace {

/// Document-order key with ancestors-first tie-breaking: outer intervals
/// before inner ones; for equal intervals (an element and its word
/// pseudo-nodes) lower levels first.
struct HeadKey {
  uint32_t start = UINT32_MAX;
  uint32_t neg_end = UINT32_MAX;  // UINT32_MAX - end: larger end sorts first
  uint16_t level = UINT16_MAX;
  bool eof = true;

  static HeadKey Of(const StructuralId& sid) {
    return HeadKey{sid.start, UINT32_MAX - sid.end, sid.level, false};
  }
  static HeadKey Eof() { return HeadKey{}; }

  friend bool operator<(const HeadKey& a, const HeadKey& b) {
    if (a.eof != b.eof) return !a.eof;
    if (a.start != b.start) return a.start < b.start;
    if (a.neg_end != b.neg_end) return a.neg_end < b.neg_end;
    return a.level < b.level;
  }
};

}  // namespace

/// One document's phase-1 run.
struct TwigStackJoin::DocRun {
  const TreePattern& pattern;
  /// Per node: [begin, end) range within its stream plus the cursor.
  struct Cursor {
    const PostingList* stream = nullptr;
    size_t pos = 0;
    size_t end = 0;
    bool Eof() const { return pos >= end; }
    const StructuralId& Head() const { return (*stream)[pos].sid; }
  };
  std::vector<Cursor> cursors;
  std::vector<std::vector<StructuralId>> stacks;
  std::vector<PostingList> candidates;
  DocId doc;
  Stats* stats;

  DocRun(const TreePattern& p, DocId d, Stats* s)
      : pattern(p),
        cursors(p.size()),
        stacks(p.size()),
        candidates(p.size()),
        doc(d),
        stats(s) {}

  HeadKey KeyOf(size_t q) const {
    return cursors[q].Eof() ? HeadKey::Eof()
                            : HeadKey::Of(cursors[q].Head());
  }

  void Advance(size_t q) {
    if (!cursors[q].Eof()) cursors[q].pos++;
  }

  bool AllLeavesEof() const {
    for (size_t q = 0; q < pattern.size(); ++q) {
      if (pattern.node(q).IsLeaf() && !cursors[q].Eof()) return false;
    }
    return true;
  }

  /// getNext(q): the node whose head should be acted on next. May return a
  /// node with an exhausted cursor only when the whole subtree is drained.
  size_t GetNext(size_t q) {
    const PatternNode& pn = pattern.node(q);
    if (pn.IsLeaf()) return q;
    for (int child : pn.children) {
      const size_t n = GetNext(static_cast<size_t>(child));
      if (n != static_cast<size_t>(child) && !cursors[n].Eof()) {
        return n;  // a blocked descendant must be resolved first
      }
    }
    // All children are extendable (or drained); find the extremes of the
    // child heads.
    HeadKey max_key = HeadKey::Of(StructuralId{0, 0, 0});
    int min_child = -1;
    HeadKey min_key = HeadKey::Eof();
    for (int child : pn.children) {
      const HeadKey k = KeyOf(static_cast<size_t>(child));
      if (max_key < k) max_key = k;
      if (!k.eof && k < min_key) {
        min_key = k;
        min_child = child;
      }
    }
    // Skip q heads that end before the largest child head begins: they
    // cannot enclose it nor anything after it. An exhausted child makes
    // max_key = EOF (sorts last), draining q entirely — no further q
    // element can have a full set of child matches.
    while (!cursors[q].Eof() &&
           (max_key.eof || cursors[q].Head().end < max_key.start)) {
      Advance(q);
      stats->skipped++;
    }
    if (min_child < 0) return q;  // whole subtree drained
    if (!cursors[q].Eof() && KeyOf(q) < KeyOf(static_cast<size_t>(min_child))) {
      return q;
    }
    return static_cast<size_t>(min_child);
  }

  /// Pops entries that do not enclose `sid` (level-aware containment).
  void CleanStack(size_t q, const StructuralId& sid) {
    auto& stack = stacks[q];
    while (!stack.empty() && !stack.back().Encloses(sid)) {
      stack.pop_back();
    }
  }

  void RunToCompletion() {
    while (!AllLeavesEof()) {
      const size_t q = GetNext(0);
      if (cursors[q].Eof()) break;  // every remaining subtree is drained
      const StructuralId head = cursors[q].Head();
      const Posting posting = (*cursors[q].stream)[cursors[q].pos];
      const PatternNode& pn = pattern.node(q);
      if (pn.parent >= 0) {
        CleanStack(static_cast<size_t>(pn.parent), head);
      }
      if (pn.parent < 0 || !stacks[static_cast<size_t>(pn.parent)].empty()) {
        CleanStack(q, head);
        stacks[q].push_back(head);
        candidates[q].push_back(posting);
        stats->pushed++;
        Advance(q);
        if (pn.IsLeaf()) stacks[q].pop_back();
      } else {
        Advance(q);
        stats->skipped++;
      }
    }
  }
};

TwigStackJoin::TwigStackJoin(const TreePattern& pattern)
    : pattern_(pattern) {
  KADOP_CHECK(!pattern_.nodes.empty(), "empty pattern");
}

std::vector<Answer> TwigStackJoin::Run(
    const std::vector<PostingList>& streams, size_t max_answers) {
  KADOP_CHECK(streams.size() == pattern_.size(),
              "one stream per pattern node required");
  for (const PostingList& s : streams) {
    KADOP_CHECK(index::IsSortedPostingList(s), "streams must be sorted");
  }

  std::vector<Answer> answers;
  std::vector<size_t> offsets(streams.size(), 0);
  for (;;) {
    // The smallest unprocessed document across all streams.
    bool have_doc = false;
    DocId doc{};
    for (size_t q = 0; q < streams.size(); ++q) {
      if (offsets[q] >= streams[q].size()) continue;
      const DocId d = streams[q][offsets[q]].doc_id();
      if (!have_doc || d < doc) {
        doc = d;
        have_doc = true;
      }
    }
    if (!have_doc) break;

    DocRun run(pattern_, doc, &stats_);
    bool any_empty = false;
    for (size_t q = 0; q < streams.size(); ++q) {
      const size_t begin = offsets[q];
      size_t end = begin;
      while (end < streams[q].size() && streams[q][end].doc_id() == doc) {
        ++end;
      }
      run.cursors[q] = DocRun::Cursor{&streams[q], begin, end};
      offsets[q] = end;
      any_empty |= (begin == end);
    }
    if (any_empty) continue;  // some pattern node has no element: no match

    run.RunToCompletion();
    if (internal::PruneCandidates(pattern_, run.candidates)) {
      internal::EnumerateMatches(pattern_, doc, run.candidates,
                                 max_answers, answers);
      if (answers.size() >= max_answers) break;
    }
  }
  return answers;
}

}  // namespace kadop::query
