#ifndef KADOP_QUERY_TWIG_JOIN_H_
#define KADOP_QUERY_TWIG_JOIN_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "index/condition.h"
#include "index/posting.h"
#include "query/iterator.h"
#include "query/tree_pattern.h"

namespace kadop::query {

/// One index-query answer: the document plus one element (sid) per pattern
/// node, in pattern-node order.
struct Answer {
  index::DocId doc;
  std::vector<xml::StructuralId> elements;

  friend bool operator==(const Answer&, const Answer&) = default;
};

namespace internal {

/// Semi-join pruning of one document's per-node candidate lists along the
/// pattern edges (bottom-up then top-down). Returns false if some node has
/// no surviving candidate (no match in this document).
[[nodiscard]] bool PruneCandidates(const TreePattern& pattern,
                     std::vector<index::PostingList>& candidates);

/// Enumerates all consistent assignments over (pruned) candidates and
/// appends them to `answers`, up to `max_answers` total. Returns the
/// number of answers added.
size_t EnumerateMatches(const TreePattern& pattern, const index::DocId& doc,
                        const std::vector<index::PostingList>& candidates,
                        size_t max_answers, std::vector<Answer>& answers);

}  // namespace internal

/// A streaming, block-based holistic twig join.
///
/// Each pattern node has an input stream of postings in the canonical
/// (peer, doc, sid) order, fed incrementally (`Append`) as network blocks
/// arrive and terminated with `Close`. The join advances document by
/// document: as soon as every stream has moved past document D (or ended),
/// D's candidates are joined — semi-join pruning along the pattern edges,
/// then match enumeration — and answers for D are emitted. This is the
/// consumer side of the paper's pipelined evaluation: answers stream out
/// while later blocks are still in flight, giving the "time to first
/// answer" behaviour of Sections 3 and 4.2.
///
/// Streams are `PostingListIterator`s, so the join leapfrogs at document
/// granularity: when the stream heads disagree on a document, every
/// posting below the furthest head provably cannot match and is skipped in
/// bulk — and encoded blocks that fall entirely below the leapfrog target
/// are dropped without ever being decoded. Answers and
/// `postings_consumed()` totals are identical to the posting-at-a-time
/// discipline; only the work to get there shrinks.
class TwigJoin {
 public:
  /// `max_answers` caps enumeration (protection against cross-product
  /// blowup); matched documents are still tracked exactly.
  explicit TwigJoin(const TreePattern& pattern,
                    size_t max_answers = 1 << 20);

  TwigJoin(const TwigJoin&) = delete;
  TwigJoin& operator=(const TwigJoin&) = delete;

  /// Feeds a block of postings into `node`'s stream. Within one stream,
  /// calls must be in non-decreasing posting order. Taken by value so the
  /// network-fetch hot path can move blocks in without a copy; callers
  /// that keep their list pass an lvalue and pay one bulk copy.
  void Append(size_t node, index::PostingList postings);

  /// Zero-copy variant: shares an immutable list (posting-cache hits)
  /// instead of copying it into the stream.
  void AppendShared(size_t node,
                    std::shared_ptr<const index::PostingList> postings);

  /// Lazy variant: an encoded `EncodePostings` block with its exact
  /// `[first, last]` posting bounds and count. Decoded on first touch, or
  /// never if the document leapfrog skips past `bounds.hi`.
  void AppendEncoded(size_t node,
                     std::shared_ptr<const std::vector<uint8_t>> bytes,
                     index::Condition bounds, uint64_t count);

  /// Lowest-level feed: any storage form `PostingBlock` supports.
  void AppendBlock(size_t node, PostingBlock block);

  /// Marks `node`'s stream as ended.
  void Close(size_t node);

  /// Closes every stream (e.g. on timeout, accepting incomplete input).
  void CloseAll();

  /// Processes every document that is now complete across all streams.
  /// Returns the number of new answers produced.
  size_t Advance();

  /// True once every stream is closed and fully consumed.
  [[nodiscard]] bool Done() const;

  const std::vector<Answer>& answers() const { return answers_; }
  const std::vector<index::DocId>& matched_docs() const {
    return matched_docs_;
  }
  /// Total postings consumed across all streams (bulk skips included).
  size_t postings_consumed() const { return consumed_; }

  /// Encoded blocks dropped whole by the document leapfrog, never decoded.
  [[nodiscard]] uint64_t blocks_skipped_undecoded() const;
  /// Encoded blocks the join did decode (lazily, on first touch).
  [[nodiscard]] uint64_t blocks_decoded() const;

 private:
  /// Joins one document's candidates; appends answers.
  void JoinDocument(const index::DocId& doc,
                    std::vector<index::PostingList>& candidates);

  const TreePattern pattern_;
  const size_t max_answers_;
  Arena arena_;  // decode scratch; lives as long as the join
  std::vector<PostingListIterator> streams_;
  std::vector<index::PostingList> scratch_;  // per-doc candidates, reused
  std::vector<Answer> answers_;
  std::vector<index::DocId> matched_docs_;
  size_t consumed_ = 0;
  bool enumeration_capped_ = false;
};

}  // namespace kadop::query

#endif  // KADOP_QUERY_TWIG_JOIN_H_
