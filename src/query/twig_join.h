#ifndef KADOP_QUERY_TWIG_JOIN_H_
#define KADOP_QUERY_TWIG_JOIN_H_

#include <cstddef>
#include <deque>
#include <vector>

#include "index/posting.h"
#include "query/tree_pattern.h"

namespace kadop::query {

/// One index-query answer: the document plus one element (sid) per pattern
/// node, in pattern-node order.
struct Answer {
  index::DocId doc;
  std::vector<xml::StructuralId> elements;

  friend bool operator==(const Answer&, const Answer&) = default;
};

namespace internal {

/// Semi-join pruning of one document's per-node candidate lists along the
/// pattern edges (bottom-up then top-down). Returns false if some node has
/// no surviving candidate (no match in this document).
[[nodiscard]] bool PruneCandidates(const TreePattern& pattern,
                     std::vector<index::PostingList>& candidates);

/// Enumerates all consistent assignments over (pruned) candidates and
/// appends them to `answers`, up to `max_answers` total. Returns the
/// number of answers added.
size_t EnumerateMatches(const TreePattern& pattern, const index::DocId& doc,
                        const std::vector<index::PostingList>& candidates,
                        size_t max_answers, std::vector<Answer>& answers);

}  // namespace internal

/// A streaming, block-based holistic twig join.
///
/// Each pattern node has an input stream of postings in the canonical
/// (peer, doc, sid) order, fed incrementally (`Append`) as network blocks
/// arrive and terminated with `Close`. The join advances document by
/// document: as soon as every stream has moved past document D (or ended),
/// D's candidates are joined — semi-join pruning along the pattern edges,
/// then match enumeration — and answers for D are emitted. This is the
/// consumer side of the paper's pipelined evaluation: answers stream out
/// while later blocks are still in flight, giving the "time to first
/// answer" behaviour of Sections 3 and 4.2.
class TwigJoin {
 public:
  /// `max_answers` caps enumeration (protection against cross-product
  /// blowup); matched documents are still tracked exactly.
  explicit TwigJoin(const TreePattern& pattern,
                    size_t max_answers = 1 << 20);

  TwigJoin(const TwigJoin&) = delete;
  TwigJoin& operator=(const TwigJoin&) = delete;

  /// Feeds a block of postings into `node`'s stream. Within one stream,
  /// calls must be in non-decreasing posting order. Taken by value so the
  /// network-fetch hot path can move blocks in without a copy; callers
  /// that keep their list pass an lvalue and pay one bulk copy.
  void Append(size_t node, index::PostingList postings);

  /// Marks `node`'s stream as ended.
  void Close(size_t node);

  /// Closes every stream (e.g. on timeout, accepting incomplete input).
  void CloseAll();

  /// Processes every document that is now complete across all streams.
  /// Returns the number of new answers produced.
  size_t Advance();

  /// True once every stream is closed and fully consumed.
  [[nodiscard]] bool Done() const;

  const std::vector<Answer>& answers() const { return answers_; }
  const std::vector<index::DocId>& matched_docs() const {
    return matched_docs_;
  }
  /// Total postings consumed across all streams.
  size_t postings_consumed() const { return consumed_; }

 private:
  /// Buffered input blocks of one stream. Blocks are kept whole (a deque
  /// of the arriving PostingLists plus a head cursor) instead of being
  /// re-copied posting by posting: Append is a move or one bulk copy.
  struct Stream {
    std::deque<index::PostingList> blocks;  // non-empty blocks only
    size_t head = 0;  // consume cursor into blocks.front()
    bool closed = false;

    [[nodiscard]] bool Empty() const { return blocks.empty(); }
    [[nodiscard]] const index::Posting& Front() const {
      return blocks.front()[head];
    }
    [[nodiscard]] const index::Posting& Back() const {
      return blocks.back().back();
    }
    void PopFront() {
      if (++head == blocks.front().size()) {
        blocks.pop_front();
        head = 0;
      }
    }
  };

  /// Joins one document's candidates; appends answers.
  void JoinDocument(const index::DocId& doc,
                    std::vector<index::PostingList>& candidates);

  const TreePattern pattern_;
  const size_t max_answers_;
  std::vector<Stream> streams_;
  std::vector<Answer> answers_;
  std::vector<index::DocId> matched_docs_;
  size_t consumed_ = 0;
  bool enumeration_capped_ = false;
};

}  // namespace kadop::query

#endif  // KADOP_QUERY_TWIG_JOIN_H_
