#include "query/block_join.h"

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "dht/ring.h"
#include "index/codec.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "query/iterator.h"
#include "query/twig_join.h"

namespace kadop::query {

namespace {

using dht::GetSpec;
using index::PostingList;

struct HolderCounters {
  obs::Counter* tasks;
  obs::Counter* ingress_postings;
  obs::Counter* ingress_wire_bytes;
  obs::Counter* egress_result_bytes;

  HolderCounters() {
    auto& r = obs::MetricRegistry::Default();
    tasks = r.GetCounter("query.join.holder.tasks");
    ingress_postings = r.GetCounter("query.join.holder.ingress_postings");
    ingress_wire_bytes = r.GetCounter("query.join.holder.ingress_wire_bytes");
    egress_result_bytes =
        r.GetCounter("query.join.holder.egress_result_bytes");
  }
};

HolderCounters& C() {
  static HolderCounters counters;
  return counters;
}

/// Rebuilds the join's structural skeleton from the wire slice. Labels
/// are irrelevant to the holder: the twig join consumes parent links and
/// axes only.
TreePattern PatternFromSlice(
    const std::vector<index::BlockJoinPatternNode>& slice) {
  TreePattern pattern;
  pattern.nodes.resize(slice.size());
  for (size_t i = 0; i < slice.size(); ++i) {
    PatternNode& pn = pattern.nodes[i];
    pn.kind = NodeKind::kLabel;
    pn.parent = slice[i].parent;
    pn.axis = slice[i].axis == 0 ? Axis::kChild : Axis::kDescendant;
    if (pn.parent >= 0) {
      pattern.nodes[static_cast<size_t>(pn.parent)].children.push_back(
          static_cast<int>(i));
    }
  }
  return pattern;
}

/// One in-flight task at the holder: input accumulation per pattern node
/// (one sorted list per completed pull, merged once at join time) plus the
/// accounting that travels back in the reply.
struct TaskState {
  TreePattern pattern;
  std::vector<std::vector<PostingList>> gathered;
  size_t pending = 0;
  bool complete = true;
  bool degraded = false;
  uint64_t postings_pulled = 0;
  uint64_t pulled_wire_bytes = 0;
  uint64_t blocks_fetched = 0;
};

}  // namespace

BlockJoinService::BlockJoinService(dht::DhtPeer* peer) : peer_(peer) {
  KADOP_CHECK(peer_ != nullptr, "BlockJoinService requires a peer");
}

bool BlockJoinService::HandleApp(const dht::AppRequest& request,
                                 sim::NodeIndex from) {
  const auto* req =
      dynamic_cast<const index::BlockJoinRequest*>(request.inner.get());
  if (req == nullptr) return false;
  RunTask(*req, request.origin, request.req_id);
  (void)from;
  return true;
}

void BlockJoinService::RunTask(const index::BlockJoinRequest& req,
                               sim::NodeIndex origin, dht::RequestId req_id) {
  C().tasks->Increment();
  auto state = std::make_shared<TaskState>();
  state->pattern = PatternFromSlice(req.nodes);
  state->gathered.resize(req.nodes.size());
  const uint64_t query_id = req.query_id;
  const uint32_t task = req.task;
  const bool compress = req.compress;
  dht::DhtPeer* peer = peer_;

  // Holder-side span: parents to the dispatching query via the request's
  // wire context; covers the input pulls and the twig join, and closes when
  // the result leaves for the query peer.
  auto& tracer = obs::Tracer::Default();
  const obs::SpanId span = tracer.Begin("join.holder.task");
  tracer.Annotate(span, "task", std::to_string(task));
  obs::ScopedTraceContext scope(tracer.ContextFor(span));

  auto finish = [state, peer, origin, req_id, query_id, task, span]() {
    obs::Tracer::Default().End(span);
    StructuralJoinIterator join(state->pattern);
    for (size_t node = 0; node < state->gathered.size(); ++node) {
      // Pulled blocks may interleave or overlap (random-split ablation):
      // merge-distinct the sorted pulls once — the same canonical result
      // as the query peer's merge path.
      join.AddInput(node, PostingBlock::FromList(MergeDistinct(
                              std::move(state->gathered[node]))));
    }
    join.Run();

    auto result = std::make_shared<index::JoinResultMessage>();
    result->query_id = query_id;
    result->task = task;
    result->nodes_per_answer =
        static_cast<uint32_t>(state->pattern.size());
    result->matched_docs = join.matched_docs();
    result->answer_docs.reserve(join.answers().size());
    result->answer_sids.reserve(join.answers().size() *
                                state->pattern.size());
    for (const Answer& a : join.answers()) {
      result->answer_docs.push_back(a.doc);
      result->answer_sids.insert(result->answer_sids.end(),
                                 a.elements.begin(), a.elements.end());
    }
    result->complete = state->complete;
    result->degraded = state->degraded;
    result->postings_pulled = state->postings_pulled;
    result->pulled_wire_bytes = state->pulled_wire_bytes;
    result->blocks_fetched = state->blocks_fetched;
    C().egress_result_bytes->Increment(result->SizeBytes());
    peer->Reply(origin, req_id, std::move(result),
                sim::TrafficCategory::kResult);
  };

  // Count every pull up front so an early completion cannot fire `finish`
  // while later fetches are still being issued.
  for (const auto& per_node : req.inputs) state->pending += per_node.size();
  if (state->pending == 0) {
    finish();
    return;
  }

  for (size_t node = 0; node < req.inputs.size(); ++node) {
    for (const index::DppBlockInfo& block : req.inputs[node]) {
      GetSpec spec;
      spec.key = block.key;
      spec.pipelined = false;
      spec.lo = block.cond.lo < req.window.lo ? req.window.lo : block.cond.lo;
      spec.hi = req.window.hi < block.cond.hi ? req.window.hi : block.cond.hi;
      spec.retry = req.fetch_retry;
      spec.compress = compress;
      const bool lower_trimmed = block.cond.lo < spec.lo;
      const bool upper_trimmed = spec.hi < block.cond.hi;
      const uint64_t expected = block.count;
      // The home block (and any other block this peer happens to hold) is
      // served locally: the get round-trips through the local store with
      // zero network traffic, so only foreign pulls charge wire bytes.
      const bool local = peer_->IsResponsible(dht::HashKey(block.key));
      auto staged = std::make_shared<PostingList>();
      peer_->GetBlocks(
          spec, [state, node, local, compress, lower_trimmed, upper_trimmed,
                 expected, staged, finish](PostingList postings, bool last,
                                           bool complete) {
            staged->insert(staged->end(), postings.begin(), postings.end());
            if (!last) return;
            PostingList got = std::move(*staged);
            // Verify the pull against the directory. A crashed holder's
            // key range is inherited by its data-less successor, which
            // answers instantly with an empty list and complete=true —
            // silent data loss unless caught here. An untrimmed pull must
            // match the directory count; a pull trimmed at one end must
            // still contain the block's posting at the untrimmed end, so
            // empty means the data is gone. Only a window strictly inside
            // the block (both ends trimmed) can be legitimately empty and
            // stays unverifiable.
            const bool suspect =
                !complete ||
                (!lower_trimmed && !upper_trimmed && got.size() < expected) ||
                (lower_trimmed != upper_trimmed && got.empty() &&
                 expected > 0);
            if (suspect) {
              state->complete = false;
              state->degraded = true;
            }
            state->postings_pulled += got.size();
            state->blocks_fetched++;
            C().ingress_postings->Increment(got.size());
            if (!local) {
              const size_t wire = compress ? index::codec::EncodedBytes(got)
                                           : index::codec::RawBytes(got);
              state->pulled_wire_bytes += wire;
              C().ingress_wire_bytes->Increment(wire);
            }
            state->gathered[node].push_back(std::move(got));
            if (--state->pending == 0) finish();
          });
    }
  }
}

}  // namespace kadop::query
