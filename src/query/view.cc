#include "query/view.h"

#include <algorithm>
#include <utility>

#include "query/iterator.h"

namespace kadop::query {

namespace {

/// True if query node `anc` is a strict ancestor of query node `desc`.
bool IsStrictAncestor(const TreePattern& query, int anc, int desc) {
  for (int q = query.node(static_cast<size_t>(desc)).parent; q >= 0;
       q = query.node(static_cast<size_t>(q)).parent) {
    if (q == anc) return true;
  }
  return false;
}

/// Whether view node `v` may map onto query node `q` given the (already
/// assigned) mapping of v's parent.
bool NodeCompatible(const TreePattern& view, const TreePattern& query, int v,
                    int q, const std::vector<int>& node_map) {
  const PatternNode& vn = view.node(static_cast<size_t>(v));
  const PatternNode& qn = query.node(static_cast<size_t>(q));
  if (vn.kind != qn.kind || vn.term != qn.term) return false;
  if (vn.parent < 0) {
    // The view root's axis is interpreted from the document root: a
    // child-axis root ('/a') asserts top-level-ness, which only a
    // child-axis query root guarantees; a descendant root maps anywhere.
    return vn.axis == Axis::kDescendant ||
           (q == 0 && qn.axis == Axis::kChild);
  }
  const int qp = node_map[static_cast<size_t>(vn.parent)];
  if (vn.axis == Axis::kChild) {
    // Parent-child in the view must be parent-child in the query: the
    // query may not relax a view constraint, or projected query answers
    // could fall outside the extent.
    return qn.parent == qp && qn.axis == Axis::kChild;
  }
  return IsStrictAncestor(query, qp, q);
}

bool MapFrom(const TreePattern& view, const TreePattern& query, size_t v,
             std::vector<int>& node_map, std::vector<bool>& used) {
  if (v == view.size()) return true;
  for (size_t q = 0; q < query.size(); ++q) {
    if (used[q]) continue;
    if (!NodeCompatible(view, query, static_cast<int>(v),
                        static_cast<int>(q), node_map)) {
      continue;
    }
    node_map[v] = static_cast<int>(q);
    used[q] = true;
    if (MapFrom(view, query, v + 1, node_map, used)) return true;
    used[q] = false;
    node_map[v] = -1;
  }
  return false;
}

}  // namespace

std::optional<ViewMatch> MatchViewPattern(const TreePattern& view,
                                          const TreePattern& query) {
  if (view.size() == 0 || view.size() > query.size()) return std::nullopt;
  if (view.HasWildcard() || query.HasWildcard()) return std::nullopt;
  ViewMatch match;
  if (view.ToString() == query.ToString()) {
    match.exact = true;
    match.node_map.resize(view.size());
    for (size_t v = 0; v < view.size(); ++v) {
      match.node_map[v] = static_cast<int>(v);
    }
    return match;
  }
  // Pattern nodes are created parents-first, so assigning in index order
  // always sees the parent's image before the child's.
  match.node_map.assign(view.size(), -1);
  std::vector<bool> used(query.size(), false);
  if (!MapFrom(view, query, 0, match.node_map, used)) return std::nullopt;
  match.exact = false;
  return match;
}

std::vector<index::PostingList> ProjectAnswers(
    const std::vector<Answer>& answers, size_t arity) {
  std::vector<index::PostingList> columns(arity);
  for (const Answer& a : answers) {
    for (size_t v = 0; v < arity; ++v) {
      columns[v].push_back(
          index::Posting{a.doc.peer, a.doc.doc, a.elements[v]});
    }
  }
  for (index::PostingList& column : columns) {
    std::sort(column.begin(), column.end());
    column.erase(std::unique(column.begin(), column.end()), column.end());
  }
  return columns;
}

std::vector<Answer> ViewAnswersForDoc(
    const TreePattern& pattern,
    const std::vector<index::TermPosting>& postings) {
  StructuralJoinIterator join(pattern);
  for (size_t node = 0; node < pattern.size(); ++node) {
    const std::string key = pattern.node(node).TermKey();
    index::PostingList list;
    for (const index::TermPosting& tp : postings) {
      if (tp.key == key) list.push_back(tp.posting);
    }
    std::sort(list.begin(), list.end());
    join.AddInput(node, PostingBlock::FromList(std::move(list)));
  }
  join.Run();
  return join.TakeAnswers();
}

}  // namespace kadop::query
