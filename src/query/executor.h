#ifndef KADOP_QUERY_EXECUTOR_H_
#define KADOP_QUERY_EXECUTOR_H_

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dht/peer.h"
#include "index/dpp.h"
#include "obs/trace.h"
#include "query/messages.h"
#include "query/posting_cache.h"
#include "query/tree_pattern.h"
#include "query/twig_join.h"
#include "query/view_manager.h"

namespace kadop::query {

/// Index-query evaluation strategies.
enum class QueryStrategy : uint8_t {
  /// Fetch every term's full posting list with (pipelined) gets.
  kBaseline = 0,
  /// Use the DPP directories: parallel block fetches from the holders,
  /// block skipping and range trimming via the [min, max] document
  /// interval (Section 4.2).
  kDpp = 1,
  kAbReducer = 2,
  kDbReducer = 3,
  kBloomReducer = 4,
  /// DB Reducer applied only to the lowest-selectivity root-to-leaf path;
  /// remaining lists are fetched entire (Section 5.4, fourth strategy).
  kSubQueryReducer = 5,
  /// Pick a plan from the stored posting-list sizes, in the spirit of the
  /// optimizer the paper leaves as current work (Section 8): if some term
  /// is much more selective than the largest one, run the Sub-query
  /// Reducer on its path; otherwise fetch everything with the DPP (or the
  /// baseline when the index has no DPP).
  kAuto = 6,
  /// Distributed block-level twig join (Section 4.3): after the directory
  /// round and [min, max] / type-set filtering, partition the document
  /// window into per-interval join tasks and route each to the peer
  /// holding the task's largest input block. Holders pull the other
  /// blocks, join locally, and ship back answer tuples only — the query
  /// peer receives results, not posting lists.
  kDppJoin = 7,
  /// Answer from a materialized tree-pattern view (docs/views.md): fetch
  /// the matched view's extent columns, re-join them under the query
  /// pattern together with the residual (uncovered) terms' base lists,
  /// and verify the fetched columns against the catalog's stored counts.
  /// Falls back to kDppJoin / kDpp / kBaseline when no servable rewrite
  /// exists or verification fails.
  kView = 8,
};

[[nodiscard]] std::string_view QueryStrategyName(QueryStrategy s);

struct QueryOptions {
  QueryStrategy strategy = QueryStrategy::kBaseline;
  /// Use the pipelined get (Section 3) for full-list fetches.
  bool pipelined = true;
  /// Pipelined-get block granularity in postings (0 = DHT default).
  uint32_t block_postings = 0;
  /// Maximum concurrent DPP block fetches per posting list (the paper's
  /// parallelism degree K).
  size_t dpp_parallelism = 16;
  bloom::StructuralFilterParams ab_params{
      .levels = 20, .target_fp = 0.2, .trace_c = 4, .point_probe = false};
  bloom::StructuralFilterParams db_params{
      .levels = 20, .target_fp = 0.01, .trace_c = 0, .point_probe = false};
  /// Overall deadline; 0 disables. On expiry the query completes with
  /// whatever arrived (`metrics.complete = false`).
  double timeout_s = 0.0;
  /// Per-fetch retry policy (block fetches, directory fetches, term-count
  /// probes). Disabled by default. When enabled, a fetch whose target died
  /// is retried around the failure (routed retries reach the key's new
  /// owner) and a query whose retry budget runs dry finishes with
  /// `metrics.complete = false` / `metrics.degraded = true` instead of
  /// hanging until the overall deadline.
  dht::RetryPolicy fetch_retry;
  /// Whether the index maintains DPP directories (kAuto falls back to the
  /// baseline fetch when it does not).
  bool dpp_available = true;
  /// Whether peers run the BlockJoinService, making kDppJoin a candidate
  /// for kAuto. Off by default so existing deployments (and seeded
  /// baseline runs) plan exactly as before.
  bool dpp_join_available = false;
  /// kAuto: run the Sub-query Reducer when
  /// min_count * auto_selectivity_ratio < max_count.
  uint64_t auto_selectivity_ratio = 10;
  /// kAuto objective (the paper's planned optimizer "minimizes query
  /// response time or traffic consumption, depending on the setting"):
  /// kTraffic weights shipped bytes only; kTime also rewards transfer
  /// parallelism (DPP) over the reducers' filter round-trips.
  enum class Objective : uint8_t { kTime = 0, kTraffic = 1 };
  Objective objective = Objective::kTime;
  /// Delta+varint-compress this query's posting transfers
  /// (docs/wire_format.md). nullopt follows the process-wide codec switch
  /// (`codec on|off` in the shell); set explicitly for A/B runs.
  std::optional<bool> compress;
  /// Serve repeat fetches from the peer's version-checked posting cache
  /// and cache complete fetch results for later queries.
  bool cache_postings = false;
  /// Planner inputs for kView, filled by kAuto's catalog consult (or by
  /// tests driving EstimateStrategyCosts directly): whether a servable
  /// rewrite exists, the matched extent's total stored postings, and the
  /// summed base-list counts of the residual (uncovered) query terms.
  bool view_available = false;
  uint64_t view_extent_postings = 0;
  uint64_t view_residual_postings = 0;
};

/// The kAuto cost model: predicted shipped bytes per candidate strategy,
/// from the stored posting-list sizes of the query terms. Exposed for
/// tests and for explain-style tooling.
struct StrategyCostEstimate {
  QueryStrategy strategy = QueryStrategy::kBaseline;
  /// Predicted bytes moved during index-query evaluation.
  double bytes = 0;
  /// Predicted serial transfer bottleneck in bytes (lower = faster under
  /// parallel fetch); used by the kTime objective.
  double bottleneck_bytes = 0;
};

/// Estimates costs for the viable strategies given per-term posting
/// counts. `selective` is the index of the most selective term.
[[nodiscard]] std::vector<StrategyCostEstimate> EstimateStrategyCosts(
    const TreePattern& pattern, const std::vector<uint64_t>& term_counts,
    const QueryOptions& options);

struct QueryMetrics {
  double submit_time = 0.0;
  /// Virtual time of the first produced answer; < 0 if none.
  double first_answer_time = -1.0;
  double complete_time = 0.0;
  bool complete = true;
  /// True when fault tolerance changed the evaluation: a fetch exhausted
  /// its retry budget, a directory or term count came back unanswered, or
  /// a refetched DPP block returned fewer postings than its directory
  /// count (data lost with a crashed holder). A degraded query's answers
  /// are a sound subset; `complete` says whether they are the full set.
  bool degraded = false;

  uint64_t postings_received = 0;
  /// Raw (decoded) bytes of postings shipped to this peer — the paper's
  /// data-volume unit, independent of the wire encoding.
  uint64_t posting_bytes = 0;
  /// Bytes those postings actually occupied on the wire (== posting_bytes
  /// unless the transfer was compressed). Cache hits add to neither.
  uint64_t posting_wire_bytes = 0;
  /// Posting-cache outcomes for this query's fetches.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t ab_filter_bytes = 0;
  uint64_t db_filter_bytes = 0;
  /// Sum of the unfiltered posting-list sizes of all query terms (the
  /// denominator of the paper's normalized data volume).
  uint64_t full_postings = 0;
  uint64_t blocks_fetched = 0;
  uint64_t blocks_skipped = 0;
  /// kDppJoin: join tasks formed (bounded by the sum of surviving
  /// per-term block counts), how many completed at a remote holder vs.
  /// via the query peer's local fallback, and the answer-tuple elements
  /// shipped back in result messages.
  uint64_t join_tasks = 0;
  uint64_t join_remote = 0;
  uint64_t join_local_fallback = 0;
  uint64_t join_result_postings = 0;
  /// kDppJoin: wire bytes of the posting blocks the holders pulled from
  /// each other on this query's behalf. Holder-side ingress, not part of
  /// posting_wire_bytes (which counts query-peer ingress only); the sum of
  /// the two is the query's total posting movement — what a view serve's
  /// posting_wire_bytes competes against.
  uint64_t join_input_wire_bytes = 0;
  /// kView: whether a view extent actually served this query, whether the
  /// rewrite was exact (no residual terms), and whether a kView start fell
  /// back to a base strategy (miss or failed verification).
  bool view_hit = false;
  bool view_exact = false;
  bool view_fallback = false;
  /// The strategy that actually ran (differs from the request for kAuto).
  QueryStrategy effective_strategy = QueryStrategy::kBaseline;

  /// Virtual time from submission to completion (including a timeout-forced
  /// completion); < 0 if the query never reached Finish, so a default-
  /// constructed or still-running QueryMetrics never reports a bogus
  /// negative duration as a valid latency.
  [[nodiscard]] double ResponseTime() const {
    return complete_time < submit_time ? -1.0 : complete_time - submit_time;
  }
  [[nodiscard]] double TimeToFirstAnswer() const {
    return first_answer_time < submit_time ? -1.0
                                           : first_answer_time - submit_time;
  }
  /// (filters + shipped postings) / (full posting lists), in bytes.
  [[nodiscard]] double NormalizedDataVolume() const;
};

struct QueryResult {
  std::vector<Answer> answers;
  std::vector<index::DocId> matched_docs;
  QueryMetrics metrics;
};

class QueryExecutor;

/// Per-peer registry of in-flight queries issued from this peer. Routes
/// incoming reducer / count responses to the right executor.
class QueryClient {
 public:
  explicit QueryClient(dht::DhtPeer* peer);

  QueryClient(const QueryClient&) = delete;
  QueryClient& operator=(const QueryClient&) = delete;

  using Callback = std::function<void(QueryResult)>;

  /// Starts an index query with the given strategy. The callback fires at
  /// completion (or timeout) with answers and metrics.
  void Submit(const TreePattern& pattern, const QueryOptions& options,
              Callback callback);

  /// Handles messages addressed to queries of this peer; false if the
  /// payload is not a query-client message.
  [[nodiscard]] bool HandleApp(const dht::AppRequest& request, sim::NodeIndex from);

  dht::DhtPeer* peer() { return peer_; }
  size_t active_queries() const { return active_.size(); }

  /// This peer's query-side posting cache (see PostingCache); consulted by
  /// executors when `QueryOptions::cache_postings` is set.
  PostingCache& posting_cache() { return posting_cache_; }

  /// The network's view catalog (may be null). Consulted by kAuto / kView
  /// executors for rewrites, and fed each submitted pattern for the
  /// advisor's query log.
  void SetViewCatalog(ViewCatalog* catalog) { view_catalog_ = catalog; }
  ViewCatalog* view_catalog() { return view_catalog_; }

 private:
  friend class QueryExecutor;
  void Finish(uint64_t query_id);

  dht::DhtPeer* peer_;
  uint64_t next_query_id_ = 1;
  std::map<uint64_t, std::shared_ptr<QueryExecutor>> active_;
  PostingCache posting_cache_;
  ViewCatalog* view_catalog_ = nullptr;
};

/// One in-flight index query (created by QueryClient).
class QueryExecutor : public std::enable_shared_from_this<QueryExecutor> {
 public:
  QueryExecutor(QueryClient* client, uint64_t query_id, TreePattern pattern,
                QueryOptions options, QueryClient::Callback callback);

  void Start();
  [[nodiscard]] bool HandleApp(const dht::AppRequest& request, sim::NodeIndex from);
  uint64_t query_id() const { return query_id_; }

 private:
  void FailInvalid(const std::string& why);
  /// Full-list fetch of `node`'s term with cache consult/fill: used by the
  /// baseline strategy and the sub-query plan's off-path fetches (the only
  /// difference being whether blocks_fetched is counted).
  void FetchStream(size_t node, bool count_blocks);
  /// Caches a completed fetch result unless the key was mutated while the
  /// stream was in flight (`pre_version` no longer authoritative). The
  /// shared overload lets the cache alias the list the join consumes.
  void MaybeCacheInsert(const dht::GetSpec& spec, uint64_t pre_version,
                        index::PostingList postings);
  void MaybeCacheInsert(const dht::GetSpec& spec, uint64_t pre_version,
                        std::shared_ptr<const index::PostingList> postings);
  void StartBaseline();
  void StartDpp();
  void StartDppJoin();
  void OnDppDirectoriesReady();
  /// kDppJoin: cut the document window at surviving block boundaries,
  /// form one join task per interval where every term participates, and
  /// dispatch them all.
  void PlanJoinTasks();
  void DispatchJoinTask(size_t task);
  void OnJoinTaskResult(size_t task, const index::JoinResultMessage& msg);
  /// The holder is unreachable (routing retry budget exhausted) or replied
  /// without being able to verify its inputs: fetch the task's input
  /// blocks here and join locally, like a one-task kDpp.
  void RunLocalJoinFallback(size_t task);
  /// One verified fallback fetch: pulls `spec`, checks the result against
  /// the directory count, and re-pulls (the resend re-resolves the key
  /// owner) when a verifiably short answer comes back — e.g. from the
  /// data-less successor that inherited a crashed holder's range.
  struct JoinGather;  // accumulated fallback inputs (defined in executor.cc)
  void FallbackPull(std::shared_ptr<JoinGather> gather, size_t node,
                    dht::GetSpec spec, bool lower_trimmed, bool upper_trimmed,
                    uint64_t expected, uint32_t attempt,
                    std::function<void()> on_all);
  void FinishJoinTask(size_t task, std::vector<Answer> answers,
                      std::vector<index::DocId> matched_docs);
  /// Appends completed tasks to the merged result in task (= document)
  /// order; finishes the query when every task has been delivered.
  void DeliverReadyJoinTasks();
  void StartReducer(ReduceMode mode);
  void StartSubQuery();
  void StartAuto();
  /// kView: resolve a rewrite (unless kAuto already stashed one), fetch and
  /// count-verify the extent columns, then feed them into the join at their
  /// mapped query nodes alongside residual-term base fetches. Any miss or
  /// verification failure routes through FallbackFromView.
  void StartView();
  void ServeFromView();
  void OnViewColumns(std::vector<index::PostingList> columns,
                     uint64_t wire_bytes, bool verified);
  /// Re-dispatches a failed kView start to the strongest available base
  /// strategy (kDppJoin > kDpp > kBaseline) with degraded accounting.
  void FallbackFromView();
  /// Fetches every term's stored posting count, then runs `then`.
  void FetchTermCounts(std::function<void()> then);
  void OnTermCountsReady();
  void LaunchReducePlan(const ReducePlan& plan);
  /// DPP: issue up to K block fetches for `node`; called on completions.
  void PumpDppFetches(size_t node);
  void DeliverReadyDppBlocks(size_t node);
  void AdvanceJoin();
  void MaybeFinishStreams();
  void Finish(bool complete);
  void ArmTimeout();

  QueryClient* client_;
  dht::DhtPeer* peer_;
  const uint64_t query_id_;
  const TreePattern pattern_;
  const QueryOptions options_;
  /// options_.compress resolved against the codec switch at submit time.
  const bool compress_;
  QueryClient::Callback callback_;

  TwigJoin join_;
  QueryMetrics metrics_;
  obs::SpanId span_ = 0;
  // Phase spans under span_: the directory round, then either the block
  // fetch phase or the join dispatch/result round. Both are closed by
  // Finish() if still open.
  obs::SpanId route_span_ = 0;
  obs::SpanId phase_span_ = 0;
  bool finished_ = false;

  // Stream bookkeeping (baseline / DPP / plain fetches in sub-query mode).
  std::vector<bool> stream_closed_;

  // DPP state per pattern node.
  struct DppNodeState {
    std::vector<index::DppBlockInfo> blocks;  // after skipping
    size_t next_to_issue = 0;
    size_t outstanding = 0;
    size_t next_to_deliver = 0;
    /// Out-of-order completions. Shared so a cache hit costs no copy: the
    /// join's iterator reads the cached storage directly (AppendShared).
    std::map<size_t, std::shared_ptr<const index::PostingList>> ready;
    /// Set when block conditions overlap (random-split ablation): blocks
    /// must be collected fully and merge-sorted before joining.
    bool requires_merge = false;
  };
  std::vector<DppNodeState> dpp_;
  index::Condition dpp_window_;
  size_t directories_pending_ = 0;

  // Distributed block-join state (kDppJoin). Tasks partition the document
  // window into disjoint ascending intervals, so delivering them in task
  // order reproduces the document-order answer stream of kDpp exactly.
  struct JoinTask {
    index::Condition window;
    std::vector<std::vector<index::DppBlockInfo>> inputs;  // per node
    size_t home_node = 0;
    size_t home_block = 0;
    bool done = false;
    std::vector<Answer> answers;
    std::vector<index::DocId> matched_docs;
  };
  bool dpp_join_mode_ = false;
  std::vector<JoinTask> join_tasks_;
  size_t join_next_to_deliver_ = 0;
  std::vector<Answer> merged_answers_;
  std::vector<index::DocId> merged_docs_;

  // Reducer state.
  size_t reduced_lists_pending_ = 0;

  // Sub-query state.
  size_t counts_pending_ = 0;
  std::vector<uint64_t> term_counts_;

  // View state: the rewrite this query serves from (stashed by kAuto's
  // catalog consult or resolved by StartView).
  std::optional<ViewCatalog::Rewrite> view_rewrite_;
};

}  // namespace kadop::query

#endif  // KADOP_QUERY_EXECUTOR_H_
