#include "query/posting_cache.h"

#include <utility>

#include "common/hash.h"
#include "index/codec.h"
#include "obs/metrics.h"

namespace kadop::query {

namespace {

struct CacheCounters {
  obs::Counter* hits;
  obs::Counter* misses;
  obs::Counter* evictions;
  obs::Counter* invalidations;

  CacheCounters() {
    auto& r = obs::MetricRegistry::Default();
    hits = r.GetCounter("cache.hits");
    misses = r.GetCounter("cache.misses");
    evictions = r.GetCounter("cache.evictions");
    invalidations = r.GetCounter("cache.invalidations");
  }
};

CacheCounters& C() {
  static CacheCounters counters;
  return counters;
}

uint64_t HashPosting(uint64_t seed, const index::Posting& p) {
  seed = HashCombine(seed, (static_cast<uint64_t>(p.peer) << 32) | p.doc);
  seed = HashCombine(seed, (static_cast<uint64_t>(p.sid.start) << 32) |
                               p.sid.end);
  return HashCombine(seed, p.sid.level);
}

}  // namespace

size_t PostingCache::KeyHash::operator()(const Key& k) const {
  uint64_t h = Fnv1a64(k.key);
  h = HashPosting(h, k.lo);
  h = HashPosting(h, k.hi);
  return static_cast<size_t>(h);
}

PostingCache::PostingCache(PostingCacheConfig config) : config_(config) {}

std::shared_ptr<const index::PostingList> PostingCache::Lookup(
    const std::string& key, const index::Posting& lo,
    const index::Posting& hi, uint64_t current_version) {
  auto it = map_.find(Key{key, lo, hi});
  if (it == map_.end()) {
    misses_++;
    C().misses->Increment();
    return nullptr;
  }
  if (it->second->version != current_version) {
    // The responsible store mutated the key since this entry was fetched
    // (or a new store instance took the key over): stale, drop it.
    EraseEntry(it->second);
    invalidations_++;
    misses_++;
    C().invalidations->Increment();
    C().misses->Increment();
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // move to MRU
  hits_++;
  C().hits->Increment();
  return it->second->postings;
}

void PostingCache::Insert(const std::string& key, const index::Posting& lo,
                          const index::Posting& hi, uint64_t version,
                          index::PostingList postings) {
  Insert(key, lo, hi, version,
         std::make_shared<const index::PostingList>(std::move(postings)));
}

void PostingCache::Insert(const std::string& key, const index::Posting& lo,
                          const index::Posting& hi, uint64_t version,
                          std::shared_ptr<const index::PostingList> postings) {
  if (postings == nullptr) return;
  Entry entry;
  entry.key = Key{key, lo, hi};
  entry.raw_bytes = index::codec::RawBytes(*postings);
  if (entry.raw_bytes > config_.max_entry_bytes ||
      entry.raw_bytes > config_.max_bytes) {
    return;
  }
  auto it = map_.find(entry.key);
  if (it != map_.end()) EraseEntry(it->second);
  entry.version = version;
  entry.postings = std::move(postings);
  bytes_ += entry.raw_bytes;
  lru_.push_front(std::move(entry));
  map_.emplace(lru_.front().key, lru_.begin());
  EvictToFit();
}

void PostingCache::Clear() {
  lru_.clear();
  map_.clear();
  bytes_ = 0;
}

void PostingCache::EraseEntry(std::list<Entry>::iterator it) {
  bytes_ -= it->raw_bytes;
  map_.erase(it->key);
  lru_.erase(it);
}

void PostingCache::EvictToFit() {
  while (bytes_ > config_.max_bytes && !lru_.empty()) {
    EraseEntry(std::prev(lru_.end()));
    evictions_++;
    C().evictions->Increment();
  }
}

}  // namespace kadop::query
