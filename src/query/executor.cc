#include "query/executor.h"

#include <algorithm>
#include <iterator>
#include <set>
#include <utility>

#include "common/logging.h"
#include "index/codec.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "query/iterator.h"

namespace kadop::query {

namespace {

struct QueryCounters {
  obs::Counter* submitted;
  obs::Counter* completed;
  obs::Counter* incomplete;
  obs::Counter* degraded;
  obs::Counter* postings_received;
  obs::Counter* posting_bytes;
  obs::Counter* posting_wire_bytes;
  obs::Counter* ab_filter_bytes;
  obs::Counter* db_filter_bytes;
  obs::Counter* dpp_blocks_fetched;
  obs::Counter* dpp_blocks_skipped;
  obs::Counter* join_tasks;
  obs::Counter* join_remote;
  obs::Counter* join_local_fallback;
  obs::Counter* join_result_postings;
  obs::Histogram* response_time_s;
  obs::Histogram* first_answer_s;
  obs::Histogram* dpp_outstanding;

  QueryCounters() {
    auto& r = obs::MetricRegistry::Default();
    submitted = r.GetCounter("query.submitted");
    completed = r.GetCounter("query.completed");
    incomplete = r.GetCounter("query.incomplete");
    degraded = r.GetCounter("query.degraded");
    postings_received = r.GetCounter("query.postings_received");
    posting_bytes = r.GetCounter("query.posting_bytes");
    posting_wire_bytes = r.GetCounter("query.posting_wire_bytes");
    ab_filter_bytes = r.GetCounter("query.ab_filter_bytes");
    db_filter_bytes = r.GetCounter("query.db_filter_bytes");
    dpp_blocks_fetched = r.GetCounter("query.dpp.blocks_fetched");
    dpp_blocks_skipped = r.GetCounter("query.dpp.blocks_skipped");
    join_tasks = r.GetCounter("query.join.tasks");
    join_remote = r.GetCounter("query.join.remote");
    join_local_fallback = r.GetCounter("query.join.local_fallback");
    join_result_postings = r.GetCounter("query.join.result_postings");
    response_time_s =
        r.GetHistogram("query.response_time_s", obs::LatencyBuckets());
    first_answer_s =
        r.GetHistogram("query.first_answer_s", obs::LatencyBuckets());
    // Fan-out actually in flight when a DPP pump pass finishes.
    dpp_outstanding =
        r.GetHistogram("query.dpp.outstanding", obs::CountBuckets());
  }
};

QueryCounters& C() {
  static QueryCounters counters;
  return counters;
}

/// Wire size of a received posting transfer for query metrics. The pure
/// size functions (never `codec::WireBytes`): the ratio counters were
/// already bumped when the carrying payload was first sized.
size_t TransferWireBytes(const index::PostingList& list, bool compressed) {
  return compressed ? index::codec::EncodedBytes(list)
                    : index::codec::RawBytes(list);
}

}  // namespace

using dht::AppRequest;
using dht::GetSpec;
using index::DocId;
using index::Posting;
using index::PostingList;
using sim::NodeIndex;
using sim::TrafficCategory;

std::string_view QueryStrategyName(QueryStrategy s) {
  switch (s) {
    case QueryStrategy::kBaseline:
      return "baseline";
    case QueryStrategy::kDpp:
      return "dpp";
    case QueryStrategy::kAbReducer:
      return "ab-reducer";
    case QueryStrategy::kDbReducer:
      return "db-reducer";
    case QueryStrategy::kBloomReducer:
      return "bloom-reducer";
    case QueryStrategy::kSubQueryReducer:
      return "subquery-reducer";
    case QueryStrategy::kAuto:
      return "auto";
    case QueryStrategy::kDppJoin:
      return "dpp-join";
    case QueryStrategy::kView:
      return "view";
  }
  return "unknown";
}

double QueryMetrics::NormalizedDataVolume() const {
  // The paper's metric is defined over raw posting records; wire
  // compression shows up in posting_wire_bytes, not here.
  const double baseline = static_cast<double>(
      index::codec::RawBytes(static_cast<size_t>(full_postings)));
  if (baseline <= 0) return 0.0;
  return (static_cast<double>(posting_bytes) +
          static_cast<double>(ab_filter_bytes) +
          static_cast<double>(db_filter_bytes)) /
         baseline;
}

// ---------------------------------------------------------------------------
// QueryClient

QueryClient::QueryClient(dht::DhtPeer* peer) : peer_(peer) {
  KADOP_CHECK(peer_ != nullptr, "QueryClient requires a peer");
}

void QueryClient::Submit(const TreePattern& pattern,
                         const QueryOptions& options, Callback callback) {
  if (view_catalog_ != nullptr && view_catalog_->enabled()) {
    // Advisor query log: every submitted pattern, whatever its strategy.
    view_catalog_->RecordQuery(pattern.ToString(), peer_->network()->Now());
  }
  const uint64_t id =
      (static_cast<uint64_t>(peer_->node()) << 40) | next_query_id_++;
  auto exec = std::make_shared<QueryExecutor>(this, id, pattern, options,
                                              std::move(callback));
  active_[id] = exec;
  C().submitted->Increment();
  exec->Start();
}

bool QueryClient::HandleApp(const AppRequest& request, NodeIndex from) {
  uint64_t query_id = 0;
  if (const auto* list =
          dynamic_cast<const ReducedListMessage*>(request.inner.get())) {
    query_id = list->query_id;
  } else {
    return false;
  }
  auto it = active_.find(query_id);
  if (it == active_.end()) return true;  // late message for a finished query
  return it->second->HandleApp(request, from);
}

void QueryClient::Finish(uint64_t query_id) { active_.erase(query_id); }

// ---------------------------------------------------------------------------
// QueryExecutor

QueryExecutor::QueryExecutor(QueryClient* client, uint64_t query_id,
                             TreePattern pattern, QueryOptions options,
                             QueryClient::Callback callback)
    : client_(client),
      peer_(client->peer()),
      query_id_(query_id),
      pattern_(std::move(pattern)),
      options_(options),
      compress_(options.compress.value_or(index::codec::CompressionEnabled())),
      callback_(std::move(callback)),
      join_(pattern_) {
  stream_closed_.assign(pattern_.size(), false);
  metrics_.submit_time = peer_->network()->Now();
}

void QueryExecutor::Start() {
  if (pattern_.HasWildcard()) {
    FailInvalid(
        "bare wildcard nodes make the index query imprecise and are not "
        "supported by the distributed engine");
    return;
  }
  metrics_.effective_strategy = options_.strategy;
  auto& tracer = obs::Tracer::Default();
  // Root of a fresh trace: the trace id comes from the tracer's sequence
  // counter, and every remote span this query causes (directory serves,
  // posting serves, holder joins) parents back here via the wire-propagated
  // context.
  span_ = tracer.BeginRoot("query", peer_->node());
  tracer.Annotate(span_, "strategy",
                  std::string(QueryStrategyName(options_.strategy)));
  obs::ScopedTraceContext scope(tracer.ContextFor(span_));
  ArmTimeout();
  switch (options_.strategy) {
    case QueryStrategy::kBaseline:
      StartBaseline();
      break;
    case QueryStrategy::kDpp:
      StartDpp();
      break;
    case QueryStrategy::kDppJoin:
      StartDppJoin();
      break;
    case QueryStrategy::kAuto:
      StartAuto();
      break;
    case QueryStrategy::kView:
      StartView();
      break;
    case QueryStrategy::kAbReducer:
      StartReducer(ReduceMode::kAb);
      break;
    case QueryStrategy::kDbReducer:
      StartReducer(ReduceMode::kDb);
      break;
    case QueryStrategy::kBloomReducer:
      StartReducer(ReduceMode::kBloom);
      break;
    case QueryStrategy::kSubQueryReducer:
      StartSubQuery();
      break;
  }
}

void QueryExecutor::FailInvalid(const std::string& why) {
  KADOP_LOG_INFO("query %llu failed: %s",
                 static_cast<unsigned long long>(query_id_), why.c_str());
  Finish(false);
}

void QueryExecutor::ArmTimeout() {
  if (options_.timeout_s <= 0) return;
  auto self = shared_from_this();
  peer_->network()->scheduler()->After(options_.timeout_s, [self]() {
    if (self->finished_) return;
    self->join_.CloseAll();
    self->AdvanceJoin();
    self->Finish(false);
  });
}

// -- Baseline ---------------------------------------------------------------

void QueryExecutor::FetchStream(size_t node, bool count_blocks) {
  auto self = shared_from_this();
  GetSpec spec;
  spec.key = pattern_.node(node).TermKey();
  spec.pipelined = options_.pipelined;
  spec.block_postings = options_.block_postings;
  spec.retry = options_.fetch_retry;
  spec.compress = compress_;
  if (options_.cache_postings) {
    if (auto cached = client_->posting_cache().Lookup(
            spec.key, spec.lo, spec.hi,
            peer_->AuthoritativeVersion(spec.key))) {
      metrics_.cache_hits++;
      // Deliver asynchronously so join/stream bookkeeping sees the same
      // ordering as a real fetch. A hit ships nothing: full_postings still
      // grows (it is the metric's denominator) but no posting/wire bytes
      // and no blocks_fetched.
      peer_->network()->scheduler()->After(0.0, [self, node, cached]() {
        if (self->finished_) return;
        self->metrics_.postings_received += cached->size();
        self->metrics_.full_postings += cached->size();
        C().postings_received->Increment(cached->size());
        // Zero-copy: the join's iterator reads the cached list in place.
        if (!cached->empty()) self->join_.AppendShared(node, cached);
        self->stream_closed_[node] = true;
        self->join_.Close(node);
        self->AdvanceJoin();
        self->MaybeFinishStreams();
      });
      return;
    }
    metrics_.cache_misses++;
  }
  const uint64_t pre_version =
      options_.cache_postings ? peer_->AuthoritativeVersion(spec.key) : 0;
  auto accum = options_.cache_postings ? std::make_shared<PostingList>()
                                       : std::shared_ptr<PostingList>();
  peer_->GetBlocks(spec, [self, node, count_blocks, spec, pre_version, accum](
                             PostingList block, bool last, bool complete) {
    if (self->finished_) return;
    self->metrics_.postings_received += block.size();
    self->metrics_.posting_bytes += index::codec::RawBytes(block);
    self->metrics_.posting_wire_bytes +=
        TransferWireBytes(block, self->compress_);
    self->metrics_.full_postings += block.size();
    if (count_blocks) self->metrics_.blocks_fetched++;
    C().postings_received->Increment(block.size());
    C().posting_bytes->Increment(index::codec::RawBytes(block));
    C().posting_wire_bytes->Increment(
        TransferWireBytes(block, self->compress_));
    // The cache accumulator (when present) takes a copy; the join always
    // takes the block itself — the single-consumer fast path moves it.
    if (accum) accum->insert(accum->end(), block.begin(), block.end());
    if (!block.empty()) self->join_.Append(node, std::move(block));
    if (last) {
      if (!complete) {
        self->metrics_.complete = false;
        if (self->options_.fetch_retry.enabled()) {
          self->metrics_.degraded = true;
        }
      } else if (accum) {
        self->MaybeCacheInsert(
            spec, pre_version,
            std::shared_ptr<const PostingList>(std::move(accum)));
      }
      self->stream_closed_[node] = true;
      self->join_.Close(node);
    }
    self->AdvanceJoin();
    self->MaybeFinishStreams();
  });
}

void QueryExecutor::MaybeCacheInsert(const GetSpec& spec, uint64_t pre_version,
                                     PostingList postings) {
  MaybeCacheInsert(spec, pre_version,
                   std::make_shared<const PostingList>(std::move(postings)));
}

void QueryExecutor::MaybeCacheInsert(
    const GetSpec& spec, uint64_t pre_version,
    std::shared_ptr<const PostingList> postings) {
  // Only a still-authoritative result may be cached: if the key's version
  // moved while the stream was in flight, the stream may predate the
  // mutation and a later Lookup at the new version must miss.
  if (peer_->AuthoritativeVersion(spec.key) != pre_version) return;
  client_->posting_cache().Insert(spec.key, spec.lo, spec.hi, pre_version,
                                  std::move(postings));
}

void QueryExecutor::StartBaseline() {
  auto& tracer = obs::Tracer::Default();
  phase_span_ = tracer.Begin("query.fetch", span_);
  obs::ScopedTraceContext scope(tracer.ContextFor(phase_span_));
  for (size_t node = 0; node < pattern_.size(); ++node) {
    FetchStream(node, /*count_blocks=*/true);
  }
}

// -- DPP --------------------------------------------------------------------

void QueryExecutor::StartDppJoin() {
  // Same directory round and block filtering as kDpp;
  // OnDppDirectoriesReady branches into task planning instead of fetches.
  dpp_join_mode_ = true;
  StartDpp();
}

void QueryExecutor::StartDpp() {
  auto self = shared_from_this();
  auto& tracer = obs::Tracer::Default();
  route_span_ = tracer.Begin("query.route.directory", span_);
  obs::ScopedTraceContext scope(tracer.ContextFor(route_span_));
  dpp_.resize(pattern_.size());
  directories_pending_ = pattern_.size();
  for (size_t node = 0; node < pattern_.size(); ++node) {
    index::DppManager::FetchDirectory(
        peer_, pattern_.node(node).TermKey(),
        [self, node](Status st, std::vector<index::DppBlockInfo> blocks) {
          if (self->finished_) return;
          if (!st.ok()) {
            // Directory owner unreachable within the retry budget. Treat the
            // term as unanswerable: the empty block list routes through the
            // provably-empty path below, which closes every stream and
            // finishes incomplete instead of waiting on fetches that will
            // never be issued.
            self->metrics_.complete = false;
            self->metrics_.degraded = true;
            blocks.clear();
          }
          self->dpp_[node].blocks = std::move(blocks);
          if (--self->directories_pending_ == 0) {
            self->OnDppDirectoriesReady();
          }
        },
        options_.fetch_retry);
  }
}

void QueryExecutor::OnDppDirectoriesReady() {
  auto& tracer = obs::Tracer::Default();
  if (route_span_ != 0) {
    tracer.End(route_span_);
    route_span_ = 0;
  }
  // The [min, max] document-interval filter of Section 4.2: all answers lie
  // between the largest per-term minimum and the smallest per-term maximum.
  DocId min_doc{0, 0};
  DocId max_doc{UINT32_MAX, UINT32_MAX};
  bool empty = false;
  for (size_t node = 0; node < pattern_.size(); ++node) {
    const auto& blocks = dpp_[node].blocks;
    for (const auto& b : blocks) metrics_.full_postings += b.count;
    if (blocks.empty()) {
      empty = true;
      continue;
    }
    const DocId lo = blocks.front().cond.MinDoc();
    DocId hi = blocks.back().cond.MaxDoc();
    // With random (unordered) splits conditions overlap; take true extremes.
    for (const auto& b : blocks) {
      if (hi < b.cond.MaxDoc()) hi = b.cond.MaxDoc();
    }
    if (min_doc < lo) min_doc = lo;
    if (hi < max_doc) max_doc = hi;
  }
  if (empty || max_doc < min_doc) {
    // Some term has no postings, or the document intervals are disjoint:
    // the index query is provably empty without fetching anything.
    for (size_t node = 0; node < pattern_.size(); ++node) {
      metrics_.blocks_skipped += dpp_[node].blocks.size();
      C().dpp_blocks_skipped->Increment(dpp_[node].blocks.size());
      dpp_[node].blocks.clear();
      stream_closed_[node] = true;
      join_.Close(node);
    }
    AdvanceJoin();
    Finish(metrics_.complete);
    return;
  }

  dpp_window_.lo = Posting{min_doc.peer, min_doc.doc, {0, 0, 0}};
  dpp_window_.hi =
      Posting{max_doc.peer, max_doc.doc, {UINT32_MAX, UINT32_MAX, UINT16_MAX}};

  // Type-aware filtering (Section 4.1): a document type can only produce
  // answers if every query term has postings of that type. Compute the
  // viable type set as the intersection of per-term type unions; blocks
  // whose types miss it are skipped. Blocks with no type info (e.g. `rev:`
  // entries) disable the filter conservatively.
  std::set<std::string> viable_types;
  bool types_known = true;
  for (size_t node = 0; node < pattern_.size() && types_known; ++node) {
    std::set<std::string> term_types;
    for (const auto& b : dpp_[node].blocks) {
      if (b.types.empty()) {
        types_known = false;
        break;
      }
      term_types.insert(b.types.begin(), b.types.end());
    }
    if (!types_known) break;
    if (node == 0) {
      viable_types = std::move(term_types);
    } else {
      std::set<std::string> intersection;
      std::set_intersection(
          viable_types.begin(), viable_types.end(), term_types.begin(),
          term_types.end(),
          std::inserter(intersection, intersection.begin()));
      viable_types = std::move(intersection);
    }
  }

  // Phase span for the remainder of the query: block fetches (kDpp), or
  // the dispatch/result round of holder-side joins (kDppJoin). Ended by
  // Finish().
  phase_span_ = tracer.Begin(
      dpp_join_mode_ ? "query.join.dispatch" : "query.fetch", span_);
  obs::ScopedTraceContext phase_scope(tracer.ContextFor(phase_span_));

  for (size_t node = 0; node < pattern_.size(); ++node) {
    DppNodeState& st = dpp_[node];
    std::vector<index::DppBlockInfo> kept;
    for (auto& b : st.blocks) {
      bool type_viable = !types_known || b.types.empty();
      if (!type_viable) {
        for (const auto& t : b.types) {
          if (viable_types.count(t)) {
            type_viable = true;
            break;
          }
        }
      }
      if (type_viable && b.cond.Intersects(dpp_window_)) {
        kept.push_back(std::move(b));
      } else {
        metrics_.blocks_skipped++;
        C().dpp_blocks_skipped->Increment();
      }
    }
    st.blocks = std::move(kept);
    // Overlapping conditions (random-split ablation) cannot be streamed in
    // order: collect fully and merge before feeding the join.
    st.requires_merge = false;
    for (size_t i = 1; i < st.blocks.size(); ++i) {
      if (st.blocks[i - 1].cond.Intersects(st.blocks[i].cond)) {
        st.requires_merge = true;
      }
    }
    if (dpp_join_mode_) continue;  // no query-side fetches in join mode
    if (st.blocks.empty()) {
      stream_closed_[node] = true;
      join_.Close(node);
    } else {
      PumpDppFetches(node);
    }
  }
  if (dpp_join_mode_) {
    PlanJoinTasks();
    return;
  }
  AdvanceJoin();
  MaybeFinishStreams();
}

// -- Distributed block-level twig join (kDppJoin) ---------------------------

void QueryExecutor::PlanJoinTasks() {
  // Cut the document window wherever any surviving block ends: within one
  // interval every term is covered by a fixed set of blocks, so the join
  // decomposes into at most sum(m_i) independent tasks (Section 4.3). The
  // window maximum is always a cut so the intervals cover the window even
  // when type filtering dropped the block that defined it.
  const DocId window_max{dpp_window_.hi.peer, dpp_window_.hi.doc};
  std::set<DocId> cuts;
  cuts.insert(window_max);
  for (const DppNodeState& st : dpp_) {
    for (const auto& b : st.blocks) {
      const DocId end = b.cond.MaxDoc();
      cuts.insert(end < window_max ? end : window_max);
    }
  }

  Posting lo = dpp_window_.lo;
  for (const DocId& cut : cuts) {
    JoinTask task;
    task.window.lo = lo;
    task.window.hi = Posting{cut.peer, cut.doc,
                             {UINT32_MAX, UINT32_MAX, UINT16_MAX}};
    lo = cut.doc < UINT32_MAX
             ? Posting{cut.peer, cut.doc + 1, {0, 0, 0}}
             : Posting{cut.peer + 1, 0, {0, 0, 0}};
    // A task can only produce answers if every term has a block there.
    bool viable = true;
    uint64_t largest = 0;
    task.inputs.resize(pattern_.size());
    for (size_t node = 0; node < pattern_.size() && viable; ++node) {
      for (const auto& b : dpp_[node].blocks) {
        if (!b.cond.Intersects(task.window)) continue;
        // Home = the largest participating block (ties: first seen), so
        // the heaviest posting list is joined where it already lives.
        if (b.count > largest) {
          largest = b.count;
          task.home_node = node;
          task.home_block = task.inputs[node].size();
        }
        task.inputs[node].push_back(b);
      }
      if (task.inputs[node].empty()) viable = false;
    }
    if (viable) join_tasks_.push_back(std::move(task));
  }

  metrics_.join_tasks = join_tasks_.size();
  C().join_tasks->Increment(join_tasks_.size());
  obs::Tracer::Default().Annotate(span_, "join_tasks",
                                  std::to_string(join_tasks_.size()));
  if (join_tasks_.empty()) {
    Finish(metrics_.complete);
    return;
  }
  for (size_t t = 0; t < join_tasks_.size(); ++t) DispatchJoinTask(t);
}

void QueryExecutor::DispatchJoinTask(size_t task) {
  auto self = shared_from_this();
  const JoinTask& jt = join_tasks_[task];
  auto req = std::make_shared<index::BlockJoinRequest>();
  req->query_id = query_id_;
  req->task = static_cast<uint32_t>(task);
  req->nodes.reserve(pattern_.size());
  for (size_t node = 0; node < pattern_.size(); ++node) {
    index::BlockJoinPatternNode pn;
    pn.parent = pattern_.node(node).parent;
    pn.axis = pattern_.node(node).axis == Axis::kChild ? 0 : 1;
    req->nodes.push_back(pn);
  }
  req->inputs = jt.inputs;
  req->window = jt.window;
  req->home_node = jt.home_node;
  req->home_block = jt.home_block;
  req->fetch_retry = options_.fetch_retry;
  req->compress = compress_;
  const std::string home_key = jt.inputs[jt.home_node][jt.home_block].key;
  peer_->RouteApp(
      home_key, std::move(req), TrafficCategory::kQuery,
      [self, task](sim::PayloadPtr inner) {
        if (self->finished_) return;
        const auto* msg =
            dynamic_cast<const index::JoinResultMessage*>(inner.get());
        if (msg == nullptr) {
          // Routing retry budget exhausted (holder down) or a foreign
          // reply: this task falls back to a query-side join.
          self->RunLocalJoinFallback(task);
          return;
        }
        self->OnJoinTaskResult(task, *msg);
      },
      options_.fetch_retry);
}

void QueryExecutor::OnJoinTaskResult(size_t task,
                                     const index::JoinResultMessage& msg) {
  JoinTask& jt = join_tasks_[task];
  if (jt.done) return;  // a late remote result after the local fallback won
  if (!msg.complete) {
    // The holder could not verify its inputs — typically it inherited the
    // real holder's key range after a crash and found nothing under the
    // home block. Its partial answers are discarded; the task is redone
    // here, where the fallback's verified fetches can out-wait the outage.
    RunLocalJoinFallback(task);
    return;
  }
  KADOP_CHECK(msg.nodes_per_answer == pattern_.size(),
              "join result arity mismatch");
  KADOP_CHECK(msg.answer_sids.size() ==
                  msg.answer_docs.size() * pattern_.size(),
              "malformed join result");
  metrics_.join_remote++;
  metrics_.join_result_postings += msg.answer_sids.size();
  metrics_.join_input_wire_bytes += msg.pulled_wire_bytes;
  metrics_.blocks_fetched += msg.blocks_fetched;
  C().join_remote->Increment();
  C().join_result_postings->Increment(msg.answer_sids.size());
  C().dpp_blocks_fetched->Increment(msg.blocks_fetched);
  if (msg.degraded) metrics_.degraded = true;

  std::vector<Answer> answers;
  answers.reserve(msg.answer_docs.size());
  const size_t n = pattern_.size();
  for (size_t i = 0; i < msg.answer_docs.size(); ++i) {
    Answer a;
    a.doc = msg.answer_docs[i];
    a.elements.assign(msg.answer_sids.begin() + static_cast<ptrdiff_t>(i * n),
                      msg.answer_sids.begin() +
                          static_cast<ptrdiff_t>((i + 1) * n));
    answers.push_back(std::move(a));
  }
  FinishJoinTask(task, std::move(answers), msg.matched_docs);
}

/// Accumulated fallback inputs for one join task, shared by its pulls:
/// one sorted list per completed pull, merge-distincted at join time.
struct QueryExecutor::JoinGather {
  std::vector<std::vector<index::PostingList>> lists;
  size_t pending = 0;
};

void QueryExecutor::RunLocalJoinFallback(size_t task) {
  JoinTask& jt = join_tasks_[task];
  if (jt.done) return;
  metrics_.join_local_fallback++;
  C().join_local_fallback->Increment();
  // Fault tolerance changed the evaluation even if the answers end up
  // complete: the join ran here, with the blocks shipped after all.
  metrics_.degraded = true;

  auto self = shared_from_this();
  auto gather = std::make_shared<JoinGather>();
  gather->lists.resize(pattern_.size());
  for (const auto& per_node : jt.inputs) gather->pending += per_node.size();
  KADOP_CHECK(gather->pending > 0, "join task with no inputs");

  auto on_all = [self, task, gather]() {
    StructuralJoinIterator join(self->pattern_);
    for (size_t node = 0; node < gather->lists.size(); ++node) {
      // Pulls may interleave or overlap: merge-distinct the sorted pulls
      // once, exactly like the holder-side join path.
      join.AddInput(node, PostingBlock::FromList(MergeDistinct(
                              std::move(gather->lists[node]))));
    }
    join.Run();
    self->FinishJoinTask(task, join.TakeAnswers(), join.TakeMatchedDocs());
  };

  for (size_t node = 0; node < jt.inputs.size(); ++node) {
    for (const index::DppBlockInfo& block : jt.inputs[node]) {
      GetSpec spec;
      spec.key = block.key;
      spec.pipelined = false;
      spec.lo = block.cond.lo < jt.window.lo ? jt.window.lo : block.cond.lo;
      spec.hi = jt.window.hi < block.cond.hi ? jt.window.hi : block.cond.hi;
      spec.retry = options_.fetch_retry;
      spec.compress = compress_;
      FallbackPull(gather, node, spec, /*lower_trimmed=*/block.cond.lo < spec.lo,
                   /*upper_trimmed=*/spec.hi < block.cond.hi, block.count,
                   /*attempt=*/1, on_all);
    }
  }
}

void QueryExecutor::FallbackPull(std::shared_ptr<JoinGather> gather,
                                 size_t node, GetSpec spec, bool lower_trimmed,
                                 bool upper_trimmed, uint64_t expected,
                                 uint32_t attempt,
                                 std::function<void()> on_all) {
  auto self = shared_from_this();
  auto staged = std::make_shared<PostingList>();
  peer_->GetBlocks(
      spec, [self, gather, node, spec, lower_trimmed, upper_trimmed, expected,
             attempt, on_all, staged](PostingList postings, bool last,
                                      bool complete) {
        if (self->finished_) return;
        staged->insert(staged->end(), postings.begin(), postings.end());
        if (!last) return;
        PostingList got = std::move(*staged);
        // Same verification as the remote holder: an untrimmed pull must
        // match the directory count and a one-end-trimmed pull must not be
        // empty — a data-less successor that inherited a crashed holder's
        // key range answers instantly with an empty, "complete" list.
        const bool suspect =
            !complete ||
            (!lower_trimmed && !upper_trimmed && got.size() < expected) ||
            (lower_trimmed != upper_trimmed && got.empty() && expected > 0);
        const dht::RetryPolicy& policy = self->options_.fetch_retry;
        if (suspect && policy.enabled() && attempt <= policy.max_retries) {
          // Re-pull after the crashed holder has had a chance to come back
          // and reclaim its range: the resend re-resolves the key owner.
          const double delay = policy.timeout_s + policy.BackoffDelay(attempt);
          self->peer_->network()->scheduler()->After(
              delay, [self, gather, node, spec, lower_trimmed, upper_trimmed,
                      expected, attempt, on_all]() {
                if (self->finished_) return;
                self->FallbackPull(gather, node, spec, lower_trimmed,
                                   upper_trimmed, expected, attempt + 1,
                                   on_all);
              });
          return;
        }
        if (suspect) {
          self->metrics_.complete = false;
          self->metrics_.degraded = true;
        }
        // These postings really crossed to the query peer: full ingress
        // accounting, exactly like a kDpp block fetch.
        self->metrics_.postings_received += got.size();
        self->metrics_.posting_bytes += index::codec::RawBytes(got);
        self->metrics_.posting_wire_bytes +=
            TransferWireBytes(got, self->compress_);
        self->metrics_.blocks_fetched++;
        C().postings_received->Increment(got.size());
        C().posting_bytes->Increment(index::codec::RawBytes(got));
        C().posting_wire_bytes->Increment(
            TransferWireBytes(got, self->compress_));
        C().dpp_blocks_fetched->Increment();
        gather->lists[node].push_back(std::move(got));
        if (--gather->pending == 0) on_all();
      });
}

void QueryExecutor::FinishJoinTask(size_t task, std::vector<Answer> answers,
                                   std::vector<DocId> matched_docs) {
  JoinTask& jt = join_tasks_[task];
  if (jt.done) return;
  jt.done = true;
  jt.answers = std::move(answers);
  jt.matched_docs = std::move(matched_docs);
  DeliverReadyJoinTasks();
}

void QueryExecutor::DeliverReadyJoinTasks() {
  if (finished_) return;
  while (join_next_to_deliver_ < join_tasks_.size() &&
         join_tasks_[join_next_to_deliver_].done) {
    JoinTask& jt = join_tasks_[join_next_to_deliver_];
    if (!jt.answers.empty() && metrics_.first_answer_time < 0) {
      metrics_.first_answer_time = peer_->network()->Now();
      obs::Tracer::Default().Event("query.first_answer", span_);
    }
    merged_answers_.insert(merged_answers_.end(),
                           std::make_move_iterator(jt.answers.begin()),
                           std::make_move_iterator(jt.answers.end()));
    merged_docs_.insert(merged_docs_.end(), jt.matched_docs.begin(),
                        jt.matched_docs.end());
    jt.answers.clear();
    jt.matched_docs.clear();
    join_next_to_deliver_++;
  }
  if (join_next_to_deliver_ == join_tasks_.size()) {
    Finish(metrics_.complete);
  }
}

void QueryExecutor::PumpDppFetches(size_t node) {
  auto self = shared_from_this();
  DppNodeState& st = dpp_[node];
  while (st.outstanding < options_.dpp_parallelism &&
         st.next_to_issue < st.blocks.size()) {
    const size_t idx = st.next_to_issue++;
    st.outstanding++;
    const index::DppBlockInfo& block = st.blocks[idx];
    GetSpec spec;
    spec.key = block.key;
    spec.pipelined = false;
    spec.lo = block.cond.lo < dpp_window_.lo ? dpp_window_.lo : block.cond.lo;
    spec.hi = dpp_window_.hi < block.cond.hi ? dpp_window_.hi : block.cond.hi;
    spec.retry = options_.fetch_retry;
    spec.compress = compress_;
    if (options_.cache_postings) {
      if (auto cached = client_->posting_cache().Lookup(
              spec.key, spec.lo, spec.hi,
              peer_->AuthoritativeVersion(spec.key))) {
        metrics_.cache_hits++;
        // Deliver asynchronously with the same pump bookkeeping as a real
        // block fetch (outstanding already counts this slot). Nothing
        // shipped: no posting/wire bytes, no blocks_fetched;
        // full_postings was counted from the directory.
        peer_->network()->scheduler()->After(0.0, [self, node, idx, cached]() {
          if (self->finished_) return;
          DppNodeState& state = self->dpp_[node];
          self->metrics_.postings_received += cached->size();
          C().postings_received->Increment(cached->size());
          state.ready[idx] = cached;  // shared view, no copy
          state.outstanding--;
          self->DeliverReadyDppBlocks(node);
          self->PumpDppFetches(node);
          self->AdvanceJoin();
          self->MaybeFinishStreams();
        });
        continue;
      }
      metrics_.cache_misses++;
    }
    const uint64_t pre_version =
        options_.cache_postings ? peer_->AuthoritativeVersion(spec.key) : 0;
    const bool trimmed = block.cond.lo < dpp_window_.lo ||
                         dpp_window_.hi < block.cond.hi;
    const uint64_t expected = block.count;
    peer_->GetBlocks(spec, [self, node, idx, trimmed, expected, spec,
                            pre_version](PostingList postings, bool last,
                                         bool complete) {
      if (self->finished_ || !last) return;
      bool sound = complete;
      if (!complete) {
        self->metrics_.complete = false;
        if (self->options_.fetch_retry.enabled()) {
          self->metrics_.degraded = true;
        }
      } else if (self->options_.fetch_retry.enabled() && !trimmed &&
                 postings.size() < expected) {
        // The fetch succeeded (possibly rerouted to the crashed holder's
        // successor) but returned fewer postings than the directory
        // recorded for an untrimmed block: data died with its holder. The
        // answers we can still compute are a sound subset, so deliver what
        // arrived but say so.
        self->metrics_.complete = false;
        self->metrics_.degraded = true;
        sound = false;
      }
      DppNodeState& state = self->dpp_[node];
      self->metrics_.postings_received += postings.size();
      self->metrics_.posting_bytes += index::codec::RawBytes(postings);
      self->metrics_.posting_wire_bytes +=
          TransferWireBytes(postings, self->compress_);
      self->metrics_.blocks_fetched++;
      C().postings_received->Increment(postings.size());
      C().posting_bytes->Increment(index::codec::RawBytes(postings));
      C().posting_wire_bytes->Increment(
          TransferWireBytes(postings, self->compress_));
      C().dpp_blocks_fetched->Increment();
      auto shared =
          std::make_shared<const PostingList>(std::move(postings));
      if (sound && self->options_.cache_postings) {
        // The cache aliases the same storage the join will read.
        self->MaybeCacheInsert(spec, pre_version, shared);
      }
      state.ready[idx] = std::move(shared);
      state.outstanding--;
      self->DeliverReadyDppBlocks(node);
      self->PumpDppFetches(node);
      self->AdvanceJoin();
      self->MaybeFinishStreams();
    });
  }
  if (st.outstanding > 0) {
    C().dpp_outstanding->Observe(static_cast<double>(st.outstanding));
  }
}

void QueryExecutor::DeliverReadyDppBlocks(size_t node) {
  DppNodeState& st = dpp_[node];
  if (st.requires_merge) {
    // Wait for everything, merge-distinct once through the union iterator
    // (each block is already sorted; overlap is across blocks only).
    if (st.ready.size() < st.blocks.size()) return;
    std::vector<PostingBlock> blocks;
    blocks.reserve(st.ready.size());
    for (auto& [idx, postings] : st.ready) {
      if (!postings->empty()) {
        blocks.push_back(PostingBlock::FromShared(postings));
      }
    }
    st.ready.clear();
    join_.Append(node, MergeDistinct(std::move(blocks)));
    st.next_to_deliver = st.blocks.size();
    stream_closed_[node] = true;
    join_.Close(node);
    return;
  }
  while (true) {
    auto it = st.ready.find(st.next_to_deliver);
    if (it == st.ready.end()) break;
    if (!it->second->empty()) join_.AppendShared(node, std::move(it->second));
    st.ready.erase(it);
    st.next_to_deliver++;
  }
  if (st.next_to_deliver == st.blocks.size() && !stream_closed_[node]) {
    stream_closed_[node] = true;
    join_.Close(node);
  }
}

// -- Bloom reducers ---------------------------------------------------------

void QueryExecutor::StartReducer(ReduceMode mode) {
  ReducePlan plan;
  plan.query_id = query_id_;
  plan.query_peer = peer_->node();
  plan.mode = mode;
  plan.ab_params = options_.ab_params;
  plan.db_params = options_.db_params;
  for (size_t node = 0; node < pattern_.size(); ++node) {
    ReducePlanNode pn;
    pn.node = static_cast<int>(node);
    pn.term_key = pattern_.node(node).TermKey();
    pn.parent = pattern_.node(node).parent;
    pn.children = pattern_.node(node).children;
    plan.nodes.push_back(std::move(pn));
  }
  LaunchReducePlan(plan);
}

void QueryExecutor::LaunchReducePlan(const ReducePlan& plan) {
  reduced_lists_pending_ += plan.nodes.size();
  for (const ReducePlanNode& pn : plan.nodes) {
    auto start = std::make_shared<ReduceStart>();
    start->plan = plan;
    start->node = pn.node;
    peer_->RouteApp(pn.term_key, std::move(start), TrafficCategory::kQuery,
                    nullptr);
  }
}

bool QueryExecutor::HandleApp(const AppRequest& request, NodeIndex /*from*/) {
  const auto* list =
      dynamic_cast<const ReducedListMessage*>(request.inner.get());
  if (list == nullptr) return false;
  if (finished_) return true;
  const size_t node = static_cast<size_t>(list->node);
  KADOP_CHECK(node < pattern_.size(), "bad node in reduced list");
  KADOP_CHECK(!stream_closed_[node], "duplicate reduced list");
  metrics_.postings_received += list->postings.size();
  metrics_.posting_bytes += index::codec::RawBytes(list->postings);
  metrics_.posting_wire_bytes +=
      TransferWireBytes(list->postings, list->compressed);
  metrics_.full_postings += list->full_count;
  metrics_.ab_filter_bytes += list->ab_filter_bytes;
  metrics_.db_filter_bytes += list->db_filter_bytes;
  C().postings_received->Increment(list->postings.size());
  C().posting_bytes->Increment(index::codec::RawBytes(list->postings));
  C().posting_wire_bytes->Increment(
      TransferWireBytes(list->postings, list->compressed));
  C().ab_filter_bytes->Increment(list->ab_filter_bytes);
  C().db_filter_bytes->Increment(list->db_filter_bytes);
  if (!list->postings.empty()) join_.Append(node, list->postings);
  stream_closed_[node] = true;
  join_.Close(node);
  KADOP_CHECK(reduced_lists_pending_ > 0, "unexpected reduced list");
  reduced_lists_pending_--;
  AdvanceJoin();
  MaybeFinishStreams();
  return true;
}

// -- Sub-query reducer -------------------------------------------------------

void QueryExecutor::FetchTermCounts(std::function<void()> then) {
  auto self = shared_from_this();
  auto continuation = std::make_shared<std::function<void()>>(
      std::move(then));
  term_counts_.assign(pattern_.size(), 0);
  counts_pending_ = pattern_.size();
  for (size_t node = 0; node < pattern_.size(); ++node) {
    auto req = std::make_shared<TermCountRequest>();
    req->term_key = pattern_.node(node).TermKey();
    peer_->RouteApp(req->term_key, req, TrafficCategory::kControl,
                    [self, node, continuation](sim::PayloadPtr inner) {
                      if (self->finished_) return;
                      auto* resp =
                          dynamic_cast<TermCountResponse*>(inner.get());
                      if (resp == nullptr) {
                        // Retry budget exhausted (nullptr) or a foreign
                        // payload: plan with count 0 — the strategy choice
                        // may be worse but the query still runs to an
                        // explicit completion.
                        self->metrics_.degraded = true;
                        self->term_counts_[node] = 0;
                      } else {
                        self->term_counts_[node] = resp->count;
                      }
                      if (--self->counts_pending_ == 0) (*continuation)();
                    },
                    options_.fetch_retry);
  }
}

void QueryExecutor::StartSubQuery() {
  FetchTermCounts([this]() { OnTermCountsReady(); });
}

std::vector<StrategyCostEstimate> EstimateStrategyCosts(
    const TreePattern& pattern, const std::vector<uint64_t>& term_counts,
    const QueryOptions& options) {
  // Per-posting transfer estimate honors the query's compression choice:
  // delta-coded transfers move fewer bytes, which shifts the byte-cost
  // ranking (but not the bottleneck structure) between strategies.
  const double kWire = index::codec::EstimatedWirePostingBytes(
      options.compress.value_or(index::codec::CompressionEnabled()));
  // Approximate per-posting DBF cost: |containers| inserts at ~10 bits.
  constexpr double kDbfBytesPerPosting = 15.0;

  double total = 0;
  double max_count = 0;
  size_t selective = 0;
  for (size_t i = 0; i < term_counts.size(); ++i) {
    total += static_cast<double>(term_counts[i]);
    max_count = std::max(max_count, static_cast<double>(term_counts[i]));
    if (term_counts[i] < term_counts[selective]) selective = i;
  }
  // Upper bound on answer cardinality from the iterator tree itself: an
  // intersect-of-leaves estimate over the per-term counts, the same
  // EstimateResultsAmount every live iterator exposes. Replaces the old
  // fixed bytes-per-posting guesswork wherever a strategy's cost depends
  // on how much survives the join rather than on what ships.
  const double est_matches =
      static_cast<double>(EstimateTwigResults(pattern, term_counts));

  std::vector<StrategyCostEstimate> costs;
  {
    StrategyCostEstimate baseline;
    baseline.strategy = QueryStrategy::kBaseline;
    baseline.bytes = total * kWire;
    baseline.bottleneck_bytes = max_count * kWire;  // one owner's uplink
    costs.push_back(baseline);
  }
  if (options.dpp_available) {
    StrategyCostEstimate dpp;
    dpp.strategy = QueryStrategy::kDpp;
    dpp.bytes = total * kWire;
    // Parallel block fetch spreads the longest list across holders.
    dpp.bottleneck_bytes =
        max_count * kWire /
        static_cast<double>(std::max<size_t>(1, options.dpp_parallelism / 2));
    costs.push_back(dpp);
    if (options.dpp_join_available) {
      // Distributed block join: the largest list never moves (each task
      // is joined at its holder), the rest ship holder-to-holder with the
      // same block parallelism, and only answer tuples come back.
      StrategyCostEstimate djoin;
      djoin.strategy = QueryStrategy::kDppJoin;
      // Holder-to-holder input shipping plus the result tuples coming
      // back: each answer carries a doc id (~8B) and one structural id
      // (~10B) per pattern node. The egress term is what makes kDppJoin
      // lose to kDpp on low-selectivity patterns — shipping every answer
      // tuple can cost more than shipping the inputs.
      djoin.bytes =
          (total - max_count) * kWire +
          est_matches * (8.0 + 10.0 * static_cast<double>(pattern.size()));
      djoin.bottleneck_bytes =
          (total - max_count) * kWire /
          static_cast<double>(
              std::max<size_t>(1, options.dpp_parallelism / 2));
      costs.push_back(djoin);
    }
  }
  // The iterator tree's intersect estimate is the most selective term's
  // count — the same quantity the sub-query heuristic keys on.
  const double min_count = est_matches;
  if (pattern.size() > 1 &&
      min_count * static_cast<double>(options.auto_selectivity_ratio) <
          max_count) {
    // DB-reduce the path from the most selective term to the root: path
    // lists shrink to ~min_count; off-path lists ship entire.
    size_t path_len = 0;
    double off_path = 0;
    std::vector<bool> on_path(pattern.size(), false);
    for (int q = static_cast<int>(selective); q >= 0;
         q = pattern.node(q).parent) {
      on_path[static_cast<size_t>(q)] = true;
      ++path_len;
    }
    for (size_t i = 0; i < term_counts.size(); ++i) {
      if (!on_path[i]) off_path += static_cast<double>(term_counts[i]);
    }
    StrategyCostEstimate sub;
    sub.strategy = QueryStrategy::kSubQueryReducer;
    sub.bytes = (off_path + min_count * static_cast<double>(path_len)) *
                    kWire +
                min_count * kDbfBytesPerPosting *
                    static_cast<double>(path_len);
    sub.bottleneck_bytes = std::max(off_path > 0 ? off_path * kWire /
                                        static_cast<double>(
                                            term_counts.size())
                                                 : 0.0,
                                    min_count * kWire);
    // Off-path long lists still ship entire from single owners.
    for (size_t i = 0; i < term_counts.size(); ++i) {
      if (!on_path[i]) {
        sub.bottleneck_bytes = std::max(
            sub.bottleneck_bytes, static_cast<double>(term_counts[i]) *
                                      kWire);
      }
    }
    costs.push_back(sub);
  }
  if (options.view_available) {
    // Serving from a materialized view ships the extent columns plus the
    // residual terms' base lists — nothing else. Appended last so exact
    // cost ties (strict-< best pick) keep preferring the base strategies,
    // leaving view-less plans byte-identical to the pre-view planner.
    const double extent = static_cast<double>(options.view_extent_postings);
    const double residual =
        static_cast<double>(options.view_residual_postings);
    StrategyCostEstimate view;
    view.strategy = QueryStrategy::kView;
    view.bytes = (extent + residual) * kWire;
    // Columns live under distinct keys and fetch in parallel; a residual
    // term's full list ships from its single owner.
    view.bottleneck_bytes =
        std::max(extent * kWire /
                     static_cast<double>(
                         std::max<size_t>(1, options.dpp_parallelism / 2)),
                 residual * kWire);
    costs.push_back(view);
  }
  return costs;
}

void QueryExecutor::StartAuto() {
  FetchTermCounts([this]() {
    // Catalog consult before strategy selection: a servable rewrite makes
    // kView a priced candidate, with the extent cardinality from the
    // catalog and the residual cost from the just-fetched term counts.
    QueryOptions planning = options_;
    ViewCatalog* catalog = client_->view_catalog();
    if (catalog != nullptr && catalog->enabled()) {
      view_rewrite_ = catalog->FindRewrite(pattern_, peer_);
      if (view_rewrite_.has_value()) {
        planning.view_available = true;
        planning.view_extent_postings = view_rewrite_->extent_postings;
        uint64_t residual = 0;
        for (size_t q = 0; q < pattern_.size(); ++q) {
          if (!view_rewrite_->match.Covers(static_cast<int>(q))) {
            residual += term_counts_[q];
          }
        }
        planning.view_residual_postings = residual;
      }
    }
    const std::vector<StrategyCostEstimate> costs =
        EstimateStrategyCosts(pattern_, term_counts_, planning);
    KADOP_CHECK(!costs.empty(), "no viable strategy");
    const StrategyCostEstimate* best = &costs[0];
    for (const StrategyCostEstimate& c : costs) {
      const bool better =
          options_.objective == QueryOptions::Objective::kTraffic
              ? (c.bytes < best->bytes ||
                 (c.bytes == best->bytes &&
                  c.bottleneck_bytes < best->bottleneck_bytes))
              : (c.bottleneck_bytes < best->bottleneck_bytes ||
                 (c.bottleneck_bytes == best->bottleneck_bytes &&
                  c.bytes < best->bytes));
      if (better) best = &c;
    }
    metrics_.effective_strategy = best->strategy;
    switch (best->strategy) {
      case QueryStrategy::kSubQueryReducer:
        OnTermCountsReady();
        break;
      case QueryStrategy::kDpp:
        StartDpp();
        break;
      case QueryStrategy::kDppJoin:
        StartDppJoin();
        break;
      case QueryStrategy::kView:
        StartView();
        break;
      default:
        StartBaseline();
        break;
    }
  });
}

void QueryExecutor::OnTermCountsReady() {
  // Heuristic (Section 5.4): the sub-query with a guaranteed low
  // selectivity factor — the path from the smallest posting list up to the
  // root. DB-reduce that path; fetch everything else entire.
  size_t best = 0;
  for (size_t node = 1; node < pattern_.size(); ++node) {
    if (term_counts_[node] < term_counts_[best]) best = node;
  }
  std::vector<int> path;
  for (int q = static_cast<int>(best); q >= 0; q = pattern_.node(q).parent) {
    path.push_back(q);
  }

  ReducePlan plan;
  plan.query_id = query_id_;
  plan.query_peer = peer_->node();
  plan.mode = ReduceMode::kDb;
  plan.ab_params = options_.ab_params;
  plan.db_params = options_.db_params;
  for (size_t i = 0; i < path.size(); ++i) {
    ReducePlanNode pn;
    pn.node = path[i];
    pn.term_key = pattern_.node(path[i]).TermKey();
    // The path is leaf -> root; within the plan each node's child is the
    // previous path entry.
    pn.parent = i + 1 < path.size() ? path[i + 1] : -1;
    if (i > 0) pn.children.push_back(path[i - 1]);
    plan.nodes.push_back(std::move(pn));
  }
  // Plan parents point along the path only; fix orientation: plan parent
  // of path[i] is path[i+1] (its pattern ancestor), children accordingly.
  LaunchReducePlan(plan);

  // Remaining nodes: plain full fetches (uncounted in blocks_fetched,
  // which tracks the DPP/baseline block economy only).
  for (size_t node = 0; node < pattern_.size(); ++node) {
    if (std::find(path.begin(), path.end(), static_cast<int>(node)) !=
        path.end()) {
      continue;
    }
    FetchStream(node, /*count_blocks=*/false);
  }
}

// -- Materialized views (kView) ----------------------------------------------

void QueryExecutor::StartView() {
  if (!view_rewrite_.has_value()) {
    // kAuto stashes the rewrite it priced; an explicit kView resolves here.
    if (ViewCatalog* catalog = client_->view_catalog()) {
      view_rewrite_ = catalog->FindRewrite(pattern_, peer_);
    }
  }
  if (!view_rewrite_.has_value()) {
    FallbackFromView();
    return;
  }
  ServeFromView();
}

void QueryExecutor::FallbackFromView() {
  metrics_.view_fallback = true;
  // Fault-tolerance semantics: the requested evaluation changed shape,
  // whether the cause was a crashed column holder, a stale extent, or no
  // servable rewrite at all. The answers are still exact.
  metrics_.degraded = true;
  if (ViewCatalog* catalog = client_->view_catalog()) {
    catalog->CountFallback(view_rewrite_ ? view_rewrite_->name
                                         : std::string());
  }
  auto& tracer = obs::Tracer::Default();
  if (phase_span_ != 0) {
    tracer.End(phase_span_);
    phase_span_ = 0;
  }
  const QueryStrategy fallback =
      options_.dpp_join_available
          ? QueryStrategy::kDppJoin
          : (options_.dpp_available ? QueryStrategy::kDpp
                                    : QueryStrategy::kBaseline);
  metrics_.effective_strategy = fallback;
  tracer.Annotate(span_, "view_fallback",
                  std::string(QueryStrategyName(fallback)));
  switch (fallback) {
    case QueryStrategy::kDppJoin:
      StartDppJoin();
      break;
    case QueryStrategy::kDpp:
      StartDpp();
      break;
    default:
      StartBaseline();
      break;
  }
}

void QueryExecutor::ServeFromView() {
  auto self = shared_from_this();
  auto& tracer = obs::Tracer::Default();
  phase_span_ = tracer.Begin("query.view.fetch", span_);
  obs::ScopedTraceContext scope(tracer.ContextFor(phase_span_));
  const ViewCatalog::Rewrite& rw = *view_rewrite_;
  tracer.Annotate(span_, "view", rw.name);
  const size_t arity = rw.def.pattern.size();
  // Pre-flight: buffer every extent column and verify it against the
  // catalog's stored count before anything reaches the join, so a failed
  // verification can still dispatch a clean base-strategy fallback.
  struct ColumnGather {
    std::vector<PostingList> columns;
    uint64_t wire_bytes = 0;
    size_t pending = 0;
    bool verified = true;
  };
  auto gather = std::make_shared<ColumnGather>();
  gather->columns.resize(arity);
  gather->pending = arity;
  for (size_t v = 0; v < arity; ++v) {
    GetSpec spec;
    spec.key = rw.def.ColumnKey(v);
    spec.pipelined = options_.pipelined;
    spec.block_postings = options_.block_postings;
    spec.retry = options_.fetch_retry;
    spec.compress = compress_;
    const uint64_t expected = rw.column_counts[v];
    peer_->GetBlocks(spec, [self, gather, v, expected](
                               PostingList block, bool last, bool complete) {
      if (self->finished_) return;
      // Full ingress accounting: extent postings ship to the query peer
      // like any fetched posting list. They also stand in for the terms'
      // full lists in the normalized-volume denominator (full_postings),
      // which understates the denominator on purpose — the extent is what
      // this strategy would fetch at worst.
      self->metrics_.postings_received += block.size();
      self->metrics_.posting_bytes += index::codec::RawBytes(block);
      const size_t wire = TransferWireBytes(block, self->compress_);
      self->metrics_.posting_wire_bytes += wire;
      self->metrics_.full_postings += block.size();
      self->metrics_.blocks_fetched++;
      gather->wire_bytes += wire;
      C().postings_received->Increment(block.size());
      C().posting_bytes->Increment(index::codec::RawBytes(block));
      C().posting_wire_bytes->Increment(wire);
      PostingList& column = gather->columns[v];
      column.insert(column.end(), block.begin(), block.end());
      if (!last) return;
      // Directory-count-style verification: a short column (crashed
      // holder's data-less successor, timed-out stream) must not serve.
      if (!complete || column.size() != expected) gather->verified = false;
      if (--gather->pending == 0) {
        self->OnViewColumns(std::move(gather->columns), gather->wire_bytes,
                            gather->verified);
      }
    });
  }
}

void QueryExecutor::OnViewColumns(std::vector<PostingList> columns,
                                  uint64_t wire_bytes, bool verified) {
  if (finished_) return;
  if (!verified) {
    FallbackFromView();
    return;
  }
  const ViewCatalog::Rewrite& rw = *view_rewrite_;
  metrics_.view_hit = true;
  metrics_.view_exact = rw.match.exact;
  metrics_.effective_strategy = QueryStrategy::kView;
  if (ViewCatalog* catalog = client_->view_catalog()) {
    catalog->CountHit(rw.name, rw.match.exact, wire_bytes);
  }
  // Feed each column into the join at its mapped query node. The column
  // join under the (stricter or equal) query pattern re-derives exactly
  // the projected answers: every query answer projects into the extent
  // (containment), and any structurally valid assignment over extent
  // candidates satisfies the query's own axes by the join's checks.
  for (size_t v = 0; v < columns.size(); ++v) {
    const auto q = static_cast<size_t>(rw.match.node_map[v]);
    if (!columns[v].empty()) join_.Append(q, std::move(columns[v]));
    stream_closed_[q] = true;
    join_.Close(q);
  }
  // Residual predicates: the uncovered query nodes fetch their base term
  // lists through the ordinary stream path and filter via the join.
  for (size_t q = 0; q < pattern_.size(); ++q) {
    if (!rw.match.Covers(static_cast<int>(q))) {
      FetchStream(q, /*count_blocks=*/true);
    }
  }
  AdvanceJoin();
  MaybeFinishStreams();
}

// -- Completion ---------------------------------------------------------------

void QueryExecutor::AdvanceJoin() {
  const size_t produced = join_.Advance();
  if (produced > 0 && metrics_.first_answer_time < 0) {
    metrics_.first_answer_time = peer_->network()->Now();
    obs::Tracer::Default().Event("query.first_answer", span_);
  }
}

void QueryExecutor::MaybeFinishStreams() {
  if (finished_) return;
  for (bool closed : stream_closed_) {
    if (!closed) return;
  }
  Finish(metrics_.complete);
}

void QueryExecutor::Finish(bool complete) {
  if (finished_) return;
  finished_ = true;
  metrics_.complete = complete;
  metrics_.complete_time = peer_->network()->Now();
  QueryResult result;
  if (dpp_join_mode_) {
    result.answers = std::move(merged_answers_);
    result.matched_docs = std::move(merged_docs_);
  } else {
    result.answers = join_.answers();
    result.matched_docs = join_.matched_docs();
  }
  result.metrics = metrics_;
  (complete ? C().completed : C().incomplete)->Increment();
  if (metrics_.degraded) C().degraded->Increment();
  C().response_time_s->Observe(metrics_.ResponseTime());
  if (metrics_.TimeToFirstAnswer() >= 0) {
    C().first_answer_s->Observe(metrics_.TimeToFirstAnswer());
  }
  auto& tracer = obs::Tracer::Default();
  if (route_span_ != 0) {
    tracer.End(route_span_);
    route_span_ = 0;
  }
  if (phase_span_ != 0) {
    tracer.End(phase_span_);
    phase_span_ = 0;
  }
  tracer.Annotate(span_, "effective",
                  std::string(QueryStrategyName(metrics_.effective_strategy)));
  tracer.Annotate(span_, "answers", std::to_string(result.answers.size()));
  tracer.Annotate(span_, "complete", complete ? "true" : "false");
  if (metrics_.degraded) tracer.Annotate(span_, "degraded", "true");
  tracer.End(span_);
  QueryClient::Callback cb = std::move(callback_);
  client_->Finish(query_id_);
  if (cb) cb(std::move(result));
}

}  // namespace kadop::query
