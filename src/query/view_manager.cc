#include "query/view_manager.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "common/logging.h"
#include "obs/metrics.h"
#include "query/messages.h"

namespace kadop::query {

namespace {

struct ViewCounters {
  obs::Counter* hits;
  obs::Counter* exact_hits;
  obs::Counter* misses;
  obs::Counter* rewrites;
  obs::Counter* fallbacks;
  obs::Counter* maintenance_tuples;
  obs::Counter* bytes_served;
  obs::Counter* promotions;
  obs::Counter* demotions;

  ViewCounters() {
    auto& r = obs::MetricRegistry::Default();
    hits = r.GetCounter("view.hits");
    exact_hits = r.GetCounter("view.exact_hits");
    misses = r.GetCounter("view.misses");
    rewrites = r.GetCounter("view.rewrites");
    fallbacks = r.GetCounter("view.fallbacks");
    maintenance_tuples = r.GetCounter("view.maintenance_tuples");
    bytes_served = r.GetCounter("view.bytes_served");
    promotions = r.GetCounter("view.promotions");
    demotions = r.GetCounter("view.demotions");
  }
};

ViewCounters& C() {
  static ViewCounters counters;
  return counters;
}

}  // namespace

ViewCatalog::ViewCatalog(ViewOptions options)
    : options_(options), pattern_load_(options.max_tracked_patterns) {}

// ---------------------------------------------------------------------------
// Registration

Result<std::string> ViewCatalog::Register(const TreePattern& pattern,
                                          std::string name,
                                          bool auto_created) {
  if (pattern.size() == 0) {
    return Status::InvalidArgument("empty view pattern");
  }
  if (pattern.HasWildcard()) {
    return Status::InvalidArgument("view patterns must be wildcard-free");
  }
  const std::string key = pattern.ToString();
  const auto dup = by_pattern_.find(key);
  if (dup != by_pattern_.end()) {
    return Status::AlreadyExists("view '" + dup->second +
                                 "' already covers " + key);
  }
  if (name.empty()) {
    do {
      name = "v" + std::to_string(++next_name_id_);
    } while (entries_.count(name) > 0);
  } else if (entries_.count(name) > 0) {
    return Status::AlreadyExists("view name in use: " + name);
  }
  Entry entry;
  entry.def.name = name;
  entry.def.pattern = pattern;
  entry.def.extent_prefix =
      "view:" + name + ".g" + std::to_string(++next_generation_);
  entry.auto_created = auto_created;
  entry.column_counts.assign(pattern.size(), 0);
  entry.column_versions.assign(pattern.size(), 0);
  entry.term_versions.assign(pattern.size(), 0);
  entries_.emplace(name, std::move(entry));
  by_pattern_.emplace(key, name);
  return name;
}

bool ViewCatalog::Drop(const std::string& name) {
  const auto it = entries_.find(name);
  if (it == entries_.end()) return false;
  by_pattern_.erase(it->second.def.PatternKey());
  entries_.erase(it);
  return true;
}

const ViewCatalog::Entry* ViewCatalog::Find(const std::string& name) const {
  const auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : &it->second;
}

ViewCatalog::Entry* ViewCatalog::FindMutable(const std::string& name) {
  const auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : &it->second;
}

std::string ViewCatalog::Describe() const {
  std::string out;
  for (const auto& [name, entry] : entries_) {
    uint64_t postings = 0;
    for (uint64_t c : entry.column_counts) postings += c;
    out += name + " pattern=" + entry.def.PatternKey() +
           " ready=" + (entry.ready ? "1" : "0") +
           " synced=" + (entry.pending == entry.applied ? "1" : "0") +
           " answers=" + std::to_string(entry.answers) +
           " postings=" + std::to_string(postings) +
           " auto=" + (entry.auto_created ? "1" : "0") +
           " hits=" + std::to_string(entry.hits) +
           " fallbacks=" + std::to_string(entry.fallbacks) + "\n";
  }
  return out;
}

// ---------------------------------------------------------------------------
// Rewriting

bool ViewCatalog::Servable(const Entry& entry, dht::DhtPeer* peer) const {
  if (!entry.ready || entry.pending != entry.applied) return false;
  const TreePattern& pattern = entry.def.pattern;
  for (size_t v = 0; v < pattern.size(); ++v) {
    if (peer->AuthoritativeVersion(entry.def.ColumnKey(v)) !=
        entry.column_versions[v]) {
      return false;
    }
    // The base-term oracle catches index changes that bypassed delta
    // maintenance (an unhooked publisher, a crashed holder's reset
    // versions): any mismatch disqualifies the extent.
    if (peer->AuthoritativeVersion(pattern.node(v).TermKey()) !=
        entry.term_versions[v]) {
      return false;
    }
  }
  return true;
}

std::optional<ViewCatalog::Rewrite> ViewCatalog::FindRewrite(
    const TreePattern& pattern, dht::DhtPeer* peer) {
  if (!options_.enabled || entries_.empty()) return std::nullopt;
  const auto build = [](const Entry& entry, ViewMatch match) {
    Rewrite rw;
    rw.name = entry.def.name;
    rw.def = entry.def;
    rw.match = std::move(match);
    rw.column_counts = entry.column_counts;
    for (uint64_t c : rw.column_counts) rw.extent_postings += c;
    return rw;
  };
  const auto exact_it = by_pattern_.find(pattern.ToString());
  if (exact_it != by_pattern_.end()) {
    const Entry& entry = entries_.at(exact_it->second);
    if (Servable(entry, peer)) {
      C().rewrites->Increment();
      ViewMatch match;
      match.exact = true;
      match.node_map.resize(pattern.size());
      for (size_t v = 0; v < pattern.size(); ++v) {
        match.node_map[v] = static_cast<int>(v);
      }
      return build(entry, std::move(match));
    }
  }
  // Sub-pattern containment, in name order (deterministic tie-break).
  for (const auto& [name, entry] : entries_) {
    if (exact_it != by_pattern_.end() && name == exact_it->second) continue;
    std::optional<ViewMatch> match =
        MatchViewPattern(entry.def.pattern, pattern);
    if (!match.has_value() || !Servable(entry, peer)) continue;
    C().rewrites->Increment();
    return build(entry, std::move(*match));
  }
  C().misses->Increment();
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Maintenance

void ViewCatalog::BeginMaintenance(const std::string& name) {
  if (Entry* entry = FindMutable(name)) entry->pending++;
}

void ViewCatalog::OnMaintenanceApplied(
    const std::string& name, const std::string& extent_prefix, size_t node,
    int64_t count_delta, std::optional<uint64_t> authoritative_count,
    dht::DhtPeer* peer) {
  Entry* entry = FindMutable(name);
  // Dropped (or dropped and re-created under a new generation) while the
  // operation was in flight: the ack targets dead columns.
  if (entry == nullptr || entry->def.extent_prefix != extent_prefix) return;
  if (node < entry->column_counts.size()) {
    if (authoritative_count.has_value()) {
      entry->column_counts[node] = *authoritative_count;
    } else if (count_delta >= 0) {
      entry->column_counts[node] += static_cast<uint64_t>(count_delta);
    } else {
      const auto dec = static_cast<uint64_t>(-count_delta);
      entry->column_counts[node] -= std::min(entry->column_counts[node], dec);
    }
  }
  entry->applied++;
  if (entry->pending == entry->applied) ResyncEntry(*entry, peer);
}

void ViewCatalog::AddAnswerDelta(const std::string& name, int64_t delta) {
  Entry* entry = FindMutable(name);
  if (entry == nullptr) return;
  if (delta >= 0) {
    entry->answers += static_cast<uint64_t>(delta);
  } else {
    const auto dec = static_cast<uint64_t>(-delta);
    entry->answers -= std::min(entry->answers, dec);
  }
}

void ViewCatalog::MarkReady(const std::string& name) {
  if (Entry* entry = FindMutable(name)) entry->ready = true;
}

void ViewCatalog::ResyncEntry(Entry& entry, dht::DhtPeer* peer) {
  const TreePattern& pattern = entry.def.pattern;
  for (size_t v = 0; v < pattern.size(); ++v) {
    entry.column_versions[v] =
        peer->AuthoritativeVersion(entry.def.ColumnKey(v));
    entry.term_versions[v] =
        peer->AuthoritativeVersion(pattern.node(v).TermKey());
  }
}

void ViewCatalog::Resync(dht::DhtPeer* peer) {
  for (auto& [name, entry] : entries_) {
    if (entry.ready && entry.pending == entry.applied) {
      ResyncEntry(entry, peer);
    }
  }
}

std::vector<index::DerivedAppend> ViewCatalog::MakePublishDeltas(
    dht::DhtPeer* peer, const xml::Document& doc, index::PeerId peer_id,
    index::DocSeq seq, const std::vector<index::TermPosting>& postings) {
  (void)doc;
  (void)peer_id;
  (void)seq;
  std::vector<index::DerivedAppend> out;
  for (auto& [name, entry] : entries_) {
    const std::vector<Answer> answers =
        ViewAnswersForDoc(entry.def.pattern, postings);
    if (answers.empty()) continue;
    entry.answers += answers.size();
    std::vector<index::PostingList> columns =
        ProjectAnswers(answers, entry.def.pattern.size());
    for (size_t v = 0; v < columns.size(); ++v) {
      if (columns[v].empty()) continue;
      const auto n = static_cast<int64_t>(columns[v].size());
      entry.pending++;
      C().maintenance_tuples->Increment(columns[v].size());
      out.push_back(index::DerivedAppend{
          entry.def.ColumnKey(v), std::move(columns[v]),
          [this, vname = name, prefix = entry.def.extent_prefix, v, n,
           peer](Status st) {
            // A failed delta (retry budget exhausted) leaves the entry
            // out of sync on purpose: safe (never served) but not live
            // until re-materialized.
            if (!st.ok()) return;
            OnMaintenanceApplied(vname, prefix, v, n, std::nullopt, peer);
          }});
    }
  }
  return out;
}

void ViewCatalog::HandleUnpublish(
    dht::DhtPeer* peer, const xml::Document& doc, index::PeerId peer_id,
    index::DocSeq seq, const std::vector<index::TermPosting>& postings) {
  (void)doc;
  const index::DocId doc_id{peer_id, seq};
  for (auto& [name, entry] : entries_) {
    const std::vector<Answer> answers =
        ViewAnswersForDoc(entry.def.pattern, postings);
    if (answers.empty()) continue;
    const auto removed = static_cast<uint64_t>(answers.size());
    entry.answers -= std::min(entry.answers, removed);
    for (size_t v = 0; v < entry.def.pattern.size(); ++v) {
      const std::string key = entry.def.ColumnKey(v);
      entry.pending++;
      peer->DeleteDoc(key, doc_id);
      // The count probe doubles as the delete's apply ack: routed behind
      // the delete, it returns the post-delete authoritative count. A lost
      // probe (or one reordered ahead of its delete under jitter) leaves
      // the entry out of sync — sticky fallback until the next resync.
      auto probe = std::make_shared<TermCountRequest>();
      probe->term_key = key;
      peer->RouteApp(
          key, probe, sim::TrafficCategory::kControl,
          [this, vname = name, prefix = entry.def.extent_prefix, v,
           peer](sim::PayloadPtr inner) {
            const auto* resp =
                dynamic_cast<const TermCountResponse*>(inner.get());
            if (resp == nullptr) return;
            OnMaintenanceApplied(vname, prefix, v, 0, resp->count, peer);
          });
    }
  }
}

// ---------------------------------------------------------------------------
// Advisor

void ViewCatalog::RecordQuery(const std::string& pattern_key, double now) {
  if (!options_.enabled || !options_.advisor) return;
  if (!window_armed_) {
    window_armed_ = true;
    window_end_ = now + options_.window_s;
  }
  while (now >= window_end_) {
    AdvisorTick(pattern_load_.DrainWindow());
    window_end_ += options_.window_s;
  }
  pattern_load_.RecordGet(pattern_key);
}

void ViewCatalog::AdvisorTick(const std::map<std::string, uint64_t>& window) {
  for (auto it = cooldown_.begin(); it != cooldown_.end();) {
    if (--it->second == 0) {
      it = cooldown_.erase(it);
    } else {
      ++it;
    }
  }
  // Hot streaks: a pattern must clear the per-window threshold in every
  // window of the streak; one quiet window resets it (hysteresis).
  for (const auto& [pattern, count] : window) {
    Streaks& s = streaks_[pattern];
    s.hot = count >= options_.hot_queries_per_window ? s.hot + 1 : 0;
  }
  for (auto& [pattern, s] : streaks_) {
    if (window.find(pattern) == window.end()) s.hot = 0;
  }
  // Cool streaks of advisor-materialized views; demote after the streak.
  std::vector<std::string> demote;
  for (const auto& [name, entry] : entries_) {
    if (!entry.auto_created) continue;
    const auto wit = window.find(entry.def.PatternKey());
    const uint64_t count = wit == window.end() ? 0 : wit->second;
    Streaks& s = streaks_[entry.def.PatternKey()];
    s.cool = count <= options_.cool_queries_per_window ? s.cool + 1 : 0;
    if (s.cool >= options_.cool_windows) demote.push_back(name);
  }
  for (const std::string& name : demote) {
    Entry* entry = FindMutable(name);
    if (entry == nullptr) continue;
    const std::string pattern = entry->def.PatternKey();
    C().demotions->Increment();
    cooldown_[pattern] = options_.cooldown_windows;
    streaks_.erase(pattern);
    if (drop_view_fn_) {
      drop_view_fn_(name);
    } else {
      Drop(name);
    }
  }
  // Promotions, lexicographic pattern order (deterministic).
  if (materialize_fn_ == nullptr) return;
  size_t auto_alive = 0;
  for (const auto& [name, entry] : entries_) {
    if (entry.auto_created) auto_alive++;
  }
  for (auto& [pattern, s] : streaks_) {
    if (auto_alive >= options_.max_auto_views) break;
    if (s.hot < options_.hot_windows) continue;
    if (by_pattern_.count(pattern) > 0 || cooldown_.count(pattern) > 0) {
      continue;
    }
    // Re-arm the hysteresis: materialization registers the view (possibly
    // a tick later when scheduled), and a pattern that stays hot must earn
    // a fresh streak before it could fire again.
    s.hot = 0;
    auto_alive++;
    C().promotions->Increment();
    materialize_fn_(pattern);
  }
  for (auto it = streaks_.begin(); it != streaks_.end();) {
    if (it->second.hot == 0 && it->second.cool == 0 &&
        by_pattern_.count(it->first) == 0) {
      it = streaks_.erase(it);
    } else {
      ++it;
    }
  }
}

// ---------------------------------------------------------------------------
// Executor accounting

void ViewCatalog::CountHit(const std::string& name, bool exact,
                           uint64_t wire_bytes) {
  C().hits->Increment();
  if (exact) C().exact_hits->Increment();
  C().bytes_served->Increment(wire_bytes);
  if (Entry* entry = FindMutable(name)) entry->hits++;
}

void ViewCatalog::CountFallback(const std::string& name) {
  C().fallbacks->Increment();
  if (Entry* entry = FindMutable(name)) entry->fallbacks++;
}

}  // namespace kadop::query
