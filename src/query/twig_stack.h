#ifndef KADOP_QUERY_TWIG_STACK_H_
#define KADOP_QUERY_TWIG_STACK_H_

#include <cstddef>
#include <vector>

#include "index/posting.h"
#include "query/tree_pattern.h"
#include "query/twig_join.h"

namespace kadop::query {

/// The classic holistic TwigStack algorithm (Bruno, Koudas, Srivastava,
/// SIGMOD 2002) — the join KadoP builds on ("KadoP implements a
/// multi-threaded, block-based version of the holistic twig join from
/// [10]").
///
/// Phase 1 runs the stack machinery per document: `getNext` picks the next
/// extendable stream head, heads that cannot contribute to any twig match
/// are skipped without ever being stacked, and stacked elements are
/// recorded as candidates. Phase 2 merges candidates into full answer
/// tuples (shared with TwigJoin, so both kernels are directly
/// cross-checkable).
///
/// Child ('/') axes are processed as descendant edges in phase 1 (the
/// standard TwigStack relaxation) and enforced exactly during the merge.
/// Word pseudo-nodes (equal intervals one level deeper) are handled by
/// ordering heads with outer-elements-first tie-breaking and using the
/// level-aware containment test.
class TwigStackJoin {
 public:
  explicit TwigStackJoin(const TreePattern& pattern);

  struct Stats {
    /// Stream elements pushed on a stack (candidates for the merge).
    size_t pushed = 0;
    /// Stream elements skipped by getNext / parent-emptiness checks.
    size_t skipped = 0;
  };

  /// Evaluates the pattern over complete per-node streams (each sorted in
  /// the canonical posting order). Returns all answers, capped at
  /// `max_answers`.
  [[nodiscard]] std::vector<Answer> Run(const std::vector<index::PostingList>& streams,
                          size_t max_answers = 1 << 20);

  const Stats& stats() const { return stats_; }

 private:
  struct DocRun;

  const TreePattern pattern_;
  Stats stats_;
};

}  // namespace kadop::query

#endif  // KADOP_QUERY_TWIG_STACK_H_
