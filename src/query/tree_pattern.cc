#include "query/tree_pattern.h"

#include <cctype>

#include "index/terms.h"

namespace kadop::query {

std::string PatternNode::TermKey() const {
  switch (kind) {
    case NodeKind::kLabel:
      return index::LabelKey(term);
    case NodeKind::kWord:
      return index::WordKey(term);
    case NodeKind::kWildcard:
      return "";
  }
  return "";
}

std::vector<int> TreePattern::BottomUpOrder() const {
  // Children always have larger indices than their parent (construction
  // order), so reverse index order is a valid bottom-up order.
  std::vector<int> order;
  order.reserve(nodes.size());
  for (int i = static_cast<int>(nodes.size()) - 1; i >= 0; --i) {
    order.push_back(i);
  }
  return order;
}

bool TreePattern::HasWildcard() const {
  for (const auto& n : nodes) {
    if (n.kind == NodeKind::kWildcard) return true;
  }
  return false;
}

namespace {

void PrintNode(const TreePattern& p, int index, std::string& out) {
  const PatternNode& n = p.nodes[index];
  out += n.axis == Axis::kChild ? "/" : "//";
  switch (n.kind) {
    case NodeKind::kLabel:
      out += n.term;
      break;
    case NodeKind::kWord:
      out += "\"" + n.term + "\"";
      break;
    case NodeKind::kWildcard:
      out += "*";
      break;
  }
  for (size_t i = 0; i < n.children.size(); ++i) {
    // The last child printed as path continuation, others as predicates —
    // purely cosmetic; all children are structurally equivalent.
    if (i + 1 < n.children.size()) {
      out += "[";
      PrintNode(p, n.children[i], out);
      out += "]";
    } else {
      PrintNode(p, n.children[i], out);
    }
  }
}

/// Recursive-descent parser for the XPath subset.
class PatternParser {
 public:
  explicit PatternParser(std::string_view in) : in_(in) {}

  Status Parse(TreePattern& out) {
    int last = -1;
    KADOP_RETURN_IF_ERROR(ParsePath(out, -1, &last));
    SkipSpace();
    if (!Eof()) return Err("trailing characters");
    if (out.nodes.empty()) return Err("empty pattern");
    return Status::OK();
  }

 private:
  bool Eof() const { return pos_ >= in_.size(); }
  char Peek() const { return in_[pos_]; }
  bool StartsWith(std::string_view s) const {
    return in_.substr(pos_, s.size()) == s;
  }
  void SkipSpace() {
    while (!Eof() && std::isspace(static_cast<unsigned char>(Peek()))) pos_++;
  }
  Status Err(const std::string& what) const {
    return Status::InvalidArgument("pattern parse error at offset " +
                                   std::to_string(pos_) + ": " + what);
  }

  /// path := step+ ; returns the last step's node in `*last`.
  Status ParsePath(TreePattern& out, int parent, int* last) {
    int current = parent;
    bool first = true;
    for (;;) {
      SkipSpace();
      Axis axis = Axis::kDescendant;
      if (StartsWith("//")) {
        pos_ += 2;
      } else if (!Eof() && Peek() == '/') {
        pos_ += 1;
        axis = Axis::kChild;
      } else if (StartsWith(".//")) {
        pos_ += 3;
      } else if (!Eof() && Peek() == '.' &&
                 (pos_ + 1 >= in_.size() || in_[pos_ + 1] != '/')) {
        // Bare '.' — the current node itself; only valid inside contains().
        pos_ += 1;
        *last = current;
        return Status::OK();
      } else if (first) {
        // Relative path with implicit descendant axis (predicate shorthand
        // like [title]).
        if (Eof()) return Err("expected a step");
      } else {
        *last = current;
        return Status::OK();
      }
      KADOP_RETURN_IF_ERROR(ParseStep(out, current, axis, &current));
      first = false;
    }
  }

  /// step := (name | '*' | quoted) predicate* .
  Status ParseStep(TreePattern& out, int parent, Axis axis, int* node_out) {
    SkipSpace();
    PatternNode node;
    node.axis = axis;
    node.parent = parent;
    if (!Eof() && (Peek() == '"' || Peek() == '\'')) {
      std::string word;
      KADOP_RETURN_IF_ERROR(ParseQuoted(&word));
      std::vector<std::string> tokens;
      index::TokenizeWords(word, tokens);
      if (tokens.empty()) return Err("no indexable word in quoted step");
      node.kind = NodeKind::kWord;
      node.term = tokens[0];
      // Additional tokens become sibling word nodes under the same parent
      // (conjunctive semantics).
      if (tokens.size() > 1 && parent < 0) {
        return Err("multi-word step cannot be the pattern root");
      }
      const int index = static_cast<int>(out.nodes.size());
      out.nodes.push_back(std::move(node));
      if (parent >= 0) out.nodes[parent].children.push_back(index);
      for (size_t t = 1; t < tokens.size(); ++t) {
        PatternNode extra;
        extra.kind = NodeKind::kWord;
        extra.term = tokens[t];
        extra.axis = axis;
        extra.parent = parent;
        const int extra_index = static_cast<int>(out.nodes.size());
        out.nodes.push_back(std::move(extra));
        out.nodes[parent].children.push_back(extra_index);
      }
      // Quoted steps take no predicates; they are leaves by construction.
      *node_out = index;
      return Status::OK();
    } else if (!Eof() && Peek() == '*') {
      pos_ += 1;
      node.kind = NodeKind::kWildcard;
    } else {
      std::string name;
      KADOP_RETURN_IF_ERROR(ParseName(&name));
      node.kind = NodeKind::kLabel;
      node.term = std::move(name);
    }
    const int index = static_cast<int>(out.nodes.size());
    out.nodes.push_back(std::move(node));
    if (parent >= 0) out.nodes[parent].children.push_back(index);

    for (;;) {
      SkipSpace();
      if (Eof() || Peek() != '[') break;
      pos_ += 1;  // '['
      KADOP_RETURN_IF_ERROR(ParsePredicateList(out, index));
      SkipSpace();
      if (Eof() || Peek() != ']') return Err("expected ']'");
      pos_ += 1;
    }
    *node_out = index;
    return Status::OK();
  }

  /// pred (and pred)*
  Status ParsePredicateList(TreePattern& out, int context) {
    for (;;) {
      KADOP_RETURN_IF_ERROR(ParsePredicate(out, context));
      SkipSpace();
      if (StartsWith("and")) {
        pos_ += 3;
        continue;
      }
      return Status::OK();
    }
  }

  Status ParsePredicate(TreePattern& out, int context) {
    SkipSpace();
    if (StartsWith("contains")) {
      pos_ += 8;
      SkipSpace();
      if (Eof() || Peek() != '(') return Err("expected '(' after contains");
      pos_ += 1;
      int target = context;
      SkipSpace();
      KADOP_RETURN_IF_ERROR(ParsePath(out, context, &target));
      SkipSpace();
      if (Eof() || Peek() != ',') return Err("expected ',' in contains");
      pos_ += 1;
      SkipSpace();
      std::string word;
      KADOP_RETURN_IF_ERROR(ParseQuoted(&word));
      SkipSpace();
      if (Eof() || Peek() != ')') return Err("expected ')' in contains");
      pos_ += 1;
      return AddWordChildren(out, target, word);
    }
    if (!Eof() && Peek() == '.' &&
        (pos_ + 1 >= in_.size() || in_[pos_ + 1] != '/')) {
      // ". contains \"w\"" form.
      pos_ += 1;
      SkipSpace();
      if (!StartsWith("contains")) return Err("expected 'contains'");
      pos_ += 8;
      SkipSpace();
      std::string word;
      KADOP_RETURN_IF_ERROR(ParseQuoted(&word));
      return AddWordChildren(out, context, word);
    }
    // Structural predicate: a relative path.
    int last = -1;
    return ParsePath(out, context, &last);
  }

  /// Adds one word node per indexable token of `words` under `context`.
  /// XPath contains() tests the element's string value, i.e. the whole
  /// subtree: word nodes are descendants; multiple tokens are conjunctive.
  /// (Direct-text containment is expressible with an explicit child-axis
  /// word step, /"w".)
  Status AddWordChildren(TreePattern& out, int context,
                         const std::string& words) {
    std::vector<std::string> tokens;
    index::TokenizeWords(words, tokens);
    if (tokens.empty()) return Err("no indexable word in contains()");
    for (std::string& token : tokens) {
      PatternNode node;
      node.kind = NodeKind::kWord;
      node.term = std::move(token);
      node.axis = Axis::kDescendant;
      node.parent = context;
      const int index = static_cast<int>(out.nodes.size());
      out.nodes.push_back(std::move(node));
      out.nodes[context].children.push_back(index);
    }
    return Status::OK();
  }

  Status ParseName(std::string* out) {
    SkipSpace();
    size_t begin = pos_;
    while (!Eof() && (std::isalnum(static_cast<unsigned char>(Peek())) ||
                      Peek() == '_' || Peek() == '-')) {
      pos_++;
    }
    if (pos_ == begin) return Err("expected a name");
    out->assign(in_.substr(begin, pos_ - begin));
    return Status::OK();
  }

  Status ParseQuoted(std::string* out) {
    SkipSpace();
    if (Eof() || (Peek() != '"' && Peek() != '\'')) {
      return Err("expected a quoted string");
    }
    const char quote = Peek();
    pos_++;
    size_t begin = pos_;
    while (!Eof() && Peek() != quote) pos_++;
    if (Eof()) return Err("unterminated string");
    out->assign(in_.substr(begin, pos_ - begin));
    pos_++;
    return Status::OK();
  }

  std::string_view in_;
  size_t pos_ = 0;
};

}  // namespace

std::string TreePattern::ToString() const {
  std::string out;
  if (!nodes.empty()) PrintNode(*this, 0, out);
  return out;
}

PatternAnalysis AnalyzePattern(const TreePattern& pattern,
                               size_t min_indexed_word_length) {
  PatternAnalysis analysis;
  for (const PatternNode& node : pattern.nodes) {
    switch (node.kind) {
      case NodeKind::kWildcard:
        analysis.precise = false;
        if (!analysis.notes.empty()) analysis.notes += "; ";
        analysis.notes +=
            "wildcard node: the index cannot verify the step, candidate "
            "documents are a superset";
        break;
      case NodeKind::kWord:
        if (node.term.size() < min_indexed_word_length) {
          analysis.complete = false;
          if (!analysis.notes.empty()) analysis.notes += "; ";
          analysis.notes += "word '" + node.term +
                            "' is below the stop-word cutoff and is not "
                            "indexed";
        }
        break;
      case NodeKind::kLabel:
        break;
    }
  }
  return analysis;
}

Result<TreePattern> ParsePattern(std::string_view expr) {
  TreePattern pattern;
  PatternParser parser(expr);
  Status st = parser.Parse(pattern);
  if (!st.ok()) return st;
  return pattern;
}

}  // namespace kadop::query
