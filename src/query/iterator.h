#ifndef KADOP_QUERY_ITERATOR_H_
#define KADOP_QUERY_ITERATOR_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <type_traits>
#include <vector>

#include "common/status.h"
#include "index/codec.h"
#include "index/condition.h"
#include "index/posting.h"

namespace kadop::query {

struct Answer;
struct TreePattern;
class TwigJoin;

/// Bump-pointer arena for per-query decode/join scratch (docs/
/// query_engine.md). Allocation is a pointer bump; nothing is freed
/// individually. `Reset()` recycles every chunk at once, so a long-lived
/// executor can reuse one arena across queries without churning the heap.
///
/// Lifetime rule: spans handed out stay valid until `Reset()` or
/// destruction — a query that decodes blocks into the arena must not
/// reset it while any iterator over those blocks is live.
class Arena {
 public:
  explicit Arena(size_t chunk_bytes = 1 << 16)
      : chunk_bytes_(chunk_bytes == 0 ? 1 : chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` of storage aligned to `align` (a power of two).
  void* Allocate(size_t bytes, size_t align);

  /// Typed span of `n` default-constructible, trivially destructible
  /// elements (the arena never runs destructors).
  template <typename T>
  T* AllocateArray(size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena storage is reclaimed without destructors");
    T* out = static_cast<T*>(Allocate(n * sizeof(T), alignof(T)));
    for (size_t i = 0; i < n; ++i) new (out + i) T();
    return out;
  }

  /// Recycles all chunks; previously returned spans become invalid.
  void Reset();

  [[nodiscard]] size_t allocated_bytes() const { return allocated_bytes_; }
  [[nodiscard]] size_t chunk_count() const { return chunks_.size(); }

 private:
  struct Chunk {
    std::unique_ptr<uint8_t[]> data;
    size_t size = 0;
  };

  size_t chunk_bytes_;
  // Insertion-ordered chunk list — never keyed or iterated by pointer
  // value, so arena reuse cannot leak allocation order into any output
  // (lint rule KDP014).
  std::vector<Chunk> chunks_;
  size_t current_ = 0;  // chunk being bumped (== chunks_.size() when none)
  size_t used_ = 0;     // bytes used in the current chunk
  size_t allocated_bytes_ = 0;
};

/// One block of a posting stream, in whichever storage form the producer
/// has on hand:
///
///   - an owned decoded list (legacy append paths),
///   - a shared immutable decoded list (zero-copy posting-cache hits),
///   - an encoded `BlockEncoder` stream + exact `[lo, hi]` posting bounds,
///     decoded lazily on first access — or never, when a `SkipTo` jumps
///     past `bounds.hi` (docs/query_engine.md#block-skip).
///
/// Encoded bounds must be the block's exact first/last posting (as the
/// `BlockEncoder` header records them); the iterator uses `bounds.lo` as
/// the head posting of an untouched block and `bounds.hi` for skip and
/// stream-completeness decisions.
class PostingBlock {
 public:
  static PostingBlock FromList(index::PostingList list);
  static PostingBlock FromShared(
      std::shared_ptr<const index::PostingList> list);
  static PostingBlock FromEncoded(
      std::shared_ptr<const std::vector<uint8_t>> bytes,
      index::Condition bounds, uint64_t count);
  /// Parses the `BlockEncoder` header framing off `bytes` (headers must
  /// have been enabled on the encoding side). Checks the header, not the
  /// payload — the payload is validated if and when the block is decoded.
  static Result<PostingBlock> FromEncodedWithHeader(
      std::shared_ptr<const std::vector<uint8_t>> bytes);

  // Move-only: `data_` may point into `owned_`, which a copy would not
  // share.
  PostingBlock(PostingBlock&&) noexcept = default;
  PostingBlock& operator=(PostingBlock&&) noexcept = default;
  PostingBlock(const PostingBlock&) = delete;
  PostingBlock& operator=(const PostingBlock&) = delete;

  [[nodiscard]] const index::Condition& bounds() const { return bounds_; }
  [[nodiscard]] uint64_t count() const { return count_; }
  [[nodiscard]] bool decoded() const { return data_ != nullptr; }
  [[nodiscard]] bool empty() const { return count_ == 0; }

 private:
  friend class PostingListIterator;

  PostingBlock() = default;

  /// Decodes an encoded block (into `arena` when provided, else into the
  /// owned list). Payload corruption is a programming/storage error on
  /// this in-process path and CHECK-fails; untrusted network bytes go
  /// through `codec::DecodePostings` and its Status before reaching here.
  void EnsureDecoded(Arena* arena);

  const index::Posting* data_ = nullptr;  // non-null once decoded
  size_t size_ = 0;
  index::Condition bounds_;
  uint64_t count_ = 0;
  index::PostingList owned_;
  std::shared_ptr<const index::PostingList> shared_;
  std::shared_ptr<const std::vector<uint8_t>> encoded_;
  size_t payload_offset_ = 0;
};

/// The iterator contract (ROADMAP item 4; SNIPPETS.md snippet 3):
///
///   Read(out)           -> next posting in canonical (peer, doc, sid)
///                          order; false when exhausted.
///   SkipTo(target, out) -> first posting >= target; that posting is
///                          consumed (the next Read returns its
///                          successor); false when no such posting.
///   EstimateResultsAmount() -> upper bound on remaining results, cheap
///                          enough for the planner to call before any
///                          decode happens.
///   Abort()             -> drop all remaining input; subsequent reads
///                          fail fast.
class IndexIterator {
 public:
  virtual ~IndexIterator() = default;
  virtual bool Read(index::Posting* out) = 0;
  virtual bool SkipTo(const index::Posting& target, index::Posting* out) = 0;
  [[nodiscard]] virtual uint64_t EstimateResultsAmount() const = 0;
  virtual void Abort() = 0;
};

/// Iterator over one term's posting stream, fed incrementally as blocks
/// arrive from the network (the twig join's streaming discipline) or all
/// at once. Blocks decode lazily; a `SkipTo` (or `SkipBelowDoc`) whose
/// target lies past an encoded block's `bounds.hi` drops the block whole,
/// without ever decoding it — counted in `blocks_skipped_undecoded()` and
/// the `iter.blocks_skipped_undecoded` registry counter.
class PostingListIterator final : public IndexIterator {
 public:
  /// `arena` (optional) receives decoded-block scratch; it must outlive
  /// the iterator's last read.
  explicit PostingListIterator(Arena* arena = nullptr) : arena_(arena) {}

  // Move-only (blocks are move-only).
  PostingListIterator(PostingListIterator&&) noexcept = default;
  PostingListIterator& operator=(PostingListIterator&&) noexcept = default;
  PostingListIterator(const PostingListIterator&) = delete;
  PostingListIterator& operator=(const PostingListIterator&) = delete;

  /// Estimate-only iterator for the planner: carries a cardinality and no
  /// data (reading it is an error).
  static PostingListIterator ForEstimate(uint64_t estimate);

  /// Appends one block; empty blocks are dropped. Blocks must arrive in
  /// stream order (each block's bounds at or after the previous block's).
  void Push(PostingBlock block);
  /// Declares the stream complete: no further Push will happen.
  void Close() { closed_ = true; }

  bool Read(index::Posting* out) override;
  bool SkipTo(const index::Posting& target, index::Posting* out) override;
  [[nodiscard]] uint64_t EstimateResultsAmount() const override;
  void Abort() override;

  // --- streaming accessors (used by the twig join) -----------------------
  [[nodiscard]] bool closed() const { return closed_; }
  [[nodiscard]] bool HasBuffered() const { return !blocks_.empty(); }
  [[nodiscard]] bool Exhausted() const { return closed_ && blocks_.empty(); }
  /// Document id of the first unconsumed posting (no decode: an untouched
  /// encoded block answers from its header bounds). Requires HasBuffered().
  [[nodiscard]] index::DocId HeadDoc() const;
  /// Document id of the last buffered posting. Requires HasBuffered().
  [[nodiscard]] index::DocId LastBufferedDoc() const;

  /// Drops every buffered posting with doc id < `doc`; returns how many
  /// were dropped. Blocks entirely below `doc` are skipped undecoded.
  size_t SkipBelowDoc(index::DocId doc);
  /// Drops everything buffered; returns how many postings were dropped.
  size_t SkipAll();
  /// Pops the postings with doc id == `doc` (which must be the head doc,
  /// if any) into `out`; returns how many were taken.
  size_t TakeDoc(index::DocId doc, index::PostingList& out);

  [[nodiscard]] uint64_t blocks_decoded() const { return blocks_decoded_; }
  [[nodiscard]] uint64_t blocks_skipped_undecoded() const {
    return blocks_skipped_undecoded_;
  }

 private:
  void PopFrontBlock();
  /// Decodes the front block if needed and returns it.
  PostingBlock& FrontDecoded();

  Arena* arena_ = nullptr;
  std::deque<PostingBlock> blocks_;
  size_t cursor_ = 0;  // consumed postings of the front block
  bool closed_ = false;
  uint64_t buffered_ = 0;  // unconsumed postings across all blocks
  uint64_t estimate_only_ = 0;
  bool is_estimate_ = false;
  uint64_t blocks_decoded_ = 0;
  uint64_t blocks_skipped_undecoded_ = 0;
};

/// Distinct-union of its children: emits the postings present in any
/// child, in canonical order, with exact duplicates (across *and* within
/// children) emitted once — the iterator form of the merge paths'
/// concat + sort + unique, byte-identical for sorted inputs.
class UnionIterator final : public IndexIterator {
 public:
  explicit UnionIterator(std::vector<std::unique_ptr<IndexIterator>> children);

  bool Read(index::Posting* out) override;
  bool SkipTo(const index::Posting& target, index::Posting* out) override;
  [[nodiscard]] uint64_t EstimateResultsAmount() const override;
  void Abort() override;

 private:
  struct Child {
    std::unique_ptr<IndexIterator> it;
    index::Posting peek;
    bool has_peek = false;
    bool done = false;
  };
  bool Prime(Child& c);

  std::vector<Child> children_;
};

/// Document-level intersection: emits the postings of children[0] whose
/// document appears in every child, in canonical order. Alignment uses a
/// galloping doc-level leapfrog over `SkipTo`, so blocks of the larger
/// children whose doc range misses the smaller ones are never decoded.
class IntersectIterator final : public IndexIterator {
 public:
  explicit IntersectIterator(
      std::vector<std::unique_ptr<IndexIterator>> children);

  bool Read(index::Posting* out) override;
  bool SkipTo(const index::Posting& target, index::Posting* out) override;
  [[nodiscard]] uint64_t EstimateResultsAmount() const override;
  void Abort() override;

 private:
  /// Aligns all children on the next common document >= pending_'s doc.
  /// Returns false at end of input.
  bool AlignOnDoc();

  std::vector<std::unique_ptr<IndexIterator>> children_;
  std::vector<index::Posting> peeks_;   // children_[1..]: last posting read
  std::vector<char> has_peek_;
  index::Posting pending_;              // next unconsumed child-0 posting
  bool has_pending_ = false;
  index::DocId agreed_doc_;             // doc all children currently share
  bool emitting_ = false;
  bool done_ = false;
};

/// Batch materialization of a distinct union — the iterator-tree
/// replacement for every `concat + sort + unique` merge of independently
/// sorted lists (DPP random-split reassembly, holder-side join gathers).
[[nodiscard]] index::PostingList MergeDistinct(std::vector<PostingBlock> blocks);
[[nodiscard]] index::PostingList MergeDistinct(
    std::vector<index::PostingList> lists);

/// Structural-join iterator: wraps the twig machinery (stream alignment,
/// semi-join pruning, tuple enumeration) behind the iterator API for
/// one-shot (non-streaming) joins — local evaluation, holder-side block
/// joins, the executor's local fallback. Inputs are per-pattern-node
/// posting blocks in any storage form; encoded blocks join lazily and are
/// skipped undecoded when the document leapfrog jumps past them.
class StructuralJoinIterator {
 public:
  explicit StructuralJoinIterator(const TreePattern& pattern,
                                  size_t max_answers = size_t{1} << 20);
  ~StructuralJoinIterator();

  StructuralJoinIterator(StructuralJoinIterator&&) noexcept;
  StructuralJoinIterator& operator=(StructuralJoinIterator&&) noexcept;

  /// Adds one input block for pattern node `node`. Blocks of one node
  /// must be added in stream order.
  void AddInput(size_t node, PostingBlock block);

  /// Planner hook: min over the per-node input cardinalities — the twig
  /// result count is bounded by its scarcest stream. Valid before any
  /// decode happens.
  [[nodiscard]] uint64_t EstimateResultsAmount() const;

  /// Runs the join to completion.
  void Run();

  [[nodiscard]] const std::vector<Answer>& answers() const;
  [[nodiscard]] const std::vector<index::DocId>& matched_docs() const;
  [[nodiscard]] std::vector<Answer> TakeAnswers();
  [[nodiscard]] std::vector<index::DocId> TakeMatchedDocs();
  [[nodiscard]] uint64_t postings_consumed() const;
  [[nodiscard]] uint64_t blocks_skipped_undecoded() const;

 private:
  std::unique_ptr<TwigJoin> join_;
  std::vector<uint64_t> input_counts_;
};

/// Cardinality estimate for a twig query over per-node posting counts,
/// derived from the estimate-mode iterator tree the runtime would build
/// (leaf `PostingListIterator`s intersected document-wise). This is the
/// number `kAuto` consumes (docs/query_engine.md#estimates).
[[nodiscard]] uint64_t EstimateTwigResults(
    const TreePattern& pattern, const std::vector<uint64_t>& counts);

}  // namespace kadop::query

#endif  // KADOP_QUERY_ITERATOR_H_
