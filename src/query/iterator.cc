#include "query/iterator.h"

#include <algorithm>
#include <limits>
#include <new>

#include "common/logging.h"
#include "obs/metrics.h"
#include "query/tree_pattern.h"
#include "query/twig_join.h"

namespace kadop::query {

using index::Condition;
using index::DocId;
using index::Posting;
using index::PostingList;

namespace {

struct IterCounters {
  obs::Counter* blocks_decoded;
  obs::Counter* blocks_skipped_undecoded;

  IterCounters() {
    auto& r = obs::MetricRegistry::Default();
    blocks_decoded = r.GetCounter("iter.blocks_decoded");
    blocks_skipped_undecoded = r.GetCounter("iter.blocks_skipped_undecoded");
  }
};

IterCounters& C() {
  static IterCounters counters;
  return counters;
}

/// Smallest posting of document `doc` — the SkipTo target that lands on
/// the first posting with doc id >= `doc`.
[[nodiscard]] Posting DocFloor(const DocId& doc) {
  return Posting{doc.peer, doc.doc, xml::StructuralId{0, 0, 0}};
}

/// First index in [lo, hi) with data[idx] >= target, found by galloping
/// from `lo` (the proved-out exponential probe of the semi-join kernels:
/// cheap when the answer is near, log-bounded when it is far).
[[nodiscard]] size_t GallopLowerBound(const Posting* data, size_t lo,
                                      size_t hi, const Posting& target) {
  if (lo >= hi || !(data[lo] < target)) return lo;
  size_t low = lo;  // invariant: data[low] < target
  size_t step = 1;
  while (low + step < hi && data[low + step] < target) {
    low += step;
    step <<= 1;
  }
  const size_t high = std::min(low + step, hi);
  return static_cast<size_t>(
      std::lower_bound(data + low + 1, data + high, target) - data);
}

}  // namespace

// --- Arena ----------------------------------------------------------------

void* Arena::Allocate(size_t bytes, size_t align) {
  KADOP_CHECK(align != 0 && (align & (align - 1)) == 0,
              "arena: alignment must be a power of two");
  if (bytes == 0) bytes = 1;
  for (;;) {
    if (current_ < chunks_.size()) {
      Chunk& c = chunks_[current_];
      const size_t aligned = (used_ + align - 1) & ~(align - 1);
      if (aligned + bytes <= c.size) {
        used_ = aligned + bytes;
        allocated_bytes_ += bytes;
        return c.data.get() + aligned;
      }
      ++current_;
      used_ = 0;
      continue;  // try the next (possibly recycled) chunk
    }
    const size_t want = std::max(chunk_bytes_, bytes + align);
    chunks_.push_back(Chunk{std::make_unique<uint8_t[]>(want), want});
    current_ = chunks_.size() - 1;
    used_ = 0;
  }
}

void Arena::Reset() {
  current_ = 0;
  used_ = 0;
  allocated_bytes_ = 0;
}

// --- PostingBlock ---------------------------------------------------------

PostingBlock PostingBlock::FromList(PostingList list) {
  PostingBlock b;
  b.count_ = list.size();
  if (!list.empty()) b.bounds_ = Condition{list.front(), list.back()};
  b.owned_ = std::move(list);
  b.data_ = b.owned_.data();
  b.size_ = b.owned_.size();
  return b;
}

PostingBlock PostingBlock::FromShared(
    std::shared_ptr<const PostingList> list) {
  KADOP_CHECK(list != nullptr, "iterator: null shared block");
  PostingBlock b;
  b.count_ = list->size();
  if (!list->empty()) b.bounds_ = Condition{list->front(), list->back()};
  b.data_ = list->data();
  b.size_ = list->size();
  b.shared_ = std::move(list);
  return b;
}

PostingBlock PostingBlock::FromEncoded(
    std::shared_ptr<const std::vector<uint8_t>> bytes, Condition bounds,
    uint64_t count) {
  KADOP_CHECK(bytes != nullptr, "iterator: null encoded block");
  KADOP_CHECK(count == 0 || !(bounds.hi < bounds.lo),
              "iterator: encoded block bounds inverted");
  PostingBlock b;
  b.encoded_ = std::move(bytes);
  b.bounds_ = bounds;
  b.count_ = count;
  return b;
}

Result<PostingBlock> PostingBlock::FromEncodedWithHeader(
    std::shared_ptr<const std::vector<uint8_t>> bytes) {
  KADOP_CHECK(bytes != nullptr, "iterator: null encoded block");
  index::codec::BlockHeader header;
  size_t payload = 0;
  if (Status s = index::codec::ParseBlockHeader(bytes->data(), bytes->size(),
                                                &header, &payload);
      !s.ok()) {
    return s;
  }
  PostingBlock b;
  b.encoded_ = std::move(bytes);
  b.bounds_ = header.bounds;
  b.count_ = header.count;
  b.payload_offset_ = payload;
  return b;
}

void PostingBlock::EnsureDecoded(Arena* arena) {
  if (data_ != nullptr) return;
  const uint8_t* payload = encoded_->data() + payload_offset_;
  const size_t payload_size = encoded_->size() - payload_offset_;
  if (arena != nullptr) {
    Posting* span = arena->AllocateArray<Posting>(count_);
    size_t n = 0;
    const Status s = index::codec::DecodePostingsInto(payload, payload_size,
                                                      span, count_, &n);
    KADOP_CHECK(s.ok(), "iterator: corrupt encoded block");
    KADOP_CHECK(n == count_, "iterator: block count disagrees with header");
    data_ = span;
    size_ = n;
  } else {
    const Status s =
        index::codec::DecodePostings(payload, payload_size, &owned_);
    KADOP_CHECK(s.ok(), "iterator: corrupt encoded block");
    KADOP_CHECK(owned_.size() == count_,
                "iterator: block count disagrees with header");
    data_ = owned_.data();
    size_ = owned_.size();
  }
  KADOP_CHECK(size_ == 0 || (data_[0] == bounds_.lo &&
                             data_[size_ - 1] == bounds_.hi),
              "iterator: block bounds disagree with payload");
}

// --- PostingListIterator --------------------------------------------------

PostingListIterator PostingListIterator::ForEstimate(uint64_t estimate) {
  PostingListIterator it;
  it.is_estimate_ = true;
  it.estimate_only_ = estimate;
  it.closed_ = true;
  return it;
}

void PostingListIterator::Push(PostingBlock block) {
  KADOP_CHECK(!is_estimate_, "iterator: pushing into an estimate iterator");
  KADOP_CHECK(!closed_, "iterator: pushing into a closed stream");
  if (block.empty()) return;
  KADOP_CHECK(blocks_.empty() ||
                  !(block.bounds().lo < blocks_.back().bounds().hi),
              "iterator: blocks out of stream order");
  buffered_ += block.count();
  blocks_.push_back(std::move(block));
}

PostingBlock& PostingListIterator::FrontDecoded() {
  PostingBlock& b = blocks_.front();
  if (!b.decoded()) {
    b.EnsureDecoded(arena_);
    ++blocks_decoded_;
    C().blocks_decoded->Increment();
  }
  return b;
}

void PostingListIterator::PopFrontBlock() {
  blocks_.pop_front();
  cursor_ = 0;
}

bool PostingListIterator::Read(Posting* out) {
  KADOP_CHECK(!is_estimate_, "iterator: reading an estimate iterator");
  if (blocks_.empty()) return false;
  PostingBlock& b = FrontDecoded();
  *out = b.data_[cursor_++];
  --buffered_;
  if (cursor_ == b.size_) PopFrontBlock();
  return true;
}

bool PostingListIterator::SkipTo(const Posting& target, Posting* out) {
  KADOP_CHECK(!is_estimate_, "iterator: reading an estimate iterator");
  while (!blocks_.empty()) {
    PostingBlock& b = blocks_.front();
    if (!b.decoded() && b.bounds().hi < target) {
      // The whole block lies below the target: drop it without decoding.
      buffered_ -= b.count();
      ++blocks_skipped_undecoded_;
      C().blocks_skipped_undecoded->Increment();
      PopFrontBlock();
      continue;
    }
    PostingBlock& d = FrontDecoded();
    const size_t i = GallopLowerBound(d.data_, cursor_, d.size_, target);
    buffered_ -= i - cursor_;
    if (i < d.size_) {
      *out = d.data_[i];
      cursor_ = i + 1;
      --buffered_;
      if (cursor_ == d.size_) PopFrontBlock();
      return true;
    }
    PopFrontBlock();
  }
  return false;
}

uint64_t PostingListIterator::EstimateResultsAmount() const {
  return is_estimate_ ? estimate_only_ : buffered_;
}

void PostingListIterator::Abort() {
  blocks_.clear();
  cursor_ = 0;
  buffered_ = 0;
  closed_ = true;
}

DocId PostingListIterator::HeadDoc() const {
  KADOP_CHECK(!blocks_.empty(), "iterator: head of an empty stream");
  const PostingBlock& b = blocks_.front();
  // Invariant: a partially consumed front block is always decoded.
  if (!b.decoded()) return b.bounds().lo.doc_id();
  return b.data_[cursor_].doc_id();
}

DocId PostingListIterator::LastBufferedDoc() const {
  KADOP_CHECK(!blocks_.empty(), "iterator: tail of an empty stream");
  return blocks_.back().bounds().hi.doc_id();
}

size_t PostingListIterator::SkipBelowDoc(DocId doc) {
  size_t dropped = 0;
  while (!blocks_.empty()) {
    PostingBlock& b = blocks_.front();
    if (!b.decoded()) {
      if (b.bounds().hi.doc_id() < doc) {
        dropped += b.count();
        buffered_ -= b.count();
        ++blocks_skipped_undecoded_;
        C().blocks_skipped_undecoded->Increment();
        PopFrontBlock();
        continue;
      }
      if (!(b.bounds().lo.doc_id() < doc)) break;  // head already >= doc
    }
    PostingBlock& d = FrontDecoded();
    const size_t i =
        GallopLowerBound(d.data_, cursor_, d.size_, DocFloor(doc));
    dropped += i - cursor_;
    buffered_ -= i - cursor_;
    if (i < d.size_) {
      cursor_ = i;
      break;
    }
    PopFrontBlock();
  }
  return dropped;
}

size_t PostingListIterator::SkipAll() {
  size_t dropped = 0;
  while (!blocks_.empty()) {
    const PostingBlock& b = blocks_.front();
    const size_t remaining =
        b.decoded() ? b.size_ - cursor_ : static_cast<size_t>(b.count());
    dropped += remaining;
    buffered_ -= remaining;
    if (!b.decoded()) {
      ++blocks_skipped_undecoded_;
      C().blocks_skipped_undecoded->Increment();
    }
    PopFrontBlock();
  }
  return dropped;
}

size_t PostingListIterator::TakeDoc(DocId doc, PostingList& out) {
  size_t took = 0;
  while (!blocks_.empty() && HeadDoc() == doc) {
    PostingBlock& b = FrontDecoded();
    while (cursor_ < b.size_ && b.data_[cursor_].doc_id() == doc) {
      out.push_back(b.data_[cursor_]);
      ++cursor_;
      ++took;
      --buffered_;
    }
    if (cursor_ < b.size_) break;  // block continues with a later document
    PopFrontBlock();
  }
  return took;
}

// --- UnionIterator --------------------------------------------------------

UnionIterator::UnionIterator(
    std::vector<std::unique_ptr<IndexIterator>> children) {
  children_.reserve(children.size());
  for (auto& it : children) {
    KADOP_CHECK(it != nullptr, "iterator: null union child");
    children_.push_back(Child{std::move(it), Posting{}, false, false});
  }
}

bool UnionIterator::Prime(Child& c) {
  if (!c.has_peek && !c.done) {
    if (c.it->Read(&c.peek)) {
      c.has_peek = true;
    } else {
      c.done = true;
    }
  }
  return c.has_peek;
}

bool UnionIterator::Read(Posting* out) {
  const Posting* min = nullptr;
  for (Child& c : children_) {
    if (Prime(c) && (min == nullptr || c.peek < *min)) min = &c.peek;
  }
  if (min == nullptr) return false;
  const Posting value = *min;
  // Consume every copy of `value`, across and within children, so exact
  // duplicates come out once — the behaviour of sort + unique.
  for (Child& c : children_) {
    while (Prime(c) && c.peek == value) c.has_peek = false;
  }
  *out = value;
  return true;
}

bool UnionIterator::SkipTo(const Posting& target, Posting* out) {
  for (Child& c : children_) {
    if (c.done) continue;
    if (c.has_peek && !(c.peek < target)) continue;
    c.has_peek = c.it->SkipTo(target, &c.peek);
    if (!c.has_peek) c.done = true;
  }
  return Read(out);
}

uint64_t UnionIterator::EstimateResultsAmount() const {
  uint64_t total = 0;
  for (const Child& c : children_) total += c.it->EstimateResultsAmount();
  return total;
}

void UnionIterator::Abort() {
  for (Child& c : children_) {
    c.it->Abort();
    c.has_peek = false;
    c.done = true;
  }
}

// --- IntersectIterator ----------------------------------------------------

IntersectIterator::IntersectIterator(
    std::vector<std::unique_ptr<IndexIterator>> children)
    : children_(std::move(children)) {
  KADOP_CHECK(!children_.empty(), "iterator: intersect needs children");
  for (const auto& c : children_) {
    KADOP_CHECK(c != nullptr, "iterator: null intersect child");
  }
  peeks_.resize(children_.size());
  has_peek_.assign(children_.size(), 0);
}

bool IntersectIterator::AlignOnDoc() {
  for (;;) {
    const DocId d = pending_.doc_id();
    DocId furthest = d;
    bool all_match = true;
    for (size_t i = 1; i < children_.size(); ++i) {
      if (!has_peek_[i] || peeks_[i].doc_id() < d) {
        if (!children_[i]->SkipTo(DocFloor(d), &peeks_[i])) {
          return false;  // a child ran out: no further common document
        }
        has_peek_[i] = 1;
      }
      const DocId di = peeks_[i].doc_id();
      if (di != d) {
        all_match = false;
        if (furthest < di) furthest = di;
      }
    }
    if (all_match) {
      agreed_doc_ = d;
      emitting_ = true;
      return true;
    }
    if (!children_[0]->SkipTo(DocFloor(furthest), &pending_)) return false;
  }
}

bool IntersectIterator::Read(Posting* out) {
  if (done_) return false;
  for (;;) {
    if (!has_pending_) {
      if (!children_[0]->Read(&pending_)) {
        done_ = true;
        return false;
      }
      has_pending_ = true;
    }
    if (emitting_ && pending_.doc_id() == agreed_doc_) {
      *out = pending_;
      has_pending_ = false;
      return true;
    }
    emitting_ = false;
    if (!AlignOnDoc()) {
      done_ = true;
      return false;
    }
  }
}

bool IntersectIterator::SkipTo(const Posting& target, Posting* out) {
  if (done_) return false;
  if (!has_pending_ || pending_ < target) {
    if (!children_[0]->SkipTo(target, &pending_)) {
      done_ = true;
      return false;
    }
    has_pending_ = true;
    if (emitting_ && pending_.doc_id() != agreed_doc_) emitting_ = false;
  }
  return Read(out);
}

uint64_t IntersectIterator::EstimateResultsAmount() const {
  uint64_t best = std::numeric_limits<uint64_t>::max();
  for (const auto& c : children_) {
    best = std::min(best, c->EstimateResultsAmount());
  }
  return best;
}

void IntersectIterator::Abort() {
  for (auto& c : children_) c->Abort();
  done_ = true;
}

// --- MergeDistinct --------------------------------------------------------

PostingList MergeDistinct(std::vector<PostingBlock> blocks) {
  uint64_t total = 0;
  std::vector<std::unique_ptr<IndexIterator>> children;
  children.reserve(blocks.size());
  for (PostingBlock& b : blocks) {
    if (b.empty()) continue;
    total += b.count();
    auto it = std::make_unique<PostingListIterator>();
    it->Push(std::move(b));
    it->Close();
    children.push_back(std::move(it));
  }
  PostingList out;
  out.reserve(total);
  UnionIterator u(std::move(children));
  Posting p;
  while (u.Read(&p)) out.push_back(p);
  return out;
}

PostingList MergeDistinct(std::vector<PostingList> lists) {
  // The union merge assumes each input is itself sorted — true for every
  // store/pull path. Fall back to the classic discipline otherwise so a
  // degenerate producer still gets a canonical result.
  bool all_sorted = true;
  for (const PostingList& l : lists) {
    if (!index::IsSortedPostingList(l)) {
      all_sorted = false;
      break;
    }
  }
  if (!all_sorted) {
    PostingList merged;
    for (PostingList& l : lists) {
      merged.insert(merged.end(), l.begin(), l.end());
    }
    std::sort(merged.begin(), merged.end());
    merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
    return merged;
  }
  std::vector<PostingBlock> blocks;
  blocks.reserve(lists.size());
  for (PostingList& l : lists) {
    blocks.push_back(PostingBlock::FromList(std::move(l)));
  }
  return MergeDistinct(std::move(blocks));
}

// --- StructuralJoinIterator -----------------------------------------------

StructuralJoinIterator::StructuralJoinIterator(const TreePattern& pattern,
                                               size_t max_answers)
    : join_(std::make_unique<TwigJoin>(pattern, max_answers)),
      input_counts_(pattern.size(), 0) {}

StructuralJoinIterator::~StructuralJoinIterator() = default;
StructuralJoinIterator::StructuralJoinIterator(
    StructuralJoinIterator&&) noexcept = default;
StructuralJoinIterator& StructuralJoinIterator::operator=(
    StructuralJoinIterator&&) noexcept = default;

void StructuralJoinIterator::AddInput(size_t node, PostingBlock block) {
  KADOP_CHECK(node < input_counts_.size(), "bad pattern node");
  input_counts_[node] += block.count();
  join_->AppendBlock(node, std::move(block));
}

uint64_t StructuralJoinIterator::EstimateResultsAmount() const {
  uint64_t best = std::numeric_limits<uint64_t>::max();
  for (uint64_t c : input_counts_) best = std::min(best, c);
  return best;
}

void StructuralJoinIterator::Run() {
  join_->CloseAll();
  (void)join_->Advance();
}

const std::vector<Answer>& StructuralJoinIterator::answers() const {
  return join_->answers();
}

const std::vector<DocId>& StructuralJoinIterator::matched_docs() const {
  return join_->matched_docs();
}

std::vector<Answer> StructuralJoinIterator::TakeAnswers() {
  return std::vector<Answer>(join_->answers());
}

std::vector<DocId> StructuralJoinIterator::TakeMatchedDocs() {
  return std::vector<DocId>(join_->matched_docs());
}

uint64_t StructuralJoinIterator::postings_consumed() const {
  return join_->postings_consumed();
}

uint64_t StructuralJoinIterator::blocks_skipped_undecoded() const {
  return join_->blocks_skipped_undecoded();
}

uint64_t EstimateTwigResults(const TreePattern& pattern,
                             const std::vector<uint64_t>& counts) {
  KADOP_CHECK(counts.size() == pattern.size(),
              "iterator: one count per pattern node");
  if (counts.empty()) return 0;
  std::vector<std::unique_ptr<IndexIterator>> leaves;
  leaves.reserve(counts.size());
  for (uint64_t c : counts) {
    leaves.push_back(std::make_unique<PostingListIterator>(
        PostingListIterator::ForEstimate(c)));
  }
  // The runtime joins the streams document-wise; the twig result count is
  // bounded by the document-level intersection of its leaves.
  IntersectIterator tree(std::move(leaves));
  return tree.EstimateResultsAmount();
}

}  // namespace kadop::query
