#ifndef KADOP_QUERY_MESSAGES_H_
#define KADOP_QUERY_MESSAGES_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bloom/structural_filter.h"
#include "index/codec.h"
#include "index/posting.h"
#include "sim/message.h"

namespace kadop::query {

/// Filtering strategies of Section 5.3 plus the baseline and DPP paths.
enum class ReduceMode : uint8_t {
  kAb = 0,     // AB Reducer: ABFs flow root-to-leaves
  kDb = 1,     // DB Reducer: DBFs flow leaves-to-root
  kBloom = 2,  // Bloom Reducer: AB pass, then DB pass
};

/// One pattern node in a reduce plan. `node` is the pattern-node id; the
/// child/parent ids refer to plan entries (a sub-query plan keeps the
/// original pattern ids).
struct ReducePlanNode {
  int node = -1;
  std::string term_key;
  int parent = -1;
  std::vector<int> children;
};

/// The full filtering plan, shipped to every participating term owner.
struct ReducePlan {
  uint64_t query_id = 0;
  sim::NodeIndex query_peer = 0;
  ReduceMode mode = ReduceMode::kDb;
  std::vector<ReducePlanNode> nodes;
  bloom::StructuralFilterParams ab_params;
  bloom::StructuralFilterParams db_params;

  const ReducePlanNode* Find(int node) const {
    for (const auto& n : nodes) {
      if (n.node == node) return &n;
    }
    return nullptr;
  }

  size_t WireBytes() const {
    size_t total = 32;
    for (const auto& n : nodes) total += n.term_key.size() + 16;
    return total;
  }
};

/// Kicks off one node's role in the filtering phase; sent by the query
/// peer to the owner of the node's term.
struct ReduceStart final : sim::Payload {
  ReducePlan plan;
  int node = -1;

  size_t SizeBytes() const override { return plan.WireBytes() + 4; }
  std::string_view TypeName() const override { return "ReduceStart"; }
};

/// An Ancestor Bloom Filter flowing from a parent term owner to a child
/// term owner (AB / Bloom Reducer, top-down phase).
struct AbfMessage final : sim::Payload {
  uint64_t query_id = 0;
  int from_node = -1;
  int to_node = -1;
  std::shared_ptr<bloom::AncestorBloomFilter> filter;

  size_t SizeBytes() const override {
    return 20 + (filter ? filter->SizeBytes() : 0);
  }
  std::string_view TypeName() const override { return "AbfMessage"; }
};

/// A Descendant Bloom Filter flowing from a child to its parent (DB /
/// Bloom Reducer, bottom-up phase).
struct DbfMessage final : sim::Payload {
  uint64_t query_id = 0;
  int from_node = -1;
  int to_node = -1;
  std::shared_ptr<bloom::DescendantBloomFilter> filter;

  size_t SizeBytes() const override {
    return 20 + (filter ? filter->SizeBytes() : 0);
  }
  std::string_view TypeName() const override { return "DbfMessage"; }
};

/// A (possibly reduced) posting list shipped to the query peer at the end
/// of a node's filtering role. Carries accounting so the query peer can
/// compute the paper's normalized-data-volume metric exactly:
/// `full_count` is the unfiltered list size, `ab/db_filter_bytes` the
/// filters this owner sent (counted once, at the sender).
struct ReducedListMessage final : sim::Payload {
  uint64_t query_id = 0;
  int node = -1;
  index::PostingList postings;
  uint64_t full_count = 0;
  uint64_t ab_filter_bytes = 0;
  uint64_t db_filter_bytes = 0;
  /// Captured from the process-wide codec switch at construction time.
  bool compressed = index::codec::CompressionEnabled();

  size_t SizeBytes() const override {
    return 36 + index::codec::MemoizedWireBytes(postings, compressed,
                                                &wire_bytes_memo_);
  }
  std::string_view TypeName() const override { return "ReducedListMessage"; }

 private:
  mutable index::codec::WireSizeMemo wire_bytes_memo_;
};

/// Asks a term owner for its posting-list size (used by the sub-query
/// heuristic and by metrics).
struct TermCountRequest final : sim::Payload {
  std::string term_key;

  size_t SizeBytes() const override { return term_key.size() + 4; }
  std::string_view TypeName() const override { return "TermCountRequest"; }
};

struct TermCountResponse final : sim::Payload {
  uint64_t count = 0;

  size_t SizeBytes() const override { return 8; }
  std::string_view TypeName() const override { return "TermCountResponse"; }
};

}  // namespace kadop::query

#endif  // KADOP_QUERY_MESSAGES_H_
