#include "query/local_eval.h"

#include <algorithm>

#include "index/terms.h"

namespace kadop::query {

using index::DocId;
using index::Posting;
using index::PostingList;

namespace {

void CollectCandidates(const xml::Node& node, const TreePattern& pattern,
                       const DocId& doc_id,
                       std::vector<PostingList>& candidates) {
  if (!node.IsElement()) return;
  // Tokenize direct text once if any word node could need it.
  std::vector<std::string> words;
  bool tokenized = false;
  for (size_t q = 0; q < pattern.size(); ++q) {
    const PatternNode& pn = pattern.node(q);
    switch (pn.kind) {
      case NodeKind::kLabel:
        if (node.label() == pn.term) {
          candidates[q].push_back(
              Posting{doc_id.peer, doc_id.doc, node.sid()});
        }
        break;
      case NodeKind::kWildcard:
        candidates[q].push_back(Posting{doc_id.peer, doc_id.doc, node.sid()});
        break;
      case NodeKind::kWord: {
        if (!tokenized) {
          tokenized = true;
          for (const auto& child : node.children()) {
            if (child->IsText()) {
              index::TokenizeWords(child->text(), words);
            }
          }
        }
        if (std::find(words.begin(), words.end(), pn.term) != words.end()) {
          xml::StructuralId sid = node.sid();
          sid.level += 1;
          candidates[q].push_back(Posting{doc_id.peer, doc_id.doc, sid});
        }
        break;
      }
    }
  }
  for (const auto& child : node.children()) {
    CollectCandidates(*child, pattern, doc_id, candidates);
  }
}

}  // namespace

std::vector<Answer> EvaluateOnDocument(const TreePattern& pattern,
                                       const xml::Document& doc,
                                       const DocId& doc_id) {
  if (!doc.root) return {};
  std::vector<PostingList> candidates(pattern.size());
  CollectCandidates(*doc.root, pattern, doc_id, candidates);

  StructuralJoinIterator join(pattern);
  for (size_t q = 0; q < pattern.size(); ++q) {
    std::sort(candidates[q].begin(), candidates[q].end());
    join.AddInput(q, PostingBlock::FromList(std::move(candidates[q])));
  }
  join.Run();
  return join.TakeAnswers();
}

bool MatchesDocument(const TreePattern& pattern, const xml::Document& doc) {
  return !EvaluateOnDocument(pattern, doc, DocId{0, 0}).empty();
}

}  // namespace kadop::query
