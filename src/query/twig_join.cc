#include "query/twig_join.h"

#include <algorithm>

#include "common/logging.h"
#include "index/structural_join.h"
#include "obs/metrics.h"

namespace kadop::query {

using index::DocId;
using index::Posting;
using index::PostingList;

namespace {

struct JoinCounters {
  obs::Counter* postings_consumed;
  obs::Counter* answers;
  obs::Counter* docs_matched;
  obs::Counter* stalls;

  JoinCounters() {
    auto& r = obs::MetricRegistry::Default();
    postings_consumed = r.GetCounter("query.join.postings_consumed");
    answers = r.GetCounter("query.join.answers");
    docs_matched = r.GetCounter("query.join.docs_matched");
    stalls = r.GetCounter("query.join.stalls");
  }
};

JoinCounters& C() {
  static JoinCounters counters;
  return counters;
}

}  // namespace

TwigJoin::TwigJoin(const TreePattern& pattern, size_t max_answers)
    : pattern_(pattern), max_answers_(max_answers) {
  KADOP_CHECK(!pattern_.nodes.empty(), "empty pattern");
  streams_.reserve(pattern_.size());
  for (size_t i = 0; i < pattern_.size(); ++i) {
    streams_.emplace_back(&arena_);
  }
  scratch_.resize(pattern_.size());
}

void TwigJoin::Append(size_t node, PostingList postings) {
  if (postings.empty()) {
    KADOP_CHECK(node < streams_.size(), "bad stream index");
    return;
  }
  // Validate ordering within the block before it enters the stream (the
  // cross-block check lives in AppendBlock).
  for (size_t i = 1; i < postings.size(); ++i) {
    KADOP_CHECK(!(postings[i] < postings[i - 1]),
                "stream postings out of order");
  }
  AppendBlock(node, PostingBlock::FromList(std::move(postings)));
}

void TwigJoin::AppendShared(size_t node,
                            std::shared_ptr<const PostingList> postings) {
  if (!postings || postings->empty()) {
    KADOP_CHECK(node < streams_.size(), "bad stream index");
    return;
  }
  for (size_t i = 1; i < postings->size(); ++i) {
    KADOP_CHECK(!((*postings)[i] < (*postings)[i - 1]),
                "stream postings out of order");
  }
  AppendBlock(node, PostingBlock::FromShared(std::move(postings)));
}

void TwigJoin::AppendEncoded(size_t node,
                             std::shared_ptr<const std::vector<uint8_t>> bytes,
                             index::Condition bounds, uint64_t count) {
  AppendBlock(node, PostingBlock::FromEncoded(std::move(bytes), bounds, count));
}

void TwigJoin::AppendBlock(size_t node, PostingBlock block) {
  KADOP_CHECK(node < streams_.size(), "bad stream index");
  PostingListIterator& s = streams_[node];
  KADOP_CHECK(!s.closed(), "append after close");
  if (block.empty()) return;
  s.Push(std::move(block));
}

void TwigJoin::Close(size_t node) {
  KADOP_CHECK(node < streams_.size(), "bad stream index");
  streams_[node].Close();
}

void TwigJoin::CloseAll() {
  for (PostingListIterator& s : streams_) s.Close();
}

bool TwigJoin::Done() const {
  for (const PostingListIterator& s : streams_) {
    if (!s.Exhausted()) return false;
  }
  return true;
}

uint64_t TwigJoin::blocks_skipped_undecoded() const {
  uint64_t total = 0;
  for (const PostingListIterator& s : streams_) {
    total += s.blocks_skipped_undecoded();
  }
  return total;
}

uint64_t TwigJoin::blocks_decoded() const {
  uint64_t total = 0;
  for (const PostingListIterator& s : streams_) total += s.blocks_decoded();
  return total;
}

size_t TwigJoin::Advance() {
  size_t produced = 0;
  for (;;) {
    // The smallest document id at any stream head.
    bool have_doc = false;
    DocId doc{};
    for (const PostingListIterator& s : streams_) {
      if (!s.HasBuffered()) continue;
      const DocId d = s.HeadDoc();
      if (!have_doc || d < doc) {
        doc = d;
        have_doc = true;
      }
    }
    if (!have_doc) return produced;

    // Document-level leapfrog: every posting below the furthest stream
    // head is absent from that stream (streams are in order), so it can
    // never join — drop those postings in bulk, skipping still-encoded
    // blocks without decoding them. A stream that has ended with nothing
    // buffered makes *every* remaining document unmatchable.
    DocId target = doc;
    bool unmatchable = false;
    for (const PostingListIterator& s : streams_) {
      if (s.HasBuffered()) {
        const DocId d = s.HeadDoc();
        if (target < d) target = d;
      } else if (s.Exhausted()) {
        unmatchable = true;
      }
    }
    if (unmatchable || doc < target) {
      for (PostingListIterator& s : streams_) {
        const size_t dropped =
            unmatchable ? s.SkipAll() : s.SkipBelowDoc(target);
        if (dropped > 0) {
          consumed_ += dropped;
          C().postings_consumed->Increment(dropped);
        }
      }
      if (unmatchable) return produced;
      continue;
    }

    // Every stream with buffered input heads at `doc`. It is complete iff
    // every stream has either ended or buffered a posting beyond it.
    for (const PostingListIterator& s : streams_) {
      if (s.closed()) continue;
      if (!s.HasBuffered() || !(doc < s.LastBufferedDoc())) {
        C().stalls->Increment();
        return produced;  // must wait for more input
      }
    }

    // Extract this document's candidates from each stream into the reused
    // scratch lists (allocation-free once capacities have warmed up).
    for (PostingList& c : scratch_) c.clear();
    for (size_t i = 0; i < streams_.size(); ++i) {
      const size_t took = streams_[i].TakeDoc(doc, scratch_[i]);
      if (took > 0) {
        consumed_ += took;
        C().postings_consumed->Increment(took);
      }
    }
    const size_t before = answers_.size();
    JoinDocument(doc, scratch_);
    produced += answers_.size() - before;
  }
}

namespace internal {

bool PruneCandidates(const TreePattern& pattern,
                     std::vector<PostingList>& candidates) {
  for (const PostingList& c : candidates) {
    if (c.empty()) return false;
  }
  // Bottom-up semi-join pruning: a parent candidate must have a matching
  // candidate under every child edge.
  for (int q : pattern.BottomUpOrder()) {
    const PatternNode& pn = pattern.node(q);
    if (pn.parent < 0) continue;
    PostingList& parent_cands = candidates[pn.parent];
    parent_cands = pn.axis == Axis::kChild
                       ? index::ParentSemiJoin(parent_cands, candidates[q])
                       : index::AncestorSemiJoin(parent_cands, candidates[q]);
    if (parent_cands.empty()) return false;
  }
  // Top-down: a candidate must have a matching ancestor.
  for (size_t q = 0; q < pattern.size(); ++q) {
    const PatternNode& pn = pattern.node(q);
    if (pn.parent < 0) {
      if (pn.axis == Axis::kChild) {
        std::erase_if(candidates[q],
                      [](const Posting& p) { return p.sid.level != 1; });
      }
      if (candidates[q].empty()) return false;
      continue;
    }
    candidates[q] =
        pn.axis == Axis::kChild
            ? index::ChildSemiJoin(candidates[pn.parent], candidates[q])
            : index::DescendantSemiJoin(candidates[pn.parent],
                                        candidates[q]);
    if (candidates[q].empty()) return false;
  }
  return true;
}

namespace {

void EnumerateRecursive(const TreePattern& pattern, const DocId& doc,
                        const std::vector<PostingList>& candidates,
                        size_t max_answers,
                        std::vector<xml::StructuralId>& assignment,
                        size_t node, std::vector<Answer>& answers) {
  if (answers.size() >= max_answers) return;
  if (node == pattern.size()) {
    answers.push_back(Answer{doc, assignment});
    return;
  }
  const PatternNode& pn = pattern.node(node);
  for (const Posting& cand : candidates[node]) {
    bool ok;
    if (pn.parent >= 0) {
      const xml::StructuralId& parent_sid =
          assignment[static_cast<size_t>(pn.parent)];
      ok = pn.axis == Axis::kChild ? parent_sid.IsParentOf(cand.sid)
                                   : parent_sid.Encloses(cand.sid);
    } else {
      ok = pn.axis != Axis::kChild || cand.sid.level == 1;
    }
    if (ok) {
      assignment[node] = cand.sid;
      EnumerateRecursive(pattern, doc, candidates, max_answers, assignment,
                         node + 1, answers);
    }
  }
}

}  // namespace

size_t EnumerateMatches(const TreePattern& pattern, const DocId& doc,
                        const std::vector<PostingList>& candidates,
                        size_t max_answers, std::vector<Answer>& answers) {
  const size_t before = answers.size();
  std::vector<xml::StructuralId> assignment(pattern.size());
  EnumerateRecursive(pattern, doc, candidates, max_answers, assignment, 0,
                     answers);
  return answers.size() - before;
}

}  // namespace internal

void TwigJoin::JoinDocument(const DocId& doc,
                            std::vector<PostingList>& candidates) {
  if (!internal::PruneCandidates(pattern_, candidates)) return;
  const size_t produced = internal::EnumerateMatches(
      pattern_, doc, candidates, max_answers_, answers_);
  if (answers_.size() >= max_answers_) enumeration_capped_ = true;
  C().answers->Increment(produced);
  if (produced > 0) {
    matched_docs_.push_back(doc);
    C().docs_matched->Increment();
  }
}

}  // namespace kadop::query
