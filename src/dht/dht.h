#ifndef KADOP_DHT_DHT_H_
#define KADOP_DHT_DHT_H_

#include <map>
#include <memory>
#include <vector>

#include "dht/peer.h"
#include "sim/network.h"
#include "sim/scheduler.h"

namespace kadop::dht {

class ReplicationManager;

/// The DHT overlay: owns the peers, assigns ring identifiers, and builds
/// Chord-style routing state (finger tables, successor lists).
///
/// Construction and membership changes use global knowledge (`Stabilize()`
/// recomputes routing tables from the current ring), standing in for the
/// background stabilization protocol of a deployed overlay. *Routing* is
/// never global: every lookup traverses real simulated hops, so locate()
/// cost scales O(log n) with network size as in the paper's Figure 2.
class Dht {
 public:
  Dht(sim::Scheduler* scheduler, sim::Network* network, DhtOptions options);
  ~Dht();

  Dht(const Dht&) = delete;
  Dht& operator=(const Dht&) = delete;

  /// Adds `count` peers and stabilizes. Returns the node index of the
  /// first added peer (indices are contiguous).
  sim::NodeIndex AddPeers(size_t count);

  /// Adds one peer without stabilizing (call Stabilize() after a batch).
  sim::NodeIndex AddPeer();

  /// Marks a peer as failed: its messages are dropped until the next
  /// Stabilize(), which removes it from the ring (its successor, holding
  /// the replicas, takes over its key range).
  void FailPeer(sim::NodeIndex node);

  /// Brings a previously failed peer back: its network endpoint comes up
  /// and its id rejoins the ring under the same identifier, with its local
  /// store intact (crash-stop with durable storage, warm restart). Call
  /// Stabilize() afterwards so routing tables — including the restarted
  /// peer's own, stale from before the crash — are rebuilt.
  void RestartPeer(sim::NodeIndex node);

  /// Recomputes every live peer's routing table from the current ring.
  void Stabilize();

  [[nodiscard]] size_t PeerCount() const { return peers_.size(); }
  [[nodiscard]] size_t LivePeerCount() const { return ring_.size(); }

  DhtPeer* peer(sim::NodeIndex node) { return peers_.at(node).get(); }
  const DhtPeer* peer(sim::NodeIndex node) const {
    return peers_.at(node).get();
  }

  /// Ground-truth owner of a key (successor on the ring). Used for wiring
  /// and assertions; protocol code resolves owners by routing.
  [[nodiscard]] sim::NodeIndex OwnerOf(KeyId key) const;

  /// The `count` successors of `key`'s owner (for replication).
  [[nodiscard]] std::vector<sim::NodeIndex> SuccessorsOf(KeyId key, size_t count) const;

  /// Sum of all per-peer stats.
  [[nodiscard]] DhtStats AggregateStats() const;

  /// Sum of I/O counters over all stores.
  [[nodiscard]] store::IoStats AggregateIo() const;

  const DhtOptions& options() const { return options_; }
  sim::Scheduler* scheduler() { return scheduler_; }
  sim::Network* network() { return network_; }

  /// Hot-data replication control plane (see dht/replication.h). Always
  /// constructed; inert unless `options.repl.enabled`.
  ReplicationManager& replication() { return *replication_; }
  const ReplicationManager& replication() const { return *replication_; }

 private:
  std::unique_ptr<store::PeerStore> MakeStore() const;
  void BuildRoutingTable(DhtPeer* peer);

  sim::Scheduler* scheduler_;
  sim::Network* network_;
  DhtOptions options_;
  std::vector<std::unique_ptr<DhtPeer>> peers_;
  /// Live ring: id -> node index, sorted by id.
  std::map<KeyId, sim::NodeIndex> ring_;
  uint64_t next_peer_seq_ = 0;
  std::unique_ptr<ReplicationManager> replication_;
};

}  // namespace kadop::dht

#endif  // KADOP_DHT_DHT_H_
