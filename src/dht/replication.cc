#include "dht/replication.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "dht/dht.h"
#include "dht/ring.h"
#include "obs/metrics.h"

namespace kadop::dht {

using sim::NodeIndex;

namespace {

/// Combined ingress load of a holder, read from the process-wide registry
/// (the same counters the serving bench reports per window).
uint64_t HolderLoad(NodeIndex node) {
  auto& r = obs::MetricRegistry::Default();
  const std::string base = "load.holder." + std::to_string(node);
  return r.GetCounter(base + ".gets")->value() +
         r.GetCounter(base + ".appends")->value();
}

}  // namespace

// ---------------------------------------------------------------------------
// KeyLoadTracker

KeyLoadTracker::KeyLoadTracker(size_t capacity) : capacity_(capacity) {
  KADOP_CHECK(capacity_ > 0, "key load tracker needs capacity");
  auto& r = obs::MetricRegistry::Default();
  eviction_counter_ = r.GetCounter("load.key.evictions");
  tracked_gauge_ = r.GetGauge("load.key.tracked");
}

void KeyLoadTracker::RecordGet(const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    if (entries_.size() >= capacity_) {
      // Evict the coldest entry (smallest count; ties: the map's first,
      // i.e. lexically smallest, key). The newcomer inherits the evicted
      // count — the space-saving guarantee that a genuinely hot key cannot
      // be hidden by a stream of one-off keys.
      auto victim = entries_.begin();
      for (auto e = std::next(entries_.begin()); e != entries_.end(); ++e) {
        if (e->second.count < victim->second.count) victim = e;
      }
      const uint64_t inherited = victim->second.count;
      entries_.erase(victim);
      evictions_++;
      eviction_counter_->Increment();
      it = entries_.emplace(key, Entry{inherited, 0}).first;
    } else {
      it = entries_.emplace(key, Entry{}).first;
    }
    tracked_gauge_->Set(static_cast<double>(entries_.size()));
  }
  it->second.count++;
  it->second.window_gets++;
}

std::map<std::string, uint64_t> KeyLoadTracker::DrainWindow() {
  std::map<std::string, uint64_t> out;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.window_gets > 0) out[it->first] = it->second.window_gets;
    it->second.window_gets = 0;
    it->second.count /= 2;
    if (it->second.count == 0) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
  tracked_gauge_->Set(static_cast<double>(entries_.size()));
  return out;
}

// ---------------------------------------------------------------------------
// Power-of-two-choices

NodeIndex PowerOfTwoChoice(
    const std::vector<NodeIndex>& candidates,
    const std::function<uint64_t(NodeIndex)>& load, Rng& rng) {
  KADOP_CHECK(!candidates.empty(), "power-of-two-choices with no candidates");
  if (candidates.size() == 1) return candidates[0];
  const size_t a = rng.Uniform(candidates.size());
  size_t b = rng.Uniform(candidates.size() - 1);
  if (b >= a) b++;  // second draw over the remaining candidates
  const NodeIndex na = candidates[a];
  const NodeIndex nb = candidates[b];
  const uint64_t la = load(na);
  const uint64_t lb = load(nb);
  if (la != lb) return la < lb ? na : nb;
  return na < nb ? na : nb;  // load tie: draw-order independent
}

// ---------------------------------------------------------------------------
// ReplicationManager

ReplicationManager::ReplicationManager(Dht* dht, ReplicationOptions options)
    : dht_(dht),
      options_(options),
      tracker_(options.max_tracked_keys),
      rng_(options.seed) {
  KADOP_CHECK(dht_ != nullptr, "ReplicationManager requires a Dht");
  KADOP_CHECK(options_.replicas >= 1, "replicas must be >= 1");
  auto& r = obs::MetricRegistry::Default();
  promotions_ = r.GetCounter("repl.promotions");
  demotions_ = r.GetCounter("repl.demotions");
  replica_gets_ = r.GetCounter("repl.replica_gets");
  stale_rejects_ = r.GetCounter("repl.stale_rejects");
  windows_ = r.GetCounter("repl.windows");
}

void ReplicationManager::SetEnabled(bool on) {
  if (options_.enabled == on) return;
  options_.enabled = on;
  if (on) return;
  // Turning off demotes everything so replica stores don't keep stale
  // copies around.
  for (auto& [key, state] : keys_) {
    if (!state.replicas.empty()) Demote(key, state);
  }
  keys_.clear();
  window_end_ = -1.0;
}

uint64_t ReplicationManager::OwnerVersion(const std::string& key) const {
  return dht_->peer(dht_->OwnerOf(HashKey(key)))->store()->PostingVersion(key);
}

void ReplicationManager::MaybeTick(double now) {
  if (!options_.enabled) return;
  if (window_end_ < 0) {
    window_end_ = now + options_.window_s;
    return;
  }
  if (now < window_end_) return;
  ProcessWindow();
  window_end_ = now + options_.window_s;
}

void ReplicationManager::ProcessWindow() {
  windows_->Increment();
  const std::map<std::string, uint64_t> counts = tracker_.DrainWindow();

  // Streak bookkeeping for keys already under management.
  for (auto it = keys_.begin(); it != keys_.end();) {
    KeyState& st = it->second;
    const auto cit = counts.find(it->first);
    const uint64_t gets = cit == counts.end() ? 0 : cit->second;
    if (gets >= options_.hot_gets_per_window) {
      st.hot_streak++;
      st.cool_streak = 0;
    } else {
      st.hot_streak = 0;
      st.cool_streak =
          gets <= options_.cool_gets_per_window ? st.cool_streak + 1 : 0;
    }
    if (!st.replicas.empty() && st.cool_streak >= options_.cool_windows) {
      Demote(it->first, st);
    }
    if (st.replicas.empty() && st.hot_streak == 0) {
      it = keys_.erase(it);
    } else {
      ++it;
    }
  }
  // Keys newly above the hotness threshold start a streak.
  for (const auto& [key, gets] : counts) {
    if (gets < options_.hot_gets_per_window) continue;
    if (keys_.count(key) > 0) continue;
    keys_[key].hot_streak = 1;
  }
  // Promote matured streaks; refresh replicas that missed their copy or
  // whose stamped version fell behind the owner (invalidation-or-forward:
  // in between, the version guard forwards their gets to the owner).
  for (auto& [key, st] : keys_) {
    if (st.replicas.empty()) {
      if (st.hot_streak >= options_.hot_windows) Promote(key, st);
      continue;
    }
    const uint64_t version = OwnerVersion(key);
    const NodeIndex owner = dht_->OwnerOf(HashKey(key));
    for (const Replica& r : st.replicas) {
      if (!dht_->network()->IsNodeUp(r.node) || r.node == owner) continue;
      if (r.ready && r.version == version) continue;
      if (copy_fn_) copy_fn_(key, owner, r.node, version);
    }
  }

  // Per-window max-ingress gauges: the saturation signal the serving bench
  // reports (largest per-window gets any single holder absorbed).
  auto& r = obs::MetricRegistry::Default();
  for (size_t node = 0; node < dht_->PeerCount(); ++node) {
    const auto n = static_cast<NodeIndex>(node);
    const uint64_t total =
        r.GetCounter("load.holder." + std::to_string(node) + ".gets")->value();
    const uint64_t seen = holder_gets_seen_[n];
    holder_gets_seen_[n] = total;
    const auto delta = static_cast<double>(total - seen);
    obs::Gauge* gauge = r.GetGauge("load.holder." + std::to_string(node) +
                                   ".max_ingress");
    if (delta > gauge->value()) gauge->Set(delta);
  }
}

void ReplicationManager::Promote(const std::string& key, KeyState& st) {
  const std::vector<NodeIndex> succ =
      dht_->SuccessorsOf(HashKey(key), options_.replicas + 1);
  if (succ.size() <= 1) return;  // ring too small for a copy
  const NodeIndex owner = succ[0];
  const uint64_t version = OwnerVersion(key);
  for (size_t i = 1; i < succ.size(); ++i) {
    if (!dht_->network()->IsNodeUp(succ[i])) continue;
    Replica r;
    r.node = succ[i];
    r.version = version;
    st.replicas.push_back(r);
    if (copy_fn_) copy_fn_(key, owner, succ[i], version);
  }
  if (st.replicas.empty()) return;
  promotions_->Increment();
}

void ReplicationManager::Demote(const std::string& key, KeyState& st) {
  for (const Replica& r : st.replicas) {
    if (!dht_->network()->IsNodeUp(r.node)) continue;
    if (drop_fn_) drop_fn_(key, r.node);
  }
  st.replicas.clear();
  st.cool_streak = 0;
  demotions_->Increment();
}

NodeIndex ReplicationManager::RouteGet(const std::string& key) {
  if (!options_.enabled) return kNoReplica;
  const auto it = keys_.find(key);
  if (it == keys_.end() || it->second.replicas.empty()) return kNoReplica;
  const NodeIndex owner = dht_->OwnerOf(HashKey(key));
  const uint64_t version = OwnerVersion(key);
  std::vector<NodeIndex> candidates;
  if (dht_->network()->IsNodeUp(owner)) candidates.push_back(owner);
  for (const Replica& r : it->second.replicas) {
    // Only ready, live, version-fresh flat copies may serve directly;
    // everything else (staged directory state, stale copies) exists for
    // crash takeover and is reached through ownership, not routing.
    if (!r.ready || !r.flat || r.version != version) continue;
    if (r.node == owner || !dht_->network()->IsNodeUp(r.node)) continue;
    candidates.push_back(r.node);
  }
  if (candidates.empty()) return kNoReplica;
  const NodeIndex pick = PowerOfTwoChoice(candidates, HolderLoad, rng_);
  return pick == owner ? kNoReplica : pick;
}

bool ReplicationManager::CanServeReplica(
    const std::string& key, NodeIndex node,
    uint64_t authoritative_version) const {
  if (!options_.enabled) return false;
  const auto it = keys_.find(key);
  if (it == keys_.end()) return false;
  for (const Replica& r : it->second.replicas) {
    if (r.node != node) continue;
    return r.ready && r.flat && r.version == authoritative_version;
  }
  return false;
}

void ReplicationManager::OnReplicaInstalled(const std::string& key,
                                            NodeIndex target,
                                            uint64_t version, bool flat) {
  const auto it = keys_.find(key);
  if (it == keys_.end()) return;  // demoted while the copy was in flight
  for (Replica& r : it->second.replicas) {
    if (r.node != target) continue;
    r.ready = true;
    r.version = version;
    r.flat = flat;
    return;
  }
}

void ReplicationManager::CountReplicaGet() { replica_gets_->Increment(); }

void ReplicationManager::CountStaleReject() { stale_rejects_->Increment(); }

bool ReplicationManager::IsReplicated(const std::string& key) const {
  const auto it = keys_.find(key);
  return it != keys_.end() && !it->second.replicas.empty();
}

std::vector<NodeIndex> ReplicationManager::ReplicaNodes(
    const std::string& key) const {
  std::vector<NodeIndex> out;
  const auto it = keys_.find(key);
  if (it == keys_.end()) return out;
  for (const Replica& r : it->second.replicas) out.push_back(r.node);
  return out;
}

}  // namespace kadop::dht
