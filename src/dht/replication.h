#ifndef KADOP_DHT_REPLICATION_H_
#define KADOP_DHT_REPLICATION_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/random.h"
#include "sim/network.h"

namespace kadop::obs {
class Counter;
class Gauge;
}  // namespace kadop::obs

namespace kadop::dht {

class Dht;

/// Knobs of the hot-data replication layer (ROADMAP item 2). Off by
/// default: with `enabled == false` the manager records bounded key-load
/// statistics but never promotes, never routes, and never ticks, so every
/// seeded baseline is byte-identical to the pre-replication build.
struct ReplicationOptions {
  bool enabled = false;
  /// Copies per hot key beyond the owner (placed on the owner's successors).
  uint32_t replicas = 2;
  /// Load-window length (virtual seconds). Windows are activity-driven:
  /// they close lazily when the next Get/Append arrives past the boundary,
  /// so an idle network schedules nothing and RunUntilIdle terminates.
  double window_s = 1.0;
  /// A key is hot when it serves at least this many gets per window...
  uint64_t hot_gets_per_window = 24;
  /// ...for this many consecutive windows (promotion hysteresis).
  uint32_t hot_windows = 2;
  /// A replicated key cools when it drops below this many gets per window...
  uint64_t cool_gets_per_window = 4;
  /// ...for this many consecutive windows (demotion hysteresis).
  uint32_t cool_windows = 3;
  /// Bound on distinct keys the load tracker follows (satellite fix for the
  /// previously unbounded per-key registry counters).
  size_t max_tracked_keys = 128;
  /// Seed of the power-of-two-choices routing draw.
  uint64_t seed = 31;
};

/// Bounded per-key get-load tracker (space-saving top-K). Replaces the old
/// `load.key.<key>` registry counters, whose cardinality grew with every
/// distinct key ever served. The tracker holds at most `capacity` keys; a
/// new key evicts the coldest tracked one (deterministic tie-break: lexically
/// smallest key) and inherits its count, the classic space-saving guarantee
/// that a truly hot key cannot be hidden by churn. Counts decay by half per
/// drained window so stale heat fades.
class KeyLoadTracker {
 public:
  explicit KeyLoadTracker(size_t capacity);

  /// Records one get served for `key`.
  void RecordGet(const std::string& key);

  /// Closes the current window: returns per-key gets observed since the
  /// last drain, halves the long-run counts, and forgets keys that decayed
  /// to zero. Iteration order is the keys' lexicographic order.
  std::map<std::string, uint64_t> DrainWindow();

  [[nodiscard]] size_t tracked() const { return entries_.size(); }
  [[nodiscard]] uint64_t evictions() const { return evictions_; }

 private:
  struct Entry {
    uint64_t count = 0;         // decayed long-run estimate
    uint64_t window_gets = 0;  // gets since the last drain
  };

  size_t capacity_;
  uint64_t evictions_ = 0;
  std::map<std::string, Entry> entries_;
  obs::Counter* eviction_counter_;
  obs::Gauge* tracked_gauge_;
};

/// Deterministic power-of-two-choices: draw two candidates with `rng`, keep
/// the one with the smaller load (ties: the smaller node index, so the
/// outcome never depends on draw order). `candidates` must be non-empty.
[[nodiscard]] sim::NodeIndex PowerOfTwoChoice(
    const std::vector<sim::NodeIndex>& candidates,
    const std::function<uint64_t(sim::NodeIndex)>& load, Rng& rng);

/// Hot-data replication control plane of one DHT instance.
///
/// Tracks per-key get load in lazy windows, promotes keys that stay hot to
/// replicas on the owner's first `replicas` successors (a replica is a
/// planned handoff with a version stamp, shipped by the core layer through
/// the `CopyFn` hook), routes gets to the least-loaded live copy
/// (power-of-two-choices over the `load.holder.*` counters), and demotes
/// when the load subsides.
///
/// Consistency: a replica serves a get only while its stamped version
/// matches the owner store's current posting version for the key (the same
/// staleness-oracle guard as the query-side posting cache); otherwise the
/// request is forwarded to the owner, and the next window re-copies the key.
/// Only "flat" keys — plain store reads at the owner (overflow blocks,
/// unpartitioned terms) — are served by replicas directly; partitioned term
/// roots are replicated as staged directory state for crash takeover only.
class ReplicationManager {
 public:
  /// Ships a versioned copy of `key` from `owner` to `target` (installed by
  /// the core layer as a ReplicaInstall application message).
  using CopyFn = std::function<void(const std::string& key,
                                    sim::NodeIndex owner,
                                    sim::NodeIndex target, uint64_t version)>;
  /// Tells `target` to discard its copy of `key`.
  using DropFn =
      std::function<void(const std::string& key, sim::NodeIndex target)>;

  ReplicationManager(Dht* dht, ReplicationOptions options);

  ReplicationManager(const ReplicationManager&) = delete;
  ReplicationManager& operator=(const ReplicationManager&) = delete;

  void SetCopyFn(CopyFn fn) { copy_fn_ = std::move(fn); }
  void SetDropFn(DropFn fn) { drop_fn_ = std::move(fn); }

  [[nodiscard]] bool enabled() const { return options_.enabled; }
  /// Runtime toggle (shell `repl on|off`). Turning off demotes everything.
  void SetEnabled(bool on);
  [[nodiscard]] const ReplicationOptions& options() const { return options_; }

  /// Records one get served for `key` (always on, bounded — see
  /// KeyLoadTracker).
  void RecordKeyGet(const std::string& key) { tracker_.RecordGet(key); }

  /// Lazy window tick, called from the Get/Append serve paths. No-op until
  /// the virtual clock passes the current window boundary; never schedules
  /// its own events.
  void MaybeTick(double now);

  /// Routing decision for a client get of `key`: the node to send the
  /// request to directly, or `kNoReplica` to use the normal routed path to
  /// the owner. Only ready, live, version-fresh flat replicas compete with
  /// the owner; the draw is power-of-two-choices over the holder load
  /// counters with this manager's seeded rng.
  static constexpr sim::NodeIndex kNoReplica =
      static_cast<sim::NodeIndex>(~0U);
  [[nodiscard]] sim::NodeIndex RouteGet(const std::string& key);

  /// Replica-side serve guard: true when `node` holds a ready flat replica
  /// of `key` whose stamped version equals `authoritative_version`.
  [[nodiscard]] bool CanServeReplica(const std::string& key,
                                     sim::NodeIndex node,
                                     uint64_t authoritative_version) const;

  /// Control-plane acknowledgement that `target` durably installed the
  /// copy of `key` stamped `version` (zero-cost introspection standing in
  /// for an install ack message; see docs/replication.md).
  void OnReplicaInstalled(const std::string& key, sim::NodeIndex target,
                          uint64_t version, bool flat);

  // -- Counters shared with the serve path ----------------------------------
  void CountReplicaGet();
  void CountStaleReject();

  // -- Introspection (tests, shell `repl stats`) ----------------------------
  [[nodiscard]] size_t ReplicatedKeyCount() const { return keys_.size(); }
  [[nodiscard]] bool IsReplicated(const std::string& key) const;
  [[nodiscard]] std::vector<sim::NodeIndex> ReplicaNodes(
      const std::string& key) const;
  [[nodiscard]] const KeyLoadTracker& tracker() const { return tracker_; }

 private:
  struct Replica {
    sim::NodeIndex node = 0;
    uint64_t version = 0;
    bool ready = false;
    bool flat = true;
  };
  struct KeyState {
    uint32_t hot_streak = 0;
    uint32_t cool_streak = 0;
    std::vector<Replica> replicas;
  };

  void ProcessWindow();
  void Promote(const std::string& key, KeyState& state);
  void Demote(const std::string& key, KeyState& state);
  /// Current posting version at the owner's store (the staleness oracle).
  [[nodiscard]] uint64_t OwnerVersion(const std::string& key) const;

  Dht* dht_;
  ReplicationOptions options_;
  KeyLoadTracker tracker_;
  Rng rng_;
  double window_end_ = -1.0;  // <0: no window open yet
  /// Keys with a hot streak or live replicas. std::map: promotion /
  /// copy / demotion order is the keys' lexicographic order (KDP012).
  std::map<std::string, KeyState> keys_;
  /// Last seen per-holder gets totals, for the max_ingress gauges.
  std::map<sim::NodeIndex, uint64_t> holder_gets_seen_;
  CopyFn copy_fn_;
  DropFn drop_fn_;

  obs::Counter* promotions_;
  obs::Counter* demotions_;
  obs::Counter* replica_gets_;
  obs::Counter* stale_rejects_;
  obs::Counter* windows_;
};

}  // namespace kadop::dht

#endif  // KADOP_DHT_REPLICATION_H_
