#ifndef KADOP_DHT_RING_H_
#define KADOP_DHT_RING_H_

#include <string_view>

#include "common/hash.h"
#include "dht/messages.h"

namespace kadop::dht {

/// Hashes a string key (term, pseudo-key, uri) onto the identifier ring.
inline KeyId HashKey(std::string_view key) { return Fnv1a64(key); }

/// True if `x` lies in the half-open ring interval (a, b], with wraparound.
/// If a == b the interval covers the whole ring.
[[nodiscard]] inline bool InHalfOpen(KeyId x, KeyId a, KeyId b) {
  if (a == b) return true;
  if (a < b) return x > a && x <= b;
  return x > a || x <= b;  // wrapped
}

/// True if `x` lies in the open ring interval (a, b), with wraparound.
[[nodiscard]] inline bool InOpen(KeyId x, KeyId a, KeyId b) {
  if (a == b) return x != a;
  if (a < b) return x > a && x < b;
  return x > a || x < b;
}

}  // namespace kadop::dht

#endif  // KADOP_DHT_RING_H_
