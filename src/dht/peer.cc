#include "dht/peer.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "dht/dht.h"
#include "dht/ring.h"
#include "obs/metrics.h"

namespace kadop::dht {

using index::Posting;
using index::PostingList;
using sim::Message;
using sim::NodeIndex;
using sim::TrafficCategory;

namespace {

// Process-wide mirrors of the per-peer DhtStats fields (see
// docs/observability.md for the per-instance vs. registry split).
struct DhtCounters {
  obs::Counter* locates;
  obs::Counter* routed_messages;
  obs::Counter* route_hops;
  obs::Counter* appends_received;
  obs::Counter* postings_stored;
  obs::Counter* gets_served;
  obs::Counter* blocks_sent;
  obs::Counter* app_requests;
  obs::Counter* get_timeouts;
  obs::Histogram* hops_per_delivery;

  DhtCounters() {
    auto& r = obs::MetricRegistry::Default();
    locates = r.GetCounter("dht.locates");
    routed_messages = r.GetCounter("dht.routed_messages");
    route_hops = r.GetCounter("dht.route_hops");
    appends_received = r.GetCounter("dht.appends_received");
    postings_stored = r.GetCounter("dht.postings_stored");
    gets_served = r.GetCounter("dht.gets_served");
    blocks_sent = r.GetCounter("dht.blocks_sent");
    app_requests = r.GetCounter("dht.app_requests");
    get_timeouts = r.GetCounter("dht.get_timeouts");
    hops_per_delivery =
        r.GetHistogram("dht.hops_per_delivery", obs::CountBuckets());
  }
};

DhtCounters& C() {
  static DhtCounters counters;
  return counters;
}

}  // namespace

DhtPeer::DhtPeer(Dht* dht, sim::Network* network, KeyId id,
                 std::unique_ptr<store::PeerStore> store)
    : dht_(dht), network_(network), id_(id), store_(std::move(store)) {
  KADOP_CHECK(store_ != nullptr, "peer requires a store");
}

// ---------------------------------------------------------------------------
// Ring geometry

bool DhtPeer::IsResponsible(KeyId key) const {
  return InHalfOpen(key, routing_.predecessor_id, id_);
}

NodeIndex DhtPeer::NextHop(KeyId key) const {
  if (InHalfOpen(key, id_, routing_.successor_id)) {
    return routing_.successor_node;
  }
  // Closest preceding finger: scan from the largest span downwards.
  for (auto it = routing_.fingers.rbegin(); it != routing_.fingers.rend();
       ++it) {
    if (it->second != node_ && InOpen(it->first, id_, key)) {
      return it->second;
    }
  }
  return routing_.successor_node;
}

// ---------------------------------------------------------------------------
// Disk model

void DhtPeer::ScheduleAfterDisk(double bytes, bool write,
                                std::function<void()> fn) {
  const DhtOptions& opt = dht_->options();
  const double bw =
      write ? opt.disk_write_bytes_per_s : opt.disk_read_bytes_per_s;
  const double now = network_->Now();
  const double start = std::max(now, disk_free_at_);
  const double end = start + opt.disk_seek_s + bytes / bw;
  disk_free_at_ = end;
  network_->scheduler()->At(end, std::move(fn));
}

// ---------------------------------------------------------------------------
// Client-side operations

RequestId DhtPeer::NextRequestId() {
  return (static_cast<uint64_t>(node_) << 32) | next_req_++;
}

void DhtPeer::Locate(const std::string& key, LocateCallback cb) {
  auto req = std::make_shared<LocateRequest>();
  req->req_id = NextRequestId();
  req->origin = node_;
  pending_locate_[req->req_id] = std::move(cb);
  stats_.locates++;
  C().locates->Increment();

  auto env = std::make_shared<RouteEnvelope>();
  env->key = HashKey(key);
  env->inner = req;
  env->category = TrafficCategory::kControl;
  RouteEnvelopeMsg(std::move(env));
}

void DhtPeer::Append(const std::string& key, PostingList postings,
                     std::function<void()> on_ack,
                     std::vector<std::string> doc_types) {
  auto req = std::make_shared<AppendRequest>();
  req->key = key;
  req->postings = std::move(postings);
  req->doc_types = std::move(doc_types);
  req->per_entry = dht_->options().per_entry_reconciliation;
  req->replicate = dht_->options().replication;
  if (on_ack) {
    req->ack_req_id = NextRequestId();
    req->ack_origin = node_;
    pending_ack_[req->ack_req_id] = std::move(on_ack);
  }
  auto env = std::make_shared<RouteEnvelope>();
  env->key = HashKey(key);
  env->inner = std::move(req);
  env->category = TrafficCategory::kPublish;
  RouteEnvelopeMsg(std::move(env));
}

void DhtPeer::Get(const std::string& key, GetCallback cb, double timeout_s) {
  GetSpec spec;
  spec.key = key;
  spec.pipelined = false;
  spec.timeout_s = timeout_s;

  auto req = std::make_shared<GetRequest>();
  req->key = spec.key;
  req->req_id = NextRequestId();
  req->origin = node_;
  req->pipelined = false;
  req->lo = spec.lo;
  req->hi = spec.hi;

  PendingGet pending;
  pending.accumulate = true;
  pending.on_done = std::move(cb);
  pending_get_[req->req_id] = std::move(pending);
  if (timeout_s > 0) ArmTimeout(req->req_id, timeout_s);

  auto env = std::make_shared<RouteEnvelope>();
  env->key = HashKey(key);
  env->inner = std::move(req);
  env->category = TrafficCategory::kControl;
  RouteEnvelopeMsg(std::move(env));
}

void DhtPeer::GetBlocks(const GetSpec& spec, BlockCallback on_block) {
  auto req = std::make_shared<GetRequest>();
  req->key = spec.key;
  req->req_id = NextRequestId();
  req->origin = node_;
  req->pipelined = spec.pipelined;
  req->block_postings = spec.block_postings != 0
                            ? spec.block_postings
                            : dht_->options().pipeline_block_postings;
  req->lo = spec.lo;
  req->hi = spec.hi;

  PendingGet pending;
  pending.on_block = std::move(on_block);
  pending_get_[req->req_id] = std::move(pending);
  if (spec.timeout_s > 0) ArmTimeout(req->req_id, spec.timeout_s);

  auto env = std::make_shared<RouteEnvelope>();
  env->key = HashKey(spec.key);
  env->inner = std::move(req);
  env->category = TrafficCategory::kControl;
  RouteEnvelopeMsg(std::move(env));
}

void DhtPeer::Delete(const std::string& key, const Posting& posting) {
  auto req = std::make_shared<DeleteRequest>();
  req->key = key;
  req->posting = posting;
  auto env = std::make_shared<RouteEnvelope>();
  env->key = HashKey(key);
  env->inner = std::move(req);
  env->category = TrafficCategory::kControl;
  RouteEnvelopeMsg(std::move(env));
}

void DhtPeer::DeleteDoc(const std::string& key, const index::DocId& doc) {
  auto req = std::make_shared<DeleteRequest>();
  req->key = key;
  req->whole_doc = true;
  req->doc = doc;
  auto env = std::make_shared<RouteEnvelope>();
  env->key = HashKey(key);
  env->inner = std::move(req);
  env->category = TrafficCategory::kControl;
  RouteEnvelopeMsg(std::move(env));
}

void DhtPeer::PutBlob(const std::string& key, std::string blob) {
  auto req = std::make_shared<BlobPutRequest>();
  req->key = key;
  req->blob = std::move(blob);
  auto env = std::make_shared<RouteEnvelope>();
  env->key = HashKey(key);
  env->inner = std::move(req);
  env->category = TrafficCategory::kPublish;
  RouteEnvelopeMsg(std::move(env));
}

void DhtPeer::DeleteBlobKey(const std::string& key) {
  auto req = std::make_shared<BlobDeleteRequest>();
  req->key = key;
  auto env = std::make_shared<RouteEnvelope>();
  env->key = HashKey(key);
  env->inner = std::move(req);
  env->category = TrafficCategory::kControl;
  RouteEnvelopeMsg(std::move(env));
}

void DhtPeer::GetBlob(const std::string& key, BlobCallback cb) {
  auto req = std::make_shared<BlobGetRequest>();
  req->key = key;
  req->req_id = NextRequestId();
  req->origin = node_;
  pending_blob_[req->req_id] = std::move(cb);
  auto env = std::make_shared<RouteEnvelope>();
  env->key = HashKey(key);
  env->inner = std::move(req);
  env->category = TrafficCategory::kControl;
  RouteEnvelopeMsg(std::move(env));
}

void DhtPeer::RouteApp(const std::string& key, sim::PayloadPtr inner,
                       TrafficCategory category, AppResponseCallback cb) {
  auto req = std::make_shared<AppRequest>();
  req->key = key;
  req->origin = node_;
  req->inner = std::move(inner);
  if (cb) {
    req->req_id = NextRequestId();
    pending_app_[req->req_id] = std::move(cb);
  }
  auto env = std::make_shared<RouteEnvelope>();
  env->key = HashKey(key);
  env->inner = std::move(req);
  env->category = category;
  RouteEnvelopeMsg(std::move(env));
}

void DhtPeer::Reply(NodeIndex origin, RequestId req_id, sim::PayloadPtr inner,
                    TrafficCategory category) {
  auto resp = std::make_shared<AppResponse>();
  resp->req_id = req_id;
  resp->inner = std::move(inner);
  network_->Send(Message{node_, origin, category, std::move(resp)});
}

void DhtPeer::SendApp(NodeIndex target, sim::PayloadPtr inner,
                      TrafficCategory category) {
  auto req = std::make_shared<AppRequest>();
  req->origin = node_;
  req->inner = std::move(inner);
  network_->Send(Message{node_, target, category, std::move(req)});
}

void DhtPeer::CallApp(NodeIndex target, sim::PayloadPtr inner,
                      TrafficCategory category, AppResponseCallback cb) {
  auto req = std::make_shared<AppRequest>();
  req->origin = node_;
  req->inner = std::move(inner);
  if (cb) {
    req->req_id = NextRequestId();
    pending_app_[req->req_id] = std::move(cb);
  }
  network_->Send(Message{node_, target, category, std::move(req)});
}

void DhtPeer::ArmTimeout(RequestId req_id, double timeout_s) {
  network_->scheduler()->After(timeout_s, [this, req_id]() {
    auto it = pending_get_.find(req_id);
    if (it == pending_get_.end()) return;  // completed in time
    C().get_timeouts->Increment();
    PendingGet pending = std::move(it->second);
    pending_get_.erase(it);
    if (pending.accumulate) {
      if (pending.on_done) {
        pending.on_done(GetResult{std::move(pending.accumulated), false});
      }
    } else if (pending.on_block) {
      pending.on_block({}, /*last=*/true, /*complete=*/false);
    }
  });
}

// ---------------------------------------------------------------------------
// Routing

void DhtPeer::RouteEnvelopeMsg(std::shared_ptr<RouteEnvelope> env) {
  stats_.routed_messages++;
  C().routed_messages->Increment();
  if (IsResponsible(env->key)) {
    // Local delivery (free).
    network_->Send(Message{node_, node_, env->category, std::move(env)});
    return;
  }
  NodeIndex next = NextHop(env->key);
  env->hops++;
  stats_.route_hops++;
  C().route_hops->Increment();
  network_->Send(Message{node_, next, env->category, std::move(env)});
}

void DhtPeer::DeliverRouted(const RouteEnvelope& env) {
  C().hops_per_delivery->Observe(static_cast<double>(env.hops));
  const sim::Payload* inner = env.inner.get();
  if (const auto* locate = dynamic_cast<const LocateRequest*>(inner)) {
    auto resp = std::make_shared<LocateResponse>();
    resp->req_id = locate->req_id;
    resp->owner = node_;
    network_->Send(Message{node_, locate->origin, TrafficCategory::kControl,
                           std::move(resp)});
    return;
  }
  if (const auto* append = dynamic_cast<const AppendRequest*>(inner)) {
    HandleAppend(*append);
    return;
  }
  if (const auto* get = dynamic_cast<const GetRequest*>(inner)) {
    HandleGet(*get);
    return;
  }
  if (const auto* del = dynamic_cast<const DeleteRequest*>(inner)) {
    HandleDelete(*del);
    return;
  }
  if (const auto* put = dynamic_cast<const BlobPutRequest*>(inner)) {
    store_->PutBlob(put->key, put->blob);
    return;
  }
  if (const auto* del = dynamic_cast<const BlobDeleteRequest*>(inner)) {
    store_->DeleteBlob(del->key);
    return;
  }
  if (const auto* bget = dynamic_cast<const BlobGetRequest*>(inner)) {
    auto resp = std::make_shared<BlobGetResponse>();
    resp->req_id = bget->req_id;
    const std::string* blob = store_->GetBlob(bget->key);
    if (blob) resp->blob = *blob;
    network_->Send(Message{node_, bget->origin, TrafficCategory::kControl,
                           std::move(resp)});
    return;
  }
  if (const auto* app = dynamic_cast<const AppRequest*>(inner)) {
    stats_.app_requests++;
    C().app_requests->Increment();
    if (app_handler_) app_handler_(*app, app->origin);
    return;
  }
  KADOP_LOG_INFO("dropped unknown routed payload '%.*s'",
                 static_cast<int>(inner->TypeName().size()),
                 inner->TypeName().data());
}

// ---------------------------------------------------------------------------
// Server-side handlers

void DhtPeer::SendAppendAck(const AppendRequest& request) {
  if (request.ack_req_id == 0) return;
  auto ack = std::make_shared<AppendAck>();
  ack->req_id = request.ack_req_id;
  network_->Send(Message{node_, request.ack_origin, TrafficCategory::kControl,
                         std::move(ack)});
}

void DhtPeer::HandleAppend(const AppendRequest& req) {
  stats_.appends_received++;
  stats_.postings_stored += req.postings.size();
  C().appends_received->Increment();
  C().postings_stored->Increment(req.postings.size());
  if (append_interceptor_ && append_interceptor_(req)) return;

  const uint64_t r0 = store_->io().read_bytes;
  const uint64_t w0 = store_->io().write_bytes;
  if (req.per_entry) {
    for (const Posting& p : req.postings) store_->AppendPosting(req.key, p);
  } else {
    store_->AppendPostings(req.key, req.postings);
  }
  const DhtOptions& opt = dht_->options();
  const double io_bytes_as_read =
      static_cast<double>(store_->io().read_bytes - r0);
  const double io_bytes_as_write =
      static_cast<double>(store_->io().write_bytes - w0);
  const double now = network_->Now();
  const double start = std::max(now, disk_free_at_);
  const double end = start + opt.disk_seek_s +
                     io_bytes_as_read / opt.disk_read_bytes_per_s +
                     io_bytes_as_write / opt.disk_write_bytes_per_s;
  disk_free_at_ = end;

  const bool forward = req.replicate > 1 &&
                       routing_.successor_node != node_;
  network_->scheduler()->At(end, [this, req, forward]() {
    if (forward) {
      auto copy = std::make_shared<AppendRequest>(req);
      copy->replicate = req.replicate - 1;
      network_->Send(Message{node_, routing_.successor_node,
                             TrafficCategory::kPublish, std::move(copy)});
      return;  // the tail of the chain acks
    }
    if (req.ack_req_id != 0) {
      auto ack = std::make_shared<AppendAck>();
      ack->req_id = req.ack_req_id;
      network_->Send(Message{node_, req.ack_origin,
                             TrafficCategory::kControl, std::move(ack)});
    }
  });
}

void DhtPeer::SendGetBlock(NodeIndex origin, RequestId req_id,
                           uint32_t block_index, bool last,
                           PostingList postings) {
  auto out = std::make_shared<GetBlock>();
  out->req_id = req_id;
  out->block_index = block_index;
  out->last = last;
  out->postings = std::move(postings);
  stats_.blocks_sent++;
  C().blocks_sent->Increment();
  network_->Send(
      Message{node_, origin, TrafficCategory::kPosting, std::move(out)});
}

void DhtPeer::HandleGet(const GetRequest& req) {
  stats_.gets_served++;
  C().gets_served->Increment();
  if (get_interceptor_ && get_interceptor_(req)) return;
  PostingList list = store_->GetPostingRange(req.key, req.lo, req.hi, 0);

  const size_t block_postings =
      req.pipelined ? std::max<uint32_t>(1, req.block_postings) : 0;
  const size_t total = list.size();
  const size_t n_blocks =
      req.pipelined
          ? std::max<size_t>(1, (total + block_postings - 1) /
                                    std::max<size_t>(1, block_postings))
          : 1;

  // Disk read time is spread uniformly over the blocks so that the stream
  // is paced by min(disk, uplink) as in a real producer.
  size_t sent = 0;
  for (size_t b = 0; b < n_blocks; ++b) {
    const size_t begin = req.pipelined ? b * block_postings : 0;
    const size_t end_pos =
        req.pipelined ? std::min(total, begin + block_postings) : total;
    PostingList block(list.begin() + begin, list.begin() + end_pos);
    const double block_bytes =
        static_cast<double>(index::PostingListBytes(block));
    auto out = std::make_shared<GetBlock>();
    out->req_id = req.req_id;
    out->block_index = static_cast<uint32_t>(b);
    out->last = (b + 1 == n_blocks);
    out->postings = std::move(block);
    const NodeIndex origin = req.origin;
    ScheduleAfterDisk(block_bytes, /*write=*/false,
                      [this, origin, out = std::move(out)]() mutable {
                        stats_.blocks_sent++;
                        C().blocks_sent->Increment();
                        network_->Send(Message{node_, origin,
                                               TrafficCategory::kPosting,
                                               std::move(out)});
                      });
    sent += end_pos - begin;
  }
  KADOP_CHECK(sent == total, "block slicing lost postings");
}

void DhtPeer::HandleDelete(const DeleteRequest& req) {
  if (delete_interceptor_ && delete_interceptor_(req)) return;
  if (req.whole_doc) {
    store_->DeleteDocPostings(req.key, req.doc);
  } else {
    store_->DeletePosting(req.key, req.posting);
  }
}

// ---------------------------------------------------------------------------
// Message dispatch

void DhtPeer::HandleMessage(const Message& msg) {
  sim::Payload* payload = msg.payload.get();
  if (auto* env = dynamic_cast<RouteEnvelope*>(payload)) {
    if (IsResponsible(env->key)) {
      DeliverRouted(*env);
    } else {
      // Re-wrap in a fresh shared_ptr to the same envelope for forwarding.
      RouteEnvelopeMsg(std::static_pointer_cast<RouteEnvelope>(msg.payload));
    }
    return;
  }
  if (auto* resp = dynamic_cast<LocateResponse*>(payload)) {
    auto it = pending_locate_.find(resp->req_id);
    if (it == pending_locate_.end()) return;
    LocateCallback cb = std::move(it->second);
    pending_locate_.erase(it);
    cb(resp->owner);
    return;
  }
  if (auto* block = dynamic_cast<GetBlock*>(payload)) {
    auto it = pending_get_.find(block->req_id);
    if (it == pending_get_.end()) return;  // timed out earlier
    PendingGet& pending = it->second;
    if (pending.accumulate) {
      pending.accumulated.insert(pending.accumulated.end(),
                                 block->postings.begin(),
                                 block->postings.end());
      if (block->last) {
        PendingGet done = std::move(pending);
        pending_get_.erase(it);
        if (done.on_done) {
          done.on_done(GetResult{std::move(done.accumulated), true});
        }
      }
    } else {
      BlockCallback cb = pending.on_block;
      const bool last = block->last;
      if (last) pending_get_.erase(it);
      if (cb) cb(std::move(block->postings), last, true);
    }
    return;
  }
  if (auto* resp = dynamic_cast<BlobGetResponse*>(payload)) {
    auto it = pending_blob_.find(resp->req_id);
    if (it == pending_blob_.end()) return;
    BlobCallback cb = std::move(it->second);
    pending_blob_.erase(it);
    cb(std::move(resp->blob));
    return;
  }
  if (auto* resp = dynamic_cast<AppResponse*>(payload)) {
    auto it = pending_app_.find(resp->req_id);
    if (it == pending_app_.end()) return;
    AppResponseCallback cb = std::move(it->second);
    pending_app_.erase(it);
    cb(resp->inner);
    return;
  }
  if (auto* ack = dynamic_cast<AppendAck*>(payload)) {
    auto it = pending_ack_.find(ack->req_id);
    if (it == pending_ack_.end()) return;
    std::function<void()> cb = std::move(it->second);
    pending_ack_.erase(it);
    cb();
    return;
  }
  if (auto* append = dynamic_cast<AppendRequest*>(payload)) {
    // Replication chain forwarding arrives directly (not routed).
    HandleAppend(*append);
    return;
  }
  if (auto* app = dynamic_cast<AppRequest*>(payload)) {
    stats_.app_requests++;
    C().app_requests->Increment();
    if (app_handler_) app_handler_(*app, msg.from);
    return;
  }
  KADOP_LOG_INFO("peer %u dropped unknown message '%.*s'", node_,
                 static_cast<int>(payload->TypeName().size()),
                 payload->TypeName().data());
}

}  // namespace kadop::dht
