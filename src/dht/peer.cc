#include "dht/peer.h"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/logging.h"
#include "dht/dht.h"
#include "dht/ring.h"
#include "index/codec.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace kadop::dht {

using index::Posting;
using index::PostingList;
using sim::Message;
using sim::NodeIndex;
using sim::TrafficCategory;

namespace {

// Process-wide mirrors of the per-peer DhtStats fields (see
// docs/observability.md for the per-instance vs. registry split).
struct DhtCounters {
  obs::Counter* locates;
  obs::Counter* routed_messages;
  obs::Counter* route_hops;
  obs::Counter* appends_received;
  obs::Counter* postings_stored;
  obs::Counter* gets_served;
  obs::Counter* blocks_sent;
  obs::Counter* app_requests;
  obs::Counter* get_timeouts;
  obs::Counter* retries;
  obs::Counter* timeouts;
  obs::Counter* dedup_hits;
  obs::Histogram* hops_per_delivery;

  DhtCounters() {
    auto& r = obs::MetricRegistry::Default();
    locates = r.GetCounter("dht.locates");
    routed_messages = r.GetCounter("dht.routed_messages");
    route_hops = r.GetCounter("dht.route_hops");
    appends_received = r.GetCounter("dht.appends_received");
    postings_stored = r.GetCounter("dht.postings_stored");
    gets_served = r.GetCounter("dht.gets_served");
    blocks_sent = r.GetCounter("dht.blocks_sent");
    app_requests = r.GetCounter("dht.app_requests");
    get_timeouts = r.GetCounter("dht.get_timeouts");
    retries = r.GetCounter("dht.retries");
    timeouts = r.GetCounter("dht.timeouts");
    dedup_hits = r.GetCounter("dht.append_dedup_hits");
    hops_per_delivery =
        r.GetHistogram("dht.hops_per_delivery", obs::CountBuckets());
  }
};

DhtCounters& C() {
  static DhtCounters counters;
  return counters;
}

// Per-holder ingress load, the input signal for load-aware rebalancing
// (ROADMAP item 2). Handles are cached per node index; per-key load lives
// in the bounded ReplicationManager tracker, not in registry counters.
struct HolderLoadCounters {
  obs::Counter* gets;
  obs::Counter* appends;
};

HolderLoadCounters& LoadFor(NodeIndex node) {
  static std::unordered_map<NodeIndex, HolderLoadCounters>* cache =
      new std::unordered_map<NodeIndex, HolderLoadCounters>();
  auto it = cache->find(node);
  if (it == cache->end()) {
    auto& r = obs::MetricRegistry::Default();
    const std::string base = "load.holder." + std::to_string(node);
    it = cache
             ->emplace(node,
                       HolderLoadCounters{r.GetCounter(base + ".gets"),
                                          r.GetCounter(base + ".appends")})
             .first;
  }
  return it->second;
}

}  // namespace

DhtPeer::DhtPeer(Dht* dht, sim::Network* network, KeyId id,
                 std::unique_ptr<store::PeerStore> store)
    : dht_(dht), network_(network), id_(id), store_(std::move(store)) {
  KADOP_CHECK(store_ != nullptr, "peer requires a store");
}

// ---------------------------------------------------------------------------
// Ring geometry

bool DhtPeer::IsResponsible(KeyId key) const {
  return InHalfOpen(key, routing_.predecessor_id, id_);
}

NodeIndex DhtPeer::NextHop(KeyId key) const {
  if (InHalfOpen(key, id_, routing_.successor_id)) {
    return routing_.successor_node;
  }
  // Closest preceding finger: scan from the largest span downwards.
  for (auto it = routing_.fingers.rbegin(); it != routing_.fingers.rend();
       ++it) {
    if (it->second != node_ && InOpen(it->first, id_, key)) {
      return it->second;
    }
  }
  return routing_.successor_node;
}

// ---------------------------------------------------------------------------
// Disk model

void DhtPeer::ScheduleAfterDisk(double bytes, bool write,
                                std::function<void()> fn) {
  const DhtOptions& opt = dht_->options();
  const double bw =
      write ? opt.disk_write_bytes_per_s : opt.disk_read_bytes_per_s;
  const double now = network_->Now();
  const double start = std::max(now, disk_free_at_);
  const double end = start + opt.disk_seek_s + bytes / bw;
  disk_free_at_ = end;
  network_->scheduler()->At(end, std::move(fn));
}

// ---------------------------------------------------------------------------
// Client-side operations

RequestId DhtPeer::NextRequestId() {
  return (static_cast<uint64_t>(node_) << 32) | next_req_++;
}

void DhtPeer::Locate(const std::string& key, LocateCallback cb) {
  auto req = std::make_shared<LocateRequest>();
  req->req_id = NextRequestId();
  req->origin = node_;
  pending_locate_[req->req_id] = std::move(cb);
  stats_.locates++;
  C().locates->Increment();

  auto env = std::make_shared<RouteEnvelope>();
  env->key = HashKey(key);
  env->inner = req;
  env->category = TrafficCategory::kControl;
  RouteEnvelopeMsg(std::move(env));
}

void DhtPeer::Append(const std::string& key, PostingList postings,
                     AppendCallback on_ack,
                     std::vector<std::string> doc_types,
                     RetryPolicy retry) {
  // Without an ack there is no loss signal to retry on: fire-and-forget.
  if (!on_ack) {
    auto req = std::make_shared<AppendRequest>();
    req->key = key;
    req->postings = std::move(postings);
    req->doc_types = std::move(doc_types);
    req->per_entry = dht_->options().per_entry_reconciliation;
    req->replicate = dht_->options().replication;
    auto env = std::make_shared<RouteEnvelope>();
    env->key = HashKey(key);
    env->inner = std::move(req);
    env->category = TrafficCategory::kPublish;
    RouteEnvelopeMsg(std::move(env));
    return;
  }
  PendingAppend pending;
  pending.cb = std::move(on_ack);
  pending.key = key;
  pending.postings = std::move(postings);
  pending.doc_types = std::move(doc_types);
  pending.retry = retry.enabled() ? retry : dht_->options().retry;
  if (pending.retry.enabled()) pending.dedup_id = NextRequestId();
  IssueAppend(std::move(pending));
}

RequestId DhtPeer::IssueAppend(PendingAppend pending) {
  const RequestId id = NextRequestId();
  auto req = std::make_shared<AppendRequest>();
  req->key = pending.key;
  req->doc_types = pending.doc_types;
  if (pending.retry.enabled()) {
    req->postings = pending.postings;  // keep a copy for resends
  } else {
    req->postings = std::move(pending.postings);
  }
  req->per_entry = dht_->options().per_entry_reconciliation;
  req->replicate = dht_->options().replication;
  req->ack_req_id = id;
  req->ack_origin = node_;
  req->dedup_id = pending.dedup_id;
  const double timeout = pending.retry.timeout_s;
  auto [it, inserted] = pending_ack_.emplace(id, std::move(pending));
  KADOP_CHECK(inserted, "append request id collision");
  if (timeout > 0) {
    it->second.timeout_event = network_->scheduler()->After(
        timeout, [this, id]() { OnAppendTimeout(id); });
  }
  auto env = std::make_shared<RouteEnvelope>();
  env->key = HashKey(req->key);
  env->inner = std::move(req);
  env->category = TrafficCategory::kPublish;
  RouteEnvelopeMsg(std::move(env));
  return id;
}

void DhtPeer::OnAppendTimeout(RequestId req_id) {
  auto it = pending_ack_.find(req_id);
  if (it == pending_ack_.end()) return;  // acked in time
  C().timeouts->Increment();
  PendingAppend pending = std::move(it->second);
  pending_ack_.erase(it);
  pending.timeout_event = sim::kInvalidEventId;
  if (pending.attempt <= pending.retry.max_retries) {
    pending.attempt++;
    C().retries->Increment();
    const double delay = pending.retry.BackoffDelay(pending.attempt - 1);
    auto next = std::make_shared<PendingAppend>(std::move(pending));
    network_->scheduler()->After(delay, [this, next]() {
      IssueAppend(std::move(*next));
    });
    return;
  }
  pending.cb(Status::DeadlineExceeded("append retry budget exhausted for '" +
                                      pending.key + "'"));
}

void DhtPeer::Get(const std::string& key, GetCallback cb, double timeout_s) {
  PendingGet pending;
  pending.accumulate = true;
  pending.on_done = std::move(cb);
  pending.spec.key = key;
  pending.spec.pipelined = false;
  pending.spec.timeout_s = timeout_s;
  pending.retry = dht_->options().retry;
  IssueGet(std::move(pending));
}

void DhtPeer::GetBlocks(const GetSpec& spec, BlockCallback on_block) {
  PendingGet pending;
  pending.on_block = std::move(on_block);
  pending.spec = spec;
  pending.retry = spec.retry.enabled() ? spec.retry : dht_->options().retry;
  IssueGet(std::move(pending));
}

RequestId DhtPeer::IssueGet(PendingGet pending) {
  const RequestId id = NextRequestId();
  auto req = std::make_shared<GetRequest>();
  req->key = pending.spec.key;
  req->req_id = id;
  req->origin = node_;
  req->pipelined = pending.spec.pipelined;
  req->block_postings = pending.spec.block_postings != 0
                            ? pending.spec.block_postings
                            : dht_->options().pipeline_block_postings;
  req->lo = pending.spec.lo;
  req->hi = pending.spec.hi;
  req->compress =
      pending.spec.compress.value_or(index::codec::CompressionEnabled());

  // With a retry policy the per-attempt timeout comes from the policy; the
  // legacy spec timeout stays an overall (single-attempt) deadline.
  const double timeout = pending.retry.enabled() ? pending.retry.timeout_s
                                                 : pending.spec.timeout_s;
  const KeyId hashed = HashKey(pending.spec.key);
  const NodeIndex replica = dht_->replication().RouteGet(pending.spec.key);
  pending.next_block = 0;
  auto [it, inserted] = pending_get_.emplace(id, std::move(pending));
  KADOP_CHECK(inserted, "get request id collision");
  if (timeout > 0) it->second.timeout_event = ArmTimeout(id, timeout);

  // Load-aware routing: a hot key with fresh replicas is pulled from the
  // least-loaded copy directly (one hop). Retries re-enter here and re-roll
  // the choice, so a crashed replica falls back to the routed owner path.
  if (replica != ReplicationManager::kNoReplica) {
    network_->Send(
        Message{node_, replica, TrafficCategory::kControl, std::move(req)});
    return id;
  }

  auto env = std::make_shared<RouteEnvelope>();
  env->key = hashed;
  env->inner = std::move(req);
  env->category = TrafficCategory::kControl;
  RouteEnvelopeMsg(std::move(env));
  return id;
}

void DhtPeer::Delete(const std::string& key, const Posting& posting) {
  auto req = std::make_shared<DeleteRequest>();
  req->key = key;
  req->posting = posting;
  auto env = std::make_shared<RouteEnvelope>();
  env->key = HashKey(key);
  env->inner = std::move(req);
  env->category = TrafficCategory::kControl;
  RouteEnvelopeMsg(std::move(env));
}

void DhtPeer::DeleteDoc(const std::string& key, const index::DocId& doc) {
  auto req = std::make_shared<DeleteRequest>();
  req->key = key;
  req->whole_doc = true;
  req->doc = doc;
  auto env = std::make_shared<RouteEnvelope>();
  env->key = HashKey(key);
  env->inner = std::move(req);
  env->category = TrafficCategory::kControl;
  RouteEnvelopeMsg(std::move(env));
}

void DhtPeer::PutBlob(const std::string& key, std::string blob) {
  auto req = std::make_shared<BlobPutRequest>();
  req->key = key;
  req->blob = std::move(blob);
  auto env = std::make_shared<RouteEnvelope>();
  env->key = HashKey(key);
  env->inner = std::move(req);
  env->category = TrafficCategory::kPublish;
  RouteEnvelopeMsg(std::move(env));
}

void DhtPeer::DeleteBlobKey(const std::string& key) {
  auto req = std::make_shared<BlobDeleteRequest>();
  req->key = key;
  auto env = std::make_shared<RouteEnvelope>();
  env->key = HashKey(key);
  env->inner = std::move(req);
  env->category = TrafficCategory::kControl;
  RouteEnvelopeMsg(std::move(env));
}

void DhtPeer::GetBlob(const std::string& key, BlobCallback cb) {
  auto req = std::make_shared<BlobGetRequest>();
  req->key = key;
  req->req_id = NextRequestId();
  req->origin = node_;
  pending_blob_[req->req_id] = std::move(cb);
  auto env = std::make_shared<RouteEnvelope>();
  env->key = HashKey(key);
  env->inner = std::move(req);
  env->category = TrafficCategory::kControl;
  RouteEnvelopeMsg(std::move(env));
}

void DhtPeer::RouteApp(const std::string& key, sim::PayloadPtr inner,
                       TrafficCategory category, AppResponseCallback cb,
                       RetryPolicy retry) {
  if (!cb) {
    auto req = std::make_shared<AppRequest>();
    req->key = key;
    req->origin = node_;
    req->inner = std::move(inner);
    auto env = std::make_shared<RouteEnvelope>();
    env->key = HashKey(key);
    env->inner = std::move(req);
    env->category = category;
    RouteEnvelopeMsg(std::move(env));
    return;
  }
  PendingApp pending;
  pending.cb = std::move(cb);
  pending.routed = true;
  pending.key = key;
  pending.inner = std::move(inner);
  pending.category = category;
  pending.retry = retry;
  IssueApp(std::move(pending));
}

void DhtPeer::Reply(NodeIndex origin, RequestId req_id, sim::PayloadPtr inner,
                    TrafficCategory category) {
  auto resp = std::make_shared<AppResponse>();
  resp->req_id = req_id;
  resp->inner = std::move(inner);
  network_->Send(Message{node_, origin, category, std::move(resp)});
}

void DhtPeer::SendApp(NodeIndex target, sim::PayloadPtr inner,
                      TrafficCategory category) {
  auto req = std::make_shared<AppRequest>();
  req->origin = node_;
  req->inner = std::move(inner);
  network_->Send(Message{node_, target, category, std::move(req)});
}

void DhtPeer::CallApp(NodeIndex target, sim::PayloadPtr inner,
                      TrafficCategory category, AppResponseCallback cb,
                      RetryPolicy retry) {
  if (!cb) {
    auto req = std::make_shared<AppRequest>();
    req->origin = node_;
    req->inner = std::move(inner);
    network_->Send(Message{node_, target, category, std::move(req)});
    return;
  }
  PendingApp pending;
  pending.cb = std::move(cb);
  pending.routed = false;
  pending.target = target;
  pending.inner = std::move(inner);
  pending.category = category;
  pending.retry = retry;
  IssueApp(std::move(pending));
}

RequestId DhtPeer::IssueApp(PendingApp pending) {
  const RequestId id = NextRequestId();
  auto req = std::make_shared<AppRequest>();
  req->origin = node_;
  req->req_id = id;
  req->inner = pending.inner;
  const double timeout = pending.retry.timeout_s;
  const bool routed = pending.routed;
  const std::string key = pending.key;
  const NodeIndex target = pending.target;
  const TrafficCategory category = pending.category;
  auto [it, inserted] = pending_app_.emplace(id, std::move(pending));
  KADOP_CHECK(inserted, "app request id collision");
  if (timeout > 0) {
    it->second.timeout_event = network_->scheduler()->After(
        timeout, [this, id]() { OnAppTimeout(id); });
  }
  if (routed) {
    req->key = key;
    auto env = std::make_shared<RouteEnvelope>();
    env->key = HashKey(key);
    env->inner = std::move(req);
    env->category = category;
    RouteEnvelopeMsg(std::move(env));
  } else {
    network_->Send(Message{node_, target, category, std::move(req)});
  }
  return id;
}

void DhtPeer::OnAppTimeout(RequestId req_id) {
  auto it = pending_app_.find(req_id);
  if (it == pending_app_.end()) return;  // answered in time
  C().timeouts->Increment();
  PendingApp pending = std::move(it->second);
  pending_app_.erase(it);
  pending.timeout_event = sim::kInvalidEventId;
  if (pending.attempt <= pending.retry.max_retries) {
    pending.attempt++;
    C().retries->Increment();
    const double delay = pending.retry.BackoffDelay(pending.attempt - 1);
    auto next = std::make_shared<PendingApp>(std::move(pending));
    // Routed resends re-resolve the owner, so a request aimed at a peer
    // that crashed since reaches whoever inherited the key range.
    network_->scheduler()->After(delay, [this, next]() {
      IssueApp(std::move(*next));
    });
    return;
  }
  pending.cb(nullptr);
}

sim::EventId DhtPeer::ArmTimeout(RequestId req_id, double timeout_s) {
  return network_->scheduler()->After(
      timeout_s, [this, req_id]() { OnGetTimeout(req_id); });
}

void DhtPeer::OnGetTimeout(RequestId req_id) {
  auto it = pending_get_.find(req_id);
  if (it == pending_get_.end()) return;  // completed in time
  C().get_timeouts->Increment();
  C().timeouts->Increment();
  PendingGet pending = std::move(it->second);
  pending_get_.erase(it);
  pending.timeout_event = sim::kInvalidEventId;
  // A streaming get that already surfaced blocks to its caller cannot be
  // transparently reissued (the caller would see duplicates); it fails
  // instead. Accumulating gets discard the partial list and start over.
  const bool can_retry = pending.retry.enabled() &&
                         pending.attempt <= pending.retry.max_retries &&
                         (pending.accumulate || !pending.delivered_any);
  if (can_retry) {
    pending.attempt++;
    pending.accumulated.clear();
    C().retries->Increment();
    const double delay = pending.retry.BackoffDelay(pending.attempt - 1);
    auto next = std::make_shared<PendingGet>(std::move(pending));
    network_->scheduler()->After(delay, [this, next]() {
      IssueGet(std::move(*next));
    });
    return;
  }
  if (pending.accumulate) {
    if (pending.on_done) {
      Status st = pending.retry.enabled()
                      ? Status::DeadlineExceeded(
                            "get retry budget exhausted for '" +
                            pending.spec.key + "'")
                      : Status::Timeout("get timed out for '" +
                                        pending.spec.key + "'");
      pending.on_done(
          GetResult{std::move(pending.accumulated), false, std::move(st)});
    }
  } else if (pending.on_block) {
    pending.on_block({}, /*last=*/true, /*complete=*/false);
  }
}

// ---------------------------------------------------------------------------
// Routing

void DhtPeer::RouteEnvelopeMsg(std::shared_ptr<RouteEnvelope> env) {
  stats_.routed_messages++;
  C().routed_messages->Increment();
  if (IsResponsible(env->key)) {
    // Local delivery (free).
    network_->Send(Message{node_, node_, env->category, std::move(env)});
    return;
  }
  NodeIndex next = NextHop(env->key);
  env->hops++;
  stats_.route_hops++;
  C().route_hops->Increment();
  network_->Send(Message{node_, next, env->category, std::move(env)});
}

void DhtPeer::DeliverRouted(const RouteEnvelope& env) {
  C().hops_per_delivery->Observe(static_cast<double>(env.hops));
  const sim::Payload* inner = env.inner.get();
  if (const auto* locate = dynamic_cast<const LocateRequest*>(inner)) {
    auto resp = std::make_shared<LocateResponse>();
    resp->req_id = locate->req_id;
    resp->owner = node_;
    network_->Send(Message{node_, locate->origin, TrafficCategory::kControl,
                           std::move(resp)});
    return;
  }
  if (const auto* append = dynamic_cast<const AppendRequest*>(inner)) {
    HandleAppend(*append);
    return;
  }
  if (const auto* get = dynamic_cast<const GetRequest*>(inner)) {
    HandleGet(*get);
    return;
  }
  if (const auto* del = dynamic_cast<const DeleteRequest*>(inner)) {
    HandleDelete(*del);
    return;
  }
  if (const auto* put = dynamic_cast<const BlobPutRequest*>(inner)) {
    store_->PutBlob(put->key, put->blob);
    return;
  }
  if (const auto* del = dynamic_cast<const BlobDeleteRequest*>(inner)) {
    store_->DeleteBlob(del->key);
    return;
  }
  if (const auto* bget = dynamic_cast<const BlobGetRequest*>(inner)) {
    auto resp = std::make_shared<BlobGetResponse>();
    resp->req_id = bget->req_id;
    const std::string* blob = store_->GetBlob(bget->key);
    if (blob) resp->blob = *blob;
    network_->Send(Message{node_, bget->origin, TrafficCategory::kControl,
                           std::move(resp)});
    return;
  }
  if (const auto* app = dynamic_cast<const AppRequest*>(inner)) {
    stats_.app_requests++;
    C().app_requests->Increment();
    if (app_handler_) app_handler_(*app, app->origin);
    return;
  }
  KADOP_LOG_INFO("dropped unknown routed payload '%.*s'",
                 static_cast<int>(inner->TypeName().size()),
                 inner->TypeName().data());
}

// ---------------------------------------------------------------------------
// Server-side handlers

void DhtPeer::SendAppendAck(const AppendRequest& request) {
  if (request.ack_req_id == 0) return;
  auto ack = std::make_shared<AppendAck>();
  ack->req_id = request.ack_req_id;
  network_->Send(Message{node_, request.ack_origin, TrafficCategory::kControl,
                         std::move(ack)});
}

void DhtPeer::HandleAppend(const AppendRequest& req) {
  stats_.appends_received++;
  C().appends_received->Increment();
  LoadFor(node_).appends->Increment();
  dht_->replication().MaybeTick(network_->Now());
  // At-most-once application of retry-capable appends: a resend of an
  // already-applied request skips the store (and the DPP interceptor) but
  // still forwards down the replication chain and acks, so the resend both
  // repairs replicas that missed it and unblocks the waiting client.
  if (req.dedup_id != 0 && !applied_appends_.insert(req.dedup_id).second) {
    C().dedup_hits->Increment();
    const bool forward = req.replicate > 1 && routing_.successor_node != node_;
    if (forward) {
      auto copy = std::make_shared<AppendRequest>(req);
      copy->replicate = req.replicate - 1;
      network_->Send(Message{node_, routing_.successor_node,
                             TrafficCategory::kPublish, std::move(copy)});
      return;  // the tail of the chain acks
    }
    SendAppendAck(req);
    return;
  }
  stats_.postings_stored += req.postings.size();
  C().postings_stored->Increment(req.postings.size());
  if (append_interceptor_ && append_interceptor_(req)) return;

  auto& tracer = obs::Tracer::Default();
  const obs::SpanId apply = tracer.Begin("dht.append.apply");
  tracer.Annotate(apply, "key", req.key);

  const uint64_t r0 = store_->io().read_bytes;
  const uint64_t w0 = store_->io().write_bytes;
  if (req.per_entry) {
    for (const Posting& p : req.postings) store_->AppendPosting(req.key, p);
  } else {
    store_->AppendPostings(req.key, req.postings);
  }
  const DhtOptions& opt = dht_->options();
  const double io_bytes_as_read =
      static_cast<double>(store_->io().read_bytes - r0);
  const double io_bytes_as_write =
      static_cast<double>(store_->io().write_bytes - w0);
  const double now = network_->Now();
  const double start = std::max(now, disk_free_at_);
  const double end = start + opt.disk_seek_s +
                     io_bytes_as_read / opt.disk_read_bytes_per_s +
                     io_bytes_as_write / opt.disk_write_bytes_per_s;
  disk_free_at_ = end;

  const bool forward = req.replicate > 1 &&
                       routing_.successor_node != node_;
  // Children of the apply span: the disk-completion event below and any
  // replication forward / ack it sends.
  obs::ScopedTraceContext scope(tracer.ContextFor(apply));
  network_->scheduler()->At(end, [this, req, forward, apply]() {
    obs::Tracer::Default().End(apply);
    if (forward) {
      auto copy = std::make_shared<AppendRequest>(req);
      copy->replicate = req.replicate - 1;
      network_->Send(Message{node_, routing_.successor_node,
                             TrafficCategory::kPublish, std::move(copy)});
      return;  // the tail of the chain acks
    }
    if (req.ack_req_id != 0) {
      auto ack = std::make_shared<AppendAck>();
      ack->req_id = req.ack_req_id;
      network_->Send(Message{node_, req.ack_origin,
                             TrafficCategory::kControl, std::move(ack)});
    }
  });
}

void DhtPeer::SendGetBlock(NodeIndex origin, RequestId req_id,
                           uint32_t block_index, bool last,
                           PostingList postings, bool compressed) {
  auto out = std::make_shared<GetBlock>();
  out->req_id = req_id;
  out->block_index = block_index;
  out->last = last;
  out->postings = std::move(postings);
  out->compressed = compressed;
  stats_.blocks_sent++;
  C().blocks_sent->Increment();
  network_->Send(
      Message{node_, origin, TrafficCategory::kPosting, std::move(out)});
}

void DhtPeer::HandleGet(const GetRequest& req) {
  stats_.gets_served++;
  C().gets_served->Increment();
  LoadFor(node_).gets->Increment();
  dht_->replication().RecordKeyGet(req.key);
  dht_->replication().MaybeTick(network_->Now());
  if (get_interceptor_ && get_interceptor_(req)) return;
  ServeGetRange(req);
}

void DhtPeer::ServeGetRange(const GetRequest& req) {
  auto& tracer = obs::Tracer::Default();
  const obs::SpanId serve = tracer.Begin("dht.get.serve");
  tracer.Annotate(serve, "key", req.key);
  // Disk-read completions (and the block sends they trigger) parent to the
  // serve span; the span closes when the final block leaves for the uplink.
  obs::ScopedTraceContext scope(tracer.ContextFor(serve));
  PostingList list = store_->GetPostingRange(req.key, req.lo, req.hi, 0);

  const size_t block_postings =
      req.pipelined ? std::max<uint32_t>(1, req.block_postings) : 0;
  const size_t total = list.size();
  const size_t n_blocks =
      req.pipelined
          ? std::max<size_t>(1, (total + block_postings - 1) /
                                    std::max<size_t>(1, block_postings))
          : 1;

  // Disk read time is spread uniformly over the blocks so that the stream
  // is paced by min(disk, uplink) as in a real producer.
  size_t sent = 0;
  for (size_t b = 0; b < n_blocks; ++b) {
    const size_t begin = req.pipelined ? b * block_postings : 0;
    const size_t end_pos =
        req.pipelined ? std::min(total, begin + block_postings) : total;
    // Blocks are sliced on posting boundaries, so each one is encoded as a
    // standalone stream (codec::BlockEncoder framing) and the disk read is
    // charged at the stored (possibly compressed) size.
    PostingList block(list.begin() + begin, list.begin() + end_pos);
    const double block_bytes =
        static_cast<double>(index::codec::StoredBytes(block));
    auto out = std::make_shared<GetBlock>();
    out->req_id = req.req_id;
    out->block_index = static_cast<uint32_t>(b);
    out->last = (b + 1 == n_blocks);
    out->postings = std::move(block);
    out->compressed = req.compress;
    const NodeIndex origin = req.origin;
    const bool last_block = (b + 1 == n_blocks);
    ScheduleAfterDisk(block_bytes, /*write=*/false,
                      [this, origin, serve, last_block,
                       out = std::move(out)]() mutable {
                        stats_.blocks_sent++;
                        C().blocks_sent->Increment();
                        network_->Send(Message{node_, origin,
                                               TrafficCategory::kPosting,
                                               std::move(out)});
                        if (last_block) obs::Tracer::Default().End(serve);
                      });
    sent += end_pos - begin;
  }
  KADOP_CHECK(sent == total, "block slicing lost postings");
}

void DhtPeer::HandleDelete(const DeleteRequest& req) {
  if (delete_interceptor_ && delete_interceptor_(req)) return;
  if (req.whole_doc) {
    store_->DeleteDocPostings(req.key, req.doc);
  } else {
    store_->DeletePosting(req.key, req.posting);
  }
}

// ---------------------------------------------------------------------------
// Message dispatch

void DhtPeer::HandleMessage(const Message& msg) {
  sim::Payload* payload = msg.payload.get();
  if (auto* env = dynamic_cast<RouteEnvelope*>(payload)) {
    if (IsResponsible(env->key)) {
      DeliverRouted(*env);
    } else {
      // Re-wrap in a fresh shared_ptr to the same envelope for forwarding.
      RouteEnvelopeMsg(std::static_pointer_cast<RouteEnvelope>(msg.payload));
    }
    return;
  }
  if (auto* resp = dynamic_cast<LocateResponse*>(payload)) {
    auto it = pending_locate_.find(resp->req_id);
    if (it == pending_locate_.end()) return;
    LocateCallback cb = std::move(it->second);
    pending_locate_.erase(it);
    cb(resp->owner);
    return;
  }
  if (auto* block = dynamic_cast<GetBlock*>(payload)) {
    auto it = pending_get_.find(block->req_id);
    if (it == pending_get_.end()) return;  // timed out earlier
    PendingGet& pending = it->second;
    // Links are FIFO, so blocks of one attempt arrive in index order; an
    // out-of-sequence index is a fault artifact — a duplicated copy (index
    // below expected) or the far side of a dropped block (index above). In
    // both cases ignore it: delivering would duplicate data or silently
    // complete a stream with a hole. The timeout/retry path recovers.
    if (block->block_index != pending.next_block) return;
    pending.next_block++;
    if (pending.accumulate) {
      pending.accumulated.insert(pending.accumulated.end(),
                                 block->postings.begin(),
                                 block->postings.end());
      if (block->last) {
        PendingGet done = std::move(pending);
        pending_get_.erase(it);
        if (done.timeout_event != sim::kInvalidEventId) {
          network_->scheduler()->Cancel(done.timeout_event);
        }
        if (done.on_done) {
          done.on_done(
              GetResult{std::move(done.accumulated), true, Status::OK()});
        }
      } else if (pending.retry.enabled()) {
        // Progress timer: each block pushes the per-attempt deadline out,
        // so a long healthy stream is not killed mid-transfer.
        if (pending.timeout_event != sim::kInvalidEventId) {
          network_->scheduler()->Cancel(pending.timeout_event);
        }
        pending.timeout_event =
            ArmTimeout(block->req_id, pending.retry.timeout_s);
      }
    } else {
      pending.delivered_any = true;
      BlockCallback cb = pending.on_block;
      const bool last = block->last;
      if (last) {
        if (pending.timeout_event != sim::kInvalidEventId) {
          network_->scheduler()->Cancel(pending.timeout_event);
        }
        pending_get_.erase(it);
      } else if (pending.retry.enabled()) {
        if (pending.timeout_event != sim::kInvalidEventId) {
          network_->scheduler()->Cancel(pending.timeout_event);
        }
        pending.timeout_event =
            ArmTimeout(block->req_id, pending.retry.timeout_s);
      }
      if (cb) cb(std::move(block->postings), last, true);
    }
    return;
  }
  if (auto* resp = dynamic_cast<BlobGetResponse*>(payload)) {
    auto it = pending_blob_.find(resp->req_id);
    if (it == pending_blob_.end()) return;
    BlobCallback cb = std::move(it->second);
    pending_blob_.erase(it);
    cb(std::move(resp->blob));
    return;
  }
  if (auto* resp = dynamic_cast<AppResponse*>(payload)) {
    auto it = pending_app_.find(resp->req_id);
    if (it == pending_app_.end()) return;
    PendingApp done = std::move(it->second);
    pending_app_.erase(it);
    if (done.timeout_event != sim::kInvalidEventId) {
      network_->scheduler()->Cancel(done.timeout_event);
    }
    done.cb(resp->inner);
    return;
  }
  if (auto* ack = dynamic_cast<AppendAck*>(payload)) {
    auto it = pending_ack_.find(ack->req_id);
    if (it == pending_ack_.end()) return;
    PendingAppend done = std::move(it->second);
    pending_ack_.erase(it);
    if (done.timeout_event != sim::kInvalidEventId) {
      network_->scheduler()->Cancel(done.timeout_event);
    }
    done.cb(Status::OK());
    return;
  }
  if (auto* append = dynamic_cast<AppendRequest*>(payload)) {
    // Replication chain forwarding arrives directly (not routed).
    HandleAppend(*append);
    return;
  }
  if (auto* get = dynamic_cast<GetRequest*>(payload)) {
    // Replica-routed gets arrive directly (not routed). Serve when this
    // peer owns the key or holds a version-fresh replica; a stale or
    // dropped replica forwards to the owner instead (the NACK path: the
    // client still gets an authoritative answer, one routed trip later).
    ReplicationManager& repl = dht_->replication();
    if (IsResponsible(HashKey(get->key))) {
      HandleGet(*get);
    } else if (repl.CanServeReplica(get->key, node_,
                                    AuthoritativeVersion(get->key))) {
      repl.CountReplicaGet();
      stats_.gets_served++;
      C().gets_served->Increment();
      LoadFor(node_).gets->Increment();
      repl.RecordKeyGet(get->key);
      repl.MaybeTick(network_->Now());
      ServeGetRange(*get);
    } else {
      repl.CountStaleReject();
      auto env = std::make_shared<RouteEnvelope>();
      env->key = HashKey(get->key);
      env->inner = std::static_pointer_cast<GetRequest>(msg.payload);
      env->category = TrafficCategory::kControl;
      RouteEnvelopeMsg(std::move(env));
    }
    return;
  }
  if (auto* app = dynamic_cast<AppRequest*>(payload)) {
    stats_.app_requests++;
    C().app_requests->Increment();
    if (app_handler_) app_handler_(*app, msg.from);
    return;
  }
  KADOP_LOG_INFO("peer %u dropped unknown message '%.*s'", node_,
                 static_cast<int>(payload->TypeName().size()),
                 payload->TypeName().data());
}

uint64_t DhtPeer::AuthoritativeVersion(const std::string& key) const {
  return dht_->peer(dht_->OwnerOf(HashKey(key)))->store()->PostingVersion(key);
}

}  // namespace kadop::dht
