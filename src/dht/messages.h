#ifndef KADOP_DHT_MESSAGES_H_
#define KADOP_DHT_MESSAGES_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>

#include "index/codec.h"
#include "index/posting.h"
#include "sim/message.h"

namespace kadop::dht {

/// Keys are hashed into a 64-bit identifier ring.
using KeyId = uint64_t;

/// Request identifier: unique per (origin peer, sequence).
using RequestId = uint64_t;

/// Envelope for multi-hop routing: carries the target key, the inner
/// payload, and a hop counter. Every hop is a real simulated message, so
/// routing cost shows up in both time and traffic (Fig 2's locate() cost).
struct RouteEnvelope final : sim::Payload {
  KeyId key = 0;
  sim::PayloadPtr inner;
  uint32_t hops = 0;
  sim::TrafficCategory category = sim::TrafficCategory::kControl;

  size_t SizeBytes() const override {
    return 16 + (inner ? inner->SizeBytes() : 0);
  }
  std::string_view TypeName() const override { return "RouteEnvelope"; }
};

/// locate(k): resolve the peer in charge of a key.
struct LocateRequest final : sim::Payload {
  RequestId req_id = 0;
  sim::NodeIndex origin = 0;

  size_t SizeBytes() const override { return 16; }
  std::string_view TypeName() const override { return "LocateRequest"; }
};

struct LocateResponse final : sim::Payload {
  RequestId req_id = 0;
  sim::NodeIndex owner = 0;

  size_t SizeBytes() const override { return 12; }
  std::string_view TypeName() const override { return "LocateResponse"; }
};

/// append(k, entries): the Section 3 API extension. `per_entry` selects the
/// legacy put-reconciliation path in the receiving store (the baseline).
struct AppendRequest final : sim::Payload {
  std::string key;
  index::PostingList postings;
  /// Document types (root labels) the postings come from. The DPP layer
  /// folds them into its block conditions so queries can skip blocks whose
  /// types cannot match (Section 4.1, type-aware conditions).
  std::vector<std::string> doc_types;
  bool per_entry = false;
  /// Remaining replication fan-out (receiver forwards to successors).
  uint32_t replicate = 0;
  /// If nonzero, the responsible peer acks to `ack_origin` once applied.
  RequestId ack_req_id = 0;
  sim::NodeIndex ack_origin = 0;
  /// Nonzero for retry-capable appends: the receiving peers remember the id
  /// and apply the request at most once, so a client may resend after a
  /// timeout without double-inserting postings. Stable across resends (the
  /// per-attempt ack_req_id is not).
  uint64_t dedup_id = 0;
  /// Captured from the process-wide codec switch when the request is built;
  /// copies (replication forwards, retries) keep the sender's choice.
  bool compressed = index::codec::CompressionEnabled();

  size_t SizeBytes() const override {
    size_t total = key.size() + 8;
    total += index::codec::MemoizedWireBytes(postings, compressed,
                                             &wire_bytes_memo_);
    for (const auto& t : doc_types) total += t.size() + 1;
    if (dedup_id != 0) total += 8;
    return total;
  }
  std::string_view TypeName() const override { return "AppendRequest"; }

 private:
  mutable index::codec::WireSizeMemo wire_bytes_memo_;
};

/// Durability ack for an append.
struct AppendAck final : sim::Payload {
  RequestId req_id = 0;

  size_t SizeBytes() const override { return 8; }
  std::string_view TypeName() const override { return "AppendAck"; }
};

/// get(k) / pipelined get(k): retrieve a posting list, optionally streamed
/// in blocks and optionally restricted to a posting range.
struct GetRequest final : sim::Payload {
  std::string key;
  RequestId req_id = 0;
  sim::NodeIndex origin = 0;
  bool pipelined = false;
  /// Block granularity for the pipelined transfer, in postings.
  uint32_t block_postings = 4096;
  index::Posting lo = index::kMinPosting;
  index::Posting hi = index::kMaxPosting;
  /// Ask the responder to delta+varint-encode the returned blocks
  /// (docs/wire_format.md). Resolved by the requester from
  /// `QueryOptions::compress` or the process-wide codec switch.
  bool compress = false;

  size_t SizeBytes() const override { return key.size() + 56; }
  std::string_view TypeName() const override { return "GetRequest"; }
};

/// One block of a (pipelined) get response. A non-pipelined get returns a
/// single block with `last = true`.
struct GetBlock final : sim::Payload {
  RequestId req_id = 0;
  uint32_t block_index = 0;
  bool last = false;
  index::PostingList postings;
  /// Set by the responder when the requesting `GetRequest::compress` asked
  /// for delta+varint-coded blocks. Blocks are posting-aligned: each one is
  /// an independently decodable stream (codec::BlockEncoder framing).
  bool compressed = false;

  size_t SizeBytes() const override {
    return index::codec::MemoizedWireBytes(postings, compressed,
                                           &wire_bytes_memo_) +
           16;
  }
  std::string_view TypeName() const override { return "GetBlock"; }

 private:
  mutable index::codec::WireSizeMemo wire_bytes_memo_;
};

/// delete(k, entry).
struct DeleteRequest final : sim::Payload {
  std::string key;
  index::Posting posting;
  /// If true, delete all postings of `doc` under the key instead.
  bool whole_doc = false;
  index::DocId doc;

  size_t SizeBytes() const override {
    return key.size() + index::Posting::kWireBytes + 12;
  }
  std::string_view TypeName() const override { return "DeleteRequest"; }
};

/// Whole-value blob put (Doc relation, small metadata).
struct BlobPutRequest final : sim::Payload {
  std::string key;
  std::string blob;

  size_t SizeBytes() const override { return key.size() + blob.size() + 8; }
  std::string_view TypeName() const override { return "BlobPutRequest"; }
};

/// Whole-value blob delete.
struct BlobDeleteRequest final : sim::Payload {
  std::string key;

  size_t SizeBytes() const override { return key.size() + 4; }
  std::string_view TypeName() const override { return "BlobDeleteRequest"; }
};

struct BlobGetRequest final : sim::Payload {
  std::string key;
  RequestId req_id = 0;
  sim::NodeIndex origin = 0;

  size_t SizeBytes() const override { return key.size() + 16; }
  std::string_view TypeName() const override { return "BlobGetRequest"; }
};

struct BlobGetResponse final : sim::Payload {
  RequestId req_id = 0;
  std::optional<std::string> blob;

  size_t SizeBytes() const override {
    return 8 + (blob ? blob->size() : 0);
  }
  std::string_view TypeName() const override { return "BlobGetResponse"; }
};

/// Application-level routed request: upper layers (DPP, query engine,
/// Fundex) define their own payloads and register a handler on the peer.
struct AppRequest final : sim::Payload {
  std::string key;
  RequestId req_id = 0;
  sim::NodeIndex origin = 0;
  sim::PayloadPtr inner;

  size_t SizeBytes() const override {
    return key.size() + 16 + (inner ? inner->SizeBytes() : 0);
  }
  std::string_view TypeName() const override { return "AppRequest"; }
};

/// Application-level response, sent directly back to the request origin.
struct AppResponse final : sim::Payload {
  RequestId req_id = 0;
  sim::PayloadPtr inner;

  size_t SizeBytes() const override {
    return 8 + (inner ? inner->SizeBytes() : 0);
  }
  std::string_view TypeName() const override { return "AppResponse"; }
};

}  // namespace kadop::dht

#endif  // KADOP_DHT_MESSAGES_H_
