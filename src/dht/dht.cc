#include "dht/dht.h"

#include <utility>

#include "common/hash.h"
#include "common/logging.h"
#include "dht/replication.h"
#include "dht/ring.h"

namespace kadop::dht {

Dht::Dht(sim::Scheduler* scheduler, sim::Network* network, DhtOptions options)
    : scheduler_(scheduler), network_(network), options_(options) {
  KADOP_CHECK(scheduler_ != nullptr && network_ != nullptr,
              "Dht requires scheduler and network");
  KADOP_CHECK(options_.replication >= 1, "replication must be >= 1");
  replication_ = std::make_unique<ReplicationManager>(this, options_.repl);
}

Dht::~Dht() = default;

std::unique_ptr<store::PeerStore> Dht::MakeStore() const {
  if (options_.store_kind == StoreKind::kBTree) {
    return std::make_unique<store::BTreePeerStore>();
  }
  return std::make_unique<store::NaivePeerStore>();
}

sim::NodeIndex Dht::AddPeer() {
  // Derive a ring id; re-mix on (vanishingly unlikely) collisions.
  KeyId id = Mix64(options_.seed ^ (0x517cc1b727220a95ULL * ++next_peer_seq_));
  while (ring_.count(id) > 0) id = Mix64(id);

  auto peer = std::make_unique<DhtPeer>(this, network_, id, MakeStore());
  sim::NodeIndex node = network_->AddNode(peer.get());
  KADOP_CHECK(node == peers_.size(), "peer/node index mismatch");
  peer->set_node(node);
  ring_[id] = node;
  peers_.push_back(std::move(peer));
  return node;
}

sim::NodeIndex Dht::AddPeers(size_t count) {
  KADOP_CHECK(count > 0, "AddPeers(0)");
  sim::NodeIndex first = AddPeer();
  for (size_t i = 1; i < count; ++i) AddPeer();
  Stabilize();
  return first;
}

void Dht::FailPeer(sim::NodeIndex node) {
  network_->SetNodeUp(node, false);
  ring_.erase(peers_.at(node)->id());
}

void Dht::RestartPeer(sim::NodeIndex node) {
  DhtPeer* peer = peers_.at(node).get();
  KADOP_CHECK(ring_.count(peer->id()) == 0, "restarting a live peer");
  network_->SetNodeUp(node, true);
  ring_[peer->id()] = node;
}

sim::NodeIndex Dht::OwnerOf(KeyId key) const {
  KADOP_CHECK(!ring_.empty(), "empty ring");
  auto it = ring_.lower_bound(key);
  if (it == ring_.end()) it = ring_.begin();  // wrap
  return it->second;
}

std::vector<sim::NodeIndex> Dht::SuccessorsOf(KeyId key, size_t count) const {
  std::vector<sim::NodeIndex> out;
  if (ring_.empty()) return out;
  auto it = ring_.lower_bound(key);
  if (it == ring_.end()) it = ring_.begin();
  for (size_t i = 0; i < count && i < ring_.size(); ++i) {
    out.push_back(it->second);
    ++it;
    if (it == ring_.end()) it = ring_.begin();
  }
  return out;
}

void Dht::BuildRoutingTable(DhtPeer* peer) {
  DhtPeer::RoutingTable table;
  const KeyId id = peer->id();

  // Predecessor: largest ring id strictly before `id`.
  auto it = ring_.find(id);
  KADOP_CHECK(it != ring_.end(), "peer not on ring");
  auto pred = it == ring_.begin() ? std::prev(ring_.end()) : std::prev(it);
  table.predecessor_id = pred->first;

  // Successor: next ring id.
  auto succ = std::next(it);
  if (succ == ring_.end()) succ = ring_.begin();
  table.successor_id = succ->first;
  table.successor_node = succ->second;

  // Successor list (for replication chains).
  auto walker = succ;
  for (uint32_t i = 0;
       i + 1 < options_.replication && walker->second != peer->node(); ++i) {
    table.successors.push_back(walker->second);
    ++walker;
    if (walker == ring_.end()) walker = ring_.begin();
  }

  // Finger table: finger[i] = owner of id + 2^i.
  table.fingers.reserve(64);
  for (int i = 0; i < 64; ++i) {
    const KeyId target = id + (KeyId{1} << i);
    auto fit = ring_.lower_bound(target);
    if (fit == ring_.end()) fit = ring_.begin();
    table.fingers.emplace_back(fit->first, fit->second);
  }
  peer->set_routing(std::move(table));
}

void Dht::Stabilize() {
  for (const auto& [id, node] : ring_) {
    BuildRoutingTable(peers_.at(node).get());
  }
}

DhtStats Dht::AggregateStats() const {
  DhtStats total;
  for (const auto& peer : peers_) total.Add(peer->stats());
  return total;
}

store::IoStats Dht::AggregateIo() const {
  store::IoStats total;
  for (const auto& peer : peers_) {
    const store::IoStats& io =
        const_cast<DhtPeer*>(peer.get())->store()->io();
    total.read_bytes += io.read_bytes;
    total.write_bytes += io.write_bytes;
    total.operations += io.operations;
  }
  return total;
}

}  // namespace kadop::dht
