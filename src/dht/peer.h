#ifndef KADOP_DHT_PEER_H_
#define KADOP_DHT_PEER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "dht/messages.h"
#include "dht/replication.h"
#include "sim/network.h"
#include "store/peer_store.h"

namespace kadop::dht {

class Dht;

/// Which local store backs the peer (Section 3 ablation).
enum class StoreKind {
  kBTree = 0,  // BerkeleyDB-replacement B+-tree store
  kNaive = 1,  // PAST-style whole-value store
};

/// Per-request timeout / retry budget for client-side DHT operations.
/// Disabled by default (`timeout_s == 0`): with a fault-free network a
/// request cannot be lost, so the fail-stop tier-1 workloads run exactly as
/// before. Chaos workloads enable it to survive injected drops and crashes.
struct RetryPolicy {
  /// Per-attempt timeout in virtual seconds; 0 disables the whole policy.
  double timeout_s = 0.0;
  /// Additional attempts after the first (total attempts = max_retries + 1).
  uint32_t max_retries = 3;
  /// Capped exponential backoff between attempts: the n-th retry waits
  /// min(backoff_base_s * 2^(n-1), backoff_cap_s).
  double backoff_base_s = 0.05;
  double backoff_cap_s = 2.0;

  [[nodiscard]] bool enabled() const { return timeout_s > 0; }
  [[nodiscard]] double BackoffDelay(uint32_t attempt) const {
    double d = backoff_base_s;
    for (uint32_t i = 1; i < attempt && d < backoff_cap_s; ++i) d *= 2;
    return d < backoff_cap_s ? d : backoff_cap_s;
  }
};

/// Configuration shared by all peers of a DHT instance.
struct DhtOptions {
  /// Total number of copies of each index entry (1 = no replication).
  uint32_t replication = 1;
  StoreKind store_kind = StoreKind::kBTree;
  /// If true, appends go through the legacy put path: one whole-value
  /// reconciliation per *entry* (the pre-Section-3 behaviour). Only
  /// meaningful with the naive store.
  bool per_entry_reconciliation = false;
  /// Local disk model. The per-operation constant models an amortized
  /// page-cache touch (writes are batched and synced periodically), not a
  /// synchronous platter seek.
  double disk_read_bytes_per_s = 80.0 * 1024 * 1024;
  double disk_write_bytes_per_s = 60.0 * 1024 * 1024;
  double disk_seek_s = 0.00002;
  /// Default block granularity of the pipelined get, in postings.
  uint32_t pipeline_block_postings = 4096;
  /// Seed for peer identifier assignment.
  uint64_t seed = 7;
  /// Default retry policy for client ops (Get / GetBlocks / acked Append).
  /// Disabled by default; a per-request policy (GetSpec::retry, the
  /// RouteApp/CallApp parameter) overrides it when enabled.
  RetryPolicy retry;
  /// Hot-data replication + load-aware routing (off by default; see
  /// dht/replication.h and docs/replication.md).
  ReplicationOptions repl;
};

/// Counters kept per peer and aggregated by the Dht.
struct DhtStats {
  uint64_t route_hops = 0;
  uint64_t routed_messages = 0;
  uint64_t locates = 0;
  uint64_t appends_received = 0;
  uint64_t postings_stored = 0;
  uint64_t gets_served = 0;
  uint64_t blocks_sent = 0;
  uint64_t app_requests = 0;

  void Add(const DhtStats& other) {
    route_hops += other.route_hops;
    routed_messages += other.routed_messages;
    locates += other.locates;
    appends_received += other.appends_received;
    postings_stored += other.postings_stored;
    gets_served += other.gets_served;
    blocks_sent += other.blocks_sent;
    app_requests += other.app_requests;
  }
};

/// Result of a (pipelined) get: `complete` is false when the request timed
/// out before all blocks arrived (the paper: "we detect faulty peers with
/// time-outs; in this case, the answer is incomplete").
struct GetResult {
  index::PostingList postings;
  bool complete = true;
  /// OK on completion; kTimeout when a plain (no-retry) timeout fired;
  /// kDeadlineExceeded when a retry budget was exhausted.
  Status status;
};

/// Parameters of a get. `lo`/`hi` restrict the transferred range (used by
/// the DPP's [min, max] block filtering).
struct GetSpec {
  std::string key;
  bool pipelined = false;
  uint32_t block_postings = 0;  // 0 = DhtOptions default
  index::Posting lo = index::kMinPosting;
  index::Posting hi = index::kMaxPosting;
  /// 0 = no timeout.
  double timeout_s = 0.0;
  /// Overrides DhtOptions::retry for this request when enabled. With a
  /// policy active, `retry.timeout_s` is the per-attempt timeout and
  /// `timeout_s` above is ignored.
  RetryPolicy retry;
  /// Delta+varint-encode the returned blocks (nullopt = follow the
  /// process-wide codec switch; see QueryOptions::compress).
  std::optional<bool> compress;
};

/// One DHT peer: a Chord-style node with a finger table, a local store for
/// its slice of the Term relation, and the KadoP DHT API — locate / put /
/// get / delete, extended per Section 3 with `append` and a pipelined get.
///
/// All operations are asynchronous: results are delivered via callbacks
/// when the simulated messages arrive.
class DhtPeer final : public sim::Actor {
 public:
  using LocateCallback = std::function<void(sim::NodeIndex owner)>;
  using GetCallback = std::function<void(GetResult result)>;
  /// Append durability ack: OK once applied (and replicated), or
  /// kDeadlineExceeded when the retry budget ran out.
  using AppendCallback = std::function<void(Status status)>;
  /// Called once per received block; `last` marks the final block,
  /// `complete=false` signals a timeout (no further calls follow).
  using BlockCallback =
      std::function<void(index::PostingList block, bool last, bool complete)>;
  using BlobCallback =
      std::function<void(std::optional<std::string> blob)>;
  using AppResponseCallback = std::function<void(sim::PayloadPtr inner)>;
  /// Handler for application-level routed requests (DPP / query / Fundex
  /// layers). Implementations reply via `Reply()`.
  using AppHandler =
      std::function<void(const AppRequest& request, sim::NodeIndex from)>;

  DhtPeer(Dht* dht, sim::Network* network, KeyId id,
          std::unique_ptr<store::PeerStore> store);

  // -- Client-side API -----------------------------------------------------

  /// Resolves the peer in charge of `key` (multi-hop).
  void Locate(const std::string& key, LocateCallback cb);

  /// Appends postings under `key`; `on_ack` (optional) fires when the
  /// responsible peer has durably applied (and replicated) them.
  /// `doc_types` (optional) carries the document types of the postings for
  /// the DPP's type-aware block conditions. When a retry policy is active
  /// (the parameter if enabled, else DhtOptions::retry) *and* an ack was
  /// requested, a lost request/ack is retried with a stable dedup id so
  /// resends apply at most once; exhausting the budget yields
  /// kDeadlineExceeded. Un-acked appends are fire-and-forget regardless.
  void Append(const std::string& key, index::PostingList postings,
              AppendCallback on_ack = nullptr,
              std::vector<std::string> doc_types = {},
              RetryPolicy retry = {});

  /// Blocking get: the whole list arrives as one message.
  void Get(const std::string& key, GetCallback cb, double timeout_s = 0.0);

  /// General get (range, pipelined, timeout) with per-block delivery.
  void GetBlocks(const GetSpec& spec, BlockCallback on_block);

  /// Deletes one posting (or a whole document's postings) under `key`.
  void Delete(const std::string& key, const index::Posting& posting);
  void DeleteDoc(const std::string& key, const index::DocId& doc);

  /// Whole-value blobs (Doc relation and similar small metadata).
  void PutBlob(const std::string& key, std::string blob);
  void GetBlob(const std::string& key, BlobCallback cb);
  void DeleteBlobKey(const std::string& key);

  /// Routes an application request to the peer in charge of `key`; `cb`
  /// (optional) receives the reply payload. With a retry policy enabled the
  /// request is re-routed after per-attempt timeouts (picking up routing
  /// changes, e.g. a new owner after a crash); when the budget is exhausted
  /// `cb` receives nullptr. Callers passing a policy must handle nullptr.
  void RouteApp(const std::string& key, sim::PayloadPtr inner,
                sim::TrafficCategory category, AppResponseCallback cb,
                RetryPolicy retry = {});

  /// Replies to an application request received via the app handler.
  void Reply(sim::NodeIndex origin, RequestId req_id, sim::PayloadPtr inner,
             sim::TrafficCategory category);

  /// Sends a one-way application message directly to a known peer. It is
  /// delivered to the target's app handler with req_id = 0.
  void SendApp(sim::NodeIndex target, sim::PayloadPtr inner,
               sim::TrafficCategory category);

  /// Request/response to a known peer (no routing): the target's app
  /// handler replies via Reply() and `cb` receives the payload. Retry
  /// semantics as for RouteApp, except resends go to the same fixed target.
  void CallApp(sim::NodeIndex target, sim::PayloadPtr inner,
               sim::TrafficCategory category, AppResponseCallback cb,
               RetryPolicy retry = {});

  void SetAppHandler(AppHandler handler) { app_handler_ = std::move(handler); }

  /// Intercepts appends arriving at this peer (the responsible peer for the
  /// key). If the interceptor returns true it has taken full ownership of
  /// the request — storage, disk-time modeling and acking. Used by the DPP
  /// layer to replace the flat posting-list insert path.
  using AppendInterceptor = std::function<bool(const AppendRequest& request)>;
  void SetAppendInterceptor(AppendInterceptor interceptor) {
    append_interceptor_ = std::move(interceptor);
  }

  /// Sends a durability ack for an append request (used by interceptors).
  void SendAppendAck(const AppendRequest& request);

  /// Intercepts gets served by this peer. A DPP layer uses this to answer
  /// reads of partitioned lists by gathering the overflow blocks (plain
  /// gets stay complete whatever the storage layout). The interceptor must
  /// eventually emit blocks via SendGetBlock().
  using GetInterceptor = std::function<bool(const GetRequest& request)>;
  void SetGetInterceptor(GetInterceptor interceptor) {
    get_interceptor_ = std::move(interceptor);
  }

  /// Emits one response block for a get request being served out-of-band
  /// (by a get interceptor). `compressed` echoes the request's `compress`
  /// flag so interceptor-served blocks are sized like store-served ones.
  void SendGetBlock(sim::NodeIndex origin, RequestId req_id,
                    uint32_t block_index, bool last,
                    index::PostingList postings, bool compressed = false);

  /// Intercepts deletes served by this peer (DPP fans the delete out to
  /// the overflow-block holders). Return true when handled.
  using DeleteInterceptor = std::function<bool(const DeleteRequest& request)>;
  void SetDeleteInterceptor(DeleteInterceptor interceptor) {
    delete_interceptor_ = std::move(interceptor);
  }

  // -- Introspection -------------------------------------------------------

  KeyId id() const { return id_; }
  sim::NodeIndex node() const { return node_; }
  store::PeerStore* store() { return store_.get(); }
  const DhtStats& stats() const { return stats_; }
  sim::Network* network() { return network_; }
  Dht* dht() { return dht_; }

  /// Staleness oracle for the query-side posting cache: the current
  /// posting version of `key` at the store of the peer responsible for it
  /// (see PeerStore::PostingVersion). This is zero-cost simulator
  /// introspection standing in for the version lease a real deployment
  /// would piggyback on its routing keep-alives (docs/wire_format.md); it
  /// sends no message and charges nothing.
  [[nodiscard]] uint64_t AuthoritativeVersion(const std::string& key) const;

  /// Models a local disk/CPU busy period: runs `fn` once the peer's disk
  /// has absorbed `bytes` (FIFO with other disk activity).
  void ScheduleAfterDisk(double bytes, bool write, std::function<void()> fn);

  // -- Wiring (called by Dht) ----------------------------------------------

  void set_node(sim::NodeIndex node) { node_ = node; }
  struct RoutingTable {
    /// finger[i] targets id + 2^i; each entry is (id, node) of the owner.
    std::vector<std::pair<KeyId, sim::NodeIndex>> fingers;
    KeyId predecessor_id = 0;
    KeyId successor_id = 0;
    sim::NodeIndex successor_node = 0;
    /// Successor list for replication.
    std::vector<sim::NodeIndex> successors;
  };
  void set_routing(RoutingTable table) { routing_ = std::move(table); }
  const RoutingTable& routing() const { return routing_; }

  void HandleMessage(const sim::Message& msg) override;

  /// True if this peer is responsible for `key` (key in (pred, self]).
  /// Public for services that must tell local from remote work — e.g. the
  /// block-join holder, which charges wire bytes only for foreign pulls.
  [[nodiscard]] bool IsResponsible(KeyId key) const;

 private:
  /// Next hop toward `key`'s owner.
  sim::NodeIndex NextHop(KeyId key) const;
  /// Starts or forwards routing of an envelope.
  void RouteEnvelopeMsg(std::shared_ptr<RouteEnvelope> env);
  /// Delivers a routed payload for which this peer is responsible.
  void DeliverRouted(const RouteEnvelope& env);

  void HandleAppend(const AppendRequest& req);
  void HandleGet(const GetRequest& req);
  /// Streams the store's postings for `req` back to its origin (the body of
  /// HandleGet past the interceptor; also the replica serve path).
  void ServeGetRange(const GetRequest& req);
  void HandleDelete(const DeleteRequest& req);

  RequestId NextRequestId();
  struct PendingGet;
  struct PendingApp;
  struct PendingAppend;
  /// (Re-)issues a get under a fresh request id, arming the per-attempt
  /// timeout. Used for the first attempt and every retry.
  RequestId IssueGet(PendingGet pending);
  sim::EventId ArmTimeout(RequestId req_id, double timeout_s);
  void OnGetTimeout(RequestId req_id);
  RequestId IssueApp(PendingApp pending);
  void OnAppTimeout(RequestId req_id);
  RequestId IssueAppend(PendingAppend pending);
  void OnAppendTimeout(RequestId req_id);

  Dht* dht_;
  sim::Network* network_;
  sim::NodeIndex node_ = 0;
  KeyId id_;
  std::unique_ptr<store::PeerStore> store_;
  RoutingTable routing_;
  AppHandler app_handler_;
  AppendInterceptor append_interceptor_;
  GetInterceptor get_interceptor_;
  DeleteInterceptor delete_interceptor_;
  DhtStats stats_;

  double disk_free_at_ = 0.0;
  uint64_t last_read_bytes_ = 0;
  uint64_t last_write_bytes_ = 0;

  uint64_t next_req_ = 1;
  struct PendingGet {
    BlockCallback on_block;
    index::PostingList accumulated;
    bool accumulate = false;
    GetCallback on_done;
    /// Retry state. `spec` keeps everything needed to reissue the request;
    /// streaming gets only retry while no block has reached the caller.
    GetSpec spec;
    RetryPolicy retry;
    uint32_t attempt = 1;
    bool delivered_any = false;
    /// Expected next block index: out-of-sequence blocks (duplicates, or a
    /// gap left by a dropped block) are discarded so a stream never
    /// double-delivers or silently completes with a hole.
    uint32_t next_block = 0;
    sim::EventId timeout_event = sim::kInvalidEventId;
  };
  struct PendingApp {
    AppResponseCallback cb;
    bool routed = false;
    std::string key;            // routed requests
    sim::NodeIndex target = 0;  // direct (CallApp) requests
    sim::PayloadPtr inner;
    sim::TrafficCategory category = sim::TrafficCategory::kControl;
    RetryPolicy retry;
    uint32_t attempt = 1;
    sim::EventId timeout_event = sim::kInvalidEventId;
  };
  struct PendingAppend {
    AppendCallback cb;
    std::string key;
    index::PostingList postings;
    std::vector<std::string> doc_types;
    uint64_t dedup_id = 0;
    RetryPolicy retry;
    uint32_t attempt = 1;
    sim::EventId timeout_event = sim::kInvalidEventId;
  };
  std::unordered_map<RequestId, LocateCallback> pending_locate_;
  std::unordered_map<RequestId, PendingGet> pending_get_;
  std::unordered_map<RequestId, BlobCallback> pending_blob_;
  std::unordered_map<RequestId, PendingApp> pending_app_;
  std::unordered_map<RequestId, PendingAppend> pending_ack_;
  /// Dedup ids of retry-capable appends already applied here (server side).
  std::unordered_set<uint64_t> applied_appends_;
};

}  // namespace kadop::dht

#endif  // KADOP_DHT_PEER_H_
