#include "index/terms.h"

#include <cctype>
#include <set>

namespace kadop::index {

std::string LabelKey(std::string_view label) {
  return "l:" + std::string(label);
}

std::string WordKey(std::string_view word) {
  return "w:" + std::string(word);
}

void TokenizeWords(std::string_view text, std::vector<std::string>& out) {
  std::string current;
  for (char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      current += static_cast<char>(
          std::tolower(static_cast<unsigned char>(c)));
    } else if (!current.empty()) {
      out.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) out.push_back(std::move(current));
}

namespace {

void ExtractRecursive(const xml::Node& node, PeerId peer, DocSeq doc_seq,
                      const ExtractOptions& options,
                      std::vector<TermPosting>& out) {
  if (node.IsElement()) {
    out.push_back(
        {LabelKey(node.label()), Posting{peer, doc_seq, node.sid()}});
    if (options.index_words) {
      // Collect the distinct words of directly-contained text; each word
      // posting carries this element's sid ("w is a word under element
      // (p, d, sid)").
      std::set<std::string> words;
      for (const auto& child : node.children()) {
        if (!child->IsText()) continue;
        std::vector<std::string> tokens;
        TokenizeWords(child->text(), tokens);
        for (auto& t : tokens) {
          if (t.size() >= options.min_word_length) words.insert(std::move(t));
        }
      }
      // Word postings carry the element's interval one level deeper (a
      // text pseudo-node), so the level-aware containment test makes the
      // element the word's parent.
      xml::StructuralId word_sid = node.sid();
      word_sid.level += 1;
      for (const auto& w : words) {
        out.push_back({WordKey(w), Posting{peer, doc_seq, word_sid}});
      }
    }
    for (const auto& child : node.children()) {
      ExtractRecursive(*child, peer, doc_seq, options, out);
    }
  }
}

}  // namespace

void ExtractTerms(const xml::Document& doc, PeerId peer, DocSeq doc_seq,
                  const ExtractOptions& options,
                  std::vector<TermPosting>& out) {
  if (doc.root) ExtractRecursive(*doc.root, peer, doc_seq, options, out);
}

}  // namespace kadop::index
