#ifndef KADOP_INDEX_CONDITION_H_
#define KADOP_INDEX_CONDITION_H_

#include <string>

#include "index/posting.h"

namespace kadop::index {

/// A range condition over postings: the closed interval [lo, hi] in the
/// lexicographic (peer, doc, sid) order. DPP blocks carry one condition
/// each; the query processor intersects conditions to skip blocks that
/// cannot contribute matches (Section 4.2).
struct Condition {
  Posting lo = kMaxPosting;
  Posting hi = kMinPosting;

  /// An empty condition (lo > hi) matches nothing.
  [[nodiscard]] bool Empty() const { return hi < lo; }

  [[nodiscard]] bool Contains(const Posting& p) const { return !(p < lo) && !(hi < p); }

  [[nodiscard]] bool Intersects(const Condition& other) const {
    if (Empty() || other.Empty()) return false;
    return !(hi < other.lo) && !(other.hi < lo);
  }

  /// True if every posting satisfying this condition also satisfies
  /// `other` (C ⊆ C').
  [[nodiscard]] bool SubsetOf(const Condition& other) const {
    if (Empty()) return true;
    if (other.Empty()) return false;
    return !(lo < other.lo) && !(other.hi < hi);
  }

  /// True if every posting here is lexicographically below all of `other`
  /// (C < C').
  [[nodiscard]] bool Before(const Condition& other) const {
    if (Empty() || other.Empty()) return true;
    return hi < other.lo;
  }

  /// Grows the interval to cover `p`.
  void Extend(const Posting& p) {
    if (p < lo) lo = p;
    if (hi < p) hi = p;
  }

  /// Smallest / largest document that may satisfy the condition (used for
  /// the [min, max] document-interval filter of Section 4.2).
  DocId MinDoc() const { return lo.doc_id(); }
  DocId MaxDoc() const { return hi.doc_id(); }

  std::string ToString() const {
    return "[" + lo.ToString() + ".." + hi.ToString() + "]";
  }

  friend bool operator==(const Condition&, const Condition&) = default;
};

/// The whole-range condition.
inline Condition FullCondition() { return Condition{kMinPosting, kMaxPosting}; }

}  // namespace kadop::index

#endif  // KADOP_INDEX_CONDITION_H_
