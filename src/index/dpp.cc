#include "index/dpp.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "common/logging.h"
#include "index/codec.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace kadop::index {

namespace {

struct DppCounters {
  obs::Counter* splits;
  obs::Counter* migrated_postings;
  obs::Counter* blocks_stored;
  obs::Counter* dir_requests;

  DppCounters() {
    auto& r = obs::MetricRegistry::Default();
    splits = r.GetCounter("dpp.splits");
    migrated_postings = r.GetCounter("dpp.migrated_postings");
    blocks_stored = r.GetCounter("dpp.blocks_stored");
    dir_requests = r.GetCounter("dpp.dir_requests");
  }
};

DppCounters& C() {
  static DppCounters counters;
  return counters;
}

}  // namespace

using dht::AppendRequest;
using dht::AppRequest;
using sim::NodeIndex;
using sim::TrafficCategory;

DppManager::DppManager(dht::DhtPeer* peer, DppOptions options)
    : peer_(peer), options_(options), rng_(peer->id() ^ 0xd9f1c2a7) {
  KADOP_CHECK(peer_ != nullptr, "DppManager requires a peer");
  KADOP_CHECK(options_.max_block_postings >= 2, "block size too small");
}

bool DppManager::OnAppend(const AppendRequest& request) {
  TermState& st = terms_[request.key];
  if (st.blocks.empty()) {
    // Block 0 is the original list, stored locally under the term key.
    st.blocks.push_back(BlockEntry{request.key, Condition{}, 0, {}});
  }
  if (st.split_in_progress) {
    st.queued.push_back(request);
    return true;
  }
  ProcessAppend(request);
  return true;
}

size_t DppManager::FindBlock(TermState& st, const Posting& p) {
  // Ordered blocks: the last block whose lower bound is <= p; postings
  // below every block go to the first. With random splits, conditions
  // overlap — pick uniformly among the blocks containing p.
  std::vector<size_t> containing;
  for (size_t i = 0; i < st.blocks.size(); ++i) {
    if (!st.blocks[i].cond.Empty() && st.blocks[i].cond.Contains(p)) {
      containing.push_back(i);
    }
  }
  if (containing.size() == 1) return containing[0];
  if (containing.size() > 1) {
    return containing[rng_.Uniform(containing.size())];
  }
  // Not inside any condition: floor rule on lower bounds.
  size_t chosen = 0;
  for (size_t i = 0; i < st.blocks.size(); ++i) {
    if (st.blocks[i].cond.Empty() || !(p < st.blocks[i].cond.lo)) chosen = i;
  }
  return chosen;
}

void DppManager::ProcessAppend(const AppendRequest& request) {
  TermState& st = terms_[request.key];
  // The owner's version of the term key covers the whole partitioned list:
  // appends that land only in remote overflow blocks never touch the local
  // store, so bump here for the query-side cache's staleness oracle.
  if (!request.postings.empty()) {
    peer_->store()->BumpPostingVersion(request.key);
  }

  // Partition the batch across blocks.
  std::unordered_map<size_t, PostingList> buckets;
  for (const Posting& p : request.postings) {
    const size_t b = FindBlock(st, p);
    st.blocks[b].cond.Extend(p);
    st.blocks[b].count++;
    buckets[b].push_back(p);
  }

  // Track sub-operation completion so the durability ack fires only when
  // every block holder has applied its share.
  auto remaining = std::make_shared<size_t>(buckets.size());
  const std::string term_key = request.key;
  AppendRequest ack_info = request;
  ack_info.postings.clear();
  auto on_part_done = [this, remaining, term_key, ack_info]() {
    if (--*remaining > 0) return;
    peer_->SendAppendAck(ack_info);
    MaybeSplit(term_key);
  };
  if (buckets.empty()) {
    peer_->SendAppendAck(ack_info);
    return;
  }

  // Dispatch in ascending block order: `buckets` is an unordered_map whose
  // iteration order is a stdlib implementation detail, but the order here
  // decides the DppAppendToBlock send order and with it the entire
  // downstream event schedule (KDP012).
  std::vector<size_t> block_order;
  block_order.reserve(buckets.size());
  for (const auto& [block_index, postings] : buckets) {
    block_order.push_back(block_index);
  }
  std::sort(block_order.begin(), block_order.end());

  // Fold the batch's document types into every touched block's condition
  // (a superset per block — recall is never at risk).
  for (const size_t block_index : block_order) {
    st.blocks[block_index].types.insert(request.doc_types.begin(),
                                        request.doc_types.end());
  }

  for (const size_t block_index : block_order) {
    PostingList& postings = buckets[block_index];
    BlockEntry& block = st.blocks[block_index];
    if (block.key == term_key) {
      // Local block 0.
      const double bytes = static_cast<double>(codec::StoredBytes(postings));
      peer_->store()->AppendPostings(term_key, postings);
      peer_->ScheduleAfterDisk(bytes, /*write=*/true, on_part_done);
    } else {
      auto msg = std::make_shared<DppAppendToBlock>();
      msg->block_key = block.key;
      msg->postings = std::move(postings);
      peer_->RouteApp(block.key, std::move(msg), TrafficCategory::kPublish,
                      [on_part_done](sim::PayloadPtr) { on_part_done(); });
    }
  }
}

std::optional<uint64_t> DppManager::OwnedTermCount(
    const std::string& term_key) const {
  auto it = terms_.find(term_key);
  if (it == terms_.end()) return std::nullopt;
  uint64_t total = 0;
  for (const BlockEntry& b : it->second.blocks) total += b.count;
  return total;
}

bool DppManager::OnGet(const dht::GetRequest& request) {
  auto it = terms_.find(request.key);
  if (it == terms_.end()) return false;
  const TermState& st = it->second;
  if (st.blocks.size() == 1 && st.blocks[0].key == request.key) {
    return false;  // unpartitioned: the default store path is complete
  }
  // Gather blocks in condition order, one at a time, and forward them to
  // the requester under the original request id (the proxy path: complete
  // but not parallel — parallel clients fetch blocks directly instead).
  auto block_keys = std::make_shared<std::vector<std::string>>();
  for (const BlockEntry& b : st.blocks) {
    Condition range{request.lo, request.hi};
    if (b.cond.Intersects(range)) block_keys->push_back(b.key);
  }
  if (block_keys->empty()) {
    peer_->SendGetBlock(request.origin, request.req_id, 0, /*last=*/true, {},
                        request.compress);
    return true;
  }
  auto fetch_next = std::make_shared<std::function<void(size_t)>>();
  const dht::GetRequest req = request;
  // The stored function captures itself only weakly: the strong references
  // live in the transient disk/network continuations below, so the chain
  // stays alive exactly as long as a fetch is in flight and is freed after
  // the last block (a strong self-capture here would leak the cycle).
  std::weak_ptr<std::function<void(size_t)>> weak_next = fetch_next;
  *fetch_next = [this, req, block_keys, weak_next](size_t i) {
    auto fetch_next = weak_next.lock();
    if (!fetch_next) return;
    const std::string& block_key = (*block_keys)[i];
    const bool is_last_block = i + 1 == block_keys->size();
    if (block_key == req.key) {
      // Local block 0: read from the own store (cannot recurse through the
      // interceptor) and forward after the disk read.
      PostingList list =
          peer_->store()->GetPostingRange(block_key, req.lo, req.hi, 0);
      const double bytes = static_cast<double>(codec::StoredBytes(list));
      peer_->ScheduleAfterDisk(
          bytes, /*write=*/false,
          [this, req, i, is_last_block, list = std::move(list), block_keys,
           fetch_next]() mutable {
            peer_->SendGetBlock(req.origin, req.req_id,
                                static_cast<uint32_t>(i), is_last_block,
                                std::move(list), req.compress);
            if (!is_last_block) (*fetch_next)(i + 1);
          });
      return;
    }
    dht::GetSpec spec;
    spec.key = block_key;
    spec.lo = req.lo;
    spec.hi = req.hi;
    spec.pipelined = false;
    spec.compress = req.compress;
    peer_->GetBlocks(spec, [this, req, i, is_last_block, block_keys,
                            fetch_next](PostingList postings, bool last,
                                        bool /*complete*/) {
      if (!last) return;
      peer_->SendGetBlock(req.origin, req.req_id, static_cast<uint32_t>(i),
                          is_last_block, std::move(postings), req.compress);
      if (!is_last_block) (*fetch_next)(i + 1);
    });
  };
  (*fetch_next)(0);
  return true;
}

bool DppManager::OnDelete(const dht::DeleteRequest& request) {
  auto it = terms_.find(request.key);
  if (it == terms_.end()) return false;
  TermState& st = it->second;
  // Conservative owner-side bump (mirrors ProcessAppend): deletes routed to
  // remote blocks must invalidate cached copies of the whole term.
  peer_->store()->BumpPostingVersion(request.key);
  for (BlockEntry& block : st.blocks) {
    // A targeted delete only concerns blocks whose condition may contain
    // the posting; whole-document deletes must visit every block (the
    // document's postings may straddle conditions).
    if (!request.whole_doc && !block.cond.Empty() &&
        !block.cond.Contains(request.posting)) {
      continue;
    }
    if (block.key == request.key) {
      const size_t removed =
          request.whole_doc
              ? peer_->store()->DeleteDocPostings(block.key, request.doc)
              : (peer_->store()->DeletePosting(block.key, request.posting)
                     ? 1
                     : 0);
      block.count -= std::min<uint64_t>(block.count, removed);
    } else {
      auto msg = std::make_shared<DppDeleteFromBlock>();
      msg->block_key = block.key;
      msg->whole_doc = request.whole_doc;
      msg->posting = request.posting;
      msg->doc = request.doc;
      const std::string term_key = request.key;
      const std::string block_key = block.key;
      peer_->RouteApp(
          block.key, std::move(msg), TrafficCategory::kControl,
          [this, term_key, block_key](sim::PayloadPtr inner) {
            auto* done = dynamic_cast<DppDeleteDone*>(inner.get());
            if (done == nullptr || done->removed == 0) return;
            auto term_it = terms_.find(term_key);
            if (term_it == terms_.end()) return;
            for (BlockEntry& b : term_it->second.blocks) {
              if (b.key == block_key) {
                b.count -= std::min<uint64_t>(b.count, done->removed);
              }
            }
          });
    }
  }
  return true;
}

std::optional<DppManager::TermExport> DppManager::ExportTerm(
    const std::string& term_key) {
  auto it = terms_.find(term_key);
  if (it == terms_.end()) return std::nullopt;
  KADOP_CHECK(!it->second.split_in_progress, "export during split");
  TermExport out;
  out.term_key = term_key;
  out.next_block_seq = it->second.next_block_seq;
  for (const BlockEntry& b : it->second.blocks) {
    out.blocks.push_back(DppBlockInfo{b.key, b.cond, b.count, b.types});
  }
  terms_.erase(it);
  return out;
}

bool DppManager::SplitInProgress(const std::string& term_key) const {
  auto it = terms_.find(term_key);
  return it != terms_.end() && it->second.split_in_progress;
}

std::optional<DppManager::TermExport> DppManager::PeekTerm(
    const std::string& term_key) const {
  auto it = terms_.find(term_key);
  if (it == terms_.end()) return std::nullopt;
  if (it->second.split_in_progress) return std::nullopt;
  TermExport out;
  out.term_key = term_key;
  out.next_block_seq = it->second.next_block_seq;
  for (const BlockEntry& b : it->second.blocks) {
    out.blocks.push_back(DppBlockInfo{b.key, b.cond, b.count, b.types});
  }
  return out;
}

void DppManager::ImportTerm(const TermExport& exported) {
  TermState& st = terms_[exported.term_key];
  st.blocks.clear();
  st.next_block_seq = exported.next_block_seq;
  for (const DppBlockInfo& b : exported.blocks) {
    st.blocks.push_back(BlockEntry{b.key, b.cond, b.count, b.types});
  }
}

void DppManager::MaybeSplit(const std::string& term_key) {
  auto it = terms_.find(term_key);
  if (it == terms_.end()) return;
  TermState& st = it->second;
  if (st.split_in_progress) return;

  size_t victim = st.blocks.size();
  for (size_t i = 0; i < st.blocks.size(); ++i) {
    if (st.blocks[i].count > options_.max_block_postings) {
      victim = i;
      break;
    }
  }
  if (victim == st.blocks.size()) return;

  st.split_in_progress = true;
  stats_.splits++;
  C().splits->Increment();
  obs::Tracer::Default().Event("dpp.split");
  const std::string new_key =
      "ovf:" + std::to_string(st.next_block_seq++) + ":" + term_key;
  const std::string block_key = st.blocks[victim].key;

  auto done = [this, term_key, victim, new_key](const DppSplitDone& result) {
    FinishSplit(term_key, victim, new_key, result);
  };

  if (block_key == term_key) {
    PerformLocalSplit(block_key, new_key, !options_.ordered_splits, done);
  } else {
    auto msg = std::make_shared<DppSplitBlock>();
    msg->block_key = block_key;
    msg->new_block_key = new_key;
    msg->random_split = !options_.ordered_splits;
    peer_->RouteApp(block_key, std::move(msg), TrafficCategory::kControl,
                    [done](sim::PayloadPtr inner) {
                      auto* result = dynamic_cast<DppSplitDone*>(inner.get());
                      KADOP_CHECK(result != nullptr,
                                  "bad split response payload");
                      done(*result);
                    });
  }
}

void DppManager::FinishSplit(const std::string& term_key, size_t block_index,
                             std::string new_key, const DppSplitDone& done) {
  TermState& st = terms_[term_key];
  KADOP_CHECK(st.split_in_progress, "unexpected split completion");
  if (done.ok) {
    BlockEntry& lower = st.blocks[block_index];
    lower.cond = done.lower;
    lower.count = done.lower_count;
    BlockEntry upper;
    upper.key = std::move(new_key);
    upper.cond = done.upper;
    upper.count = done.upper_count;
    // Both halves inherit the victim's type set (a superset is safe).
    upper.types = lower.types;
    st.blocks.insert(st.blocks.begin() + block_index + 1, std::move(upper));
    stats_.migrated_postings += done.upper_count;
    C().migrated_postings->Increment(done.upper_count);
  }
  st.split_in_progress = false;

  // Drain inserts queued during the split, then re-check occupancy.
  std::deque<AppendRequest> queued = std::move(st.queued);
  st.queued.clear();
  for (const AppendRequest& request : queued) ProcessAppend(request);
  MaybeSplit(term_key);
}

void DppManager::PerformLocalSplit(const std::string& block_key,
                                   const std::string& new_block_key,
                                   bool random_split,
                                   std::function<void(DppSplitDone)> done) {
  store::PeerStore* store = peer_->store();
  PostingList all = store->GetPostings(block_key);
  if (all.size() < 2) {
    DppSplitDone result;
    result.ok = false;
    done(result);
    return;
  }
  PostingList lower;
  PostingList upper;
  if (random_split) {
    for (size_t i = 0; i < all.size(); ++i) {
      (rng_.Bernoulli(0.5) ? upper : lower).push_back(all[i]);
    }
    if (lower.empty()) {
      lower.push_back(upper.back());
      upper.pop_back();
    }
    if (upper.empty()) {
      upper.push_back(lower.back());
      lower.pop_back();
    }
  } else {
    const size_t mid = all.size() / 2;
    lower.assign(all.begin(), all.begin() + mid);
    upper.assign(all.begin() + mid, all.end());
  }
  for (const Posting& p : upper) store->DeletePosting(block_key, p);

  DppSplitDone result;
  result.ok = true;
  result.lower_count = lower.size();
  result.upper_count = upper.size();
  for (const Posting& p : lower) result.lower.Extend(p);
  for (const Posting& p : upper) result.upper.Extend(p);

  // The whole block is read and half of it rewritten: charge the disk,
  // then migrate the upper half to the new holder.
  const double io_bytes = static_cast<double>(codec::StoredBytes(all));
  auto migrate = [this, new_block_key, upper = std::move(upper),
                  result = std::move(result),
                  done = std::move(done)]() mutable {
    auto msg = std::make_shared<DppStoreBlock>();
    msg->block_key = new_block_key;
    msg->postings = std::move(upper);
    peer_->RouteApp(
        new_block_key, std::move(msg), TrafficCategory::kPublish,
        [result = std::move(result), done = std::move(done)](
            sim::PayloadPtr) mutable { done(std::move(result)); });
  };
  peer_->ScheduleAfterDisk(io_bytes, /*write=*/true, std::move(migrate));
}

bool DppManager::HandleApp(const AppRequest& request, NodeIndex /*from*/) {
  const sim::Payload* inner = request.inner.get();

  if (const auto* append = dynamic_cast<const DppAppendToBlock*>(inner)) {
    peer_->store()->AppendPostings(append->block_key, append->postings);
    stats_.blocks_stored++;
    C().blocks_stored->Increment();
    const double bytes =
        static_cast<double>(codec::StoredBytes(append->postings));
    const NodeIndex origin = request.origin;
    const dht::RequestId req_id = request.req_id;
    const uint64_t count = peer_->store()->PostingCount(append->block_key);
    peer_->ScheduleAfterDisk(bytes, /*write=*/true, [this, origin, req_id,
                                                     count]() {
      if (req_id == 0) return;
      auto resp = std::make_shared<DppAppendDone>();
      resp->new_count = count;
      peer_->Reply(origin, req_id, std::move(resp),
                   TrafficCategory::kControl);
    });
    return true;
  }

  if (const auto* block = dynamic_cast<const DppStoreBlock*>(inner)) {
    peer_->store()->AppendPostings(block->block_key, block->postings);
    stats_.blocks_stored++;
    C().blocks_stored->Increment();
    const double bytes =
        static_cast<double>(codec::StoredBytes(block->postings));
    const NodeIndex origin = request.origin;
    const dht::RequestId req_id = request.req_id;
    const uint64_t count = peer_->store()->PostingCount(block->block_key);
    peer_->ScheduleAfterDisk(bytes, /*write=*/true, [this, origin, req_id,
                                                     count]() {
      if (req_id == 0) return;
      auto resp = std::make_shared<DppStoreBlockDone>();
      resp->count = count;
      peer_->Reply(origin, req_id, std::move(resp),
                   TrafficCategory::kControl);
    });
    return true;
  }

  if (const auto* split = dynamic_cast<const DppSplitBlock*>(inner)) {
    const NodeIndex origin = request.origin;
    const dht::RequestId req_id = request.req_id;
    PerformLocalSplit(split->block_key, split->new_block_key,
                      split->random_split,
                      [this, origin, req_id](DppSplitDone result) {
                        auto resp = std::make_shared<DppSplitDone>(
                            std::move(result));
                        peer_->Reply(origin, req_id, std::move(resp),
                                     TrafficCategory::kControl);
                      });
    return true;
  }

  if (const auto* del = dynamic_cast<const DppDeleteFromBlock*>(inner)) {
    const size_t removed =
        del->whole_doc
            ? peer_->store()->DeleteDocPostings(del->block_key, del->doc)
            : (peer_->store()->DeletePosting(del->block_key, del->posting)
                   ? 1
                   : 0);
    if (request.req_id != 0) {
      auto resp = std::make_shared<DppDeleteDone>();
      resp->removed = removed;
      peer_->Reply(request.origin, request.req_id, std::move(resp),
                   TrafficCategory::kControl);
    }
    return true;
  }

  if (const auto* dir = dynamic_cast<const DppDirRequest*>(inner)) {
    stats_.dir_requests++;
    C().dir_requests->Increment();
    // Zero virtual-time serve; the point event still places the directory
    // owner in the query's span tree.
    obs::Tracer::Default().Event("dpp.dir.serve");
    auto resp = std::make_shared<DppDirResponse>();
    auto it = terms_.find(dir->term_key);
    if (it != terms_.end()) {
      for (const BlockEntry& b : it->second.blocks) {
        if (b.count == 0) continue;
        resp->blocks.push_back(DppBlockInfo{b.key, b.cond, b.count, b.types});
      }
    } else {
      const size_t count = peer_->store()->PostingCount(dir->term_key);
      if (count > 0) {
        resp->blocks.push_back(
            DppBlockInfo{dir->term_key, FullCondition(), count, {}});
      }
    }
    peer_->Reply(request.origin, request.req_id, std::move(resp),
                 TrafficCategory::kControl);
    return true;
  }

  return false;
}

void DppManager::FetchDirectory(
    dht::DhtPeer* requester, const std::string& term_key,
    std::function<void(Status, std::vector<DppBlockInfo>)> cb,
    dht::RetryPolicy retry) {
  auto msg = std::make_shared<DppDirRequest>();
  msg->term_key = term_key;
  requester->RouteApp(
      term_key, std::move(msg), TrafficCategory::kControl,
      [cb = std::move(cb), term_key](sim::PayloadPtr inner) {
        if (inner == nullptr) {
          // Retry budget exhausted (only possible with a policy).
          cb(Status::DeadlineExceeded(
                 "directory fetch retry budget exhausted for '" + term_key +
                 "'"),
             {});
          return;
        }
        auto* resp = dynamic_cast<DppDirResponse*>(inner.get());
        KADOP_CHECK(resp != nullptr, "bad directory response payload");
        cb(Status::OK(), std::move(resp->blocks));
      },
      retry);
}

size_t DppManager::PartitionedTermCount() const {
  size_t n = 0;
  for (const auto& [key, st] : terms_) {
    if (st.blocks.size() > 1) ++n;
  }
  return n;
}

}  // namespace kadop::index
